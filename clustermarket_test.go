package clustermarket_test

import (
	"time"

	"strings"
	"testing"

	cm "clustermarket"
)

// TestFacadeEndToEnd drives the whole public API surface the way the
// README's quickstart does: build a fleet, open accounts, submit a product
// order and a raw textual bid, run the auction, inspect settlement.
func TestFacadeEndToEnd(t *testing.T) {
	fleet := cm.NewFleet()
	for _, name := range []string{"r1", "r2"} {
		c := cm.NewCluster(name, nil)
		c.AddMachines(8, cm.Usage{CPU: 16, RAM: 64, Disk: 10})
		if err := fleet.AddCluster(c); err != nil {
			t.Fatal(err)
		}
	}
	ex, err := cm.NewExchange(fleet, cm.ExchangeConfig{InitialBudget: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for _, team := range []string{"search", "ads"} {
		if err := ex.OpenAccount(team); err != nil {
			t.Fatal(err)
		}
	}

	// Product path.
	if _, err := ex.SubmitProduct("search", "bigtable-node", 4, []string{"r1", "r2"}, 300); err != nil {
		t.Fatal(err)
	}

	// Textual bidding-language path.
	parsed, err := cm.ParseBid(`bid "ads" limit 250 {
	  oneof {
	    all { r1/cpu:20 r1/ram:40 r1/disk:2 }
	    all { r2/cpu:20 r2/ram:40 r2/disk:2 }
	  }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	bid, err := cm.CompileBid(parsed, ex.Registry())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Submit("ads", bid); err != nil {
		t.Fatal(err)
	}

	rec, res, err := ex.RunAuction()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Converged || !res.Converged {
		t.Fatal("auction did not converge")
	}
	if rec.Settled == 0 {
		t.Fatal("nothing settled")
	}
	rows, err := ex.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("summary rows = %d", len(rows))
	}
}

func TestFacadeAuctionDirect(t *testing.T) {
	reg := cm.NewStandardRegistry("a", "b")
	seller := &cm.Bid{User: "op", Limit: -0.01,
		Bundles: []cm.Vector{{-50, -50, -50, -50, -50, -50}}}
	buyer := &cm.Bid{User: "buyer", Limit: 500,
		Bundles: []cm.Vector{{30, 30, 5, 0, 0, 0}, {0, 0, 0, 30, 30, 5}}}

	start := make(cm.Vector, reg.Len())
	for i := range start {
		start[i] = 1
	}
	a, err := cm.NewAuction(reg, []*cm.Bid{seller, buyer}, cm.AuctionConfig{
		Start:  start,
		Policy: cm.Capped{Alpha: 0.05, Delta: 0.5, MinStep: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if violations := cm.CheckSystem([]*cm.Bid{seller, buyer}, res, 1e-9); len(violations) != 0 {
		t.Fatalf("SYSTEM violations: %v", violations)
	}
	if !res.IsWinner(1) {
		t.Fatal("buyer lost an uncontested market")
	}
	if g := cm.Premium(buyer.Limit, res.Payments[1]); g <= 0 {
		t.Errorf("premium = %v", g)
	}
}

func TestFacadeReservePricing(t *testing.T) {
	pr := cm.NewReservePricer(cm.Hyperbolic)
	pool := cm.Pool{Cluster: "x", Dim: cm.CPU}
	if hot, cold := pr.Price(pool, 0.95, 2), pr.Price(pool, 0.05, 2); hot <= cold {
		t.Errorf("hot %v not above cold %v", hot, cold)
	}
}

func TestFacadeParseBids(t *testing.T) {
	bids, err := cm.ParseBids(`bid "a" limit 1 { r1/cpu:1 }
bid "b" limit -2 { r1/ram:-3 }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(bids) != 2 {
		t.Fatalf("bids = %d", len(bids))
	}
	if !strings.Contains(bids[0].String(), `bid "a"`) {
		t.Error("String() round trip broken")
	}
}

func TestFacadeScenarioEngine(t *testing.T) {
	if len(cm.Scenarios()) < 5 {
		t.Fatalf("catalog = %d scenarios", len(cm.Scenarios()))
	}
	sc, err := cm.LookupScenario("adaptive-learning")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cm.ScenarioConfig{Seed: 5, Epochs: 3}
	b, err := cm.NewScenarioBackend("federation", cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cm.RunScenario(sc, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 3 {
		t.Fatalf("epochs = %d", len(rep.Epochs))
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Fingerprint() == "" {
		t.Fatal("empty fingerprint")
	}
}

func TestFacadeInvariantKernel(t *testing.T) {
	fleet := cm.NewFleet()
	c := cm.NewCluster("r1", nil)
	c.AddMachines(4, cm.Usage{CPU: 32, RAM: 128, Disk: 20})
	if err := fleet.AddCluster(c); err != nil {
		t.Fatal(err)
	}
	ex, err := cm.NewExchange(fleet, cm.ExchangeConfig{InitialBudget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.OpenAccount("team"); err != nil {
		t.Fatal(err)
	}
	if vs := cm.CheckMarketInvariants(ex); len(vs) != 0 {
		t.Fatalf("fresh exchange violates invariants: %v", vs)
	}
}

// TestFacadeJournalRecovery drives the durability surface end to end
// through the facade: journaled exchange, a settled auction, process
// "death" (journal closed), then OpenJournal + RecoverExchange into a
// book that matches the one that died.
func TestFacadeJournalRecovery(t *testing.T) {
	buildFleet := func() *cm.Fleet {
		fleet := cm.NewFleet()
		for _, name := range []string{"r1", "r2"} {
			c := cm.NewCluster(name, nil)
			c.AddMachines(8, cm.Usage{CPU: 16, RAM: 64, Disk: 10})
			if err := fleet.AddCluster(c); err != nil {
				t.Fatal(err)
			}
		}
		return fleet
	}
	dir := t.TempDir()

	j, rec, err := cm.OpenJournal(dir, cm.JournalOptions{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatal("fresh journal dir is not empty")
	}
	cfg := cm.ExchangeConfig{InitialBudget: 2000, Journal: j}
	ex, err := cm.NewExchange(buildFleet(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, team := range []string{"search", "ads"} {
		if err := ex.OpenAccount(team); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ex.SubmitProduct("search", "bigtable-node", 4, []string{"r1", "r2"}, 300); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ex.RunAuction(); err != nil {
		t.Fatal(err)
	}
	wantHistory := ex.AuctionCount()
	wantBalance, err := ex.Balance("search")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec2, err := cm.OpenJournal(dir, cm.JournalOptions{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec2.Empty() {
		t.Fatal("journal lost the run")
	}
	cfg.Journal = j2
	ex2, err := cm.RecoverExchange(buildFleet(), cfg, rec2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ex2.AuctionCount(); got != wantHistory {
		t.Fatalf("recovered %d auctions, want %d", got, wantHistory)
	}
	got, err := ex2.Balance("search")
	if err != nil {
		t.Fatal(err)
	}
	if got != wantBalance {
		t.Fatalf("recovered balance %v, want %v", got, wantBalance)
	}
}

// TestFacadeTelemetry drives the re-exported streaming-telemetry
// surface: firehose pub/sub on a live exchange, stream reconstruction
// of a scenario run, health probing, and the Prometheus exposition
// builder.
func TestFacadeTelemetry(t *testing.T) {
	fire := cm.NewFirehose()
	sub := fire.Subscribe(1 << 12)

	sc, err := cm.LookupScenario("churn")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cm.ScenarioConfig{Seed: 11, Epochs: 3, Telemetry: fire}
	b, err := cm.NewScenarioBackend("exchange", cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cm.RunScenario(sc, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
	var events []cm.TelemetryEvent
	for ev := range sub.C {
		events = append(events, ev)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped %d events", sub.Dropped())
	}
	rec, err := cm.ReconstructScenarioReport("churn", "exchange", 11, events)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Fingerprint() != rep.Fingerprint() {
		t.Fatalf("stream reconstruction fingerprint %s, run %s", rec.Fingerprint(), rep.Fingerprint())
	}

	h := cm.NewHealth(time.Now())
	h.RecordCheck(time.Now(), nil)
	if snap := h.Snapshot(time.Now()); !snap.Healthy || snap.ChecksTotal != 1 {
		t.Fatalf("health snapshot = %+v", snap)
	}

	var e cm.Exposition
	e.Counter("facade_events_total", "Events seen by the facade test.", float64(len(events)))
	if out := e.String(); !strings.Contains(out, "facade_events_total") {
		t.Fatalf("exposition = %q", out)
	}
}
