#!/bin/sh
# Run govulncheck and fail on findings not listed in .govulncheck-ignore.
#
# govulncheck has no built-in baseline mechanism, so this wrapper keeps
# one: .govulncheck-ignore holds accepted GO- and GHSA- IDs (one per
# line, '#' comments), and only vulnerabilities absent from that list
# fail the build. A clean run prunes nothing — stale ignore entries are
# reported so the list shrinks as toolchains move.
set -u

if ! command -v govulncheck >/dev/null 2>&1; then
    echo "vulncheck: govulncheck not installed; skipping (the CI lint job runs it)"
    exit 0
fi

IGNORE_FILE="$(dirname "$0")/../.govulncheck-ignore"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

# Text mode exits 3 when vulnerabilities are called; other nonzero
# codes are tool failures and propagate as-is.
govulncheck ./... >"$OUT" 2>&1
status=$?
if [ "$status" -ne 0 ] && [ "$status" -ne 3 ]; then
    cat "$OUT"
    echo "vulncheck: govulncheck failed (exit $status)"
    exit "$status"
fi

found=$(grep -oE 'GO-[0-9]{4}-[0-9]+|GHSA-[a-z0-9-]{14,}' "$OUT" | sort -u)
if [ -z "$found" ]; then
    echo "vulncheck: no known vulnerabilities reach this module"
    exit 0
fi

# The ignore list allows trailing '# reason' comments on each line.
ignored=$(sed 's/#.*//' "$IGNORE_FILE" 2>/dev/null | tr -d ' \t' | grep -v '^$' || true)

new=""
for id in $found; do
    if ! printf '%s\n' "$ignored" | grep -qx "$id"; then
        new="$new $id"
    fi
done

if [ -n "$new" ]; then
    cat "$OUT"
    echo "vulncheck: new vulnerabilities:$new"
    echo "vulncheck: fix them, or add the IDs to .govulncheck-ignore with a dated reason"
    exit 1
fi

echo "vulncheck: findings all baselined in .govulncheck-ignore:"
echo "$found" | sed 's/^/  /'
exit 0
