#!/bin/sh
# cover.sh — test coverage with a checked-in floor and per-package deltas.
#
# Runs the full test suite with a coverage profile, prints each package's
# statement coverage next to the checked-in baseline (COVERAGE_baseline.txt)
# with the delta, and fails when the repo-wide total drops below the floor
# in COVERAGE_FLOOR. Per-package deltas are informational; only the total
# gates, so a refactor can move statements between packages freely as long
# as overall coverage holds.
#
# Usage:  scripts/cover.sh            # check against the floor
#         scripts/cover.sh -update    # rewrite COVERAGE_baseline.txt
set -e
cd "$(dirname "$0")/.."

PROFILE="${COVER_PROFILE:-cover.out}"
FLOOR=$(cat COVERAGE_FLOOR)

# Keep the test output: a failing test must be diagnosable from the CI
# log of this step, not silently discarded behind a bare exit code.
if ! go test -coverprofile="$PROFILE" ./... > "$PROFILE.testlog" 2>&1; then
    cat "$PROFILE.testlog" >&2
    echo "FAIL: tests failed while collecting coverage" >&2
    exit 1
fi

TOTAL=$(go tool cover -func="$PROFILE" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')

# Per-package coverage, statement-weighted, from the profile itself.
perpkg() {
    awk -F: 'NR > 1 {
        file = $1
        n = split(file, parts, "/")
        pkg = parts[1]
        for (i = 2; i < n; i++) pkg = pkg "/" parts[i]
        split($2, rest, " ")
        stmts = rest[2]; count = rest[3]
        tot[pkg] += stmts
        if (count > 0) cov[pkg] += stmts
    }
    END { for (p in tot) printf "%-40s %.1f\n", p, 100 * cov[p] / tot[p] }' "$PROFILE" | sort
}

if [ "$1" = "-update" ]; then
    perpkg > COVERAGE_baseline.txt
    echo "wrote COVERAGE_baseline.txt (total ${TOTAL}%)"
    exit 0
fi

echo "package coverage (vs COVERAGE_baseline.txt):"
perpkg | while read -r pkg pct; do
    base=$(awk -v p="$pkg" '$1 == p { print $2 }' COVERAGE_baseline.txt)
    if [ -n "$base" ]; then
        delta=$(awk -v a="$pct" -v b="$base" 'BEGIN { printf "%+.1f", a - b }')
        printf '  %-40s %6s%%  (baseline %s%%, %s)\n' "$pkg" "$pct" "$base" "$delta"
    else
        printf '  %-40s %6s%%  (new package)\n' "$pkg" "$pct"
    fi
done

echo "total: ${TOTAL}% (floor: ${FLOOR}%)"
PASS=$(awk -v t="$TOTAL" -v f="$FLOOR" 'BEGIN { print (t >= f) ? "yes" : "no" }')
if [ "$PASS" != "yes" ]; then
    echo "FAIL: total coverage ${TOTAL}% is below the floor ${FLOOR}%" >&2
    exit 1
fi
