package federation

// Per-region circuit breaker: the state machine in isolation, then the
// integration seams — settlement faults feed it, gossip faults do not,
// the router skips open regions and closes the breaker on a successful
// half-open probe, and every transition is published to the firehose.

import (
	"errors"
	"testing"

	"clustermarket/internal/fault"
	"clustermarket/internal/telemetry"
)

// settleTolerant runs one settlement round, tolerating the organic
// empty-book error: the fault seam, breaker feed, and gossip round all
// run before the clock, which is what these tests exercise.
func settleTolerant(t *testing.T, f *Federation, region string) {
	t.Helper()
	if _, err := f.SettleRegion(region); err != nil && errors.Is(err, fault.ErrInjected) {
		t.Fatalf("settle %s: %v", region, err)
	}
}

func breakerOf(t *testing.T, f *Federation, region string) BreakerStatus {
	t.Helper()
	for _, bs := range f.BreakerStates() {
		if bs.Region == region {
			return bs
		}
	}
	t.Fatalf("no breaker for region %q", region)
	return BreakerStatus{}
}

// TestBreakerStateMachine drives the breakerSet through its full
// lifecycle: closed → open at the failure threshold, open → half-open
// after the denial quota, half-open → open (doubled quota) on a failed
// probe, half-open → closed on a successful one.
func TestBreakerStateMachine(t *testing.T) {
	bs := &breakerSet{byRegion: map[string]*breaker{"eu": {state: BreakerClosed}}}
	b := bs.byRegion["eu"]

	for n := 0; n < breakerThreshold-1; n++ {
		bs.failure("eu")
	}
	if b.state != BreakerClosed {
		t.Fatalf("state below threshold = %s", b.state)
	}
	bs.failure("eu")
	if b.state != BreakerOpen || b.opens != 1 {
		t.Fatalf("state at threshold = %s (opens %d)", b.state, b.opens)
	}
	quota1 := b.quota
	if quota1 != quotaFor("eu", 1) {
		t.Fatalf("first quota = %d, want %d", quota1, quotaFor("eu", 1))
	}

	// quota-1 denials, then the quota-th attempt is the half-open probe.
	for n := 0; n < quota1-1; n++ {
		if bs.allow("eu") {
			t.Fatalf("denial %d allowed", n)
		}
	}
	if !bs.allow("eu") {
		t.Fatal("probe attempt denied")
	}
	if b.state != BreakerHalfOpen {
		t.Fatalf("state after quota = %s", b.state)
	}

	// Failed probe: reopen with a doubled quota.
	bs.failure("eu")
	if b.state != BreakerOpen || b.opens != 2 {
		t.Fatalf("state after failed probe = %s (opens %d)", b.state, b.opens)
	}
	if b.quota <= quota1 {
		t.Errorf("reopen quota %d did not grow past %d", b.quota, quota1)
	}

	// Walk to half-open again; a successful probe closes.
	for bs.byRegion["eu"].state == BreakerOpen {
		bs.allow("eu")
	}
	bs.success("eu")
	if b.state != BreakerClosed || b.fails != 0 {
		t.Fatalf("state after successful probe = %s (fails %d)", b.state, b.fails)
	}

	// Unknown regions are always allowed.
	if !bs.allow("mars") {
		t.Error("unknown region denied")
	}
}

// TestQuotaDeterministicJitter pins the quota schedule: pure in its
// inputs, doubling with reopen count, jitter bounded.
func TestQuotaDeterministicJitter(t *testing.T) {
	for _, region := range []string{"hot", "cold", "eu-west"} {
		for opens := 1; opens <= 4; opens++ {
			q := quotaFor(region, opens)
			if q != quotaFor(region, opens) {
				t.Fatalf("quotaFor(%q, %d) not deterministic", region, opens)
			}
			base := breakerBaseQuota << uint(opens-1)
			if q < base || q >= base+breakerJitterSpan {
				t.Errorf("quotaFor(%q, %d) = %d outside [%d, %d)", region, opens, q, base, base+breakerJitterSpan)
			}
		}
	}
}

// TestSettleFaultFeedsBreaker: consecutive injected settlement failures
// open the region's breaker; the first healthy settlement closes it.
func TestSettleFaultFeedsBreaker(t *testing.T) {
	f := hotCold(t)
	inj := fault.New()
	f.AttachFaults(inj)

	inj.Arm([]fault.Window{{Op: fault.OpRegionSettle, Scope: "hot", Kind: fault.Unreachable, Count: breakerThreshold}})
	for n := 0; n < breakerThreshold; n++ {
		if _, err := f.SettleRegion("hot"); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("settle %d = %v, want injected failure", n, err)
		}
	}
	hot := breakerOf(t, f, "hot")
	if hot.State != BreakerOpen || hot.Fails != breakerThreshold || hot.Opens != 1 {
		t.Fatalf("hot breaker = %+v, want open after %d failures", hot, breakerThreshold)
	}
	if cold := breakerOf(t, f, "cold"); cold.State != BreakerClosed {
		t.Fatalf("cold breaker = %+v, want closed", cold)
	}

	// Settlement is not gated by the breaker (it is the health probe the
	// partition heals through): the next clean round closes it.
	settleTolerant(t, f, "hot")
	if hot = breakerOf(t, f, "hot"); hot.State != BreakerClosed || hot.Fails != 0 {
		t.Fatalf("hot breaker after healthy settle = %+v", hot)
	}
}

// TestGossipFaultDoesNotFeedBreaker: a lost gossip round degrades the
// price board, not region health.
func TestGossipFaultDoesNotFeedBreaker(t *testing.T) {
	f := hotCold(t)
	inj := fault.New()
	f.AttachFaults(inj)

	inj.Arm([]fault.Window{{Op: fault.OpRegionGossip, Scope: "hot", Kind: fault.Unreachable, Count: 1}})
	settleTolerant(t, f, "hot")
	if inj.Injected() != 1 {
		t.Fatalf("gossip window not consumed: injected %d", inj.Injected())
	}
	if hot := breakerOf(t, f, "hot"); hot.State != BreakerClosed || hot.Fails != 0 {
		t.Fatalf("lost gossip fed the breaker: %+v", hot)
	}
}

// openBreaker drives `region` to an open breaker via injected
// settlement failures, restoring an empty fault schedule after.
func openBreaker(t *testing.T, f *Federation, inj *fault.Injector, region string) {
	t.Helper()
	inj.Arm([]fault.Window{{Op: fault.OpRegionSettle, Scope: region, Kind: fault.Unreachable, Count: breakerThreshold}})
	for n := 0; n < breakerThreshold; n++ {
		if _, err := f.SettleRegion(region); err == nil {
			t.Fatal("injected settle succeeded")
		}
	}
	inj.Arm(nil)
	if got := breakerOf(t, f, region); got.State != BreakerOpen {
		t.Fatalf("breaker = %+v, want open", got)
	}
}

// TestRouterSkipsOpenRegion: with the cheap region's breaker open, a
// cross-region order lands on the expensive-but-healthy leg instead of
// failing, and the skipped leg records why.
func TestRouterSkipsOpenRegion(t *testing.T) {
	f := hotCold(t)
	inj := fault.New()
	f.AttachFaults(inj)
	// cold is nearly idle, so it is the cheapest leg by a wide margin.
	openBreaker(t, f, inj, "cold")

	fo, err := f.SubmitProduct("team", "batch-compute", 1, []string{"hot-r1", "cold-r1"}, 1000)
	if err != nil {
		t.Fatalf("submit with one open breaker: %v", err)
	}
	if got := fo.Legs[fo.Active].Region; got != "hot" {
		t.Fatalf("order routed to %q, want the healthy hot region", got)
	}
	for _, leg := range fo.Legs {
		if leg.Region == "cold" && leg.Err == "" {
			t.Error("skipped cold leg carries no error")
		}
	}
}

// TestBreakerProbeClosesViaRouting: an open breaker denies routing
// attempts until its quota arms the half-open probe; the probe order
// goes through and closes the breaker.
func TestBreakerProbeClosesViaRouting(t *testing.T) {
	f := hotCold(t)
	inj := fault.New()
	f.AttachFaults(inj)
	openBreaker(t, f, inj, "cold")
	quota := quotaFor("cold", 1)

	denied := 0
	for {
		if denied > quota {
			t.Fatalf("still denied after %d attempts (quota %d)", denied, quota)
		}
		// cold-only orders have no failover leg: a denial fails the submit.
		if _, err := f.SubmitProduct("team", "batch-compute", 1, []string{"cold-r1"}, 1000); err != nil {
			denied++
			continue
		}
		break
	}
	if denied != quota-1 {
		t.Errorf("denied %d attempts before the probe, want quota-1 = %d", denied, quota-1)
	}
	if got := breakerOf(t, f, "cold"); got.State != BreakerClosed {
		t.Fatalf("breaker after successful probe = %+v, want closed", got)
	}
}

// TestBreakerEventsOnFirehose: every breaker transition is published as
// a telemetry-only breaker-state-changed event.
func TestBreakerEventsOnFirehose(t *testing.T) {
	f := hotCold(t)
	inj := fault.New()
	f.AttachFaults(inj)
	fire := telemetry.NewFirehose()
	sub := fire.Subscribe(256)
	defer sub.Close()
	f.AttachTelemetry(fire)

	openBreaker(t, f, inj, "hot")
	settleTolerant(t, f, "hot") // a clean round closes the breaker

	var changes []*BreakerChange
drain:
	for {
		select {
		case ev := <-sub.C:
			if ev.Kind != EvFedBreaker {
				continue
			}
			fe, ok := ev.Payload.(*FedEvent)
			if !ok || fe.Breaker == nil {
				t.Fatalf("breaker event payload = %#v", ev.Payload)
			}
			changes = append(changes, fe.Breaker)
		default:
			break drain
		}
	}
	if len(changes) != 2 {
		t.Fatalf("breaker transitions = %d (%+v), want open then close", len(changes), changes)
	}
	if changes[0].Region != "hot" || changes[0].From != BreakerClosed || changes[0].To != BreakerOpen {
		t.Errorf("first transition = %+v, want closed→open", changes[0])
	}
	if changes[1].From != BreakerOpen || changes[1].To != BreakerClosed {
		t.Errorf("second transition = %+v, want open→closed", changes[1])
	}
}

// TestStaleQuoteSuspectDeprioritized: a region whose gossip is lost past
// the staleness bound keeps routing, but behind every fresh-quoted leg —
// even when its frozen quote is the cheapest on the board.
func TestStaleQuoteSuspectDeprioritized(t *testing.T) {
	f := hotCold(t)
	inj := fault.New()
	f.AttachFaults(inj)

	// Seed the board with fresh quotes for both regions.
	f.Gossip()

	// Lose cold's gossip for more rounds than the staleness bound while
	// the clock advances (each settlement is a gossip round).
	inj.Arm([]fault.Window{{Op: fault.OpRegionGossip, Scope: "cold", Kind: fault.Unreachable, Count: staleQuoteBound + 1}})
	for n := 0; n < staleQuoteBound+1; n++ {
		settleTolerant(t, f, "cold")
	}
	inj.Arm(nil)
	// One clean hot round refreshes hot's quote, so only cold's is frozen
	// from before the cut.
	settleTolerant(t, f, "hot")

	fo, err := f.SubmitProduct("team", "batch-compute", 1, []string{"hot-r1", "cold-r1"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var coldLeg *Leg
	for _, leg := range fo.Legs {
		if leg.Region == "cold" {
			coldLeg = leg
		}
	}
	if coldLeg == nil || !coldLeg.Suspect {
		t.Fatalf("cold leg not marked suspect: %+v", coldLeg)
	}
	// cold is far cheaper, but its quote is frozen from before the cut:
	// the fresh-quoted hot leg must outrank it.
	if got := fo.Legs[fo.Active].Region; got != "hot" {
		t.Errorf("order routed to stale-quoted %q, want fresh hot", got)
	}
}
