package federation

import (
	"encoding/json"
	"fmt"
	"time"

	"clustermarket/internal/journal"
	"clustermarket/internal/market"
	"clustermarket/internal/telemetry"
)

// Federation event kinds. Like the market's event stream, federation
// events record routing *results* — the wholesale order state after a
// decision, the quote a gossip pass produced — so replay is pure
// bookkeeping: no leg is resubmitted, no region re-settled, no quote
// recomputed.
const (
	// EvFedOrderSubmitted registers a routed order (legs priced and
	// ordered, first leg already booked in its region).
	EvFedOrderSubmitted = "fed-order-submitted"
	// EvFedOrderUpdated replaces an order's routing state wholesale after
	// an advance (win, failover, retirement) or a cancellation.
	EvFedOrderUpdated = "fed-order-updated"
	// EvFedGossip advances the gossip tick and, when Quote is present,
	// publishes one region's quote to the price board.
	EvFedGossip = "fed-gossip"
)

// EventSource is the firehose Source value the federation router
// publishes under; firehose consumers filtering routing events match
// on it and type-assert Payload to *FedEvent.
const EventSource = "fed"

// FedEvent is the single flat record type for the federation journal
// and the telemetry firehose. Order snapshots are deep copies, so
// adopting a decoded one at replay — or reading a published one from a
// firehose subscription — shares nothing with live routing state.
// Stats rides along as the full post-mutation counter set — carrying
// the absolute values instead of deltas keeps replay idempotent per
// event.
type FedEvent struct {
	Kind  string    `json:"k"`
	Order *FedOrder `json:"order,omitempty"`
	Stats *Stats    `json:"stats,omitempty"`
	Tick  int       `json:"tick,omitempty"`
	Quote *Quote    `json:"quote,omitempty"`
	// Breaker carries a circuit-breaker transition (EvFedBreaker events
	// only — telemetry-only, never journaled).
	Breaker *BreakerChange `json:"breaker,omitempty"`
}

// Bounded inline heal loop for routing appends, mirroring the market
// exchange's: each retry follows a journal Probe (torn-tail repair plus
// an fsync round trip) and doubling backoff, so a transient disk fault
// burst heals invisibly before the sticky journalErr latch trips.
const (
	fedAppendRetries   = 4
	fedAppendRetryBase = time.Millisecond
)

// emitLocked materializes the event to the routing journal (when one
// is attached) and the telemetry firehose (when a subscriber is
// listening). Callers hold f.mu, so journal order matches mutation
// order. Append failures are retried inline (the journal rolls failed
// appends back, so a retry reproduces the identical frame); failures
// that survive the retries are sticky (journalErr) and surfaced by the
// next SettleRegion/SubmitProduct/Cancel — advance paths deep in the
// router have no error return to thread one through; an event that
// failed to journal is still published, since the mutation it
// describes did happen.
func (f *Federation) emitLocked(ev *FedEvent) {
	if f.journal != nil && f.journalErr == nil {
		raw, err := json.Marshal(ev)
		if err != nil {
			f.journalErr = fmt.Errorf("federation: encode %s event: %w", ev.Kind, err)
		} else if err := f.appendRetryLocked(raw); err != nil {
			f.journalErr = fmt.Errorf("federation: journal %s event: %w", ev.Kind, err)
		}
	}
	f.fire.Publish(EventSource, ev.Kind, ev)
}

// appendRetryLocked appends with the bounded heal loop. It runs under
// f.mu — the backoff sleeps (single-digit milliseconds, fault paths
// only) briefly hold up routing, which is the correct trade against
// latching journalErr for a fault that would have healed.
func (f *Federation) appendRetryLocked(raw []byte) error {
	_, err := f.journal.Append(raw)
	if err == nil {
		return nil
	}
	backoff := fedAppendRetryBase
	for attempt := 0; attempt < fedAppendRetries; attempt++ {
		time.Sleep(backoff)
		backoff *= 2
		_ = f.journal.Probe()
		if _, err = f.journal.Append(raw); err == nil {
			return nil
		}
	}
	return err
}

// materializingLocked reports whether events are worth building at
// all: a journal is attached (and healthy) or a firehose subscriber is
// listening. Call sites check it before building a FedEvent so that
// the unwatched in-memory federation pays two branches on its hot
// paths — not an order deep-copy, a stats copy, and an event
// allocation that emitLocked would immediately discard. Callers must
// hold f.mu.
func (f *Federation) materializingLocked() bool {
	return (f.journal != nil && f.journalErr == nil) || f.fire.Active()
}

// applyEvent is the deterministic mutator replay dispatches through.
// Callers hold f.mu (or run single-threaded during recovery). Replay
// never publishes to the firehose: a recovered router does not re-emit
// its own history.
func (f *Federation) applyEvent(ev *FedEvent) error {
	switch ev.Kind {
	case EvFedOrderSubmitted:
		if ev.Order == nil || ev.Stats == nil {
			return fmt.Errorf("federation: replay: malformed %s event", ev.Kind)
		}
		fo := ev.Order
		if fo.ID != f.nextID {
			return fmt.Errorf("federation: replay: order %d out of sequence (next is %d)", fo.ID, f.nextID)
		}
		f.nextID = fo.ID + 1
		f.orders = append(f.orders, fo)
		f.byID[fo.ID] = fo
		if fo.Status == market.Open && fo.Active >= 0 {
			f.trackLocked(fo)
		}
		f.stats = *ev.Stats
		return nil
	case EvFedOrderUpdated:
		if ev.Order == nil || ev.Stats == nil {
			return fmt.Errorf("federation: replay: malformed %s event", ev.Kind)
		}
		fo, ok := f.byID[ev.Order.ID]
		if !ok {
			return fmt.Errorf("federation: replay: no order %d", ev.Order.ID)
		}
		*fo = *ev.Order
		f.stats = *ev.Stats
		for _, byID := range f.open {
			delete(byID, fo.ID)
		}
		if fo.Status == market.Open && fo.Active >= 0 {
			f.trackLocked(fo)
		}
		return nil
	case EvFedGossip:
		if ev.Tick > f.gossipTick {
			f.gossipTick = ev.Tick
		}
		if ev.Quote != nil {
			f.board[ev.Quote.Region] = *ev.Quote
		}
		return nil
	default:
		return fmt.Errorf("federation: unknown event kind %q", ev.Kind)
	}
}

// AttachTelemetry attaches the firehose the router publishes routing
// events to, under source "fed". Pass the same firehose to each
// region's market.Config.Telemetry to get the regional order-book
// events on the same stream. Telemetry is independent of journaling:
// either, both, or neither may be attached.
func (f *Federation) AttachTelemetry(fire *telemetry.Firehose) {
	f.mu.Lock()
	f.fire = fire
	f.mu.Unlock()
	// Breaker transitions publish to the same stream; the breaker set
	// keeps its own reference because transitions happen outside f.mu.
	f.breakers.setFire(fire)
}

// Telemetry returns the attached firehose, or nil.
func (f *Federation) Telemetry() *telemetry.Firehose {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fire
}

// GossipTick returns the current gossip clock — a monotonic counter of
// price-board refresh passes, exposed for /metrics.
func (f *Federation) GossipTick() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gossipTick
}

// Journal returns the router's attached journal, or nil — the /metrics
// exposition reads its counters.
func (f *Federation) Journal() *journal.Journal {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.journal
}
