package federation

import (
	"encoding/json"
	"fmt"

	"clustermarket/internal/market"
)

// Federation event kinds. Like the market's event stream, federation
// events record routing *results* — the wholesale order state after a
// decision, the quote a gossip pass produced — so replay is pure
// bookkeeping: no leg is resubmitted, no region re-settled, no quote
// recomputed.
const (
	// EvFedOrderSubmitted registers a routed order (legs priced and
	// ordered, first leg already booked in its region).
	EvFedOrderSubmitted = "fed-order-submitted"
	// EvFedOrderUpdated replaces an order's routing state wholesale after
	// an advance (win, failover, retirement) or a cancellation.
	EvFedOrderUpdated = "fed-order-updated"
	// EvFedGossip advances the gossip tick and, when Quote is present,
	// publishes one region's quote to the price board.
	EvFedGossip = "fed-gossip"
)

// fedEvent is the single flat record type for the federation journal.
// Order snapshots are deep copies, so adopting a decoded one at replay
// shares nothing with other state. Stats rides along as the full
// post-mutation counter set — carrying the absolute values instead of
// deltas keeps replay idempotent per event.
type fedEvent struct {
	Kind  string    `json:"k"`
	Order *FedOrder `json:"order,omitempty"`
	Stats *Stats    `json:"stats,omitempty"`
	Tick  int       `json:"tick,omitempty"`
	Quote *Quote    `json:"quote,omitempty"`
}

// logEventLocked appends the event to the federation journal, if one is
// attached. Callers hold f.mu, so journal order matches mutation order.
// Append failures are sticky (journalErr) and surfaced by the next
// SettleRegion/SubmitProduct/Cancel — advance paths deep in the router
// have no error return to thread one through.
func (f *Federation) logEventLocked(ev *fedEvent) {
	if f.journal == nil || f.journalErr != nil {
		return
	}
	raw, err := json.Marshal(ev)
	if err != nil {
		f.journalErr = fmt.Errorf("federation: encode %s event: %w", ev.Kind, err)
		return
	}
	if _, err := f.journal.Append(raw); err != nil {
		f.journalErr = fmt.Errorf("federation: journal %s event: %w", ev.Kind, err)
	}
}

// journalingLocked reports whether events are worth materializing at
// all. Call sites check it before building a fedEvent so that the
// in-memory federation (nil journal) pays one branch on its hot paths —
// not an order deep-copy, a stats copy, and an event allocation that
// logEventLocked would immediately discard. Callers must hold f.mu.
func (f *Federation) journalingLocked() bool {
	return f.journal != nil && f.journalErr == nil
}

// applyEvent is the deterministic mutator replay dispatches through.
// Callers hold f.mu (or run single-threaded during recovery).
func (f *Federation) applyEvent(ev *fedEvent) error {
	switch ev.Kind {
	case EvFedOrderSubmitted:
		if ev.Order == nil || ev.Stats == nil {
			return fmt.Errorf("federation: replay: malformed %s event", ev.Kind)
		}
		fo := ev.Order
		if fo.ID != f.nextID {
			return fmt.Errorf("federation: replay: order %d out of sequence (next is %d)", fo.ID, f.nextID)
		}
		f.nextID = fo.ID + 1
		f.orders = append(f.orders, fo)
		f.byID[fo.ID] = fo
		if fo.Status == market.Open && fo.Active >= 0 {
			f.trackLocked(fo)
		}
		f.stats = *ev.Stats
		return nil
	case EvFedOrderUpdated:
		if ev.Order == nil || ev.Stats == nil {
			return fmt.Errorf("federation: replay: malformed %s event", ev.Kind)
		}
		fo, ok := f.byID[ev.Order.ID]
		if !ok {
			return fmt.Errorf("federation: replay: no order %d", ev.Order.ID)
		}
		*fo = *ev.Order
		f.stats = *ev.Stats
		for _, byID := range f.open {
			delete(byID, fo.ID)
		}
		if fo.Status == market.Open && fo.Active >= 0 {
			f.trackLocked(fo)
		}
		return nil
	case EvFedGossip:
		if ev.Tick > f.gossipTick {
			f.gossipTick = ev.Tick
		}
		if ev.Quote != nil {
			f.board[ev.Quote.Region] = *ev.Quote
		}
		return nil
	default:
		return fmt.Errorf("federation: unknown event kind %q", ev.Kind)
	}
}
