package federation

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"

	"clustermarket/internal/telemetry"
)

// Per-region circuit breaker. A region that fails its calls repeatedly
// — in practice, a region partitioned away by the fault injector — is
// taken out of the routing rotation: the cheapest-first router skips
// legs whose region's breaker is open, falling through to the next leg
// with the existing at-most-one-leg failover, so a partition costs one
// failed probe per backoff window instead of a failed call per order.
//
// The lifecycle is the classic three-state machine with one twist: the
// open→half-open backoff is counted in *denied attempts*, not wall
// time. The scenario engine replays identical workloads and demands
// bit-identical fingerprints; a wall-clock breaker would reopen at
// schedule-dependent moments, while an attempt-count breaker is a pure
// function of the call sequence. The denial quota doubles each time the
// breaker reopens, plus a small deterministic jitter derived from
// (region, reopen count) so a fleet of breakers does not probe in
// lockstep.
const (
	// breakerThreshold is how many consecutive region-call failures open
	// the breaker.
	breakerThreshold = 3
	// breakerBaseQuota is the denied-attempt count before the first
	// half-open probe; it doubles per reopen (capped by breakerMaxShift).
	breakerBaseQuota = 4
	breakerMaxShift  = 6
	// breakerJitterSpan bounds the deterministic jitter added to each
	// quota.
	breakerJitterSpan = 3
)

// Breaker state names, as surfaced in telemetry and /healthz.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// EvFedBreaker is the telemetry kind published when a region's breaker
// changes state. Breaker events are operational weather: published to
// the firehose, never journaled (replay reconstructs routing results,
// and a recovered router starts with fresh breakers).
const EvFedBreaker = "breaker-state-changed"

// BreakerChange is the telemetry payload of one breaker transition.
type BreakerChange struct {
	Region string `json:"region"`
	From   string `json:"from"`
	To     string `json:"to"`
	// Fails is the consecutive-failure count at the transition; Opens
	// counts how many times this breaker has opened in total.
	Fails int `json:"fails,omitempty"`
	Opens int `json:"opens,omitempty"`
}

// BreakerStatus is one region's breaker state snapshot, shaped for
// /healthz and /metrics.
type BreakerStatus struct {
	Region string `json:"region"`
	State  string `json:"state"`
	Fails  int    `json:"fails"`
	Opens  int    `json:"opens"`
	// Denials counts attempts denied since the breaker last opened;
	// Quota is how many denials arm the next half-open probe.
	Denials int `json:"denials,omitempty"`
	Quota   int `json:"quota,omitempty"`
}

// breaker is one region's state. All fields are guarded by the owning
// breakerSet's mutex.
type breaker struct {
	state   string
	fails   int
	opens   int
	denials int
	quota   int
}

// breakerSet owns every region's breaker behind one leaf mutex —
// nothing is called while it is held; state-change events are published
// after release, like the fault injector's.
type breakerSet struct {
	mu       sync.Mutex
	byRegion map[string]*breaker
	fire     *telemetry.Firehose
}

func newBreakerSet(regions []*Region) *breakerSet {
	bs := &breakerSet{byRegion: make(map[string]*breaker, len(regions))}
	for _, r := range regions {
		bs.byRegion[r.name] = &breaker{state: BreakerClosed}
	}
	return bs
}

func (bs *breakerSet) setFire(f *telemetry.Firehose) {
	bs.mu.Lock()
	bs.fire = f
	bs.mu.Unlock()
}

// quotaFor computes the denial quota after the nth open: doubling
// backoff plus deterministic jitter so breakers across regions (or
// reopens) do not probe in lockstep, yet two runs of the same schedule
// probe at identical points.
func quotaFor(region string, opens int) int {
	shift := opens - 1
	if shift > breakerMaxShift {
		shift = breakerMaxShift
	}
	h := fnv.New32a()
	h.Write([]byte(region))
	h.Write([]byte(strconv.Itoa(opens)))
	return breakerBaseQuota<<uint(shift) + int(h.Sum32()%breakerJitterSpan)
}

// allow reports whether a call to the region may proceed. An open
// breaker denies and counts the denial; once the denials reach the
// quota the breaker moves to half-open and lets exactly one probe
// through (further calls are denied until the probe reports back via
// success or failure).
func (bs *breakerSet) allow(region string) bool {
	bs.mu.Lock()
	b, ok := bs.byRegion[region]
	if !ok {
		bs.mu.Unlock()
		return true
	}
	var change *BreakerChange
	allowed := true
	switch b.state {
	case BreakerOpen:
		b.denials++
		if b.denials >= b.quota {
			b.state = BreakerHalfOpen
			change = &BreakerChange{Region: region, From: BreakerOpen, To: BreakerHalfOpen, Fails: b.fails, Opens: b.opens}
		} else {
			allowed = false
		}
	case BreakerHalfOpen:
		// Probing: traffic flows, and the next success or failure report
		// settles the verdict (close or reopen with a doubled quota).
	}
	fire := bs.fire
	bs.mu.Unlock()
	bs.publish(fire, change)
	return allowed
}

// success reports a healthy region call: any breaker state collapses
// back to closed.
func (bs *breakerSet) success(region string) {
	bs.mu.Lock()
	b, ok := bs.byRegion[region]
	var change *BreakerChange
	if ok {
		if b.state != BreakerClosed {
			change = &BreakerChange{Region: region, From: b.state, To: BreakerClosed, Opens: b.opens}
		}
		b.state = BreakerClosed
		b.fails = 0
		b.denials = 0
	}
	fire := bs.fire
	bs.mu.Unlock()
	bs.publish(fire, change)
}

// failure reports a failed region call. Threshold consecutive failures
// open a closed breaker; a failed half-open probe reopens with a
// doubled quota.
func (bs *breakerSet) failure(region string) {
	bs.mu.Lock()
	b, ok := bs.byRegion[region]
	var change *BreakerChange
	if ok {
		b.fails++
		switch b.state {
		case BreakerClosed:
			if b.fails >= breakerThreshold {
				b.opens++
				b.denials = 0
				b.quota = quotaFor(region, b.opens)
				b.state = BreakerOpen
				change = &BreakerChange{Region: region, From: BreakerClosed, To: BreakerOpen, Fails: b.fails, Opens: b.opens}
			}
		case BreakerHalfOpen:
			b.opens++
			b.denials = 0
			b.quota = quotaFor(region, b.opens)
			b.state = BreakerOpen
			change = &BreakerChange{Region: region, From: BreakerHalfOpen, To: BreakerOpen, Fails: b.fails, Opens: b.opens}
		}
	}
	fire := bs.fire
	bs.mu.Unlock()
	bs.publish(fire, change)
}

func (bs *breakerSet) publish(fire *telemetry.Firehose, change *BreakerChange) {
	if change == nil || !fire.Active() {
		return
	}
	fire.Publish(EventSource, EvFedBreaker, &FedEvent{Kind: EvFedBreaker, Breaker: change})
}

func (bs *breakerSet) snapshot() []BreakerStatus {
	bs.mu.Lock()
	out := make([]BreakerStatus, 0, len(bs.byRegion))
	for name, b := range bs.byRegion {
		out = append(out, BreakerStatus{
			Region: name, State: b.state, Fails: b.fails,
			Opens: b.opens, Denials: b.denials, Quota: b.quota,
		})
	}
	bs.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Region < out[j].Region })
	return out
}

// BreakerStates returns every region's breaker status, sorted by region
// name — the /healthz and /metrics read path.
func (f *Federation) BreakerStates() []BreakerStatus {
	return f.breakers.snapshot()
}
