package federation

import "testing"

// TestingRegion exposes the in-package testRegion helper to the external
// federation_test package (the conservation tests, which live outside
// the package to consume the invariant kernel without an import cycle).
// Region test topology lives in exactly one place.
func TestingRegion(t testing.TB, name string, clusters int, util float64) *Region {
	return testRegion(t, name, clusters, util)
}
