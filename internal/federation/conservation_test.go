package federation

import (
	"math/rand"
	"testing"

	"clustermarket/internal/market"
	"clustermarket/internal/resource"
)

func poolOf(cluster string) resource.Pool {
	return resource.Pool{Cluster: cluster, Dim: resource.CPU}
}

// TestFederatedLedgerConservation drives a randomized multi-epoch
// federated market and asserts, after every settlement wave, the
// invariants the market's books must never violate:
//
//   - every region's double-entry ledger sums to zero;
//   - no team balance goes negative in any region;
//   - per auction, the quota won in a region never exceeds that region's
//     capacity in any pool;
//   - no federated order wins more than one leg.
func TestFederatedLedgerConservation(t *testing.T) {
	f, err := NewFederation(
		testRegion(t, "hot", 2, 0.8),
		testRegion(t, "warm", 2, 0.5),
		testRegion(t, "cold", 2, 0.1),
	)
	if err != nil {
		t.Fatal(err)
	}
	teams := []string{"alpha", "beta", "gamma", "delta"}
	for _, tm := range teams {
		if err := f.OpenAccount(tm); err != nil {
			t.Fatal(err)
		}
	}
	clusters := []string{"hot-r1", "hot-r2", "warm-r1", "warm-r2", "cold-r1", "cold-r2"}
	products := []string{"batch-compute", "serving-frontend", "gfs-storage"}
	rng := rand.New(rand.NewSource(99))

	for epoch := 0; epoch < 8; epoch++ {
		for i := 0; i < 12; i++ {
			team := teams[rng.Intn(len(teams))]
			product := products[rng.Intn(len(products))]
			// Between one and three acceptable clusters, possibly spanning
			// regions (the cross-region XOR path).
			n := 1 + rng.Intn(3)
			perm := rng.Perm(len(clusters))[:n]
			var cs []string
			for _, pi := range perm {
				cs = append(cs, clusters[pi])
			}
			qty := 1 + rng.Float64()*3
			limit := 5 + rng.Float64()*200
			if _, err := f.SubmitProduct(team, product, qty, cs, limit); err != nil {
				t.Fatalf("epoch %d submit: %v", epoch, err)
			}
		}
		for _, tk := range f.Tick() {
			if tk.Err != nil {
				t.Fatalf("epoch %d region %s: %v", epoch, tk.Region, tk.Err)
			}
		}
		assertConserved(t, f, epoch)
	}
}

// assertConserved checks the conservation invariants across every region
// after a settlement wave.
func assertConserved(t *testing.T, f *Federation, epoch int) {
	t.Helper()
	if !f.LedgerBalanced(1e-6) {
		t.Fatalf("epoch %d: federated ledger unbalanced", epoch)
	}
	for _, r := range f.Regions() {
		ex := r.Exchange()
		for _, team := range ex.Teams() {
			bal, err := ex.Balance(team)
			if err != nil {
				t.Fatal(err)
			}
			if bal < -1e-6 {
				t.Fatalf("epoch %d: %s/%s balance %g < 0", epoch, r.Name(), team, bal)
			}
		}
		assertWonWithinCapacity(t, ex, r.Name(), epoch)
	}
	for _, fo := range f.Orders() {
		won := 0
		for _, l := range fo.Legs {
			if l.Status == market.Won {
				won++
			}
		}
		if won > 1 {
			t.Fatalf("epoch %d: order %d won %d legs", epoch, fo.ID, won)
		}
		if fo.Status == market.Won && won != 1 {
			t.Fatalf("epoch %d: order %d won with %d winning legs", epoch, fo.ID, won)
		}
	}
}

// assertWonWithinCapacity verifies that, for every settled auction, the
// total quantity won per pool stays within the region's capacity — the
// operator can only sell capacity the region physically has.
func assertWonWithinCapacity(t *testing.T, ex *market.Exchange, region string, epoch int) {
	t.Helper()
	reg := ex.Registry()
	cap := ex.Fleet().CapacityVector(reg)
	wonPerAuction := make(map[int]resource.Vector)
	for _, o := range ex.Orders() {
		if o.Status != market.Won {
			continue
		}
		v, ok := wonPerAuction[o.Auction]
		if !ok {
			v = reg.Zero()
			wonPerAuction[o.Auction] = v
		}
		for i, q := range o.Allocation {
			if q > 0 {
				v[i] += q
			}
		}
	}
	for auction, won := range wonPerAuction {
		for i, q := range won {
			if q > cap[i]+1e-6 {
				t.Fatalf("epoch %d: region %s auction %d won %g of %s, capacity %g",
					epoch, region, auction, q, reg.Pool(i), cap[i])
			}
		}
	}
}
