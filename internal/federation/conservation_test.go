// Conservation tests live in the external test package so they can
// consume the shared invariant kernel (internal/invariant imports
// federation; an in-package test would be an import cycle).
package federation_test

import (
	"fmt"
	"math/rand"
	"testing"

	"clustermarket/internal/federation"
	"clustermarket/internal/invariant"
)

// TestFederatedLedgerConservation drives a randomized multi-epoch
// federated market and runs the shared invariant kernel after every
// settlement wave: every region's books pass the full exchange-level
// kernel, XOR legs win at most once, and winning legs agree with the
// regional book that settled them.
func TestFederatedLedgerConservation(t *testing.T) {
	f, err := federation.NewFederation(
		federation.TestingRegion(t, "hot", 2, 0.8),
		federation.TestingRegion(t, "warm", 2, 0.5),
		federation.TestingRegion(t, "cold", 2, 0.1),
	)
	if err != nil {
		t.Fatal(err)
	}
	teams := []string{"alpha", "beta", "gamma", "delta"}
	for _, tm := range teams {
		if err := f.OpenAccount(tm); err != nil {
			t.Fatal(err)
		}
	}
	clusters := []string{"hot-r1", "hot-r2", "warm-r1", "warm-r2", "cold-r1", "cold-r2"}
	products := []string{"batch-compute", "serving-frontend", "gfs-storage"}
	rng := rand.New(rand.NewSource(99))

	for epoch := 0; epoch < 8; epoch++ {
		for i := 0; i < 12; i++ {
			team := teams[rng.Intn(len(teams))]
			product := products[rng.Intn(len(products))]
			// Between one and three acceptable clusters, possibly spanning
			// regions (the cross-region XOR path).
			n := 1 + rng.Intn(3)
			perm := rng.Perm(len(clusters))[:n]
			var cs []string
			for _, pi := range perm {
				cs = append(cs, clusters[pi])
			}
			qty := 1 + rng.Float64()*3
			limit := 5 + rng.Float64()*200
			if _, err := f.SubmitProduct(team, product, qty, cs, limit); err != nil {
				t.Fatalf("epoch %d submit: %v", epoch, err)
			}
		}
		for _, tk := range f.Tick() {
			if tk.Err != nil {
				t.Fatalf("epoch %d region %s: %v", epoch, tk.Region, tk.Err)
			}
		}
		invariant.RequireFederation(t, fmt.Sprintf("epoch %d", epoch), f)
	}
}
