package federation

import (
	"math"
	"sort"
)

var inf = math.Inf(1)

// staleQuoteBound is the gossip-staleness bound: a board quote more than
// this many gossip ticks behind the clock is suspect — the region it
// prices may have been partitioned away since — and the router
// deprioritizes legs priced from it (see SubmitProduct's leg sort).
const staleQuoteBound = 3

// Quote is one region's entry on the federation's price board: the most
// recent view of that region's prices, refreshed by gossip ticks.
type Quote struct {
	Region string
	// Prices is indexed by the region's own registry.
	Prices []float64
	// Clearing reports whether the prices came from a converged auction
	// (true) or are the reserve-price fallback used before the region's
	// first settlement (false).
	Clearing bool
	// Tick is the gossip tick at which the quote was captured; stale
	// quotes carry older ticks.
	Tick int
}

// Gossip refreshes the price board from every region — the periodic
// exchange of "last clearing / preliminary prices" that lets the router
// order cross-region legs cheapest-first without a global price oracle.
// Regions whose quote cannot be computed keep their previous entry.
// It returns the new gossip tick.
func (f *Federation) Gossip() int {
	f.mu.Lock()
	tick := f.gossipTick + 1
	f.gossipTick = tick
	if f.materializingLocked() {
		f.emitLocked(&FedEvent{Kind: EvFedGossip, Tick: tick})
	}
	f.mu.Unlock()

	// Quotes read region exchanges without holding f.mu: gossip must not
	// block routing, and region reads are themselves synchronized. A
	// concurrent SettleRegion may have gossiped a region at a newer tick
	// while this pass was reading — never regress the board to the older
	// quote.
	for _, r := range f.regions {
		q, err := r.quote(tick)
		if err != nil {
			continue
		}
		f.mu.Lock()
		if cur, ok := f.board[r.name]; !ok || cur.Tick <= tick {
			f.board[r.name] = q
			// Journaled after the fact it was accepted: replay re-applies
			// exactly the board updates that happened, in order.
			if f.materializingLocked() {
				f.emitLocked(&FedEvent{Kind: EvFedGossip, Tick: tick, Quote: &q})
			}
		}
		f.mu.Unlock()
	}
	return tick
}

// gossipRegionLocked refreshes one region's quote. Callers must hold
// f.mu; the region read itself is lock-ordered safe (f.mu is never taken
// inside exchange locks).
func (f *Federation) gossipRegionLocked(r *Region) {
	q, err := r.quote(f.gossipTick)
	if err != nil {
		return
	}
	f.board[r.name] = q
	if f.materializingLocked() {
		f.emitLocked(&FedEvent{Kind: EvFedGossip, Tick: f.gossipTick, Quote: &q})
	}
}

// Board returns a snapshot of the price board sorted by region name.
func (f *Federation) Board() []Quote {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Quote, 0, len(f.board))
	for _, q := range f.board {
		c := q
		c.Prices = append([]float64(nil), q.Prices...)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Region < out[j].Region })
	return out
}

// quoteLocked returns the board entry for a region, gossiping it on
// demand when the board has never seen the region. Callers must hold
// f.mu.
func (f *Federation) quoteLocked(r *Region) (Quote, bool) {
	if q, ok := f.board[r.name]; ok {
		return q, true
	}
	f.gossipRegionLocked(r)
	q, ok := f.board[r.name]
	return q, ok
}
