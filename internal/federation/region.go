// Package federation scales the single-exchange market of Section V into
// a planet-wide federation of regional markets. Each Region wraps one
// Exchange over its own fleet (its own reserve pricer, order book, and
// epoch cadence); a Federation fronts N regions behind one API, routing
// region-local bids straight to their home exchange and splitting
// cross-region XOR bids into per-region legs that are tried cheapest
// region first, guided by a gossip-refreshed price board.
//
// This is the sharding direction the related work points to — Haddadi et
// al.'s federated cloud marketplace (autonomous markets behind a broker)
// and Tycoon's distributed per-host auctioneers (PAPERS.md) — applied to
// the paper's clock-auction market: many local markets, demand steered
// between them on price, exactly as the paper's substitution bundles
// ("40 cores in EU or US") intend.
package federation

import (
	"errors"
	"fmt"

	"clustermarket/internal/cluster"
	"clustermarket/internal/journal"
	"clustermarket/internal/market"
	"clustermarket/internal/resource"
)

// Region is one autonomous regional market: a named Exchange over its own
// fleet. Cluster names inside a region conventionally carry the region
// name as a prefix ("eu-r1"), which keeps pools namespaced per region and
// globally unambiguous across the federation.
type Region struct {
	name string
	ex   *market.Exchange
}

// NewRegion wires a regional exchange to its fleet. The region name must
// be non-empty; the fleet must have at least one cluster. The
// market.Config applies to the region's exchange verbatim — including
// the clock engine selector (Config.Engine), so a federation can run
// every regional auctioneer on the incremental engine or pin one to the
// dense reference path for ablation; the sub-market decomposition mode
// (Config.Partition), so each regional clock clears its independent
// bidder–pool components concurrently (or is pinned to the merged
// single-clock run with core.PartitionOff); and the book stripe count
// (Config.Shards), so every regional intake pipeline is itself
// contention-free under the federation router's concurrent leg routing.
func NewRegion(name string, fleet *cluster.Fleet, cfg market.Config) (*Region, error) {
	if name == "" {
		return nil, errors.New("federation: empty region name")
	}
	ex, err := market.NewExchange(fleet, cfg)
	if err != nil {
		return nil, fmt.Errorf("federation: region %q: %w", name, err)
	}
	return &Region{name: name, ex: ex}, nil
}

// RecoverRegion rebuilds a crashed region from its journal recovery: the
// fleet must be reconstructed to its as-built state by the caller (it is
// not journaled), and cfg must match the crashed process's configuration.
// The recovery's snapshot and WAL tail are replayed through the region
// exchange's deterministic apply layer; cfg.Journal (if set) is attached
// only after replay completes. Callers should run
// invariant.CheckExchange on the recovered exchange before serving.
func RecoverRegion(name string, fleet *cluster.Fleet, cfg market.Config, rec *journal.Recovery) (*Region, error) {
	if name == "" {
		return nil, errors.New("federation: empty region name")
	}
	ex, err := market.Recover(fleet, cfg, rec)
	if err != nil {
		return nil, fmt.Errorf("federation: region %q: %w", name, err)
	}
	return &Region{name: name, ex: ex}, nil
}

// Name returns the region's name.
func (r *Region) Name() string { return r.name }

// Exchange returns the region's exchange.
func (r *Region) Exchange() *market.Exchange { return r.ex }

// Clusters returns the region's cluster names in registration order.
func (r *Region) Clusters() []string { return r.ex.Fleet().ClusterNames() }

// quote captures the region's current view of prices for the board: the
// last clearing prices when an auction has converged, otherwise the live
// reserve prices.
func (r *Region) quote(tick int) (Quote, error) {
	q := Quote{Region: r.name, Tick: tick}
	if p := r.ex.LastClearingPrices(); p != nil {
		q.Prices, q.Clearing = p, true
		return q, nil
	}
	p, err := r.ex.ReservePrices()
	if err != nil {
		return Quote{}, err
	}
	q.Prices = p
	return q, nil
}

// legCost prices a product cover in this region at the quoted prices:
// the cheapest acceptable cluster's cost (the same min the bidder proxy
// would take). Unknown clusters cost +Inf.
func (r *Region) legCost(q Quote, cover cluster.Usage, clusters []string) float64 {
	reg := r.ex.Registry()
	best := -1.0
	for _, cl := range clusters {
		cost, found := 0.0, false
		for _, d := range resource.StandardDimensions {
			if i, ok := reg.Index(resource.Pool{Cluster: cl, Dim: d}); ok && i < len(q.Prices) {
				cost += cover.Get(d) * q.Prices[i]
				found = true
			}
		}
		if found && (best < 0 || cost < best) {
			best = cost
		}
	}
	if best < 0 {
		return inf
	}
	return best
}
