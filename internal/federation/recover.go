package federation

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"clustermarket/internal/journal"
	"clustermarket/internal/market"
)

// fedState is the JSON snapshot of the federation's routing state: the
// order table, price board, gossip clock, and router counters. The
// regional exchanges are NOT part of the image — each region journals
// its own book (see market.Snapshot) and is recovered separately before
// the federation is reassembled on top.
type fedState struct {
	NextID     int         `json:"next_id"`
	GossipTick int         `json:"gossip_tick"`
	Stats      Stats       `json:"stats"`
	Board      []Quote     `json:"board,omitempty"`
	Orders     []*FedOrder `json:"orders,omitempty"`
}

// AttachJournal attaches the routing journal. Every subsequent routing
// state change is logged as a FedEvent before SettleRegion returns, and
// a snapshot is written every snapshotEvery settlements (non-positive
// disables the cadence; Snapshot can still be called explicitly). When
// recovering, call Restore first so replayed events are not re-journaled
// as new ones.
func (f *Federation) AttachJournal(j *journal.Journal, snapshotEvery int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.journal = j
	f.snapshotEvery = snapshotEvery
}

// Snapshot writes a consistent snapshot of the routing state to the
// attached journal and rotates its WAL, bounding recovery replay. Every
// routing mutation and its event append happen under f.mu, so the image
// built here corresponds exactly to the journal's sequence number. It is
// a no-op without a journal.
func (f *Federation) Snapshot() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.journal == nil {
		return nil
	}
	st := &fedState{NextID: f.nextID, GossipTick: f.gossipTick, Stats: f.stats}
	for _, q := range f.board {
		c := q
		c.Prices = append([]float64(nil), q.Prices...)
		st.Board = append(st.Board, c)
	}
	sort.Slice(st.Board, func(i, j int) bool { return st.Board[i].Region < st.Board[j].Region })
	st.Orders = make([]*FedOrder, len(f.orders))
	for i, fo := range f.orders {
		st.Orders[i] = fo.snapshot()
	}
	raw, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("federation: encode snapshot: %w", err)
	}
	return f.journal.Snapshot(raw)
}

// Restore loads a routing journal recovery into a freshly assembled
// federation: the snapshot image (if any) first, then a deterministic
// replay of the WAL tail through applyEvent. The member regions must
// already have been recovered to the same cut (their own journals are
// written in lockstep with this one — every routing event follows the
// regional mutations it records). Call before AttachJournal and before
// the federation is shared.
func (f *Federation) Restore(rec *journal.Recovery) error {
	if rec == nil {
		return errors.New("federation: Restore: nil recovery")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.orders) != 0 || f.nextID != 0 {
		return errors.New("federation: Restore: federation already has routing state")
	}
	if len(rec.Snapshot) > 0 {
		var st fedState
		if err := json.Unmarshal(rec.Snapshot, &st); err != nil {
			return fmt.Errorf("federation: decode snapshot: %w", err)
		}
		f.nextID = st.NextID
		f.gossipTick = st.GossipTick
		f.stats = st.Stats
		for _, q := range st.Board {
			f.board[q.Region] = q
		}
		f.orders = st.Orders
		for _, fo := range f.orders {
			f.byID[fo.ID] = fo
			if fo.Status == market.Open && fo.Active >= 0 {
				f.trackLocked(fo)
			}
		}
	}
	for i, raw := range rec.Records {
		seq := rec.SnapshotSeq + uint64(i) + 1
		var ev FedEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return fmt.Errorf("federation: decode record at seq %d: %w", seq, err)
		}
		if err := f.applyEvent(&ev); err != nil {
			return fmt.Errorf("federation: replay record at seq %d: %w", seq, err)
		}
	}
	return nil
}
