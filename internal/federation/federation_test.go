package federation

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"clustermarket/internal/cluster"
	"clustermarket/internal/market"
	"clustermarket/internal/resource"
)

func poolOf(cluster string) resource.Pool {
	return resource.Pool{Cluster: cluster, Dim: resource.CPU}
}

// testRegion builds a region of `clusters` uniform clusters filled to the
// given utilization, with clusters named "<name>-r1", "<name>-r2", ….
func testRegion(t testing.TB, name string, clusters int, util float64) *Region {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	fleet := cluster.NewFleet()
	for i := 1; i <= clusters; i++ {
		cn := fmt.Sprintf("%s-r%d", name, i)
		c := cluster.New(cn, nil)
		c.AddMachines(20, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			t.Fatal(err)
		}
		if util > 0 {
			if err := fleet.FillToUtilization(rng, cn, cluster.Usage{CPU: util, RAM: util, Disk: util}); err != nil {
				t.Fatal(err)
			}
		}
	}
	r, err := NewRegion(name, fleet, market.Config{InitialBudget: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// hotCold builds the canonical two-region federation: "hot" congested,
// "cold" nearly idle, with one funded team.
func hotCold(t testing.TB) *Federation {
	t.Helper()
	f, err := NewFederation(testRegion(t, "hot", 2, 0.85), testRegion(t, "cold", 2, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.OpenAccount("team"); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFederationValidation(t *testing.T) {
	if _, err := NewFederation(); err == nil {
		t.Error("empty federation accepted")
	}
	a := testRegion(t, "a", 1, 0)
	if _, err := NewFederation(a, testRegion(t, "a", 1, 0)); err == nil {
		t.Error("duplicate region name accepted")
	}
	// Duplicate cluster name across differently named regions.
	dupFleet := cluster.NewFleet()
	c := cluster.New("a-r1", nil)
	c.AddMachines(2, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
	if err := dupFleet.AddCluster(c); err != nil {
		t.Fatal(err)
	}
	b, err := NewRegion("b", dupFleet, market.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFederation(a, b); err == nil {
		t.Error("duplicate cluster name accepted")
	}
	if _, err := NewRegion("", cluster.NewFleet(), market.Config{}); err == nil {
		t.Error("empty region name accepted")
	}
}

func TestRegionLocalRouting(t *testing.T) {
	f := hotCold(t)
	fo, err := f.SubmitProduct("team", "batch-compute", 2, []string{"cold-r1", "cold-r2"}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(fo.Legs) != 1 || fo.Legs[0].Region != "cold" {
		t.Fatalf("legs = %+v, want one cold leg", fo.Legs)
	}
	if len(fo.Legs[0].Clusters) != 2 {
		t.Errorf("intra-region XOR collapsed: %v", fo.Legs[0].Clusters)
	}
	ticks := f.Tick()
	for _, tk := range ticks {
		if tk.Err != nil {
			t.Fatalf("region %s: %v", tk.Region, tk.Err)
		}
		// The hot region's book is empty: a region-local order must not
		// touch foreign exchanges.
		if tk.Region == "hot" && tk.Record != nil {
			t.Errorf("hot region settled %d orders for a cold-only bid", tk.Record.Submitted)
		}
	}
	got, err := f.Order(fo.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != market.Won {
		t.Fatalf("order status = %s, want won", got.Status)
	}
	if got.Region != "cold" {
		t.Errorf("won in %q, want cold", got.Region)
	}
	if got.Payment <= 0 {
		t.Errorf("payment = %g", got.Payment)
	}
	if !f.LedgerBalanced(1e-9) {
		t.Error("ledger unbalanced")
	}
}

func TestCrossRegionRoutesCheapestFirst(t *testing.T) {
	f := hotCold(t)
	fo, err := f.SubmitProduct("team", "batch-compute", 2, []string{"hot-r1", "cold-r1"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(fo.Legs) != 2 {
		t.Fatalf("legs = %d, want 2", len(fo.Legs))
	}
	// The hot region's congestion-weighted reserve prices dwarf the cold
	// region's, so the price board must order the cold leg first.
	if fo.Legs[0].Region != "cold" {
		t.Fatalf("first leg routed to %q, want cold (ests: %g vs %g)",
			fo.Legs[0].Region, fo.Legs[0].Est, fo.Legs[1].Est)
	}
	if fo.Legs[0].Est >= fo.Legs[1].Est {
		t.Errorf("cold est %g not below hot est %g", fo.Legs[0].Est, fo.Legs[1].Est)
	}
	if fo.Legs[1].OrderID != -1 {
		t.Error("second leg submitted before the first lost")
	}
	f.Tick()
	got, _ := f.Order(fo.ID)
	if got.Status != market.Won || got.Region != "cold" {
		t.Fatalf("order = %s in %q, want won in cold", got.Status, got.Region)
	}
	st := f.Stats()
	if st.CrossRegion != 1 || st.Won != 1 || st.Failovers != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFailoverAfterLosingLeg(t *testing.T) {
	f := hotCold(t)
	// Poison the board with a stale quote that makes the hot region look
	// free, so the router books the hot leg first even though the bid's
	// limit cannot cover the hot region's true reserve prices.
	f.mu.Lock()
	hot := f.byName["hot"]
	cheap := hot.ex.Registry().Zero()
	f.board["hot"] = Quote{Region: "hot", Prices: cheap, Tick: 1}
	f.mu.Unlock()

	// limit 12: covers 2 batch-compute workers in the cold region (~5.5
	// at idle reserve prices) but not in the hot region, where congestion
	// weights push the same cover past 24.
	fo, err := f.SubmitProduct("team", "batch-compute", 2, []string{"hot-r1", "cold-r1"}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if fo.Legs[0].Region != "hot" {
		t.Fatalf("stale board ignored: first leg %q", fo.Legs[0].Region)
	}

	// Epoch 1: the hot leg is priced out and loses; the router must fail
	// over to the cold region within the same tick.
	f.Tick()
	got, _ := f.Order(fo.ID)
	if got.Legs[0].Status != market.Lost {
		t.Fatalf("hot leg = %s, want lost", got.Legs[0].Status)
	}
	if got.Status != market.Open || got.Active != 1 || got.Legs[1].OrderID < 0 {
		t.Fatalf("failover did not book cold leg: %+v", got)
	}
	if st := f.Stats(); st.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", st.Failovers)
	}

	// Epoch 2: the cold leg settles and wins. Exactly one leg won.
	f.Tick()
	got, _ = f.Order(fo.ID)
	if got.Status != market.Won || got.Region != "cold" {
		t.Fatalf("order = %s in %q, want won in cold", got.Status, got.Region)
	}
	wonLegs := 0
	for _, l := range got.Legs {
		if l.Status == market.Won {
			wonLegs++
		}
	}
	if wonLegs != 1 {
		t.Errorf("%d legs won, want exactly 1 (XOR broken)", wonLegs)
	}
	// After the gossip ticks, the board's cold entry reflects a converged
	// settlement.
	for _, q := range f.Board() {
		if q.Region == "cold" && !q.Clearing {
			t.Error("cold quote still reserve-based after settlement")
		}
	}
}

func TestOrderExhaustsAllLegs(t *testing.T) {
	f := hotCold(t)
	// A limit below even the cold region's cost loses everywhere.
	fo, err := f.SubmitProduct("team", "batch-compute", 2, []string{"hot-r1", "cold-r1"}, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	f.Tick() // cold leg loses, failover books hot
	f.Tick() // hot leg loses, no legs left
	got, _ := f.Order(fo.ID)
	if got.Status != market.Lost {
		t.Fatalf("order = %s, want lost after exhausting legs", got.Status)
	}
	for _, l := range got.Legs {
		if l.Status == market.Won {
			t.Error("a leg won below cost")
		}
	}
	if st := f.Stats(); st.Lost != 1 {
		t.Errorf("lost = %d, want 1", st.Lost)
	}
}

func TestSettleRegionAdvancesRouting(t *testing.T) {
	f := hotCold(t)
	fo, err := f.SubmitProduct("team", "batch-compute", 1, []string{"hot-r1", "cold-r1"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SettleRegion("nowhere"); err == nil {
		t.Error("unknown region accepted")
	}
	rec, err := f.SettleRegion("cold")
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Settled != 1 {
		t.Fatalf("record = %+v", rec)
	}
	// The manual settlement advanced the router and gossiped prices.
	got, _ := f.Order(fo.ID)
	if got.Status != market.Won || got.Region != "cold" {
		t.Fatalf("order = %s in %q after SettleRegion", got.Status, got.Region)
	}
	for _, q := range f.Board() {
		if q.Region == "cold" && !q.Clearing {
			t.Error("cold quote not clearing after manual settlement")
		}
	}
	// An empty book reports the exchange's no-open-orders error.
	if _, err := f.SettleRegion("cold"); err == nil {
		t.Error("empty-book settlement reported no error")
	}
}

func TestCancelWithdrawsActiveLeg(t *testing.T) {
	f := hotCold(t)
	fo, err := f.SubmitProduct("team", "batch-compute", 1, []string{"cold-r1"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Cancel(fo.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := f.Order(fo.ID)
	if got.Status != market.Cancelled {
		t.Fatalf("status = %s", got.Status)
	}
	if err := f.Cancel(fo.ID); err == nil {
		t.Error("double cancel accepted")
	}
	if err := f.Cancel(9999); err == nil {
		t.Error("cancel of unknown order accepted")
	}
	// The regional book must be empty again.
	if n := f.Region("cold").Exchange().OpenOrderCount(); n != 0 {
		t.Errorf("cold open orders = %d after cancel", n)
	}
}

func TestSubmitValidation(t *testing.T) {
	f := hotCold(t)
	if _, err := f.SubmitProduct("team", "no-such-product", 1, []string{"cold-r1"}, 10); err == nil {
		t.Error("unknown product accepted")
	}
	if _, err := f.SubmitProduct("team", "batch-compute", -1, []string{"cold-r1"}, 10); err == nil {
		t.Error("negative quantity accepted")
	}
	if _, err := f.SubmitProduct("team", "batch-compute", 1, nil, 10); err == nil {
		t.Error("empty cluster list accepted")
	}
	if _, err := f.SubmitProduct("team", "batch-compute", 1, []string{"mars-r1"}, 10); err == nil {
		t.Error("unknown cluster accepted")
	}
	if _, err := f.SubmitProduct("ghost", "batch-compute", 1, []string{"cold-r1"}, 10); err == nil {
		t.Error("unknown team accepted")
	}
}

func TestAccountsAndBalances(t *testing.T) {
	f := hotCold(t)
	bal, err := f.Balance("team")
	if err != nil {
		t.Fatal(err)
	}
	if bal != 2e6 { // 1e6 per region
		t.Errorf("balance = %g, want 2e6", bal)
	}
	if err := f.OpenAccount("team"); err == nil {
		t.Error("duplicate account accepted")
	}
	teams := f.Teams()
	if len(teams) != 1 || teams[0] != "team" {
		t.Errorf("teams = %v", teams)
	}
	if f.RegionOf("cold-r1") != "cold" || f.RegionOf("nowhere") != "" {
		t.Error("RegionOf wrong")
	}
}

func TestSummaryAndHistoryAggregation(t *testing.T) {
	f := hotCold(t)
	if _, err := f.SubmitProduct("team", "batch-compute", 1, []string{"cold-r1"}, 200); err != nil {
		t.Fatal(err)
	}
	f.Tick()
	sums, err := f.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("regions in summary = %d", len(sums))
	}
	var hot, cold RegionSummary
	for _, s := range sums {
		switch s.Region {
		case "hot":
			hot = s
		case "cold":
			cold = s
		}
	}
	if cold.Auctions != 1 || cold.Settled != 1 {
		t.Errorf("cold summary = %+v", cold)
	}
	if hot.Auctions != 0 {
		t.Errorf("hot settled an auction over an empty book")
	}
	if hot.MeanCPUPrice <= cold.MeanCPUPrice {
		t.Errorf("hot CPU price %g not above cold %g", hot.MeanCPUPrice, cold.MeanCPUPrice)
	}
	hist := f.History()
	if len(hist["cold"]) != 1 || len(hist["hot"]) != 0 {
		t.Errorf("history = %d cold, %d hot", len(hist["cold"]), len(hist["hot"]))
	}
	if led := f.Ledger(); len(led) == 0 {
		t.Error("empty federated ledger after a settlement")
	}
	if ph := f.PriceHistory(poolOf("cold-r1")); len(ph) != 1 {
		t.Errorf("price history = %v", ph)
	}
	if ph := f.PriceHistory(poolOf("mars-r1")); ph != nil {
		t.Error("price history for unknown cluster")
	}
}

func TestServeSettlesConcurrently(t *testing.T) {
	f := hotCold(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Serve(ctx, 2*time.Millisecond) }()

	// Hammer the router from several goroutines while both region loops
	// settle: region-local and cross-region orders interleaved.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				clusters := []string{"cold-r1"}
				if i%2 == 0 {
					clusters = []string{"hot-r1", "cold-r1"}
				}
				limit := float64(20 + (g*13+i*7)%80)
				if _, err := f.SubmitProduct("team", "batch-compute", 1, clusters, limit); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Let a few epochs pass so batches settle and failovers route.
	time.Sleep(30 * time.Millisecond)
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Serve returned %v", err)
	}
	// Drain any in-flight legs deterministically.
	for i := 0; i < 4; i++ {
		f.Tick()
	}
	if !f.LedgerBalanced(1e-6) {
		t.Error("federated ledger unbalanced")
	}
	for _, fo := range f.Orders() {
		won := 0
		for _, l := range fo.Legs {
			if l.Status == market.Won {
				won++
			}
		}
		if won > 1 {
			t.Fatalf("order %d won %d legs (XOR broken)", fo.ID, won)
		}
	}
	if err := f.Serve(context.Background(), 0); err == nil {
		t.Error("non-positive epoch accepted")
	}
}

// TestOrderLookupIsIndexed pins the byID index behind Order and Cancel:
// lookups resolve the right order among many (the router polls order
// state on every leg advance, so this path must not scan the whole
// history), and misses still error.
func TestOrderLookupIsIndexed(t *testing.T) {
	f := hotCold(t)
	var ids []int
	for i := 0; i < 20; i++ {
		fo, err := f.SubmitProduct("team", "batch-compute", 1, []string{"cold-r1"}, 100+float64(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, fo.ID)
	}
	for i, id := range ids {
		fo, err := f.Order(id)
		if err != nil {
			t.Fatal(err)
		}
		if fo.ID != id || fo.Limit != 100+float64(i) {
			t.Fatalf("Order(%d) = id %d limit %v", id, fo.ID, fo.Limit)
		}
	}
	if _, err := f.Order(999); err == nil {
		t.Error("unknown order id resolved")
	}
	if err := f.Cancel(999); err == nil {
		t.Error("unknown order id cancelled")
	}
	// Cancel through the index still withdraws the regional leg.
	if err := f.Cancel(ids[3]); err != nil {
		t.Fatal(err)
	}
	fo, err := f.Order(ids[3])
	if err != nil || fo.Status != market.Cancelled {
		t.Fatalf("cancelled order = %+v, %v", fo, err)
	}
	// The bounded tail returns the most recently routed orders in order.
	tail := f.OrdersTail(3)
	if len(tail) != 3 || tail[0].ID != ids[17] || tail[2].ID != ids[19] {
		t.Fatalf("OrdersTail(3) = %+v", tail)
	}
	if f.OrdersTail(0) != nil {
		t.Error("non-positive tail limit returned entries")
	}
}
