package federation

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"clustermarket/internal/fault"
	"clustermarket/internal/journal"
	"clustermarket/internal/market"
	"clustermarket/internal/resource"
	"clustermarket/internal/telemetry"
)

// Leg is one regional slice of a federated order: the subset of the
// acceptable clusters owned by a single region, plus the regional order
// it became once submitted there.
type Leg struct {
	Region string
	// Clusters is the intra-region XOR alternative set.
	Clusters []string
	// Est is the price-board cost estimate used to order legs at routing
	// time (cheapest region first).
	Est float64
	// Suspect marks a leg priced from a quote older than the gossip
	// staleness bound: the router still tries it, but only after every
	// fresh-quoted leg, however cheap the stale numbers claim it is.
	Suspect bool
	// OrderID is the regional order, or −1 while the leg is unsubmitted.
	OrderID int
	// Status mirrors the regional order's status once submitted.
	Status market.OrderStatus
	// Err records why a leg submission failed (budget, unknown product);
	// the router then falls through to the next-cheapest leg.
	Err string
}

// FedOrder is one order as the federation sees it. A region-local order
// carries a single leg; a cross-region XOR order ("40 cores in EU or US")
// carries one leg per region, ordered cheapest-first by the price board.
//
// Coordination invariant: at most one leg is ever open in any regional
// book — the router submits leg k+1 only after leg k has lost — so at
// most one leg can win, preserving the XOR semantics across autonomous
// regional auctions without distributed transactions.
type FedOrder struct {
	ID      int
	Team    string
	Product string
	Qty     float64
	Limit   float64
	Status  market.OrderStatus
	Legs    []*Leg
	// Active indexes the leg currently in a regional book, or −1 once the
	// order is terminal.
	Active int
	// Region, Payment, and Allocation describe the winning leg; the
	// allocation is indexed by the winning region's registry.
	Region     string
	Payment    float64
	Allocation resource.Vector
}

// snapshot deep-copies the routing state; the Allocation vector is frozen
// at settlement and shared read-only, as in market.Order snapshots.
func (o *FedOrder) snapshot() *FedOrder {
	c := *o
	c.Legs = make([]*Leg, len(o.Legs))
	for i, l := range o.Legs {
		lc := *l
		lc.Clusters = append([]string(nil), l.Clusters...)
		c.Legs[i] = &lc
	}
	return &c
}

// Stats counts what the federation's router has done.
type Stats struct {
	// Submitted counts accepted federated orders.
	Submitted int
	// CrossRegion counts orders whose clusters spanned multiple regions.
	CrossRegion int
	// Failovers counts legs submitted after an earlier leg lost.
	Failovers int
	// Won, Lost, and Unsettled count terminal order outcomes.
	Won, Lost, Unsettled int
}

// RegionTick is one region's outcome from a federation-wide Tick.
type RegionTick struct {
	Region string
	Record *market.AuctionRecord
	Err    error
}

// Federation fronts N autonomous regional markets behind one API. Orders
// naming clusters from a single region route straight to that region's
// exchange; orders spanning regions are split into per-region legs tried
// cheapest-first (per the gossip-refreshed price board), which steers
// substitutable demand toward cold regions exactly as the paper's
// substitution bundles intend.
//
// All methods are safe for concurrent use. The federation lock (mu)
// guards only routing state — the order table and price board — and is
// never held across a regional clock auction, so regions settle fully in
// parallel.
type Federation struct {
	regions []*Region
	byName  map[string]*Region
	owner   map[string]string // cluster → region name
	catalog *market.Catalog

	mu     sync.Mutex
	orders []*FedOrder
	// byID indexes every order for O(1) lookup. Order and Cancel are on
	// the router's polling path (every leg advance re-reads order state),
	// so a linear scan of every order ever submitted would make routing
	// quadratic in book age, exactly as Exchange.Order was before its
	// indexed lookup.
	byID       map[int]*FedOrder
	nextID     int
	board      map[string]Quote
	gossipTick int
	stats      Stats
	// open indexes the non-terminal orders by the region holding their
	// active leg, so advancing a region after its settlement touches only
	// the orders actually waiting on it rather than every order ever
	// routed.
	open map[string]map[int]*FedOrder

	// journal, when attached, receives every routing state change as an
	// event (see event.go); the regions journal their own books
	// separately. fire (possibly nil) receives the same events for live
	// subscribers. All guarded by mu.
	journal       *journal.Journal
	journalErr    error
	fire          *telemetry.Firehose
	snapshotEvery int
	settleCount   int

	// inj (possibly nil — a nil injector never fires) is the fault seam
	// on region calls and gossip; breakers tracks per-region health.
	// Both are attached before traffic and internally synchronized.
	inj      *fault.Injector
	breakers *breakerSet
}

// NewFederation assembles regions into one federated market. Region
// names and cluster names must be globally unique (pools are namespaced
// per region; an ambiguous cluster could not be routed).
func NewFederation(regions ...*Region) (*Federation, error) {
	if len(regions) == 0 {
		return nil, errors.New("federation: no regions")
	}
	f := &Federation{
		regions: regions,
		byName:  make(map[string]*Region, len(regions)),
		owner:   make(map[string]string),
		catalog: market.StandardCatalog(),
		board:   make(map[string]Quote),
		byID:    make(map[int]*FedOrder),
		open:    make(map[string]map[int]*FedOrder, len(regions)),
	}
	for _, r := range regions {
		if _, ok := f.byName[r.name]; ok {
			return nil, fmt.Errorf("federation: duplicate region %q", r.name)
		}
		f.byName[r.name] = r
		for _, cl := range r.Clusters() {
			if prev, ok := f.owner[cl]; ok {
				return nil, fmt.Errorf("federation: cluster %q in both %q and %q", cl, prev, r.name)
			}
			f.owner[cl] = r.name
		}
	}
	f.breakers = newBreakerSet(regions)
	return f, nil
}

// AttachFaults attaches a fault injector to the federation's region-call
// boundaries: order routing, settlement entry, and gossip. Attach before
// serving traffic; a nil injector (or none) means no faults.
func (f *Federation) AttachFaults(inj *fault.Injector) {
	f.mu.Lock()
	f.inj = inj
	f.mu.Unlock()
}

// Regions returns the member regions in registration order.
func (f *Federation) Regions() []*Region {
	return append([]*Region(nil), f.regions...)
}

// Region returns the named region, or nil.
func (f *Federation) Region(name string) *Region { return f.byName[name] }

// RegionOf returns the region owning the cluster, or "".
func (f *Federation) RegionOf(cluster string) string { return f.owner[cluster] }

// Catalog returns the federation-wide product catalog.
func (f *Federation) Catalog() *market.Catalog { return f.catalog }

// OpenAccount opens the team's account in every region: budgets are
// per-region, as in a brokered federation of autonomous markets where
// each market carries its own billing relationship.
func (f *Federation) OpenAccount(team string) error {
	for _, r := range f.regions {
		if err := r.ex.OpenAccount(team); err != nil {
			return err
		}
	}
	return nil
}

// Balance sums the team's balances across regions.
func (f *Federation) Balance(team string) (float64, error) {
	var total float64
	for _, r := range f.regions {
		b, err := r.ex.Balance(team)
		if err != nil {
			return 0, err
		}
		total += b
	}
	return total, nil
}

// Teams lists the non-operator accounts (identical in every region).
func (f *Federation) Teams() []string { return f.regions[0].ex.Teams() }

// SubmitProduct routes one product order. Clusters from a single region
// go straight to that region's book; clusters spanning regions are split
// into per-region legs, ordered cheapest-first by the price board, and
// only the first leg is submitted — later legs enter a book only after
// the earlier ones lose, so at most one leg ever wins.
//
// Routing runs outside the federation lock: the regional submit is the
// expensive step, and holding f.mu across it would serialize order entry
// federation-wide. The lock is taken only to read the board and to
// register the order; a settlement racing the registration is
// reconciled immediately afterwards (see the auction-count check).
func (f *Federation) SubmitProduct(team, product string, qty float64, clusters []string, limit float64) (*FedOrder, error) {
	p, err := f.catalog.Lookup(product)
	if err != nil {
		return nil, err
	}
	// qty <= 0 alone would wave NaN through (every comparison with NaN
	// is false) into the per-region leg routing; reject non-finite and
	// non-positive values before any leg is attempted.
	if math.IsNaN(qty) || math.IsInf(qty, 0) || qty <= 0 {
		return nil, fmt.Errorf("federation: quantity must be positive, got %g", qty)
	}
	if math.IsNaN(limit) || math.IsInf(limit, 0) || limit <= 0 {
		return nil, fmt.Errorf("federation: limit must be a positive, finite number, got %g", limit)
	}
	if len(clusters) == 0 {
		return nil, errors.New("federation: no clusters named")
	}
	// Group the acceptable clusters by owning region, preserving order
	// (f.owner is immutable after NewFederation).
	groups := make(map[string][]string)
	var regionOrder []string
	for _, cl := range clusters {
		rn, ok := f.owner[cl]
		if !ok {
			return nil, fmt.Errorf("federation: unknown cluster %q", cl)
		}
		if _, seen := groups[rn]; !seen {
			regionOrder = append(regionOrder, rn)
		}
		groups[rn] = append(groups[rn], cl)
	}
	cover := p.Cover(qty)

	legs := make([]*Leg, 0, len(regionOrder))
	f.mu.Lock()
	inj := f.inj
	for _, rn := range regionOrder {
		leg := &Leg{Region: rn, Clusters: groups[rn], Est: inf, OrderID: -1}
		if q, ok := f.quoteLocked(f.byName[rn]); ok {
			leg.Est = f.byName[rn].legCost(q, cover, leg.Clusters)
			// A quote past the staleness bound may be pricing a partition
			// survivor's last gossip from before the cut: the leg is still
			// routable, but only after every fresh-quoted leg.
			leg.Suspect = f.gossipTick-q.Tick > staleQuoteBound
		}
		legs = append(legs, leg)
	}
	f.mu.Unlock()
	// Cheapest region first, with suspect (stale-quoted) legs deprioritized
	// behind every fresh-quoted one: the price board steers substitutable
	// demand toward cold regions, but not on numbers a partition may have
	// frozen. Ties keep the caller's cluster order.
	sort.SliceStable(legs, func(i, j int) bool {
		if legs[i].Suspect != legs[j].Suspect {
			return !legs[i].Suspect
		}
		return legs[i].Est < legs[j].Est
	})

	// Fault seam: a partitioned target region fails the routing call here,
	// before any state has moved, so a caller retry after the partition
	// heals replays the identical operation. Injected failures feed the
	// region's breaker; organic rejections below (budget, product) do not.
	if err := inj.Region(fault.OpRegionOrder, legs[0].Region); err != nil {
		f.breakers.failure(legs[0].Region)
		return nil, err
	}

	// Book the first acceptable leg, lock-free. Regions whose breaker is
	// open are skipped — the same at-most-one-leg failover that handles a
	// lost leg handles a partitioned region. auctionsBefore snapshots
	// the target region's settlement count so a clock completing between
	// this submit and the registration below cannot strand the order.
	active := -1
	auctionsBefore := 0
	var lastErr error
	for i, leg := range legs {
		if !f.breakers.allow(leg.Region) {
			leg.Err = "federation: region breaker open"
			if lastErr == nil {
				lastErr = fmt.Errorf("federation: region %q breaker open", leg.Region)
			}
			continue
		}
		r := f.byName[leg.Region]
		auctionsBefore = r.ex.AuctionCount()
		o, err := r.ex.SubmitProduct(team, product, qty, leg.Clusters, limit)
		if err != nil {
			leg.Err = err.Error()
			lastErr = err
			continue
		}
		leg.OrderID = o.ID
		leg.Status = market.Open
		active = i
		break
	}
	if active < 0 {
		return nil, lastErr
	}
	f.breakers.success(legs[active].Region)

	f.mu.Lock()
	fo := &FedOrder{
		ID: f.nextID, Team: team, Product: product, Qty: qty, Limit: limit,
		Status: market.Open, Legs: legs, Active: active,
	}
	f.nextID++
	f.orders = append(f.orders, fo)
	f.byID[fo.ID] = fo
	f.trackLocked(fo)
	f.stats.Submitted++
	if len(legs) > 1 {
		f.stats.CrossRegion++
	}
	snap := fo.snapshot()
	if f.materializingLocked() {
		stats := f.stats
		f.emitLocked(&FedEvent{Kind: EvFedOrderSubmitted, Order: snap, Stats: &stats})
	}
	logErr := f.journalErr
	f.mu.Unlock()
	if logErr != nil {
		return nil, logErr
	}

	// Reconcile the submit/settle race: if the region settled while the
	// order was being registered, the normal OnTick advance ran too early
	// to see it — run it again now that the order is visible.
	if f.byName[legs[active].Region].ex.AuctionCount() != auctionsBefore {
		f.advanceRegion(legs[active].Region)
		f.mu.Lock()
		snap = fo.snapshot()
		f.mu.Unlock()
	}
	return snap, nil
}

// trackLocked indexes an order under the region of its active leg.
// Callers must hold f.mu.
func (f *Federation) trackLocked(fo *FedOrder) {
	rn := fo.Legs[fo.Active].Region
	byID, ok := f.open[rn]
	if !ok {
		byID = make(map[int]*FedOrder)
		f.open[rn] = byID
	}
	byID[fo.ID] = fo
}

// submitNextLegLocked books the next unsubmitted leg after fo.Active,
// skipping legs whose regional submission is rejected, and re-indexes
// the order under the new leg's region. It returns an error only when no
// leg could be booked. Callers must hold f.mu and must have removed the
// order from its previous region's index.
func (f *Federation) submitNextLegLocked(fo *FedOrder) error {
	var lastErr error
	for next := fo.Active + 1; next < len(fo.Legs); next++ {
		leg := fo.Legs[next]
		if !f.breakers.allow(leg.Region) {
			leg.Err = "federation: region breaker open"
			if lastErr == nil {
				lastErr = fmt.Errorf("federation: region %q breaker open", leg.Region)
			}
			continue
		}
		o, err := f.byName[leg.Region].ex.SubmitProduct(fo.Team, fo.Product, fo.Qty, leg.Clusters, fo.Limit)
		if err != nil {
			leg.Err = err.Error()
			lastErr = err
			continue
		}
		leg.OrderID = o.ID
		leg.Status = market.Open
		fo.Active = next
		f.trackLocked(fo)
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("federation: no leg to submit")
	}
	return lastErr
}

// advanceRegion reconciles routing state after the named region settled
// an auction: winning legs conclude their orders, losing legs fail over
// to the next-cheapest region. Only orders whose active leg is in the
// region are visited, via the open-order index — in ascending order ID,
// not map order: failover submissions book orders into the next region's
// book, so the visit order decides both the IDs those legs get and which
// legs a near-exhausted budget can still cover. Sorting makes a
// settlement wave a deterministic function of the routing state, which
// the scenario engine's seed-reproducibility contract depends on.
func (f *Federation) advanceRegion(name string) {
	r, ok := f.byName[name]
	if !ok {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]int, 0, len(f.open[name]))
	for id := range f.open[name] {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fo := f.open[name][id]
		if fo.Status != market.Open || fo.Active < 0 {
			delete(f.open[name], id)
			continue
		}
		leg := fo.Legs[fo.Active]
		o, err := r.ex.Order(leg.OrderID)
		if err != nil {
			continue
		}
		leg.Status = o.Status
		changed := true
		switch o.Status {
		case market.Open:
			// The region's clock did not converge; the leg stays booked
			// for the region's next epoch. Nothing moved, so nothing is
			// journaled.
			changed = false
		case market.Won:
			fo.Status = market.Won
			fo.Active = -1
			fo.Region = leg.Region
			fo.Payment = o.Payment
			fo.Allocation = o.Allocation
			f.stats.Won++
			delete(f.open[name], id)
		case market.Lost, market.Unsettled:
			delete(f.open[name], id)
			if err := f.submitNextLegLocked(fo); err != nil {
				fo.Status = o.Status
				fo.Active = -1
				if o.Status == market.Lost {
					f.stats.Lost++
				} else {
					f.stats.Unsettled++
				}
			} else {
				f.stats.Failovers++
			}
		case market.Cancelled:
			fo.Status = market.Cancelled
			fo.Active = -1
			delete(f.open[name], id)
		}
		if changed && f.materializingLocked() {
			// The event carries the wholesale post-advance order state (a
			// failover's new leg booking included) plus the absolute router
			// counters, so replay reproduces this advance without touching
			// the region.
			stats := f.stats
			f.emitLocked(&FedEvent{Kind: EvFedOrderUpdated, Order: fo.snapshot(), Stats: &stats})
		}
	}
}

// Cancel withdraws a federated order by cancelling its active leg. Like
// Exchange.Cancel, an order whose leg is in a settling auction cannot be
// withdrawn.
func (f *Federation) Cancel(id int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fo, ok := f.byID[id]
	if !ok {
		return fmt.Errorf("federation: no order %d", id)
	}
	if fo.Status != market.Open {
		return fmt.Errorf("federation: order %d is %s", id, fo.Status)
	}
	leg := fo.Legs[fo.Active]
	if err := f.byName[leg.Region].ex.Cancel(leg.OrderID); err != nil {
		return err
	}
	leg.Status = market.Cancelled
	fo.Status = market.Cancelled
	fo.Active = -1
	delete(f.open[leg.Region], fo.ID)
	if f.materializingLocked() {
		stats := f.stats
		f.emitLocked(&FedEvent{Kind: EvFedOrderUpdated, Order: fo.snapshot(), Stats: &stats})
	}
	return f.journalErr
}

// Order returns a snapshot of one federated order.
func (f *Federation) Order(id int) (*FedOrder, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fo, ok := f.byID[id]; ok {
		return fo.snapshot(), nil
	}
	return nil, fmt.Errorf("federation: no order %d", id)
}

// Orders returns snapshots of every federated order.
func (f *Federation) Orders() []*FedOrder {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*FedOrder, len(f.orders))
	for i, fo := range f.orders {
		out[i] = fo.snapshot()
	}
	return out
}

// OrdersTail returns snapshots of the limit most recently routed orders
// in routing order — the bounded read path for display pollers, which
// copies O(limit) instead of every order ever routed. A non-positive
// limit returns nil.
func (f *Federation) OrdersTail(limit int) []*FedOrder {
	if limit <= 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	start := len(f.orders) - limit
	if start < 0 {
		start = 0
	}
	out := make([]*FedOrder, 0, len(f.orders)-start)
	for _, fo := range f.orders[start:] {
		out = append(out, fo.snapshot())
	}
	return out
}

// Stats returns a snapshot of the router counters.
func (f *Federation) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// SettleRegion runs one binding auction in the named region, then
// gossips its prices and advances any cross-region orders waiting on it
// — the manual-settlement counterpart of one Serve tick. Settling a
// region through its Exchange directly would bypass the router, so
// federated front ends must settle through this method (or Tick/Serve).
func (f *Federation) SettleRegion(name string) (*market.AuctionRecord, error) {
	r, ok := f.byName[name]
	if !ok {
		return nil, fmt.Errorf("federation: no region %q", name)
	}
	f.mu.Lock()
	inj := f.inj
	f.mu.Unlock()
	// Fault seam, before any state moves: a partitioned region fails its
	// settlement round cleanly (feeding the breaker), so a retry after the
	// partition heals replays the identical round. The gossip window is
	// consumed here too — an Unreachable gossip fault loses this round's
	// quote (the board goes stale) without failing the settlement, and
	// deliberately does not feed the breaker: stale prices degrade routing
	// quality, not region health.
	if err := inj.Region(fault.OpRegionSettle, name); err != nil {
		f.breakers.failure(name)
		return nil, err
	}
	f.breakers.success(name)
	gossipLost := inj.Region(fault.OpRegionGossip, name) != nil

	rec, _, err := r.ex.RunAuction()
	f.mu.Lock()
	f.gossipTick++
	// The bare tick event keeps the recovered gossip clock in step even
	// when the quote itself cannot be refreshed.
	if f.materializingLocked() {
		f.emitLocked(&FedEvent{Kind: EvFedGossip, Tick: f.gossipTick})
	}
	if !gossipLost {
		f.gossipRegionLocked(r)
	}
	f.mu.Unlock()
	f.advanceRegion(name)

	f.mu.Lock()
	f.settleCount++
	snapshotDue := f.journal != nil && f.snapshotEvery > 0 && f.settleCount%f.snapshotEvery == 0
	logErr := f.journalErr
	f.mu.Unlock()
	if logErr != nil {
		return rec, logErr
	}
	if snapshotDue {
		if serr := f.Snapshot(); serr != nil {
			return rec, serr
		}
	}
	return rec, err
}

// Tick settles every region's accumulated batch concurrently — one clock
// auction per region, run in parallel — then gossips prices and advances
// cross-region routing. Idle regions (empty books) report a nil record
// and nil error.
func (f *Federation) Tick() []RegionTick {
	out := make([]RegionTick, len(f.regions))
	var wg sync.WaitGroup
	for i, r := range f.regions {
		wg.Add(1)
		go func(i int, r *Region) {
			defer wg.Done()
			rec, _, err := r.ex.RunAuction()
			if errors.Is(err, market.ErrNoOpenOrders) {
				rec, err = nil, nil
			}
			out[i] = RegionTick{Region: r.name, Record: rec, Err: err}
		}(i, r)
	}
	wg.Wait()
	f.Gossip()
	for _, r := range f.regions {
		f.advanceRegion(r.name)
	}
	return out
}

// Serve runs one epoch loop per region until ctx is cancelled. The loops
// are independent goroutines, so regional auctions settle concurrently;
// after each regional settlement the federation gossips that region's
// prices and advances any cross-region orders waiting on it. It returns
// ctx.Err().
func (f *Federation) Serve(ctx context.Context, epoch time.Duration) error {
	if epoch <= 0 {
		return errors.New("federation: epoch must be positive")
	}
	var wg sync.WaitGroup
	for _, r := range f.regions {
		loop, err := market.NewLoop(r.ex, epoch)
		if err != nil {
			return err
		}
		region := r
		loop.OnTick = func(rec *market.AuctionRecord, err error) {
			f.mu.Lock()
			f.gossipTick++
			if f.materializingLocked() {
				f.emitLocked(&FedEvent{Kind: EvFedGossip, Tick: f.gossipTick})
			}
			f.gossipRegionLocked(region)
			f.mu.Unlock()
			f.advanceRegion(region.name)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			loop.Run(ctx)
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// RegionSummary aggregates one region for the global market view.
type RegionSummary struct {
	Region     string
	Clusters   []market.ClusterSummary
	Auctions   int
	OpenOrders int
	// Settled sums orders settled as Won across the region's auctions.
	Settled int
	// MeanCPUPrice averages the summary CPU price across the region's
	// clusters — the single number the global view ranks regions by.
	MeanCPUPrice float64
}

// Summary builds the global market summary: one aggregate per region,
// with the per-cluster rows for drill-down.
func (f *Federation) Summary() ([]RegionSummary, error) {
	out := make([]RegionSummary, 0, len(f.regions))
	for _, r := range f.regions {
		rows, err := r.ex.Summary()
		if err != nil {
			return nil, err
		}
		rs := RegionSummary{
			Region:     r.name,
			Clusters:   rows,
			OpenOrders: r.ex.OpenOrderCount(),
		}
		for _, rec := range r.ex.History() {
			rs.Auctions++
			rs.Settled += rec.Settled
		}
		var cpu float64
		for _, row := range rows {
			cpu += row.Price.CPU
		}
		if len(rows) > 0 {
			rs.MeanCPUPrice = cpu / float64(len(rows))
		}
		out = append(out, rs)
	}
	return out, nil
}

// History returns every region's auction records, keyed by region name.
func (f *Federation) History() map[string][]*market.AuctionRecord {
	out := make(map[string][]*market.AuctionRecord, len(f.regions))
	for _, r := range f.regions {
		out[r.name] = r.ex.History()
	}
	return out
}

// RegionLedgerEntry tags a billing record with its region.
type RegionLedgerEntry struct {
	Region string
	market.LedgerEntry
}

// Ledger concatenates every region's billing ledger in region order.
func (f *Federation) Ledger() []RegionLedgerEntry {
	var out []RegionLedgerEntry
	for _, r := range f.regions {
		for _, le := range r.ex.Ledger() {
			out = append(out, RegionLedgerEntry{Region: r.name, LedgerEntry: le})
		}
	}
	return out
}

// LedgerBalanced reports whether every region's ledger sums to zero —
// money is conserved within each region, so it is conserved globally.
func (f *Federation) LedgerBalanced(eps float64) bool {
	for _, r := range f.regions {
		if !r.ex.LedgerBalanced(eps) {
			return false
		}
	}
	return true
}

// PriceHistory returns one pool's settlement prices in its owning
// region, oldest first.
func (f *Federation) PriceHistory(pool resource.Pool) []float64 {
	rn, ok := f.owner[pool.Cluster]
	if !ok {
		return nil
	}
	return f.byName[rn].ex.PriceHistory(pool)
}
