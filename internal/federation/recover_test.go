// Crash-recovery tests live in the external test package so they can run
// the shared invariant kernel on the recovered federation (see
// conservation_test.go for the import-cycle rationale).
package federation_test

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"clustermarket/internal/cluster"
	"clustermarket/internal/federation"
	"clustermarket/internal/invariant"
	"clustermarket/internal/journal"
	"clustermarket/internal/market"
)

// recoverFleet rebuilds one region's fleet exactly as the crashed process
// built it: the fleet is not journaled, so recovery depends on the owner
// reconstructing it deterministically (same seed, same fill order).
func recoverFleet(t *testing.T, name string, clusters int, util float64) *cluster.Fleet {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	fleet := cluster.NewFleet()
	for i := 1; i <= clusters; i++ {
		cn := fmt.Sprintf("%s-r%d", name, i)
		c := cluster.New(cn, nil)
		c.AddMachines(20, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			t.Fatal(err)
		}
		if util > 0 {
			if err := fleet.FillToUtilization(rng, cn, cluster.Usage{CPU: util, RAM: util, Disk: util}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return fleet
}

// fedTopology is the region layout shared by the golden and journaled
// federations: a congested region and a nearly idle one.
var fedTopology = []struct {
	name     string
	clusters int
	util     float64
}{
	{"hot", 2, 0.85},
	{"cold", 2, 0.1},
}

func regionConfig(j *journal.Journal) market.Config {
	return market.Config{InitialBudget: 1e6, Journal: j, SnapshotEvery: 4}
}

func settleIgnoringIdle(t *testing.T, f *federation.Federation, region string) {
	t.Helper()
	if _, err := f.SettleRegion(region); err != nil && !errors.Is(err, market.ErrNoOpenOrders) {
		t.Fatalf("settle %s: %v", region, err)
	}
}

// driveFed exercises the full federated mutation surface: region-local
// and cross-region submits, settlement waves in both regions (failover
// included), a cancellation, and a gossip pass. Returns the ID of an
// order left open for the post-drive phase.
func driveFed(t *testing.T, f *federation.Federation) {
	t.Helper()
	xor := []string{"hot-r1", "hot-r2", "cold-r1", "cold-r2"}
	submit := func(qty, limit float64, clusters []string) *federation.FedOrder {
		t.Helper()
		fo, err := f.SubmitProduct("team", "batch-compute", qty, clusters, limit)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		return fo
	}
	submit(8, 4000, xor)
	submit(4, 2500, []string{"hot-r1"})
	submit(6, 3000, xor)
	victim := submit(2, 1500, []string{"cold-r2"})
	if err := f.Cancel(victim.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	settleIgnoringIdle(t, f, "hot")
	settleIgnoringIdle(t, f, "cold")
	submit(10, 6000, xor)
	submit(3, 2000, []string{"cold-r1", "cold-r2"})
	settleIgnoringIdle(t, f, "cold")
	settleIgnoringIdle(t, f, "hot")
	f.Gossip()
}

// driveFedMore is the post-recovery continuation both federations run in
// lockstep: the recovered process must not only match the crashed one at
// the recovery point but keep producing the identical trajectory.
func driveFedMore(t *testing.T, f *federation.Federation) {
	t.Helper()
	xor := []string{"hot-r1", "hot-r2", "cold-r1", "cold-r2"}
	if _, err := f.SubmitProduct("team", "batch-compute", 5, xor, 3500); err != nil {
		t.Fatalf("submit: %v", err)
	}
	settleIgnoringIdle(t, f, "hot")
	settleIgnoringIdle(t, f, "cold")
	f.Gossip()
}

type regionImage struct {
	History []*market.AuctionRecord
	Ledger  []market.LedgerEntry
	Balance float64
	Open    int
}

type fedImage struct {
	Orders  []*federation.FedOrder
	Stats   federation.Stats
	Board   []federation.Quote
	Regions map[string]regionImage
}

func imageOf(t *testing.T, f *federation.Federation) fedImage {
	t.Helper()
	img := fedImage{
		Orders:  f.Orders(),
		Stats:   f.Stats(),
		Board:   f.Board(),
		Regions: make(map[string]regionImage),
	}
	for _, r := range f.Regions() {
		bal, err := r.Exchange().Balance("team")
		if err != nil {
			t.Fatal(err)
		}
		img.Regions[r.Name()] = regionImage{
			History: r.Exchange().History(),
			Ledger:  r.Exchange().Ledger(),
			Balance: bal,
			Open:    r.Exchange().OpenOrderCount(),
		}
	}
	return img
}

func buildFed(t *testing.T, regions []*federation.Region) *federation.Federation {
	t.Helper()
	f, err := federation.NewFederation(regions...)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.OpenAccount("team"); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFederationCrashRecover kills a fully journaled federation (router
// journal plus one journal per region) mid-run and rebuilds it from disk,
// requiring the recovered process to match a never-crashed golden twin
// exactly — routing tables, price board, router counters, every region's
// books — and to stay in lockstep through a post-recovery drive. The
// recovered federation must also pass the shared invariant kernel before
// serving.
func TestFederationCrashRecover(t *testing.T) {
	dir := t.TempDir()

	// Golden twin: identical topology and drive, no journal.
	var goldenRegions []*federation.Region
	for _, tp := range fedTopology {
		r, err := federation.NewRegion(tp.name, recoverFleet(t, tp.name, tp.clusters, tp.util), regionConfig(nil))
		if err != nil {
			t.Fatal(err)
		}
		goldenRegions = append(goldenRegions, r)
	}
	golden := buildFed(t, goldenRegions)
	driveFed(t, golden)

	// Journaled federation, same topology.
	journals := make([]*journal.Journal, 0, len(fedTopology)+1)
	var liveRegions []*federation.Region
	for _, tp := range fedTopology {
		j, rec, err := journal.Open(filepath.Join(dir, tp.name), journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Empty() {
			t.Fatalf("fresh region journal %s not empty", tp.name)
		}
		journals = append(journals, j)
		r, err := federation.NewRegion(tp.name, recoverFleet(t, tp.name, tp.clusters, tp.util), regionConfig(j))
		if err != nil {
			t.Fatal(err)
		}
		liveRegions = append(liveRegions, r)
	}
	fj, frec, err := journal.Open(filepath.Join(dir, "fed"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !frec.Empty() {
		t.Fatal("fresh federation journal not empty")
	}
	journals = append(journals, fj)
	live := buildFed(t, liveRegions)
	live.AttachJournal(fj, 3)
	driveFed(t, live)

	crashedImage := imageOf(t, live)

	// Crash every journal without flushing, then resurrect from disk.
	for _, j := range journals {
		j.Crash()
	}

	var recRegions []*federation.Region
	for _, tp := range fedTopology {
		j, rec, err := journal.Open(filepath.Join(dir, tp.name), journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		cfg := regionConfig(j)
		r, err := federation.RecoverRegion(tp.name, recoverFleet(t, tp.name, tp.clusters, tp.util), cfg, rec)
		if err != nil {
			t.Fatalf("recover region %s: %v", tp.name, err)
		}
		invariant.Require(t, "recovered region "+tp.name, invariant.CheckExchange(r.Exchange()))
		recRegions = append(recRegions, r)
	}
	fj2, frec2, err := journal.Open(filepath.Join(dir, "fed"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fj2.Close()
	recovered, err := federation.NewFederation(recRegions...)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovered.Restore(frec2); err != nil {
		t.Fatalf("restore federation: %v", err)
	}
	recovered.AttachJournal(fj2, 3)
	invariant.Require(t, "recovered federation", invariant.CheckFederation(recovered))

	recoveredImage := imageOf(t, recovered)
	if !reflect.DeepEqual(crashedImage, recoveredImage) {
		t.Fatalf("recovered federation diverges from crashed process:\ncrashed:   %+v\nrecovered: %+v",
			crashedImage, recoveredImage)
	}
	if !reflect.DeepEqual(imageOf(t, golden), recoveredImage) {
		t.Fatal("recovered federation diverges from never-crashed golden twin")
	}

	// Lockstep continuation: the recovered process and the golden twin
	// must produce identical trajectories from here on.
	driveFedMore(t, golden)
	driveFedMore(t, recovered)
	invariant.Require(t, "post-recovery federation", invariant.CheckFederation(recovered))
	if !reflect.DeepEqual(imageOf(t, golden), imageOf(t, recovered)) {
		t.Fatal("post-recovery drive diverges from golden twin")
	}
}

// TestFederationRestoreRejectsNonEmpty guards the recovery precondition:
// Restore refuses a federation that already has routing state, rather
// than silently merging two histories.
func TestFederationRestoreRejectsNonEmpty(t *testing.T) {
	var regions []*federation.Region
	for _, tp := range fedTopology {
		r, err := federation.NewRegion(tp.name, recoverFleet(t, tp.name, tp.clusters, tp.util), regionConfig(nil))
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
	}
	f := buildFed(t, regions)
	if _, err := f.SubmitProduct("team", "batch-compute", 1, []string{"cold-r1"}, 500); err != nil {
		t.Fatal(err)
	}
	if err := f.Restore(&journal.Recovery{}); err == nil {
		t.Fatal("Restore accepted a federation with existing routing state")
	}
}
