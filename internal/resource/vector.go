package resource

import (
	"fmt"
	"math"
)

// Vector is an R-component quantity vector over the pools of a Registry.
// Positive components encode quantities demanded, negative components
// quantities offered, matching the bundle encoding of Section II.
type Vector []float64

// NewVector returns a zero vector of length r.
func NewVector(r int) Vector { return make(Vector, r) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// CopyFrom resizes v to len(src), copies src into it, and returns the
// result, reusing v's backing array whenever capacity allows. It is the
// allocation-free form of src.Clone() used by the clock's scratch
// buffers; calling it on a nil vector behaves exactly like Clone.
func (v Vector) CopyFrom(src Vector) Vector {
	if cap(v) < len(src) {
		v = make(Vector, len(src))
	}
	v = v[:len(src)]
	copy(v, src)
	return v
}

// Resize returns v with length n, reusing the backing array when
// capacity allows. The contents are unspecified — callers must
// overwrite every component (scratch buffers on the auction hot path).
func (v Vector) Resize(n int) Vector {
	if cap(v) < n {
		return make(Vector, n)
	}
	return v[:n]
}

// SetZero clears every component in place, the reuse form of
// Registry.Zero for scratch vectors on the auction hot path.
func (v Vector) SetZero() {
	for i := range v {
		v[i] = 0
	}
}

// Add returns v + w. The vectors must have equal length.
func (v Vector) Add(w Vector) Vector {
	mustSameLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// AddInto accumulates w into v in place, avoiding an allocation. It is the
// hot path of excess-demand computation in the clock auction.
func (v Vector) AddInto(w Vector) {
	mustSameLen(v, w)
	for i := range v {
		v[i] += w[i]
	}
}

// Sub returns v − w.
func (v Vector) Sub(w Vector) Vector {
	mustSameLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns k·v.
func (v Vector) Scale(k float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = k * v[i]
	}
	return out
}

// Neg returns −v.
func (v Vector) Neg() Vector { return v.Scale(-1) }

// Dot returns the inner product vᵀw. For a bundle q and price vector p,
// q.Dot(p) is the payment due (negative when the bundle is a net offer).
func (v Vector) Dot(w Vector) float64 {
	mustSameLen(v, w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// PositivePart returns max(v, 0) taken componentwise — the z⁺ operation in
// the paper's price-update rule.
func (v Vector) PositivePart() Vector {
	out := make(Vector, len(v))
	for i := range v {
		if v[i] > 0 {
			out[i] = v[i]
		}
	}
	return out
}

// NegativePart returns min(v, 0) taken componentwise.
func (v Vector) NegativePart() Vector {
	out := make(Vector, len(v))
	for i := range v {
		if v[i] < 0 {
			out[i] = v[i]
		}
	}
	return out
}

// AllNonPositive reports whether every component is ≤ eps. With eps = 0 it
// is the auction stopping test z(t) ≤ 0.
func (v Vector) AllNonPositive(eps float64) bool {
	for _, x := range v {
		if x > eps {
			return false
		}
	}
	return true
}

// AllNonNegative reports whether every component is ≥ −eps (used for the
// price constraint p ≥ 0).
func (v Vector) AllNonNegative(eps float64) bool {
	for _, x := range v {
		if x < -eps {
			return false
		}
	}
	return true
}

// IsZero reports whether every component is exactly zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// MaxAbs returns the largest absolute component value (L∞ norm).
func (v Vector) MaxAbs() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of all components.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Min returns the componentwise minimum of v and w.
func (v Vector) Min(w Vector) Vector {
	mustSameLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = math.Min(v[i], w[i])
	}
	return out
}

// Max returns the componentwise maximum of v and w.
func (v Vector) Max(w Vector) Vector {
	mustSameLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = math.Max(v[i], w[i])
	}
	return out
}

// Equal reports whether v and w agree componentwise within tolerance eps.
func (v Vector) Equal(w Vector, eps float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > eps {
			return false
		}
	}
	return true
}

// PureDirection classifies a bundle per Section III.C.3: +1 when all
// components are ≥ 0 (pure demand), −1 when all are ≤ 0 (pure offer), and 0
// for a mixed "trader" bundle. The zero vector classifies as pure demand.
func (v Vector) PureDirection() int {
	pos, neg := false, false
	for _, x := range v {
		if x > 0 {
			pos = true
		}
		if x < 0 {
			neg = true
		}
	}
	switch {
	case pos && neg:
		return 0
	case neg:
		return -1
	default:
		return +1
	}
}

// Validate reports an error when the vector contains NaN or infinite
// components, which would silently corrupt auction arithmetic.
func (v Vector) Validate() error {
	for i, x := range v {
		if math.IsNaN(x) {
			return fmt.Errorf("resource: component %d is NaN", i)
		}
		if math.IsInf(x, 0) {
			return fmt.Errorf("resource: component %d is infinite", i)
		}
	}
	return nil
}

func mustSameLen(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("resource: vector length mismatch %d vs %d", len(v), len(w)))
	}
}
