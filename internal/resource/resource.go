// Package resource defines the resource model from Section II of the
// paper: a market with R resource pools, each pool being a (cluster,
// dimension) pair such as "CPUs in cluster r7". Quantities over the pools
// are represented as dense R-component vectors; positive components denote
// quantities demanded and negative components quantities offered, exactly
// as in the paper's bundle encoding.
package resource

import (
	"fmt"
	"sort"
	"strings"
)

// Dimension identifies one measurable resource type within a cluster.
type Dimension int

// The resource dimensions used throughout the paper's experiments
// (Section V: "each resource pool was taken as a cluster / resource type
// combination with the latter including CPU, RAM, and disk"). Network is
// included as an optional fourth dimension mentioned in Section IV.A.
const (
	CPU Dimension = iota
	RAM
	Disk
	Network
	numDimensions
)

// Dimensions lists the dimensions in canonical order.
var Dimensions = [...]Dimension{CPU, RAM, Disk, Network}

// StandardDimensions are the three dimensions used in the paper's
// experimental market.
var StandardDimensions = []Dimension{CPU, RAM, Disk}

func (d Dimension) String() string {
	switch d {
	case CPU:
		return "CPU"
	case RAM:
		return "RAM"
	case Disk:
		return "Disk"
	case Network:
		return "Network"
	default:
		return fmt.Sprintf("Dimension(%d)", int(d))
	}
}

// Unit returns the human-readable unit used when displaying quantities of
// the dimension on the trading platform.
func (d Dimension) Unit() string {
	switch d {
	case CPU:
		return "cores"
	case RAM:
		return "GB"
	case Disk:
		return "TB"
	case Network:
		return "Gbps"
	default:
		return "units"
	}
}

// ParseDimension converts a case-insensitive dimension name into a
// Dimension value.
func ParseDimension(s string) (Dimension, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "cpu", "cores":
		return CPU, nil
	case "ram", "memory", "mem":
		return RAM, nil
	case "disk", "storage":
		return Disk, nil
	case "network", "net", "bandwidth":
		return Network, nil
	}
	return 0, fmt.Errorf("resource: unknown dimension %q", s)
}

// Pool identifies one divisible resource pool: a dimension within a
// cluster, e.g. {Cluster: "r7", Dim: CPU}.
type Pool struct {
	Cluster string
	Dim     Dimension
}

func (p Pool) String() string { return p.Cluster + "/" + p.Dim.String() }

// Registry assigns a stable dense index to every pool participating in a
// market. All vectors in a market share one registry so component i always
// refers to the same pool. The zero value is an empty registry ready to
// use.
type Registry struct {
	pools []Pool
	index map[Pool]int
}

// NewRegistry returns a registry pre-populated with the given pools, in
// order. Duplicate pools are registered once.
func NewRegistry(pools ...Pool) *Registry {
	r := &Registry{}
	for _, p := range pools {
		r.Add(p)
	}
	return r
}

// NewStandardRegistry builds the pool layout used in the paper's
// experiments: every cluster crossed with CPU, RAM, and Disk.
func NewStandardRegistry(clusters ...string) *Registry {
	r := &Registry{}
	for _, c := range clusters {
		for _, d := range StandardDimensions {
			r.Add(Pool{Cluster: c, Dim: d})
		}
	}
	return r
}

// Add registers a pool and returns its index. Registering an existing pool
// returns the existing index.
func (r *Registry) Add(p Pool) int {
	if r.index == nil {
		r.index = make(map[Pool]int)
	}
	if i, ok := r.index[p]; ok {
		return i
	}
	i := len(r.pools)
	r.pools = append(r.pools, p)
	r.index[p] = i
	return i
}

// Index returns the dense index for pool p. The boolean reports whether the
// pool is registered.
func (r *Registry) Index(p Pool) (int, bool) {
	i, ok := r.index[p]
	return i, ok
}

// MustIndex is like Index but panics on an unregistered pool. It is meant
// for scenario-construction code where the pool set is static.
func (r *Registry) MustIndex(p Pool) int {
	i, ok := r.index[p]
	if !ok {
		panic(fmt.Sprintf("resource: pool %v not registered", p))
	}
	return i
}

// Pool returns the pool at index i.
func (r *Registry) Pool(i int) Pool { return r.pools[i] }

// Len returns R, the number of registered pools.
func (r *Registry) Len() int { return len(r.pools) }

// Pools returns a copy of the registered pools in index order.
func (r *Registry) Pools() []Pool {
	out := make([]Pool, len(r.pools))
	copy(out, r.pools)
	return out
}

// Clusters returns the distinct cluster names in first-seen order.
func (r *Registry) Clusters() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range r.pools {
		if !seen[p.Cluster] {
			seen[p.Cluster] = true
			out = append(out, p.Cluster)
		}
	}
	return out
}

// ClusterPools returns the indices of all pools belonging to the cluster,
// in dimension order.
func (r *Registry) ClusterPools(cluster string) []int {
	var out []int
	for i, p := range r.pools {
		if p.Cluster == cluster {
			out = append(out, i)
		}
	}
	return out
}

// DimensionPools returns the indices of all pools with dimension d.
func (r *Registry) DimensionPools(d Dimension) []int {
	var out []int
	for i, p := range r.pools {
		if p.Dim == d {
			out = append(out, i)
		}
	}
	return out
}

// Zero returns a zero vector sized for this registry.
func (r *Registry) Zero() Vector { return make(Vector, len(r.pools)) }

// String renders a compact description such as
// "Registry(6 pools, 2 clusters)".
func (r *Registry) String() string {
	return fmt.Sprintf("Registry(%d pools, %d clusters)", r.Len(), len(r.Clusters()))
}

// Format renders a non-zero vector against this registry as a sorted,
// human-readable list like "r1/CPU:+40 r1/RAM:+96".
func (r *Registry) Format(v Vector) string {
	var parts []string
	for i, q := range v {
		if q == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s:%+g", r.pools[i], q))
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, " ")
}
