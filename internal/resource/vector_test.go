package resource

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorArithmetic(t *testing.T) {
	v := Vector{1, -2, 3}
	w := Vector{4, 5, -6}

	if got := v.Add(w); !got.Equal(Vector{5, 3, -3}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); !got.Equal(Vector{-3, -7, 9}, 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.Equal(Vector{2, -4, 6}, 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Neg(); !got.Equal(Vector{-1, 2, -3}, 0) {
		t.Errorf("Neg = %v", got)
	}
	if got := v.Dot(w); got != 1*4+(-2)*5+3*(-6) {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Sum(); got != 2 {
		t.Errorf("Sum = %v", got)
	}
	if got := v.MaxAbs(); got != 3 {
		t.Errorf("MaxAbs = %v", got)
	}
}

func TestVectorAddInto(t *testing.T) {
	v := Vector{1, 2}
	v.AddInto(Vector{10, -1})
	if !v.Equal(Vector{11, 1}, 0) {
		t.Errorf("AddInto = %v", v)
	}
}

func TestVectorParts(t *testing.T) {
	v := Vector{3, -4, 0, 5}
	if got := v.PositivePart(); !got.Equal(Vector{3, 0, 0, 5}, 0) {
		t.Errorf("PositivePart = %v", got)
	}
	if got := v.NegativePart(); !got.Equal(Vector{0, -4, 0, 0}, 0) {
		t.Errorf("NegativePart = %v", got)
	}
	// v = v⁺ + v⁻ must always hold.
	if got := v.PositivePart().Add(v.NegativePart()); !got.Equal(v, 0) {
		t.Errorf("parts do not reassemble: %v", got)
	}
}

func TestVectorPredicates(t *testing.T) {
	if !(Vector{-1, 0, -0.5}).AllNonPositive(0) {
		t.Error("AllNonPositive false negative")
	}
	if (Vector{-1, 0.1}).AllNonPositive(0) {
		t.Error("AllNonPositive false positive")
	}
	if !(Vector{-1, 0.1}).AllNonPositive(0.2) {
		t.Error("AllNonPositive ignores eps")
	}
	if !(Vector{0, 2}).AllNonNegative(0) {
		t.Error("AllNonNegative false negative")
	}
	if (Vector{-0.1, 2}).AllNonNegative(0) {
		t.Error("AllNonNegative false positive")
	}
	if !(Vector{0, 0}).IsZero() || (Vector{0, 1e-12}).IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestVectorMinMax(t *testing.T) {
	v := Vector{1, 5}
	w := Vector{3, 2}
	if got := v.Min(w); !got.Equal(Vector{1, 2}, 0) {
		t.Errorf("Min = %v", got)
	}
	if got := v.Max(w); !got.Equal(Vector{3, 5}, 0) {
		t.Errorf("Max = %v", got)
	}
}

func TestPureDirection(t *testing.T) {
	cases := []struct {
		v    Vector
		want int
	}{
		{Vector{1, 0, 2}, +1},
		{Vector{0, 0}, +1},
		{Vector{-1, 0}, -1},
		{Vector{-1, 2}, 0},
	}
	for _, c := range cases {
		if got := c.v.PureDirection(); got != c.want {
			t.Errorf("PureDirection(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestVectorValidate(t *testing.T) {
	if err := (Vector{1, -2}).Validate(); err != nil {
		t.Errorf("Validate(finite) = %v", err)
	}
	if err := (Vector{math.NaN()}).Validate(); err == nil {
		t.Error("Validate missed NaN")
	}
	if err := (Vector{math.Inf(1)}).Validate(); err == nil {
		t.Error("Validate missed +Inf")
	}
}

func TestVectorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Vector{1}.Add(Vector{1, 2})
}

func TestVectorEqualDifferentLengths(t *testing.T) {
	if (Vector{1}).Equal(Vector{1, 0}, 0) {
		t.Error("Equal across lengths must be false")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

// randomVector generates bounded random vectors for property tests.
func randomVector(r *rand.Rand, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = math.Round(r.Float64()*200-100) / 4
	}
	return v
}

func TestQuickVectorAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}

	// Commutativity of Add and Dot; distributivity of Scale over Add.
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := int(n%16) + 1
		v, w := randomVector(r, m), randomVector(r, m)
		k := math.Round(r.Float64()*8-4) / 2

		if !v.Add(w).Equal(w.Add(v), 1e-9) {
			return false
		}
		if math.Abs(v.Dot(w)-w.Dot(v)) > 1e-9 {
			return false
		}
		lhs := v.Add(w).Scale(k)
		rhs := v.Scale(k).Add(w.Scale(k))
		return lhs.Equal(rhs, 1e-9)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickPositivePartProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := int(n%16) + 1
		v := randomVector(r, m)
		pp := v.PositivePart()
		// pp ≥ 0, pp ≥ v, and pp + v⁻ = v.
		if !pp.AllNonNegative(0) {
			return false
		}
		for i := range v {
			if pp[i] < v[i] {
				return false
			}
		}
		return pp.Add(v.NegativePart()).Equal(v, 1e-12)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSubThenAddRoundTrip(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := int(n%16) + 1
		v, w := randomVector(r, m), randomVector(r, m)
		return v.Sub(w).Add(w).Equal(v, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
