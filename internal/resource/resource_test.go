package resource

import (
	"strings"
	"testing"
)

func TestParseDimension(t *testing.T) {
	cases := []struct {
		in      string
		want    Dimension
		wantErr bool
	}{
		{"cpu", CPU, false},
		{"CPU", CPU, false},
		{" Cores ", CPU, false},
		{"ram", RAM, false},
		{"Memory", RAM, false},
		{"mem", RAM, false},
		{"disk", Disk, false},
		{"storage", Disk, false},
		{"network", Network, false},
		{"net", Network, false},
		{"bandwidth", Network, false},
		{"gpu", 0, true},
		{"", 0, true},
	}
	for _, c := range cases {
		got, err := ParseDimension(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseDimension(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseDimension(%q): unexpected error %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseDimension(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDimensionStringAndUnit(t *testing.T) {
	for _, d := range Dimensions {
		if d.String() == "" || strings.HasPrefix(d.String(), "Dimension(") {
			t.Errorf("dimension %d has no name", int(d))
		}
		if d.Unit() == "" {
			t.Errorf("dimension %v has no unit", d)
		}
	}
	if got := Dimension(99).String(); got != "Dimension(99)" {
		t.Errorf("unknown dimension String() = %q", got)
	}
	if got := Dimension(99).Unit(); got != "units" {
		t.Errorf("unknown dimension Unit() = %q", got)
	}
}

func TestRegistryAddAndIndex(t *testing.T) {
	r := &Registry{}
	p1 := Pool{Cluster: "r1", Dim: CPU}
	p2 := Pool{Cluster: "r1", Dim: RAM}

	if i := r.Add(p1); i != 0 {
		t.Fatalf("first Add = %d, want 0", i)
	}
	if i := r.Add(p2); i != 1 {
		t.Fatalf("second Add = %d, want 1", i)
	}
	if i := r.Add(p1); i != 0 {
		t.Fatalf("duplicate Add = %d, want existing index 0", i)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if i, ok := r.Index(p2); !ok || i != 1 {
		t.Fatalf("Index(p2) = %d,%v", i, ok)
	}
	if _, ok := r.Index(Pool{Cluster: "zz", Dim: Disk}); ok {
		t.Fatal("Index of unregistered pool reported ok")
	}
	if got := r.Pool(1); got != p2 {
		t.Fatalf("Pool(1) = %v, want %v", got, p2)
	}
}

func TestRegistryMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex on missing pool did not panic")
		}
	}()
	(&Registry{}).MustIndex(Pool{Cluster: "nope", Dim: CPU})
}

func TestNewStandardRegistry(t *testing.T) {
	r := NewStandardRegistry("r1", "r2")
	if r.Len() != 6 {
		t.Fatalf("Len = %d, want 6", r.Len())
	}
	clusters := r.Clusters()
	if len(clusters) != 2 || clusters[0] != "r1" || clusters[1] != "r2" {
		t.Fatalf("Clusters = %v", clusters)
	}
	cp := r.ClusterPools("r2")
	if len(cp) != 3 {
		t.Fatalf("ClusterPools(r2) = %v", cp)
	}
	for _, i := range cp {
		if r.Pool(i).Cluster != "r2" {
			t.Errorf("pool %d = %v not in r2", i, r.Pool(i))
		}
	}
	dp := r.DimensionPools(RAM)
	if len(dp) != 2 {
		t.Fatalf("DimensionPools(RAM) = %v", dp)
	}
	for _, i := range dp {
		if r.Pool(i).Dim != RAM {
			t.Errorf("pool %d = %v not RAM", i, r.Pool(i))
		}
	}
}

func TestRegistryZeroAndFormat(t *testing.T) {
	r := NewStandardRegistry("r1")
	v := r.Zero()
	if len(v) != 3 {
		t.Fatalf("Zero len = %d", len(v))
	}
	if got := r.Format(v); got != "(empty)" {
		t.Errorf("Format(zero) = %q", got)
	}
	v[r.MustIndex(Pool{"r1", CPU})] = 40
	v[r.MustIndex(Pool{"r1", Disk})] = -2
	got := r.Format(v)
	if !strings.Contains(got, "r1/CPU:+40") || !strings.Contains(got, "r1/Disk:-2") {
		t.Errorf("Format = %q", got)
	}
}

func TestPoolsReturnsCopy(t *testing.T) {
	r := NewStandardRegistry("r1")
	pools := r.Pools()
	pools[0] = Pool{Cluster: "mutated", Dim: Disk}
	if r.Pool(0).Cluster == "mutated" {
		t.Fatal("Pools() exposed internal slice")
	}
}

func TestRegistryString(t *testing.T) {
	r := NewStandardRegistry("a", "b", "c")
	if got := r.String(); got != "Registry(9 pools, 3 clusters)" {
		t.Errorf("String = %q", got)
	}
}
