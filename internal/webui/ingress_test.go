package webui

import (
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"clustermarket/internal/cluster"
	"clustermarket/internal/federation"
	"clustermarket/internal/market"
)

// badNumbers are form values that strconv.ParseFloat accepts but bid
// ingress must reject: non-finite, non-positive, or not a number at
// all. Booking any of them would either poison auction arithmetic
// (NaN/Inf reach budget reservation and the cover vector) or book an
// order that can never win.
var badNumbers = []string{"NaN", "nan", "+Inf", "-Inf", "Infinity", "0", "-5", "1e999", "abc", ""}

// TestBidSubmitRejectsNonFinite is the regression test for the ingress
// hole where /bid/submit parsed "NaN" and "+Inf" limits (and
// quantities) unguarded and forwarded them into the market layer. Both
// fields must 400 at the door, and nothing may reach the order book.
func TestBidSubmitRejectsNonFinite(t *testing.T) {
	s, ex := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, bad := range badNumbers {
		form := url.Values{
			"team": {"web-team"}, "product": {"batch-compute"},
			"qty": {"1"}, "clusters": {"r2"}, "limit": {"50"},
		}
		form.Set("limit", bad)
		if code, body := postForm(t, ts, "/bid/submit", form); code != http.StatusBadRequest || !strings.Contains(body, "limit") {
			t.Errorf("limit=%q: got %d, want 400 naming the limit", bad, code)
		}
		form.Set("limit", "50")
		form.Set("qty", bad)
		if code, body := postForm(t, ts, "/bid/submit", form); code != http.StatusBadRequest || !strings.Contains(body, "quantity") {
			t.Errorf("qty=%q: got %d, want 400 naming the quantity", bad, code)
		}
		// The preview step guards quantity the same way (via redirect,
		// its established error channel) so NaN cannot price a cover.
		if _, body := postForm(t, ts, "/bid/preview", form); !strings.Contains(body, "quantity") {
			t.Errorf("preview qty=%q not rejected", bad)
		}
	}
	if n := len(ex.OpenOrders()); n != 0 {
		t.Fatalf("rejected submissions booked %d orders", n)
	}
}

// TestFedGlobalBidRejectsNonFinite covers the same hole on the
// federated front end's global bid form, which routes through
// Federation.SubmitProduct.
func TestFedGlobalBidRejectsNonFinite(t *testing.T) {
	fed, ts := fedFixture(t)

	for _, bad := range badNumbers {
		form := url.Values{
			"team": {"search"}, "product": {"batch-compute"},
			"qty": {"1"}, "clusters": {"hot-r1,cold-r1"}, "limit": {"500"},
		}
		form.Set("limit", bad)
		if code, body := postForm(t, ts, "/bid/submit", form); code != http.StatusBadRequest || !strings.Contains(body, "limit") {
			t.Errorf("limit=%q: got %d, want 400 naming the limit", bad, code)
		}
		form.Set("limit", "500")
		form.Set("qty", bad)
		if code, body := postForm(t, ts, "/bid/submit", form); code != http.StatusBadRequest || !strings.Contains(body, "quantity") {
			t.Errorf("qty=%q: got %d, want 400 naming the quantity", bad, code)
		}
	}
	if n := len(fed.OrdersTail(10)); n != 0 {
		t.Fatalf("rejected submissions booked %d federated orders", n)
	}
}

// TestSubmitProductRejectsNonFinite pins the defense-in-depth layer:
// even a caller bypassing the HTTP front end (the Go API, a future RPC
// ingress) must not be able to book a non-finite or non-positive
// quantity or limit. qty <= 0 alone waves NaN through, since every
// comparison with NaN is false.
func TestSubmitProductRejectsNonFinite(t *testing.T) {
	_, ex := newTestServer(t)
	fed, _ := fedFixture(t)

	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct{ qty, limit float64 }{
		{nan, 50}, {1, nan}, {inf, 50}, {1, inf}, {1, -inf},
		{-1, 50}, {0, 50}, {1, 0}, {1, -5},
	}
	for _, c := range cases {
		if _, err := ex.SubmitProduct("web-team", "batch-compute", c.qty, []string{"r2"}, c.limit); err == nil {
			t.Errorf("market.SubmitProduct(qty=%g, limit=%g) accepted", c.qty, c.limit)
		}
		if _, err := fed.SubmitProduct("search", "batch-compute", c.qty, []string{"cold-r1"}, c.limit); err == nil {
			t.Errorf("federation.SubmitProduct(qty=%g, limit=%g) accepted", c.qty, c.limit)
		}
	}
}

// fuzzFedServerOnce builds one shared single-region FedServer for the
// bid-entry fuzzer, mirroring fuzzServerOnce.
var fuzzFedServerOnce = sync.OnceValue(func() *FedServer {
	f := cluster.NewFleet()
	c := cluster.New("fz-r1", nil)
	c.AddMachines(10, cluster.Usage{CPU: 10, RAM: 20, Disk: 5})
	if err := f.AddCluster(c); err != nil {
		panic(err)
	}
	r, err := federation.NewRegion("fz", f, market.Config{InitialBudget: 5000})
	if err != nil {
		panic(err)
	}
	fed, err := federation.NewFederation(r)
	if err != nil {
		panic(err)
	}
	if err := fed.OpenAccount("web-team"); err != nil {
		panic(err)
	}
	return NewFederated(fed)
})

// FuzzBidSubmit hammers both bid-entry front ends with arbitrary qty
// and limit strings. Properties:
//
//  1. no handler panics;
//  2. every response is a deliberate status — 200 for a booked or
//     cleanly-refused bid (error redirects land on 200 pages), 400 for
//     malformed numbers — never a 5xx;
//  3. no order is ever booked with a non-finite or non-positive
//     quantity or limit.
func FuzzBidSubmit(f *testing.F) {
	f.Add("1", "50")
	f.Add("NaN", "50")
	f.Add("1", "NaN")
	f.Add("+Inf", "50")
	f.Add("1", "+Inf")
	f.Add("-Inf", "-Inf")
	f.Add("0", "0")
	f.Add("-3", "1e999")
	f.Add("", "")
	f.Add("1e3", "0x1p-10")
	f.Fuzz(func(t *testing.T, qty, limit string) {
		s := fuzzServerOnce()
		fs := fuzzFedServerOnce()
		form := url.Values{
			"team": {"web-team"}, "product": {"batch-compute"},
			"qty": {qty}, "clusters": {"r2"}, "limit": {limit},
		}
		fedForm := url.Values{
			"team": {"web-team"}, "product": {"batch-compute"},
			"qty": {qty}, "clusters": {"fz-r1"}, "limit": {limit},
		}
		for _, tc := range []struct {
			h    http.Handler
			path string
			form url.Values
		}{
			{s, "/bid/submit", form},
			{fs, "/bid/submit", fedForm},
		} {
			req := httptest.NewRequest("POST", tc.path, strings.NewReader(tc.form.Encode()))
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
			rec := httptest.NewRecorder()
			tc.h.ServeHTTP(rec, req)
			switch rec.Code {
			case 200, 303, 400:
			default:
				t.Fatalf("POST %s qty=%q limit=%q -> %d:\n%s", tc.path, qty, limit, rec.Code, rec.Body.String())
			}
		}
	})
}
