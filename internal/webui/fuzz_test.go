package webui

import (
	"math/rand"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"clustermarket/internal/cluster"
	"clustermarket/internal/market"
)

// fuzzServerOnce builds one shared Server over a tiny settled market;
// the fuzzer hammers its read-only endpoints, so one instance serves
// every execution.
var fuzzServerOnce = sync.OnceValue(func() *Server {
	f := cluster.NewFleet()
	for _, name := range []string{"r1", "r2"} {
		c := cluster.New(name, nil)
		c.AddMachines(10, cluster.Usage{CPU: 10, RAM: 20, Disk: 5})
		if err := f.AddCluster(c); err != nil {
			panic(err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	if err := f.FillToUtilization(rng, "r1", cluster.Usage{CPU: 0.8, RAM: 0.8, Disk: 0.8}); err != nil {
		panic(err)
	}
	ex, err := market.NewExchange(f, market.Config{InitialBudget: 5000})
	if err != nil {
		panic(err)
	}
	if err := ex.OpenAccount("web-team"); err != nil {
		panic(err)
	}
	if _, err := ex.SubmitProduct("web-team", "batch-compute", 1, []string{"r2"}, 500); err != nil {
		panic(err)
	}
	if _, _, err := ex.RunAuction(); err != nil {
		panic(err)
	}
	return New(ex)
})

// FuzzQueryParams drives the polling endpoints with arbitrary limit,
// cluster, and dim query parameters. Properties:
//
//  1. no handler panics, whatever the parameters;
//  2. every response is a deliberate status — 200 for served data, 400
//     for malformed parameters, 404 for unknown pools — never a 5xx:
//     user input must not be able to reach an internal-error path.
func FuzzQueryParams(f *testing.F) {
	f.Add("100", "r1", "cpu")
	f.Add("", "", "")
	f.Add("0", "r1", "ram")
	f.Add("-5", "mars", "disk")
	f.Add("999999999999999999999999", "r1", "CPU")
	f.Add("10; DROP TABLE orders", "../../etc", "network")
	f.Add("1e3", "r1\x00", "cpu ")
	f.Add("NaN", "%2e%2e", "\u0000dim")
	f.Fuzz(func(t *testing.T, limit, cluster, dim string) {
		s := fuzzServerOnce()
		q := url.Values{}
		if limit != "" {
			q.Set("limit", limit)
		}
		q.Set("cluster", cluster)
		q.Set("dim", dim)
		for _, path := range []string{
			"/api/orders.json",
			"/api/auctions.json",
			"/api/history.json",
			"/orders",
		} {
			req := httptest.NewRequest("GET", path+"?"+q.Encode(), nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			switch rec.Code {
			case 200, 400, 404:
			default:
				t.Fatalf("GET %s?%s -> %d:\n%s", path, q.Encode(), rec.Code, rec.Body.String())
			}
		}
	})
}
