package webui

import (
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"

	"clustermarket/internal/federation"
	"clustermarket/internal/telemetry"
)

// FedServer is the federation's global front end: a planet-wide market
// summary ranking the regions by price, the router's cross-region order
// table, and the gossip price board — with every region's full trading
// platform mounted for drill-down under /region/<name>/.
type FedServer struct {
	fed    *federation.Federation
	mux    *http.ServeMux
	global *template.Template
	// health backs /healthz; nil serves a bare always-healthy snapshot.
	health *telemetry.Health
}

// NewFederated builds the global front end over a federation.
func NewFederated(f *federation.Federation) *FedServer {
	funcs := template.FuncMap{
		"pct": func(x float64) float64 { return 100 * x },
	}
	s := &FedServer{
		fed:    f,
		mux:    http.NewServeMux(),
		global: template.Must(template.New("global").Funcs(funcs).Parse(fedSummaryTmpl)),
	}
	s.mux.HandleFunc("/", s.handleGlobal)
	s.mux.HandleFunc("/bid/submit", s.handleGlobalBid)
	s.mux.HandleFunc("/api/federation.json", s.handleFederationJSON)
	s.mux.HandleFunc("/api/events", s.handleEvents)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	for _, r := range f.Regions() {
		prefix := "/region/" + r.Name()
		s.mux.Handle(prefix+"/", http.StripPrefix(prefix, NewWithPrefix(r.Exchange(), prefix)))
		// Manual settlement must go through the federation so the price
		// board gossips and cross-region legs advance; settling the
		// regional exchange directly would strand routed orders. The
		// longer pattern shadows the mounted regional route.
		name := r.Name()
		s.mux.HandleFunc(prefix+"/auction/run", func(w http.ResponseWriter, rq *http.Request) {
			if rq.Method != http.MethodPost {
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			if _, err := f.SettleRegion(name); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			http.Redirect(w, rq, prefix+"/", http.StatusSeeOther)
		})
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *FedServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// fedRegionRow is one region line of the global summary.
type fedRegionRow struct {
	federation.RegionSummary
	// Class marks the region hot/cold by its mean CPU utilization, like
	// the per-cluster rows of the regional summary page.
	Class   string
	MeanCPU float64
}

// fedOrderRow is one router order line.
type fedOrderRow struct {
	ID      int
	Team    string
	Product string
	Qty     float64
	Limit   float64
	Status  string
	Route   string
	Region  string
	Payment float64
}

func (s *FedServer) handleGlobal(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	sums, err := s.fed.Summary()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var clusters []string
	for _, reg := range s.fed.Regions() {
		clusters = append(clusters, reg.Clusters()...)
	}
	view := struct {
		Error    string
		Products []string
		Clusters string
		Regions  []fedRegionRow
		Board    []federation.Quote
		Stats    federation.Stats
		Orders   []fedOrderRow
	}{
		Error:    r.URL.Query().Get("err"),
		Products: s.fed.Catalog().Names(),
		Clusters: strings.Join(clusters, ","),
		Board:    s.fed.Board(),
		Stats:    s.fed.Stats(),
	}
	for _, rs := range sums {
		row := fedRegionRow{RegionSummary: rs}
		var util float64
		for _, cs := range rs.Clusters {
			util += cs.Utilization.CPU
		}
		if n := len(rs.Clusters); n > 0 {
			row.MeanCPU = util / float64(n)
		}
		switch {
		case row.MeanCPU >= 0.75:
			row.Class = "hot"
		case row.MeanCPU <= 0.35:
			row.Class = "cold"
		}
		view.Regions = append(view.Regions, row)
	}
	for _, fo := range s.fed.OrdersTail(defaultOrdersLimit) {
		view.Orders = append(view.Orders, fedOrderRow{
			ID: fo.ID, Team: fo.Team, Product: fo.Product,
			Qty: fo.Qty, Limit: fo.Limit,
			Status: fo.Status.String(), Route: routeString(fo),
			Region: fo.Region, Payment: fo.Payment,
		})
	}
	render(w, s.global, view)
}

// handleGlobalBid books one order through the federation router: the
// acceptable clusters may span regions, in which case the order becomes
// cheapest-first cross-region legs (visible in the Routed orders table).
func (s *FedServer) handleGlobalBid(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	fail := func(msg string) { errRedirect(w, r, "/", msg) }
	team := strings.TrimSpace(r.FormValue("team"))
	qty, err := strconv.ParseFloat(r.FormValue("qty"), 64)
	if err != nil || !finitePositive(qty) {
		http.Error(w, "quantity must be a positive, finite number", http.StatusBadRequest)
		return
	}
	limit, err := strconv.ParseFloat(r.FormValue("limit"), 64)
	if err != nil || !finitePositive(limit) {
		http.Error(w, "limit must be a positive, finite number", http.StatusBadRequest)
		return
	}
	if _, err := s.fed.SubmitProduct(team, r.FormValue("product"), qty, splitCSV(r.FormValue("clusters")), limit); err != nil {
		fail(err.Error())
		return
	}
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

// routeString renders an order's legs in attempt order, e.g.
// "hot:lost → cold:won", so the failover trail reads left to right in
// time; cheaper legs come first because that is the routing order.
func routeString(fo *federation.FedOrder) string {
	parts := make([]string, 0, len(fo.Legs))
	for _, l := range fo.Legs {
		st := "queued"
		switch {
		case l.Err != "":
			st = "rejected"
		case l.OrderID >= 0:
			st = l.Status.String()
		}
		parts = append(parts, fmt.Sprintf("%s:%s", l.Region, st))
	}
	return strings.Join(parts, " → ")
}

// fedRegionView is the wire form of one region aggregate.
type fedRegionView struct {
	Region       string  `json:"region"`
	Clusters     int     `json:"clusters"`
	OpenOrders   int     `json:"openOrders"`
	Auctions     int     `json:"auctions"`
	Settled      int     `json:"settled"`
	MeanCPUPrice float64 `json:"meanCPUPrice"`
	Clearing     bool    `json:"clearing"`
	GossipTick   int     `json:"gossipTick"`
}

// handleFederationJSON returns the global state: per-region aggregates
// joined with the price board, plus the router counters.
func (s *FedServer) handleFederationJSON(w http.ResponseWriter, r *http.Request) {
	sums, err := s.fed.Summary()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	quotes := make(map[string]federation.Quote)
	for _, q := range s.fed.Board() {
		quotes[q.Region] = q
	}
	out := struct {
		Regions []fedRegionView  `json:"regions"`
		Stats   federation.Stats `json:"stats"`
	}{Stats: s.fed.Stats()}
	for _, rs := range sums {
		q := quotes[rs.Region]
		out.Regions = append(out.Regions, fedRegionView{
			Region:       rs.Region,
			Clusters:     len(rs.Clusters),
			OpenOrders:   rs.OpenOrders,
			Auctions:     rs.Auctions,
			Settled:      rs.Settled,
			MeanCPUPrice: rs.MeanCPUPrice,
			Clearing:     q.Clearing,
			GossipTick:   q.Tick,
		})
	}
	writeJSON(w, out)
}
