// Package webui serves the trading platform front end from Section V.A:
// the market summary page (Figure 3), the two-step bid entry flow
// (Figure 4), and preliminary prices during the bid window (Figure 5),
// implemented entirely with net/http and html/template.
package webui

import (
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"clustermarket/internal/cluster"
	"clustermarket/internal/market"
	"clustermarket/internal/resource"
	"clustermarket/internal/telemetry"
)

// Server exposes one Exchange over HTTP. The Exchange is safe for
// concurrent use, so handlers call it directly — no server-wide lock
// serializes requests, and the epoch auction loop can settle while
// traffic is in flight.
type Server struct {
	ex *market.Exchange
	// prefix is prepended to every generated link and redirect, so the
	// same server can be mounted at a sub-path (a region drill-down under
	// a federation front end) behind http.StripPrefix.
	prefix string

	mux       *http.ServeMux
	summary   *template.Template
	bidStep1  *template.Template
	bidStep2  *template.Template
	bidDone   *template.Template
	orders    *template.Template
	teamsPage *template.Template

	// The preliminary-prices endpoint runs a full clock simulation per
	// call; this single-flight cache keeps N polling browser tabs from
	// running N simulations over the same book.
	pricesMu  sync.Mutex
	pricesAt  time.Time
	pricesVal *pricesView

	// health backs /healthz; nil serves a bare always-healthy snapshot.
	health *telemetry.Health
}

// pricesView is the wire form of /api/prices.json: the preliminary
// settlement prices plus whether the simulated clock actually cleared.
// A non-clearing clock's prices are still shown during the bid window
// (Section V.A) — marked by Note — instead of failing the request.
type pricesView struct {
	Converged bool               `json:"converged"`
	Note      string             `json:"note,omitempty"`
	Prices    map[string]float64 `json:"prices"`
}

// noteNotConverged marks prices from a clock simulation that hit its
// round limit; noteReserve marks the reserve-price fallback used when
// the book is empty.
const (
	noteNotConverged = "preliminary, not converged"
	noteReserve      = "reserve prices (no open orders)"
)

// pricesTTL bounds how stale the cached preliminary prices may be — the
// "periodic intervals during the bid collection phase" of Section V.A.
const pricesTTL = time.Second

// New builds a Server around the exchange, serving from the root path.
func New(ex *market.Exchange) *Server { return NewWithPrefix(ex, "") }

// NewWithPrefix builds a Server whose generated links and redirects are
// rooted at prefix (e.g. "/region/eu"). Mount it behind
// http.StripPrefix(prefix, s) so incoming paths still match the bare
// routes.
func NewWithPrefix(ex *market.Exchange, prefix string) *Server {
	funcs := template.FuncMap{
		"pct": func(x float64) float64 { return 100 * x },
	}
	s := &Server{
		ex:        ex,
		prefix:    prefix,
		mux:       http.NewServeMux(),
		summary:   template.Must(template.New("summary").Funcs(funcs).Parse(summaryTmpl)),
		bidStep1:  template.Must(template.New("bid1").Parse(bidStep1Tmpl)),
		bidStep2:  template.Must(template.New("bid2").Parse(bidStep2Tmpl)),
		bidDone:   template.Must(template.New("bidDone").Parse(bidDoneTmpl)),
		orders:    template.Must(template.New("orders").Parse(ordersTmpl)),
		teamsPage: template.Must(template.New("teams").Parse(teamsTmpl)),
	}
	s.mux.HandleFunc("/", s.handleSummary)
	s.mux.HandleFunc("/bid", s.handleBidStep1)
	s.mux.HandleFunc("/bid/preview", s.handleBidPreview)
	s.mux.HandleFunc("/bid/submit", s.handleBidSubmit)
	s.mux.HandleFunc("/orders", s.handleOrders)
	s.mux.HandleFunc("/teams", s.handleTeams)
	s.mux.HandleFunc("/auction/run", s.handleRunAuction)
	s.mux.HandleFunc("/api/summary.json", s.handleSummaryJSON)
	s.mux.HandleFunc("/api/prices.json", s.handlePricesJSON)
	s.mux.HandleFunc("/api/history.json", s.handleHistoryJSON)
	s.mux.HandleFunc("/api/auctions.json", s.handleAuctionsJSON)
	s.mux.HandleFunc("/api/orders.json", s.handleOrdersJSON)
	s.mux.HandleFunc("/api/events", s.handleEvents)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Poll endpoints are bounded by default: browser tabs re-fetch them on a
// timer, and cloning an ever-growing book or history per poll turns a
// long-lived market into a quadratic copy loop. ?limit=N overrides
// (capped at maxPollLimit); the unbounded dumps stay available through
// the Exchange API for tests and batch consumers.
const (
	defaultOrdersLimit   = 100
	defaultAuctionsLimit = 200
	maxPollLimit         = 10000
)

// pollLimit parses the request's limit parameter, falling back to def
// and clamping to [1, maxPollLimit]. ok is false on a malformed value.
func pollLimit(r *http.Request, def int) (limit int, ok bool) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return def, true
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 1 {
		return 0, false
	}
	if n > maxPollLimit {
		n = maxPollLimit
	}
	return n, true
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// summaryRow augments a market.ClusterSummary with presentation fields.
type summaryRow struct {
	market.ClusterSummary
	Class string
	Spark string
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	rows, err := s.ex.Summary()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	view := struct {
		Prefix     string
		Auctions   int
		OpenOrders int
		Rows       []summaryRow
	}{
		Prefix:     s.prefix,
		Auctions:   s.ex.AuctionCount(),
		OpenOrders: s.ex.OpenOrderCount(),
	}
	for _, row := range rows {
		sr := summaryRow{ClusterSummary: row}
		switch {
		case row.Utilization.CPU >= 0.75:
			sr.Class = "hot"
		case row.Utilization.CPU <= 0.35:
			sr.Class = "cold"
		}
		hist := s.ex.PriceHistoryTail(resource.Pool{Cluster: row.Cluster, Dim: resource.CPU}, sparklineWindow)
		sr.Spark = sparkline(hist)
		view.Rows = append(view.Rows, sr)
	}
	render(w, s.summary, view)
}

// sparklineWindow bounds the price points behind each summary-page
// sparkline: the glyph row is only this wide anyway, and an unbounded
// PriceHistory walk would make the landing page O(total auctions) per
// poll in a long-lived market.
const sparklineWindow = 48

// sparkline renders values as unicode block characters.
func sparkline(xs []float64) string {
	if len(xs) == 0 {
		return "-"
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	var sb strings.Builder
	for _, x := range xs {
		i := 0
		if hi > lo {
			i = int((x - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		sb.WriteRune(blocks[i])
	}
	return sb.String()
}

func (s *Server) handleBidStep1(w http.ResponseWriter, r *http.Request) {
	view := struct {
		Prefix   string
		Error    string
		Team     string
		Products []string
		Clusters string
	}{
		Prefix:   s.prefix,
		Error:    r.URL.Query().Get("err"),
		Products: s.ex.Catalog().Names(),
		Clusters: strings.Join(s.ex.Fleet().ClusterNames(), ","),
	}
	render(w, s.bidStep1, view)
}

// bidOption is one cluster alternative on the step-2 page.
type bidOption struct {
	Cluster string
	Cover   cluster.Usage
	Cost    float64
}

func (s *Server) handleBidPreview(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}

	team := strings.TrimSpace(r.FormValue("team"))
	productName := r.FormValue("product")
	qty, err := strconv.ParseFloat(r.FormValue("qty"), 64)
	if err != nil || !finitePositive(qty) {
		s.redirectErr(w, r, "quantity must be a positive number")
		return
	}
	clusters := splitCSV(r.FormValue("clusters"))
	if team == "" || len(clusters) == 0 {
		s.redirectErr(w, r, "team and clusters are required")
		return
	}
	product, err := s.ex.Catalog().Lookup(productName)
	if err != nil {
		s.redirectErr(w, r, err.Error())
		return
	}
	prices, err := s.currentPrices()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	cover := product.Cover(qty)
	reg := s.ex.Registry()
	var options []bidOption
	suggested := 0.0
	for _, cl := range clusters {
		cost := 0.0
		found := false
		for _, d := range resource.StandardDimensions {
			if i, ok := reg.Index(resource.Pool{Cluster: cl, Dim: d}); ok {
				cost += cover.Get(d) * prices[i]
				found = true
			}
		}
		if !found {
			s.redirectErr(w, r, fmt.Sprintf("unknown cluster %q", cl))
			return
		}
		options = append(options, bidOption{Cluster: cl, Cover: cover, Cost: cost})
		if suggested == 0 || cost < suggested {
			suggested = cost
		}
	}
	view := struct {
		Prefix              string
		Team, Product, Unit string
		Qty                 float64
		Options             []bidOption
		ClustersCSV         string
		SuggestedLimit      float64
	}{
		Prefix: s.prefix,
		Team:   team, Product: productName, Unit: product.Unit,
		Qty: qty, Options: options,
		ClustersCSV:    strings.Join(clusters, ","),
		SuggestedLimit: suggested * 1.1,
	}
	render(w, s.bidStep2, view)
}

func (s *Server) handleBidSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}

	team := strings.TrimSpace(r.FormValue("team"))
	qty, err := strconv.ParseFloat(r.FormValue("qty"), 64)
	if err != nil || !finitePositive(qty) {
		http.Error(w, "quantity must be a positive, finite number", http.StatusBadRequest)
		return
	}
	limit, err := strconv.ParseFloat(r.FormValue("limit"), 64)
	if err != nil || !finitePositive(limit) {
		http.Error(w, "limit must be a positive, finite number", http.StatusBadRequest)
		return
	}
	order, err := s.ex.SubmitProduct(team, r.FormValue("product"), qty, splitCSV(r.FormValue("clusters")), limit)
	if err != nil {
		s.redirectErr(w, r, err.Error())
		return
	}
	view := struct {
		Prefix string
		ID     int
		Team   string
		Limit  float64
	}{Prefix: s.prefix, ID: order.ID, Team: team, Limit: limit}
	render(w, s.bidDone, view)
}

func (s *Server) handleOrders(w http.ResponseWriter, r *http.Request) {
	limit, ok := pollLimit(r, defaultOrdersLimit)
	if !ok {
		http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
		return
	}
	view := struct {
		Prefix string
		Orders []*market.Order
	}{Prefix: s.prefix, Orders: s.ex.OrdersTail(limit)}
	render(w, s.orders, view)
}

func (s *Server) handleTeams(w http.ResponseWriter, r *http.Request) {
	type teamRow struct {
		Name    string
		Balance float64
	}
	var view struct {
		Prefix string
		Teams  []teamRow
	}
	view.Prefix = s.prefix
	for _, t := range s.ex.Teams() {
		bal, err := s.ex.Balance(t)
		if err != nil {
			continue
		}
		view.Teams = append(view.Teams, teamRow{Name: t, Balance: bal})
	}
	render(w, s.teamsPage, view)
}

func (s *Server) handleRunAuction(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	_, _, err := s.ex.RunAuction()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	http.Redirect(w, r, s.prefix+"/", http.StatusSeeOther)
}

func (s *Server) handleSummaryJSON(w http.ResponseWriter, r *http.Request) {
	rows, err := s.ex.Summary()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, rows)
}

// handlePricesJSON returns the preliminary settlement prices over the
// open orders — the Figure 5 feedback loop during the bid window. A
// non-clearing clock's final prices are still returned, marked
// "preliminary, not converged"; with no open orders it falls back to
// reserve prices. Results are cached for pricesTTL and computed under a
// single-flight lock: concurrent pollers share one clock simulation
// instead of each running their own.
func (s *Server) handlePricesJSON(w http.ResponseWriter, r *http.Request) {
	s.pricesMu.Lock()
	if s.pricesVal != nil && time.Since(s.pricesAt) < pricesTTL {
		out := s.pricesVal
		s.pricesMu.Unlock()
		writeJSON(w, out)
		return
	}
	view := &pricesView{}
	prices, converged, err := s.ex.PreliminaryPrices()
	switch {
	case prices != nil:
		// The clock ran; non-convergence (err != nil here) is reported in
		// the payload rather than as a failure — Section V.A's bid window
		// is exactly where in-progress prices should still be shown.
		view.Converged = converged
		if !converged {
			view.Note = noteNotConverged
		}
	case errors.Is(err, market.ErrNoOpenOrders):
		// Empty book: reserve prices are the honest answer.
		prices, err = s.ex.ReservePrices()
		if err != nil {
			s.pricesMu.Unlock()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		view.Note = noteReserve
	default:
		// A real failure (broken policy, reserve pricer error) must not
		// be dressed up as an empty book.
		s.pricesMu.Unlock()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	reg := s.ex.Registry()
	view.Prices = make(map[string]float64, reg.Len())
	for i := 0; i < reg.Len(); i++ {
		view.Prices[reg.Pool(i).String()] = prices[i]
	}
	s.pricesVal = view
	s.pricesAt = time.Now()
	s.pricesMu.Unlock()
	writeJSON(w, view)
}

func (s *Server) handleHistoryJSON(w http.ResponseWriter, r *http.Request) {
	clusterName := r.URL.Query().Get("cluster")
	dimName := r.URL.Query().Get("dim")
	dim, err := resource.ParseDimension(dimName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	limit, ok := pollLimit(r, defaultAuctionsLimit)
	if !ok {
		http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
		return
	}
	hist := s.ex.PriceHistoryTail(resource.Pool{Cluster: clusterName, Dim: dim}, limit)
	if hist == nil {
		http.Error(w, "unknown pool", http.StatusNotFound)
		return
	}
	writeJSON(w, hist)
}

// currentPrices returns the best available price vector for display: the
// last converged settlement when one exists (a failed clock's prices are
// not clearing prices), otherwise the live reserve prices.
func (s *Server) currentPrices() (resource.Vector, error) {
	if p := s.ex.LastClearingPrices(); p != nil {
		return p, nil
	}
	return s.ex.ReservePrices()
}

// auctionView is the wire form of a settled auction record.
type auctionView struct {
	Number        int     `json:"number"`
	Rounds        int     `json:"rounds"`
	Converged     bool    `json:"converged"`
	Submitted     int     `json:"submitted"`
	Settled       int     `json:"settled"`
	PremiumMedian float64 `json:"premiumMedian"`
	PremiumMean   float64 `json:"premiumMean"`
}

// handleAuctionsJSON returns the settled auction history with the
// Table I premium statistics per auction — the most recent records,
// bounded by ?limit=N (default defaultAuctionsLimit).
func (s *Server) handleAuctionsJSON(w http.ResponseWriter, r *http.Request) {
	limit, ok := pollLimit(r, defaultAuctionsLimit)
	if !ok {
		http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
		return
	}
	hist := s.ex.HistoryTail(limit)
	out := make([]auctionView, 0, len(hist))
	for _, rec := range hist {
		out = append(out, auctionView{
			Number:        rec.Number,
			Rounds:        rec.Rounds,
			Converged:     rec.Converged,
			Submitted:     rec.Submitted,
			Settled:       rec.Settled,
			PremiumMedian: rec.PremiumMedian(),
			PremiumMean:   rec.PremiumMean(),
		})
	}
	writeJSON(w, out)
}

// orderView is the wire form of one order on the polling API.
type orderView struct {
	ID      int     `json:"id"`
	Team    string  `json:"team"`
	User    string  `json:"user"`
	Status  string  `json:"status"`
	Auction int     `json:"auction"`
	Payment float64 `json:"payment"`
	Limit   float64 `json:"limit"`
}

// handleOrdersJSON returns the most recent orders (highest IDs first
// submitted last), bounded by ?limit=N with a small default — the
// polling front end only renders a page of rows, so cloning the whole
// book per poll was pure waste. The unbounded dump remains available via
// Exchange.Orders for tests and batch export.
func (s *Server) handleOrdersJSON(w http.ResponseWriter, r *http.Request) {
	limit, ok := pollLimit(r, defaultOrdersLimit)
	if !ok {
		http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
		return
	}
	orders := s.ex.OrdersTail(limit)
	out := make([]orderView, 0, len(orders))
	for _, o := range orders {
		out = append(out, orderView{
			ID:      o.ID,
			Team:    o.Team,
			User:    o.Bid.User,
			Status:  o.Status.String(),
			Auction: o.Auction,
			Payment: o.Payment,
			Limit:   o.Bid.MaxLimit(),
		})
	}
	writeJSON(w, out)
}

func render(w http.ResponseWriter, t *template.Template, view any) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := t.Execute(w, view); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) redirectErr(w http.ResponseWriter, r *http.Request, msg string) {
	errRedirect(w, r, s.prefix+"/bid", msg)
}

// errRedirect bounces back to path with the message in the err query
// parameter, escaped so error text containing &, %, or # survives.
func errRedirect(w http.ResponseWriter, r *http.Request, path, msg string) {
	http.Redirect(w, r, path+"?err="+url.QueryEscape(msg), http.StatusSeeOther)
}

// finitePositive reports whether v is a finite number greater than
// zero. strconv.ParseFloat happily accepts "NaN", "+Inf", and "-Inf",
// so bid ingress must reject non-finite values explicitly before they
// reach budget reservation or auction arithmetic.
func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
