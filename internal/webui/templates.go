package webui

// Templates for the three pages of the trading platform front end,
// mirroring the paper's Figures 3 (market summary), 4 (two-step bid
// entry), and 5 (preliminary prices during the bid window).

const baseStyle = `<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; }
th, td { border: 1px solid #999; padding: 4px 10px; text-align: right; }
th { background: #eee; }
td.name, th.name { text-align: left; }
.hot { background: #fdd; }
.cold { background: #dfd; }
nav a { margin-right: 1.2em; }
.spark { font-family: monospace; letter-spacing: 1px; }
</style>`

const summaryTmpl = `<!DOCTYPE html>
<html><head><title>Resource Market Summary</title>` + baseStyle + `</head>
<body>
<nav><a href="{{.Prefix}}/">Market summary</a><a href="{{.Prefix}}/bid">Enter bid</a><a href="{{.Prefix}}/orders">Orders</a><a href="{{.Prefix}}/teams">Teams</a></nav>
<h1>Market summary</h1>
<p>Auctions settled so far: {{.Auctions}}. Open orders: {{.OpenOrders}}.</p>
<table>
<tr><th class="name">Cluster</th><th>Bids</th><th>Offers</th>
<th>CPU price</th><th>RAM price</th><th>Disk price</th>
<th>CPU util</th><th>RAM util</th><th>Disk util</th><th>CPU price history</th></tr>
{{range .Rows}}
<tr class="{{.Class}}"><td class="name">{{.Cluster}}</td><td>{{.Bids}}</td><td>{{.Offers}}</td>
<td>{{printf "%.3f" .Price.CPU}}</td><td>{{printf "%.3f" .Price.RAM}}</td><td>{{printf "%.3f" .Price.Disk}}</td>
<td>{{printf "%.0f%%" (pct .Utilization.CPU)}}</td><td>{{printf "%.0f%%" (pct .Utilization.RAM)}}</td><td>{{printf "%.0f%%" (pct .Utilization.Disk)}}</td>
<td class="spark">{{.Spark}}</td></tr>
{{end}}
</table>
<form method="POST" action="{{.Prefix}}/auction/run"><button type="submit">Run auction now</button></form>
</body></html>`

const bidStep1Tmpl = `<!DOCTYPE html>
<html><head><title>Enter bid — step 1</title>` + baseStyle + `</head>
<body>
<nav><a href="{{.Prefix}}/">Market summary</a><a href="{{.Prefix}}/bid">Enter bid</a><a href="{{.Prefix}}/orders">Orders</a><a href="{{.Prefix}}/teams">Teams</a></nav>
<h1>Enter bid — step 1: requirements</h1>
{{if .Error}}<p style="color:red">{{.Error}}</p>{{end}}
<form method="POST" action="{{.Prefix}}/bid/preview">
<p>Team: <input name="team" value="{{.Team}}"></p>
<p>Product:
<select name="product">
{{range .Products}}<option value="{{.}}">{{.}}</option>{{end}}
</select></p>
<p>Quantity: <input name="qty" value="1"></p>
<p>Acceptable clusters (XOR, comma separated): <input name="clusters" value="{{.Clusters}}"></p>
<button type="submit">Continue</button>
</form>
</body></html>`

const bidStep2Tmpl = `<!DOCTYPE html>
<html><head><title>Enter bid — step 2</title>` + baseStyle + `</head>
<body>
<nav><a href="{{.Prefix}}/">Market summary</a><a href="{{.Prefix}}/bid">Enter bid</a><a href="{{.Prefix}}/orders">Orders</a><a href="{{.Prefix}}/teams">Teams</a></nav>
<h1>Enter bid — step 2: covering resources &amp; limit price</h1>
<p>Team <b>{{.Team}}</b> requests <b>{{.Qty}} {{.Unit}}</b> of <b>{{.Product}}</b>.</p>
<p>Covering resources per acceptable cluster:</p>
<table>
<tr><th class="name">Cluster</th><th>CPU</th><th>RAM</th><th>Disk</th><th>Cost at current prices</th></tr>
{{range .Options}}
<tr><td class="name">{{.Cluster}}</td>
<td>{{printf "%.2f" .Cover.CPU}}</td><td>{{printf "%.2f" .Cover.RAM}}</td><td>{{printf "%.2f" .Cover.Disk}}</td>
<td>{{printf "%.2f" .Cost}}</td></tr>
{{end}}
</table>
<form method="POST" action="{{.Prefix}}/bid/submit">
<input type="hidden" name="team" value="{{.Team}}">
<input type="hidden" name="product" value="{{.Product}}">
<input type="hidden" name="qty" value="{{.Qty}}">
<input type="hidden" name="clusters" value="{{.ClustersCSV}}">
<p>Maximum bid price: <input name="limit" value="{{printf "%.2f" .SuggestedLimit}}"></p>
<button type="submit">Submit bid</button>
</form>
</body></html>`

const bidDoneTmpl = `<!DOCTYPE html>
<html><head><title>Bid submitted</title>` + baseStyle + `</head>
<body>
<nav><a href="{{.Prefix}}/">Market summary</a><a href="{{.Prefix}}/bid">Enter bid</a><a href="{{.Prefix}}/orders">Orders</a><a href="{{.Prefix}}/teams">Teams</a></nav>
<h1>Bid submitted</h1>
<p>Order #{{.ID}} for team <b>{{.Team}}</b> entered with limit {{printf "%.2f" .Limit}}.</p>
<p><a href="{{.Prefix}}/orders">View orders</a></p>
</body></html>`

const ordersTmpl = `<!DOCTYPE html>
<html><head><title>Orders</title>` + baseStyle + `</head>
<body>
<nav><a href="{{.Prefix}}/">Market summary</a><a href="{{.Prefix}}/bid">Enter bid</a><a href="{{.Prefix}}/orders">Orders</a><a href="{{.Prefix}}/teams">Teams</a></nav>
<h1>Orders</h1>
<table>
<tr><th>ID</th><th class="name">Team</th><th class="name">User</th><th>Limit</th><th class="name">Status</th><th>Auction</th><th>Payment</th></tr>
{{range .Orders}}
<tr><td>{{.ID}}</td><td class="name">{{.Team}}</td><td class="name">{{.Bid.User}}</td>
<td>{{printf "%.2f" .Bid.Limit}}</td><td class="name">{{.Status}}</td>
<td>{{if ge .Auction 0}}{{.Auction}}{{else}}-{{end}}</td>
<td>{{printf "%.2f" .Payment}}</td></tr>
{{end}}
</table>
</body></html>`

const teamsTmpl = `<!DOCTYPE html>
<html><head><title>Teams</title>` + baseStyle + `</head>
<body>
<nav><a href="{{.Prefix}}/">Market summary</a><a href="{{.Prefix}}/bid">Enter bid</a><a href="{{.Prefix}}/orders">Orders</a><a href="{{.Prefix}}/teams">Teams</a></nav>
<h1>Team accounts</h1>
<table>
<tr><th class="name">Team</th><th>Balance</th></tr>
{{range .Teams}}
<tr><td class="name">{{.Name}}</td><td>{{printf "%.2f" .Balance}}</td></tr>
{{end}}
</table>
</body></html>`
