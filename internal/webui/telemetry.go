package webui

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"clustermarket/internal/federation"
	"clustermarket/internal/market"
	"clustermarket/internal/telemetry"
)

// This file is the ops surface of the web tier: the hand-rolled
// Prometheus exposition at /metrics, the /healthz probe, and the SSE
// live event feed at /api/events. All three exist on the single-
// exchange Server and on the federation front end; a federated
// deployment additionally gets each region's own scrape and feed at
// /region/<name>/metrics etc., because the regional mounts are full
// Servers.

// ---------------------------------------------------------------------
// Metric families.
// ---------------------------------------------------------------------

// families accumulates metric samples across collection passes (one per
// region on the federation scrape) so each family is written once, with
// one header, however many labeled members it has. Families render in
// first-add order, keeping scrapes deterministic and diffable.
type families struct {
	order []string
	fams  map[string]*family
}

type family struct {
	typ, help string
	entries   []telemetry.LabeledValue
	hists     []telemetry.LabeledHistogram
}

func newFamilies() *families { return &families{fams: make(map[string]*family)} }

func (m *families) family(name, typ, help string) *family {
	f, ok := m.fams[name]
	if !ok {
		f = &family{typ: typ, help: help}
		m.fams[name] = f
		m.order = append(m.order, name)
	}
	return f
}

// add appends one sample; labels are alternating key/value pairs.
func (m *families) add(name, typ, help string, labels []string, v float64) {
	f := m.family(name, typ, help)
	f.entries = append(f.entries, telemetry.LabeledValue{Labels: labels, Value: v})
}

// addHist appends one labeled histogram member.
func (m *families) addHist(name, help string, labels []string, snap telemetry.HistogramSnapshot) {
	f := m.family(name, "histogram", help)
	f.hists = append(f.hists, telemetry.LabeledHistogram{Labels: labels, Snap: snap})
}

func (m *families) render() string {
	var e telemetry.Exposition
	for _, name := range m.order {
		f := m.fams[name]
		if f.typ == "histogram" {
			e.HistogramSeries(name, f.help, f.hists)
			continue
		}
		e.LabeledSeries(name, f.typ, f.help, f.entries)
	}
	return e.String()
}

// labels builds a label pair list, dropping pairs whose value is empty
// (the single-exchange scrape has no region dimension).
func labels(pairs ...string) []string {
	var out []string
	for i := 0; i+1 < len(pairs); i += 2 {
		if pairs[i+1] != "" {
			out = append(out, pairs[i], pairs[i+1])
		}
	}
	return out
}

// collectExchange adds one exchange's full metric set. region is the
// label value on every family ("" on the single-exchange scrape).
func collectExchange(m *families, ex *market.Exchange, region string) {
	mt := ex.Metrics()
	m.add("market_orders_submitted_total", "counter", "Orders accepted into the book.", labels("region", region), float64(mt.Submitted))
	m.add("market_orders_rejected_total", "counter", "Order submissions rejected (validation or budget).", labels("region", region), float64(mt.Rejected))
	m.add("market_orders_cancelled_total", "counter", "Open orders withdrawn by their teams.", labels("region", region), float64(mt.Cancelled))
	for _, oc := range []struct {
		outcome string
		v       uint64
	}{{"won", mt.Won}, {"lost", mt.Lost}, {"unsettled", mt.Unsettled}} {
		m.add("market_orders_settled_total", "counter", "Orders reaching a terminal settlement outcome.",
			labels("region", region, "outcome", oc.outcome), float64(oc.v))
	}
	m.add("market_auctions_total", "counter", "Clock auctions run.", labels("region", region), float64(mt.Auctions))
	m.add("market_auctions_converged_total", "counter", "Clock auctions that converged to clearing prices.", labels("region", region), float64(mt.Converged))
	m.add("market_auctions_nonconverged_total", "counter", "Clock auctions that hit the round cap.", labels("region", region), float64(mt.NoConvergence))
	m.add("market_auction_rounds_total", "counter", "Cumulative clock rounds across all auctions.", labels("region", region), float64(mt.Rounds))
	m.add("market_open_orders", "gauge", "Orders currently awaiting settlement.", labels("region", region), float64(ex.OpenOrderCount()))
	for s, n := range ex.OpenOrdersPerStripe() {
		m.add("market_open_orders_stripe", "gauge", "Open orders per book stripe (hot-stripe visibility).",
			labels("region", region, "stripe", strconv.Itoa(s)), float64(n))
	}
	for s, c := range ex.CommitmentsPerStripe() {
		m.add("market_commitments_stripe", "gauge", "Open buy-side budget commitment per account stripe.",
			labels("region", region, "stripe", strconv.Itoa(s)), c)
	}
	// Per-pool price index: clearing prices once an auction has
	// converged, reserve prices before — the same series the paper's
	// Figures 6–7 plot over time.
	prices := ex.LastClearingPrices()
	if prices == nil {
		var err error
		if prices, err = ex.ReservePrices(); err != nil {
			prices = nil
		}
	}
	reg := ex.Registry()
	for i := 0; i < reg.Len() && i < len(prices); i++ {
		m.add("market_pool_price", "gauge", "Current price index per resource pool (clearing when available, else reserve).",
			labels("region", region, "pool", reg.Pool(i).String()), prices[i])
	}
	if j := ex.Journal(); j != nil {
		jm := j.Metrics()
		m.add("market_journal_appends_total", "counter", "Event records appended to the WAL.", labels("region", region), float64(jm.Appends))
		m.add("market_journal_bytes_total", "counter", "Payload bytes appended to the WAL.", labels("region", region), float64(jm.Bytes))
		m.add("market_journal_fsyncs_total", "counter", "WAL fsync batches.", labels("region", region), float64(jm.Fsyncs))
		m.add("market_journal_snapshots_total", "counter", "Snapshots written (WAL rotations).", labels("region", region), float64(jm.Snapshots))
		m.addHist("market_journal_fsync_latency_seconds", "WAL fsync latency.", labels("region", region), jm.FsyncLatency)
	}
	// Degraded-quiesce lifecycle: the gauge flips while the exchange is
	// rejecting new orders on journal failure; the counters and the
	// seconds total survive resume, so dashboards see past episodes.
	ds := ex.DegradedStatus()
	degraded := 0.0
	if ds.Degraded {
		degraded = 1
	}
	m.add("market_degraded", "gauge", "1 while the exchange is quiesced on journal failure, else 0.", labels("region", region), degraded)
	m.add("market_degraded_entered_total", "counter", "Degraded-quiesce episodes entered.", labels("region", region), float64(ds.Entered))
	m.add("market_degraded_exited_total", "counter", "Degraded-quiesce episodes resumed from.", labels("region", region), float64(ds.Exited))
	m.add("market_degraded_seconds_total", "counter", "Cumulative seconds spent in degraded quiesce.", labels("region", region), ds.SecondsTotal)
}

// breakerStateValue encodes a circuit-breaker state for the gauge:
// closed scrapes as 0, half-open as 1, open as 2, so alerting can
// threshold on >= 1.
func breakerStateValue(state string) float64 {
	switch state {
	case federation.BreakerHalfOpen:
		return 1
	case federation.BreakerOpen:
		return 2
	default:
		return 0
	}
}

// collectFirehose adds the firehose's own gauges — published volume,
// attached subscribers, total drop count — so the observability
// pipeline observes itself.
func collectFirehose(m *families, fire *telemetry.Firehose) {
	if fire == nil {
		return
	}
	m.add("telemetry_events_published_total", "counter", "Events published to the firehose.", nil, float64(fire.Published()))
	m.add("telemetry_subscribers", "gauge", "Firehose subscribers currently attached.", nil, float64(fire.Subscribers()))
	m.add("telemetry_events_dropped_total", "counter", "Events dropped across all subscribers (drop-oldest).", nil, float64(fire.Dropped()))
}

func writeMetrics(w http.ResponseWriter, m *families) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	fmt.Fprint(w, m.render())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	m := newFamilies()
	collectExchange(m, s.ex, "")
	collectFirehose(m, s.ex.Telemetry())
	writeMetrics(w, m)
}

func (s *FedServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	m := newFamilies()
	for _, reg := range s.fed.Regions() {
		collectExchange(m, reg.Exchange(), reg.Name())
	}
	st := s.fed.Stats()
	m.add("fed_orders_submitted_total", "counter", "Federated orders accepted by the router.", nil, float64(st.Submitted))
	m.add("fed_orders_cross_region_total", "counter", "Federated orders whose clusters spanned regions.", nil, float64(st.CrossRegion))
	m.add("fed_failovers_total", "counter", "Legs submitted after an earlier leg lost.", nil, float64(st.Failovers))
	for _, oc := range []struct {
		outcome string
		v       int
	}{{"won", st.Won}, {"lost", st.Lost}, {"unsettled", st.Unsettled}} {
		m.add("fed_orders_settled_total", "counter", "Federated orders reaching a terminal outcome.",
			labels("outcome", oc.outcome), float64(oc.v))
	}
	m.add("fed_gossip_ticks_total", "counter", "Price-board gossip passes.", nil, float64(s.fed.GossipTick()))
	for _, bs := range s.fed.BreakerStates() {
		m.add("fed_breaker_state", "gauge", "Region circuit-breaker state (0 closed, 1 half-open, 2 open).",
			labels("region", bs.Region), breakerStateValue(bs.State))
		m.add("fed_breaker_opens_total", "counter", "Times the region's circuit breaker has opened.",
			labels("region", bs.Region), float64(bs.Opens))
	}
	if j := s.fed.Journal(); j != nil {
		jm := j.Metrics()
		m.add("fed_journal_appends_total", "counter", "Routing events appended to the router WAL.", nil, float64(jm.Appends))
		m.add("fed_journal_fsyncs_total", "counter", "Router WAL fsync batches.", nil, float64(jm.Fsyncs))
		m.addHist("fed_journal_fsync_latency_seconds", "Router WAL fsync latency.", nil, jm.FsyncLatency)
	}
	collectFirehose(m, s.fed.Telemetry())
	writeMetrics(w, m)
}

// ---------------------------------------------------------------------
// /healthz.
// ---------------------------------------------------------------------

// SetHealth attaches the health record behind /healthz. Without one the
// probe reports a bare always-healthy snapshot (nil *Health is valid).
func (s *Server) SetHealth(h *telemetry.Health) { s.health = h }

// SetHealth attaches the health record behind the federation front
// end's /healthz.
func (s *FedServer) SetHealth(h *telemetry.Health) { s.health = h }

// healthView is the /healthz payload: the invariant-probe snapshot plus
// the fault-tolerance overlay — degraded-quiesce state on the exchange
// probe, per-region degradation and breaker states on the federation
// probe. Any overlay condition (degraded exchange, degraded region,
// non-closed breaker) forces Healthy false and a 503, so readiness
// gates drain traffic while the market is rejecting or rerouting it.
type healthView struct {
	telemetry.HealthSnapshot
	Degraded        *market.DegradedStatus     `json:"degraded,omitempty"`
	DegradedRegions []string                   `json:"degraded_regions,omitempty"`
	Breakers        []federation.BreakerStatus `json:"breakers,omitempty"`
}

// writeHealthz writes the probe payload: 200 when healthy, 503
// otherwise, so a load balancer or readiness gate can act on book
// corruption or degraded quiesce without parsing logs.
func writeHealthz(w http.ResponseWriter, view healthView) {
	w.Header().Set("Content-Type", "application/json")
	if !view.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(view)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	view := healthView{HealthSnapshot: s.health.Snapshot(time.Now())}
	if ds := s.ex.DegradedStatus(); ds.Degraded || ds.Entered > 0 {
		view.Degraded = &ds
		if ds.Degraded {
			view.Healthy = false
		}
	}
	writeHealthz(w, view)
}

func (s *FedServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	view := healthView{HealthSnapshot: s.health.Snapshot(time.Now())}
	for _, reg := range s.fed.Regions() {
		if reg.Exchange().Degraded() {
			view.DegradedRegions = append(view.DegradedRegions, reg.Name())
			view.Healthy = false
		}
	}
	for _, bs := range s.fed.BreakerStates() {
		if bs.State != federation.BreakerClosed {
			view.Breakers = s.fed.BreakerStates()
			view.Healthy = false
			break
		}
	}
	writeHealthz(w, view)
}

// ---------------------------------------------------------------------
// /api/events — the SSE live feed.
// ---------------------------------------------------------------------

// eventEnvelope is the SSE data payload: the firehose event plus the
// connection's running drop count, so a live ops view can show "N
// events lost" the moment it falls behind. Dropped is monotonic per
// connection.
type eventEnvelope struct {
	Seq     uint64 `json:"seq"`
	Source  string `json:"source"`
	Kind    string `json:"kind"`
	Dropped uint64 `json:"dropped"`
	Payload any    `json:"payload,omitempty"`
}

// Subscriber buffer bounds for /api/events: the default absorbs normal
// settlement bursts; the cap keeps one curl from pinning megabytes.
const (
	defaultEventBuf = 256
	maxEventBuf     = 1 << 16
)

// eventParams are the parsed /api/events query parameters.
type eventParams struct {
	kinds   map[string]bool // nil = no filter
	sources map[string]bool // nil = no filter
	max     int             // close the stream after this many events (0 = unbounded)
	buf     int
}

// parseEventParams validates the query. kinds and source are CSV
// filters (empty = everything); max bounds how many events to send
// before closing; buf sizes the subscriber buffer.
func parseEventParams(r *http.Request) (eventParams, error) {
	p := eventParams{buf: defaultEventBuf}
	q := r.URL.Query()
	if csv := splitCSV(q.Get("kinds")); len(csv) > 0 {
		p.kinds = make(map[string]bool, len(csv))
		for _, k := range csv {
			p.kinds[k] = true
		}
	}
	if csv := splitCSV(q.Get("source")); len(csv) > 0 {
		p.sources = make(map[string]bool, len(csv))
		for _, s := range csv {
			p.sources[s] = true
		}
	}
	if raw := q.Get("max"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			return p, fmt.Errorf("max must be a positive integer")
		}
		p.max = n
	}
	if raw := q.Get("buf"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			return p, fmt.Errorf("buf must be a positive integer")
		}
		if n > maxEventBuf {
			n = maxEventBuf
		}
		p.buf = n
	}
	return p, nil
}

// serveEvents streams the firehose over SSE until the client
// disconnects (or max events have been sent). The subscription's
// bounded buffer is the whole backpressure story: a stalled client
// loses old events (visible in the envelope's dropped counter) and the
// market's hot paths never block on this handler.
func serveEvents(w http.ResponseWriter, r *http.Request, fire *telemetry.Firehose) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	if fire == nil {
		http.Error(w, "telemetry not attached", http.StatusNotFound)
		return
	}
	p, err := parseEventParams(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := fire.Subscribe(p.buf)
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sent := 0
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				return
			}
			if p.sources != nil && !p.sources[ev.Source] {
				continue
			}
			if p.kinds != nil && !p.kinds[ev.Kind] {
				continue
			}
			env := eventEnvelope{Seq: ev.Seq, Source: ev.Source, Kind: ev.Kind, Dropped: sub.Dropped(), Payload: ev.Payload}
			data, err := json.Marshal(env)
			if err != nil {
				// Payloads are the market's own event types and always
				// marshal; a failure here means a future payload broke the
				// contract — skip the event rather than corrupt the stream.
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
			flusher.Flush()
			sent++
			if p.max > 0 && sent >= p.max {
				return
			}
		}
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	serveEvents(w, r, s.ex.Telemetry())
}

func (s *FedServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	serveEvents(w, r, s.fed.Telemetry())
}
