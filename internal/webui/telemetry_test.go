package webui

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"clustermarket/internal/cluster"
	"clustermarket/internal/market"
	"clustermarket/internal/telemetry"
)

// telemetryFixture mirrors newTestServer but attaches a firehose, so the
// ops endpoints have a live event stream to serve.
func telemetryFixture(t *testing.T) (*Server, *market.Exchange, *telemetry.Firehose) {
	t.Helper()
	f := cluster.NewFleet()
	for _, name := range []string{"r1", "r2"} {
		c := cluster.New(name, nil)
		c.AddMachines(10, cluster.Usage{CPU: 10, RAM: 20, Disk: 5})
		if err := f.AddCluster(c); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	if err := f.FillToUtilization(rng, "r1", cluster.Usage{CPU: 0.8, RAM: 0.8, Disk: 0.8}); err != nil {
		t.Fatal(err)
	}
	fire := telemetry.NewFirehose()
	ex, err := market.NewExchange(f, market.Config{InitialBudget: 1e6, Telemetry: fire})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.OpenAccount("web-team"); err != nil {
		t.Fatal(err)
	}
	return New(ex), ex, fire
}

// TestMethodNotAllowedRegressions pins every mutating or method-bound
// endpoint to 405 on the wrong verb, so a routing refactor cannot
// silently downgrade a write path into an accidental GET handler.
func TestMethodNotAllowedRegressions(t *testing.T) {
	s, _ := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Mutating endpoints must reject reads.
	for _, path := range []string{"/auction/run", "/bid/submit", "/bid/preview"} {
		if code, _ := get(t, ts, path); code != http.StatusMethodNotAllowed {
			t.Errorf("GET %s = %d, want 405", path, code)
		}
	}
	// Read-only ops endpoints must reject writes.
	for _, path := range []string{"/metrics", "/healthz", "/api/events"} {
		code, _ := postForm(t, ts, path, url.Values{})
		if code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, code)
		}
	}

	_, fts := fedFixture(t)
	for _, path := range []string{"/bid/submit", "/region/hot/auction/run", "/region/hot/bid/submit"} {
		if code, _ := get(t, fts, path); code != http.StatusMethodNotAllowed {
			t.Errorf("GET %s (federated) = %d, want 405", path, code)
		}
	}
	for _, path := range []string{"/metrics", "/healthz", "/api/events"} {
		code, _ := postForm(t, fts, path, url.Values{})
		if code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s (federated) = %d, want 405", path, code)
		}
	}
}

func TestMetricsExposition(t *testing.T) {
	s, ex, _ := telemetryFixture(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	if _, err := ex.SubmitProduct("web-team", "batch-compute", 2, []string{"r1", "r2"}, 500); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ex.RunAuction(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("content type = %q, want %q", ct, telemetry.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE market_orders_submitted_total counter",
		"market_orders_submitted_total 1",
		`market_orders_settled_total{outcome="won"}`,
		"market_auctions_total 1",
		"# TYPE market_open_orders gauge",
		`market_open_orders_stripe{stripe="0"}`,
		"market_pool_price{",
		"telemetry_events_published_total",
		"telemetry_subscribers 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// One header per family even with per-stripe members.
	if n := strings.Count(text, "# TYPE market_open_orders_stripe gauge"); n != 1 {
		t.Errorf("market_open_orders_stripe headers = %d, want 1", n)
	}
}

func TestFedMetricsExposition(t *testing.T) {
	fed, ts := fedFixture(t)
	if _, err := fed.SubmitProduct("search", "batch-compute", 2, []string{"hot-r1", "cold-r1"}, 500); err != nil {
		t.Fatal(err)
	}
	fed.Tick()

	code, text := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		`market_orders_submitted_total{region="hot"}`,
		`market_orders_submitted_total{region="cold"}`,
		"fed_orders_submitted_total 1",
		"fed_orders_cross_region_total 1",
		`fed_orders_settled_total{outcome="won"}`,
		"fed_gossip_ticks_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("federated exposition missing %q", want)
		}
	}
	// Two regions share each market family under one header.
	if n := strings.Count(text, "# TYPE market_orders_submitted_total counter"); n != 1 {
		t.Errorf("market_orders_submitted_total headers = %d, want 1", n)
	}
}

func TestHealthzProbe(t *testing.T) {
	s, _ := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// No health record attached: bare always-healthy snapshot.
	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("bare healthz = %d, want 200", code)
	}
	var snap telemetry.HealthSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("healthz body not JSON: %v", err)
	}
	if !snap.Healthy || snap.LastCheckAgoMS != -1 {
		t.Fatalf("bare snapshot = %+v", snap)
	}

	h := telemetry.NewHealth(time.Now().Add(-time.Minute))
	h.SetJournal("/tmp/wal", true)
	h.RecordCheck(time.Now(), nil)
	s.SetHealth(h)
	code, body = get(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthy probe = %d, want 200", code)
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Healthy || !snap.JournalLocked || snap.JournalDir != "/tmp/wal" ||
		snap.ChecksTotal != 1 || snap.UptimeSeconds < 59 {
		t.Fatalf("healthy snapshot = %+v", snap)
	}

	h.RecordCheck(time.Now(), []string{"ledger unbalanced: drift 0.02"})
	code, body = get(t, ts, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("failing probe = %d, want 503", code)
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Healthy || snap.CheckFailures != 1 || len(snap.Violations) != 1 {
		t.Fatalf("failing snapshot = %+v", snap)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    string
	event string
	env   eventEnvelope
}

// readSSE parses complete SSE frames off the stream until max frames or
// EOF/error.
func readSSE(t *testing.T, r io.Reader, max int) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.env); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		case line == "":
			out = append(out, cur)
			cur = sseEvent{}
			if len(out) >= max {
				return out
			}
		}
	}
	return out
}

func TestEventsSSEStream(t *testing.T) {
	s, ex, fire := telemetryFixture(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// The publisher waits for the handler's subscription before trading,
	// so every event lands inside the stream window.
	go func() {
		for fire.Subscribers() == 0 {
			time.Sleep(time.Millisecond)
		}
		if _, err := ex.SubmitProduct("web-team", "batch-compute", 2, []string{"r1", "r2"}, 500); err != nil {
			return
		}
		ex.RunAuction()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/api/events?max=3", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	events := readSSE(t, resp.Body, 3)
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].env.Source != market.EventSource || events[0].env.Kind != market.EvOrderSubmitted {
		t.Fatalf("first event = %s/%s", events[0].env.Source, events[0].env.Kind)
	}
	var lastSeq uint64
	for i, ev := range events {
		if ev.id == "" || ev.event == "" || ev.env.Kind != ev.event {
			t.Fatalf("frame %d malformed: %+v", i, ev)
		}
		if ev.env.Seq <= lastSeq {
			t.Fatalf("seq not increasing at frame %d: %d after %d", i, ev.env.Seq, lastSeq)
		}
		lastSeq = ev.env.Seq
		if ev.env.Payload == nil {
			t.Fatalf("frame %d has no payload", i)
		}
	}
}

func TestEventsSSEKindFilter(t *testing.T) {
	s, ex, fire := telemetryFixture(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	go func() {
		for fire.Subscribers() == 0 {
			time.Sleep(time.Millisecond)
		}
		if _, err := ex.SubmitProduct("web-team", "batch-compute", 2, []string{"r1", "r2"}, 500); err != nil {
			return
		}
		ex.RunAuction()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/api/events?kinds="+market.EvAuctionCleared+"&max=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body, 1)
	if len(events) != 1 || events[0].env.Kind != market.EvAuctionCleared {
		t.Fatalf("filtered stream = %+v", events)
	}
}

func TestEventsParamAndAttachmentErrors(t *testing.T) {
	// No firehose attached: the feed 404s rather than serving silence.
	bare, _ := newTestServer(t)
	bts := httptest.NewServer(bare)
	defer bts.Close()
	if code, body := get(t, bts, "/api/events"); code != http.StatusNotFound || !strings.Contains(body, "telemetry not attached") {
		t.Fatalf("bare /api/events = %d %q", code, body)
	}

	s, _, _ := telemetryFixture(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	for _, q := range []string{"max=0", "max=-1", "max=zebra", "buf=0", "buf=nope"} {
		if code, _ := get(t, ts, "/api/events?"+q); code != http.StatusBadRequest {
			t.Errorf("/api/events?%s = %d, want 400", q, code)
		}
	}
}

// TestSlowSubscriberDropsNotStalls is the backpressure contract: a
// stalled SSE client with a one-slot buffer must never block settlement,
// and the drop counts it eventually observes are monotonic.
func TestSlowSubscriberDropsNotStalls(t *testing.T) {
	s, ex, fire := telemetryFixture(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/api/events?buf=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	for fire.Subscribers() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Flood the market while the client reads nothing. Every round must
	// complete promptly whether or not the handler is wedged on a full
	// socket; the subscription's one-slot buffer overflows instead.
	deadline := time.Now().Add(10 * time.Second)
	rounds := 0
	for fire.Dropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no drops observed before deadline; publisher may be blocking")
		}
		if _, err := ex.SubmitProduct("web-team", "batch-compute", 1, []string{"r1", "r2"}, 500); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ex.RunAuction(); err != nil {
			t.Fatal(err)
		}
		rounds++
	}
	if got := ex.Metrics().Auctions; got != uint64(rounds) {
		t.Fatalf("settlement stalled: %d auctions after %d rounds", got, rounds)
	}

	// Now drain the stalled stream: the envelopes' dropped counters must
	// be monotonic non-decreasing. The stream never closes on its own
	// once the flood stops, so cancel the request after a grace period
	// and read whatever was buffered.
	time.AfterFunc(2*time.Second, cancel)
	events := readSSE(t, io.LimitReader(resp.Body, 1<<16), 64)
	if len(events) == 0 {
		t.Fatal("no events readable from stalled stream")
	}
	var last uint64
	for i, ev := range events {
		if ev.env.Dropped < last {
			t.Fatalf("dropped count regressed at frame %d: %d after %d", i, ev.env.Dropped, last)
		}
		last = ev.env.Dropped
	}
}

// fuzzEventsServer is a shared fixture with a firehose attached, so the
// fuzzed feed exercises the real subscribe path rather than the 404.
var fuzzEventsServer = sync.OnceValue(func() *httptest.Server {
	f := cluster.NewFleet()
	c := cluster.New("fz", nil)
	c.AddMachines(4, cluster.Usage{CPU: 8, RAM: 16, Disk: 4})
	if err := f.AddCluster(c); err != nil {
		panic(err)
	}
	ex, err := market.NewExchange(f, market.Config{InitialBudget: 1e6, Telemetry: telemetry.NewFirehose()})
	if err != nil {
		panic(err)
	}
	if err := ex.OpenAccount("fz-team"); err != nil {
		panic(err)
	}
	return httptest.NewServer(New(ex))
})

// FuzzEventsQueryParams asserts the SSE feed's error envelope: whatever
// the query string, the response is 200, 400, or 405 — never a 5xx.
func FuzzEventsQueryParams(f *testing.F) {
	f.Add("GET", "order-submitted,auction-cleared", "market", "3", "16")
	f.Add("POST", "", "", "", "")
	f.Add("GET", ",,", "fed", "-1", "0")
	f.Add("GET", "x", "y", "zebra", "99999999999999999999")
	f.Add("HEAD", "\x00", "\"", "1e3", "+5")
	f.Fuzz(func(t *testing.T, method, kinds, source, max, buf string) {
		ts := fuzzEventsServer()
		q := url.Values{}
		if kinds != "" {
			q.Set("kinds", kinds)
		}
		if source != "" {
			q.Set("source", source)
		}
		if max != "" {
			q.Set("max", max)
		}
		if buf != "" {
			q.Set("buf", buf)
		}
		// SSE streams block until events arrive; bound each probe so the
		// fuzzer sees the status line and moves on.
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, method, ts.URL+"/api/events?"+q.Encode(), nil)
		if err != nil {
			t.Skip() // fuzzer invented an invalid method string
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			return // deadline hit before headers; nothing to assert
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusBadRequest, http.StatusMethodNotAllowed:
		default:
			t.Fatalf("%s /api/events?%s = %d, want 200/400/405", method, q.Encode(), resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
	})
}
