package webui

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"clustermarket/internal/cluster"
	"clustermarket/internal/market"
)

func newTestServer(t *testing.T) (*Server, *market.Exchange) {
	t.Helper()
	f := cluster.NewFleet()
	for _, name := range []string{"r1", "r2"} {
		c := cluster.New(name, nil)
		c.AddMachines(10, cluster.Usage{CPU: 10, RAM: 20, Disk: 5})
		if err := f.AddCluster(c); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	if err := f.FillToUtilization(rng, "r1", cluster.Usage{CPU: 0.8, RAM: 0.8, Disk: 0.8}); err != nil {
		t.Fatal(err)
	}
	ex, err := market.NewExchange(f, market.Config{InitialBudget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.OpenAccount("web-team"); err != nil {
		t.Fatal(err)
	}
	return New(ex), ex
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func postForm(t *testing.T, ts *httptest.Server, path string, form url.Values) (int, string) {
	t.Helper()
	resp, err := http.PostForm(ts.URL+path, form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestSummaryPage(t *testing.T) {
	s, _ := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body := get(t, ts, "/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{"Market summary", "r1", "r2", "CPU price"} {
		if !strings.Contains(body, want) {
			t.Errorf("summary missing %q", want)
		}
	}
	// r1 is hot, so it should be highlighted.
	if !strings.Contains(body, `class="hot"`) {
		t.Error("hot cluster not highlighted")
	}
}

func TestNotFound(t *testing.T) {
	s, _ := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	if code, _ := get(t, ts, "/nope"); code != http.StatusNotFound {
		t.Errorf("status = %d", code)
	}
}

func TestBidFlow(t *testing.T) {
	s, ex := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Step 1 page lists products.
	code, body := get(t, ts, "/bid")
	if code != http.StatusOK || !strings.Contains(body, "gfs-storage") {
		t.Fatalf("step 1: %d\n%s", code, body)
	}

	// Step 2 preview shows covering resources and cost.
	form := url.Values{
		"team":     {"web-team"},
		"product":  {"gfs-storage"},
		"qty":      {"10"},
		"clusters": {"r1, r2"},
	}
	code, body = postForm(t, ts, "/bid/preview", form)
	if code != http.StatusOK {
		t.Fatalf("step 2 status = %d", code)
	}
	for _, want := range []string{"covering", "r1", "r2", "Maximum bid price"} {
		if !strings.Contains(strings.ToLower(body), strings.ToLower(want)) {
			t.Errorf("step 2 missing %q:\n%s", want, body)
		}
	}

	// Submit creates the order.
	form.Set("limit", "400")
	code, body = postForm(t, ts, "/bid/submit", form)
	if code != http.StatusOK || !strings.Contains(body, "Bid submitted") {
		t.Fatalf("submit: %d\n%s", code, body)
	}
	if len(ex.OpenOrders()) != 1 {
		t.Fatalf("open orders = %d", len(ex.OpenOrders()))
	}

	// Orders page lists it.
	code, body = get(t, ts, "/orders")
	if code != http.StatusOK || !strings.Contains(body, "web-team") {
		t.Fatalf("orders: %d", code)
	}

	// Run the auction via the admin button.
	code, _ = postForm(t, ts, "/auction/run", nil)
	if code != http.StatusOK { // after redirect to "/"
		t.Fatalf("auction run: %d", code)
	}
	if len(ex.History()) != 1 {
		t.Fatalf("auctions = %d", len(ex.History()))
	}
}

func TestBidFlowErrors(t *testing.T) {
	s, _ := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// GET on POST-only endpoints.
	if code, _ := get(t, ts, "/bid/preview"); code != http.StatusMethodNotAllowed {
		t.Errorf("preview GET = %d", code)
	}
	if code, _ := get(t, ts, "/bid/submit"); code != http.StatusMethodNotAllowed {
		t.Errorf("submit GET = %d", code)
	}
	if code, _ := get(t, ts, "/auction/run"); code != http.StatusMethodNotAllowed {
		t.Errorf("auction GET = %d", code)
	}

	// Bad quantity redirects back to step 1 with an error message.
	form := url.Values{
		"team": {"web-team"}, "product": {"gfs-storage"},
		"qty": {"-2"}, "clusters": {"r1"},
	}
	code, body := postForm(t, ts, "/bid/preview", form)
	if code != http.StatusOK || !strings.Contains(body, "quantity") {
		t.Errorf("bad qty: %d", code)
	}
	// Unknown product.
	form.Set("qty", "1")
	form.Set("product", "nope")
	if _, body := postForm(t, ts, "/bid/preview", form); !strings.Contains(body, "unknown product") {
		t.Error("unknown product not reported")
	}
	// Unknown cluster.
	form.Set("product", "gfs-storage")
	form.Set("clusters", "mars")
	if _, body := postForm(t, ts, "/bid/preview", form); !strings.Contains(strings.ToLower(body), "unknown cluster") {
		t.Error("unknown cluster not reported")
	}
	// Submitting over budget fails back to step 1.
	form.Set("clusters", "r2")
	form.Set("limit", "999999")
	if _, body := postForm(t, ts, "/bid/submit", form); !strings.Contains(body, "budget") {
		t.Error("over-budget submit not reported")
	}
	// Auction with no orders returns conflict.
	if code, _ := postForm(t, ts, "/auction/run", nil); code != http.StatusConflict {
		t.Errorf("empty auction run = %d", code)
	}
}

func TestTeamsPage(t *testing.T) {
	s, _ := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	code, body := get(t, ts, "/teams")
	if code != http.StatusOK || !strings.Contains(body, "web-team") || !strings.Contains(body, "5000.00") {
		t.Fatalf("teams: %d\n%s", code, body)
	}
}

func TestJSONEndpoints(t *testing.T) {
	s, ex := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// summary.json parses into rows.
	code, body := get(t, ts, "/api/summary.json")
	if code != http.StatusOK {
		t.Fatalf("summary.json = %d", code)
	}
	var rows []market.ClusterSummary
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatalf("summary.json decode: %v", err)
	}
	if len(rows) != 2 {
		t.Errorf("rows = %d", len(rows))
	}

	// prices.json falls back to reserve prices with no open orders.
	code, body = get(t, ts, "/api/prices.json")
	if code != http.StatusOK {
		t.Fatalf("prices.json = %d", code)
	}
	var pv pricesView
	if err := json.Unmarshal([]byte(body), &pv); err != nil {
		t.Fatal(err)
	}
	if len(pv.Prices) != 6 {
		t.Errorf("prices = %d entries", len(pv.Prices))
	}
	if pv.Note != noteReserve {
		t.Errorf("empty-book note = %q, want %q", pv.Note, noteReserve)
	}
	if pv.Prices["r1/CPU"] <= pv.Prices["r2/CPU"] {
		t.Error("hot cluster not pricier in prices.json")
	}

	// history.json needs a settled auction.
	if _, err := ex.SubmitProduct("web-team", "batch-compute", 2, []string{"r2"}, 200); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ex.RunAuction(); err != nil {
		t.Fatal(err)
	}
	code, body = get(t, ts, "/api/history.json?cluster=r2&dim=cpu")
	if code != http.StatusOK {
		t.Fatalf("history.json = %d", code)
	}
	var hist []float64
	if err := json.Unmarshal([]byte(body), &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 {
		t.Errorf("history = %v", hist)
	}
	// Error paths.
	if code, _ := get(t, ts, "/api/history.json?cluster=r2&dim=warp"); code != http.StatusBadRequest {
		t.Errorf("bad dim = %d", code)
	}
	if code, _ := get(t, ts, "/api/history.json?cluster=zz&dim=cpu"); code != http.StatusNotFound {
		t.Errorf("bad cluster = %d", code)
	}
}

// TestPricesJSONCached pins the single-flight cache on the expensive
// preliminary-prices simulation: within the TTL, pollers get the cached
// vector instead of each running a clock simulation.
func TestPricesJSONCached(t *testing.T) {
	s, ex := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, first := get(t, ts, "/api/prices.json")
	// Change the book; a cached response must still be served within TTL.
	if _, err := ex.SubmitProduct("web-team", "batch-compute", 1, []string{"r2"}, 100); err != nil {
		t.Fatal(err)
	}
	if _, second := get(t, ts, "/api/prices.json"); second != first {
		t.Error("prices.json recomputed within TTL")
	}
	// Concurrent pollers all succeed (and share the cache).
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/api/prices.json")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil); got != "-" {
		t.Errorf("empty sparkline = %q", got)
	}
	got := sparkline([]float64{0, 0.5, 1})
	if len([]rune(got)) != 3 {
		t.Errorf("sparkline runes = %q", got)
	}
	r := []rune(got)
	if r[0] >= r[2] {
		t.Errorf("sparkline not increasing: %q", got)
	}
	// Flat history renders without dividing by zero.
	if flat := sparkline([]float64{2, 2}); len([]rune(flat)) != 2 {
		t.Errorf("flat sparkline = %q", flat)
	}
}

func TestSplitCSV(t *testing.T) {
	got := splitCSV(" a, b ,, c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("splitCSV = %v", got)
	}
	if got := splitCSV(""); got != nil {
		t.Errorf("splitCSV empty = %v", got)
	}
}

func TestAuctionsJSON(t *testing.T) {
	s, ex := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Empty before any auction.
	code, body := get(t, ts, "/api/auctions.json")
	if code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("empty auctions: %d %q", code, body)
	}
	if _, err := ex.SubmitProduct("web-team", "batch-compute", 2, []string{"r2"}, 200); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ex.RunAuction(); err != nil {
		t.Fatal(err)
	}
	code, body = get(t, ts, "/api/auctions.json")
	if code != http.StatusOK {
		t.Fatalf("auctions.json = %d", code)
	}
	var recs []map[string]any
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0]["converged"] != true || recs[0]["number"].(float64) != 1 {
		t.Errorf("record = %v", recs[0])
	}
}

func TestConcurrentRequests(t *testing.T) {
	s, ex := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	if _, err := ex.SubmitProduct("web-team", "batch-compute", 1, []string{"r2"}, 100); err != nil {
		t.Fatal(err)
	}
	// Hammer mixed read endpoints concurrently; the exchange's own
	// locking must keep them consistent — there is no server mutex
	// serializing requests any more (run with -race).
	done := make(chan error, 24)
	for i := 0; i < 24; i++ {
		path := []string{"/", "/orders", "/teams", "/api/summary.json"}[i%4]
		go func(p string) {
			resp, err := http.Get(ts.URL + p)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("%s: status %d", p, resp.StatusCode)
				}
			}
			done <- err
		}(path)
	}
	for i := 0; i < 24; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

// TestParallelTrafficWithEpochLoop fires parallel read and write
// requests at the server while an epoch auction loop settles the book —
// the acceptance scenario for the concurrent Exchange (run with -race).
func TestParallelTrafficWithEpochLoop(t *testing.T) {
	s, ex := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	loopDone := make(chan struct{})
	go func() { defer close(loopDone); ex.Serve(ctx, time.Millisecond) }()

	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch w % 4 {
				case 0: // bid entry
					form := url.Values{
						"team":     {"web-team"},
						"product":  {"batch-compute"},
						"qty":      {"1"},
						"clusters": {"r2"},
						"limit":    {"30"},
					}
					resp, err := http.PostForm(ts.URL+"/bid/submit", form)
					if err != nil {
						t.Errorf("submit: %v", err)
						return
					}
					resp.Body.Close()
				case 1: // manual settlement racing the loop
					resp, err := http.PostForm(ts.URL+"/auction/run", nil)
					if err != nil {
						t.Errorf("auction: %v", err)
						return
					}
					// Conflict (empty book) is legitimate here.
					resp.Body.Close()
				default: // reads
					p := []string{"/", "/orders", "/teams", "/api/summary.json", "/api/auctions.json"}[i%5]
					resp, err := http.Get(ts.URL + p)
					if err != nil {
						t.Errorf("get %s: %v", p, err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("%s: status %d", p, resp.StatusCode)
					}
					resp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	cancel()
	<-loopDone

	if !ex.LedgerBalanced(1e-6) {
		t.Error("ledger unbalanced after parallel traffic")
	}
}

// TestPricesJSONNonConverged pins the bid-window fix: when the
// preliminary clock hits MaxRounds, the endpoint serves the in-progress
// prices marked "preliminary, not converged" instead of failing over to
// reserve prices (or a 500).
func TestPricesJSONNonConverged(t *testing.T) {
	f := cluster.NewFleet()
	c := cluster.New("r1", nil)
	c.AddMachines(10, cluster.Usage{CPU: 10, RAM: 20, Disk: 5})
	if err := f.AddCluster(c); err != nil {
		t.Fatal(err)
	}
	// Two rounds can neither clear the oversized demand nor price out a
	// near-unlimited buyer.
	ex, err := market.NewExchange(f, market.Config{InitialBudget: 1e7, MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.OpenAccount("web-team"); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.SubmitProduct("web-team", "batch-compute", 50, []string{"r1"}, 1e6); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(ex))
	defer ts.Close()

	code, body := get(t, ts, "/api/prices.json")
	if code != http.StatusOK {
		t.Fatalf("prices.json = %d, want 200", code)
	}
	var pv pricesView
	if err := json.Unmarshal([]byte(body), &pv); err != nil {
		t.Fatal(err)
	}
	if pv.Converged {
		t.Error("non-clearing clock reported converged")
	}
	if pv.Note != noteNotConverged {
		t.Errorf("note = %q, want %q", pv.Note, noteNotConverged)
	}
	if len(pv.Prices) != ex.Registry().Len() {
		t.Errorf("prices = %d entries, want %d", len(pv.Prices), ex.Registry().Len())
	}
}

// TestOrdersJSONBounded pins the bounded polling endpoint: it returns
// the most recent orders, honors ?limit=N, defaults to a bound instead
// of cloning the whole book, and rejects malformed limits.
func TestOrdersJSONBounded(t *testing.T) {
	s, ex := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	for i := 0; i < 5; i++ {
		if _, err := ex.SubmitProduct("web-team", "batch-compute", 1, []string{"r2"}, 5); err != nil {
			t.Fatal(err)
		}
	}
	code, body := get(t, ts, "/api/orders.json")
	if code != http.StatusOK {
		t.Fatalf("orders.json = %d", code)
	}
	var views []struct {
		ID     int    `json:"id"`
		Team   string `json:"team"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &views); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(views) != 5 || views[0].ID != 0 || views[4].ID != 4 {
		t.Fatalf("views = %+v", views)
	}
	if views[0].Team != "web-team" || views[0].Status != "open" {
		t.Fatalf("views[0] = %+v", views[0])
	}

	// limit trims to the most recent orders.
	code, body = get(t, ts, "/api/orders.json?limit=2")
	if code != http.StatusOK {
		t.Fatalf("limited orders.json = %d", code)
	}
	views = views[:0]
	if err := json.Unmarshal([]byte(body), &views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 || views[0].ID != 3 || views[1].ID != 4 {
		t.Fatalf("limited views = %+v", views)
	}

	for _, bad := range []string{"0", "-3", "zap"} {
		if code, _ := get(t, ts, "/api/orders.json?limit="+bad); code != http.StatusBadRequest {
			t.Errorf("limit=%s accepted with %d", bad, code)
		}
	}
	if code, _ := get(t, ts, "/orders?limit=bogus"); code != http.StatusBadRequest {
		t.Error("orders page accepted a bogus limit")
	}
	// The HTML page honors the bound too.
	code, body = get(t, ts, "/orders?limit=1")
	if code != http.StatusOK || strings.Count(body, "web-team/batch-compute") != 1 {
		t.Fatalf("orders page limit: %d\n%s", code, body)
	}

	// auctions.json keeps working with an explicit bound.
	if _, _, err := ex.RunAuction(); err != nil {
		t.Fatal(err)
	}
	code, body = get(t, ts, "/api/auctions.json?limit=1")
	if code != http.StatusOK || !strings.Contains(body, `"number":1`) {
		t.Fatalf("auctions.json limit: %d\n%s", code, body)
	}
}
