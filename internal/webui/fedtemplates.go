package webui

// fedSummaryTmpl is the global market-summary page of the federated
// front end: regions ranked with their board quotes, the router's
// cross-region order trail, and drill-down links into each regional
// trading platform.
const fedSummaryTmpl = `<!DOCTYPE html>
<html><head><title>Global Resource Market</title>` + baseStyle + `</head>
<body>
<h1>Global resource market</h1>
<p>{{len .Regions}} regions federated.
Orders routed: {{.Stats.Submitted}} ({{.Stats.CrossRegion}} cross-region, {{.Stats.Failovers}} failovers);
won {{.Stats.Won}}, lost {{.Stats.Lost}}, unsettled {{.Stats.Unsettled}}.</p>

<h2>Regions</h2>
<table>
<tr><th class="name">Region</th><th>Clusters</th><th>Open orders</th>
<th>Auctions</th><th>Settled</th><th>Mean CPU price</th><th>Mean CPU util</th></tr>
{{range .Regions}}
<tr class="{{.Class}}"><td class="name"><a href="/region/{{.Region}}/">{{.Region}}</a></td>
<td>{{len .Clusters}}</td><td>{{.OpenOrders}}</td>
<td>{{.Auctions}}</td><td>{{.Settled}}</td>
<td>{{printf "%.3f" .MeanCPUPrice}}</td><td>{{printf "%.0f%%" (pct .MeanCPU)}}</td></tr>
{{end}}
</table>

<h2>Price board (gossip)</h2>
<table>
<tr><th class="name">Region</th><th class="name">Source</th><th>Tick</th></tr>
{{range .Board}}
<tr><td class="name">{{.Region}}</td>
<td class="name">{{if .Clearing}}clearing{{else}}reserve{{end}}</td>
<td>{{.Tick}}</td></tr>
{{end}}
</table>

<h2>Enter a global bid</h2>
{{if .Error}}<p style="color:red">{{.Error}}</p>{{end}}
<form method="POST" action="/bid/submit">
<p>Team: <input name="team"></p>
<p>Product:
<select name="product">
{{range .Products}}<option value="{{.}}">{{.}}</option>{{end}}
</select></p>
<p>Quantity: <input name="qty" value="1"></p>
<p>Acceptable clusters (XOR, comma separated — may span regions): <input name="clusters" value="{{.Clusters}}" size="60"></p>
<p>Maximum bid price: <input name="limit" value="100"></p>
<button type="submit">Submit bid</button>
</form>

<h2>Routed orders</h2>
<table>
<tr><th>ID</th><th class="name">Team</th><th class="name">Product</th><th>Qty</th>
<th>Limit</th><th class="name">Status</th><th class="name">Route</th>
<th class="name">Won in</th><th>Payment</th></tr>
{{range .Orders}}
<tr><td>{{.ID}}</td><td class="name">{{.Team}}</td><td class="name">{{.Product}}</td>
<td>{{printf "%.1f" .Qty}}</td><td>{{printf "%.2f" .Limit}}</td>
<td class="name">{{.Status}}</td><td class="name">{{.Route}}</td>
<td class="name">{{.Region}}</td><td>{{printf "%.2f" .Payment}}</td></tr>
{{end}}
</table>
</body></html>`
