package webui

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"clustermarket/internal/cluster"
	"clustermarket/internal/federation"
	"clustermarket/internal/market"
)

// fedFixture builds a hot+cold two-region federation with one team and
// its global front end.
func fedFixture(t *testing.T) (*federation.Federation, *httptest.Server) {
	t.Helper()
	mk := func(name string, util float64) *federation.Region {
		rng := rand.New(rand.NewSource(5))
		fleet := cluster.NewFleet()
		for i := 1; i <= 2; i++ {
			cn := fmt.Sprintf("%s-r%d", name, i)
			c := cluster.New(cn, nil)
			c.AddMachines(10, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
			if err := fleet.AddCluster(c); err != nil {
				t.Fatal(err)
			}
			if err := fleet.FillToUtilization(rng, cn, cluster.Usage{CPU: util, RAM: util, Disk: util}); err != nil {
				t.Fatal(err)
			}
		}
		r, err := federation.NewRegion(name, fleet, market.Config{InitialBudget: 1e6})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	fed, err := federation.NewFederation(mk("hot", 0.85), mk("cold", 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if err := fed.OpenAccount("search"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewFederated(fed))
	t.Cleanup(ts.Close)
	return fed, ts
}

func TestFedGlobalSummary(t *testing.T) {
	fed, ts := fedFixture(t)
	if _, err := fed.SubmitProduct("search", "batch-compute", 2, []string{"hot-r1", "cold-r1"}, 500); err != nil {
		t.Fatal(err)
	}
	fed.Tick()

	code, body := get(t, ts, "/")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"Global resource market", "2 regions federated",
		`href="/region/hot/"`, `href="/region/cold/"`,
		"Price board", "Routed orders", "cold:won",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("global page missing %q", want)
		}
	}
	if code, _ := get(t, ts, "/no-such-page"); code != 404 {
		t.Errorf("unknown path status = %d", code)
	}
}

func TestFedRegionDrillDown(t *testing.T) {
	_, ts := fedFixture(t)
	code, body := get(t, ts, "/region/cold/")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	// The regional page must link within its own mount, not the global
	// root, so navigation stays inside the drill-down.
	for _, want := range []string{
		"Market summary", `href="/region/cold/bid"`, `action="/region/cold/auction/run"`, "cold-r1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("region page missing %q", want)
		}
	}

	// The two-step bid flow works through the mount: a bad submission
	// redirects back into the region's own bid page.
	resp, err := ts.Client().PostForm(ts.URL+"/region/cold/bid/preview", url.Values{
		"team": {"search"}, "product": {"batch-compute"}, "qty": {"-3"}, "clusters": {"cold-r1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Request.URL.Path; !strings.HasPrefix(got, "/region/cold/bid") {
		t.Errorf("error redirect landed on %q, want /region/cold/bid", got)
	}

	// A good submission books an order on the cold region only.
	resp, err = ts.Client().PostForm(ts.URL+"/region/cold/bid/submit", url.Values{
		"team": {"search"}, "product": {"batch-compute"}, "qty": {"1"},
		"clusters": {"cold-r1"}, "limit": {"50"},
	})
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body2), "Bid submitted") {
		t.Errorf("submit response: %s", body2)
	}
	code, body = get(t, ts, "/region/cold/orders")
	if code != 200 || !strings.Contains(body, "open") {
		t.Errorf("orders page: %d %q", code, body)
	}
}

// TestFedManualSettle drives the -epoch 0 flow: settlement via POST
// /region/<name>/auction/run must go through the federation so routed
// orders advance and prices gossip.
func TestFedManualSettle(t *testing.T) {
	fed, ts := fedFixture(t)
	fo, err := fed.SubmitProduct("search", "batch-compute", 2, []string{"hot-r1", "cold-r1"}, 500)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().PostForm(ts.URL+"/region/cold/auction/run", url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 { // after following the 303 back to the region page
		t.Fatalf("settle status = %d", resp.StatusCode)
	}
	got, _ := fed.Order(fo.ID)
	if got.Status.String() != "won" || got.Region != "cold" {
		t.Fatalf("order = %s in %q after manual settle", got.Status, got.Region)
	}
	if st := fed.Stats(); st.Won != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Settling an empty book is a conflict, as on the regional server.
	resp, err = ts.Client().PostForm(ts.URL+"/region/cold/auction/run", url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 409 {
		t.Errorf("empty-book settle status = %d, want 409", resp.StatusCode)
	}
	// A global bid error redirect keeps special characters intact.
	resp, err = ts.Client().PostForm(ts.URL+"/bid/submit", url.Values{
		"team": {"search"}, "product": {"a&b"}, "qty": {"1"}, "clusters": {"cold-r1"}, "limit": {"5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `a&amp;b`) {
		t.Errorf("error lost special characters: %s", body)
	}
}

func TestFedFederationJSON(t *testing.T) {
	fed, ts := fedFixture(t)
	if _, err := fed.SubmitProduct("search", "batch-compute", 1, []string{"cold-r1"}, 100); err != nil {
		t.Fatal(err)
	}
	fed.Tick()

	code, body := get(t, ts, "/api/federation.json")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var out struct {
		Regions []struct {
			Region   string `json:"region"`
			Auctions int    `json:"auctions"`
			Settled  int    `json:"settled"`
			Clearing bool   `json:"clearing"`
		} `json:"regions"`
		Stats federation.Stats `json:"stats"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(out.Regions) != 2 {
		t.Fatalf("regions = %d", len(out.Regions))
	}
	for _, r := range out.Regions {
		if r.Region == "cold" && (r.Auctions != 1 || r.Settled != 1 || !r.Clearing) {
			t.Errorf("cold region JSON = %+v", r)
		}
	}
	if out.Stats.Won != 1 {
		t.Errorf("stats = %+v", out.Stats)
	}

	// Regional JSON APIs remain reachable through the mount.
	code, body = get(t, ts, "/region/cold/api/auctions.json")
	if code != 200 || !strings.Contains(body, `"settled":1`) {
		t.Errorf("regional auctions JSON: %d %s", code, body)
	}
}
