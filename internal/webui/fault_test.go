package webui

// Ops-surface regressions for the fault subsystem: /healthz flips
// 200→503→200 around degraded quiesce and open breakers, /metrics
// exposes the degraded and breaker series, and the SSE feed delivers
// the fault-injected / degraded-entered / breaker-state-changed kinds.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clustermarket/internal/cluster"
	"clustermarket/internal/fault"
	"clustermarket/internal/federation"
	"clustermarket/internal/journal"
	"clustermarket/internal/market"
	"clustermarket/internal/telemetry"
)

// degradableFixture is telemetryFixture with the exchange journaled on
// a fault FS, so tests can quiesce and heal it at will.
func degradableFixture(t *testing.T, fire *telemetry.Firehose) (*Server, *market.Exchange, *fault.Injector) {
	t.Helper()
	f := cluster.NewFleet()
	c := cluster.New("r1", nil)
	c.AddMachines(10, cluster.Usage{CPU: 10, RAM: 20, Disk: 5})
	if err := f.AddCluster(c); err != nil {
		t.Fatal(err)
	}
	inj := fault.New()
	j, _, err := journal.Open(t.TempDir(), journal.Options{FS: fault.NewFS(inj, nil), FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	ex, err := market.NewExchange(f, market.Config{InitialBudget: 1e6, Journal: j, Telemetry: fire})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.OpenAccount("web-team"); err != nil {
		t.Fatal(err)
	}
	return New(ex), ex, inj
}

// degrade quiesces the exchange via a persistent injected disk fault.
func degrade(t *testing.T, ex *market.Exchange, inj *fault.Injector) {
	t.Helper()
	inj.Arm([]fault.Window{{Op: fault.OpDiskWrite, Kind: fault.ENOSPC, Count: 100000}})
	if _, err := ex.SubmitProduct("web-team", "batch-compute", 1, []string{"r1"}, 500); err == nil {
		t.Fatal("submit under persistent fault succeeded")
	}
	if !ex.Degraded() {
		t.Fatal("exchange did not quiesce")
	}
}

type healthzBody struct {
	Healthy         bool                        `json:"healthy"`
	Degraded        *market.DegradedStatus      `json:"degraded"`
	DegradedRegions []string                    `json:"degraded_regions"`
	Breakers        []federation.BreakerStatus  `json:"breakers"`
}

func getHealthz(t *testing.T, ts *httptest.Server) (int, healthzBody) {
	t.Helper()
	code, body := get(t, ts, "/healthz")
	var hb healthzBody
	if err := json.Unmarshal([]byte(body), &hb); err != nil {
		t.Fatalf("healthz body not JSON: %v (%q)", err, body)
	}
	return code, hb
}

func TestHealthzDegradedTransitions(t *testing.T) {
	s, ex, inj := degradableFixture(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, hb := getHealthz(t, ts)
	if code != http.StatusOK || !hb.Healthy || hb.Degraded != nil {
		t.Fatalf("healthy probe = %d %+v, want bare 200", code, hb)
	}

	degrade(t, ex, inj)
	code, hb = getHealthz(t, ts)
	if code != http.StatusServiceUnavailable || hb.Healthy {
		t.Fatalf("degraded probe = %d %+v, want 503", code, hb)
	}
	if hb.Degraded == nil || !hb.Degraded.Degraded || hb.Degraded.Cause == "" {
		t.Fatalf("degraded body = %+v, want cause", hb.Degraded)
	}

	inj.Arm(nil)
	if err := ex.TryResume(true); err != nil {
		t.Fatal(err)
	}
	code, hb = getHealthz(t, ts)
	if code != http.StatusOK || !hb.Healthy {
		t.Fatalf("healed probe = %d %+v, want 200", code, hb)
	}
	// The past episode stays visible for operators without failing the probe.
	if hb.Degraded == nil || hb.Degraded.Degraded || hb.Degraded.Exited != 1 {
		t.Fatalf("healed body = %+v, want exited episode record", hb.Degraded)
	}
}

// fedFaultFixture builds the hot+cold federation with an injector
// attached, the hot region journaled on the fault FS.
func fedFaultFixture(t *testing.T) (*federation.Federation, *fault.Injector, *httptest.Server) {
	t.Helper()
	inj := fault.New()
	mk := func(name string, util float64, journaled bool) *federation.Region {
		rng := rand.New(rand.NewSource(5))
		fleet := cluster.NewFleet()
		for i := 1; i <= 2; i++ {
			cn := fmt.Sprintf("%s-r%d", name, i)
			c := cluster.New(cn, nil)
			c.AddMachines(10, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
			if err := fleet.AddCluster(c); err != nil {
				t.Fatal(err)
			}
			if err := fleet.FillToUtilization(rng, cn, cluster.Usage{CPU: util, RAM: util, Disk: util}); err != nil {
				t.Fatal(err)
			}
		}
		cfg := market.Config{InitialBudget: 1e6}
		if journaled {
			j, _, err := journal.Open(t.TempDir(), journal.Options{FS: fault.NewFS(inj, nil), FsyncEvery: 1})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { j.Close() })
			cfg.Journal = j
		}
		r, err := federation.NewRegion(name, fleet, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	fed, err := federation.NewFederation(mk("hot", 0.85, true), mk("cold", 0.1, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := fed.OpenAccount("search"); err != nil {
		t.Fatal(err)
	}
	fed.AttachFaults(inj)
	ts := httptest.NewServer(NewFederated(fed))
	t.Cleanup(ts.Close)
	return fed, inj, ts
}

func TestFedHealthzOpenBreaker(t *testing.T) {
	fed, inj, ts := fedFaultFixture(t)

	code, hb := getHealthz(t, ts)
	if code != http.StatusOK || !hb.Healthy {
		t.Fatalf("healthy probe = %d %+v", code, hb)
	}

	// Partition hot away until its breaker opens.
	inj.Arm([]fault.Window{{Op: fault.OpRegionSettle, Scope: "hot", Kind: fault.Unreachable, Count: 3}})
	for n := 0; n < 3; n++ {
		if _, err := fed.SettleRegion("hot"); err == nil {
			t.Fatal("injected settle succeeded")
		}
	}
	inj.Arm(nil)
	code, hb = getHealthz(t, ts)
	if code != http.StatusServiceUnavailable || hb.Healthy {
		t.Fatalf("open-breaker probe = %d %+v, want 503", code, hb)
	}
	found := false
	for _, bs := range hb.Breakers {
		if bs.Region == "hot" && bs.State == federation.BreakerOpen {
			found = true
		}
	}
	if !found {
		t.Fatalf("breakers body = %+v, want hot open", hb.Breakers)
	}

	// A clean settlement round closes the breaker (the empty-book error
	// is organic; the breaker seam runs before the clock).
	fed.SettleRegion("hot")
	code, hb = getHealthz(t, ts)
	if code != http.StatusOK || !hb.Healthy {
		t.Fatalf("healed probe = %d %+v, want 200", code, hb)
	}
}

func TestFedHealthzDegradedRegion(t *testing.T) {
	fed, inj, ts := fedFaultFixture(t)

	// Quiesce hot's regional exchange through its journaled disk.
	inj.Arm([]fault.Window{{Op: fault.OpDiskWrite, Kind: fault.EIO, Count: 100000}})
	if _, err := fed.SubmitProduct("search", "batch-compute", 1, []string{"hot-r1"}, 500); err == nil {
		t.Fatal("submit under persistent disk fault succeeded")
	}
	hot := fed.Region("hot").Exchange()
	if !hot.Degraded() {
		t.Fatal("hot region did not quiesce")
	}
	code, hb := getHealthz(t, ts)
	if code != http.StatusServiceUnavailable || hb.Healthy {
		t.Fatalf("degraded-region probe = %d %+v, want 503", code, hb)
	}
	hasHot := false
	for _, r := range hb.DegradedRegions {
		if r == "hot" {
			hasHot = true
		}
	}
	if !hasHot {
		t.Fatalf("degraded_regions = %v, want hot", hb.DegradedRegions)
	}

	inj.Arm(nil)
	if err := hot.TryResume(true); err != nil {
		t.Fatal(err)
	}
	if code, hb = getHealthz(t, ts); code != http.StatusOK || !hb.Healthy {
		t.Fatalf("healed probe = %d %+v, want 200", code, hb)
	}
}

func TestMetricsDegradedSeries(t *testing.T) {
	s, ex, inj := degradableFixture(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	degrade(t, ex, inj)
	code, text := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE market_degraded gauge",
		"market_degraded 1",
		"market_degraded_entered_total 1",
		"market_degraded_exited_total 0",
		"market_degraded_seconds_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	inj.Arm(nil)
	if err := ex.TryResume(true); err != nil {
		t.Fatal(err)
	}
	_, text = get(t, ts, "/metrics")
	for _, want := range []string{"market_degraded 0", "market_degraded_exited_total 1"} {
		if !strings.Contains(text, want) {
			t.Errorf("healed exposition missing %q", want)
		}
	}
}

func TestFedMetricsBreakerSeries(t *testing.T) {
	fed, inj, ts := fedFaultFixture(t)

	inj.Arm([]fault.Window{{Op: fault.OpRegionSettle, Scope: "hot", Kind: fault.Unreachable, Count: 3}})
	for n := 0; n < 3; n++ {
		fed.SettleRegion("hot")
	}
	inj.Arm(nil)

	code, text := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE fed_breaker_state gauge",
		`fed_breaker_state{region="hot"} 2`,
		`fed_breaker_state{region="cold"} 0`,
		`fed_breaker_opens_total{region="hot"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestEventsSSEFaultKinds: the new operational event kinds ride the
// same SSE feed as the market stream.
func TestEventsSSEFaultKinds(t *testing.T) {
	fire := telemetry.NewFirehose()
	s, ex, inj := degradableFixture(t, fire)
	inj.AttachTelemetry(fire)
	ts := httptest.NewServer(s)
	defer ts.Close()

	go func() {
		for fire.Subscribers() == 0 {
			time.Sleep(time.Millisecond)
		}
		degrade(t, ex, inj)
		inj.Arm(nil)
		ex.TryResume(true)
	}()

	// The persistent burst injects one fault per append attempt (initial
	// + maxAppendRetries = 5) before the quiesce, then one entered and
	// one exited event: 7 frames total on the filtered stream.
	kinds := strings.Join([]string{fault.EvFaultInjected, market.EvDegradedEntered, market.EvDegradedExited}, ",")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/api/events?kinds="+kinds+"&max=7", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body, 7)
	if len(events) != 7 {
		t.Fatalf("got %d events, want 7", len(events))
	}
	if events[0].env.Source != fault.EventSource || events[0].env.Kind != fault.EvFaultInjected {
		t.Errorf("first event = %s/%s, want fault injection", events[0].env.Source, events[0].env.Kind)
	}
	seen := map[string]bool{}
	for _, ev := range events {
		seen[ev.env.Kind] = true
	}
	for _, want := range []string{fault.EvFaultInjected, market.EvDegradedEntered, market.EvDegradedExited} {
		if !seen[want] {
			t.Errorf("SSE feed missing kind %q", want)
		}
	}
}

// TestFedEventsSSEBreakerKind: breaker transitions reach the federated
// SSE feed.
func TestFedEventsSSEBreakerKind(t *testing.T) {
	fed, inj, fts := fedFaultFixture(t)
	// The event feed reads the federation's firehose dynamically, so
	// attaching after the server is built is fine.
	fire := telemetry.NewFirehose()
	fed.AttachTelemetry(fire)

	go func() {
		for fire.Subscribers() == 0 {
			time.Sleep(time.Millisecond)
		}
		inj.Arm([]fault.Window{{Op: fault.OpRegionSettle, Scope: "hot", Kind: fault.Unreachable, Count: 3}})
		for n := 0; n < 3; n++ {
			fed.SettleRegion("hot")
		}
		inj.Arm(nil)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fts.URL+"/api/events?kinds="+federation.EvFedBreaker+"&max=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := fts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body, 1)
	if len(events) != 1 || events[0].env.Kind != federation.EvFedBreaker {
		t.Fatalf("breaker SSE = %+v", events)
	}
	if events[0].env.Source != federation.EventSource {
		t.Errorf("breaker event source = %q", events[0].env.Source)
	}
}
