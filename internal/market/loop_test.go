package market

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNewLoopValidation(t *testing.T) {
	e := newTestExchange(t)
	if _, err := NewLoop(nil, time.Second); err == nil {
		t.Error("nil exchange accepted")
	}
	if _, err := NewLoop(e, 0); err == nil {
		t.Error("zero epoch accepted")
	}
	if _, err := NewLoop(e, -time.Second); err == nil {
		t.Error("negative epoch accepted")
	}
	if err := e.Serve(context.Background(), 0); err == nil {
		t.Error("Serve accepted zero epoch")
	}
}

func TestLoopTickIdleAndSettle(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoop(e, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Empty book: an idle tick, not an error.
	rec, err := l.Tick()
	if rec != nil || err != nil {
		t.Fatalf("idle tick = %v, %v", rec, err)
	}
	if s := l.Stats(); s.Ticks != 1 || s.Idle != 1 || s.Auctions != 0 {
		t.Errorf("stats after idle = %+v", s)
	}
	// One order: the tick settles it.
	if _, err := e.SubmitProduct("a", "batch-compute", 1, []string{"r2"}, 50); err != nil {
		t.Fatal(err)
	}
	rec, err = l.Tick()
	if err != nil || rec == nil || rec.Settled != 1 {
		t.Fatalf("settling tick = %+v, %v", rec, err)
	}
	if s := l.Stats(); s.Auctions != 1 || s.SettledOrders != 1 {
		t.Errorf("stats after settle = %+v", s)
	}
}

func TestLoopTickCountsNonConvergence(t *testing.T) {
	e := nonConvergentExchange(t)
	l, err := NewLoop(e, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	var cbErr error
	l.OnTick = func(rec *AuctionRecord, err error) { cbErr = err }
	if _, err := l.Tick(); err == nil {
		t.Fatal("non-convergence not reported")
	}
	if s := l.Stats(); s.NoConvergence != 1 || s.Auctions != 0 {
		t.Errorf("stats = %+v", s)
	}
	if cbErr == nil {
		t.Error("OnTick not called with the error")
	}
	// The batch stayed open, so the next tick retries it.
	if got := len(e.OpenOrders()); got != 2 {
		t.Errorf("open orders = %d, want 2", got)
	}
}

func TestServeStopsOnCancel(t *testing.T) {
	e := newTestExchange(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- e.Serve(ctx, time.Millisecond) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Serve = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Serve did not stop on cancel")
	}
}

// TestEpochLoopUnderConcurrentSubmits is the acceptance-criteria test:
// ≥ 8 goroutines submit orders while the epoch loop settles them (run
// with -race). Every submitted order must eventually leave the book.
func TestEpochLoopUnderConcurrentSubmits(t *testing.T) {
	e, err := NewExchange(testFleet(t), Config{InitialBudget: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 10
	const perG = 20
	for i := 0; i < goroutines; i++ {
		if err := e.OpenAccount(team(i)); err != nil {
			t.Fatal(err)
		}
	}
	loop, err := NewLoop(e, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	loopDone := make(chan struct{})
	go func() { defer close(loopDone); loop.Run(ctx) }()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tm := team(g)
			for i := 0; i < perG; i++ {
				// Heterogeneous limits so the clock finds a clearing
				// price with winners on both sides of it.
				limit := 20 + float64((i*7+g*13)%80)
				if _, err := e.SubmitProduct(tm, "batch-compute", 1, []string{"r2"}, limit); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Let the loop drain the tail of the book, then stop it.
	deadline := time.Now().Add(5 * time.Second)
	for len(e.OpenOrders()) > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-loopDone

	if got := len(e.OpenOrders()); got != 0 {
		t.Fatalf("%d orders still open after epoch loop drain", got)
	}
	if got := len(e.Orders()); got != goroutines*perG {
		t.Fatalf("orders = %d, want %d", got, goroutines*perG)
	}
	s := loop.Stats()
	if s.Auctions == 0 || s.SettledOrders == 0 {
		t.Errorf("loop stats = %+v, expected settlement activity", s)
	}
	if !e.LedgerBalanced(1e-6) {
		t.Error("ledger unbalanced after epoch loop")
	}
}

func team(i int) string {
	return "team" + string(rune('a'+i))
}
