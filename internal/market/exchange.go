package market

import (
	"errors"
	"fmt"
	"sort"

	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/reserve"
	"clustermarket/internal/resource"
	"clustermarket/internal/stats"
)

// OperatorAccount is the reserved account name under which the system
// operator sells spare capacity ("the company itself may be mapped into
// clock auction participants", Section V.A).
const OperatorAccount = "operator"

// OrderStatus tracks an order through its life cycle.
type OrderStatus int

const (
	// Open orders await the next auction.
	Open OrderStatus = iota
	// Won orders settled with an allocation.
	Won
	// Lost orders were priced out.
	Lost
	// Cancelled orders were withdrawn before settlement.
	Cancelled
)

func (s OrderStatus) String() string {
	switch s {
	case Open:
		return "open"
	case Won:
		return "won"
	case Lost:
		return "lost"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("OrderStatus(%d)", int(s))
	}
}

// Order is one submitted bid or offer.
type Order struct {
	ID     int
	Team   string
	Bid    *core.Bid
	Status OrderStatus
	// Auction is the auction number that settled the order (−1 while
	// open).
	Auction int
	// Allocation and Payment are set when the order wins.
	Allocation resource.Vector
	Payment    float64
}

// Side reports whether the order is a pure bid (+1), pure offer (−1), or
// trade (0), from the bundle directions.
func (o *Order) Side() int {
	switch o.Bid.Class() {
	case core.PureBuyer:
		return +1
	case core.PureSeller:
		return -1
	default:
		return 0
	}
}

// LedgerEntry is one double-entry billing record.
type LedgerEntry struct {
	Seq     int
	Auction int
	Team    string
	// Amount is the balance change (negative = paid out).
	Amount float64
	Memo   string
}

// AuctionRecord summarizes one settled auction for the market front end
// and the Table I statistics.
type AuctionRecord struct {
	Number    int
	Reserve   resource.Vector
	Prices    resource.Vector
	Rounds    int
	Converged bool
	// Orders counted at settlement time.
	Submitted, Settled int
	// Premiums holds γ_u for each settled order (Equation 5).
	Premiums []float64
}

// PremiumMedian returns the median of γ_u for the auction.
func (a *AuctionRecord) PremiumMedian() float64 { return stats.Median(a.Premiums) }

// PremiumMean returns the mean of γ_u for the auction.
func (a *AuctionRecord) PremiumMean() float64 { return stats.Mean(a.Premiums) }

// SettledFraction returns the fraction of submitted orders that settled.
func (a *AuctionRecord) SettledFraction() float64 {
	if a.Submitted == 0 {
		return 0
	}
	return float64(a.Settled) / float64(a.Submitted)
}

// Config parameterizes an Exchange.
type Config struct {
	// InitialBudget is granted to each newly opened account.
	InitialBudget float64
	// Weight is the reserve-pricing curve (default reserve.ExpSteep).
	Weight reserve.WeightFn
	// MarketableFraction is the share of each pool's *free* capacity the
	// operator offers for sale each auction (default 0.8).
	MarketableFraction float64
	// Auction tuning; zero values select core defaults.
	Policy    core.IncrementPolicy
	Epsilon   float64
	MaxRounds int
	Parallel  bool
}

func (c *Config) applyDefaults() {
	if c.Weight == nil {
		c.Weight = reserve.ExpSteep
	}
	if c.MarketableFraction == 0 {
		c.MarketableFraction = 0.8
	}
	if c.InitialBudget == 0 {
		c.InitialBudget = 10000
	}
}

// Exchange is the trading platform: accounts, an order book, and the
// periodic clock auction that settles it.
type Exchange struct {
	cfg     Config
	fleet   *cluster.Fleet
	reg     *resource.Registry
	catalog *Catalog
	pricer  *reserve.Pricer

	balances map[string]float64
	orders   []*Order
	ledger   []LedgerEntry
	history  []*AuctionRecord
	nextID   int
}

// NewExchange wires an exchange to a fleet. The registry is derived from
// the fleet's clusters.
func NewExchange(fleet *cluster.Fleet, cfg Config) (*Exchange, error) {
	if fleet == nil {
		return nil, errors.New("market: nil fleet")
	}
	cfg.applyDefaults()
	reg := fleet.Registry()
	if reg.Len() == 0 {
		return nil, errors.New("market: fleet has no clusters")
	}
	return &Exchange{
		cfg:      cfg,
		fleet:    fleet,
		reg:      reg,
		catalog:  StandardCatalog(),
		pricer:   reserve.NewPricer(cfg.Weight),
		balances: map[string]float64{OperatorAccount: 0},
	}, nil
}

// Registry returns the exchange's pool registry.
func (e *Exchange) Registry() *resource.Registry { return e.reg }

// Catalog returns the product catalog.
func (e *Exchange) Catalog() *Catalog { return e.catalog }

// Fleet returns the underlying fleet.
func (e *Exchange) Fleet() *cluster.Fleet { return e.fleet }

// OpenAccount creates a team account with the configured initial budget
// ("engineering teams were given budget dollars", Section V).
func (e *Exchange) OpenAccount(team string) error {
	if team == "" || team == OperatorAccount {
		return fmt.Errorf("market: invalid team name %q", team)
	}
	if _, ok := e.balances[team]; ok {
		return fmt.Errorf("market: account %q exists", team)
	}
	e.balances[team] = e.cfg.InitialBudget
	return nil
}

// Balance returns the team's budget balance.
func (e *Exchange) Balance(team string) (float64, error) {
	b, ok := e.balances[team]
	if !ok {
		return 0, fmt.Errorf("market: no account %q", team)
	}
	return b, nil
}

// Submit places an order for team with the given bid. Buy-side limits
// must be covered by the team's balance.
func (e *Exchange) Submit(team string, bid *core.Bid) (*Order, error) {
	bal, ok := e.balances[team]
	if !ok {
		return nil, fmt.Errorf("market: no account %q", team)
	}
	if bid == nil {
		return nil, errors.New("market: nil bid")
	}
	if bid.User == "" {
		bid.User = team
	}
	if err := bid.Validate(e.reg.Len()); err != nil {
		return nil, err
	}
	if bid.Limit > 0 {
		committed := e.openBuyCommitment(team)
		if bid.Limit+committed > bal {
			return nil, fmt.Errorf("market: %q limit %.2f exceeds available budget %.2f",
				team, bid.Limit, bal-committed)
		}
	}
	o := &Order{ID: e.nextID, Team: team, Bid: bid, Status: Open, Auction: -1}
	e.nextID++
	e.orders = append(e.orders, o)
	return o, nil
}

// openBuyCommitment sums the positive limits of the team's open orders.
func (e *Exchange) openBuyCommitment(team string) float64 {
	var s float64
	for _, o := range e.orders {
		if o.Team == team && o.Status == Open && o.Bid.Limit > 0 {
			s += o.Bid.Limit
		}
	}
	return s
}

// SubmitProduct is the two-step bid entry path of Figure 4: the team
// requests qty units of a catalog product, deployable in any of the named
// clusters (XOR), with a limit price.
func (e *Exchange) SubmitProduct(team, product string, qty float64, clusters []string, limit float64) (*Order, error) {
	p, err := e.catalog.Lookup(product)
	if err != nil {
		return nil, err
	}
	if qty <= 0 {
		return nil, fmt.Errorf("market: quantity must be positive, got %g", qty)
	}
	if len(clusters) == 0 {
		return nil, errors.New("market: no clusters named")
	}
	cover := p.Cover(qty)
	var bundles []resource.Vector
	for _, cl := range clusters {
		v := e.reg.Zero()
		found := false
		for _, d := range resource.StandardDimensions {
			if i, ok := e.reg.Index(resource.Pool{Cluster: cl, Dim: d}); ok {
				v[i] = cover.Get(d)
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("market: unknown cluster %q", cl)
		}
		bundles = append(bundles, v)
	}
	bid := &core.Bid{User: team + "/" + product, Bundles: bundles, Limit: limit}
	return e.Submit(team, bid)
}

// Cancel withdraws an open order.
func (e *Exchange) Cancel(id int) error {
	for _, o := range e.orders {
		if o.ID == id {
			if o.Status != Open {
				return fmt.Errorf("market: order %d is %s", id, o.Status)
			}
			o.Status = Cancelled
			return nil
		}
	}
	return fmt.Errorf("market: no order %d", id)
}

// OpenOrders returns the orders awaiting the next auction.
func (e *Exchange) OpenOrders() []*Order {
	var out []*Order
	for _, o := range e.orders {
		if o.Status == Open {
			out = append(out, o)
		}
	}
	return out
}

// Orders returns every order ever submitted.
func (e *Exchange) Orders() []*Order { return e.orders }

// Ledger returns the billing entries.
func (e *Exchange) Ledger() []LedgerEntry { return e.ledger }

// History returns the settled auction records.
func (e *Exchange) History() []*AuctionRecord { return e.history }

// ReservePrices computes the current congestion-weighted reserve price
// vector p̃ = φ(ψ)·c from live fleet utilization (Section IV).
func (e *Exchange) ReservePrices() (resource.Vector, error) {
	util := e.fleet.UtilizationVector(e.reg)
	cost := e.fleet.CostVector(e.reg)
	return e.pricer.Prices(e.reg, util, cost)
}

// operatorSupply builds the operator's sell-side bid: a fraction of each
// pool's free capacity, with a minimal ask (the reserve prices themselves
// do the price flooring, since the clock starts there).
func (e *Exchange) operatorSupply() *core.Bid {
	free := e.fleet.FreeVector(e.reg)
	supply := e.reg.Zero()
	any := false
	for i, f := range free {
		q := f * e.cfg.MarketableFraction
		if q > 0 {
			supply[i] = -q
			any = true
		}
	}
	if !any {
		return nil
	}
	return &core.Bid{User: OperatorAccount, Bundles: []resource.Vector{supply}, Limit: -0.000001}
}

// assemble maps open orders plus operator supply into clock-auction bids.
func (e *Exchange) assemble() ([]*core.Bid, []*Order, error) {
	open := e.OpenOrders()
	if len(open) == 0 {
		return nil, nil, errors.New("market: no open orders")
	}
	bids := make([]*core.Bid, 0, len(open)+1)
	for _, o := range open {
		bids = append(bids, o.Bid)
	}
	if op := e.operatorSupply(); op != nil {
		bids = append(bids, op)
	}
	return bids, open, nil
}

// PreliminaryPrices runs a non-binding simulation of the clock auction
// over the current open orders, as the platform does "at periodic
// intervals during the bid collection phase" (Section V.A), and returns
// the preliminary settlement prices.
func (e *Exchange) PreliminaryPrices() (resource.Vector, error) {
	bids, _, err := e.assemble()
	if err != nil {
		return nil, err
	}
	start, err := e.ReservePrices()
	if err != nil {
		return nil, err
	}
	a, err := core.NewAuction(e.reg, bids, core.Config{
		Start:     start,
		Policy:    e.cfg.Policy,
		Epsilon:   e.cfg.Epsilon,
		MaxRounds: e.cfg.MaxRounds,
		Parallel:  e.cfg.Parallel,
	})
	if err != nil {
		return nil, err
	}
	res, err := a.Run()
	if err != nil {
		return nil, err
	}
	return res.Prices, nil
}

// RunAuction executes one binding auction over the open orders: it runs
// the clock, settles payments into accounts and the billing ledger,
// adjusts fleet quotas, marks orders won/lost, and appends an
// AuctionRecord. The core result is returned for inspection.
func (e *Exchange) RunAuction() (*AuctionRecord, *core.Result, error) {
	bids, open, err := e.assemble()
	if err != nil {
		return nil, nil, err
	}
	start, err := e.ReservePrices()
	if err != nil {
		return nil, nil, err
	}
	a, err := core.NewAuction(e.reg, bids, core.Config{
		Start:     start,
		Policy:    e.cfg.Policy,
		Epsilon:   e.cfg.Epsilon,
		MaxRounds: e.cfg.MaxRounds,
		Parallel:  e.cfg.Parallel,
	})
	if err != nil {
		return nil, nil, err
	}
	res, runErr := a.Run()
	if runErr != nil && res == nil {
		return nil, nil, runErr
	}

	num := len(e.history) + 1
	rec := &AuctionRecord{
		Number:    num,
		Reserve:   start,
		Prices:    res.Prices,
		Rounds:    res.Rounds,
		Converged: res.Converged,
		Submitted: len(open),
	}
	// Settle orders (indices in `bids` match `open` for i < len(open)).
	for i, o := range open {
		o.Auction = num
		if !res.IsWinner(i) {
			o.Status = Lost
			continue
		}
		o.Status = Won
		o.Allocation = res.Allocations[i]
		o.Payment = res.Payments[i]
		rec.Settled++
		rec.Premiums = append(rec.Premiums, core.Premium(o.Bid.Limit, o.Payment))
		e.applySettlement(o, num)
	}
	// The operator's supply bid exists to inject capacity and anchor the
	// clock at the reserve prices; its money flow is already captured by
	// the counterparty credits above (the exchange clears every trade
	// against the operator account), so no further entry is needed here.
	e.history = append(e.history, rec)
	return rec, res, runErr
}

// applySettlement moves money and quota for one winning order.
func (e *Exchange) applySettlement(o *Order, auction int) {
	e.credit(o.Team, -o.Payment, auction, fmt.Sprintf("order %d settlement", o.ID))
	e.credit(OperatorAccount, o.Payment, auction, fmt.Sprintf("counterparty for order %d", o.ID))
	e.fleet.Quotas().ApplyAllocation(e.reg, o.Team, o.Allocation)
}

// credit adjusts a balance and appends a ledger entry.
func (e *Exchange) credit(team string, amount float64, auction int, memo string) {
	e.balances[team] += amount
	e.ledger = append(e.ledger, LedgerEntry{
		Seq:     len(e.ledger),
		Auction: auction,
		Team:    team,
		Amount:  amount,
		Memo:    memo,
	})
}

// LedgerBalanced reports whether all ledger entries sum to zero (every
// debit has a matching credit).
func (e *Exchange) LedgerBalanced(eps float64) bool {
	var s float64
	for _, le := range e.ledger {
		s += le.Amount
	}
	return s < eps && s > -eps
}

// Teams lists the non-operator accounts in sorted order.
func (e *Exchange) Teams() []string {
	out := make([]string, 0, len(e.balances))
	for t := range e.balances {
		if t != OperatorAccount {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}
