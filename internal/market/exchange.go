package market

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/journal"
	"clustermarket/internal/reserve"
	"clustermarket/internal/resource"
	"clustermarket/internal/stats"
	"clustermarket/internal/telemetry"
)

// OperatorAccount is the reserved account name under which the system
// operator sells spare capacity ("the company itself may be mapped into
// clock auction participants", Section V.A).
const OperatorAccount = "operator"

// ErrNoOpenOrders is returned by RunAuction and PreliminaryPrices when
// the order book is empty. The epoch loop treats it as an idle tick.
var ErrNoOpenOrders = errors.New("market: no open orders")

// OrderStatus tracks an order through its life cycle.
type OrderStatus int

const (
	// Open orders await the next auction.
	Open OrderStatus = iota
	// Won orders settled with an allocation.
	Won
	// Lost orders were priced out.
	Lost
	// Cancelled orders were withdrawn before settlement.
	Cancelled
	// Unsettled orders were retired after too many non-convergent
	// clocks: their batch never found clearing prices, so they settled
	// nothing. Without this cap a cycling trader pair would rejoin every
	// epoch and livelock the whole market.
	Unsettled
)

func (s OrderStatus) String() string {
	switch s {
	case Open:
		return "open"
	case Won:
		return "won"
	case Lost:
		return "lost"
	case Cancelled:
		return "cancelled"
	case Unsettled:
		return "unsettled"
	default:
		return fmt.Sprintf("OrderStatus(%d)", int(s))
	}
}

// Order is one submitted bid or offer.
type Order struct {
	ID     int
	Team   string
	Bid    *core.Bid
	Status OrderStatus
	// Auction is the auction number that settled the order (−1 while
	// open).
	Auction int
	// Attempts counts non-convergent clock runs the order survived
	// while open.
	Attempts int
	// Allocation and Payment are set when the order wins.
	Allocation resource.Vector
	Payment    float64

	// inAuction marks an order whose batch is being settled by an
	// in-flight clock. Such orders cannot be cancelled: a winner that
	// vanished mid-clock would break quota conservation (its
	// counterparties' allocations were computed assuming its
	// contribution). Guarded by the order's shard lock.
	inAuction bool
}

// Side reports whether the order is a pure bid (+1), pure offer (−1), or
// trade (0), from the bundle directions.
func (o *Order) Side() int {
	switch o.Bid.Class() {
	case core.PureBuyer:
		return +1
	case core.PureSeller:
		return -1
	default:
		return 0
	}
}

// snapshot copies the order, including a copy of the Bid struct so a
// caller scribbling on snapshot.Bid fields cannot reach the booked bid.
// The bundle vectors and Allocation remain shared: both are frozen —
// bundles at submit time, the allocation at settlement — and must be
// treated as read-only by callers.
func (o *Order) snapshot() *Order {
	c := *o
	if o.Bid != nil {
		b := *o.Bid
		c.Bid = &b
	}
	return &c
}

// LedgerEntry is one double-entry billing record.
type LedgerEntry struct {
	Seq     int
	Auction int
	Team    string
	// Amount is the balance change (negative = paid out).
	Amount float64
	Memo   string
}

// AuctionRecord summarizes one settled auction for the market front end
// and the Table I statistics.
type AuctionRecord struct {
	Number    int
	Reserve   resource.Vector
	Prices    resource.Vector
	Rounds    int
	Converged bool
	// Orders counted at settlement time.
	Submitted, Settled int
	// Premiums holds γ_u for each settled order (Equation 5).
	Premiums []float64
}

// PremiumMedian returns the median of γ_u for the auction.
func (a *AuctionRecord) PremiumMedian() float64 { return stats.Median(a.Premiums) }

// PremiumMean returns the mean of γ_u for the auction.
func (a *AuctionRecord) PremiumMean() float64 { return stats.Mean(a.Premiums) }

// SettledFraction returns the fraction of submitted orders that settled.
func (a *AuctionRecord) SettledFraction() float64 {
	if a.Submitted == 0 {
		return 0
	}
	return float64(a.Settled) / float64(a.Submitted)
}

// Config parameterizes an Exchange.
type Config struct {
	// InitialBudget is granted to each newly opened account.
	InitialBudget float64
	// Weight is the reserve-pricing curve (default reserve.ExpSteep).
	Weight reserve.WeightFn
	// MarketableFraction is the share of each pool's *free* capacity the
	// operator offers for sale each auction (default 0.8).
	MarketableFraction float64
	// MaxAuctionAttempts is how many non-convergent clocks an open order
	// survives before it is retired as Unsettled (default 3). The cap
	// keeps one cycling trader pair from rejoining every epoch and
	// livelocking the market.
	MaxAuctionAttempts int
	// Shards is the number of stripes the order and account books are
	// split into (default DefaultShards). Submits, cancels, and reads in
	// different stripes never share a lock, so order entry scales with
	// CPUs instead of serializing on one book mutex.
	Shards int
	// Auction tuning; zero values select core defaults.
	Policy    core.IncrementPolicy
	Epsilon   float64
	MaxRounds int
	Parallel  bool
	// Engine selects the clock's demand-revelation engine; the zero value
	// is core.EngineIncremental (the O(affected bidders) fast path).
	Engine core.Engine
	// Partition selects the clock's sub-market decomposition; the zero
	// value is core.PartitionAuto, which clears independent connected
	// components of the bidder–pool graph on separate clocks (concurrently
	// under Parallel) with results bit-identical to the merged run.
	// core.PartitionOff forces the single merged clock.
	Partition core.PartitionMode
	// Journal, when non-nil, makes the exchange durable: every state
	// change is appended to the write-ahead log before it is applied, and
	// a snapshot is written every SnapshotEvery auctions. Nil keeps the
	// pure in-memory behavior with zero hot-path cost.
	Journal *journal.Journal
	// SnapshotEvery is the auction interval between journal snapshots
	// (default 64; negative disables snapshots). Ignored without Journal.
	SnapshotEvery int
	// Telemetry, when non-nil, receives every state-change event the
	// journal would — whether or not a journal is attached — published
	// to the firehose under source "market". With no subscriber the
	// publish path is one atomic load and a branch; events are not even
	// materialized.
	Telemetry *telemetry.Firehose
}

func (c *Config) applyDefaults() {
	if c.Weight == nil {
		c.Weight = reserve.ExpSteep
	}
	if c.MarketableFraction == 0 {
		c.MarketableFraction = 0.8
	}
	if c.InitialBudget == 0 {
		c.InitialBudget = 10000
	}
	if c.MaxAuctionAttempts <= 0 {
		c.MaxAuctionAttempts = 3
	}
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 64
	}
}

// Exchange is the trading platform: accounts, an order book, and the
// periodic clock auction that settles it.
//
// All methods are safe for concurrent use. The book is striped so the
// order pipeline is contention-free (the paper's one-auctioneer,
// many-traders split, scaled out):
//
//   - The order book is split into Config.Shards stripes keyed by order
//     ID, the account book into stripes keyed by team. Submits, cancels,
//     status polls, and balance reads in different stripes never touch
//     the same lock, and every stripe's critical section is O(1).
//   - The billing ledger and the auction history each have their own
//     lock; settlement appends a whole auction's ledger entries in one
//     critical section, so LedgerBalanced holds at every observable
//     instant.
//   - auctionMu serializes binding auctions (one auctioneer at a time).
//     The clock itself runs without any book lock: RunAuction claims the
//     open batch stripe by stripe, iterates the clock lock-free, then
//     settles stripe by stripe. Orders submitted meanwhile simply join
//     the next epoch's batch.
//
// Settlement is atomic per account (a win's budget-commitment release
// and payment debit happen under one stripe lock, so balances can never
// be overcommitted mid-settlement) but not across the whole book: a
// reader polling during settlement may see one order Won while another
// in the same auction is still marked Open a microsecond longer. The
// post-conditions — balanced ledger, non-negative balances, conserved
// quota — hold once RunAuction returns, which the race stress tests
// assert.
//
// Read accessors (Orders, OpenOrders, Ledger, History, …) return
// snapshots rather than aliases of internal slices; the frozen,
// write-once data a snapshot carries (bid bundle vectors, allocations,
// auction records) is shared and must be treated as read-only.
type Exchange struct {
	cfg     Config
	fleet   *cluster.Fleet
	reg     *resource.Registry
	catalog *Catalog
	pricer  *reserve.Pricer

	// auctionMu serializes RunAuction: one auctioneer at a time.
	auctionMu sync.Mutex
	// settleMu excludes budget disbursement from the settlement phase
	// only (Disburse's weight scan reads the quota ledger that settlement
	// writes). RunAuction takes it after the clock completes, so a
	// disbursement waits out a settlement — not an entire clock run.
	// Lock order: auctionMu before settleMu; shard locks are leaves.
	settleMu sync.Mutex

	// submitSeq spreads order entry round-robin across the order stripes;
	// for serial traffic this reproduces the unsharded book's sequential
	// ID assignment exactly.
	submitSeq     atomic.Uint64
	orderShards   []orderShard
	accountShards []accountShard

	ledgerMu sync.RWMutex
	ledger   []LedgerEntry

	histMu  sync.RWMutex
	history []*AuctionRecord

	// journal, when non-nil, receives every state change as an event
	// before it is applied (see event.go); fire (possibly nil) receives
	// the same events for live subscribers; delta tracks how PlaceOrder
	// and EvictTask have diverged the fleet from its as-built state so
	// snapshots can reproduce it.
	journal *journal.Journal
	fire    *telemetry.Firehose
	// metrics is the always-on atomic counter block behind /metrics;
	// counting is lock-free and increments happen on the live path only
	// (never during replay), so a recovered process restarts its
	// counters — the standard Prometheus counter-reset contract.
	metrics exchangeMetrics
	delta   fleetDelta
	// degraded is the journal-failure quiesce state machine (degrade.go):
	// set when an append exhausts its inline retries, cleared when a
	// journal Probe succeeds again.
	degraded degradeState
}

// NewExchange wires an exchange to a fleet. The registry is derived from
// the fleet's clusters.
func NewExchange(fleet *cluster.Fleet, cfg Config) (*Exchange, error) {
	if fleet == nil {
		return nil, errors.New("market: nil fleet")
	}
	cfg.applyDefaults()
	reg := fleet.Registry()
	if reg.Len() == 0 {
		return nil, errors.New("market: fleet has no clusters")
	}
	e := &Exchange{
		cfg:           cfg,
		fleet:         fleet,
		reg:           reg,
		catalog:       StandardCatalog(),
		pricer:        reserve.NewPricer(cfg.Weight),
		orderShards:   make([]orderShard, cfg.Shards),
		accountShards: make([]accountShard, cfg.Shards),
	}
	for i := range e.accountShards {
		e.accountShards[i].balances = make(map[string]float64)
		e.accountShards[i].openBuy = make(map[string]float64)
	}
	op := e.accountShardFor(OperatorAccount)
	op.balances[OperatorAccount] = 0
	e.journal = cfg.Journal
	e.fire = cfg.Telemetry
	return e, nil
}

// Registry returns the exchange's pool registry.
func (e *Exchange) Registry() *resource.Registry { return e.reg }

// Catalog returns the product catalog.
func (e *Exchange) Catalog() *Catalog { return e.catalog }

// Fleet returns the underlying fleet.
func (e *Exchange) Fleet() *cluster.Fleet { return e.fleet }

// Shards returns the stripe count of the order and account books.
func (e *Exchange) Shards() int { return len(e.orderShards) }

// OpenAccount creates a team account with the configured initial budget
// ("engineering teams were given budget dollars", Section V).
func (e *Exchange) OpenAccount(team string) error {
	if team == "" || team == OperatorAccount {
		return fmt.Errorf("market: invalid team name %q", team)
	}
	as := e.accountShardFor(team)
	as.mu.Lock()
	defer as.mu.Unlock()
	if _, ok := as.balances[team]; ok {
		return fmt.Errorf("market: account %q exists", team)
	}
	// The event captures the granted balance, so replay is independent of
	// the recovering process's configured budget.
	if e.materializing() {
		if err := e.emitEvent(&Event{Kind: EvAccountOpened, Team: team, Balance: e.cfg.InitialBudget}); err != nil {
			return err
		}
	}
	as.balances[team] = e.cfg.InitialBudget
	return nil
}

// Balance returns the team's budget balance.
func (e *Exchange) Balance(team string) (float64, error) {
	as := e.accountShardFor(team)
	as.mu.RLock()
	defer as.mu.RUnlock()
	b, ok := as.balances[team]
	if !ok {
		return 0, fmt.Errorf("market: no account %q", team)
	}
	return b, nil
}

// Submit places an order for team with the given bid. Buy-side limits
// must be covered by the team's balance. The bid is cloned before entry
// — core.NewAuction holds bids by reference, so the caller's value must
// stay untouched by the exchange — and the returned Order is a snapshot;
// poll Order/Orders for settlement status.
func (e *Exchange) Submit(team string, bid *core.Bid) (*Order, error) {
	if err := e.rejectIfDegraded(); err != nil {
		return nil, e.rejected(err)
	}
	if bid == nil {
		return nil, e.rejected(errors.New("market: nil bid"))
	}
	b := *bid
	// Deep-copy the bundles: the clock reads booked bids lock-free, so
	// the caller must be free to reuse its vectors after Submit returns.
	b.Bundles = make([]resource.Vector, len(bid.Bundles))
	for i, v := range bid.Bundles {
		b.Bundles[i] = v.Clone()
	}
	b.BundleLimits = append([]float64(nil), bid.BundleLimits...)
	if b.User == "" {
		b.User = team
	}
	if err := b.Validate(e.reg.Len()); err != nil {
		return nil, e.rejected(err)
	}

	// Budget pre-check on the team's account stripe, without committing.
	// MaxLimit is the bid's worst-case payment exposure: the scalar
	// Limit, or the largest per-bundle limit for vector-π bids. Checking
	// here keeps a rejected submit from advancing the round-robin stripe
	// pointer, so serial traffic reproduces the unsharded book's ID
	// sequence exactly.
	as := e.accountShardFor(team)
	exp := b.MaxLimit()
	budgetOK := func() error {
		bal, ok := as.balances[team]
		if !ok {
			return fmt.Errorf("market: no account %q", team)
		}
		if exp > 0 {
			if committed := as.openBuy[team]; exp+committed > bal {
				return fmt.Errorf("market: %q limit %.2f exceeds available budget %.2f",
					team, exp, bal-committed)
			}
		}
		return nil
	}
	as.mu.Lock()
	err := budgetOK()
	as.mu.Unlock()
	if err != nil {
		return nil, e.rejected(err)
	}

	// Book the order into the next stripe round-robin. The ID is
	// allocated under the stripe lock from the append position, so the
	// stripe's slice stays dense and in ID order. The account stripe is
	// re-locked *nested inside* the order stripe (the global lock order —
	// account stripes are always the inner lock) so the budget re-check,
	// commitment, event log, and booking form one atomic unit: a journal
	// snapshot, which holds every stripe lock, can never observe the
	// commitment without the logged order, so replay never double-commits.
	n := len(e.orderShards)
	sIdx := int(e.submitSeq.Add(1)-1) % n
	os := &e.orderShards[sIdx]
	os.mu.Lock()
	as.mu.Lock()
	if err := budgetOK(); err != nil {
		// Only a concurrent drain of the account between the pre-check and
		// here lands in this branch; the consumed stripe slot is harmless
		// (IDs derive from stripe lengths, not the rotation counter).
		as.mu.Unlock()
		os.mu.Unlock()
		return nil, e.rejected(err)
	}
	o := &Order{ID: len(os.orders)*n + sIdx, Team: team, Bid: &b, Status: Open, Auction: -1}
	if e.materializing() {
		if err := e.emitEvent(&Event{Kind: EvOrderSubmitted, OrderID: o.ID, Team: team, Bid: &b}); err != nil {
			// Un-consume the round-robin slot so a post-heal resubmit
			// lands on the same stripe with the same ID (replay's
			// applyOrderSubmitted advances the counter once per *logged*
			// order, so this keeps live and replayed counters in step).
			e.submitSeq.Add(^uint64(0))
			as.mu.Unlock()
			os.mu.Unlock()
			return nil, err
		}
	}
	e.bookOrderLocked(os, as, o)
	as.mu.Unlock()
	snap := o.snapshot()
	os.mu.Unlock()
	e.metrics.submitted.Add(1)
	return snap, nil
}

// releaseCommitment removes an order leaving the Open state from its
// team's running buy commitment.
//
//marketlint:allocfree
func (e *Exchange) releaseCommitment(o *Order) {
	if exp := o.Bid.MaxLimit(); exp > 0 {
		as := e.accountShardFor(o.Team)
		as.mu.Lock()
		as.openBuy[o.Team] -= exp
		as.mu.Unlock()
	}
}

// settleWin atomically releases the winning order's budget commitment and
// debits its payment on the team's account stripe. Doing both under one
// lock matters: releasing first would let a racing Submit commit the
// balance the payment is about to take, driving the account negative at
// the next settlement.
func (e *Exchange) settleWin(o *Order) {
	as := e.accountShardFor(o.Team)
	as.mu.Lock()
	if exp := o.Bid.MaxLimit(); exp > 0 {
		as.openBuy[o.Team] -= exp
	}
	as.balances[o.Team] -= o.Payment
	as.mu.Unlock()
}

// creditBalance adjusts a balance (the ledger entry is appended
// separately, batched per auction).
func (e *Exchange) creditBalance(team string, amount float64) {
	as := e.accountShardFor(team)
	as.mu.Lock()
	as.balances[team] += amount
	as.mu.Unlock()
}

// appendLedger assigns sequence numbers and appends a batch of entries in
// one critical section, so the ledger never exposes a half-posted trade.
func (e *Exchange) appendLedger(entries []LedgerEntry) {
	if len(entries) == 0 {
		return
	}
	e.ledgerMu.Lock()
	for i := range entries {
		entries[i].Seq = len(e.ledger)
		e.ledger = append(e.ledger, entries[i])
	}
	e.ledgerMu.Unlock()
}

// SubmitProduct is the two-step bid entry path of Figure 4: the team
// requests qty units of a catalog product, deployable in any of the named
// clusters (XOR), with a limit price.
func (e *Exchange) SubmitProduct(team, product string, qty float64, clusters []string, limit float64) (*Order, error) {
	p, err := e.catalog.Lookup(product)
	if err != nil {
		return nil, e.rejected(err)
	}
	// qty <= 0 alone would wave NaN through (every comparison with NaN
	// is false) and let it poison the cover vector; a non-positive or
	// non-finite limit would book an order that can never win but still
	// sits in every clock.
	if math.IsNaN(qty) || math.IsInf(qty, 0) || qty <= 0 {
		return nil, e.rejected(fmt.Errorf("market: quantity must be positive, got %g", qty))
	}
	if math.IsNaN(limit) || math.IsInf(limit, 0) || limit <= 0 {
		return nil, e.rejected(fmt.Errorf("market: limit must be a positive, finite number, got %g", limit))
	}
	if len(clusters) == 0 {
		return nil, e.rejected(errors.New("market: no clusters named"))
	}
	cover := p.Cover(qty)
	var bundles []resource.Vector
	for _, cl := range clusters {
		v := e.reg.Zero()
		found := false
		for _, d := range resource.StandardDimensions {
			if i, ok := e.reg.Index(resource.Pool{Cluster: cl, Dim: d}); ok {
				v[i] = cover.Get(d)
				found = true
			}
		}
		if !found {
			return nil, e.rejected(fmt.Errorf("market: unknown cluster %q", cl))
		}
		bundles = append(bundles, v)
	}
	bid := &core.Bid{User: team + "/" + product, Bundles: bundles, Limit: limit}
	return e.Submit(team, bid)
}

// Cancel withdraws an open order. An order whose batch is currently
// being settled by an in-flight auction cannot be withdrawn — its bid
// is already in the clock, and counterparty allocations depend on it.
func (e *Exchange) Cancel(id int) error {
	o := e.liveOrder(id)
	if o == nil {
		return fmt.Errorf("market: no order %d", id)
	}
	os := e.orderShardFor(id)
	os.mu.Lock()
	if o.Status != Open {
		os.mu.Unlock()
		return fmt.Errorf("market: order %d is %s", id, o.Status)
	}
	if o.inAuction {
		os.mu.Unlock()
		return fmt.Errorf("market: order %d is in a settling auction", id)
	}
	// Log and mutate under the same stripe critical section as the check:
	// dropping the lock in between would let a claimBatch sweep the order
	// into a clock the journaled cancellation says never saw it.
	if e.materializing() {
		if err := e.emitEvent(&Event{Kind: EvOrderCancelled, OrderID: id}); err != nil {
			os.mu.Unlock()
			return err
		}
	}
	o.Status = Cancelled
	os.openCount--
	os.mu.Unlock()
	e.releaseCommitment(o)
	e.metrics.cancelled.Add(1)
	return nil
}

// Order returns a snapshot of the order with the given id. Striped IDs
// make this O(1): shard k%N, slot k/N.
func (e *Exchange) Order(id int) (*Order, error) {
	os := e.orderShardFor(id)
	if os != nil {
		j := id / len(e.orderShards)
		os.mu.RLock()
		if j < len(os.orders) {
			snap := os.orders[j].snapshot()
			os.mu.RUnlock()
			return snap, nil
		}
		os.mu.RUnlock()
	}
	return nil, fmt.Errorf("market: no order %d", id)
}

// OpenOrderCount returns the number of orders awaiting the next auction,
// summing the per-stripe counters instead of scanning the book.
func (e *Exchange) OpenOrderCount() int {
	n := 0
	for s := range e.orderShards {
		os := &e.orderShards[s]
		os.mu.RLock()
		n += os.openCount
		os.mu.RUnlock()
	}
	return n
}

// OpenOrders returns snapshots of the orders awaiting the next auction,
// in ID order.
func (e *Exchange) OpenOrders() []*Order {
	var out []*Order
	for s := range e.orderShards {
		os := &e.orderShards[s]
		os.mu.RLock()
		for _, o := range os.open {
			if o.Status == Open {
				out = append(out, o.snapshot())
			}
		}
		os.mu.RUnlock()
	}
	sortOrdersByID(out)
	return out
}

// lastClearingPrices returns the prices of the most recent converged
// auction, or nil when none exists. A failed clock's final prices are
// not clearing prices and must never be displayed as market prices.
func (e *Exchange) lastClearingPrices() resource.Vector {
	e.histMu.RLock()
	defer e.histMu.RUnlock()
	for i := len(e.history) - 1; i >= 0; i-- {
		if e.history[i].Converged {
			return e.history[i].Prices
		}
	}
	return nil
}

// LastClearingPrices returns the settlement prices of the most recent
// converged auction, or nil before the first one.
func (e *Exchange) LastClearingPrices() resource.Vector { return e.lastClearingPrices() }

// Orders returns snapshots of every order ever submitted, in ID order —
// the full-dump path used by tests and batch consumers. Interactive
// pollers should prefer OrdersTail, which bounds the copy.
func (e *Exchange) Orders() []*Order {
	var out []*Order
	for s := range e.orderShards {
		os := &e.orderShards[s]
		os.mu.RLock()
		for _, o := range os.orders {
			out = append(out, o.snapshot())
		}
		os.mu.RUnlock()
	}
	sortOrdersByID(out)
	return out
}

// OrdersTail returns snapshots of the limit highest-ID (most recent)
// orders in ID order — the bounded read path for display pollers, which
// snapshots O(limit) orders instead of the whole book. A non-positive
// limit returns nil.
func (e *Exchange) OrdersTail(limit int) []*Order {
	if limit <= 0 {
		return nil
	}
	// Stripe slots are dense (slot j holds ID j*n + s), so each stripe's
	// candidate tail IDs follow from its length alone — no order is
	// touched, let alone snapshotted, until the global top-limit IDs are
	// known.
	n := len(e.orderShards)
	var ids []int
	for s := range e.orderShards {
		os := &e.orderShards[s]
		os.mu.RLock()
		size := len(os.orders)
		os.mu.RUnlock()
		start := size - limit
		if start < 0 {
			start = 0
		}
		for j := start; j < size; j++ {
			ids = append(ids, j*n+s)
		}
	}
	sort.Ints(ids)
	if len(ids) > limit {
		ids = ids[len(ids)-limit:]
	}
	// The selected IDs form a contiguous slot tail per stripe (they are
	// the globally largest), so each stripe is snapshotted as one range
	// under a single lock acquisition.
	type span struct{ lo, hi int }
	spans := make([]span, n)
	for s := range spans {
		spans[s] = span{lo: -1, hi: -1}
	}
	for _, id := range ids {
		s, j := id%n, id/n
		if spans[s].lo < 0 || j < spans[s].lo {
			spans[s].lo = j
		}
		if j > spans[s].hi {
			spans[s].hi = j
		}
	}
	out := make([]*Order, 0, len(ids))
	for s, sp := range spans {
		if sp.lo < 0 {
			continue
		}
		os := &e.orderShards[s]
		os.mu.RLock()
		for j := sp.lo; j <= sp.hi && j < len(os.orders); j++ {
			out = append(out, os.orders[j].snapshot())
		}
		os.mu.RUnlock()
	}
	sortOrdersByID(out)
	return out
}

// Ledger returns a copy of the billing entries — the full-dump path.
// Display pollers should prefer LedgerTail.
func (e *Exchange) Ledger() []LedgerEntry {
	e.ledgerMu.RLock()
	defer e.ledgerMu.RUnlock()
	return append([]LedgerEntry(nil), e.ledger...)
}

// LedgerTail returns the most recent limit billing entries, oldest
// first. A non-positive limit returns nil.
func (e *Exchange) LedgerTail(limit int) []LedgerEntry {
	if limit <= 0 {
		return nil
	}
	e.ledgerMu.RLock()
	defer e.ledgerMu.RUnlock()
	start := len(e.ledger) - limit
	if start < 0 {
		start = 0
	}
	return append([]LedgerEntry(nil), e.ledger[start:]...)
}

// History returns the settled auction records — the full-dump path.
// Records are immutable once appended, so only the slice is copied.
// Display pollers should prefer HistoryTail.
func (e *Exchange) History() []*AuctionRecord {
	e.histMu.RLock()
	defer e.histMu.RUnlock()
	return append([]*AuctionRecord(nil), e.history...)
}

// HistoryTail returns the most recent limit auction records, oldest
// first. A non-positive limit returns nil.
func (e *Exchange) HistoryTail(limit int) []*AuctionRecord {
	if limit <= 0 {
		return nil
	}
	e.histMu.RLock()
	defer e.histMu.RUnlock()
	start := len(e.history) - limit
	if start < 0 {
		start = 0
	}
	return append([]*AuctionRecord(nil), e.history[start:]...)
}

// AuctionCount returns the number of auctions attempted so far (the
// length of History, without copying it).
func (e *Exchange) AuctionCount() int {
	e.histMu.RLock()
	defer e.histMu.RUnlock()
	return len(e.history)
}

// appendHistory publishes a settled auction record.
func (e *Exchange) appendHistory(rec *AuctionRecord) {
	e.histMu.Lock()
	e.history = append(e.history, rec)
	e.histMu.Unlock()
}

// ReservePrices computes the current congestion-weighted reserve price
// vector p̃ = φ(ψ)·c from live fleet utilization (Section IV).
func (e *Exchange) ReservePrices() (resource.Vector, error) {
	util := e.fleet.UtilizationVector(e.reg)
	cost := e.fleet.CostVector(e.reg)
	return e.pricer.Prices(e.reg, util, cost)
}

// operatorSupply builds the operator's sell-side bids: a fraction of
// each pool's free capacity, one bid per cluster, each with a minimal
// ask (the reserve prices themselves do the price flooring, since the
// clock starts there). The per-cluster split matters to the sub-market
// decomposition: a single planet-wide supply bundle would weld every
// cluster into one connected component of the bidder–pool graph, while
// per-cluster offers — each cluster's capacity is a separate divisible
// supply anyway — leave regional demand free to clear on independent
// clocks. Clusters are visited in registry first-seen order, so the bid
// sequence is deterministic.
func (e *Exchange) operatorSupply() []*core.Bid {
	free := e.fleet.FreeVector(e.reg)
	var out []*core.Bid
	for _, cluster := range e.reg.Clusters() {
		var supply resource.Vector
		for _, i := range e.reg.ClusterPools(cluster) {
			if q := free[i] * e.cfg.MarketableFraction; q > 0 {
				if supply == nil {
					supply = e.reg.Zero()
				}
				supply[i] = -q
			}
		}
		if supply != nil {
			out = append(out, &core.Bid{User: OperatorAccount, Bundles: []resource.Vector{supply}, Limit: -0.000001})
		}
	}
	return out
}

// assemble snapshots the open batch and maps it, plus operator supply,
// into clock-auction bids without claiming the batch (the non-binding
// path used by PreliminaryPrices). Bids are frozen, so reading them
// lock-free afterwards is safe.
func (e *Exchange) assemble() ([]*core.Bid, []*Order, error) {
	var open []*Order
	for s := range e.orderShards {
		os := &e.orderShards[s]
		os.mu.RLock()
		for _, o := range os.open {
			if o.Status == Open {
				open = append(open, o)
			}
		}
		os.mu.RUnlock()
	}
	if len(open) == 0 {
		return nil, nil, ErrNoOpenOrders
	}
	sortOrdersByID(open)
	bids := make([]*core.Bid, 0, len(open)+1)
	for _, o := range open {
		bids = append(bids, o.Bid)
	}
	bids = append(bids, e.operatorSupply()...)
	return bids, open, nil
}

// claimBatch assembles the open batch for a binding auction and marks
// every order in it as in-auction, so it cannot be cancelled while the
// clock runs. Each stripe is claimed under its own lock and compacted in
// the same pass (terminal orders left behind by earlier settlements are
// dropped from the claim list here, so settlement itself never scans);
// the merged batch is then sorted back into global ID order, preserving
// the unsharded book's batch semantics. The batch must later be released
// — by settlement or by releaseBatch on an error path.
func (e *Exchange) claimBatch() ([]*core.Bid, []*Order, error) {
	var open []*Order
	for s := range e.orderShards {
		os := &e.orderShards[s]
		os.mu.Lock()
		kept := os.open[:0]
		for _, o := range os.open {
			if o.Status == Open {
				o.inAuction = true
				kept = append(kept, o)
				open = append(open, o)
			}
		}
		// Drop the compacted tail's pointers so settled orders are not
		// pinned by the claim list's backing array.
		for i := len(kept); i < len(os.open); i++ {
			os.open[i] = nil
		}
		os.open = kept
		os.mu.Unlock()
	}
	if len(open) == 0 {
		return nil, nil, ErrNoOpenOrders
	}
	sortOrdersByID(open)
	bids := make([]*core.Bid, 0, len(open)+1)
	for _, o := range open {
		bids = append(bids, o.Bid)
	}
	bids = append(bids, e.operatorSupply()...)
	return bids, open, nil
}

// releaseBatch clears the in-auction marks after an auction that never
// reached settlement.
func (e *Exchange) releaseBatch(open []*Order) {
	for _, o := range open {
		os := e.orderShardFor(o.ID)
		os.mu.Lock()
		o.inAuction = false
		os.mu.Unlock()
	}
}

// PreliminaryPrices runs a non-binding simulation of the clock auction
// over the current open orders, as the platform does "at periodic
// intervals during the bid collection phase" (Section V.A), and returns
// the preliminary settlement prices.
//
// The converged flag reports whether the simulated clock cleared. A
// clock that hits MaxRounds still returns its final (non-clearing)
// prices alongside converged=false and ErrNoConvergence: the bid window
// is exactly where in-progress prices are useful feedback, so display
// paths should render them marked preliminary rather than fail.
func (e *Exchange) PreliminaryPrices() (prices resource.Vector, converged bool, err error) {
	bids, _, err := e.assemble()
	if err != nil {
		return nil, false, err
	}
	start, err := e.ReservePrices()
	if err != nil {
		return nil, false, err
	}
	a, err := core.NewAuction(e.reg, bids, core.Config{
		Start:     start,
		Policy:    e.cfg.Policy,
		Epsilon:   e.cfg.Epsilon,
		MaxRounds: e.cfg.MaxRounds,
		Parallel:  e.cfg.Parallel,
		Engine:    e.cfg.Engine,
		Partition: e.cfg.Partition,
	})
	if err != nil {
		return nil, false, err
	}
	res, err := a.Run()
	if res == nil {
		return nil, false, err
	}
	return res.Prices, res.Converged, err
}

// RunAuction executes one binding auction over the open orders: it runs
// the clock, settles payments into accounts and the billing ledger,
// adjusts fleet quotas, marks orders won/lost, and appends an
// AuctionRecord. The core result is returned for inspection.
//
// Auctions are serialized (one auctioneer), but the clock itself runs
// without holding any book lock: submits and reads proceed concurrently,
// and orders arriving mid-run join the next batch. Orders already in the
// settling batch are claimed for its duration and cannot be cancelled.
// Settlement walks the batch claiming each order's stripe briefly; see
// the Exchange doc comment for the (per-account atomic) consistency
// model readers observe mid-settlement.
//
// A clock that fails to converge (core.ErrNoConvergence) stopped at
// non-clearing prices, so nothing settles: orders stay Open for the next
// epoch, no money moves, and the appended record shows Converged=false
// with zero settled orders.
func (e *Exchange) RunAuction() (*AuctionRecord, *core.Result, error) {
	// A degraded exchange probes the journal on entry (rate-limited by
	// the resume backoff schedule) and refuses to run the clock while the
	// disk is sick: an auction whose settlement events cannot be
	// journaled would either abort mid-batch or acknowledge unpersisted
	// state, and quiescing is cheaper than both.
	if e.Degraded() {
		if err := e.TryResume(false); err != nil {
			return nil, nil, ErrDegraded
		}
	}
	e.auctionMu.Lock()
	defer e.auctionMu.Unlock()

	bids, open, err := e.claimBatch()
	if err != nil {
		return nil, nil, err
	}
	start, err := e.ReservePrices()
	if err != nil {
		e.releaseBatch(open)
		return nil, nil, err
	}
	a, err := core.NewAuction(e.reg, bids, core.Config{
		Start:     start,
		Policy:    e.cfg.Policy,
		Epsilon:   e.cfg.Epsilon,
		MaxRounds: e.cfg.MaxRounds,
		Parallel:  e.cfg.Parallel,
		Engine:    e.cfg.Engine,
		Partition: e.cfg.Partition,
	})
	if err != nil {
		e.releaseBatch(open)
		return nil, nil, err
	}
	res, runErr := a.Run()
	if runErr != nil && res == nil {
		e.releaseBatch(open)
		return nil, nil, runErr
	}

	// The clock is done; only the settlement phase excludes Disburse.
	e.settleMu.Lock()
	defer e.settleMu.Unlock()

	// auctionMu serializes history appends, so the next number is stable
	// across the whole settlement.
	num := e.AuctionCount() + 1
	rec := &AuctionRecord{
		Number:    num,
		Reserve:   start,
		Prices:    res.Prices,
		Rounds:    res.Rounds,
		Converged: res.Converged,
		Submitted: len(open),
	}
	// From here on, every state change flows through the event stream:
	// each decision is materialized as an Event, journaled (when a
	// journal is attached), then applied by the same applyEvent layer
	// recovery replays. The auction-cleared event is logged last, so a
	// crash mid-settlement leaves a journal prefix whose replayed book
	// simply shows a partially settled batch — per-order events are
	// self-contained — and the next process's clock reuses the auction
	// number the interrupted settlement never published.
	if runErr != nil {
		// Failed clock: the final prices are not clearing prices, so
		// settling them would move money at arbitrary levels. Record the
		// attempt and leave the batch open — but retire orders whose
		// batch has now failed MaxAuctionAttempts times, so a cycling
		// trader pair cannot livelock every future epoch.
		for i, o := range open {
			var ev *Event
			if o.Attempts+1 >= e.cfg.MaxAuctionAttempts {
				ev = &Event{Kind: EvOrderSettled, OrderID: o.ID, Auction: num,
					Status: Unsettled, Attempts: o.Attempts + 1}
				e.metrics.unsettled.Add(1)
			} else {
				ev = &Event{Kind: EvOrderAttempted, OrderID: o.ID, Auction: num,
					Attempts: o.Attempts + 1}
			}
			if err := e.emitEvent(ev); err != nil {
				// Orders before i had their events journaled and applied (so
				// their in-auction marks are already cleared); releasing the
				// unprocessed tail leaves the books exactly as a replay of
				// the durable prefix would — the crash-consistency contract,
				// reached without crashing. The auction record is never
				// appended, so the number is reused by the next clock.
				e.releaseBatch(open[i:])
				return nil, nil, err
			}
			if err := e.applyEvent(ev); err != nil {
				return nil, nil, err
			}
		}
		recEv := &Event{Kind: EvAuctionCleared, Record: rec}
		if err := e.emitEvent(recEv); err != nil {
			return nil, nil, err
		}
		if err := e.applyEvent(recEv); err != nil {
			return nil, nil, err
		}
		e.metrics.auctions.Add(1)
		e.metrics.noConvergence.Add(1)
		e.metrics.rounds.Add(uint64(res.Rounds))
		if err := e.maybeSnapshotLocked(num); err != nil {
			return rec, res, err
		}
		return rec, res, runErr
	}
	// Settle orders (indices in `bids` match `open` for i < len(open)).
	// Every order in the batch is still Open: the in-auction mark blocks
	// cancellation while the clock runs. Each winner's ledger pair is
	// posted atomically by the applier, so LedgerBalanced holds at every
	// observable instant.
	for i, o := range open {
		var ev *Event
		if res.IsWinner(i) {
			ev = &Event{Kind: EvOrderSettled, OrderID: o.ID, Auction: num, Status: Won,
				Allocation: res.Allocations[i], Payment: res.Payments[i]}
			rec.Settled++
			e.metrics.won.Add(1)
			// γ_u is measured against the limit that governed the *winning*
			// bundle: for vector-limit bids the scalar Limit is ignored by the
			// proxy, so using it here would corrupt the Table I statistics.
			rec.Premiums = append(rec.Premiums, core.Premium(o.Bid.LimitFor(res.ChosenBundle[i]), res.Payments[i]))
		} else {
			ev = &Event{Kind: EvOrderSettled, OrderID: o.ID, Auction: num, Status: Lost}
			e.metrics.lost.Add(1)
		}
		if err := e.emitEvent(ev); err != nil {
			// Same contract as the non-convergent branch: the settled
			// prefix open[:i] is durable and applied, the rest of the
			// batch returns to Open, and the auction record is not
			// written — replaying the journal reproduces this exact book.
			e.releaseBatch(open[i:])
			return nil, nil, err
		}
		if err := e.applyEvent(ev); err != nil {
			return nil, nil, err
		}
	}
	// The operator's supply bid exists to inject capacity and anchor the
	// clock at the reserve prices; its money flow is already captured by
	// the counterparty credits the winners' settlement events post (the
	// exchange clears every trade against the operator account), so no
	// further entry is needed here.
	recEv := &Event{Kind: EvAuctionCleared, Record: rec}
	if err := e.emitEvent(recEv); err != nil {
		return nil, nil, err
	}
	if err := e.applyEvent(recEv); err != nil {
		return nil, nil, err
	}
	e.metrics.auctions.Add(1)
	e.metrics.converged.Add(1)
	e.metrics.rounds.Add(uint64(res.Rounds))
	if err := e.maybeSnapshotLocked(num); err != nil {
		return rec, res, err
	}
	return rec, res, runErr
}

// LedgerBalanced reports whether all ledger entries sum to zero (every
// debit has a matching credit).
func (e *Exchange) LedgerBalanced(eps float64) bool {
	e.ledgerMu.RLock()
	defer e.ledgerMu.RUnlock()
	var s float64
	for _, le := range e.ledger {
		s += le.Amount
	}
	return s < eps && s > -eps
}

// BuyCommitments returns a snapshot of every team's running buy-side
// budget commitment — the exposure reserved for its open buy orders. The
// invariant kernel compares it against a scan of the open book: at any
// quiescent instant the two must agree exactly (the O(1) incremental
// counters are only a cache of the book's true exposure). Teams with zero
// commitment are omitted.
func (e *Exchange) BuyCommitments() map[string]float64 {
	out := make(map[string]float64)
	for s := range e.accountShards {
		as := &e.accountShards[s]
		as.mu.RLock()
		for team, exp := range as.openBuy {
			if exp != 0 {
				out[team] = exp
			}
		}
		as.mu.RUnlock()
	}
	return out
}

// Teams lists the non-operator accounts in sorted order.
func (e *Exchange) Teams() []string {
	var out []string
	for s := range e.accountShards {
		as := &e.accountShards[s]
		as.mu.RLock()
		//marketlint:orderfree out is sorted once the shard sweep completes
		for t := range as.balances {
			if t != OperatorAccount {
				out = append(out, t)
			}
		}
		as.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}
