package market

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/reserve"
	"clustermarket/internal/resource"
	"clustermarket/internal/stats"
)

// OperatorAccount is the reserved account name under which the system
// operator sells spare capacity ("the company itself may be mapped into
// clock auction participants", Section V.A).
const OperatorAccount = "operator"

// ErrNoOpenOrders is returned by RunAuction and PreliminaryPrices when
// the order book is empty. The epoch loop treats it as an idle tick.
var ErrNoOpenOrders = errors.New("market: no open orders")

// OrderStatus tracks an order through its life cycle.
type OrderStatus int

const (
	// Open orders await the next auction.
	Open OrderStatus = iota
	// Won orders settled with an allocation.
	Won
	// Lost orders were priced out.
	Lost
	// Cancelled orders were withdrawn before settlement.
	Cancelled
	// Unsettled orders were retired after too many non-convergent
	// clocks: their batch never found clearing prices, so they settled
	// nothing. Without this cap a cycling trader pair would rejoin every
	// epoch and livelock the whole market.
	Unsettled
)

func (s OrderStatus) String() string {
	switch s {
	case Open:
		return "open"
	case Won:
		return "won"
	case Lost:
		return "lost"
	case Cancelled:
		return "cancelled"
	case Unsettled:
		return "unsettled"
	default:
		return fmt.Sprintf("OrderStatus(%d)", int(s))
	}
}

// Order is one submitted bid or offer.
type Order struct {
	ID     int
	Team   string
	Bid    *core.Bid
	Status OrderStatus
	// Auction is the auction number that settled the order (−1 while
	// open).
	Auction int
	// Attempts counts non-convergent clock runs the order survived
	// while open.
	Attempts int
	// Allocation and Payment are set when the order wins.
	Allocation resource.Vector
	Payment    float64

	// inAuction marks an order whose batch is being settled by an
	// in-flight clock. Such orders cannot be cancelled: a winner that
	// vanished mid-clock would break quota conservation (its
	// counterparties' allocations were computed assuming its
	// contribution). Guarded by the exchange lock.
	inAuction bool
}

// Side reports whether the order is a pure bid (+1), pure offer (−1), or
// trade (0), from the bundle directions.
func (o *Order) Side() int {
	switch o.Bid.Class() {
	case core.PureBuyer:
		return +1
	case core.PureSeller:
		return -1
	default:
		return 0
	}
}

// snapshot copies the order, including a copy of the Bid struct so a
// caller scribbling on snapshot.Bid fields cannot reach the booked bid.
// The bundle vectors and Allocation remain shared: both are frozen —
// bundles at submit time, the allocation at settlement — and must be
// treated as read-only by callers.
func (o *Order) snapshot() *Order {
	c := *o
	if o.Bid != nil {
		b := *o.Bid
		c.Bid = &b
	}
	return &c
}

// LedgerEntry is one double-entry billing record.
type LedgerEntry struct {
	Seq     int
	Auction int
	Team    string
	// Amount is the balance change (negative = paid out).
	Amount float64
	Memo   string
}

// AuctionRecord summarizes one settled auction for the market front end
// and the Table I statistics.
type AuctionRecord struct {
	Number    int
	Reserve   resource.Vector
	Prices    resource.Vector
	Rounds    int
	Converged bool
	// Orders counted at settlement time.
	Submitted, Settled int
	// Premiums holds γ_u for each settled order (Equation 5).
	Premiums []float64
}

// PremiumMedian returns the median of γ_u for the auction.
func (a *AuctionRecord) PremiumMedian() float64 { return stats.Median(a.Premiums) }

// PremiumMean returns the mean of γ_u for the auction.
func (a *AuctionRecord) PremiumMean() float64 { return stats.Mean(a.Premiums) }

// SettledFraction returns the fraction of submitted orders that settled.
func (a *AuctionRecord) SettledFraction() float64 {
	if a.Submitted == 0 {
		return 0
	}
	return float64(a.Settled) / float64(a.Submitted)
}

// Config parameterizes an Exchange.
type Config struct {
	// InitialBudget is granted to each newly opened account.
	InitialBudget float64
	// Weight is the reserve-pricing curve (default reserve.ExpSteep).
	Weight reserve.WeightFn
	// MarketableFraction is the share of each pool's *free* capacity the
	// operator offers for sale each auction (default 0.8).
	MarketableFraction float64
	// MaxAuctionAttempts is how many non-convergent clocks an open order
	// survives before it is retired as Unsettled (default 3). The cap
	// keeps one cycling trader pair from rejoining every epoch and
	// livelocking the market.
	MaxAuctionAttempts int
	// Auction tuning; zero values select core defaults.
	Policy    core.IncrementPolicy
	Epsilon   float64
	MaxRounds int
	Parallel  bool
	// Engine selects the clock's demand-revelation engine; the zero value
	// is core.EngineIncremental (the O(affected bidders) fast path).
	Engine core.Engine
}

func (c *Config) applyDefaults() {
	if c.Weight == nil {
		c.Weight = reserve.ExpSteep
	}
	if c.MarketableFraction == 0 {
		c.MarketableFraction = 0.8
	}
	if c.InitialBudget == 0 {
		c.InitialBudget = 10000
	}
	if c.MaxAuctionAttempts <= 0 {
		c.MaxAuctionAttempts = 3
	}
}

// Exchange is the trading platform: accounts, an order book, and the
// periodic clock auction that settles it.
//
// All methods are safe for concurrent use. Two locks split the work the
// way the paper's platform does (one auctioneer, many traders):
//
//   - mu guards the book state (accounts, orders, ledger, history).
//     Submits, cancels, and every read path take it only briefly, so
//     traffic keeps flowing while a clock auction is in progress.
//   - auctionMu serializes binding auctions. The clock itself runs
//     without holding mu: RunAuction snapshots the open batch, iterates
//     the clock lock-free, then reacquires mu to settle. Orders submitted
//     meanwhile simply join the next epoch's batch.
//
// Read accessors (Orders, OpenOrders, Ledger, History, …) return
// snapshots rather than aliases of internal slices; the frozen,
// write-once data a snapshot carries (bid bundle vectors, allocations,
// auction records) is shared and must be treated as read-only.
type Exchange struct {
	cfg     Config
	fleet   *cluster.Fleet
	reg     *resource.Registry
	catalog *Catalog
	pricer  *reserve.Pricer

	// auctionMu serializes RunAuction: one auctioneer at a time.
	auctionMu sync.Mutex

	mu       sync.RWMutex
	balances map[string]float64
	orders   []*Order
	ledger   []LedgerEntry
	history  []*AuctionRecord
	nextID   int
	// openBuy is each team's summed positive limits over open orders —
	// maintained incrementally so Submit's budget check is O(1) instead
	// of a scan of every order ever booked.
	openBuy map[string]float64
}

// NewExchange wires an exchange to a fleet. The registry is derived from
// the fleet's clusters.
func NewExchange(fleet *cluster.Fleet, cfg Config) (*Exchange, error) {
	if fleet == nil {
		return nil, errors.New("market: nil fleet")
	}
	cfg.applyDefaults()
	reg := fleet.Registry()
	if reg.Len() == 0 {
		return nil, errors.New("market: fleet has no clusters")
	}
	return &Exchange{
		cfg:      cfg,
		fleet:    fleet,
		reg:      reg,
		catalog:  StandardCatalog(),
		pricer:   reserve.NewPricer(cfg.Weight),
		balances: map[string]float64{OperatorAccount: 0},
		openBuy:  make(map[string]float64),
	}, nil
}

// Registry returns the exchange's pool registry.
func (e *Exchange) Registry() *resource.Registry { return e.reg }

// Catalog returns the product catalog.
func (e *Exchange) Catalog() *Catalog { return e.catalog }

// Fleet returns the underlying fleet.
func (e *Exchange) Fleet() *cluster.Fleet { return e.fleet }

// OpenAccount creates a team account with the configured initial budget
// ("engineering teams were given budget dollars", Section V).
func (e *Exchange) OpenAccount(team string) error {
	if team == "" || team == OperatorAccount {
		return fmt.Errorf("market: invalid team name %q", team)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.balances[team]; ok {
		return fmt.Errorf("market: account %q exists", team)
	}
	e.balances[team] = e.cfg.InitialBudget
	return nil
}

// Balance returns the team's budget balance.
func (e *Exchange) Balance(team string) (float64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	b, ok := e.balances[team]
	if !ok {
		return 0, fmt.Errorf("market: no account %q", team)
	}
	return b, nil
}

// Submit places an order for team with the given bid. Buy-side limits
// must be covered by the team's balance. The bid is cloned before entry
// — core.NewAuction holds bids by reference, so the caller's value must
// stay untouched by the exchange — and the returned Order is a snapshot;
// poll Order/Orders for settlement status.
func (e *Exchange) Submit(team string, bid *core.Bid) (*Order, error) {
	if bid == nil {
		return nil, errors.New("market: nil bid")
	}
	b := *bid
	// Deep-copy the bundles: the clock reads booked bids lock-free, so
	// the caller must be free to reuse its vectors after Submit returns.
	b.Bundles = make([]resource.Vector, len(bid.Bundles))
	for i, v := range bid.Bundles {
		b.Bundles[i] = v.Clone()
	}
	b.BundleLimits = append([]float64(nil), bid.BundleLimits...)
	if b.User == "" {
		b.User = team
	}
	if err := b.Validate(e.reg.Len()); err != nil {
		return nil, err
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	bal, ok := e.balances[team]
	if !ok {
		return nil, fmt.Errorf("market: no account %q", team)
	}
	// MaxLimit is the bid's worst-case payment exposure: the scalar
	// Limit, or the largest per-bundle limit for vector-π bids.
	if exp := b.MaxLimit(); exp > 0 {
		committed := e.openBuy[team]
		if exp+committed > bal {
			return nil, fmt.Errorf("market: %q limit %.2f exceeds available budget %.2f",
				team, exp, bal-committed)
		}
		e.openBuy[team] = committed + exp
	}
	o := &Order{ID: e.nextID, Team: team, Bid: &b, Status: Open, Auction: -1}
	e.nextID++
	e.orders = append(e.orders, o)
	return o.snapshot(), nil
}

// releaseCommitmentLocked removes an order leaving the Open state from
// its team's running buy commitment. Callers must hold e.mu.
func (e *Exchange) releaseCommitmentLocked(o *Order) {
	if exp := o.Bid.MaxLimit(); exp > 0 {
		e.openBuy[o.Team] -= exp
	}
}

// SubmitProduct is the two-step bid entry path of Figure 4: the team
// requests qty units of a catalog product, deployable in any of the named
// clusters (XOR), with a limit price.
func (e *Exchange) SubmitProduct(team, product string, qty float64, clusters []string, limit float64) (*Order, error) {
	p, err := e.catalog.Lookup(product)
	if err != nil {
		return nil, err
	}
	if qty <= 0 {
		return nil, fmt.Errorf("market: quantity must be positive, got %g", qty)
	}
	if len(clusters) == 0 {
		return nil, errors.New("market: no clusters named")
	}
	cover := p.Cover(qty)
	var bundles []resource.Vector
	for _, cl := range clusters {
		v := e.reg.Zero()
		found := false
		for _, d := range resource.StandardDimensions {
			if i, ok := e.reg.Index(resource.Pool{Cluster: cl, Dim: d}); ok {
				v[i] = cover.Get(d)
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("market: unknown cluster %q", cl)
		}
		bundles = append(bundles, v)
	}
	bid := &core.Bid{User: team + "/" + product, Bundles: bundles, Limit: limit}
	return e.Submit(team, bid)
}

// Cancel withdraws an open order. An order whose batch is currently
// being settled by an in-flight auction cannot be withdrawn — its bid
// is already in the clock, and counterparty allocations depend on it.
func (e *Exchange) Cancel(id int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.orders {
		if o.ID == id {
			if o.Status != Open {
				return fmt.Errorf("market: order %d is %s", id, o.Status)
			}
			if o.inAuction {
				return fmt.Errorf("market: order %d is in a settling auction", id)
			}
			o.Status = Cancelled
			e.releaseCommitmentLocked(o)
			return nil
		}
	}
	return fmt.Errorf("market: no order %d", id)
}

// Order returns a snapshot of the order with the given id.
func (e *Exchange) Order(id int) (*Order, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	// IDs are assigned from the append position, so the slot at index id
	// is the order — O(1) for the status-polling hot path (the federation
	// router polls legs after every regional settlement). The scan below
	// is a fallback in case the invariant ever changes.
	if id >= 0 && id < len(e.orders) && e.orders[id].ID == id {
		return e.orders[id].snapshot(), nil
	}
	for _, o := range e.orders {
		if o.ID == id {
			return o.snapshot(), nil
		}
	}
	return nil, fmt.Errorf("market: no order %d", id)
}

// openOrdersLocked returns the live open orders (internal pointers).
// Callers must hold e.mu.
func (e *Exchange) openOrdersLocked() []*Order {
	var out []*Order
	for _, o := range e.orders {
		if o.Status == Open {
			out = append(out, o)
		}
	}
	return out
}

// OpenOrderCount returns the number of orders awaiting the next
// auction, without snapshotting them.
func (e *Exchange) OpenOrderCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := 0
	for _, o := range e.orders {
		if o.Status == Open {
			n++
		}
	}
	return n
}

// OpenOrders returns snapshots of the orders awaiting the next auction.
func (e *Exchange) OpenOrders() []*Order {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []*Order
	for _, o := range e.openOrdersLocked() {
		out = append(out, o.snapshot())
	}
	return out
}

// lastClearingPricesLocked returns the prices of the most recent
// converged auction, or nil when none exists. A failed clock's final
// prices are not clearing prices and must never be displayed as market
// prices. Callers must hold e.mu.
func (e *Exchange) lastClearingPricesLocked() resource.Vector {
	for i := len(e.history) - 1; i >= 0; i-- {
		if e.history[i].Converged {
			return e.history[i].Prices
		}
	}
	return nil
}

// LastClearingPrices returns the settlement prices of the most recent
// converged auction, or nil before the first one.
func (e *Exchange) LastClearingPrices() resource.Vector {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lastClearingPricesLocked()
}

// Orders returns snapshots of every order ever submitted.
func (e *Exchange) Orders() []*Order {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*Order, len(e.orders))
	for i, o := range e.orders {
		out[i] = o.snapshot()
	}
	return out
}

// Ledger returns a copy of the billing entries.
func (e *Exchange) Ledger() []LedgerEntry {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]LedgerEntry(nil), e.ledger...)
}

// History returns the settled auction records. Records are immutable
// once appended, so only the slice is copied.
func (e *Exchange) History() []*AuctionRecord {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]*AuctionRecord(nil), e.history...)
}

// AuctionCount returns the number of auctions attempted so far (the
// length of History, without copying it).
func (e *Exchange) AuctionCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.history)
}

// ReservePrices computes the current congestion-weighted reserve price
// vector p̃ = φ(ψ)·c from live fleet utilization (Section IV).
func (e *Exchange) ReservePrices() (resource.Vector, error) {
	util := e.fleet.UtilizationVector(e.reg)
	cost := e.fleet.CostVector(e.reg)
	return e.pricer.Prices(e.reg, util, cost)
}

// operatorSupply builds the operator's sell-side bid: a fraction of each
// pool's free capacity, with a minimal ask (the reserve prices themselves
// do the price flooring, since the clock starts there).
func (e *Exchange) operatorSupply() *core.Bid {
	free := e.fleet.FreeVector(e.reg)
	supply := e.reg.Zero()
	any := false
	for i, f := range free {
		q := f * e.cfg.MarketableFraction
		if q > 0 {
			supply[i] = -q
			any = true
		}
	}
	if !any {
		return nil
	}
	return &core.Bid{User: OperatorAccount, Bundles: []resource.Vector{supply}, Limit: -0.000001}
}

// assemble snapshots the open batch and maps it, plus operator supply,
// into clock-auction bids without claiming the batch (the non-binding
// path used by PreliminaryPrices). Bids are frozen, so reading them
// lock-free afterwards is safe.
func (e *Exchange) assemble() ([]*core.Bid, []*Order, error) {
	e.mu.RLock()
	open := e.openOrdersLocked()
	e.mu.RUnlock()
	if len(open) == 0 {
		return nil, nil, ErrNoOpenOrders
	}
	bids := make([]*core.Bid, 0, len(open)+1)
	for _, o := range open {
		bids = append(bids, o.Bid)
	}
	if op := e.operatorSupply(); op != nil {
		bids = append(bids, op)
	}
	return bids, open, nil
}

// claimBatch assembles the open batch for a binding auction and marks
// every order in it as in-auction, so it cannot be cancelled while the
// clock runs. The batch must later be released — by settlement or by
// releaseBatch on an error path.
func (e *Exchange) claimBatch() ([]*core.Bid, []*Order, error) {
	e.mu.Lock()
	open := e.openOrdersLocked()
	for _, o := range open {
		o.inAuction = true
	}
	e.mu.Unlock()
	if len(open) == 0 {
		return nil, nil, ErrNoOpenOrders
	}
	bids := make([]*core.Bid, 0, len(open)+1)
	for _, o := range open {
		bids = append(bids, o.Bid)
	}
	if op := e.operatorSupply(); op != nil {
		bids = append(bids, op)
	}
	return bids, open, nil
}

// releaseBatch clears the in-auction marks after an auction that never
// reached settlement.
func (e *Exchange) releaseBatch(open []*Order) {
	e.mu.Lock()
	for _, o := range open {
		o.inAuction = false
	}
	e.mu.Unlock()
}

// PreliminaryPrices runs a non-binding simulation of the clock auction
// over the current open orders, as the platform does "at periodic
// intervals during the bid collection phase" (Section V.A), and returns
// the preliminary settlement prices.
//
// The converged flag reports whether the simulated clock cleared. A
// clock that hits MaxRounds still returns its final (non-clearing)
// prices alongside converged=false and ErrNoConvergence: the bid window
// is exactly where in-progress prices are useful feedback, so display
// paths should render them marked preliminary rather than fail.
func (e *Exchange) PreliminaryPrices() (prices resource.Vector, converged bool, err error) {
	bids, _, err := e.assemble()
	if err != nil {
		return nil, false, err
	}
	start, err := e.ReservePrices()
	if err != nil {
		return nil, false, err
	}
	a, err := core.NewAuction(e.reg, bids, core.Config{
		Start:     start,
		Policy:    e.cfg.Policy,
		Epsilon:   e.cfg.Epsilon,
		MaxRounds: e.cfg.MaxRounds,
		Parallel:  e.cfg.Parallel,
		Engine:    e.cfg.Engine,
	})
	if err != nil {
		return nil, false, err
	}
	res, err := a.Run()
	if res == nil {
		return nil, false, err
	}
	return res.Prices, res.Converged, err
}

// RunAuction executes one binding auction over the open orders: it runs
// the clock, settles payments into accounts and the billing ledger,
// adjusts fleet quotas, marks orders won/lost, and appends an
// AuctionRecord. The core result is returned for inspection.
//
// Auctions are serialized (one auctioneer), but the clock itself runs
// without holding the book lock: submits and reads proceed concurrently,
// and orders arriving mid-run join the next batch. Orders already in the
// settling batch are claimed for its duration and cannot be cancelled.
//
// A clock that fails to converge (core.ErrNoConvergence) stopped at
// non-clearing prices, so nothing settles: orders stay Open for the next
// epoch, no money moves, and the appended record shows Converged=false
// with zero settled orders.
func (e *Exchange) RunAuction() (*AuctionRecord, *core.Result, error) {
	e.auctionMu.Lock()
	defer e.auctionMu.Unlock()

	bids, open, err := e.claimBatch()
	if err != nil {
		return nil, nil, err
	}
	start, err := e.ReservePrices()
	if err != nil {
		e.releaseBatch(open)
		return nil, nil, err
	}
	a, err := core.NewAuction(e.reg, bids, core.Config{
		Start:     start,
		Policy:    e.cfg.Policy,
		Epsilon:   e.cfg.Epsilon,
		MaxRounds: e.cfg.MaxRounds,
		Parallel:  e.cfg.Parallel,
		Engine:    e.cfg.Engine,
	})
	if err != nil {
		e.releaseBatch(open)
		return nil, nil, err
	}
	res, runErr := a.Run()
	if runErr != nil && res == nil {
		e.releaseBatch(open)
		return nil, nil, runErr
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	num := len(e.history) + 1
	rec := &AuctionRecord{
		Number:    num,
		Reserve:   start,
		Prices:    res.Prices,
		Rounds:    res.Rounds,
		Converged: res.Converged,
		Submitted: len(open),
	}
	if runErr != nil {
		// Failed clock: the final prices are not clearing prices, so
		// settling them would move money at arbitrary levels. Record the
		// attempt and leave the batch open — but retire orders whose
		// batch has now failed MaxAuctionAttempts times, so a cycling
		// trader pair cannot livelock every future epoch.
		for _, o := range open {
			o.inAuction = false
			o.Attempts++
			if o.Attempts >= e.cfg.MaxAuctionAttempts {
				o.Status = Unsettled
				o.Auction = num
				e.releaseCommitmentLocked(o)
			}
		}
		e.history = append(e.history, rec)
		return rec, res, runErr
	}
	// Settle orders (indices in `bids` match `open` for i < len(open)).
	// Every order in the batch is still Open: the in-auction mark blocks
	// cancellation while the clock runs.
	for i, o := range open {
		o.inAuction = false
		o.Auction = num
		e.releaseCommitmentLocked(o)
		if !res.IsWinner(i) {
			o.Status = Lost
			continue
		}
		o.Status = Won
		o.Allocation = res.Allocations[i]
		o.Payment = res.Payments[i]
		rec.Settled++
		// γ_u is measured against the limit that governed the *winning*
		// bundle: for vector-limit bids the scalar Limit is ignored by the
		// proxy, so using it here would corrupt the Table I statistics.
		rec.Premiums = append(rec.Premiums, core.Premium(o.Bid.LimitFor(res.ChosenBundle[i]), o.Payment))
		e.applySettlement(o, num)
	}
	// The operator's supply bid exists to inject capacity and anchor the
	// clock at the reserve prices; its money flow is already captured by
	// the counterparty credits above (the exchange clears every trade
	// against the operator account), so no further entry is needed here.
	e.history = append(e.history, rec)
	return rec, res, runErr
}

// applySettlement moves money and quota for one winning order. Callers
// must hold e.mu.
func (e *Exchange) applySettlement(o *Order, auction int) {
	e.credit(o.Team, -o.Payment, auction, fmt.Sprintf("order %d settlement", o.ID))
	e.credit(OperatorAccount, o.Payment, auction, fmt.Sprintf("counterparty for order %d", o.ID))
	e.fleet.Quotas().ApplyAllocation(e.reg, o.Team, o.Allocation)
}

// credit adjusts a balance and appends a ledger entry. Callers must hold
// e.mu.
func (e *Exchange) credit(team string, amount float64, auction int, memo string) {
	e.balances[team] += amount
	e.ledger = append(e.ledger, LedgerEntry{
		Seq:     len(e.ledger),
		Auction: auction,
		Team:    team,
		Amount:  amount,
		Memo:    memo,
	})
}

// LedgerBalanced reports whether all ledger entries sum to zero (every
// debit has a matching credit).
func (e *Exchange) LedgerBalanced(eps float64) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var s float64
	for _, le := range e.ledger {
		s += le.Amount
	}
	return s < eps && s > -eps
}

// teamsLocked lists the non-operator accounts in sorted order. Callers
// must hold e.mu.
func (e *Exchange) teamsLocked() []string {
	out := make([]string, 0, len(e.balances))
	for t := range e.balances {
		if t != OperatorAccount {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Teams lists the non-operator accounts in sorted order.
func (e *Exchange) Teams() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.teamsLocked()
}
