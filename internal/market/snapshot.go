package market

import (
	"encoding/json"
	"fmt"
	"time"

	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/resource"
)

// exchangeState is the JSON snapshot of everything an Exchange would
// otherwise have to replay from genesis: the full order book, accounts,
// ledger, history, quota grants, and the fleet delta (exchange-placed
// tasks pinned to their machines, plus initial-fleet tasks evicted
// through the exchange). The base fleet itself is NOT persisted — the
// owner rebuilds it deterministically and the delta is re-applied on
// top.
type exchangeState struct {
	SubmitSeq uint64             `json:"submit_seq"`
	Orders    []orderState       `json:"orders"`
	Balances  map[string]float64 `json:"balances"`
	OpenBuy   map[string]float64 `json:"open_buy,omitempty"`
	Ledger    []LedgerEntry      `json:"ledger,omitempty"`
	History   []*AuctionRecord   `json:"history,omitempty"`
	Quotas    []grantState       `json:"quotas,omitempty"`
	Placed    []placedState      `json:"placed,omitempty"`
	Evicted   []taskRef          `json:"evicted,omitempty"`
	// Machines pins every machine's committed-usage accumulator. The
	// accumulator's exact float value depends on the historical add/evict
	// order, so recomputing it from the surviving tasks can drift by an
	// ulp — enough to shift reserve prices off the crashed process's
	// trajectory.
	Machines []machineState `json:"machines,omitempty"`
	TaskSeq  int            `json:"task_seq"`
}

type machineState struct {
	Cluster string        `json:"cluster"`
	Machine int           `json:"machine"`
	Used    cluster.Usage `json:"used"`
}

type orderState struct {
	ID         int             `json:"id"`
	Team       string          `json:"team"`
	Bid        *core.Bid       `json:"bid"`
	Status     OrderStatus     `json:"status"`
	Auction    int             `json:"auction"`
	Attempts   int             `json:"attempts,omitempty"`
	Allocation resource.Vector `json:"alloc,omitempty"`
	Payment    float64         `json:"payment,omitempty"`
}

type grantState struct {
	Team    string        `json:"team"`
	Cluster string        `json:"cluster"`
	Quota   cluster.Usage `json:"quota"`
}

type placedState struct {
	Cluster string        `json:"cluster"`
	TaskID  string        `json:"task"`
	Team    string        `json:"team"`
	Req     cluster.Usage `json:"req"`
	Machine int           `json:"machine"`
}

// Snapshot writes a consistent snapshot of the exchange to its journal
// and rotates the WAL, bounding recovery replay. It is a no-op without
// a journal.
func (e *Exchange) Snapshot() error {
	if e.journal == nil {
		return nil
	}
	e.settleMu.Lock()
	defer e.settleMu.Unlock()
	return e.snapshotLocked()
}

// maybeSnapshotLocked snapshots on the configured auction cadence.
// Callers hold settleMu. A cadence snapshot that still fails after the
// inline retries is *skipped*, not fatal: the journal's rotation is
// failure-safe (the old WAL stays attached and appendable), so the
// auction that triggered it stands, replay just runs a longer tail, and
// the next cadence point tries again — but the exchange quiesces so the
// sick disk is surfaced rather than silently accumulating tail.
func (e *Exchange) maybeSnapshotLocked(num int) error {
	if e.journal == nil || e.cfg.SnapshotEvery <= 0 || num%e.cfg.SnapshotEvery != 0 {
		return nil
	}
	if err := e.snapshotLocked(); err != nil {
		e.enterDegraded(err)
	}
	return nil
}

// snapshotLocked builds the state image and hands it to the journal.
// The caller holds settleMu; taking every order and account stripe on
// top excludes every event-logging path (settlement and book entry
// alike), so the image corresponds exactly to the journal's current
// sequence number.
func (e *Exchange) snapshotLocked() error {
	for s := range e.orderShards {
		e.orderShards[s].mu.Lock()
	}
	for s := range e.accountShards {
		e.accountShards[s].mu.Lock()
	}
	e.ledgerMu.RLock()
	e.histMu.RLock()
	st, err := e.buildStateLocked()
	e.histMu.RUnlock()
	e.ledgerMu.RUnlock()
	for s := range e.accountShards {
		e.accountShards[s].mu.Unlock()
	}
	for s := range e.orderShards {
		e.orderShards[s].mu.Unlock()
	}
	if err != nil {
		return err
	}
	raw, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("market: encode snapshot: %w", err)
	}
	// Same bounded heal loop as event appends: rotation is failure-safe,
	// so each retry starts from an intact WAL.
	if err = e.journal.Snapshot(raw); err == nil {
		return nil
	}
	backoff := appendRetryBase
	for attempt := 0; attempt < maxAppendRetries; attempt++ {
		time.Sleep(backoff)
		backoff *= 2
		_ = e.journal.Probe()
		if err = e.journal.Snapshot(raw); err == nil {
			return nil
		}
	}
	return err
}

func (e *Exchange) buildStateLocked() (*exchangeState, error) {
	st := &exchangeState{
		SubmitSeq: e.submitSeq.Load(),
		Balances:  make(map[string]float64),
		TaskSeq:   e.fleet.TaskSeq(),
	}
	var orders []*Order
	for s := range e.orderShards {
		orders = append(orders, e.orderShards[s].orders...)
	}
	sortOrdersByID(orders)
	st.Orders = make([]orderState, len(orders))
	for i, o := range orders {
		st.Orders[i] = orderState{ID: o.ID, Team: o.Team, Bid: o.Bid, Status: o.Status,
			Auction: o.Auction, Attempts: o.Attempts, Allocation: o.Allocation, Payment: o.Payment}
	}
	for s := range e.accountShards {
		as := &e.accountShards[s]
		for team, bal := range as.balances {
			st.Balances[team] = bal
		}
		//marketlint:orderfree writes are team-keyed and the nil-check lazy init is idempotent
		for team, exp := range as.openBuy {
			if exp != 0 {
				if st.OpenBuy == nil {
					st.OpenBuy = make(map[string]float64)
				}
				st.OpenBuy[team] = exp
			}
		}
	}
	st.Ledger = append([]LedgerEntry(nil), e.ledger...)
	st.History = append([]*AuctionRecord(nil), e.history...)
	for _, g := range e.fleet.Quotas().Grants() {
		if g.Quota.IsZero() {
			continue
		}
		st.Quotas = append(st.Quotas, grantState{Team: g.Team, Cluster: g.Cluster, Quota: g.Quota})
	}
	for _, ref := range e.delta.live() {
		c := e.fleet.Cluster(ref.Cluster)
		if c == nil {
			return nil, fmt.Errorf("market: snapshot: unknown cluster %q", ref.Cluster)
		}
		t, machineID, ok := c.TaskInfo(ref.TaskID)
		if !ok {
			return nil, fmt.Errorf("market: snapshot: placed task %q missing from cluster %q",
				ref.TaskID, ref.Cluster)
		}
		st.Placed = append(st.Placed, placedState{Cluster: ref.Cluster, TaskID: ref.TaskID,
			Team: t.Team, Req: t.Req, Machine: machineID})
	}
	st.Evicted = append([]taskRef(nil), e.delta.evicted...)
	for _, cn := range e.fleet.ClusterNames() {
		for _, m := range e.fleet.Cluster(cn).Machines() {
			st.Machines = append(st.Machines, machineState{Cluster: cn, Machine: m.ID, Used: m.Used()})
		}
	}
	return st, nil
}

// restoreState loads a snapshot image into a freshly constructed
// exchange whose fleet has been rebuilt to its as-built state. Runs
// single-threaded, before the exchange is shared.
func (e *Exchange) restoreState(raw []byte) error {
	var st exchangeState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	n := len(e.orderShards)
	for i := range st.Orders {
		s := &st.Orders[i]
		if s.Bid == nil {
			return fmt.Errorf("order %d has no bid", s.ID)
		}
		o := &Order{ID: s.ID, Team: s.Team, Bid: s.Bid, Status: s.Status, Auction: s.Auction,
			Attempts: s.Attempts, Allocation: s.Allocation, Payment: s.Payment}
		os := e.orderShardFor(o.ID)
		if os == nil || o.ID/n != len(os.orders) {
			return fmt.Errorf("order %d out of sequence", o.ID)
		}
		os.orders = append(os.orders, o)
		if o.Status == Open {
			os.open = append(os.open, o)
			os.openCount++
		}
	}
	// Balances and commitments are restored verbatim (not re-derived from
	// the booked orders), so the image's money state is authoritative.
	//marketlint:orderfree each write lands in its own team-keyed stripe slot (accountShardFor is a pure hash)
	for team, bal := range st.Balances {
		e.accountShardFor(team).balances[team] = bal
	}
	//marketlint:orderfree each write lands in its own team-keyed stripe slot (accountShardFor is a pure hash)
	for team, exp := range st.OpenBuy {
		e.accountShardFor(team).openBuy[team] = exp
	}
	e.ledger = st.Ledger
	e.history = st.History
	for _, g := range st.Quotas {
		e.fleet.Quotas().Grant(g.Team, g.Cluster, g.Quota)
	}
	// Re-apply the fleet delta: evictions first (freeing the capacity the
	// pinned placements assume), then placements on their recorded
	// machines, then the task-ID counter.
	for _, ref := range st.Evicted {
		c := e.fleet.Cluster(ref.Cluster)
		if c == nil {
			return fmt.Errorf("evicted task %q names unknown cluster %q", ref.TaskID, ref.Cluster)
		}
		if !c.Evict(ref.TaskID) {
			return fmt.Errorf("evicted task %q missing from rebuilt cluster %q", ref.TaskID, ref.Cluster)
		}
	}
	e.delta.evicted = append([]taskRef(nil), st.Evicted...)
	for _, p := range st.Placed {
		c := e.fleet.Cluster(p.Cluster)
		if c == nil {
			return fmt.Errorf("placed task %q names unknown cluster %q", p.TaskID, p.Cluster)
		}
		if err := c.PlaceAt(p.Machine, cluster.Task{ID: p.TaskID, Team: p.Team, Req: p.Req}); err != nil {
			return fmt.Errorf("re-place task %q: %w", p.TaskID, err)
		}
		e.delta.recordPlace(p.Cluster, p.TaskID)
	}
	for _, ms := range st.Machines {
		c := e.fleet.Cluster(ms.Cluster)
		if c == nil {
			return fmt.Errorf("machine state names unknown cluster %q", ms.Cluster)
		}
		if err := c.SetMachineUsed(ms.Machine, ms.Used); err != nil {
			return err
		}
	}
	e.fleet.SetTaskSeq(st.TaskSeq)
	e.submitSeq.Store(st.SubmitSeq)
	return nil
}
