package market

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/resource"
)

// testFleet builds a two-cluster fleet with r1 congested and r2 idle.
func testFleet(t *testing.T) *cluster.Fleet {
	t.Helper()
	f := cluster.NewFleet()
	for _, name := range []string{"r1", "r2"} {
		c := cluster.New(name, nil)
		c.AddMachines(10, cluster.Usage{CPU: 10, RAM: 20, Disk: 5})
		if err := f.AddCluster(c); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(9))
	if err := f.FillToUtilization(rng, "r1", cluster.Usage{CPU: 0.85, RAM: 0.85, Disk: 0.85}); err != nil {
		t.Fatal(err)
	}
	if err := f.FillToUtilization(rng, "r2", cluster.Usage{CPU: 0.2, RAM: 0.2, Disk: 0.2}); err != nil {
		t.Fatal(err)
	}
	return f
}

func newTestExchange(t *testing.T) *Exchange {
	t.Helper()
	e, err := NewExchange(testFleet(t), Config{InitialBudget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewExchangeValidation(t *testing.T) {
	if _, err := NewExchange(nil, Config{}); err == nil {
		t.Error("nil fleet accepted")
	}
	if _, err := NewExchange(cluster.NewFleet(), Config{}); err == nil {
		t.Error("empty fleet accepted")
	}
}

func TestAccounts(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("team-a"); err != nil {
		t.Fatal(err)
	}
	if err := e.OpenAccount("team-a"); err == nil {
		t.Error("duplicate account accepted")
	}
	if err := e.OpenAccount(""); err == nil {
		t.Error("empty name accepted")
	}
	if err := e.OpenAccount(OperatorAccount); err == nil {
		t.Error("operator name accepted")
	}
	b, err := e.Balance("team-a")
	if err != nil || b != 1000 {
		t.Errorf("Balance = %v, %v", b, err)
	}
	if _, err := e.Balance("ghost"); err == nil {
		t.Error("unknown account accepted")
	}
	if teams := e.Teams(); len(teams) != 1 || teams[0] != "team-a" {
		t.Errorf("Teams = %v", teams)
	}
}

func TestReservePricesReflectCongestion(t *testing.T) {
	e := newTestExchange(t)
	p, err := e.ReservePrices()
	if err != nil {
		t.Fatal(err)
	}
	reg := e.Registry()
	hot := p[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.CPU})]
	cold := p[reg.MustIndex(resource.Pool{Cluster: "r2", Dim: resource.CPU})]
	if hot <= cold {
		t.Errorf("congested reserve %v not above idle %v", hot, cold)
	}
	// Congested pool must be above cost (1.0), idle below.
	if hot <= 1.0 {
		t.Errorf("congested reserve %v not above cost", hot)
	}
	if cold >= 1.0 {
		t.Errorf("idle reserve %v not below cost", cold)
	}
}

func TestSubmitValidation(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	reg := e.Registry()
	mk := func(limit float64) *core.Bid {
		v := reg.Zero()
		v[0] = 5
		return &core.Bid{User: "a", Bundles: []resource.Vector{v}, Limit: limit}
	}
	if _, err := e.Submit("ghost", mk(10)); err == nil {
		t.Error("unknown team accepted")
	}
	if _, err := e.Submit("a", nil); err == nil {
		t.Error("nil bid accepted")
	}
	if _, err := e.Submit("a", mk(2000)); err == nil {
		t.Error("limit above budget accepted")
	}
	o, err := e.Submit("a", mk(600))
	if err != nil {
		t.Fatal(err)
	}
	if o.Status != Open || o.Side() != +1 {
		t.Errorf("order = %+v", o)
	}
	// A second order may not overcommit the budget across open orders.
	if _, err := e.Submit("a", mk(600)); err == nil {
		t.Error("aggregate budget overcommit accepted")
	}
	// But a 300 order still fits.
	if _, err := e.Submit("a", mk(300)); err != nil {
		t.Errorf("within-budget order rejected: %v", err)
	}
}

func TestSubmitProductTwoStep(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("storage-team"); err != nil {
		t.Fatal(err)
	}
	o, err := e.SubmitProduct("storage-team", "gfs-storage", 10, []string{"r1", "r2"}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Bid.Bundles) != 2 {
		t.Fatalf("bundles = %d, want one per cluster", len(o.Bid.Bundles))
	}
	reg := e.Registry()
	// 10 TB of gfs-storage covers 2 CPU, 5 RAM, 30 Disk.
	b := o.Bid.Bundles[0]
	if got := b[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.Disk})]; got != 30 {
		t.Errorf("disk covering = %v", got)
	}
	if got := b[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.CPU})]; got != 2 {
		t.Errorf("cpu covering = %v", got)
	}

	// Error paths.
	if _, err := e.SubmitProduct("storage-team", "no-such", 1, []string{"r1"}, 10); err == nil {
		t.Error("unknown product accepted")
	}
	if _, err := e.SubmitProduct("storage-team", "gfs-storage", 0, []string{"r1"}, 10); err == nil {
		t.Error("zero quantity accepted")
	}
	if _, err := e.SubmitProduct("storage-team", "gfs-storage", 1, nil, 10); err == nil {
		t.Error("no clusters accepted")
	}
	if _, err := e.SubmitProduct("storage-team", "gfs-storage", 1, []string{"mars"}, 10); err == nil {
		t.Error("unknown cluster accepted")
	}
}

func TestCancel(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	o, err := e.SubmitProduct("a", "batch-compute", 1, []string{"r2"}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Cancel(o.ID); err != nil {
		t.Fatal(err)
	}
	if err := e.Cancel(o.ID); err == nil {
		t.Error("double cancel accepted")
	}
	if err := e.Cancel(999); err == nil {
		t.Error("unknown order accepted")
	}
	if len(e.OpenOrders()) != 0 {
		t.Error("cancelled order still open")
	}
}

func TestRunAuctionSettlement(t *testing.T) {
	e := newTestExchange(t)
	for _, team := range []string{"rich", "poor"} {
		if err := e.OpenAccount(team); err != nil {
			t.Fatal(err)
		}
	}
	// Both teams want the same block of idle r2 capacity; the operator's
	// marketable supply (80% of ~80 free CPU = 64) covers one 50-CPU
	// order but not two.
	reg := e.Registry()
	mk := func(user string, limit float64) *core.Bid {
		v := reg.Zero()
		v[reg.MustIndex(resource.Pool{Cluster: "r2", Dim: resource.CPU})] = 50
		v[reg.MustIndex(resource.Pool{Cluster: "r2", Dim: resource.RAM})] = 50
		return &core.Bid{User: user, Bundles: []resource.Vector{v}, Limit: limit}
	}
	if _, err := e.Submit("rich", mk("rich", 900)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit("poor", mk("poor", 120)); err != nil {
		t.Fatal(err)
	}

	rec, res, err := e.RunAuction()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Converged || !res.Converged {
		t.Fatal("auction did not converge")
	}
	if rec.Submitted != 2 || rec.Settled != 1 {
		t.Fatalf("record = %+v", rec)
	}
	orders := e.Orders()
	var won, lost *Order
	for _, o := range orders {
		switch o.Status {
		case Won:
			won = o
		case Lost:
			lost = o
		}
	}
	if won == nil || won.Team != "rich" {
		t.Fatalf("winner = %+v", won)
	}
	if lost == nil || lost.Team != "poor" {
		t.Fatalf("loser = %+v", lost)
	}
	// Money moved: rich paid, operator received.
	richBal, _ := e.Balance("rich")
	if richBal >= 1000 {
		t.Errorf("rich balance = %v, expected payment deducted", richBal)
	}
	poorBal, _ := e.Balance("poor")
	if poorBal != 1000 {
		t.Errorf("poor balance = %v, expected untouched", poorBal)
	}
	if !e.LedgerBalanced(1e-9) {
		t.Error("ledger unbalanced")
	}
	// Quota granted to the winner.
	q := e.Fleet().Quotas().Granted("rich", "r2")
	if q.CPU != 50 || q.RAM != 50 {
		t.Errorf("quota = %v", q)
	}
	// Premium recorded: rich's limit 900, payment should be well below.
	if len(rec.Premiums) != 1 || rec.Premiums[0] <= 0 {
		t.Errorf("premiums = %v", rec.Premiums)
	}
	if rec.PremiumMedian() != rec.Premiums[0] || rec.PremiumMean() != rec.Premiums[0] {
		t.Error("premium stats wrong")
	}
	if got := rec.SettledFraction(); got != 0.5 {
		t.Errorf("SettledFraction = %v", got)
	}
}

func TestRunAuctionNoOrders(t *testing.T) {
	e := newTestExchange(t)
	if _, _, err := e.RunAuction(); err == nil {
		t.Error("auction with no orders accepted")
	}
	if _, err := e.PreliminaryPrices(); err == nil {
		t.Error("preliminary prices with no orders accepted")
	}
}

func TestPreliminaryPricesDoNotSettle(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SubmitProduct("a", "batch-compute", 5, []string{"r2"}, 400); err != nil {
		t.Fatal(err)
	}
	p, err := e.PreliminaryPrices()
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != e.Registry().Len() {
		t.Fatalf("prices len = %d", len(p))
	}
	// Order still open, no money moved, no history.
	if len(e.OpenOrders()) != 1 || len(e.History()) != 0 || len(e.Ledger()) != 0 {
		t.Error("preliminary run had side effects")
	}
	bal, _ := e.Balance("a")
	if bal != 1000 {
		t.Errorf("balance = %v", bal)
	}
}

func TestSellerReceivesPayment(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("seller"); err != nil {
		t.Fatal(err)
	}
	if err := e.OpenAccount("buyer"); err != nil {
		t.Fatal(err)
	}
	reg := e.Registry()
	// Seller offers 50 CPU in congested r1; buyer wants exactly that and
	// is willing to pay a lot. Operator supply in r1 is small because the
	// cluster is nearly full.
	offer := reg.Zero()
	offer[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.CPU})] = -50
	if _, err := e.Submit("seller", &core.Bid{User: "seller", Bundles: []resource.Vector{offer}, Limit: -10}); err != nil {
		t.Fatal(err)
	}
	want := reg.Zero()
	want[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.CPU})] = 60
	if _, err := e.Submit("buyer", &core.Bid{User: "buyer", Bundles: []resource.Vector{want}, Limit: 900}); err != nil {
		t.Fatal(err)
	}
	_, _, err := e.RunAuction()
	if err != nil {
		t.Fatal(err)
	}
	sellerBal, _ := e.Balance("seller")
	buyerBal, _ := e.Balance("buyer")
	if sellerBal <= 1000 {
		t.Errorf("seller balance = %v, expected revenue", sellerBal)
	}
	if buyerBal >= 1000 {
		t.Errorf("buyer balance = %v, expected payment", buyerBal)
	}
	if !e.LedgerBalanced(1e-9) {
		t.Error("ledger unbalanced")
	}
	// Seller quota reduced (clamped at 0 since none was granted).
	q := e.Fleet().Quotas().Granted("seller", "r1")
	if q.CPU != 0 {
		t.Errorf("seller quota = %v", q)
	}
}

func TestSummary(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SubmitProduct("a", "batch-compute", 2, []string{"r1", "r2"}, 100); err != nil {
		t.Fatal(err)
	}
	reg := e.Registry()
	offer := reg.Zero()
	offer[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.RAM})] = -10
	if _, err := e.Submit("a", &core.Bid{User: "a/offer", Bundles: []resource.Vector{offer}, Limit: -1}); err != nil {
		t.Fatal(err)
	}

	rows, err := e.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	r1 := rows[0]
	if r1.Cluster != "r1" || r1.Bids != 1 || r1.Offers != 1 {
		t.Errorf("r1 summary = %+v", r1)
	}
	if rows[1].Bids != 1 || rows[1].Offers != 0 {
		t.Errorf("r2 summary = %+v", rows[1])
	}
	// Prices positive, congested r1 above idle r2.
	if r1.Price.CPU <= rows[1].Price.CPU {
		t.Errorf("price ordering wrong: %v vs %v", r1.Price, rows[1].Price)
	}
	if r1.Utilization.CPU <= rows[1].Utilization.CPU {
		t.Error("utilization ordering wrong")
	}
}

func TestPriceHistory(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	pool := resource.Pool{Cluster: "r2", Dim: resource.CPU}
	if got := e.PriceHistory(pool); len(got) != 0 {
		t.Errorf("history before auctions = %v", got)
	}
	for i := 0; i < 2; i++ {
		if _, err := e.SubmitProduct("a", "batch-compute", 2, []string{"r2"}, 100); err != nil {
			t.Fatal(err)
		}
		if _, _, err := e.RunAuction(); err != nil {
			t.Fatal(err)
		}
	}
	h := e.PriceHistory(pool)
	if len(h) != 2 {
		t.Fatalf("history = %v", h)
	}
	if e.PriceHistory(resource.Pool{Cluster: "zz", Dim: resource.CPU}) != nil {
		t.Error("unknown pool returned history")
	}
}

func TestCatalog(t *testing.T) {
	c := StandardCatalog()
	names := c.Names()
	if len(names) != 4 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("names not sorted")
		}
	}
	p, err := c.Lookup("gfs-storage")
	if err != nil {
		t.Fatal(err)
	}
	cover := p.Cover(2)
	if cover.Disk != 6 {
		t.Errorf("cover = %v", cover)
	}
	if _, err := c.Lookup("nope"); err == nil {
		t.Error("unknown product accepted")
	}
}

func TestOrderStatusString(t *testing.T) {
	for s, want := range map[OrderStatus]string{
		Open: "open", Won: "won", Lost: "lost", Cancelled: "cancelled",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if !strings.Contains(OrderStatus(42).String(), "42") {
		t.Error("unknown status string")
	}
}

func TestOperatorSupplyRespectsMarketableFraction(t *testing.T) {
	f := testFleet(t)
	e, err := NewExchange(f, Config{MarketableFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sup := e.operatorSupply()
	if sup == nil {
		t.Fatal("no operator supply")
	}
	reg := e.Registry()
	free := f.FreeVector(reg)
	for i := range free {
		want := -free[i] * 0.5
		if free[i] <= 0 {
			want = 0
		}
		if math.Abs(sup.Bundles[0][i]-want) > 1e-9 {
			t.Errorf("pool %d supply = %v, want %v", i, sup.Bundles[0][i], want)
		}
	}
}

func TestRunAuctionNonConvergencePropagates(t *testing.T) {
	e, err := NewExchange(testFleet(t), Config{InitialBudget: 1e15, MaxRounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, team := range []string{"t1", "t2"} {
		if err := e.OpenAccount(team); err != nil {
			t.Fatal(err)
		}
	}
	reg := e.Registry()
	// Two opposed traders that never clear (see core's non-convergence
	// test): buy 2 in one cluster, sell 1 in the other.
	mk := func(buyCluster, sellCluster string) *core.Bid {
		v := reg.Zero()
		v[reg.MustIndex(resource.Pool{Cluster: buyCluster, Dim: resource.CPU})] = 2000
		v[reg.MustIndex(resource.Pool{Cluster: sellCluster, Dim: resource.CPU})] = -1000
		return &core.Bid{User: buyCluster + "-trader", Bundles: []resource.Vector{v}, Limit: 1e12}
	}
	if _, err := e.Submit("t1", mk("r1", "r2")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit("t2", mk("r2", "r1")); err != nil {
		t.Fatal(err)
	}
	rec, res, err := e.RunAuction()
	if !errors.Is(err, core.ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	if rec == nil || rec.Converged || res.Converged {
		t.Fatal("non-converged auction not recorded as such")
	}
	// The partial settlement is still bookkept consistently.
	if !e.LedgerBalanced(1e-6) {
		t.Error("ledger unbalanced after non-convergent auction")
	}
	for _, o := range e.Orders() {
		if o.Status == Open {
			t.Error("order left open after auction")
		}
	}
}

func TestSubmitVectorPiBid(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("vp"); err != nil {
		t.Fatal(err)
	}
	reg := e.Registry()
	b1 := reg.Zero()
	b1[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.CPU})] = 10
	b2 := reg.Zero()
	b2[reg.MustIndex(resource.Pool{Cluster: "r2", Dim: resource.CPU})] = 10
	bid := &core.Bid{
		User:         "vp",
		Bundles:      []resource.Vector{b1, b2},
		BundleLimits: []float64{900, 200}, // values r1 far more
	}
	if _, err := e.Submit("vp", bid); err != nil {
		t.Fatal(err)
	}
	rec, res, err := e.RunAuction()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Converged {
		t.Fatal("did not converge")
	}
	if len(res.Winners) == 0 {
		t.Fatal("vector-pi bid lost an uncontested market")
	}
}
