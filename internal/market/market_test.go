package market

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/resource"
)

// testFleet builds a two-cluster fleet with r1 congested and r2 idle.
func testFleet(t *testing.T) *cluster.Fleet {
	t.Helper()
	f := cluster.NewFleet()
	for _, name := range []string{"r1", "r2"} {
		c := cluster.New(name, nil)
		c.AddMachines(10, cluster.Usage{CPU: 10, RAM: 20, Disk: 5})
		if err := f.AddCluster(c); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(9))
	if err := f.FillToUtilization(rng, "r1", cluster.Usage{CPU: 0.85, RAM: 0.85, Disk: 0.85}); err != nil {
		t.Fatal(err)
	}
	if err := f.FillToUtilization(rng, "r2", cluster.Usage{CPU: 0.2, RAM: 0.2, Disk: 0.2}); err != nil {
		t.Fatal(err)
	}
	return f
}

func newTestExchange(t *testing.T) *Exchange {
	t.Helper()
	e, err := NewExchange(testFleet(t), Config{InitialBudget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewExchangeValidation(t *testing.T) {
	if _, err := NewExchange(nil, Config{}); err == nil {
		t.Error("nil fleet accepted")
	}
	if _, err := NewExchange(cluster.NewFleet(), Config{}); err == nil {
		t.Error("empty fleet accepted")
	}
}

func TestAccounts(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("team-a"); err != nil {
		t.Fatal(err)
	}
	if err := e.OpenAccount("team-a"); err == nil {
		t.Error("duplicate account accepted")
	}
	if err := e.OpenAccount(""); err == nil {
		t.Error("empty name accepted")
	}
	if err := e.OpenAccount(OperatorAccount); err == nil {
		t.Error("operator name accepted")
	}
	b, err := e.Balance("team-a")
	if err != nil || b != 1000 {
		t.Errorf("Balance = %v, %v", b, err)
	}
	if _, err := e.Balance("ghost"); err == nil {
		t.Error("unknown account accepted")
	}
	if teams := e.Teams(); len(teams) != 1 || teams[0] != "team-a" {
		t.Errorf("Teams = %v", teams)
	}
}

func TestReservePricesReflectCongestion(t *testing.T) {
	e := newTestExchange(t)
	p, err := e.ReservePrices()
	if err != nil {
		t.Fatal(err)
	}
	reg := e.Registry()
	hot := p[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.CPU})]
	cold := p[reg.MustIndex(resource.Pool{Cluster: "r2", Dim: resource.CPU})]
	if hot <= cold {
		t.Errorf("congested reserve %v not above idle %v", hot, cold)
	}
	// Congested pool must be above cost (1.0), idle below.
	if hot <= 1.0 {
		t.Errorf("congested reserve %v not above cost", hot)
	}
	if cold >= 1.0 {
		t.Errorf("idle reserve %v not below cost", cold)
	}
}

func TestSubmitValidation(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	reg := e.Registry()
	mk := func(limit float64) *core.Bid {
		v := reg.Zero()
		v[0] = 5
		return &core.Bid{User: "a", Bundles: []resource.Vector{v}, Limit: limit}
	}
	if _, err := e.Submit("ghost", mk(10)); err == nil {
		t.Error("unknown team accepted")
	}
	if _, err := e.Submit("a", nil); err == nil {
		t.Error("nil bid accepted")
	}
	if _, err := e.Submit("a", mk(2000)); err == nil {
		t.Error("limit above budget accepted")
	}
	o, err := e.Submit("a", mk(600))
	if err != nil {
		t.Fatal(err)
	}
	if o.Status != Open || o.Side() != +1 {
		t.Errorf("order = %+v", o)
	}
	// A second order may not overcommit the budget across open orders.
	if _, err := e.Submit("a", mk(600)); err == nil {
		t.Error("aggregate budget overcommit accepted")
	}
	// But a 300 order still fits.
	if _, err := e.Submit("a", mk(300)); err != nil {
		t.Errorf("within-budget order rejected: %v", err)
	}
}

func TestSubmitProductTwoStep(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("storage-team"); err != nil {
		t.Fatal(err)
	}
	o, err := e.SubmitProduct("storage-team", "gfs-storage", 10, []string{"r1", "r2"}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Bid.Bundles) != 2 {
		t.Fatalf("bundles = %d, want one per cluster", len(o.Bid.Bundles))
	}
	reg := e.Registry()
	// 10 TB of gfs-storage covers 2 CPU, 5 RAM, 30 Disk.
	b := o.Bid.Bundles[0]
	if got := b[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.Disk})]; got != 30 {
		t.Errorf("disk covering = %v", got)
	}
	if got := b[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.CPU})]; got != 2 {
		t.Errorf("cpu covering = %v", got)
	}

	// Error paths.
	if _, err := e.SubmitProduct("storage-team", "no-such", 1, []string{"r1"}, 10); err == nil {
		t.Error("unknown product accepted")
	}
	if _, err := e.SubmitProduct("storage-team", "gfs-storage", 0, []string{"r1"}, 10); err == nil {
		t.Error("zero quantity accepted")
	}
	if _, err := e.SubmitProduct("storage-team", "gfs-storage", 1, nil, 10); err == nil {
		t.Error("no clusters accepted")
	}
	if _, err := e.SubmitProduct("storage-team", "gfs-storage", 1, []string{"mars"}, 10); err == nil {
		t.Error("unknown cluster accepted")
	}
}

// TestCancelRejectedDuringAuction pins quota conservation: an order
// claimed by an in-flight auction cannot be withdrawn, because its
// counterparties' allocations are computed assuming its contribution.
func TestCancelRejectedDuringAuction(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	o, err := e.SubmitProduct("a", "batch-compute", 1, []string{"r2"}, 50)
	if err != nil {
		t.Fatal(err)
	}
	_, open, err := e.claimBatch()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Cancel(o.ID); err == nil {
		t.Error("cancel accepted while batch is settling")
	}
	e.releaseBatch(open)
	if err := e.Cancel(o.ID); err != nil {
		t.Errorf("cancel after batch release: %v", err)
	}
}

func TestCancel(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	o, err := e.SubmitProduct("a", "batch-compute", 1, []string{"r2"}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Cancel(o.ID); err != nil {
		t.Fatal(err)
	}
	if err := e.Cancel(o.ID); err == nil {
		t.Error("double cancel accepted")
	}
	if err := e.Cancel(999); err == nil {
		t.Error("unknown order accepted")
	}
	if len(e.OpenOrders()) != 0 {
		t.Error("cancelled order still open")
	}
}

func TestRunAuctionSettlement(t *testing.T) {
	e := newTestExchange(t)
	for _, team := range []string{"rich", "poor"} {
		if err := e.OpenAccount(team); err != nil {
			t.Fatal(err)
		}
	}
	// Both teams want the same block of idle r2 capacity; the operator's
	// marketable supply (80% of ~80 free CPU = 64) covers one 50-CPU
	// order but not two.
	reg := e.Registry()
	mk := func(user string, limit float64) *core.Bid {
		v := reg.Zero()
		v[reg.MustIndex(resource.Pool{Cluster: "r2", Dim: resource.CPU})] = 50
		v[reg.MustIndex(resource.Pool{Cluster: "r2", Dim: resource.RAM})] = 50
		return &core.Bid{User: user, Bundles: []resource.Vector{v}, Limit: limit}
	}
	if _, err := e.Submit("rich", mk("rich", 900)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit("poor", mk("poor", 120)); err != nil {
		t.Fatal(err)
	}

	rec, res, err := e.RunAuction()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Converged || !res.Converged {
		t.Fatal("auction did not converge")
	}
	if rec.Submitted != 2 || rec.Settled != 1 {
		t.Fatalf("record = %+v", rec)
	}
	orders := e.Orders()
	var won, lost *Order
	for _, o := range orders {
		switch o.Status {
		case Won:
			won = o
		case Lost:
			lost = o
		}
	}
	if won == nil || won.Team != "rich" {
		t.Fatalf("winner = %+v", won)
	}
	if lost == nil || lost.Team != "poor" {
		t.Fatalf("loser = %+v", lost)
	}
	// Money moved: rich paid, operator received.
	richBal, _ := e.Balance("rich")
	if richBal >= 1000 {
		t.Errorf("rich balance = %v, expected payment deducted", richBal)
	}
	poorBal, _ := e.Balance("poor")
	if poorBal != 1000 {
		t.Errorf("poor balance = %v, expected untouched", poorBal)
	}
	if !e.LedgerBalanced(1e-9) {
		t.Error("ledger unbalanced")
	}
	// Quota granted to the winner.
	q := e.Fleet().Quotas().Granted("rich", "r2")
	if q.CPU != 50 || q.RAM != 50 {
		t.Errorf("quota = %v", q)
	}
	// Premium recorded: rich's limit 900, payment should be well below.
	if len(rec.Premiums) != 1 || rec.Premiums[0] <= 0 {
		t.Errorf("premiums = %v", rec.Premiums)
	}
	if rec.PremiumMedian() != rec.Premiums[0] || rec.PremiumMean() != rec.Premiums[0] {
		t.Error("premium stats wrong")
	}
	if got := rec.SettledFraction(); got != 0.5 {
		t.Errorf("SettledFraction = %v", got)
	}
}

func TestRunAuctionNoOrders(t *testing.T) {
	e := newTestExchange(t)
	if _, _, err := e.RunAuction(); err == nil {
		t.Error("auction with no orders accepted")
	}
	if _, _, err := e.PreliminaryPrices(); err == nil {
		t.Error("preliminary prices with no orders accepted")
	}
}

func TestPreliminaryPricesDoNotSettle(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SubmitProduct("a", "batch-compute", 5, []string{"r2"}, 400); err != nil {
		t.Fatal(err)
	}
	p, converged, err := e.PreliminaryPrices()
	if err != nil {
		t.Fatal(err)
	}
	if !converged {
		t.Error("clearing preliminary clock reported non-converged")
	}
	if len(p) != e.Registry().Len() {
		t.Fatalf("prices len = %d", len(p))
	}
	// Order still open, no money moved, no history.
	if len(e.OpenOrders()) != 1 || len(e.History()) != 0 || len(e.Ledger()) != 0 {
		t.Error("preliminary run had side effects")
	}
	bal, _ := e.Balance("a")
	if bal != 1000 {
		t.Errorf("balance = %v", bal)
	}
}

func TestSellerReceivesPayment(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("seller"); err != nil {
		t.Fatal(err)
	}
	if err := e.OpenAccount("buyer"); err != nil {
		t.Fatal(err)
	}
	reg := e.Registry()
	// Seller offers 50 CPU in congested r1; buyer wants exactly that and
	// is willing to pay a lot. Operator supply in r1 is small because the
	// cluster is nearly full.
	offer := reg.Zero()
	offer[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.CPU})] = -50
	if _, err := e.Submit("seller", &core.Bid{User: "seller", Bundles: []resource.Vector{offer}, Limit: -10}); err != nil {
		t.Fatal(err)
	}
	want := reg.Zero()
	want[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.CPU})] = 60
	if _, err := e.Submit("buyer", &core.Bid{User: "buyer", Bundles: []resource.Vector{want}, Limit: 900}); err != nil {
		t.Fatal(err)
	}
	_, _, err := e.RunAuction()
	if err != nil {
		t.Fatal(err)
	}
	sellerBal, _ := e.Balance("seller")
	buyerBal, _ := e.Balance("buyer")
	if sellerBal <= 1000 {
		t.Errorf("seller balance = %v, expected revenue", sellerBal)
	}
	if buyerBal >= 1000 {
		t.Errorf("buyer balance = %v, expected payment", buyerBal)
	}
	if !e.LedgerBalanced(1e-9) {
		t.Error("ledger unbalanced")
	}
	// Seller quota reduced (clamped at 0 since none was granted).
	q := e.Fleet().Quotas().Granted("seller", "r1")
	if q.CPU != 0 {
		t.Errorf("seller quota = %v", q)
	}
}

func TestSummary(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SubmitProduct("a", "batch-compute", 2, []string{"r1", "r2"}, 100); err != nil {
		t.Fatal(err)
	}
	reg := e.Registry()
	offer := reg.Zero()
	offer[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.RAM})] = -10
	if _, err := e.Submit("a", &core.Bid{User: "a/offer", Bundles: []resource.Vector{offer}, Limit: -1}); err != nil {
		t.Fatal(err)
	}

	rows, err := e.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	r1 := rows[0]
	if r1.Cluster != "r1" || r1.Bids != 1 || r1.Offers != 1 {
		t.Errorf("r1 summary = %+v", r1)
	}
	if rows[1].Bids != 1 || rows[1].Offers != 0 {
		t.Errorf("r2 summary = %+v", rows[1])
	}
	// Prices positive, congested r1 above idle r2.
	if r1.Price.CPU <= rows[1].Price.CPU {
		t.Errorf("price ordering wrong: %v vs %v", r1.Price, rows[1].Price)
	}
	if r1.Utilization.CPU <= rows[1].Utilization.CPU {
		t.Error("utilization ordering wrong")
	}
}

func TestPriceHistory(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	pool := resource.Pool{Cluster: "r2", Dim: resource.CPU}
	if got := e.PriceHistory(pool); len(got) != 0 {
		t.Errorf("history before auctions = %v", got)
	}
	for i := 0; i < 2; i++ {
		if _, err := e.SubmitProduct("a", "batch-compute", 2, []string{"r2"}, 100); err != nil {
			t.Fatal(err)
		}
		if _, _, err := e.RunAuction(); err != nil {
			t.Fatal(err)
		}
	}
	h := e.PriceHistory(pool)
	if len(h) != 2 {
		t.Fatalf("history = %v", h)
	}
	if e.PriceHistory(resource.Pool{Cluster: "zz", Dim: resource.CPU}) != nil {
		t.Error("unknown pool returned history")
	}
	// The bounded tail returns the most recent clearing prices in order.
	if ht := e.PriceHistoryTail(pool, 1); len(ht) != 1 || ht[0] != h[1] {
		t.Errorf("PriceHistoryTail(1) = %v, want %v", ht, h[1:])
	}
	if ht := e.PriceHistoryTail(pool, 10); len(ht) != 2 || ht[0] != h[0] || ht[1] != h[1] {
		t.Errorf("PriceHistoryTail(10) = %v, want %v", ht, h)
	}
	if e.PriceHistoryTail(pool, 0) != nil {
		t.Error("non-positive tail limit returned prices")
	}
	if e.PriceHistoryTail(resource.Pool{Cluster: "zz", Dim: resource.CPU}, 5) != nil {
		t.Error("unknown pool returned tail history")
	}
}

func TestCatalog(t *testing.T) {
	c := StandardCatalog()
	names := c.Names()
	if len(names) != 4 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("names not sorted")
		}
	}
	p, err := c.Lookup("gfs-storage")
	if err != nil {
		t.Fatal(err)
	}
	cover := p.Cover(2)
	if cover.Disk != 6 {
		t.Errorf("cover = %v", cover)
	}
	if _, err := c.Lookup("nope"); err == nil {
		t.Error("unknown product accepted")
	}
}

func TestOrderStatusString(t *testing.T) {
	for s, want := range map[OrderStatus]string{
		Open: "open", Won: "won", Lost: "lost", Cancelled: "cancelled",
		Unsettled: "unsettled",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if !strings.Contains(OrderStatus(42).String(), "42") {
		t.Error("unknown status string")
	}
}

func TestOperatorSupplyRespectsMarketableFraction(t *testing.T) {
	f := testFleet(t)
	e, err := NewExchange(f, Config{MarketableFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sup := e.operatorSupply()
	if len(sup) == 0 {
		t.Fatal("no operator supply")
	}
	reg := e.Registry()
	// One sell-side bid per cluster with free capacity, in registry
	// cluster order, jointly covering every pool exactly once.
	if want := len(reg.Clusters()); len(sup) != want {
		t.Fatalf("operator supply split into %d bids, want one per cluster (%d)", len(sup), want)
	}
	merged := reg.Zero()
	for _, b := range sup {
		if b.User != OperatorAccount {
			t.Fatalf("supply bid user = %q", b.User)
		}
		clusters := map[string]bool{}
		for i, q := range b.Bundles[0] {
			if q == 0 {
				continue
			}
			if merged[i] != 0 {
				t.Fatalf("pool %d offered by two supply bids", i)
			}
			merged[i] = q
			clusters[reg.Pool(i).Cluster] = true
		}
		if len(clusters) != 1 {
			t.Fatalf("supply bid spans %d clusters, want 1", len(clusters))
		}
	}
	free := f.FreeVector(reg)
	for i := range free {
		want := -free[i] * 0.5
		if free[i] <= 0 {
			want = 0
		}
		if math.Abs(merged[i]-want) > 1e-9 {
			t.Errorf("pool %d supply = %v, want %v", i, merged[i], want)
		}
	}
}

// nonConvergentExchange builds a trader-heavy market that hits MaxRounds:
// two opposed traders that never clear (see core's non-convergence test).
func nonConvergentExchange(t *testing.T) *Exchange {
	t.Helper()
	e, err := NewExchange(testFleet(t), Config{InitialBudget: 1e15, MaxRounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, team := range []string{"t1", "t2"} {
		if err := e.OpenAccount(team); err != nil {
			t.Fatal(err)
		}
	}
	reg := e.Registry()
	mk := func(buyCluster, sellCluster string) *core.Bid {
		v := reg.Zero()
		v[reg.MustIndex(resource.Pool{Cluster: buyCluster, Dim: resource.CPU})] = 2000
		v[reg.MustIndex(resource.Pool{Cluster: sellCluster, Dim: resource.CPU})] = -1000
		return &core.Bid{User: buyCluster + "-trader", Bundles: []resource.Vector{v}, Limit: 1e12}
	}
	if _, err := e.Submit("t1", mk("r1", "r2")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit("t2", mk("r2", "r1")); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRunAuctionNonConvergencePropagates(t *testing.T) {
	e := nonConvergentExchange(t)
	rec, res, err := e.RunAuction()
	if !errors.Is(err, core.ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	if rec == nil || rec.Converged || res.Converged {
		t.Fatal("non-converged auction not recorded as such")
	}
}

// TestRunAuctionNonConvergenceDoesNotSettle is the regression test for
// the bug where a clock that hit MaxRounds settled trades anyway: the
// final prices of a failed clock are not clearing prices, so no money,
// quota, or order status may move.
func TestRunAuctionNonConvergenceDoesNotSettle(t *testing.T) {
	e := nonConvergentExchange(t)
	rec, _, err := e.RunAuction()
	if !errors.Is(err, core.ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	// Orders stay open for the next epoch.
	for _, o := range e.Orders() {
		if o.Status != Open {
			t.Errorf("order %d settled at non-clearing prices: %s", o.ID, o.Status)
		}
		if o.Auction != -1 {
			t.Errorf("order %d stamped with auction %d", o.ID, o.Auction)
		}
	}
	// No money moved, no quota granted.
	if got := len(e.Ledger()); got != 0 {
		t.Errorf("ledger has %d entries after failed clock", got)
	}
	for _, team := range []string{"t1", "t2"} {
		if bal, _ := e.Balance(team); bal != 1e15 {
			t.Errorf("%s balance = %v, want untouched", team, bal)
		}
		for _, cl := range []string{"r1", "r2"} {
			if q := e.Fleet().Quotas().Granted(team, cl); q.CPU != 0 {
				t.Errorf("%s quota in %s = %v after failed clock", team, cl, q)
			}
		}
	}
	// The attempt is still visible in history with nothing settled.
	if rec.Settled != 0 || rec.SettledFraction() != 0 {
		t.Errorf("record settled = %d", rec.Settled)
	}
	if hist := e.History(); len(hist) != 1 || hist[0].Converged {
		t.Errorf("history = %+v", hist)
	}
}

// TestNonConvergentBatchRetires pins the livelock guard: a batch that
// fails MaxAuctionAttempts consecutive clocks is retired as Unsettled —
// without settling anything — so it stops poisoning future epochs.
func TestNonConvergentBatchRetires(t *testing.T) {
	e := nonConvergentExchange(t) // default MaxAuctionAttempts = 3
	for i := 0; i < 3; i++ {
		if _, _, err := e.RunAuction(); !errors.Is(err, core.ErrNoConvergence) {
			t.Fatalf("attempt %d: err = %v, want ErrNoConvergence", i+1, err)
		}
	}
	for _, o := range e.Orders() {
		if o.Status != Unsettled {
			t.Errorf("order %d = %s after 3 failed clocks, want unsettled", o.ID, o.Status)
		}
		if o.Attempts != 3 {
			t.Errorf("order %d attempts = %d", o.ID, o.Attempts)
		}
	}
	// The book is clear: the next epoch is an idle tick, not a retry.
	if _, _, err := e.RunAuction(); !errors.Is(err, ErrNoOpenOrders) {
		t.Fatalf("after retirement err = %v, want ErrNoOpenOrders", err)
	}
	// Retirement settled nothing.
	if got := len(e.Ledger()); got != 0 {
		t.Errorf("ledger has %d entries", got)
	}
	if bal, _ := e.Balance("t1"); bal != 1e15 {
		t.Errorf("t1 balance = %v", bal)
	}
	// Retired buy commitment is released: the team can bid again.
	reg := e.Registry()
	v := reg.Zero()
	v[reg.MustIndex(resource.Pool{Cluster: "r2", Dim: resource.CPU})] = 5
	if _, err := e.Submit("t1", &core.Bid{Bundles: []resource.Vector{v}, Limit: 9e14}); err != nil {
		t.Errorf("post-retirement submit rejected: %v", err)
	}
}

// TestCommitmentReleasedOnSettle pins the incremental open-buy
// accounting: settling or cancelling an order frees its budget
// commitment for the next submit.
func TestCommitmentReleasedOnSettle(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	reg := e.Registry()
	mk := func(limit float64) *core.Bid {
		v := reg.Zero()
		v[reg.MustIndex(resource.Pool{Cluster: "r2", Dim: resource.CPU})] = 5
		return &core.Bid{Bundles: []resource.Vector{v}, Limit: limit}
	}
	o, err := e.Submit("a", mk(900))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit("a", mk(900)); err == nil {
		t.Fatal("overcommit accepted")
	}
	// Cancelling releases the commitment.
	if err := e.Cancel(o.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit("a", mk(900)); err != nil {
		t.Fatalf("commitment not released by cancel: %v", err)
	}
	// Settling releases it too.
	if _, _, err := e.RunAuction(); err != nil {
		t.Fatal(err)
	}
	bal, _ := e.Balance("a")
	if _, err := e.Submit("a", mk(bal*0.9)); err != nil {
		t.Fatalf("commitment not released by settlement: %v", err)
	}
}

// TestSubmitDoesNotMutateCallerBid is the regression test for Submit
// writing bid.User = team into the caller's bid, which core.NewAuction
// documents must not be mutated.
func TestSubmitDoesNotMutateCallerBid(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	reg := e.Registry()
	v := reg.Zero()
	v[0] = 5
	caller := &core.Bid{Bundles: []resource.Vector{v}, Limit: 10}
	o, err := e.Submit("a", caller)
	if err != nil {
		t.Fatal(err)
	}
	if caller.User != "" {
		t.Errorf("caller's bid mutated: User = %q", caller.User)
	}
	if o.Bid.User != "a" {
		t.Errorf("exchange's bid user = %q, want %q", o.Bid.User, "a")
	}
	if o.Bid == caller {
		t.Error("exchange aliases the caller's bid")
	}
	// The clone must be deep: the caller may reuse its vectors after
	// Submit returns while the clock reads the booked bid lock-free.
	v[0] = 999
	if got, _ := e.Order(o.ID); got.Bid.Bundles[0][0] != 5 {
		t.Errorf("booked bundle aliases caller's vector: %v", got.Bid.Bundles[0])
	}
}

// TestFailedClockPricesNotDisplayed pins that a non-convergent clock's
// final prices never surface as market prices: Summary and PriceHistory
// must skip records with Converged=false.
func TestFailedClockPricesNotDisplayed(t *testing.T) {
	e := nonConvergentExchange(t)
	if _, _, err := e.RunAuction(); !errors.Is(err, core.ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	if len(e.History()) != 1 {
		t.Fatal("failed auction not recorded")
	}
	if p := e.LastClearingPrices(); p != nil {
		t.Errorf("LastClearingPrices = %v after failed clock, want nil", p)
	}
	pool := resource.Pool{Cluster: "r1", Dim: resource.CPU}
	if h := e.PriceHistory(pool); len(h) != 0 {
		t.Errorf("PriceHistory includes non-clearing prices: %v", h)
	}
	// Summary falls back to reserve prices, which for a failed 100-round
	// clock are far below the runaway clock prices.
	rows, err := e.Summary()
	if err != nil {
		t.Fatal(err)
	}
	reserve, err := e.ReservePrices()
	if err != nil {
		t.Fatal(err)
	}
	reg := e.Registry()
	i := reg.MustIndex(pool)
	if got := rows[0].Price.CPU; math.Abs(got-reserve[i]) > 1e-9 {
		t.Errorf("summary price = %v, want reserve %v", got, reserve[i])
	}
}

// TestReadPathsReturnSnapshots pins the snapshot contract: mutating what
// the accessors return must not corrupt exchange state.
func TestReadPathsReturnSnapshots(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	o, err := e.SubmitProduct("a", "batch-compute", 1, []string{"r2"}, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Scribbling on the returned order must not affect the book.
	o.Status = Cancelled
	if got := e.OpenOrders(); len(got) != 1 {
		t.Fatalf("open orders = %d after mutating a snapshot", len(got))
	}
	orders := e.Orders()
	orders[0].Status = Cancelled
	orders[0].Team = "mallory"
	if got, err := e.Order(o.ID); err != nil || got.Status != Open || got.Team != "a" {
		t.Errorf("order corrupted through snapshot: %+v (%v)", got, err)
	}
	if _, _, err := e.RunAuction(); err != nil {
		t.Fatal(err)
	}
	led := e.Ledger()
	if len(led) == 0 {
		t.Fatal("no ledger entries")
	}
	led[0].Amount += 1e9
	if !e.LedgerBalanced(1e-9) {
		t.Error("ledger corrupted through snapshot")
	}
}

// TestConcurrentTraffic hammers the thread-safe exchange from many
// goroutines while binding auctions settle (run with -race): submits,
// cancels, balance reads, and JSON-read-path accessors all in flight.
func TestConcurrentTraffic(t *testing.T) {
	e := newTestExchange(t)
	const teams = 8
	names := make([]string, teams)
	for i := range names {
		names[i] = fmt.Sprintf("team%d", i)
		if err := e.OpenAccount(names[i]); err != nil {
			t.Fatal(err)
		}
	}
	var traders sync.WaitGroup
	stop := make(chan struct{})
	auctioneerDone := make(chan struct{})
	// One auctioneer settling continuously.
	go func() {
		defer close(auctioneerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := e.RunAuction(); err != nil && !errors.Is(err, ErrNoOpenOrders) {
				t.Errorf("RunAuction: %v", err)
				return
			}
		}
	}()
	// Eight trader goroutines submitting, cancelling, and reading.
	for g := 0; g < teams; g++ {
		traders.Add(1)
		go func(team string) {
			defer traders.Done()
			for i := 0; i < 40; i++ {
				o, err := e.SubmitProduct(team, "batch-compute", 1, []string{"r2"}, 3)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if i%4 == 0 {
					// Cancel may legitimately lose the race with the
					// settling auction.
					_ = e.Cancel(o.ID)
				}
				if _, err := e.Balance(team); err != nil {
					t.Errorf("balance: %v", err)
				}
				_ = e.OpenOrders()
				_ = e.Orders()
				_ = e.Ledger()
				_ = e.History()
				if _, err := e.Summary(); err != nil {
					t.Errorf("summary: %v", err)
				}
				if i%8 == 0 {
					// Disburse reads the quota ledger that the settling
					// auction writes; it must hold the book lock.
					if err := e.Disburse(ProportionalToQuota, 10); err != nil {
						t.Errorf("disburse: %v", err)
					}
				}
			}
		}(names[g])
	}
	// Wait for traders, then stop the auctioneer.
	traders.Wait()
	close(stop)
	<-auctioneerDone

	// Drain the book and check the books balance.
	if _, _, err := e.RunAuction(); err != nil && !errors.Is(err, ErrNoOpenOrders) {
		t.Fatal(err)
	}
	if !e.LedgerBalanced(1e-6) {
		t.Error("ledger unbalanced after concurrent traffic")
	}
	for _, o := range e.Orders() {
		if o.Status == Won && o.Auction <= 0 {
			t.Errorf("won order %d missing auction stamp", o.ID)
		}
	}
	// The incremental open-buy commitment must agree with a full scan.
	// Traffic has stopped, so the snapshot and the stripe reads are
	// consistent.
	scan := make(map[string]float64)
	for _, o := range e.Orders() {
		if o.Status == Open && o.Bid.MaxLimit() > 0 {
			scan[o.Team] += o.Bid.MaxLimit()
		}
	}
	for s := range e.accountShards {
		as := &e.accountShards[s]
		as.mu.RLock()
		for team, got := range as.openBuy {
			if math.Abs(got-scan[team]) > 1e-9 {
				t.Errorf("openBuy[%s] = %v, scan says %v", team, got, scan[team])
			}
		}
		as.mu.RUnlock()
	}
}

// TestVectorPiBidBudgetEnforced is the regression test for the budget
// check only looking at the scalar Limit: a vector-π bid's exposure is
// its largest per-bundle limit, which must be covered by the balance.
func TestVectorPiBidBudgetEnforced(t *testing.T) {
	e := newTestExchange(t) // InitialBudget 1000
	if err := e.OpenAccount("vp"); err != nil {
		t.Fatal(err)
	}
	reg := e.Registry()
	mk := func(lim1, lim2 float64) *core.Bid {
		b1 := reg.Zero()
		b1[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.CPU})] = 5
		b2 := reg.Zero()
		b2[reg.MustIndex(resource.Pool{Cluster: "r2", Dim: resource.CPU})] = 5
		return &core.Bid{Bundles: []resource.Vector{b1, b2}, BundleLimits: []float64{lim1, lim2}}
	}
	// Exposure 5000 > balance 1000 even though scalar Limit is zero.
	if _, err := e.Submit("vp", mk(5000, 200)); err == nil {
		t.Fatal("vector-pi bid over budget accepted")
	}
	// Within budget: accepted, and its exposure counts against the next.
	if _, err := e.Submit("vp", mk(700, 200)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit("vp", mk(400, 100)); err == nil {
		t.Error("aggregate vector-pi overcommit accepted")
	}
	if _, err := e.Submit("vp", mk(300, 100)); err != nil {
		t.Errorf("within-budget vector-pi bid rejected: %v", err)
	}
}

func TestSubmitVectorPiBid(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("vp"); err != nil {
		t.Fatal(err)
	}
	reg := e.Registry()
	b1 := reg.Zero()
	b1[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.CPU})] = 10
	b2 := reg.Zero()
	b2[reg.MustIndex(resource.Pool{Cluster: "r2", Dim: resource.CPU})] = 10
	bid := &core.Bid{
		User:         "vp",
		Bundles:      []resource.Vector{b1, b2},
		BundleLimits: []float64{900, 200}, // values r1 far more
	}
	if _, err := e.Submit("vp", bid); err != nil {
		t.Fatal(err)
	}
	rec, res, err := e.RunAuction()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Converged {
		t.Fatal("did not converge")
	}
	if len(res.Winners) == 0 {
		t.Fatal("vector-pi bid lost an uncontested market")
	}
}

// TestPremiumUsesWinningBundleLimit pins the vector-limit premium fix:
// γ_u must be measured against the limit of the bundle that actually won
// (Bid.LimitFor over Result.ChosenBundle), not the scalar Limit, which
// the proxy ignores when BundleLimits is set.
func TestPremiumUsesWinningBundleLimit(t *testing.T) {
	e := newTestExchange(t)
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	reg := e.Registry()
	cpu2, ok := reg.Index(resource.Pool{Cluster: "r2", Dim: resource.CPU})
	if !ok {
		t.Fatal("no r2/CPU pool")
	}
	bundle := func(qty float64) resource.Vector {
		v := reg.Zero()
		v[cpu2] = qty
		return v
	}
	// Bundle 0 carries an unaffordable limit; bundle 1 must win. The
	// scalar Limit is deliberately 0: the old premium computed
	// |0 − pay|/|pay| = 1 regardless of the real surplus.
	bid := &core.Bid{
		User:         "a/vector",
		Bundles:      []resource.Vector{bundle(4), bundle(2)},
		BundleLimits: []float64{1e-9, 500},
	}
	if _, err := e.Submit("a", bid); err != nil {
		t.Fatal(err)
	}
	rec, res, err := e.RunAuction()
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsWinner(0) {
		t.Fatal("vector-limit bid lost")
	}
	if res.ChosenBundle[0] != 1 {
		t.Fatalf("ChosenBundle = %d, want 1", res.ChosenBundle[0])
	}
	if len(rec.Premiums) != 1 {
		t.Fatalf("premiums = %v", rec.Premiums)
	}
	want := core.Premium(500, res.Payments[0])
	if got := rec.Premiums[0]; got != want {
		t.Errorf("premium = %v, want %v (winning bundle limit 500)", got, want)
	}
	if math.Abs(rec.Premiums[0]-1) < 1e-9 {
		t.Error("premium computed from the ignored scalar limit")
	}
}

// TestPreliminaryPricesNonConvergent pins the bid-window fix: a
// preliminary clock that hits MaxRounds still returns its in-progress
// prices with converged=false (plus ErrNoConvergence), instead of
// discarding them — Section V.A shows preliminary prices exactly while
// the market has not cleared yet.
func TestPreliminaryPricesNonConvergent(t *testing.T) {
	e, err := NewExchange(testFleet(t), Config{InitialBudget: 1e7, MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	// Demand far beyond the operator's sellable capacity with a limit the
	// clock cannot price out in two rounds.
	if _, err := e.SubmitProduct("a", "batch-compute", 50, []string{"r2"}, 1e6); err != nil {
		t.Fatal(err)
	}
	p, converged, err := e.PreliminaryPrices()
	if !errors.Is(err, core.ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	if converged {
		t.Error("non-clearing clock reported converged")
	}
	if len(p) != e.Registry().Len() {
		t.Fatalf("prices = %v, want the in-progress vector", p)
	}
	// Non-binding: the order is still open and nothing settled.
	if len(e.OpenOrders()) != 1 || len(e.History()) != 0 {
		t.Error("preliminary run had side effects")
	}
}
