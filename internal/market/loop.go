package market

import (
	"context"
	"errors"
	"sync"
	"time"

	"clustermarket/internal/core"
)

// Loop drives epoch-batched settlement: orders accumulate in the book
// during each epoch and are settled in one clock auction per tick. This
// is the batching pattern that lets a single auctioneer absorb high
// order arrival rates — the web tier admits orders continuously (Section
// V.A's bid collection phase) while the clock runs at a fixed cadence.
type Loop struct {
	ex    *Exchange
	epoch time.Duration

	// OnTick, when set before Run, is called after every non-idle tick
	// with the auction outcome (rec may be non-nil even when err is
	// core.ErrNoConvergence). Idle ticks (empty book) are not reported.
	OnTick func(rec *AuctionRecord, err error)

	mu    sync.Mutex
	stats LoopStats
}

// LoopStats counts what the loop has done so far.
type LoopStats struct {
	// Ticks is the number of timer fires handled.
	Ticks int
	// Auctions counts binding auctions that settled (clock converged).
	Auctions int
	// SettledOrders sums the orders settled as Won across auctions.
	SettledOrders int
	// Idle counts ticks skipped because the book was empty.
	Idle int
	// NoConvergence counts clocks that hit the round limit (batch left
	// open for the next epoch).
	NoConvergence int
	// Errors counts other auction failures.
	Errors int
}

// NewLoop builds an epoch loop over the exchange. Epoch must be
// positive.
func NewLoop(ex *Exchange, epoch time.Duration) (*Loop, error) {
	if ex == nil {
		return nil, errors.New("market: nil exchange")
	}
	if epoch <= 0 {
		return nil, errors.New("market: epoch must be positive")
	}
	return &Loop{ex: ex, epoch: epoch}, nil
}

// Run ticks until ctx is cancelled, settling the accumulated batch once
// per epoch. It returns ctx.Err(). Auction failures do not stop the
// loop; they are counted in Stats and surfaced through OnTick.
func (l *Loop) Run(ctx context.Context) error {
	t := time.NewTicker(l.epoch)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			l.Tick()
		}
	}
}

// Tick settles the current batch immediately (one epoch boundary). It
// returns the auction record and error exactly as RunAuction does,
// except that an empty book yields (nil, nil): an idle tick is not an
// error for a periodically settling market.
func (l *Loop) Tick() (*AuctionRecord, error) {
	rec, _, err := l.ex.RunAuction()

	l.mu.Lock()
	l.stats.Ticks++
	switch {
	case errors.Is(err, ErrNoOpenOrders):
		l.stats.Idle++
		l.mu.Unlock()
		return nil, nil
	case errors.Is(err, core.ErrNoConvergence):
		l.stats.NoConvergence++
	case err != nil:
		l.stats.Errors++
	default:
		l.stats.Auctions++
		l.stats.SettledOrders += rec.Settled
	}
	l.mu.Unlock()

	if l.OnTick != nil {
		l.OnTick(rec, err)
	}
	return rec, err
}

// Stats returns a snapshot of the loop counters.
func (l *Loop) Stats() LoopStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Serve runs an epoch-batched auction loop over the exchange until ctx
// is cancelled: every epoch, the orders accumulated during the epoch are
// settled in one clock auction. It returns ctx.Err() (or an immediate
// error for a non-positive epoch).
func (e *Exchange) Serve(ctx context.Context, epoch time.Duration) error {
	l, err := NewLoop(e, epoch)
	if err != nil {
		return err
	}
	return l.Run(ctx)
}
