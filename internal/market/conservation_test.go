// Conservation tests live in the external test package so they can
// consume the shared invariant kernel (internal/invariant imports
// market; an in-package test would be an import cycle). The kernel —
// not local assertion copies — is the single source of truth for what
// these tests enforce.
package market_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/invariant"
	"clustermarket/internal/market"
)

// TestLedgerConservationRandomized drives a randomized multi-epoch market
// and runs the shared invariant kernel after every settlement: balanced
// double-entry ledger (whole and per auction), non-negative balances,
// commitments agreeing with open exposure, per-auction wins within
// capacity, clearing prices at or above reserve, and consistent open
// counters.
func TestLedgerConservationRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fleet := cluster.NewFleet()
	clusters := []string{"c1", "c2", "c3"}
	for i, name := range clusters {
		c := cluster.New(name, nil)
		c.AddMachines(15, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			t.Fatal(err)
		}
		util := 0.15 + 0.3*float64(i)
		if err := fleet.FillToUtilization(rng, name, cluster.Usage{CPU: util, RAM: util, Disk: util}); err != nil {
			t.Fatal(err)
		}
	}
	ex, err := market.NewExchange(fleet, market.Config{InitialBudget: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	teams := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for _, tm := range teams {
		if err := ex.OpenAccount(tm); err != nil {
			t.Fatal(err)
		}
	}
	products := []string{"batch-compute", "serving-frontend", "bigtable-node"}

	for epoch := 0; epoch < 10; epoch++ {
		for i := 0; i < 15; i++ {
			team := teams[rng.Intn(len(teams))]
			n := 1 + rng.Intn(len(clusters))
			var cs []string
			for _, pi := range rng.Perm(len(clusters))[:n] {
				cs = append(cs, clusters[pi])
			}
			qty := 1 + rng.Float64()*2
			limit := 2 + rng.Float64()*150
			if _, err := ex.SubmitProduct(team, products[rng.Intn(len(products))], qty, cs, limit); err != nil {
				t.Fatalf("epoch %d: %v", epoch, err)
			}
		}
		if _, _, err := ex.RunAuction(); err != nil && !errors.Is(err, core.ErrNoConvergence) {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		invariant.RequireExchange(t, fmt.Sprintf("epoch %d", epoch), ex)
	}
}

// TestShardedPipelineStressConservation hammers the sharded order
// pipeline from every direction at once — submits, cancels, status
// polls, and a continuously settling auctioneer across all stripes (run
// with -race) — then runs the shared invariant kernel once traffic
// quiesces. The kernel's commitments-match-exposure check subsumes the
// old openBuy-drained assertion: after the drain no order is Open, so
// every commitment counter must be exactly zero.
func TestShardedPipelineStressConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fleet := cluster.NewFleet()
	clusters := []string{"s1", "s2", "s3", "s4"}
	for i, name := range clusters {
		c := cluster.New(name, nil)
		c.AddMachines(15, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			t.Fatal(err)
		}
		util := 0.1 + 0.2*float64(i)
		if err := fleet.FillToUtilization(rng, name, cluster.Usage{CPU: util, RAM: util, Disk: util}); err != nil {
			t.Fatal(err)
		}
	}
	ex, err := market.NewExchange(fleet, market.Config{InitialBudget: 1e6, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	teams := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for _, tm := range teams {
		if err := ex.OpenAccount(tm); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	auctioneerDone := make(chan struct{})
	go func() {
		defer close(auctioneerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := ex.RunAuction(); err != nil &&
				!errors.Is(err, market.ErrNoOpenOrders) && !errors.Is(err, core.ErrNoConvergence) {
				t.Errorf("RunAuction: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 2*len(teams); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			team := teams[g%len(teams)]
			for i := 0; i < 60; i++ {
				n := 1 + rng.Intn(len(clusters))
				var cs []string
				for _, pi := range rng.Perm(len(clusters))[:n] {
					cs = append(cs, clusters[pi])
				}
				o, err := ex.SubmitProduct(team, "batch-compute", 1+rng.Float64()*2, cs, 2+rng.Float64()*60)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				switch i % 4 {
				case 0:
					// Cancel may legitimately lose the race with the clock.
					_ = ex.Cancel(o.ID)
				case 1:
					if got, err := ex.Order(o.ID); err != nil || got.ID != o.ID {
						t.Errorf("order poll: %+v, %v", got, err)
						return
					}
				case 2:
					_ = ex.OpenOrderCount()
					if _, err := ex.Balance(team); err != nil {
						t.Errorf("balance: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-auctioneerDone
	// Drain the book so every order reaches a terminal state.
	for i := 0; ex.OpenOrderCount() > 0; i++ {
		if i >= 100 {
			t.Fatal("book did not drain")
		}
		if _, _, err := ex.RunAuction(); err != nil &&
			!errors.Is(err, market.ErrNoOpenOrders) && !errors.Is(err, core.ErrNoConvergence) {
			t.Fatal(err)
		}
	}

	invariant.RequireExchange(t, "after sharded stress", ex)
}
