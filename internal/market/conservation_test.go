package market

import (
	"errors"
	"math/rand"
	"testing"

	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/resource"
)

// TestLedgerConservationRandomized drives a randomized multi-epoch market
// and asserts, after every settlement, the invariants the exchange's
// books must never violate: the double-entry ledger sums to zero, no team
// balance goes negative, and the quota won in any single auction never
// exceeds the fleet's capacity in any pool.
func TestLedgerConservationRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fleet := cluster.NewFleet()
	clusters := []string{"c1", "c2", "c3"}
	for i, name := range clusters {
		c := cluster.New(name, nil)
		c.AddMachines(15, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			t.Fatal(err)
		}
		util := 0.15 + 0.3*float64(i)
		if err := fleet.FillToUtilization(rng, name, cluster.Usage{CPU: util, RAM: util, Disk: util}); err != nil {
			t.Fatal(err)
		}
	}
	ex, err := NewExchange(fleet, Config{InitialBudget: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	teams := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for _, tm := range teams {
		if err := ex.OpenAccount(tm); err != nil {
			t.Fatal(err)
		}
	}
	products := []string{"batch-compute", "serving-frontend", "bigtable-node"}

	for epoch := 0; epoch < 10; epoch++ {
		for i := 0; i < 15; i++ {
			team := teams[rng.Intn(len(teams))]
			n := 1 + rng.Intn(len(clusters))
			var cs []string
			for _, pi := range rng.Perm(len(clusters))[:n] {
				cs = append(cs, clusters[pi])
			}
			qty := 1 + rng.Float64()*2
			limit := 2 + rng.Float64()*150
			if _, err := ex.SubmitProduct(team, products[rng.Intn(len(products))], qty, cs, limit); err != nil {
				t.Fatalf("epoch %d: %v", epoch, err)
			}
		}
		if _, _, err := ex.RunAuction(); err != nil && !errors.Is(err, core.ErrNoConvergence) {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if !ex.LedgerBalanced(1e-6) {
			t.Fatalf("epoch %d: ledger unbalanced", epoch)
		}
		for _, team := range ex.Teams() {
			bal, err := ex.Balance(team)
			if err != nil {
				t.Fatal(err)
			}
			if bal < -1e-6 {
				t.Fatalf("epoch %d: %s balance %g < 0", epoch, team, bal)
			}
		}
		assertAuctionWinsWithinCapacity(t, ex, epoch)
	}
}

// assertAuctionWinsWithinCapacity sums the won allocations per (auction,
// pool) and checks no auction sold more than the fleet's capacity.
func assertAuctionWinsWithinCapacity(t *testing.T, ex *Exchange, epoch int) {
	t.Helper()
	reg := ex.Registry()
	cap := ex.Fleet().CapacityVector(reg)
	won := make(map[int]resource.Vector)
	for _, o := range ex.Orders() {
		if o.Status != Won {
			continue
		}
		v, ok := won[o.Auction]
		if !ok {
			v = reg.Zero()
			won[o.Auction] = v
		}
		for i, q := range o.Allocation {
			if q > 0 {
				v[i] += q
			}
		}
	}
	for auction, v := range won {
		for i, q := range v {
			if q > cap[i]+1e-6 {
				t.Fatalf("epoch %d: auction %d won %g of %s, capacity %g",
					epoch, auction, q, reg.Pool(i), cap[i])
			}
		}
	}
}
