package market

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/resource"
)

// TestLedgerConservationRandomized drives a randomized multi-epoch market
// and asserts, after every settlement, the invariants the exchange's
// books must never violate: the double-entry ledger sums to zero, no team
// balance goes negative, and the quota won in any single auction never
// exceeds the fleet's capacity in any pool.
func TestLedgerConservationRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fleet := cluster.NewFleet()
	clusters := []string{"c1", "c2", "c3"}
	for i, name := range clusters {
		c := cluster.New(name, nil)
		c.AddMachines(15, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			t.Fatal(err)
		}
		util := 0.15 + 0.3*float64(i)
		if err := fleet.FillToUtilization(rng, name, cluster.Usage{CPU: util, RAM: util, Disk: util}); err != nil {
			t.Fatal(err)
		}
	}
	ex, err := NewExchange(fleet, Config{InitialBudget: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	teams := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for _, tm := range teams {
		if err := ex.OpenAccount(tm); err != nil {
			t.Fatal(err)
		}
	}
	products := []string{"batch-compute", "serving-frontend", "bigtable-node"}

	for epoch := 0; epoch < 10; epoch++ {
		for i := 0; i < 15; i++ {
			team := teams[rng.Intn(len(teams))]
			n := 1 + rng.Intn(len(clusters))
			var cs []string
			for _, pi := range rng.Perm(len(clusters))[:n] {
				cs = append(cs, clusters[pi])
			}
			qty := 1 + rng.Float64()*2
			limit := 2 + rng.Float64()*150
			if _, err := ex.SubmitProduct(team, products[rng.Intn(len(products))], qty, cs, limit); err != nil {
				t.Fatalf("epoch %d: %v", epoch, err)
			}
		}
		if _, _, err := ex.RunAuction(); err != nil && !errors.Is(err, core.ErrNoConvergence) {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if !ex.LedgerBalanced(1e-6) {
			t.Fatalf("epoch %d: ledger unbalanced", epoch)
		}
		for _, team := range ex.Teams() {
			bal, err := ex.Balance(team)
			if err != nil {
				t.Fatal(err)
			}
			if bal < -1e-6 {
				t.Fatalf("epoch %d: %s balance %g < 0", epoch, team, bal)
			}
		}
		assertAuctionWinsWithinCapacity(t, ex, epoch)
	}
}

// TestShardedPipelineStressConservation hammers the sharded order
// pipeline from every direction at once — submits, cancels, status
// polls, and a continuously settling auctioneer across all stripes (run
// with -race) — then asserts the invariants the striped books must still
// uphold once traffic quiesces: the double-entry ledger sums to zero, no
// team balance is negative, the open-order counters agree with a full
// scan, and the incremental budget commitments agree with the book.
func TestShardedPipelineStressConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fleet := cluster.NewFleet()
	clusters := []string{"s1", "s2", "s3", "s4"}
	for i, name := range clusters {
		c := cluster.New(name, nil)
		c.AddMachines(15, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			t.Fatal(err)
		}
		util := 0.1 + 0.2*float64(i)
		if err := fleet.FillToUtilization(rng, name, cluster.Usage{CPU: util, RAM: util, Disk: util}); err != nil {
			t.Fatal(err)
		}
	}
	ex, err := NewExchange(fleet, Config{InitialBudget: 1e6, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	teams := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for _, tm := range teams {
		if err := ex.OpenAccount(tm); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	auctioneerDone := make(chan struct{})
	go func() {
		defer close(auctioneerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := ex.RunAuction(); err != nil &&
				!errors.Is(err, ErrNoOpenOrders) && !errors.Is(err, core.ErrNoConvergence) {
				t.Errorf("RunAuction: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 2*len(teams); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			team := teams[g%len(teams)]
			for i := 0; i < 60; i++ {
				n := 1 + rng.Intn(len(clusters))
				var cs []string
				for _, pi := range rng.Perm(len(clusters))[:n] {
					cs = append(cs, clusters[pi])
				}
				o, err := ex.SubmitProduct(team, "batch-compute", 1+rng.Float64()*2, cs, 2+rng.Float64()*60)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				switch i % 4 {
				case 0:
					// Cancel may legitimately lose the race with the clock.
					_ = ex.Cancel(o.ID)
				case 1:
					if got, err := ex.Order(o.ID); err != nil || got.ID != o.ID {
						t.Errorf("order poll: %+v, %v", got, err)
						return
					}
				case 2:
					_ = ex.OpenOrderCount()
					if _, err := ex.Balance(team); err != nil {
						t.Errorf("balance: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-auctioneerDone
	// Drain the book so every order reaches a terminal state.
	for i := 0; ex.OpenOrderCount() > 0; i++ {
		if i >= 100 {
			t.Fatal("book did not drain")
		}
		if _, _, err := ex.RunAuction(); err != nil &&
			!errors.Is(err, ErrNoOpenOrders) && !errors.Is(err, core.ErrNoConvergence) {
			t.Fatal(err)
		}
	}

	if !ex.LedgerBalanced(1e-6) {
		t.Error("ledger unbalanced after sharded stress")
	}
	for _, team := range ex.Teams() {
		bal, err := ex.Balance(team)
		if err != nil {
			t.Fatal(err)
		}
		if bal < -1e-6 {
			t.Errorf("%s balance %g < 0", team, bal)
		}
	}
	// Per-stripe open counters must agree with a status scan, and the
	// budget commitments with the surviving open exposure (none remain
	// after the drain).
	openScan := 0
	for _, o := range ex.Orders() {
		if o.Status == Open {
			openScan++
		}
	}
	if got := ex.OpenOrderCount(); got != openScan {
		t.Errorf("OpenOrderCount = %d, scan says %d", got, openScan)
	}
	for s := range ex.accountShards {
		as := &ex.accountShards[s]
		as.mu.RLock()
		for team, got := range as.openBuy {
			if got < -1e-9 || got > 1e-9 {
				t.Errorf("openBuy[%s] = %v after drain, want 0", team, got)
			}
		}
		as.mu.RUnlock()
	}
	assertAuctionWinsWithinCapacity(t, ex, -1)
}

// assertAuctionWinsWithinCapacity sums the won allocations per (auction,
// pool) and checks no auction sold more than the fleet's capacity.
func assertAuctionWinsWithinCapacity(t *testing.T, ex *Exchange, epoch int) {
	t.Helper()
	reg := ex.Registry()
	cap := ex.Fleet().CapacityVector(reg)
	won := make(map[int]resource.Vector)
	for _, o := range ex.Orders() {
		if o.Status != Won {
			continue
		}
		v, ok := won[o.Auction]
		if !ok {
			v = reg.Zero()
			won[o.Auction] = v
		}
		for i, q := range o.Allocation {
			if q > 0 {
				v[i] += q
			}
		}
	}
	for auction, v := range won {
		for i, q := range v {
			if q > cap[i]+1e-6 {
				t.Fatalf("epoch %d: auction %d won %g of %s, capacity %g",
					epoch, auction, q, reg.Pool(i), cap[i])
			}
		}
	}
}
