package market

import "testing"

// BenchmarkEpochLoopDegradedCheck pins the per-submit price of the
// fault seam: rejectIfDegraded is one atomic load and a predictable
// branch on the epoch-loop hot path, and must stay at 0 allocs/op
// (marketlint's allocfree contract enforces the allocation bound
// statically; this benchmark records the cycle cost in the baselines).
func BenchmarkEpochLoopDegradedCheck(b *testing.B) {
	b.ReportAllocs()
	var e Exchange
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.rejectIfDegraded(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRejectIfDegradedZeroAlloc asserts the 0 allocs/op bound directly,
// so a regression fails the test suite rather than only shifting a
// benchmark number.
func TestRejectIfDegradedZeroAlloc(t *testing.T) {
	var e Exchange
	if n := testing.AllocsPerRun(100, func() { _ = e.rejectIfDegraded() }); n != 0 {
		t.Errorf("rejectIfDegraded allocates %v per op, want 0", n)
	}
}
