package market

import (
	"sort"
	"sync/atomic"

	"clustermarket/internal/journal"
	"clustermarket/internal/telemetry"
)

// exchangeMetrics is the always-on atomic counter block the /metrics
// exposition reads. Increments ride the live paths that already hold
// the relevant locks (or need none — these are single atomic adds);
// replay never increments, so after crash recovery the counters
// restart from zero like any restarted Prometheus target.
type exchangeMetrics struct {
	submitted     atomic.Uint64
	rejectedCount atomic.Uint64
	cancelled     atomic.Uint64
	won           atomic.Uint64
	lost          atomic.Uint64
	unsettled     atomic.Uint64
	auctions      atomic.Uint64
	converged     atomic.Uint64
	noConvergence atomic.Uint64
	rounds        atomic.Uint64
}

// rejected counts one rejected submission and passes the error
// through, so rejection sites stay one-line.
func (e *Exchange) rejected(err error) error {
	e.metrics.rejectedCount.Add(1)
	return err
}

// Metrics is a point-in-time copy of the exchange's operational
// counters.
type Metrics struct {
	// Order intake.
	Submitted, Rejected, Cancelled uint64
	// Settlement outcomes (orders).
	Won, Lost, Unsettled uint64
	// Clock auctions: total runs, convergence split, and the cumulative
	// round count (rate(Rounds)/rate(Auctions) is the mean clock length).
	Auctions, Converged, NoConvergence, Rounds uint64
}

// Metrics snapshots the counters. Each field is read atomically; the
// set is not one consistent cut, which is exactly a Prometheus
// scrape's contract.
func (e *Exchange) Metrics() Metrics {
	return Metrics{
		Submitted:     e.metrics.submitted.Load(),
		Rejected:      e.metrics.rejectedCount.Load(),
		Cancelled:     e.metrics.cancelled.Load(),
		Won:           e.metrics.won.Load(),
		Lost:          e.metrics.lost.Load(),
		Unsettled:     e.metrics.unsettled.Load(),
		Auctions:      e.metrics.auctions.Load(),
		Converged:     e.metrics.converged.Load(),
		NoConvergence: e.metrics.noConvergence.Load(),
		Rounds:        e.metrics.rounds.Load(),
	}
}

// OpenOrdersPerStripe returns each order stripe's open-order count —
// the stripe-balance view /metrics exposes so a hot stripe (one
// stripe's lock contended far above its peers) is visible from the
// outside.
func (e *Exchange) OpenOrdersPerStripe() []int {
	out := make([]int, len(e.orderShards))
	for s := range e.orderShards {
		os := &e.orderShards[s]
		os.mu.RLock()
		out[s] = os.openCount
		os.mu.RUnlock()
	}
	return out
}

// CommitmentsPerStripe returns each account stripe's total open
// buy-side budget commitment.
func (e *Exchange) CommitmentsPerStripe() []float64 {
	out := make([]float64, len(e.accountShards))
	for s := range e.accountShards {
		as := &e.accountShards[s]
		as.mu.RLock()
		teams := make([]string, 0, len(as.openBuy))
		for team := range as.openBuy {
			teams = append(teams, team)
		}
		sort.Strings(teams)
		var sum float64
		for _, team := range teams {
			sum += as.openBuy[team]
		}
		out[s] = sum
		as.mu.RUnlock()
	}
	return out
}

// Telemetry returns the firehose the exchange publishes to, or nil.
func (e *Exchange) Telemetry() *telemetry.Firehose { return e.fire }

// Journal returns the attached journal, or nil. The /metrics exposition
// reads its counters; the journal is set before the exchange is shared
// and never swapped live, so the unlocked read is safe.
func (e *Exchange) Journal() *journal.Journal { return e.journal }
