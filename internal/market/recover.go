package market

import (
	"encoding/json"
	"errors"
	"fmt"

	"clustermarket/internal/cluster"
	"clustermarket/internal/journal"
)

// Recover rebuilds an exchange from a journal recovery: it constructs a
// fresh exchange over the caller's rebuilt fleet, loads the snapshot
// (if any), replays the WAL tail through the apply layer, and attaches
// cfg.Journal so new mutations are journaled again. The fleet must be
// in its as-built state — the snapshot's fleet delta and the replayed
// placement events reproduce every exchange-driven change on top.
//
// Recover performs structural checks only (events must apply cleanly);
// callers should run invariant.CheckExchange on the result before
// serving — the market package cannot, as the invariant kernel imports
// this package.
func Recover(fleet *cluster.Fleet, cfg Config, rec *journal.Recovery) (*Exchange, error) {
	if rec == nil {
		return nil, errors.New("market: nil recovery")
	}
	// Detach the journal during replay: applying a recovered event must
	// not re-append it.
	j := cfg.Journal
	cfg.Journal = nil
	e, err := NewExchange(fleet, cfg)
	if err != nil {
		return nil, err
	}
	if len(rec.Snapshot) > 0 {
		if err := e.restoreState(rec.Snapshot); err != nil {
			return nil, fmt.Errorf("market: restore snapshot (seq %d): %w", rec.SnapshotSeq, err)
		}
	}
	for i, raw := range rec.Records {
		seq := rec.SnapshotSeq + uint64(i) + 1
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("market: decode journal record seq %d: %w", seq, err)
		}
		if err := e.applyEvent(&ev); err != nil {
			return nil, fmt.Errorf("market: replay seq %d (%s): %w", seq, ev.Kind, err)
		}
	}
	e.journal = j
	return e, nil
}
