package market

import (
	"fmt"
	"testing"
)

// TestShardedSerialIDsSequential pins the sharded book's compatibility
// contract: serial traffic sees exactly the unsharded behavior — IDs
// assigned 0, 1, 2, … in submission order, Orders() in that order, and
// O(1) lookup by ID across stripes.
func TestShardedSerialIDsSequential(t *testing.T) {
	e, err := NewExchange(testFleet(t), Config{InitialBudget: 1e6, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", e.Shards())
	}
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	const n = 11 // not a multiple of the stripe count
	for i := 0; i < n; i++ {
		o, err := e.SubmitProduct("a", "batch-compute", 1, []string{"r2"}, 5)
		if err != nil {
			t.Fatal(err)
		}
		if o.ID != i {
			t.Fatalf("submit %d got ID %d", i, o.ID)
		}
	}
	orders := e.Orders()
	if len(orders) != n {
		t.Fatalf("Orders() len = %d", len(orders))
	}
	for i, o := range orders {
		if o.ID != i {
			t.Fatalf("Orders()[%d].ID = %d", i, o.ID)
		}
	}
	for i := 0; i < n; i++ {
		o, err := e.Order(i)
		if err != nil || o.ID != i {
			t.Fatalf("Order(%d) = %+v, %v", i, o, err)
		}
	}
	if _, err := e.Order(n); err == nil {
		t.Error("lookup past the book succeeded")
	}
	if _, err := e.Order(-1); err == nil {
		t.Error("negative ID lookup succeeded")
	}
	if got := e.OpenOrderCount(); got != n {
		t.Fatalf("OpenOrderCount = %d, want %d", got, n)
	}
	// Cancel one order per stripe; the counters must track exactly.
	for i := 0; i < 4; i++ {
		if err := e.Cancel(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.OpenOrderCount(); got != n-4 {
		t.Fatalf("OpenOrderCount after cancels = %d, want %d", got, n-4)
	}
	if got := len(e.OpenOrders()); got != n-4 {
		t.Fatalf("OpenOrders after cancels = %d, want %d", got, n-4)
	}
}

// TestTailAccessors pins the bounded read paths: OrdersTail, LedgerTail,
// and HistoryTail return the most recent entries in order, and degenerate
// limits behave.
func TestTailAccessors(t *testing.T) {
	e, err := NewExchange(testFleet(t), Config{InitialBudget: 1e6, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.SubmitProduct("a", "batch-compute", 1, []string{"r2"}, 5); err != nil {
			t.Fatal(err)
		}
	}
	tail := e.OrdersTail(3)
	if len(tail) != 3 || tail[0].ID != 7 || tail[1].ID != 8 || tail[2].ID != 9 {
		ids := make([]int, len(tail))
		for i, o := range tail {
			ids[i] = o.ID
		}
		t.Fatalf("OrdersTail(3) IDs = %v, want [7 8 9]", ids)
	}
	if got := e.OrdersTail(100); len(got) != 10 {
		t.Fatalf("OrdersTail(100) len = %d", len(got))
	}
	if e.OrdersTail(0) != nil || e.OrdersTail(-1) != nil {
		t.Error("non-positive OrdersTail limit returned entries")
	}

	for i := 0; i < 3; i++ {
		if _, _, err := e.RunAuction(); err != nil {
			t.Fatal(err)
		}
		if _, err := e.SubmitProduct("a", "batch-compute", 1, []string{"r2"}, 5); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.HistoryTail(2); len(got) != 2 || got[0].Number != 2 || got[1].Number != 3 {
		t.Fatalf("HistoryTail(2) = %+v", got)
	}
	full := e.Ledger()
	if len(full) == 0 {
		t.Fatal("no ledger entries")
	}
	lt := e.LedgerTail(2)
	if len(lt) != 2 || lt[1].Seq != full[len(full)-1].Seq || lt[0].Seq != full[len(full)-2].Seq {
		t.Fatalf("LedgerTail(2) = %+v, full tail = %+v", lt, full[len(full)-2:])
	}
	if e.HistoryTail(0) != nil || e.LedgerTail(0) != nil {
		t.Error("non-positive tail limit returned entries")
	}
}

// TestShardsDefaultApplied pins the default stripe count.
func TestShardsDefaultApplied(t *testing.T) {
	e := newTestExchange(t)
	if e.Shards() != DefaultShards {
		t.Fatalf("default Shards = %d, want %d", e.Shards(), DefaultShards)
	}
}

// TestOrdersSortedAcrossShards pins the cross-stripe merge: a book spread
// over many stripes still reads back in global ID order after a mix of
// settlements and new submissions.
func TestOrdersSortedAcrossShards(t *testing.T) {
	e, err := NewExchange(testFleet(t), Config{InitialBudget: 1e9, Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.OpenAccount(fmt.Sprintf("team%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 7; i++ {
			team := fmt.Sprintf("team%d", i%3)
			if _, err := e.SubmitProduct(team, "batch-compute", 1, []string{"r2"}, 5); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := e.RunAuction(); err != nil {
			t.Fatal(err)
		}
	}
	prev := -1
	for _, o := range e.Orders() {
		if o.ID <= prev {
			t.Fatalf("Orders() out of ID order: %d after %d", o.ID, prev)
		}
		prev = o.ID
	}
}
