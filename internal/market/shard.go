package market

import (
	"sort"
	"sync"
)

// DefaultShards is the stripe count an Exchange uses when Config.Shards
// is zero. Eight stripes keep lock contention negligible up to the
// mid-size multicore boxes the web tier runs on while costing nothing on
// small machines; larger fleets can raise Config.Shards.
const DefaultShards = 8

// orderShard is one stripe of the order book. Orders are striped by ID:
// the order with ID k lives in shard k % nshards at slot k / nshards, so
// lookups are O(1) and submits in different stripes never contend.
type orderShard struct {
	mu sync.RWMutex
	// orders[j] holds the order with ID j*nshards + shardIndex. IDs are
	// allocated under mu from the append position, so slots are dense and
	// never nil.
	orders []*Order
	// open is the stripe's claim list: a lazily compacted superset of the
	// stripe's Status==Open orders, in ID order. Submit appends; cancels
	// and settlements leave their terminal orders in place to be dropped
	// by the next claimBatch compaction — so neither path pays a scan.
	open []*Order
	// openCount is the exact number of Status==Open orders in the stripe,
	// maintained on every status transition so OpenOrderCount is O(shards)
	// instead of a book scan.
	openCount int
}

// accountShard is one stripe of the account book, striped by team name.
type accountShard struct {
	mu       sync.RWMutex
	balances map[string]float64
	// openBuy is each team's summed positive limits over open orders —
	// maintained incrementally so Submit's budget check is O(1).
	openBuy map[string]float64
}

// orderShardFor returns the stripe holding order id, or nil for a
// negative id.
//
//marketlint:allocfree
func (e *Exchange) orderShardFor(id int) *orderShard {
	if id < 0 {
		return nil
	}
	return &e.orderShards[id%len(e.orderShards)]
}

// accountShardFor returns the stripe holding the team's account (FNV-1a
// over the name).
//
//marketlint:allocfree
func (e *Exchange) accountShardFor(team string) *accountShard {
	h := uint32(2166136261)
	for i := 0; i < len(team); i++ {
		h = (h ^ uint32(team[i])) * 16777619
	}
	return &e.accountShards[h%uint32(len(e.accountShards))]
}

// liveOrder returns the live (internal) order with the given id, or nil.
func (e *Exchange) liveOrder(id int) *Order {
	os := e.orderShardFor(id)
	if os == nil {
		return nil
	}
	j := id / len(e.orderShards)
	os.mu.RLock()
	defer os.mu.RUnlock()
	if j >= len(os.orders) {
		return nil
	}
	return os.orders[j]
}

// sortOrdersByID puts a cross-shard gather back into global ID order —
// for serial traffic, exactly the submission order the unsharded book
// used, which keeps batch assembly and display paths deterministic.
func sortOrdersByID(out []*Order) {
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
}
