package market

import (
	"errors"
	"fmt"

	"clustermarket/internal/cluster"
)

// DisbursementPolicy decides how a pool of new budget dollars is split
// among team accounts. Section IV.A notes that the bounded-ratio property
// of the reserve curves "is strongly related to the strategy used for
// disbursement of initial budget dollars among bidders" but leaves the
// strategy itself out of scope; these are the three obvious candidates.
type DisbursementPolicy int

const (
	// EqualShares splits the pool evenly across teams.
	EqualShares DisbursementPolicy = iota
	// ProportionalToQuota splits in proportion to each team's current
	// granted quota (incumbency weighting: teams holding more resources
	// receive more budget, keeping the endowment roughly proportional to
	// footprint).
	ProportionalToQuota
	// ProportionalToUsage splits in proportion to each team's live
	// scheduled usage in the fleet.
	ProportionalToUsage
)

func (p DisbursementPolicy) String() string {
	switch p {
	case EqualShares:
		return "equal-shares"
	case ProportionalToQuota:
		return "proportional-to-quota"
	case ProportionalToUsage:
		return "proportional-to-usage"
	default:
		return fmt.Sprintf("DisbursementPolicy(%d)", int(p))
	}
}

// usageWeight reduces a Usage to a scalar for proportional splits, using
// the exchange's fixed-price cost weights so a CPU core and a GB of RAM
// are commensurable.
func usageWeight(u cluster.Usage) float64 {
	return u.CPU*1.0 + u.RAM*0.25 + u.Disk*2.0
}

// Disburse credits `total` new budget dollars across the non-operator
// accounts per the policy. Weights that sum to zero (for instance, no
// quota held anywhere under ProportionalToQuota) fall back to equal
// shares. Every credit lands in the billing ledger against the operator
// account, so the ledger stays balanced.
func (e *Exchange) Disburse(policy DisbursementPolicy, total float64) error {
	if total <= 0 {
		return errors.New("market: disbursement must be positive")
	}
	// Exclude the settlement phase only: the weight scan reads the quota
	// ledger, which RunAuction's settlement writes. Taking settleMu (not
	// auctionMu) means a disbursement waits out a settlement, not an
	// entire clock run.
	e.settleMu.Lock()
	defer e.settleMu.Unlock()
	teams := e.Teams()
	if len(teams) == 0 {
		return errors.New("market: no team accounts")
	}

	weights := make([]float64, len(teams))
	var sum float64
	for i, team := range teams {
		switch policy {
		case ProportionalToQuota:
			for _, cl := range e.fleet.ClusterNames() {
				weights[i] += usageWeight(e.fleet.Quotas().Granted(team, cl))
			}
		case ProportionalToUsage:
			for _, cl := range e.fleet.ClusterNames() {
				if c := e.fleet.Cluster(cl); c != nil {
					weights[i] += usageWeight(c.TeamUsage()[team])
				}
			}
		case EqualShares:
			weights[i] = 1
		default:
			return fmt.Errorf("market: unknown disbursement policy %v", policy)
		}
		sum += weights[i]
	}
	if sum == 0 {
		for i := range weights {
			weights[i] = 1
		}
		sum = float64(len(weights))
	}

	// The event records the *resolved* per-team credits — not the policy
	// inputs — so replay never re-reads quotas or usage.
	credits := make([]Credit, 0, len(teams))
	for i, team := range teams {
		amount := total * weights[i] / sum
		if amount == 0 {
			continue
		}
		credits = append(credits, Credit{Team: team, Amount: amount})
	}
	ev := &Event{Kind: EvDisbursed, Policy: policy.String(), Auction: e.AuctionCount(), Credits: credits}
	if err := e.emitEvent(ev); err != nil {
		return err
	}
	return e.applyDisbursed(ev)
}
