package market_test

// Crash-recovery round trip at the market layer: a journaled exchange
// driven through the full mutation surface (accounts, submits, cancels,
// auctions — converged and failed —, disbursements, credits, placements,
// evictions) is killed without warning and recovered; its observable
// state must match an identical in-memory exchange bit for bit, and a
// continued run must stay in lockstep.

import (
	"path/filepath"
	"reflect"
	"testing"

	"clustermarket/internal/cluster"
	"clustermarket/internal/invariant"
	"clustermarket/internal/journal"
	"clustermarket/internal/market"
)

// recoverFleet builds a small two-cluster fleet with a fixed background
// load — fully deterministic, so the recovery path can rebuild it.
func recoverFleet(t *testing.T) *cluster.Fleet {
	t.Helper()
	f := cluster.NewFleet()
	for _, name := range []string{"alpha", "beta"} {
		c := cluster.New(name, nil)
		c.UnitCost = cluster.Usage{CPU: 1, RAM: 0.25, Disk: 2}
		c.AddMachines(4, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := f.AddCluster(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.ScheduleTask("background", "alpha", cluster.Usage{CPU: 20, RAM: 60, Disk: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ScheduleTask("background", "beta", cluster.Usage{CPU: 8, RAM: 30, Disk: 4}); err != nil {
		t.Fatal(err)
	}
	return f
}

// driveMarket exercises every mutation path. Both the reference and the
// journaled exchange run exactly this script.
func driveMarket(t *testing.T, e *market.Exchange) {
	t.Helper()
	for _, team := range []string{"ads", "maps", "search"} {
		if err := e.OpenAccount(team); err != nil {
			t.Fatal(err)
		}
	}
	submit := func(team string, qty float64, clusters []string, limit float64) *market.Order {
		o, err := e.SubmitProduct(team, "batch-compute", qty, clusters, limit)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	submit("ads", 2, []string{"alpha"}, 600)
	submit("maps", 1, []string{"alpha", "beta"}, 400)
	victim := submit("search", 1, []string{"beta"}, 300)
	if err := e.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.RunAuction(); err != nil {
		t.Fatalf("auction 1: %v", err)
	}
	// Place every winner and evict the first placed task.
	var placed []market.PlacedTask
	for _, o := range e.Orders() {
		if o.Status != market.Won {
			continue
		}
		tasks, err := e.PlaceOrder(o.ID)
		if err != nil {
			t.Fatal(err)
		}
		placed = append(placed, tasks...)
	}
	if len(placed) == 0 {
		t.Fatal("no tasks placed; test script needs a winner")
	}
	if err := e.EvictTask(placed[0].Cluster, placed[0].TaskID); err != nil {
		t.Fatal(err)
	}
	if err := e.Disburse(market.ProportionalToQuota, 5000); err != nil {
		t.Fatal(err)
	}
	if err := e.Credit("maps", 250, "goodwill refund"); err != nil {
		t.Fatal(err)
	}
	submit("search", 1, []string{"beta"}, 350)
}

// driveMarketMore continues the script past the crash point.
func driveMarketMore(t *testing.T, e *market.Exchange) {
	t.Helper()
	if _, err := e.SubmitProduct("ads", "batch-compute", 1, []string{"beta"}, 500); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.RunAuction(); err != nil {
		t.Fatalf("auction 2: %v", err)
	}
	if err := e.Disburse(market.EqualShares, 1000); err != nil {
		t.Fatal(err)
	}
}

// marketImage gathers every observable surface for comparison.
func marketImage(t *testing.T, e *market.Exchange) map[string]any {
	t.Helper()
	balances := map[string]float64{}
	for _, team := range append(e.Teams(), market.OperatorAccount) {
		b, err := e.Balance(team)
		if err != nil {
			t.Fatal(err)
		}
		balances[team] = b
	}
	reg := e.Registry()
	return map[string]any{
		"orders":      e.Orders(),
		"ledger":      e.Ledger(),
		"history":     e.History(),
		"balances":    balances,
		"commitments": e.BuyCommitments(),
		"placed":      e.PlacedTasks(),
		"openCount":   e.OpenOrderCount(),
		"util":        e.Fleet().UtilizationVector(reg),
		"free":        e.Fleet().FreeVector(reg),
		"quotaTeams":  e.Fleet().Quotas().Grants(),
		"taskSeq":     e.Fleet().TaskSeq(),
	}
}

func marketCfg(j *journal.Journal, snapEvery int) market.Config {
	return market.Config{InitialBudget: 10000, MaxRounds: 4000, Journal: j, SnapshotEvery: snapEvery}
}

func testCrashRecoverMarket(t *testing.T, snapEvery int, snapshotMidway bool) {
	// Reference: pure in-memory run.
	ref, err := market.NewExchange(recoverFleet(t), marketCfg(nil, snapEvery))
	if err != nil {
		t.Fatal(err)
	}
	driveMarket(t, ref)

	// Journaled run, killed without warning.
	dir := filepath.Join(t.TempDir(), "wal")
	j, rec, err := journal.Open(dir, journal.Options{FsyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatalf("fresh dir reported prior state: %+v", rec)
	}
	durable, err := market.NewExchange(recoverFleet(t), marketCfg(j, snapEvery))
	if err != nil {
		t.Fatal(err)
	}
	driveMarket(t, durable)
	if snapshotMidway {
		if err := durable.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	j.Crash()

	// Resurrect.
	j2, rec2, err := journal.Open(dir, journal.Options{FsyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec2.Empty() {
		t.Fatal("journal lost the run")
	}
	if snapshotMidway && rec2.SnapshotSeq == 0 {
		t.Fatal("snapshot was not durable")
	}
	cfg := marketCfg(j2, snapEvery)
	recovered, err := market.Recover(recoverFleet(t), cfg, rec2)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if vs := invariant.CheckExchange(recovered); len(vs) > 0 {
		t.Fatalf("recovered exchange violates invariants: %v", vs)
	}

	if want, got := marketImage(t, ref), marketImage(t, recovered); !reflect.DeepEqual(want, got) {
		for k := range want {
			if !reflect.DeepEqual(want[k], got[k]) {
				t.Errorf("%s diverged after recovery:\n in-memory: %+v\n recovered: %+v", k, want[k], got[k])
			}
		}
		t.FailNow()
	}

	// The recovered exchange must continue in lockstep.
	driveMarketMore(t, ref)
	driveMarketMore(t, recovered)
	if want, got := marketImage(t, ref), marketImage(t, recovered); !reflect.DeepEqual(want, got) {
		t.Fatal("continued runs diverged after recovery")
	}
	if vs := invariant.CheckExchange(recovered); len(vs) > 0 {
		t.Fatalf("continued recovered exchange violates invariants: %v", vs)
	}
}

func TestCrashRecoverReplaysFullWAL(t *testing.T)  { testCrashRecoverMarket(t, -1, false) }
func TestCrashRecoverFromSnapshot(t *testing.T)    { testCrashRecoverMarket(t, -1, true) }
func TestCrashRecoverSnapshotCadence(t *testing.T) { testCrashRecoverMarket(t, 1, false) }

// TestJournalNilIsInert pins the zero-cost contract: an exchange without
// a journal behaves exactly as before and Snapshot is a no-op.
func TestJournalNilIsInert(t *testing.T) {
	e, err := market.NewExchange(recoverFleet(t), marketCfg(nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Snapshot(); err != nil {
		t.Fatalf("nil-journal Snapshot: %v", err)
	}
	driveMarket(t, e)
	if vs := invariant.CheckExchange(e); len(vs) > 0 {
		t.Fatalf("invariants: %v", vs)
	}
}
