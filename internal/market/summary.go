package market

import (
	"clustermarket/internal/cluster"
	"clustermarket/internal/resource"
)

// ClusterSummary is one row of the "market summary" page (Figure 3): the
// cluster's open interest and current prices per dimension.
type ClusterSummary struct {
	Cluster string
	// Bids and Offers count open orders touching the cluster by side.
	Bids, Offers int
	// Price holds the latest settlement (or reserve) price per dimension.
	Price cluster.Usage
	// Utilization is the cluster's live ψ per dimension.
	Utilization cluster.Usage
}

// Summary builds the market summary rows in cluster registration order.
// Prices come from the most recent auction, falling back to current
// reserve prices before the first auction.
func (e *Exchange) Summary() ([]ClusterSummary, error) {
	// Snapshot book state under one read lock, then price and render
	// without holding it.
	e.mu.RLock()
	prices := e.lastClearingPricesLocked()
	// Count open interest per cluster.
	bidCount := make(map[string]int)
	offerCount := make(map[string]int)
	for _, o := range e.openOrdersLocked() {
		side := o.Side()
		touched := make(map[string]bool)
		for _, b := range o.Bid.Bundles {
			for i, q := range b {
				if q == 0 {
					continue
				}
				touched[e.reg.Pool(i).Cluster] = true
			}
		}
		for c := range touched {
			switch {
			case side > 0:
				bidCount[c]++
			case side < 0:
				offerCount[c]++
			default:
				bidCount[c]++
				offerCount[c]++
			}
		}
	}
	e.mu.RUnlock()

	if prices == nil {
		var err error
		prices, err = e.ReservePrices()
		if err != nil {
			return nil, err
		}
	}

	var out []ClusterSummary
	for _, name := range e.fleet.ClusterNames() {
		cs := ClusterSummary{Cluster: name, Bids: bidCount[name], Offers: offerCount[name]}
		if c := e.fleet.Cluster(name); c != nil {
			cs.Utilization = c.Utilization()
		}
		for _, d := range resource.StandardDimensions {
			if i, ok := e.reg.Index(resource.Pool{Cluster: name, Dim: d}); ok {
				cs.Price = cs.Price.Set(d, prices[i])
			}
		}
		out = append(out, cs)
	}
	return out, nil
}

// PriceHistory returns the settlement price of one pool across
// converged auctions, oldest first (the sparkline data on the market
// front end). Failed clocks stopped at non-clearing prices and are
// excluded.
func (e *Exchange) PriceHistory(pool resource.Pool) []float64 {
	i, ok := e.reg.Index(pool)
	if !ok {
		return nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]float64, 0, len(e.history))
	for _, rec := range e.history {
		if !rec.Converged {
			continue
		}
		out = append(out, rec.Prices[i])
	}
	return out
}
