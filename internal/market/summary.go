package market

import (
	"clustermarket/internal/cluster"
	"clustermarket/internal/resource"
)

// ClusterSummary is one row of the "market summary" page (Figure 3): the
// cluster's open interest and current prices per dimension.
type ClusterSummary struct {
	Cluster string
	// Bids and Offers count open orders touching the cluster by side.
	Bids, Offers int
	// Price holds the latest settlement (or reserve) price per dimension.
	Price cluster.Usage
	// Utilization is the cluster's live ψ per dimension.
	Utilization cluster.Usage
}

// Summary builds the market summary rows in cluster registration order.
// Prices come from the most recent auction, falling back to current
// reserve prices before the first auction.
func (e *Exchange) Summary() ([]ClusterSummary, error) {
	prices := e.lastClearingPrices()
	// Count open interest per cluster, stripe by stripe. Bids are frozen
	// at submit time, so reading bundles under the stripe's read lock is
	// safe.
	bidCount := make(map[string]int)
	offerCount := make(map[string]int)
	touched := make(map[string]bool)
	for s := range e.orderShards {
		os := &e.orderShards[s]
		os.mu.RLock()
		for _, o := range os.open {
			if o.Status != Open {
				continue
			}
			side := o.Side()
			clear(touched)
			for _, b := range o.Bid.Bundles {
				for i, q := range b {
					if q == 0 {
						continue
					}
					touched[e.reg.Pool(i).Cluster] = true
				}
			}
			for c := range touched {
				switch {
				case side > 0:
					bidCount[c]++
				case side < 0:
					offerCount[c]++
				default:
					bidCount[c]++
					offerCount[c]++
				}
			}
		}
		os.mu.RUnlock()
	}

	if prices == nil {
		var err error
		prices, err = e.ReservePrices()
		if err != nil {
			return nil, err
		}
	}

	var out []ClusterSummary
	for _, name := range e.fleet.ClusterNames() {
		cs := ClusterSummary{Cluster: name, Bids: bidCount[name], Offers: offerCount[name]}
		if c := e.fleet.Cluster(name); c != nil {
			cs.Utilization = c.Utilization()
		}
		for _, d := range resource.StandardDimensions {
			if i, ok := e.reg.Index(resource.Pool{Cluster: name, Dim: d}); ok {
				cs.Price = cs.Price.Set(d, prices[i])
			}
		}
		out = append(out, cs)
	}
	return out, nil
}

// PriceHistory returns the settlement price of one pool across
// converged auctions, oldest first (the sparkline data on the market
// front end). Failed clocks stopped at non-clearing prices and are
// excluded.
func (e *Exchange) PriceHistory(pool resource.Pool) []float64 {
	i, ok := e.reg.Index(pool)
	if !ok {
		return nil
	}
	e.histMu.RLock()
	defer e.histMu.RUnlock()
	out := make([]float64, 0, len(e.history))
	for _, rec := range e.history {
		if !rec.Converged {
			continue
		}
		out = append(out, rec.Prices[i])
	}
	return out
}

// PriceHistoryTail is the bounded form of PriceHistory for display
// pollers: the pool's most recent `limit` clearing prices, oldest
// first. It scans the history backwards and stops at the bound, so a
// poll of a long-lived market costs O(limit), not O(total auctions). A
// non-positive limit or an unknown pool returns nil.
func (e *Exchange) PriceHistoryTail(pool resource.Pool, limit int) []float64 {
	if limit <= 0 {
		return nil
	}
	i, ok := e.reg.Index(pool)
	if !ok {
		return nil
	}
	e.histMu.RLock()
	out := make([]float64, 0, limit)
	for j := len(e.history) - 1; j >= 0 && len(out) < limit; j-- {
		if rec := e.history[j]; rec.Converged {
			out = append(out, rec.Prices[i])
		}
	}
	e.histMu.RUnlock()
	for a, b := 0, len(out)-1; a < b; a, b = a+1, b-1 {
		out[a], out[b] = out[b], out[a]
	}
	return out
}
