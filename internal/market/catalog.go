// Package market implements the trading-platform layer of Section V: a
// combinatorial exchange where engineering teams with budget dollars
// submit bids and offers against cluster resource pools, the operator
// contributes supply at congestion-weighted reserve prices, and periodic
// clock auctions settle binding prices, quotas, and payments.
package market

import (
	"fmt"
	"sort"

	"clustermarket/internal/cluster"
)

// Product is a high-level resource product teams reason about, as on the
// paper's bid entry page (Figure 4): users "first enter requirements in
// terms of desired cluster resources (such as GFS or Bigtable resources)"
// and the platform then "displays the covering amount of CPU, RAM, and
// disk".
type Product struct {
	// Name identifies the product, e.g. "gfs-storage".
	Name string
	// Unit is the human-facing unit, e.g. "TB".
	Unit string
	// PerUnit is the covering low-level resource amount for one unit.
	PerUnit cluster.Usage
}

// Cover returns the covering resource amounts for qty units.
func (p Product) Cover(qty float64) cluster.Usage {
	return p.PerUnit.Scale(qty)
}

// Catalog maps product names to definitions.
type Catalog struct {
	products map[string]Product
}

// NewCatalog builds a catalog from the given products.
func NewCatalog(products ...Product) *Catalog {
	c := &Catalog{products: make(map[string]Product, len(products))}
	for _, p := range products {
		c.products[p.Name] = p
	}
	return c
}

// StandardCatalog returns products shaped like the storage and serving
// systems the paper names (GFS, Bigtable) plus generic compute: the
// covering ratios are representative, not Google's actual numbers.
func StandardCatalog() *Catalog {
	return NewCatalog(
		Product{
			Name: "gfs-storage",
			Unit: "TB",
			// A terabyte of replicated GFS storage carries a little CPU
			// and RAM for the chunkservers.
			PerUnit: cluster.Usage{CPU: 0.2, RAM: 0.5, Disk: 3.0},
		},
		Product{
			Name: "bigtable-node",
			Unit: "tablet servers",
			// A serving node is RAM- and CPU-heavy with a working set on
			// disk.
			PerUnit: cluster.Usage{CPU: 4, RAM: 16, Disk: 1.0},
		},
		Product{
			Name:    "batch-compute",
			Unit:    "workers",
			PerUnit: cluster.Usage{CPU: 2, RAM: 4, Disk: 0.1},
		},
		Product{
			Name:    "serving-frontend",
			Unit:    "replicas",
			PerUnit: cluster.Usage{CPU: 1, RAM: 8, Disk: 0.05},
		},
	)
}

// Lookup returns the named product.
func (c *Catalog) Lookup(name string) (Product, error) {
	p, ok := c.products[name]
	if !ok {
		return Product{}, fmt.Errorf("market: unknown product %q", name)
	}
	return p, nil
}

// Names returns the product names in sorted order.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.products))
	for n := range c.products {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
