package market

import (
	"encoding/json"
	"fmt"

	"clustermarket/internal/core"
	"clustermarket/internal/resource"
)

// Event kinds. Every externally visible state change of an Exchange is
// materialized as exactly one of these before it is applied, so the
// journal's record stream is a complete, replayable account of the
// books. Events record the *results* of decisions (order IDs, clearing
// outcomes, credit amounts) — never the inputs to them — so replay is
// pure bookkeeping: no auction is ever re-run, no budget re-checked.
const (
	// EvAccountOpened creates a team account with its starting balance.
	EvAccountOpened = "account-opened"
	// EvOrderSubmitted books an order (ID, team, frozen bid) whose budget
	// commitment was already approved by the live-path check.
	EvOrderSubmitted = "order-submitted"
	// EvOrderCancelled withdraws an open order and releases its
	// commitment.
	EvOrderCancelled = "order-cancelled"
	// EvOrderAttempted records an order surviving a non-convergent clock
	// (Attempts carries the new count).
	EvOrderAttempted = "order-attempted"
	// EvOrderSettled moves an order to a terminal status. Won carries the
	// allocation and payment and implies the settlement money movement
	// (commitment release, payment debit, operator credit, ledger pair,
	// quota grant); Lost and Unsettled release the commitment.
	EvOrderSettled = "order-settled"
	// EvAuctionCleared appends the completed AuctionRecord to history —
	// always after the batch's per-order settlement events.
	EvAuctionCleared = "auction-cleared"
	// EvBalanceCredited posts one off-auction credit to a team against
	// the operator account, with a ledger pair.
	EvBalanceCredited = "balance-credited"
	// EvDisbursed posts one budget disbursement: a list of per-team
	// credits against the operator account, with ledger pairs.
	EvDisbursed = "disbursed"
	// EvOrderPlaced schedules a won order's allocation onto the fleet.
	// Replay re-runs the deterministic chunked placement, reproducing
	// task IDs and machine assignments bit-identically.
	EvOrderPlaced = "order-placed"
	// EvTaskEvicted removes one placed task from the fleet.
	EvTaskEvicted = "task-evicted"

	// EvDegradedEntered and EvDegradedExited mark the exchange entering
	// and leaving degraded quiesce after a journal failure. They are
	// telemetry-only: never journaled (replay must not see operational
	// weather), published directly by the degrade machinery.
	EvDegradedEntered = "degraded-entered"
	EvDegradedExited  = "degraded-exited"
)

// Credit is one team's share of a disbursement.
type Credit struct {
	Team   string  `json:"team"`
	Amount float64 `json:"amount"`
}

// Event is the single flat record type covering every kind; unused
// fields are omitted from the encoding. Payload floats round-trip
// bit-exactly through encoding/json (shortest-representation encode,
// exact decode), which the crash-recovery fingerprint contract relies
// on.
type Event struct {
	Kind string `json:"k"`

	Team    string      `json:"team,omitempty"`
	OrderID int         `json:"order,omitempty"`
	Auction int         `json:"auction,omitempty"`
	Status  OrderStatus `json:"status,omitempty"`
	// Attempts is the order's non-convergence count after this event.
	Attempts   int             `json:"attempts,omitempty"`
	Bid        *core.Bid       `json:"bid,omitempty"`
	Allocation resource.Vector `json:"alloc,omitempty"`
	Payment    float64         `json:"payment,omitempty"`
	Amount     float64         `json:"amount,omitempty"`
	Balance    float64         `json:"balance,omitempty"`
	Memo       string          `json:"memo,omitempty"`
	Record     *AuctionRecord  `json:"record,omitempty"`
	Policy     string          `json:"policy,omitempty"`
	Credits    []Credit        `json:"credits,omitempty"`
	Cluster    string          `json:"cluster,omitempty"`
	TaskID     string          `json:"task,omitempty"`
}

// EventSource is the firehose Source value the exchange publishes
// under; firehose consumers filtering market events match on it and
// type-assert Payload to *Event.
const EventSource = "market"

// emitEvent materializes the event to both sinks: the journal (when
// one is attached, appended *before* the telemetry publish so a
// journal failure never produces a phantom event on the wire) and the
// telemetry firehose (when a subscriber is listening). Every call site
// either holds the lock guarding the state the event describes (a
// stripe lock, settleMu) or runs single-threaded, so the journal's
// sequence order is consistent with the order mutations become
// visible. Replay never comes through here — recovery dispatches
// straight to applyEvent — so a recovered process does not re-publish
// its own history.
func (e *Exchange) emitEvent(ev *Event) error {
	if e.journal != nil {
		raw, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("market: encode %s event: %w", ev.Kind, err)
		}
		if err := e.appendWithRetry(raw); err != nil {
			// The journal has rolled its WAL back to the pre-append
			// length, so nothing of this event is readable; quiesce so
			// no further state is acknowledged until the disk heals.
			e.enterDegraded(err)
			return fmt.Errorf("market: journal %s event: %w", ev.Kind, err)
		}
	}
	e.fire.Publish(EventSource, ev.Kind, ev)
	return nil
}

// materializing reports whether events have anywhere to go: a journal,
// a firehose subscriber, or both. The hot paths whose events exist
// only for those sinks (submit, cancel, account opening — the
// settlement events also drive applyEvent and are materialized
// regardless) check it before building an Event, so the in-memory,
// unwatched exchange pays two branches instead of an allocation that
// emitEvent would immediately discard. Telemetry and journaling are
// deliberately decoupled here: Config.Telemetry works with or without
// a WAL, feeding both from the same typed event stream.
func (e *Exchange) materializing() bool { return e.journal != nil || e.fire.Active() }
