package market_test

// Degraded-quiesce contract at every journal write site: a persistent
// disk fault (ENOSPC, EIO, fsync EIO) at any mutation path must error
// the caller, quiesce the exchange behind ErrDegraded, heal on
// TryResume once the disk recovers, and leave a journal whose replay
// reproduces the live books bit for bit — the failed op absent, every
// successful op present.

import (
	"errors"
	"reflect"
	"testing"

	"clustermarket/internal/fault"
	"clustermarket/internal/invariant"
	"clustermarket/internal/journal"
	"clustermarket/internal/market"
	"clustermarket/internal/telemetry"
)

// faultedExchange builds a journaled exchange whose WAL sits on a fault
// FS, fsyncing every append so fsync windows fire on the faulted op.
func faultedExchange(t *testing.T, dir string, fire *telemetry.Firehose) (*market.Exchange, *fault.Injector, *journal.Journal) {
	t.Helper()
	inj := fault.New()
	j, rec, err := journal.Open(dir, journal.Options{FS: fault.NewFS(inj, nil), FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatal("fresh dir reported prior state")
	}
	cfg := marketCfg(j, -1)
	cfg.Telemetry = fire
	ex, err := market.NewExchange(recoverFleet(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ex, inj, j
}

// degradeSites enumerates every journal write site. setup runs
// fault-free and returns the operation to fault; the same operation is
// retried after the heal and must then succeed.
var degradeSites = []struct {
	name  string
	setup func(t *testing.T, e *market.Exchange) func() error
}{
	{"open-account", func(t *testing.T, e *market.Exchange) func() error {
		return func() error { return e.OpenAccount("late") }
	}},
	{"submit", func(t *testing.T, e *market.Exchange) func() error {
		openTeams(t, e)
		return func() error {
			_, err := e.SubmitProduct("ads", "batch-compute", 1, []string{"alpha"}, 500)
			return err
		}
	}},
	{"cancel", func(t *testing.T, e *market.Exchange) func() error {
		openTeams(t, e)
		o, err := e.SubmitProduct("ads", "batch-compute", 1, []string{"alpha"}, 500)
		if err != nil {
			t.Fatal(err)
		}
		return func() error { return e.Cancel(o.ID) }
	}},
	{"auction-settlement", func(t *testing.T, e *market.Exchange) func() error {
		submitPair(t, e)
		return func() error { _, _, err := e.RunAuction(); return err }
	}},
	{"place", func(t *testing.T, e *market.Exchange) func() error {
		id := wonOrder(t, e)
		return func() error { _, err := e.PlaceOrder(id); return err }
	}},
	{"evict", func(t *testing.T, e *market.Exchange) func() error {
		id := wonOrder(t, e)
		tasks, err := e.PlaceOrder(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(tasks) == 0 {
			t.Fatal("winner placed no tasks")
		}
		return func() error { return e.EvictTask(tasks[0].Cluster, tasks[0].TaskID) }
	}},
	{"disburse", func(t *testing.T, e *market.Exchange) func() error {
		openTeams(t, e)
		return func() error { return e.Disburse(market.ProportionalToQuota, 5000) }
	}},
	{"credit", func(t *testing.T, e *market.Exchange) func() error {
		openTeams(t, e)
		return func() error { return e.Credit("ads", 250, "goodwill refund") }
	}},
}

func openTeams(t *testing.T, e *market.Exchange) {
	t.Helper()
	for _, team := range []string{"ads", "maps"} {
		if err := e.OpenAccount(team); err != nil {
			t.Fatal(err)
		}
	}
}

func submitPair(t *testing.T, e *market.Exchange) {
	t.Helper()
	openTeams(t, e)
	if _, err := e.SubmitProduct("ads", "batch-compute", 1, []string{"alpha"}, 600); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SubmitProduct("maps", "batch-compute", 1, []string{"alpha", "beta"}, 400); err != nil {
		t.Fatal(err)
	}
}

// wonOrder drives a fault-free auction and returns a Won order's ID.
func wonOrder(t *testing.T, e *market.Exchange) int {
	t.Helper()
	submitPair(t, e)
	if _, _, err := e.RunAuction(); err != nil {
		t.Fatal(err)
	}
	for _, o := range e.Orders() {
		if o.Status == market.Won {
			return o.ID
		}
	}
	t.Fatal("auction produced no winner; test script needs one")
	return 0
}

// TestDegradedQuiesceAtEveryWriteSite is the satellite-3 table: each
// write site under each persistent disk fault kind must degrade, reject
// new orders with ErrDegraded, resume after the disk heals, and recover
// to a state identical to the live exchange.
func TestDegradedQuiesceAtEveryWriteSite(t *testing.T) {
	kinds := []struct {
		name   string
		window fault.Window
	}{
		{"write-enospc", fault.Window{Op: fault.OpDiskWrite, Kind: fault.ENOSPC, Count: 100000}},
		{"write-eio", fault.Window{Op: fault.OpDiskWrite, Kind: fault.EIO, Count: 100000}},
		{"fsync-eio", fault.Window{Op: fault.OpDiskFsync, Kind: fault.EIO, Count: 100000}},
	}
	for _, site := range degradeSites {
		for _, k := range kinds {
			t.Run(site.name+"/"+k.name, func(t *testing.T) {
				dir := t.TempDir()
				ex, inj, j := faultedExchange(t, dir, nil)
				defer j.Close()
				op := site.setup(t, ex)

				inj.Arm([]fault.Window{k.window})
				if err := op(); err == nil {
					t.Fatal("op under persistent disk fault succeeded")
				}
				if !ex.Degraded() {
					t.Fatal("exchange did not quiesce")
				}
				ds := ex.DegradedStatus()
				if !ds.Degraded || ds.Cause == "" || ds.Entered != 1 {
					t.Fatalf("degraded status = %+v", ds)
				}
				if _, err := ex.SubmitProduct("ads", "batch-compute", 1, []string{"alpha"}, 500); !errors.Is(err, market.ErrDegraded) {
					t.Fatalf("degraded submit = %v, want ErrDegraded", err)
				}

				// Disk heals; a forced probe resumes and the op goes through.
				inj.Arm(nil)
				if err := ex.TryResume(true); err != nil {
					t.Fatalf("resume on healed disk: %v", err)
				}
				if ex.Degraded() {
					t.Fatal("still degraded after successful resume")
				}
				if err := op(); err != nil {
					t.Fatalf("healed op: %v", err)
				}
				ds = ex.DegradedStatus()
				if ds.Exited != 1 || ds.SecondsTotal <= 0 {
					t.Errorf("post-heal status = %+v", ds)
				}

				// The quiesce never acknowledged unpersisted state: replaying
				// the journal reproduces the live books bit for bit.
				j.Close()
				j2, rec2, err := journal.Open(dir, journal.Options{})
				if err != nil {
					t.Fatal(err)
				}
				defer j2.Close()
				recovered, err := market.Recover(recoverFleet(t), marketCfg(j2, -1), rec2)
				if err != nil {
					t.Fatalf("Recover: %v", err)
				}
				if vs := invariant.CheckExchange(recovered); len(vs) > 0 {
					t.Fatalf("recovered exchange violates invariants: %v", vs)
				}
				if want, got := marketImage(t, ex), marketImage(t, recovered); !reflect.DeepEqual(want, got) {
					for key := range want {
						if !reflect.DeepEqual(want[key], got[key]) {
							t.Errorf("%s diverged after recovery:\n live:      %+v\n recovered: %+v", key, want[key], got[key])
						}
					}
					t.FailNow()
				}
			})
		}
	}
}

// TestBoundedFaultBurstHealsInvisibly pins the inline-retry contract: a
// burst within the bounded retries succeeds the op with no quiesce, and
// the result is durable.
func TestBoundedFaultBurstHealsInvisibly(t *testing.T) {
	dir := t.TempDir()
	ex, inj, j := faultedExchange(t, dir, nil)
	defer j.Close()
	openTeams(t, ex)

	inj.Arm([]fault.Window{{Op: fault.OpDiskWrite, Kind: fault.ENOSPC, Count: 3}})
	o, err := ex.SubmitProduct("ads", "batch-compute", 1, []string{"alpha"}, 500)
	if err != nil {
		t.Fatalf("submit under bounded burst: %v", err)
	}
	if ex.Degraded() {
		t.Fatal("bounded burst quiesced the exchange")
	}
	if ds := ex.DegradedStatus(); ds.Entered != 0 {
		t.Errorf("bounded burst recorded a quiesce episode: %+v", ds)
	}
	if got := inj.Injected(); got != 3 {
		t.Errorf("injected %d faults, want the full burst of 3", got)
	}

	j.Close()
	j2, rec2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recovered, err := market.Recover(recoverFleet(t), marketCfg(j2, -1), rec2)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	ro, err := recovered.Order(o.ID)
	if err != nil || ro.Status != market.Open {
		t.Fatalf("burst-healed order not durable: %+v, %v", ro, err)
	}
	if vs := invariant.CheckExchange(recovered); len(vs) > 0 {
		t.Fatalf("invariants: %v", vs)
	}
}

// TestTryResumeBackoffGate pins the probe rate limit: after a failed
// probe, an unforced resume inside the backoff window must return
// ErrDegraded without touching the disk; force bypasses the gate.
func TestTryResumeBackoffGate(t *testing.T) {
	ex, inj, j := faultedExchange(t, t.TempDir(), nil)
	defer j.Close()
	openTeams(t, ex)

	inj.Arm([]fault.Window{{Op: fault.OpDiskFsync, Kind: fault.EIO, Count: 100000}})
	if _, err := ex.SubmitProduct("ads", "batch-compute", 1, []string{"alpha"}, 500); err == nil {
		t.Fatal("submit under persistent fsync fault succeeded")
	}
	if !ex.Degraded() {
		t.Fatal("exchange did not quiesce")
	}
	// First unforced probe runs immediately (enterDegraded arms an
	// immediate probe), fails against the sick disk, and starts the
	// backoff clock.
	if err := ex.TryResume(false); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("first probe = %v, want injected fsync failure", err)
	}
	before := inj.Injected()
	if err := ex.TryResume(false); !errors.Is(err, market.ErrDegraded) {
		t.Fatalf("gated probe = %v, want ErrDegraded", err)
	}
	if got := inj.Injected(); got != before {
		t.Errorf("gated resume touched the disk: injections %d -> %d", before, got)
	}
	if err := ex.TryResume(true); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("forced probe on sick disk = %v, want injected failure", err)
	}
	if inj.Injected() == before {
		t.Error("forced resume did not probe the disk")
	}

	inj.Arm(nil)
	if err := ex.TryResume(true); err != nil {
		t.Fatalf("resume on healed disk: %v", err)
	}
	if ex.Degraded() {
		t.Fatal("still degraded after heal")
	}
}

// TestDegradeTelemetryEvents asserts the quiesce lifecycle is surfaced
// on the firehose as telemetry-only events.
func TestDegradeTelemetryEvents(t *testing.T) {
	fire := telemetry.NewFirehose()
	sub := fire.Subscribe(256)
	defer sub.Close()
	ex, inj, j := faultedExchange(t, t.TempDir(), fire)
	defer j.Close()
	openTeams(t, ex)

	inj.Arm([]fault.Window{{Op: fault.OpDiskWrite, Kind: fault.ENOSPC, Count: 100000}})
	if _, err := ex.SubmitProduct("ads", "batch-compute", 1, []string{"alpha"}, 500); err == nil {
		t.Fatal("submit under persistent fault succeeded")
	}
	inj.Arm(nil)
	if err := ex.TryResume(true); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]int{}
drain:
	for {
		select {
		case ev := <-sub.C:
			if ev.Source == market.EventSource {
				kinds[ev.Kind]++
			}
		default:
			break drain
		}
	}
	if kinds[market.EvDegradedEntered] != 1 {
		t.Errorf("degraded-entered events = %d, want 1", kinds[market.EvDegradedEntered])
	}
	if kinds[market.EvDegradedExited] != 1 {
		t.Errorf("degraded-exited events = %d, want 1", kinds[market.EvDegradedExited])
	}
}
