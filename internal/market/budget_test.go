package market

import (
	"math"
	"strings"
	"testing"

	"clustermarket/internal/cluster"
)

func TestDisbursementPolicyString(t *testing.T) {
	for p, want := range map[DisbursementPolicy]string{
		EqualShares:         "equal-shares",
		ProportionalToQuota: "proportional-to-quota",
		ProportionalToUsage: "proportional-to-usage",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", int(p), p.String())
		}
	}
	if !strings.Contains(DisbursementPolicy(9).String(), "9") {
		t.Error("unknown policy string")
	}
}

func TestDisburseEqual(t *testing.T) {
	e := newTestExchange(t)
	for _, team := range []string{"a", "b"} {
		if err := e.OpenAccount(team); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Disburse(EqualShares, 1000); err != nil {
		t.Fatal(err)
	}
	for _, team := range []string{"a", "b"} {
		bal, _ := e.Balance(team)
		if bal != 1500 { // 1000 initial + 500 disbursed
			t.Errorf("%s balance = %v", team, bal)
		}
	}
	if !e.LedgerBalanced(1e-9) {
		t.Error("ledger unbalanced after disbursement")
	}
}

func TestDisburseProportionalToQuota(t *testing.T) {
	e := newTestExchange(t)
	for _, team := range []string{"big", "small"} {
		if err := e.OpenAccount(team); err != nil {
			t.Fatal(err)
		}
	}
	// big holds 3× small's quota (weights use the cost vector).
	e.Fleet().Quotas().Grant("big", "r1", cluster.Usage{CPU: 30})
	e.Fleet().Quotas().Grant("small", "r1", cluster.Usage{CPU: 10})

	if err := e.Disburse(ProportionalToQuota, 400); err != nil {
		t.Fatal(err)
	}
	bigBal, _ := e.Balance("big")
	smallBal, _ := e.Balance("small")
	if math.Abs((bigBal-1000)-300) > 1e-9 {
		t.Errorf("big received %v, want 300", bigBal-1000)
	}
	if math.Abs((smallBal-1000)-100) > 1e-9 {
		t.Errorf("small received %v, want 100", smallBal-1000)
	}
}

func TestDisburseProportionalToUsage(t *testing.T) {
	e := newTestExchange(t)
	for _, team := range []string{"heavy", "idle"} {
		if err := e.OpenAccount(team); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Fleet().ScheduleTask("heavy", "r2", cluster.Usage{CPU: 8, RAM: 16, Disk: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Disburse(ProportionalToUsage, 600); err != nil {
		t.Fatal(err)
	}
	heavyBal, _ := e.Balance("heavy")
	idleBal, _ := e.Balance("idle")
	if heavyBal <= idleBal {
		t.Errorf("heavy (%v) not above idle (%v)", heavyBal, idleBal)
	}
	// All 600 went somewhere.
	if math.Abs((heavyBal-1000)+(idleBal-1000)-600) > 1e-9 {
		t.Errorf("disbursed total wrong: %v + %v", heavyBal-1000, idleBal-1000)
	}
}

func TestDisburseFallsBackToEqualOnZeroWeights(t *testing.T) {
	e := newTestExchange(t)
	for _, team := range []string{"a", "b"} {
		if err := e.OpenAccount(team); err != nil {
			t.Fatal(err)
		}
	}
	// Nobody holds quota: proportional-to-quota degenerates to equal.
	if err := e.Disburse(ProportionalToQuota, 200); err != nil {
		t.Fatal(err)
	}
	aBal, _ := e.Balance("a")
	bBal, _ := e.Balance("b")
	if aBal != bBal || aBal != 1100 {
		t.Errorf("balances = %v, %v", aBal, bBal)
	}
}

func TestDisburseErrors(t *testing.T) {
	e := newTestExchange(t)
	if err := e.Disburse(EqualShares, 100); err == nil {
		t.Error("no accounts accepted")
	}
	if err := e.OpenAccount("a"); err != nil {
		t.Fatal(err)
	}
	if err := e.Disburse(EqualShares, 0); err == nil {
		t.Error("zero total accepted")
	}
	if err := e.Disburse(EqualShares, -5); err == nil {
		t.Error("negative total accepted")
	}
	if err := e.Disburse(DisbursementPolicy(42), 100); err == nil {
		t.Error("unknown policy accepted")
	}
}
