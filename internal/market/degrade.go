package market

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Degraded quiesce: the exchange's typed response to a disk that stops
// persisting. The contract is that the exchange never acknowledges
// state it cannot persist — a journal append that fails (after the
// journal has rolled the WAL back to its pre-append length) means the
// event was not applied, the caller got an error, and the exchange
// moves into degraded quiesce:
//
//   - New orders are rejected at the door with ErrDegraded, a retryable
//     error: nothing is lost, the client simply resubmits once the disk
//     heals. The check is one atomic load and a branch on the submit
//     hot path (see rejectIfDegraded), so a healthy exchange pays
//     branch-prediction noise for it.
//   - In-flight settlement completes exactly as far as its events are
//     durable: orders whose settlement events were journaled stay
//     settled, the remainder of the claimed batch is released back to
//     Open, and the auction record is not written — replaying the
//     journal prefix reproduces the live books bit-for-bit.
//   - Each failed append is retried inline a bounded number of times
//     with exponential backoff (appendWithRetry), with a journal Probe
//     — torn-tail repair plus an fsync round trip — between attempts,
//     so a transient burst of ENOSPC/EIO heals invisibly and only a
//     persistently sick disk quiesces the exchange.
//   - Recovery is automatic: RunAuction probes on entry (subject to the
//     same exponential backoff) and TryResume(true) forces a probe, so
//     the exchange resumes as soon as the disk accepts a write-sync
//     round trip again. Entering and leaving quiesce publish
//     telemetry-only events (never journaled: replay must not see
//     operational weather).
var ErrDegraded = errors.New("market: degraded — journal unavailable, retry later")

const (
	// maxAppendRetries bounds the inline append retries before the
	// exchange gives up and quiesces; with the doubling backoff below the
	// worst case adds ~15ms to the failing call.
	maxAppendRetries = 4
	appendRetryBase  = time.Millisecond

	// Resume probes back off exponentially from base to cap while the
	// disk stays sick, so a dead volume costs one fsync attempt per
	// backoff window, not per rejected request.
	resumeBackoffBase = 50 * time.Millisecond
	resumeBackoffCap  = 5 * time.Second
)

// rejectIfDegraded is the submit-path fault-seam check: one atomic load
// and a predictable branch (BenchmarkEpochLoopDegradedCheck pins it at
// zero allocations).
//
//marketlint:allocfree
func (e *Exchange) rejectIfDegraded() error {
	if e.degraded.flag.Load() {
		return ErrDegraded
	}
	return nil
}

// enterDegraded moves the exchange into degraded quiesce (idempotent —
// only the first caller of an episode records it). Safe to call with
// stripe locks held: the degrade mutex is an unranked leaf and the
// telemetry publish is non-blocking.
func (e *Exchange) enterDegraded(cause error) {
	if !e.degraded.flag.CompareAndSwap(false, true) {
		return
	}
	now := time.Now()
	d := &e.degraded
	d.mu.Lock()
	d.since = now
	d.cause = cause.Error()
	d.attempts = 0
	d.nextProbe = now // the first resume probe may run immediately
	d.entered++
	d.mu.Unlock()
	if e.fire.Active() {
		e.fire.Publish(EventSource, EvDegradedEntered, &Event{Kind: EvDegradedEntered, Memo: cause.Error()})
	}
}

// TryResume attempts to leave degraded quiesce by probing the journal:
// torn-tail repair plus a forced fsync round trip. Unforced probes are
// rate-limited by the exponential backoff schedule; force bypasses the
// schedule (the deterministic path scenario backends use, and the right
// call for an operator poking a healed disk). Returns nil when the
// exchange is healthy — including when it was never degraded.
func (e *Exchange) TryResume(force bool) error {
	if !e.degraded.flag.Load() {
		return nil
	}
	d := &e.degraded
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.flag.Load() { // lost the race to another resumer; already healthy
		return nil
	}
	if !force && time.Now().Before(d.nextProbe) {
		return ErrDegraded
	}
	if e.journal != nil {
		if err := e.journal.Probe(); err != nil {
			d.attempts++
			shift := d.attempts - 1
			if shift > 7 {
				shift = 7
			}
			backoff := resumeBackoffBase << uint(shift)
			if backoff > resumeBackoffCap {
				backoff = resumeBackoffCap
			}
			d.nextProbe = time.Now().Add(backoff)
			return err
		}
	}
	d.accumNanos += time.Since(d.since).Nanoseconds()
	d.exited++
	d.cause = ""
	d.flag.Store(false)
	if e.fire.Active() {
		e.fire.Publish(EventSource, EvDegradedExited, &Event{Kind: EvDegradedExited})
	}
	return nil
}

// appendWithRetry is the bounded inline heal loop under emitEvent: a
// failed journal append (already rolled back by the journal) is retried
// after a Probe — repair plus fsync — with doubling backoff, so a
// transient fault burst delays the operation by milliseconds instead of
// failing it. The final error, if any, is the last append's.
func (e *Exchange) appendWithRetry(raw []byte) error {
	_, err := e.journal.Append(raw)
	if err == nil {
		return nil
	}
	backoff := appendRetryBase
	for attempt := 0; attempt < maxAppendRetries; attempt++ {
		time.Sleep(backoff)
		backoff *= 2
		// Probe repairs any torn tail and tests the disk; its error is
		// not decisive — the retried append below is the real verdict.
		_ = e.journal.Probe()
		if _, err = e.journal.Append(raw); err == nil {
			return nil
		}
	}
	return err
}

// degradeState carries the quiesce lifecycle. flag is the hot-path
// bit; everything else sits behind an unranked leaf mutex touched only
// on degrade transitions and status reads.
type degradeState struct {
	flag atomic.Bool
	mu   sync.Mutex
	// since anchors the current episode; accumNanos sums completed ones.
	since      time.Time
	cause      string
	attempts   int
	nextProbe  time.Time
	accumNanos int64
	entered    uint64
	exited     uint64
}

// DegradedStatus is the externally visible quiesce state, shaped for
// the /healthz JSON body and /metrics series.
type DegradedStatus struct {
	Degraded bool   `json:"degraded"`
	Cause    string `json:"cause,omitempty"`
	// Entered and Exited count quiesce episodes; SecondsTotal is the
	// cumulative time spent degraded, including the current episode.
	Entered      uint64  `json:"entered"`
	Exited       uint64  `json:"exited"`
	SecondsTotal float64 `json:"seconds_total"`
}

// Degraded reports whether the exchange is currently in degraded
// quiesce.
func (e *Exchange) Degraded() bool { return e.degraded.flag.Load() }

// DegradedStatus snapshots the quiesce lifecycle counters.
func (e *Exchange) DegradedStatus() DegradedStatus {
	d := &e.degraded
	d.mu.Lock()
	defer d.mu.Unlock()
	st := DegradedStatus{
		Degraded:     d.flag.Load(),
		Cause:        d.cause,
		Entered:      d.entered,
		Exited:       d.exited,
		SecondsTotal: float64(d.accumNanos) / 1e9,
	}
	if st.Degraded {
		st.SecondsTotal += time.Since(d.since).Seconds()
	}
	return st
}
