package market

import (
	"errors"
	"fmt"
)

// PlaceOrder schedules a won order's allocation onto the fleet through
// the event stream: the placement is journaled (as an order-placed
// event whose replay re-runs the same deterministic chunked placement)
// and tracked in the exchange's fleet delta so snapshots can pin the
// resulting tasks to their machines. It returns the tasks placed, in
// placement order. Callers that previously scheduled allocations
// directly on the fleet should go through here so crash recovery
// reproduces the fleet exactly.
func (e *Exchange) PlaceOrder(id int) ([]PlacedTask, error) {
	e.settleMu.Lock()
	defer e.settleMu.Unlock()
	o := e.liveOrder(id)
	if o == nil {
		return nil, fmt.Errorf("market: no order %d", id)
	}
	os := e.orderShardFor(id)
	os.mu.RLock()
	status := o.Status
	os.mu.RUnlock()
	if status != Won {
		return nil, fmt.Errorf("market: placing order %d in state %s", id, status)
	}
	ev := &Event{Kind: EvOrderPlaced, OrderID: id}
	if err := e.emitEvent(ev); err != nil {
		return nil, err
	}
	return e.applyOrderPlaced(ev)
}

// EvictTask removes one placed task from the fleet through the event
// stream, so the eviction survives crash recovery.
func (e *Exchange) EvictTask(clusterName, taskID string) error {
	e.settleMu.Lock()
	defer e.settleMu.Unlock()
	c := e.fleet.Cluster(clusterName)
	if c == nil {
		return fmt.Errorf("market: unknown cluster %q", clusterName)
	}
	if _, _, ok := c.TaskInfo(taskID); !ok {
		return fmt.Errorf("market: no task %q in cluster %q", taskID, clusterName)
	}
	ev := &Event{Kind: EvTaskEvicted, Cluster: clusterName, TaskID: taskID}
	if err := e.emitEvent(ev); err != nil {
		return err
	}
	return e.applyTaskEvicted(ev)
}

// PlacedTasks returns the tasks scheduled through PlaceOrder that are
// still running, in placement order — the durable view a recovered
// process uses to rebuild per-region eviction bookkeeping.
func (e *Exchange) PlacedTasks() []PlacedTask {
	e.settleMu.Lock()
	defer e.settleMu.Unlock()
	refs := e.delta.live()
	out := make([]PlacedTask, len(refs))
	for i, ref := range refs {
		out[i] = PlacedTask{Cluster: ref.Cluster, TaskID: ref.TaskID}
	}
	return out
}

// Credit posts an off-auction credit (grant, refund, manual adjustment)
// to a team against the operator account, with a balanced ledger pair.
func (e *Exchange) Credit(team string, amount float64, memo string) error {
	if amount <= 0 {
		return errors.New("market: credit must be positive")
	}
	if team == OperatorAccount {
		return errors.New("market: cannot credit the operator account")
	}
	if _, err := e.Balance(team); err != nil {
		return err
	}
	e.settleMu.Lock()
	defer e.settleMu.Unlock()
	ev := &Event{Kind: EvBalanceCredited, Team: team, Amount: amount,
		Auction: e.AuctionCount(), Memo: memo}
	if err := e.emitEvent(ev); err != nil {
		return err
	}
	return e.applyBalanceCredited(ev)
}
