package market

import (
	"fmt"
)

// The apply layer: one deterministic mutator per event kind. Recovery
// replays the journal tail through applyEvent; the live mutation paths
// share the same appliers wherever the decision and the mutation can be
// separated safely:
//
//   - Settlement-phase events (order-attempted, order-settled,
//     auction-cleared, balance-credited, disbursed, order-placed,
//     task-evicted) are logged and then applied via applyEvent. The
//     in-auction claim (settlement) or settleMu (the rest) keeps any
//     racing writer out between the log and the apply.
//   - Book-entry events (account-opened, order-submitted,
//     order-cancelled) must mutate inside the same stripe critical
//     section that made the decision — releasing the lock between log
//     and apply would let a racing claim or submit interleave, so the
//     live paths in exchange.go log and mutate inline under the lock
//     and the appliers here serve replay only.
//
// Replay is single-threaded but the appliers still take the stripe
// locks, so one code path serves both uses.
func (e *Exchange) applyEvent(ev *Event) error {
	switch ev.Kind {
	case EvAccountOpened:
		return e.applyAccountOpened(ev)
	case EvOrderSubmitted:
		return e.applyOrderSubmitted(ev)
	case EvOrderCancelled:
		return e.applyOrderCancelled(ev)
	case EvOrderAttempted:
		return e.applyOrderAttempted(ev)
	case EvOrderSettled:
		return e.applyOrderSettled(ev)
	case EvAuctionCleared:
		return e.applyAuctionCleared(ev)
	case EvBalanceCredited:
		return e.applyBalanceCredited(ev)
	case EvDisbursed:
		return e.applyDisbursed(ev)
	case EvOrderPlaced:
		_, err := e.applyOrderPlaced(ev)
		return err
	case EvTaskEvicted:
		return e.applyTaskEvicted(ev)
	default:
		return fmt.Errorf("market: unknown event kind %q", ev.Kind)
	}
}

func (e *Exchange) applyAccountOpened(ev *Event) error {
	as := e.accountShardFor(ev.Team)
	as.mu.Lock()
	defer as.mu.Unlock()
	if _, ok := as.balances[ev.Team]; ok {
		return fmt.Errorf("market: replay: account %q exists", ev.Team)
	}
	as.balances[ev.Team] = ev.Balance
	return nil
}

// applyOrderSubmitted rebooks a replayed order. The slot check pins the
// sharded book's ID contract — ID k lives in stripe k%n at slot k/n —
// so a journal whose submit events arrive out of stripe order is
// rejected as corrupt rather than silently misfiled.
func (e *Exchange) applyOrderSubmitted(ev *Event) error {
	if ev.Bid == nil {
		return fmt.Errorf("market: replay: order %d has no bid", ev.OrderID)
	}
	o := &Order{ID: ev.OrderID, Team: ev.Team, Bid: ev.Bid, Status: Open, Auction: -1}
	n := len(e.orderShards)
	os := e.orderShardFor(o.ID)
	if os == nil {
		return fmt.Errorf("market: replay: invalid order id %d", ev.OrderID)
	}
	as := e.accountShardFor(o.Team)
	os.mu.Lock()
	if o.ID/n != len(os.orders) {
		os.mu.Unlock()
		return fmt.Errorf("market: replay: order %d out of sequence (stripe holds %d orders)",
			o.ID, len(os.orders))
	}
	as.mu.Lock()
	e.bookOrderLocked(os, as, o)
	as.mu.Unlock()
	os.mu.Unlock()
	// Each live submit consumed one round-robin slot; advancing the
	// counter per replayed order restores the stripe rotation.
	e.submitSeq.Add(1)
	return nil
}

// bookOrderLocked enters an open order into its stripe and commits its
// buy-side budget exposure. Both the order-stripe and account-stripe
// locks must be held (in that order — account stripes are always the
// inner lock).
//
//marketlint:allocfree
func (e *Exchange) bookOrderLocked(os *orderShard, as *accountShard, o *Order) {
	if exp := o.Bid.MaxLimit(); exp > 0 {
		as.openBuy[o.Team] += exp
	}
	os.orders = append(os.orders, o)
	os.open = append(os.open, o)
	os.openCount++
}

func (e *Exchange) applyOrderCancelled(ev *Event) error {
	o := e.liveOrder(ev.OrderID)
	if o == nil {
		return fmt.Errorf("market: replay: no order %d", ev.OrderID)
	}
	os := e.orderShardFor(o.ID)
	os.mu.Lock()
	if o.Status != Open {
		os.mu.Unlock()
		return fmt.Errorf("market: replay: cancelling order %d in state %s", o.ID, o.Status)
	}
	o.Status = Cancelled
	os.openCount--
	os.mu.Unlock()
	e.releaseCommitment(o)
	return nil
}

func (e *Exchange) applyOrderAttempted(ev *Event) error {
	o := e.liveOrder(ev.OrderID)
	if o == nil {
		return fmt.Errorf("market: replay: no order %d", ev.OrderID)
	}
	os := e.orderShardFor(o.ID)
	os.mu.Lock()
	o.inAuction = false
	o.Attempts = ev.Attempts
	os.mu.Unlock()
	return nil
}

func (e *Exchange) applyOrderSettled(ev *Event) error {
	o := e.liveOrder(ev.OrderID)
	if o == nil {
		return fmt.Errorf("market: replay: no order %d", ev.OrderID)
	}
	os := e.orderShardFor(o.ID)
	os.mu.Lock()
	if o.Status != Open {
		os.mu.Unlock()
		return fmt.Errorf("market: replay: settling order %d in state %s", o.ID, o.Status)
	}
	o.inAuction = false
	o.Auction = ev.Auction
	if ev.Attempts > 0 {
		o.Attempts = ev.Attempts
	}
	o.Status = ev.Status
	os.openCount--
	if ev.Status == Won {
		o.Allocation = ev.Allocation
		o.Payment = ev.Payment
	}
	os.mu.Unlock()

	switch ev.Status {
	case Won:
		e.settleWin(o)
		e.creditBalance(OperatorAccount, o.Payment)
		e.appendLedger([]LedgerEntry{
			{Auction: ev.Auction, Team: o.Team, Amount: -o.Payment,
				Memo: fmt.Sprintf("order %d settlement", o.ID)},
			{Auction: ev.Auction, Team: OperatorAccount, Amount: o.Payment,
				Memo: fmt.Sprintf("counterparty for order %d", o.ID)},
		})
		e.fleet.Quotas().ApplyAllocation(e.reg, o.Team, o.Allocation)
	case Lost, Unsettled:
		e.releaseCommitment(o)
	default:
		return fmt.Errorf("market: replay: order %d settled to non-terminal state %s", o.ID, ev.Status)
	}
	return nil
}

func (e *Exchange) applyAuctionCleared(ev *Event) error {
	if ev.Record == nil {
		return fmt.Errorf("market: replay: auction-cleared event has no record")
	}
	e.appendHistory(ev.Record)
	return nil
}

func (e *Exchange) applyBalanceCredited(ev *Event) error {
	e.creditBalance(ev.Team, ev.Amount)
	e.creditBalance(OperatorAccount, -ev.Amount)
	e.appendLedger([]LedgerEntry{
		{Auction: ev.Auction, Team: ev.Team, Amount: ev.Amount, Memo: ev.Memo},
		{Auction: ev.Auction, Team: OperatorAccount, Amount: -ev.Amount,
			Memo: fmt.Sprintf("counterparty for credit to %s", ev.Team)},
	})
	return nil
}

func (e *Exchange) applyDisbursed(ev *Event) error {
	for _, cr := range ev.Credits {
		e.creditBalance(cr.Team, cr.Amount)
		e.creditBalance(OperatorAccount, -cr.Amount)
		e.appendLedger([]LedgerEntry{
			{Auction: ev.Auction, Team: cr.Team, Amount: cr.Amount,
				Memo: fmt.Sprintf("budget disbursement (%s)", ev.Policy)},
			{Auction: ev.Auction, Team: OperatorAccount, Amount: -cr.Amount,
				Memo: fmt.Sprintf("budget disbursement to %s", cr.Team)},
		})
	}
	return nil
}

// applyOrderPlaced re-runs the deterministic chunked placement for a won
// order. Given an identical fleet state, PlaceAllocationChunked visits
// clusters in sorted order with a fixed chunk shape and first-fit
// scheduling, so replay reproduces the original task IDs and machine
// assignments exactly.
func (e *Exchange) applyOrderPlaced(ev *Event) ([]PlacedTask, error) {
	o := e.liveOrder(ev.OrderID)
	if o == nil {
		return nil, fmt.Errorf("market: replay: no order %d", ev.OrderID)
	}
	if o.Status != Won {
		return nil, fmt.Errorf("market: placing order %d in state %s", o.ID, o.Status)
	}
	var placed []PlacedTask
	e.fleet.PlaceAllocationChunked(e.reg, o.Team, o.Allocation, func(clusterName, taskID string) {
		placed = append(placed, PlacedTask{Cluster: clusterName, TaskID: taskID})
		e.delta.recordPlace(clusterName, taskID)
	})
	return placed, nil
}

func (e *Exchange) applyTaskEvicted(ev *Event) error {
	c := e.fleet.Cluster(ev.Cluster)
	if c == nil {
		return fmt.Errorf("market: replay: unknown cluster %q", ev.Cluster)
	}
	if !c.Evict(ev.TaskID) {
		return fmt.Errorf("market: replay: no task %q in cluster %q", ev.TaskID, ev.Cluster)
	}
	e.delta.recordEvict(ev.Cluster, ev.TaskID)
	return nil
}

// PlacedTask identifies one fleet task scheduled through the exchange.
type PlacedTask struct {
	Cluster string `json:"cluster"`
	TaskID  string `json:"task"`
}

// fleetDelta tracks how the exchange has diverged the fleet from its
// as-built state: tasks placed through PlaceOrder (in placement order)
// and initial-fleet tasks evicted through EvictTask. Snapshots persist
// the delta so recovery can rebuild the fleet without replaying every
// placement since genesis. All access is under settleMu (live paths) or
// single-threaded (restore/replay), so no extra lock is needed.
type fleetDelta struct {
	// placed holds exchange-placed tasks in placement order; evicting one
	// tombstones its entry (zero value) rather than shifting the slice,
	// keeping eviction O(1) while preserving order for PlacedTasks.
	placed []taskRef
	index  map[taskRef]int
	// evicted holds initial-fleet tasks (not in placed) removed through
	// the exchange.
	evicted []taskRef
}

type taskRef struct {
	Cluster string `json:"cluster"`
	TaskID  string `json:"task"`
}

func (d *fleetDelta) recordPlace(clusterName, taskID string) {
	if d.index == nil {
		d.index = make(map[taskRef]int)
	}
	ref := taskRef{Cluster: clusterName, TaskID: taskID}
	d.index[ref] = len(d.placed)
	d.placed = append(d.placed, ref)
}

func (d *fleetDelta) recordEvict(clusterName, taskID string) {
	ref := taskRef{Cluster: clusterName, TaskID: taskID}
	if i, ok := d.index[ref]; ok {
		d.placed[i] = taskRef{}
		delete(d.index, ref)
		return
	}
	d.evicted = append(d.evicted, ref)
}

// live returns the surviving exchange-placed tasks in placement order.
func (d *fleetDelta) live() []taskRef {
	out := make([]taskRef, 0, len(d.index))
	for _, ref := range d.placed {
		if ref.TaskID != "" {
			out = append(out, ref)
		}
	}
	return out
}
