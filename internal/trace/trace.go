// Package trace generates the synthetic bidder population that substitutes
// for the real Google engineering teams in the paper's experiments
// (Section V). Teams have a home cluster, holdings, budgets, relocation
// costs, and a sophistication level that evolves across auctions:
//
//   - Buyers request colocated CPU/RAM/disk bundles, XOR-substitutable
//     across clusters when the team is mobile (Section II).
//   - Teams in congested clusters offer resources for sale to exploit the
//     high prices there (Section V.B).
//   - Early-auction limits are wildly divergent; as sophistication rises
//     the bid premium γ_u shrinks, reproducing the Table I trend. A few
//     teams always pay large premiums to stay put (Figure 7's outliers).
//   - From the second auction onward, sophisticated teams place arbitrage
//     trades: sell in the expensive cluster, buy in the cheap one
//     (Section V.C).
//
// All randomness flows from a single seeded source, so generated markets
// are reproducible.
package trace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/resource"
)

// Side labels a generated bid for the Figure 7 breakdown.
type Side int

const (
	// Buy bids demand resources.
	Buy Side = iota
	// Sell bids offer resources.
	Sell
	// Trade bids do both (arbitrage).
	Trade
)

func (s Side) String() string {
	switch s {
	case Buy:
		return "bid"
	case Sell:
		return "offer"
	default:
		return "trade"
	}
}

// Team is one synthetic engineering team.
type Team struct {
	Name string
	// Home is the cluster the team currently runs in.
	Home string
	// Demand is the team's base resource need for one service replica
	// set.
	Demand cluster.Usage
	// Holdings is what the team currently owns in its home cluster and
	// can offer for sale.
	Holdings cluster.Usage
	// Budget caps the limits the team can bid.
	Budget float64
	// Mobility ∈ [0,1]: probability the team considers other clusters.
	Mobility float64
	// MoveCost ∈ [0,1]: the relocation premium — the extra fraction the
	// team will pay to stay in its home cluster rather than move
	// (Section V.B's "engineering cost to reconfiguring applications").
	MoveCost float64
	// Sophistication ∈ [0,1]: 0 bids wildly, 1 bids close to market.
	Sophistication float64
}

// Config parameterizes a Generator.
type Config struct {
	Seed     int64
	Clusters []string
	// Teams is the number of teams to synthesize.
	Teams int
	// SellerFraction of teams in congested clusters offer resources each
	// round (default 0.5).
	SellerFraction float64
	// CongestionThreshold is the utilization above which a cluster counts
	// as congested (default 0.7).
	CongestionThreshold float64
	// SophisticationGain is the per-auction reduction of (1 − s)
	// (default 0.5, i.e. the gap to full sophistication halves each
	// auction).
	SophisticationGain float64
	// OutlierFraction of buyers pay extreme premiums regardless of
	// sophistication (default 0.08).
	OutlierFraction float64
}

func (c *Config) applyDefaults() {
	if c.SellerFraction == 0 {
		c.SellerFraction = 0.5
	}
	if c.CongestionThreshold == 0 {
		c.CongestionThreshold = 0.7
	}
	if c.SophisticationGain == 0 {
		c.SophisticationGain = 0.5
	}
	if c.OutlierFraction == 0 {
		c.OutlierFraction = 0.08
	}
}

// Generator produces bid populations round after round.
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	reg   *resource.Registry
	teams []*Team
	round int
}

// GeneratedBid couples a core bid with its provenance.
type GeneratedBid struct {
	Team *Team
	Bid  *core.Bid
	Side Side
}

// New builds a generator with a synthesized team population.
func New(cfg Config, reg *resource.Registry) (*Generator, error) {
	cfg.applyDefaults()
	if len(cfg.Clusters) == 0 {
		return nil, errors.New("trace: no clusters")
	}
	if cfg.Teams <= 0 {
		return nil, errors.New("trace: need at least one team")
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), reg: reg}
	for i := 0; i < cfg.Teams; i++ {
		g.teams = append(g.teams, g.newTeam(i))
	}
	return g, nil
}

func (g *Generator) newTeam(i int) *Team {
	cpu := 10 + g.rng.Float64()*70
	demand := cluster.Usage{
		CPU:  math.Round(cpu),
		RAM:  math.Round(cpu * (1.5 + g.rng.Float64()*2.5)),
		Disk: math.Round(cpu*(0.1+g.rng.Float64()*0.4)*10) / 10,
	}
	return &Team{
		Name:           fmt.Sprintf("team-%03d", i),
		Home:           g.cfg.Clusters[g.rng.Intn(len(g.cfg.Clusters))],
		Demand:         demand,
		Holdings:       demand.Scale(1 + g.rng.Float64()*2),
		Budget:         2000 + g.rng.Float64()*8000,
		Mobility:       g.rng.Float64(),
		MoveCost:       g.rng.Float64() * 0.8,
		Sophistication: g.rng.Float64() * 0.3,
	}
}

// Teams exposes the generated population.
func (g *Generator) Teams() []*Team { return g.teams }

// Round returns the number of completed generation rounds.
func (g *Generator) Round() int { return g.round }

// RoundInput carries the market state the bidders react to.
type RoundInput struct {
	// Utilization is ψ(r) per pool.
	Utilization resource.Vector
	// ReferencePrices is the valuation basis: the former fixed prices in
	// auction 1, then the last settlement prices ("reserve prices
	// associated with bids move from closely tracking the former fixed
	// price values to values much closer to the dynamic market prices",
	// Section V.C).
	ReferencePrices resource.Vector
}

// Generate produces the bid population for the next auction and advances
// the round counter (bidder learning happens between auctions).
func (g *Generator) Generate(in RoundInput) ([]*GeneratedBid, error) {
	if len(in.Utilization) != g.reg.Len() || len(in.ReferencePrices) != g.reg.Len() {
		return nil, fmt.Errorf("trace: input vectors must have %d components", g.reg.Len())
	}
	var out []*GeneratedBid
	for _, team := range g.teams {
		if gb := g.buyBid(team, in); gb != nil {
			out = append(out, gb)
		}
		if gb := g.sellBid(team, in); gb != nil {
			out = append(out, gb)
		}
		if gb := g.tradeBid(team, in); gb != nil {
			out = append(out, gb)
		}
	}
	g.round++
	for _, team := range g.teams {
		team.Sophistication = 1 - (1-team.Sophistication)*(1-g.cfg.SophisticationGain)
	}
	if len(out) == 0 {
		return nil, errors.New("trace: round generated no bids")
	}
	return out, nil
}

// bundleFor builds the pool vector for the team's demand placed in a
// cluster, scaled by factor (negative factors build offers).
func (g *Generator) bundleFor(team *Team, clusterName string, qty cluster.Usage, factor float64) resource.Vector {
	v := g.reg.Zero()
	for _, d := range resource.StandardDimensions {
		if i, ok := g.reg.Index(resource.Pool{Cluster: clusterName, Dim: d}); ok {
			v[i] = qty.Get(d) * factor
		}
	}
	return v
}

// clusterUtil averages ψ over a cluster's dimensions.
func (g *Generator) clusterUtil(in RoundInput, clusterName string) float64 {
	idx := g.reg.ClusterPools(clusterName)
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += in.Utilization[i]
	}
	return s / float64(len(idx))
}

// buyBid creates the team's growth request: its demand bundle in the home
// cluster, XOR the same bundle in alternative clusters when mobile.
func (g *Generator) buyBid(team *Team, in RoundInput) *GeneratedBid {
	// Not every team grows every round.
	if g.rng.Float64() < 0.25 {
		return nil
	}
	growth := 0.3 + g.rng.Float64()*0.7
	qty := team.Demand.Scale(growth)

	bundles := []resource.Vector{g.bundleFor(team, team.Home, qty, 1)}
	if g.rng.Float64() < team.Mobility {
		// Consider up to three alternatives, preferring idle clusters.
		alts := g.pickAlternatives(team.Home, in, 3)
		for _, alt := range alts {
			bundles = append(bundles, g.bundleFor(team, alt, qty, 1))
		}
	}

	// Value the *cheapest* alternative at reference prices, then add the
	// premium the team will pay above it.
	fair := math.Inf(1)
	for _, b := range bundles {
		if c := b.Dot(in.ReferencePrices); c < fair {
			fair = c
		}
	}
	if fair <= 0 || math.IsInf(fair, 0) {
		return nil
	}
	premium := g.premium(team)
	limit := fair * (1 + premium)
	if len(bundles) == 1 {
		// Immobile teams pay their relocation premium to stay put.
		limit *= 1 + team.MoveCost
	}
	if limit > team.Budget {
		limit = team.Budget
	}
	if limit <= 0 {
		return nil
	}
	return &GeneratedBid{
		Team: team,
		Side: Buy,
		Bid:  &core.Bid{User: team.Name + "/buy", Bundles: bundles, Limit: limit},
	}
}

// premium draws the relative gap between limit and fair value. Spread
// shrinks with sophistication; a small fraction of teams are outliers who
// pay heavily to avoid reengineering (Figure 7's premium payers).
func (g *Generator) premium(team *Team) float64 {
	spread := 0.5*(1-team.Sophistication) + 0.005
	p := math.Abs(g.rng.NormFloat64()) * spread
	if g.rng.Float64() < g.cfg.OutlierFraction {
		p = p*6 + 0.5
	}
	return p
}

// sellBid lets teams in congested clusters offer part of their holdings.
func (g *Generator) sellBid(team *Team, in RoundInput) *GeneratedBid {
	if g.clusterUtil(in, team.Home) < g.cfg.CongestionThreshold {
		return nil
	}
	if g.rng.Float64() > g.cfg.SellerFraction {
		return nil
	}
	fraction := 0.2 + g.rng.Float64()*0.5
	qty := team.Holdings.Scale(fraction)
	offer := g.bundleFor(team, team.Home, qty, -1)
	if offer.IsZero() {
		return nil
	}
	fair := -offer.Dot(in.ReferencePrices) // positive revenue at reference prices
	if fair <= 0 {
		return nil
	}
	// Sellers low-ball, "confident that there will be ample competition
	// and that the final market price will be fair" (Section V.C). The
	// ask rises toward fair value with sophistication.
	askFraction := 0.05 + g.rng.Float64()*0.45
	askFraction += team.Sophistication * 0.4
	if askFraction > 0.95 {
		askFraction = 0.95
	}
	return &GeneratedBid{
		Team: team,
		Side: Sell,
		Bid: &core.Bid{
			User:    team.Name + "/sell",
			Bundles: []resource.Vector{offer},
			Limit:   -fair * askFraction,
		},
	}
}

// tradeBid places an arbitrage trade for sophisticated teams: sell the
// holding in an expensive congested cluster, buy the equivalent in the
// cheapest idle cluster, pocketing the spread.
func (g *Generator) tradeBid(team *Team, in RoundInput) *GeneratedBid {
	if g.round < 1 || team.Sophistication < 0.6 || g.rng.Float64() > 0.15 {
		return nil
	}
	homeUtil := g.clusterUtil(in, team.Home)
	if homeUtil < g.cfg.CongestionThreshold {
		return nil
	}
	target := g.cheapestCluster(team.Home, in)
	if target == "" {
		return nil
	}
	qty := team.Holdings.Scale(0.3)
	sell := g.bundleFor(team, team.Home, qty, -1)
	buy := g.bundleFor(team, target, qty, 1)
	bundle := sell.Add(buy)
	if bundle.IsZero() {
		return nil
	}
	// Net payment limit: the trader insists on pocketing at least 10% of
	// the reference value of what it sells, i.e. limit < 0.
	refRevenue := -sell.Dot(in.ReferencePrices)
	limit := -0.1 * refRevenue
	return &GeneratedBid{
		Team: team,
		Side: Trade,
		Bid:  &core.Bid{User: team.Name + "/trade", Bundles: []resource.Vector{bundle}, Limit: limit},
	}
}

// pickAlternatives samples up to n distinct clusters other than home,
// weighted toward low utilization.
func (g *Generator) pickAlternatives(home string, in RoundInput, n int) []string {
	type cand struct {
		name   string
		weight float64
	}
	var cands []cand
	for _, c := range g.cfg.Clusters {
		if c == home {
			continue
		}
		w := 1.05 - g.clusterUtil(in, c)
		if w < 0.05 {
			w = 0.05
		}
		cands = append(cands, cand{c, w})
	}
	var out []string
	for len(out) < n && len(cands) > 0 {
		total := 0.0
		for _, c := range cands {
			total += c.weight
		}
		x := g.rng.Float64() * total
		pick := len(cands) - 1
		for i, c := range cands {
			x -= c.weight
			if x <= 0 {
				pick = i
				break
			}
		}
		out = append(out, cands[pick].name)
		cands = append(cands[:pick], cands[pick+1:]...)
	}
	return out
}

// cheapestCluster returns the cluster (≠ exclude) with the lowest average
// reference price across dimensions, or "" when there is none.
func (g *Generator) cheapestCluster(exclude string, in RoundInput) string {
	best := ""
	bestCost := math.Inf(1)
	for _, c := range g.cfg.Clusters {
		if c == exclude {
			continue
		}
		idx := g.reg.ClusterPools(c)
		if len(idx) == 0 {
			continue
		}
		var s float64
		for _, i := range idx {
			s += in.ReferencePrices[i]
		}
		s /= float64(len(idx))
		if s < bestCost {
			bestCost = s
			best = c
		}
	}
	return best
}

// ApplySettlement updates team holdings and homes from a settled auction:
// purchased quantities join holdings (relocating the team when it bought
// into another cluster), sold quantities leave.
func (g *Generator) ApplySettlement(gbs []*GeneratedBid, result *core.Result, bidIndex map[*core.Bid]int) {
	for _, gb := range gbs {
		i, ok := bidIndex[gb.Bid]
		if !ok || !result.IsWinner(i) {
			continue
		}
		alloc := result.Allocations[i]
		// Work out where the positive part landed.
		for _, clusterName := range g.cfg.Clusters {
			var got cluster.Usage
			for _, d := range resource.StandardDimensions {
				if pi, ok := g.reg.Index(resource.Pool{Cluster: clusterName, Dim: d}); ok {
					q := alloc[pi]
					if q > 0 {
						got = got.Set(d, got.Get(d)+q)
					} else if q < 0 && clusterName == gb.Team.Home {
						// Sold from home holdings.
						h := gb.Team.Holdings
						nv := h.Get(d) + q
						if nv < 0 {
							nv = 0
						}
						gb.Team.Holdings = h.Set(d, nv)
					}
				}
			}
			if !got.IsZero() {
				if clusterName != gb.Team.Home && gb.Side == Buy {
					// The team migrated.
					gb.Team.Home = clusterName
					gb.Team.Holdings = got
				} else {
					gb.Team.Holdings = gb.Team.Holdings.Add(got)
				}
			}
		}
	}
}
