package trace

import (
	"strings"
	"testing"

	"clustermarket/internal/core"
	"clustermarket/internal/resource"
)

func testConfig() Config {
	return Config{
		Seed:     1,
		Clusters: []string{"r1", "r2", "r3", "r4"},
		Teams:    40,
	}
}

func testInput(reg *resource.Registry, congested ...string) RoundInput {
	util := reg.Zero()
	ref := reg.Zero()
	isCongested := make(map[string]bool)
	for _, c := range congested {
		isCongested[c] = true
	}
	for i := 0; i < reg.Len(); i++ {
		p := reg.Pool(i)
		if isCongested[p.Cluster] {
			util[i] = 0.9
		} else {
			util[i] = 0.3
		}
		ref[i] = 1.0
	}
	return RoundInput{Utilization: util, ReferencePrices: ref}
}

func TestNewValidation(t *testing.T) {
	reg := resource.NewStandardRegistry("r1")
	if _, err := New(Config{Teams: 1}, reg); err == nil {
		t.Error("no clusters accepted")
	}
	if _, err := New(Config{Clusters: []string{"r1"}}, reg); err == nil {
		t.Error("zero teams accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := testConfig()
	reg := resource.NewStandardRegistry(cfg.Clusters...)

	gen1, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	in := testInput(reg, "r1")
	bids1, err := gen1.Generate(in)
	if err != nil {
		t.Fatal(err)
	}
	bids2, err := gen2.Generate(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(bids1) != len(bids2) {
		t.Fatalf("lengths differ: %d vs %d", len(bids1), len(bids2))
	}
	for i := range bids1 {
		if bids1[i].Bid.User != bids2[i].Bid.User || bids1[i].Bid.Limit != bids2[i].Bid.Limit {
			t.Fatalf("bid %d differs: %v vs %v", i, bids1[i].Bid, bids2[i].Bid)
		}
	}
}

func TestGeneratedBidsAreValid(t *testing.T) {
	cfg := testConfig()
	reg := resource.NewStandardRegistry(cfg.Clusters...)
	gen, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	bids, err := gen.Generate(testInput(reg, "r1", "r2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bids) < cfg.Teams/2 {
		t.Fatalf("suspiciously few bids: %d", len(bids))
	}
	for _, gb := range bids {
		if err := gb.Bid.Validate(reg.Len()); err != nil {
			t.Errorf("invalid bid: %v", err)
		}
		switch gb.Side {
		case Buy:
			if gb.Bid.Class() != core.PureBuyer {
				t.Errorf("buy bid %s classified %v", gb.Bid.User, gb.Bid.Class())
			}
			if gb.Bid.Limit <= 0 {
				t.Errorf("buy bid %s limit %v", gb.Bid.User, gb.Bid.Limit)
			}
			if gb.Bid.Limit > gb.Team.Budget {
				t.Errorf("bid %s exceeds budget", gb.Bid.User)
			}
		case Sell:
			if gb.Bid.Class() != core.PureSeller {
				t.Errorf("sell bid %s classified %v", gb.Bid.User, gb.Bid.Class())
			}
			if gb.Bid.Limit >= 0 {
				t.Errorf("sell bid %s limit %v", gb.Bid.User, gb.Bid.Limit)
			}
		case Trade:
			if gb.Bid.Class() != core.Trader {
				t.Errorf("trade bid %s classified %v", gb.Bid.User, gb.Bid.Class())
			}
		}
	}
}

func TestSellersOnlyFromCongestedClusters(t *testing.T) {
	cfg := testConfig()
	reg := resource.NewStandardRegistry(cfg.Clusters...)
	gen, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	bids, err := gen.Generate(testInput(reg, "r1"))
	if err != nil {
		t.Fatal(err)
	}
	sellers := 0
	for _, gb := range bids {
		if gb.Side != Sell {
			continue
		}
		sellers++
		if gb.Team.Home != "r1" {
			t.Errorf("seller %s from idle cluster %s", gb.Bid.User, gb.Team.Home)
		}
	}
	if sellers == 0 {
		t.Error("no sellers generated from the congested cluster")
	}
}

func TestNoSellersWithoutCongestion(t *testing.T) {
	cfg := testConfig()
	reg := resource.NewStandardRegistry(cfg.Clusters...)
	gen, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	bids, err := gen.Generate(testInput(reg))
	if err != nil {
		t.Fatal(err)
	}
	for _, gb := range bids {
		if gb.Side == Sell {
			t.Errorf("seller %s generated with no congested clusters", gb.Bid.User)
		}
	}
}

func TestSophisticationRisesAndPremiumsFall(t *testing.T) {
	cfg := testConfig()
	reg := resource.NewStandardRegistry(cfg.Clusters...)
	gen, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	before := 0.0
	for _, tm := range gen.Teams() {
		before += tm.Sophistication
	}
	in := testInput(reg, "r1")
	if _, err := gen.Generate(in); err != nil {
		t.Fatal(err)
	}
	after := 0.0
	for _, tm := range gen.Teams() {
		after += tm.Sophistication
	}
	if after <= before {
		t.Errorf("sophistication did not rise: %v -> %v", before, after)
	}

	// Premium spread must shrink with sophistication for a fixed team.
	team := gen.Teams()[0]
	team.Sophistication = 0
	lowSoph := 0.0
	for i := 0; i < 2000; i++ {
		lowSoph += gen.premium(team)
	}
	team.Sophistication = 0.95
	highSoph := 0.0
	for i := 0; i < 2000; i++ {
		highSoph += gen.premium(team)
	}
	if highSoph >= lowSoph {
		t.Errorf("premiums did not fall with sophistication: %v vs %v", lowSoph, highSoph)
	}
}

func TestTradersAppearInLaterRounds(t *testing.T) {
	cfg := testConfig()
	cfg.Teams = 120
	reg := resource.NewStandardRegistry(cfg.Clusters...)
	gen, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	in := testInput(reg, "r1", "r2")

	first, err := gen.Generate(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, gb := range first {
		if gb.Side == Trade {
			t.Fatal("trade bid in round 0")
		}
	}
	// After a few rounds sophistication is high enough for arbitrage.
	var sawTrade bool
	for r := 0; r < 4 && !sawTrade; r++ {
		bids, err := gen.Generate(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, gb := range bids {
			if gb.Side == Trade {
				sawTrade = true
			}
		}
	}
	if !sawTrade {
		t.Error("no arbitrage trades after sophistication rose")
	}
}

func TestGenerateInputValidation(t *testing.T) {
	cfg := testConfig()
	reg := resource.NewStandardRegistry(cfg.Clusters...)
	gen, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Generate(RoundInput{
		Utilization:     resource.Vector{1},
		ReferencePrices: reg.Zero(),
	}); err == nil {
		t.Error("short utilization vector accepted")
	}
}

func TestApplySettlementMovesTeam(t *testing.T) {
	cfg := testConfig()
	cfg.Teams = 1
	reg := resource.NewStandardRegistry(cfg.Clusters...)
	gen, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	team := gen.Teams()[0]
	team.Home = "r1"

	// Fabricate a winning buy into r2.
	alloc := reg.Zero()
	alloc[reg.MustIndex(resource.Pool{Cluster: "r2", Dim: resource.CPU})] = 10
	bid := &core.Bid{User: team.Name + "/buy", Bundles: []resource.Vector{alloc}, Limit: 100}
	gb := &GeneratedBid{Team: team, Bid: bid, Side: Buy}
	res := &core.Result{
		Converged:   true,
		Prices:      reg.Zero(),
		Allocations: []resource.Vector{alloc},
		Payments:    []float64{10},
		Winners:     []int{0},
	}
	gen.ApplySettlement([]*GeneratedBid{gb}, res, map[*core.Bid]int{bid: 0})
	if team.Home != "r2" {
		t.Errorf("team did not migrate: home = %s", team.Home)
	}
	if team.Holdings.CPU != 10 {
		t.Errorf("holdings = %v", team.Holdings)
	}
}

func TestApplySettlementSellsHoldings(t *testing.T) {
	cfg := testConfig()
	cfg.Teams = 1
	reg := resource.NewStandardRegistry(cfg.Clusters...)
	gen, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	team := gen.Teams()[0]
	team.Home = "r1"
	startCPU := team.Holdings.CPU

	alloc := reg.Zero()
	alloc[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.CPU})] = -5
	bid := &core.Bid{User: team.Name + "/sell", Bundles: []resource.Vector{alloc}, Limit: -1}
	gb := &GeneratedBid{Team: team, Bid: bid, Side: Sell}
	res := &core.Result{
		Converged:   true,
		Prices:      reg.Zero(),
		Allocations: []resource.Vector{alloc},
		Payments:    []float64{-5},
		Winners:     []int{0},
	}
	gen.ApplySettlement([]*GeneratedBid{gb}, res, map[*core.Bid]int{bid: 0})
	if got := team.Holdings.CPU; got != startCPU-5 {
		t.Errorf("holdings CPU = %v, want %v", got, startCPU-5)
	}
	// Losing bids change nothing.
	res.Allocations[0] = nil
	gen.ApplySettlement([]*GeneratedBid{gb}, res, map[*core.Bid]int{bid: 0})
	if got := team.Holdings.CPU; got != startCPU-5 {
		t.Errorf("losing settlement mutated holdings: %v", got)
	}
}

func TestSideString(t *testing.T) {
	if Buy.String() != "bid" || Sell.String() != "offer" || Trade.String() != "trade" {
		t.Error("Side.String wrong")
	}
}

func TestBuyBidNamesCarrySide(t *testing.T) {
	cfg := testConfig()
	reg := resource.NewStandardRegistry(cfg.Clusters...)
	gen, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	bids, err := gen.Generate(testInput(reg, "r1"))
	if err != nil {
		t.Fatal(err)
	}
	for _, gb := range bids {
		var suffix string
		switch gb.Side {
		case Buy:
			suffix = "/buy"
		case Sell:
			suffix = "/sell"
		case Trade:
			suffix = "/trade"
		}
		if !strings.HasSuffix(gb.Bid.User, suffix) {
			t.Errorf("bid %q lacks side suffix %q", gb.Bid.User, suffix)
		}
	}
}
