package cluster

import (
	"math/rand"
	"strings"
	"testing"

	"clustermarket/internal/resource"
)

func newTestFleet(t *testing.T) *Fleet {
	t.Helper()
	f := NewFleet()
	for _, name := range []string{"r1", "r2"} {
		c := New(name, nil)
		c.AddMachines(4, Usage{CPU: 10, RAM: 20, Disk: 5})
		if err := f.AddCluster(c); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestFleetAddCluster(t *testing.T) {
	f := newTestFleet(t)
	if err := f.AddCluster(New("r1", nil)); err == nil {
		t.Error("duplicate cluster accepted")
	}
	names := f.ClusterNames()
	if len(names) != 2 || names[0] != "r1" || names[1] != "r2" {
		t.Errorf("ClusterNames = %v", names)
	}
	if f.Cluster("r1") == nil || f.Cluster("zz") != nil {
		t.Error("Cluster lookup wrong")
	}
}

func TestFleetVectors(t *testing.T) {
	f := newTestFleet(t)
	reg := f.Registry()
	if reg.Len() != 6 {
		t.Fatalf("registry len = %d", reg.Len())
	}
	if _, err := f.ScheduleTask("team", "r1", Usage{CPU: 10, RAM: 10, Disk: 1}); err != nil {
		t.Fatal(err)
	}

	capVec := f.CapacityVector(reg)
	i := reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.CPU})
	if capVec[i] != 40 {
		t.Errorf("capacity r1/CPU = %v", capVec[i])
	}
	util := f.UtilizationVector(reg)
	if util[i] != 0.25 {
		t.Errorf("utilization r1/CPU = %v", util[i])
	}
	free := f.FreeVector(reg)
	if free[i] != 30 {
		t.Errorf("free r1/CPU = %v", free[i])
	}
	cost := f.CostVector(reg)
	if cost[i] != 1 {
		t.Errorf("cost r1/CPU = %v", cost[i])
	}
	// r2 untouched.
	j := reg.MustIndex(resource.Pool{Cluster: "r2", Dim: resource.CPU})
	if util[j] != 0 {
		t.Errorf("utilization r2/CPU = %v", util[j])
	}
}

func TestScheduleTaskErrors(t *testing.T) {
	f := newTestFleet(t)
	if _, err := f.ScheduleTask("t", "nope", Usage{CPU: 1}); err == nil {
		t.Error("unknown cluster accepted")
	}
	if _, err := f.ScheduleTask("t", "r1", Usage{CPU: 999}); err == nil {
		t.Error("oversized task accepted")
	}
}

func TestQuotaEnforcement(t *testing.T) {
	f := newTestFleet(t)
	f.EnforceQuotas = true

	// No quota: any placement fails.
	if _, err := f.ScheduleTask("team", "r1", Usage{CPU: 1}); err == nil || !strings.Contains(err.Error(), "quota") {
		t.Fatalf("quota not enforced: %v", err)
	}
	f.Quotas().Grant("team", "r1", Usage{CPU: 5, RAM: 5, Disk: 5})
	if _, err := f.ScheduleTask("team", "r1", Usage{CPU: 4, RAM: 4, Disk: 4}); err != nil {
		t.Fatalf("placement within quota failed: %v", err)
	}
	// Next task would exceed CPU quota.
	if _, err := f.ScheduleTask("team", "r1", Usage{CPU: 2}); err == nil {
		t.Fatal("quota overrun accepted")
	}
	// But fits in r2? No quota there either.
	if _, err := f.ScheduleTask("team", "r2", Usage{CPU: 2}); err == nil {
		t.Fatal("cross-cluster quota leak")
	}
}

func TestQuotaLedger(t *testing.T) {
	l := NewQuotaLedger()
	l.Grant("a", "r1", Usage{CPU: 10})
	l.Grant("a", "r1", Usage{CPU: -4, RAM: 2})
	g := l.Granted("a", "r1")
	if g.CPU != 6 || g.RAM != 2 {
		t.Errorf("Granted = %v", g)
	}
	// Clamping at zero.
	l.Grant("a", "r1", Usage{CPU: -100})
	if got := l.Granted("a", "r1"); got.CPU != 0 {
		t.Errorf("clamped = %v", got)
	}
	if got := l.Granted("nobody", "r1"); !got.IsZero() {
		t.Errorf("unknown team = %v", got)
	}
	l.Grant("b", "r1", Usage{Disk: 3})
	teams := l.Teams()
	if len(teams) != 2 || teams[0] != "a" || teams[1] != "b" {
		t.Errorf("Teams = %v", teams)
	}
	tot := l.TotalGranted("r1")
	if tot.RAM != 2 || tot.Disk != 3 {
		t.Errorf("TotalGranted = %v", tot)
	}
}

func TestApplyAllocation(t *testing.T) {
	f := newTestFleet(t)
	reg := f.Registry()
	alloc := reg.Zero()
	alloc[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.CPU})] = 8
	alloc[reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.RAM})] = 16
	alloc[reg.MustIndex(resource.Pool{Cluster: "r2", Dim: resource.Disk})] = -2

	l := f.Quotas()
	l.Grant("team", "r2", Usage{Disk: 5})
	l.ApplyAllocation(reg, "team", alloc)

	if g := l.Granted("team", "r1"); g.CPU != 8 || g.RAM != 16 {
		t.Errorf("r1 quota = %v", g)
	}
	if g := l.Granted("team", "r2"); g.Disk != 3 {
		t.Errorf("r2 quota = %v", g)
	}
}

func TestFillToUtilization(t *testing.T) {
	f := newTestFleet(t)
	rng := rand.New(rand.NewSource(42))
	if err := f.FillToUtilization(rng, "r1", Usage{CPU: 0.6, RAM: 0.4, Disk: 0.3}); err != nil {
		t.Fatal(err)
	}
	u := f.Cluster("r1").Utilization()
	if u.CPU < 0.6 {
		t.Errorf("CPU utilization = %v, want >= 0.6", u.CPU)
	}
	if u.RAM < 0.4 {
		t.Errorf("RAM utilization = %v, want >= 0.4", u.RAM)
	}
	if u.Disk < 0.3 {
		t.Errorf("Disk utilization = %v, want >= 0.3", u.Disk)
	}
	// Capacity is never exceeded.
	if u.CPU > 1 || u.RAM > 1 || u.Disk > 1 {
		t.Errorf("overfilled: %v", u)
	}
	// Unknown cluster errors.
	if err := f.FillToUtilization(rng, "zz", Usage{}); err == nil {
		t.Error("unknown cluster accepted")
	}
}
