// Package cluster simulates the compute substrate underneath the resource
// market: clusters of machines with per-dimension capacities, tasks placed
// onto them by a bin-packing scheduler, per-team quota enforcement, and
// the utilization metric ψ(r) that Section IV's reserve pricing consumes.
//
// The paper ran against Google's production cluster-management stack; this
// simulator is the substitution documented in DESIGN.md. It reproduces
// the properties the market cares about — finite capacity, multi-
// dimensional packing (including stranding), heterogeneous load — without
// the proprietary substrate.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"clustermarket/internal/resource"
)

// Usage is a quantity across the three standard dimensions.
type Usage struct {
	CPU, RAM, Disk float64
}

// Get returns the quantity for dimension d (0 for Network, which the
// simulator does not model).
func (u Usage) Get(d resource.Dimension) float64 {
	switch d {
	case resource.CPU:
		return u.CPU
	case resource.RAM:
		return u.RAM
	case resource.Disk:
		return u.Disk
	default:
		return 0
	}
}

// Set returns a copy of u with dimension d set to v.
func (u Usage) Set(d resource.Dimension, v float64) Usage {
	switch d {
	case resource.CPU:
		u.CPU = v
	case resource.RAM:
		u.RAM = v
	case resource.Disk:
		u.Disk = v
	}
	return u
}

// Add returns u + v.
func (u Usage) Add(v Usage) Usage {
	return Usage{u.CPU + v.CPU, u.RAM + v.RAM, u.Disk + v.Disk}
}

// Sub returns u − v.
func (u Usage) Sub(v Usage) Usage {
	return Usage{u.CPU - v.CPU, u.RAM - v.RAM, u.Disk - v.Disk}
}

// Scale returns k·u.
func (u Usage) Scale(k float64) Usage {
	return Usage{k * u.CPU, k * u.RAM, k * u.Disk}
}

// FitsWithin reports whether u ≤ v componentwise.
func (u Usage) FitsWithin(v Usage) bool {
	return u.CPU <= v.CPU && u.RAM <= v.RAM && u.Disk <= v.Disk
}

// IsZero reports whether all components are zero.
func (u Usage) IsZero() bool { return u == Usage{} }

// NonNegative reports whether all components are ≥ 0.
func (u Usage) NonNegative() bool { return u.CPU >= 0 && u.RAM >= 0 && u.Disk >= 0 }

func (u Usage) String() string {
	return fmt.Sprintf("cpu=%g ram=%g disk=%g", u.CPU, u.RAM, u.Disk)
}

// Task is one schedulable unit of work owned by a team.
type Task struct {
	ID   string
	Team string
	Req  Usage
}

// Machine is one host with fixed capacity.
type Machine struct {
	ID    int
	Cap   Usage
	used  Usage
	tasks map[string]Task
}

// NewMachine returns an empty machine with the given capacity.
func NewMachine(id int, cap Usage) *Machine {
	return &Machine{ID: id, Cap: cap, tasks: make(map[string]Task)}
}

// Used returns the machine's committed usage.
func (m *Machine) Used() Usage { return m.used }

// Free returns the machine's remaining capacity.
func (m *Machine) Free() Usage { return m.Cap.Sub(m.used) }

// Fits reports whether req fits in the machine's free capacity.
func (m *Machine) Fits(req Usage) bool { return req.FitsWithin(m.Free()) }

// place commits a task. The scheduler must have verified fit.
func (m *Machine) place(t Task) {
	m.used = m.used.Add(t.Req)
	m.tasks[t.ID] = t
}

// remove evicts a task, returning false if it is not on this machine.
func (m *Machine) remove(id string) bool {
	t, ok := m.tasks[id]
	if !ok {
		return false
	}
	m.used = m.used.Sub(t.Req)
	delete(m.tasks, id)
	return true
}

// TaskCount returns the number of tasks on the machine.
func (m *Machine) TaskCount() int { return len(m.tasks) }

// Tasks returns the machine's tasks sorted by ID.
func (m *Machine) Tasks() []Task {
	out := make([]Task, 0, len(m.tasks))
	for _, t := range m.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MaxDimUtilization returns the machine's most-utilized dimension as a
// fraction of capacity, used by the stranding metric.
func (m *Machine) MaxDimUtilization() float64 {
	frac := func(used, capacity float64) float64 {
		if capacity <= 0 {
			return 0
		}
		return used / capacity
	}
	best := frac(m.used.CPU, m.Cap.CPU)
	if f := frac(m.used.RAM, m.Cap.RAM); f > best {
		best = f
	}
	if f := frac(m.used.Disk, m.Cap.Disk); f > best {
		best = f
	}
	return best
}

// Cluster is a named pool of machines sharing one scheduler.
type Cluster struct {
	Name string
	// UnitCost is the operator's real per-unit cost c(r) for each
	// dimension (Section IV), used to derive reserve prices.
	UnitCost Usage

	machines  []*Machine
	scheduler Scheduler
	taskHome  map[string]*Machine
	nextID    int
}

// New creates an empty cluster using the given scheduler (nil selects
// FirstFit).
func New(name string, s Scheduler) *Cluster {
	if s == nil {
		s = FirstFit{}
	}
	return &Cluster{
		Name:      name,
		UnitCost:  Usage{CPU: 1, RAM: 1, Disk: 1},
		scheduler: s,
		taskHome:  make(map[string]*Machine),
	}
}

// AddMachines appends n machines of the given capacity.
func (c *Cluster) AddMachines(n int, cap Usage) {
	for i := 0; i < n; i++ {
		c.machines = append(c.machines, NewMachine(c.nextID, cap))
		c.nextID++
	}
}

// Machines returns the cluster's machines (shared slice; do not mutate).
func (c *Cluster) Machines() []*Machine { return c.machines }

// ErrNoFit is returned when no machine can host a task.
var ErrNoFit = errors.New("cluster: no machine fits task")

// ErrDuplicateTask is returned when a task ID is already placed.
var ErrDuplicateTask = errors.New("cluster: task already placed")

// Place schedules the task onto some machine.
func (c *Cluster) Place(t Task) error {
	if !t.Req.NonNegative() {
		return fmt.Errorf("cluster: task %q has negative requirements", t.ID)
	}
	if _, ok := c.taskHome[t.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateTask, t.ID)
	}
	m := c.scheduler.Pick(c.machines, t.Req)
	if m == nil {
		return fmt.Errorf("%w: task %q (%v) in cluster %s", ErrNoFit, t.ID, t.Req, c.Name)
	}
	m.place(t)
	c.taskHome[t.ID] = m
	return nil
}

// TaskInfo returns the placed task with the given ID and the ID of the
// machine hosting it, or ok=false when the task is unknown.
func (c *Cluster) TaskInfo(id string) (t Task, machineID int, ok bool) {
	m, found := c.taskHome[id]
	if !found {
		return Task{}, 0, false
	}
	return m.tasks[id], m.ID, true
}

// PlaceAt places a task directly onto the identified machine, bypassing
// the scheduler — the snapshot-restore path uses it to pin recovered
// tasks to the machines they originally landed on, so a rebuilt fleet
// is machine-for-machine identical to the one that crashed. The fit
// check tolerates a float-epsilon overshoot: the restored accumulator is
// corrected by SetMachineUsed afterwards.
func (c *Cluster) PlaceAt(machineID int, t Task) error {
	if !t.Req.NonNegative() {
		return fmt.Errorf("cluster: task %q has negative requirements", t.ID)
	}
	if _, ok := c.taskHome[t.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateTask, t.ID)
	}
	for _, m := range c.machines {
		if m.ID != machineID {
			continue
		}
		slack := m.Free().Sub(t.Req)
		const eps = 1e-6
		if slack.CPU < -eps || slack.RAM < -eps || slack.Disk < -eps {
			return fmt.Errorf("%w: task %q (%v) on machine %d of cluster %s",
				ErrNoFit, t.ID, t.Req, machineID, c.Name)
		}
		m.place(t)
		c.taskHome[t.ID] = m
		return nil
	}
	return fmt.Errorf("cluster: no machine %d in cluster %s", machineID, c.Name)
}

// SetMachineUsed overwrites a machine's committed-usage accumulator.
// The accumulator is a float sum whose exact value depends on the
// historical add/evict order, not just the surviving tasks — so a
// restored fleet must adopt the recorded accumulator verbatim, or
// utilization (and with it reserve prices) drifts by an ulp from the
// process that crashed.
func (c *Cluster) SetMachineUsed(machineID int, u Usage) error {
	for _, m := range c.machines {
		if m.ID == machineID {
			m.used = u
			return nil
		}
	}
	return fmt.Errorf("cluster: no machine %d in cluster %s", machineID, c.Name)
}

// Evict removes a task by ID, returning false when it is unknown.
func (c *Cluster) Evict(id string) bool {
	m, ok := c.taskHome[id]
	if !ok {
		return false
	}
	m.remove(id)
	delete(c.taskHome, id)
	return true
}

// TaskCount returns the number of placed tasks.
func (c *Cluster) TaskCount() int { return len(c.taskHome) }

// Capacity returns the summed machine capacity.
func (c *Cluster) Capacity() Usage {
	var total Usage
	for _, m := range c.machines {
		total = total.Add(m.Cap)
	}
	return total
}

// Used returns the summed committed usage.
func (c *Cluster) Used() Usage {
	var total Usage
	for _, m := range c.machines {
		total = total.Add(m.used)
	}
	return total
}

// Utilization returns ψ per dimension as fractions in [0, 1].
func (c *Cluster) Utilization() Usage {
	capacity := c.Capacity()
	used := c.Used()
	frac := func(u, cp float64) float64 {
		if cp <= 0 {
			return 0
		}
		return u / cp
	}
	return Usage{
		CPU:  frac(used.CPU, capacity.CPU),
		RAM:  frac(used.RAM, capacity.RAM),
		Disk: frac(used.Disk, capacity.Disk),
	}
}

// Stranding returns, per dimension, the fraction of the cluster's *free*
// capacity that sits on machines whose most-utilized dimension is ≥ 95%:
// capacity that exists on paper but cannot host a balanced task because
// another dimension is exhausted. Improving this number is the paper's
// "improves the overall bin-packing of system clusters" motivation.
func (c *Cluster) Stranding() Usage {
	var strandedFree, totalFree Usage
	for _, m := range c.machines {
		free := m.Free()
		totalFree = totalFree.Add(free)
		if m.MaxDimUtilization() >= 0.95 {
			strandedFree = strandedFree.Add(free)
		}
	}
	frac := func(s, t float64) float64 {
		if t <= 0 {
			return 0
		}
		return s / t
	}
	return Usage{
		CPU:  frac(strandedFree.CPU, totalFree.CPU),
		RAM:  frac(strandedFree.RAM, totalFree.RAM),
		Disk: frac(strandedFree.Disk, totalFree.Disk),
	}
}

// TeamUsage sums the requirements of every placed task per team.
func (c *Cluster) TeamUsage() map[string]Usage {
	out := make(map[string]Usage)
	for _, m := range c.machines {
		for _, t := range m.tasks {
			out[t.Team] = out[t.Team].Add(t.Req)
		}
	}
	return out
}

// Scheduler picks a machine for a request, or nil when none fits.
type Scheduler interface {
	Name() string
	Pick(machines []*Machine, req Usage) *Machine
}

// FirstFit returns the first machine with room — the fastest policy.
type FirstFit struct{}

// Name implements Scheduler.
func (FirstFit) Name() string { return "first-fit" }

// Pick implements Scheduler.
func (FirstFit) Pick(machines []*Machine, req Usage) *Machine {
	for _, m := range machines {
		if m.Fits(req) {
			return m
		}
	}
	return nil
}

// BestFit returns the fitting machine with the least remaining slack,
// packing machines tightly.
type BestFit struct{}

// Name implements Scheduler.
func (BestFit) Name() string { return "best-fit" }

// Pick implements Scheduler.
func (BestFit) Pick(machines []*Machine, req Usage) *Machine {
	var best *Machine
	bestSlack := 0.0
	for _, m := range machines {
		if !m.Fits(req) {
			continue
		}
		free := m.Free().Sub(req)
		slack := free.CPU + free.RAM + free.Disk
		if best == nil || slack < bestSlack {
			best, bestSlack = m, slack
		}
	}
	return best
}

// WorstFit returns the fitting machine with the most remaining slack,
// spreading load evenly.
type WorstFit struct{}

// Name implements Scheduler.
func (WorstFit) Name() string { return "worst-fit" }

// Pick implements Scheduler.
func (WorstFit) Pick(machines []*Machine, req Usage) *Machine {
	var best *Machine
	bestSlack := -1.0
	for _, m := range machines {
		if !m.Fits(req) {
			continue
		}
		free := m.Free().Sub(req)
		slack := free.CPU + free.RAM + free.Disk
		if slack > bestSlack {
			best, bestSlack = m, slack
		}
	}
	return best
}

// Schedulers lists the available scheduling policies in a stable order.
func Schedulers() []Scheduler {
	return []Scheduler{FirstFit{}, BestFit{}, WorstFit{}}
}

// SortedTeams returns the cluster's teams in lexical order (handy for
// deterministic reports).
func (c *Cluster) SortedTeams() []string {
	usage := c.TeamUsage()
	teams := make([]string, 0, len(usage))
	for t := range usage {
		teams = append(teams, t)
	}
	sort.Strings(teams)
	return teams
}
