package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"clustermarket/internal/resource"
)

// Fleet is the planet-wide collection of clusters plus the per-team quota
// ledger the market settles into. It is the bridge between the economic
// layer (pool-indexed vectors) and the physical layer (machines).
type Fleet struct {
	clusters map[string]*Cluster
	order    []string
	quotas   *QuotaLedger
	// EnforceQuotas makes ScheduleTask reject placements that would
	// exceed the team's granted quota in any dimension.
	EnforceQuotas bool
	nextTask      int
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{
		clusters: make(map[string]*Cluster),
		quotas:   NewQuotaLedger(),
	}
}

// AddCluster registers a cluster; duplicate names are rejected.
func (f *Fleet) AddCluster(c *Cluster) error {
	if _, ok := f.clusters[c.Name]; ok {
		return fmt.Errorf("cluster: duplicate cluster %q", c.Name)
	}
	f.clusters[c.Name] = c
	f.order = append(f.order, c.Name)
	return nil
}

// Cluster returns the named cluster, or nil.
func (f *Fleet) Cluster(name string) *Cluster { return f.clusters[name] }

// ClusterNames returns the cluster names in registration order.
func (f *Fleet) ClusterNames() []string {
	out := make([]string, len(f.order))
	copy(out, f.order)
	return out
}

// Quotas exposes the fleet's quota ledger.
func (f *Fleet) Quotas() *QuotaLedger { return f.quotas }

// Registry builds the standard pool registry (every cluster × CPU, RAM,
// Disk) for this fleet.
func (f *Fleet) Registry() *resource.Registry {
	return resource.NewStandardRegistry(f.order...)
}

// UtilizationVector returns ψ(r) for every pool in reg, pulling from the
// owning cluster's live utilization. Pools for unknown clusters read 0.
func (f *Fleet) UtilizationVector(reg *resource.Registry) resource.Vector {
	out := reg.Zero()
	for i := 0; i < reg.Len(); i++ {
		p := reg.Pool(i)
		if c, ok := f.clusters[p.Cluster]; ok {
			out[i] = c.Utilization().Get(p.Dim)
		}
	}
	return out
}

// CapacityVector returns total capacity per pool.
func (f *Fleet) CapacityVector(reg *resource.Registry) resource.Vector {
	out := reg.Zero()
	for i := 0; i < reg.Len(); i++ {
		p := reg.Pool(i)
		if c, ok := f.clusters[p.Cluster]; ok {
			out[i] = c.Capacity().Get(p.Dim)
		}
	}
	return out
}

// FreeVector returns uncommitted capacity per pool.
func (f *Fleet) FreeVector(reg *resource.Registry) resource.Vector {
	out := reg.Zero()
	for i := 0; i < reg.Len(); i++ {
		p := reg.Pool(i)
		if c, ok := f.clusters[p.Cluster]; ok {
			out[i] = c.Capacity().Get(p.Dim) - c.Used().Get(p.Dim)
		}
	}
	return out
}

// CostVector returns the operator's per-unit cost c(r) per pool.
func (f *Fleet) CostVector(reg *resource.Registry) resource.Vector {
	out := reg.Zero()
	for i := 0; i < reg.Len(); i++ {
		p := reg.Pool(i)
		if c, ok := f.clusters[p.Cluster]; ok {
			out[i] = c.UnitCost.Get(p.Dim)
		}
	}
	return out
}

// ScheduleTask places a task for a team in the named cluster, enforcing
// quotas when enabled. The generated task ID is returned.
func (f *Fleet) ScheduleTask(team, clusterName string, req Usage) (string, error) {
	c, ok := f.clusters[clusterName]
	if !ok {
		return "", fmt.Errorf("cluster: unknown cluster %q", clusterName)
	}
	if f.EnforceQuotas {
		used := c.TeamUsage()[team]
		want := used.Add(req)
		granted := f.quotas.Granted(team, clusterName)
		if !want.FitsWithin(granted) {
			return "", fmt.Errorf("cluster: team %q quota exceeded in %s: want %v, granted %v",
				team, clusterName, want, granted)
		}
	}
	id := fmt.Sprintf("task-%d", f.nextTask)
	f.nextTask++
	if err := c.Place(Task{ID: id, Team: team, Req: req}); err != nil {
		return "", err
	}
	return id, nil
}

// TaskSeq returns the fleet's task-ID counter: the next generated task
// will be "task-<TaskSeq>".
func (f *Fleet) TaskSeq() int { return f.nextTask }

// SetTaskSeq sets the task-ID counter — the snapshot-restore path uses
// it so a recovered fleet resumes generating exactly the IDs the
// original would have.
func (f *Fleet) SetTaskSeq(n int) { f.nextTask = n }

// PlaceAllocationChunked schedules the positive part of a settled
// allocation onto the fleet as machine-sized chunks — the placement
// model every market driver shares (sim worlds, federated migration,
// the scenario engine). Clusters are visited in sorted name order so
// placement, and therefore future utilization and reserve prices, is a
// deterministic function of the allocation. onPlace, when non-nil, is
// invoked for every scheduled task (so callers can evict later);
// scheduling stops per cluster at the first failure (the cluster is
// genuinely full).
func (f *Fleet) PlaceAllocationChunked(reg *resource.Registry, team string, alloc resource.Vector, onPlace func(clusterName, taskID string)) {
	perCluster := make(map[string]Usage)
	for i, q := range alloc {
		if q <= 0 {
			continue
		}
		p := reg.Pool(i)
		u := perCluster[p.Cluster]
		perCluster[p.Cluster] = u.Set(p.Dim, u.Get(p.Dim)+q)
	}
	names := make([]string, 0, len(perCluster))
	for cn := range perCluster {
		names = append(names, cn)
	}
	sort.Strings(names)
	chunk := Usage{CPU: 8, RAM: 32, Disk: 5}
	clamp := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return x
	}
	for _, cn := range names {
		total := perCluster[cn]
		for i := 0; i < 10000 && !total.IsZero(); i++ {
			req := total
			if req.CPU > chunk.CPU {
				req.CPU = chunk.CPU
			}
			if req.RAM > chunk.RAM {
				req.RAM = chunk.RAM
			}
			if req.Disk > chunk.Disk {
				req.Disk = chunk.Disk
			}
			id, err := f.ScheduleTask(team, cn, req)
			if err != nil {
				break
			}
			if onPlace != nil {
				onPlace(cn, id)
			}
			total = total.Sub(req)
			total = Usage{CPU: clamp(total.CPU), RAM: clamp(total.RAM), Disk: clamp(total.Disk)}
		}
	}
}

// FillToUtilization packs synthetic background tasks into the cluster
// until every dimension reaches at least the target fraction (or no task
// fits). It is how experiments establish the skewed pre-auction loads the
// paper's Figures 6 and 7 start from. Task shapes are drawn from rng.
func (f *Fleet) FillToUtilization(rng *rand.Rand, clusterName string, target Usage) error {
	c, ok := f.clusters[clusterName]
	if !ok {
		return fmt.Errorf("cluster: unknown cluster %q", clusterName)
	}
	for i := 0; i < 1_000_000; i++ {
		u := c.Utilization()
		need := Usage{
			CPU:  target.CPU - u.CPU,
			RAM:  target.RAM - u.RAM,
			Disk: target.Disk - u.Disk,
		}
		if need.CPU <= 0 && need.RAM <= 0 && need.Disk <= 0 {
			return nil
		}
		req := Usage{}
		if need.CPU > 0 {
			req.CPU = 1 + rng.Float64()*3
		}
		if need.RAM > 0 {
			req.RAM = 2 + rng.Float64()*6
		}
		if need.Disk > 0 {
			req.Disk = 0.5 + rng.Float64()*1.5
		}
		if req.IsZero() {
			return nil
		}
		if _, err := f.ScheduleTask("background", clusterName, req); err != nil {
			// The packing is full in some dimension; good enough.
			return nil
		}
	}
	return fmt.Errorf("cluster: FillToUtilization(%s) did not terminate", clusterName)
}

// QuotaLedger tracks granted quota per (team, cluster). Grants are
// per-dimension Usage values; trades from auction settlement adjust them.
// The ledger is safe for concurrent use: auction settlement writes grants
// while schedulers and application code read them.
type QuotaLedger struct {
	mu     sync.RWMutex
	grants map[string]map[string]Usage // team → cluster → quota
}

// NewQuotaLedger returns an empty ledger.
func NewQuotaLedger() *QuotaLedger {
	return &QuotaLedger{grants: make(map[string]map[string]Usage)}
}

// Grant adds (or, with negative deltas, removes) quota. The resulting
// quota is clamped at zero per dimension.
func (l *QuotaLedger) Grant(team, cluster string, delta Usage) {
	l.mu.Lock()
	defer l.mu.Unlock()
	byCluster, ok := l.grants[team]
	if !ok {
		byCluster = make(map[string]Usage)
		l.grants[team] = byCluster
	}
	g := byCluster[cluster].Add(delta)
	if g.CPU < 0 {
		g.CPU = 0
	}
	if g.RAM < 0 {
		g.RAM = 0
	}
	if g.Disk < 0 {
		g.Disk = 0
	}
	byCluster[cluster] = g
}

// Granted returns the team's quota in the cluster (zero Usage when none).
func (l *QuotaLedger) Granted(team, cluster string) Usage {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.grants[team][cluster]
}

// Teams lists teams holding any quota, sorted.
func (l *QuotaLedger) Teams() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.grants))
	for t := range l.grants {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// GrantRow is one (team, cluster, quota) entry of the ledger.
type GrantRow struct {
	Team    string
	Cluster string
	Quota   Usage
}

// Grants returns every grant as rows sorted by team then cluster — the
// deterministic enumeration snapshots persist.
func (l *QuotaLedger) Grants() []GrantRow {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []GrantRow
	for team, byCluster := range l.grants {
		for cl, q := range byCluster {
			out = append(out, GrantRow{Team: team, Cluster: cl, Quota: q})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Team != out[j].Team {
			return out[i].Team < out[j].Team
		}
		return out[i].Cluster < out[j].Cluster
	})
	return out
}

// TotalGranted sums quotas across teams for one cluster.
func (l *QuotaLedger) TotalGranted(cluster string) Usage {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var total Usage
	for _, byCluster := range l.grants {
		total = total.Add(byCluster[cluster])
	}
	return total
}

// ApplyAllocation translates a settled auction allocation vector into
// quota adjustments: positive components grant quota, negative components
// (sold resources) remove it.
func (l *QuotaLedger) ApplyAllocation(reg *resource.Registry, team string, alloc resource.Vector) {
	for i, q := range alloc {
		if q == 0 {
			continue
		}
		p := reg.Pool(i)
		var delta Usage
		delta = delta.Set(p.Dim, q)
		l.Grant(team, p.Cluster, delta)
	}
}
