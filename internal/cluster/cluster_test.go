package cluster

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"clustermarket/internal/resource"
)

func TestUsageArithmetic(t *testing.T) {
	a := Usage{CPU: 1, RAM: 2, Disk: 3}
	b := Usage{CPU: 4, RAM: 5, Disk: 6}
	if got := a.Add(b); got != (Usage{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Usage{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Usage{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if !a.FitsWithin(b) || b.FitsWithin(a) {
		t.Error("FitsWithin wrong")
	}
	if !(Usage{}).IsZero() || a.IsZero() {
		t.Error("IsZero wrong")
	}
	if !a.NonNegative() || (Usage{CPU: -1}).NonNegative() {
		t.Error("NonNegative wrong")
	}
}

func TestUsageGetSet(t *testing.T) {
	u := Usage{CPU: 1, RAM: 2, Disk: 3}
	if u.Get(resource.CPU) != 1 || u.Get(resource.RAM) != 2 || u.Get(resource.Disk) != 3 {
		t.Error("Get wrong")
	}
	if u.Get(resource.Network) != 0 {
		t.Error("Network should read 0")
	}
	v := u.Set(resource.RAM, 9)
	if v.RAM != 9 || u.RAM != 2 {
		t.Error("Set must not mutate the receiver")
	}
	if w := u.Set(resource.Network, 5); w != u {
		t.Error("Set(Network) should be a no-op")
	}
}

func TestMachinePlaceRemove(t *testing.T) {
	m := NewMachine(0, Usage{CPU: 10, RAM: 20, Disk: 5})
	task := Task{ID: "t1", Team: "a", Req: Usage{CPU: 4, RAM: 8, Disk: 1}}
	if !m.Fits(task.Req) {
		t.Fatal("task should fit")
	}
	m.place(task)
	if m.Used() != task.Req || m.TaskCount() != 1 {
		t.Errorf("Used = %v, count = %d", m.Used(), m.TaskCount())
	}
	if m.Fits(Usage{CPU: 7}) {
		t.Error("overcommit accepted")
	}
	if !m.remove("t1") || m.remove("t1") {
		t.Error("remove semantics wrong")
	}
	if !m.Used().IsZero() {
		t.Errorf("Used after remove = %v", m.Used())
	}
}

func TestClusterPlaceEvict(t *testing.T) {
	c := New("r1", nil)
	c.AddMachines(2, Usage{CPU: 10, RAM: 10, Disk: 10})

	if err := c.Place(Task{ID: "a", Team: "x", Req: Usage{CPU: 6, RAM: 6, Disk: 6}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Place(Task{ID: "b", Team: "x", Req: Usage{CPU: 6, RAM: 6, Disk: 6}}); err != nil {
		t.Fatal(err)
	}
	// Third 6-unit task fits nowhere.
	err := c.Place(Task{ID: "c", Team: "x", Req: Usage{CPU: 6, RAM: 6, Disk: 6}})
	if !errors.Is(err, ErrNoFit) {
		t.Fatalf("err = %v, want ErrNoFit", err)
	}
	// Duplicate IDs are rejected.
	if err := c.Place(Task{ID: "a", Team: "x", Req: Usage{CPU: 1}}); !errors.Is(err, ErrDuplicateTask) {
		t.Fatalf("dup err = %v", err)
	}
	// Negative requirements are rejected.
	if err := c.Place(Task{ID: "neg", Team: "x", Req: Usage{CPU: -1}}); err == nil {
		t.Fatal("negative req accepted")
	}
	if c.TaskCount() != 2 {
		t.Errorf("TaskCount = %d", c.TaskCount())
	}
	if !c.Evict("a") || c.Evict("a") {
		t.Error("Evict semantics wrong")
	}
}

func TestClusterUtilization(t *testing.T) {
	c := New("r1", nil)
	c.AddMachines(4, Usage{CPU: 10, RAM: 10, Disk: 10})
	if err := c.Place(Task{ID: "t", Team: "x", Req: Usage{CPU: 20, RAM: 10, Disk: 0}}); !errors.Is(err, ErrNoFit) {
		t.Fatalf("oversized task: %v", err)
	}
	if err := c.Place(Task{ID: "t", Team: "x", Req: Usage{CPU: 10, RAM: 5, Disk: 0}}); err != nil {
		t.Fatal(err)
	}
	u := c.Utilization()
	if u.CPU != 0.25 || u.RAM != 0.125 || u.Disk != 0 {
		t.Errorf("Utilization = %v", u)
	}
	if got := c.Capacity(); got != (Usage{40, 40, 40}) {
		t.Errorf("Capacity = %v", got)
	}
}

func TestEmptyClusterMetrics(t *testing.T) {
	c := New("empty", nil)
	if u := c.Utilization(); !u.IsZero() {
		t.Errorf("Utilization = %v", u)
	}
	if s := c.Stranding(); !s.IsZero() {
		t.Errorf("Stranding = %v", s)
	}
}

func TestSchedulerPolicies(t *testing.T) {
	mk := func() []*Machine {
		a := NewMachine(0, Usage{CPU: 10, RAM: 10, Disk: 10})
		b := NewMachine(1, Usage{CPU: 10, RAM: 10, Disk: 10})
		// Machine a is half full.
		a.place(Task{ID: "bg", Team: "bg", Req: Usage{CPU: 5, RAM: 5, Disk: 5}})
		return []*Machine{a, b}
	}
	req := Usage{CPU: 2, RAM: 2, Disk: 2}

	if m := (FirstFit{}).Pick(mk(), req); m.ID != 0 {
		t.Errorf("FirstFit picked %d", m.ID)
	}
	if m := (BestFit{}).Pick(mk(), req); m.ID != 0 {
		t.Errorf("BestFit picked %d (wants the fuller machine)", m.ID)
	}
	if m := (WorstFit{}).Pick(mk(), req); m.ID != 1 {
		t.Errorf("WorstFit picked %d (wants the emptier machine)", m.ID)
	}
	// Nothing fits.
	if m := (FirstFit{}).Pick(mk(), Usage{CPU: 20}); m != nil {
		t.Error("FirstFit found impossible fit")
	}
	if m := (BestFit{}).Pick(mk(), Usage{CPU: 20}); m != nil {
		t.Error("BestFit found impossible fit")
	}
	if m := (WorstFit{}).Pick(mk(), Usage{CPU: 20}); m != nil {
		t.Error("WorstFit found impossible fit")
	}
	if len(Schedulers()) != 3 {
		t.Error("Schedulers() wrong")
	}
	for _, s := range Schedulers() {
		if s.Name() == "" {
			t.Error("unnamed scheduler")
		}
	}
}

func TestStranding(t *testing.T) {
	c := New("r1", nil)
	c.AddMachines(2, Usage{CPU: 10, RAM: 10, Disk: 10})
	// Fill machine 0's CPU completely, leaving RAM/Disk stranded there.
	if err := c.Place(Task{ID: "cpu-hog", Team: "x", Req: Usage{CPU: 10, RAM: 1, Disk: 1}}); err != nil {
		t.Fatal(err)
	}
	s := c.Stranding()
	// Machine 0 has 9 RAM free of 19 total free RAM.
	want := 9.0 / 19.0
	if s.RAM < want-1e-9 || s.RAM > want+1e-9 {
		t.Errorf("RAM stranding = %v, want %v", s.RAM, want)
	}
	if s.CPU != 0 {
		t.Errorf("CPU stranding = %v (no free CPU is stranded)", s.CPU)
	}
}

func TestTeamUsageAndSortedTeams(t *testing.T) {
	c := New("r1", nil)
	c.AddMachines(1, Usage{CPU: 100, RAM: 100, Disk: 100})
	c.Place(Task{ID: "1", Team: "beta", Req: Usage{CPU: 1}})
	c.Place(Task{ID: "2", Team: "alpha", Req: Usage{CPU: 2}})
	c.Place(Task{ID: "3", Team: "alpha", Req: Usage{CPU: 3}})
	u := c.TeamUsage()
	if u["alpha"].CPU != 5 || u["beta"].CPU != 1 {
		t.Errorf("TeamUsage = %v", u)
	}
	teams := c.SortedTeams()
	if len(teams) != 2 || teams[0] != "alpha" || teams[1] != "beta" {
		t.Errorf("SortedTeams = %v", teams)
	}
}

func TestQuickPlacementNeverOvercommits(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, sched := range Schedulers() {
			c := New("q", sched)
			c.AddMachines(rng.Intn(4)+1, Usage{CPU: 16, RAM: 64, Disk: 8})
			for i := 0; i < 50; i++ {
				req := Usage{
					CPU:  rng.Float64() * 8,
					RAM:  rng.Float64() * 32,
					Disk: rng.Float64() * 4,
				}
				// Errors are fine; overcommit is not.
				_, _ = i, c.Place(Task{ID: strings.Repeat("x", i+1), Team: "t", Req: req})
			}
			for _, m := range c.Machines() {
				if !m.Used().FitsWithin(m.Cap) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
