// Package baseline implements the traditional, non-market provisioning
// mechanisms the paper's introduction criticizes, used as comparison
// points: first-come-first-served grants at a fixed price, operator-ranked
// priority quotas, and proportional sharing. Their characteristic failure
// — "uneven utilization, significant shortages and surpluses in certain
// resource pools" — is what the market experiments measure against.
package baseline

import (
	"errors"
	"fmt"
	"sort"

	"clustermarket/internal/resource"
	"clustermarket/internal/stats"
)

// Request is one team's quota request under a traditional allocator. The
// demand vector is non-negative and names specific pools — unlike market
// bids there is no substitution, because a centrally administered quota
// process has no mechanism for expressing it.
type Request struct {
	Team   string
	Demand resource.Vector
	// Priority is the operator-assigned importance used by ManualQuota
	// (bigger is more important).
	Priority float64
}

// Validate checks the request against registry size r.
func (q *Request) Validate(r int) error {
	if q.Team == "" {
		return errors.New("baseline: request has empty team")
	}
	if len(q.Demand) != r {
		return fmt.Errorf("baseline: request %q has %d components, want %d", q.Team, len(q.Demand), r)
	}
	if err := q.Demand.Validate(); err != nil {
		return err
	}
	if !q.Demand.AllNonNegative(0) {
		return fmt.Errorf("baseline: request %q has negative demand", q.Team)
	}
	return nil
}

// Outcome reports what an allocator granted.
type Outcome struct {
	// Allocations[i] is what request i received (nil when fully denied).
	Allocations []resource.Vector
	// Granted is the aggregate allocation per pool.
	Granted resource.Vector
	// Unmet is the aggregate unserved demand per pool (the shortage).
	Unmet resource.Vector
	// Surplus is the capacity left over per pool.
	Surplus resource.Vector
}

// ShortageRate returns total unmet demand divided by total demand, the
// headline shortage statistic.
func (o *Outcome) ShortageRate() float64 {
	demand := o.Granted.Add(o.Unmet)
	tot := demand.Sum()
	if tot <= 0 {
		return 0
	}
	return o.Unmet.Sum() / tot
}

// SurplusRate returns total leftover capacity divided by total capacity.
func (o *Outcome) SurplusRate() float64 {
	capacity := o.Granted.Add(o.Surplus)
	tot := capacity.Sum()
	if tot <= 0 {
		return 0
	}
	return o.Surplus.Sum() / tot
}

// UtilizationSpread returns the coefficient of variation of per-pool
// utilization after the grant — the "uneven utilization" measure.
func (o *Outcome) UtilizationSpread() float64 {
	var utils []float64
	for i := range o.Granted {
		capacity := o.Granted[i] + o.Surplus[i]
		if capacity > 0 {
			utils = append(utils, o.Granted[i]/capacity)
		}
	}
	return stats.CoefficientOfVariation(utils)
}

// Allocator grants requests against fixed capacity.
type Allocator interface {
	Name() string
	// Allocate serves the requests against capacity (per-pool,
	// non-negative). Implementations must not overcommit any pool.
	Allocate(capacity resource.Vector, reqs []Request) (*Outcome, error)
}

func validateInputs(capacity resource.Vector, reqs []Request) error {
	if len(reqs) == 0 {
		return errors.New("baseline: no requests")
	}
	if !capacity.AllNonNegative(0) {
		return errors.New("baseline: negative capacity")
	}
	for i := range reqs {
		if err := reqs[i].Validate(len(capacity)); err != nil {
			return err
		}
	}
	return nil
}

func newOutcome(n, r int, capacity resource.Vector) *Outcome {
	return &Outcome{
		Allocations: make([]resource.Vector, n),
		Granted:     make(resource.Vector, r),
		Unmet:       make(resource.Vector, r),
		Surplus:     capacity.Clone(),
	}
}

// grantWhole gives request i its full demand if it fits in the remaining
// surplus, otherwise records the whole demand as unmet.
func (o *Outcome) grantWhole(i int, demand resource.Vector) {
	fits := true
	for j, q := range demand {
		if q > o.Surplus[j] {
			fits = false
			break
		}
	}
	if !fits {
		o.Unmet.AddInto(demand)
		return
	}
	o.Allocations[i] = demand.Clone()
	o.Granted.AddInto(demand)
	for j, q := range demand {
		o.Surplus[j] -= q
	}
}

// FixedPrice is the paper's "former fixed price" regime: requests are
// served in arrival order (all-or-nothing) until pools run dry. Price
// plays no rationing role, so popular pools develop shortages while
// unpopular ones sit idle.
type FixedPrice struct{}

// Name implements Allocator.
func (FixedPrice) Name() string { return "fixed-price-fcfs" }

// Allocate implements Allocator.
func (FixedPrice) Allocate(capacity resource.Vector, reqs []Request) (*Outcome, error) {
	if err := validateInputs(capacity, reqs); err != nil {
		return nil, err
	}
	o := newOutcome(len(reqs), len(capacity), capacity)
	for i := range reqs {
		o.grantWhole(i, reqs[i].Demand)
	}
	return o, nil
}

// ManualQuota models the operator deciding that "certain jobs / users are
// more important than others": requests are served in descending priority
// order, ties broken by team name for determinism.
type ManualQuota struct{}

// Name implements Allocator.
func (ManualQuota) Name() string { return "manual-priority-quota" }

// Allocate implements Allocator.
func (ManualQuota) Allocate(capacity resource.Vector, reqs []Request) (*Outcome, error) {
	if err := validateInputs(capacity, reqs); err != nil {
		return nil, err
	}
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := reqs[order[a]], reqs[order[b]]
		if ra.Priority != rb.Priority {
			return ra.Priority > rb.Priority
		}
		return ra.Team < rb.Team
	})
	o := newOutcome(len(reqs), len(capacity), capacity)
	for _, i := range order {
		o.grantWhole(i, reqs[i].Demand)
	}
	return o, nil
}

// ProportionalShare scales every request down by a common factor just
// large enough that no pool is overcommitted — the "equal share"
// alternative from the introduction. Everyone gets something, nobody gets
// what they actually need in congested pools.
type ProportionalShare struct{}

// Name implements Allocator.
func (ProportionalShare) Name() string { return "proportional-share" }

// Allocate implements Allocator.
func (ProportionalShare) Allocate(capacity resource.Vector, reqs []Request) (*Outcome, error) {
	if err := validateInputs(capacity, reqs); err != nil {
		return nil, err
	}
	r := len(capacity)
	total := make(resource.Vector, r)
	for i := range reqs {
		total.AddInto(reqs[i].Demand)
	}
	scale := 1.0
	for j := 0; j < r; j++ {
		if total[j] > capacity[j] && total[j] > 0 {
			if s := capacity[j] / total[j]; s < scale {
				scale = s
			}
		}
	}
	o := newOutcome(len(reqs), r, capacity)
	for i := range reqs {
		grant := reqs[i].Demand.Scale(scale)
		o.Allocations[i] = grant
		o.Granted.AddInto(grant)
		o.Unmet.AddInto(reqs[i].Demand.Sub(grant))
		for j, q := range grant {
			o.Surplus[j] -= q
		}
	}
	return o, nil
}

// Allocators lists the baseline mechanisms in a stable order.
func Allocators() []Allocator {
	return []Allocator{FixedPrice{}, ManualQuota{}, ProportionalShare{}}
}
