package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"clustermarket/internal/resource"
)

func TestRequestValidate(t *testing.T) {
	good := Request{Team: "a", Demand: resource.Vector{1, 0}}
	if err := good.Validate(2); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	bad := []Request{
		{Team: "", Demand: resource.Vector{1}},
		{Team: "a", Demand: resource.Vector{1, 2}},
		{Team: "a", Demand: resource.Vector{-1}},
		{Team: "a", Demand: resource.Vector{math.NaN()}},
	}
	for i, q := range bad {
		if err := q.Validate(1); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFixedPriceFCFS(t *testing.T) {
	capacity := resource.Vector{10, 10}
	reqs := []Request{
		{Team: "first", Demand: resource.Vector{6, 0}},
		{Team: "second", Demand: resource.Vector{6, 0}}, // does not fit
		{Team: "third", Demand: resource.Vector{3, 3}},  // fits in the rest
	}
	o, err := (FixedPrice{}).Allocate(capacity, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if o.Allocations[0] == nil || o.Allocations[1] != nil || o.Allocations[2] == nil {
		t.Fatalf("allocations = %v", o.Allocations)
	}
	if o.Unmet[0] != 6 {
		t.Errorf("Unmet = %v", o.Unmet)
	}
	if o.Surplus[0] != 1 || o.Surplus[1] != 7 {
		t.Errorf("Surplus = %v", o.Surplus)
	}
}

func TestManualQuotaPriorityOrder(t *testing.T) {
	capacity := resource.Vector{10}
	reqs := []Request{
		{Team: "low", Demand: resource.Vector{6}, Priority: 1},
		{Team: "high", Demand: resource.Vector{6}, Priority: 9},
	}
	o, err := (ManualQuota{}).Allocate(capacity, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if o.Allocations[0] != nil {
		t.Error("low priority served first")
	}
	if o.Allocations[1] == nil {
		t.Error("high priority denied")
	}
}

func TestManualQuotaTieBreaksByName(t *testing.T) {
	capacity := resource.Vector{6}
	reqs := []Request{
		{Team: "zeta", Demand: resource.Vector{6}, Priority: 5},
		{Team: "alpha", Demand: resource.Vector{6}, Priority: 5},
	}
	o, err := (ManualQuota{}).Allocate(capacity, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if o.Allocations[1] == nil || o.Allocations[0] != nil {
		t.Errorf("tie break wrong: %v", o.Allocations)
	}
}

func TestProportionalShare(t *testing.T) {
	capacity := resource.Vector{10, 100}
	reqs := []Request{
		{Team: "a", Demand: resource.Vector{10, 0}},
		{Team: "b", Demand: resource.Vector{10, 10}},
	}
	// Pool 0 is oversubscribed 2×, so everything scales by 0.5.
	o, err := (ProportionalShare{}).Allocate(capacity, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if o.Allocations[0][0] != 5 || o.Allocations[1][0] != 5 || o.Allocations[1][1] != 5 {
		t.Fatalf("allocations = %v", o.Allocations)
	}
	if got := o.Unmet.Sum(); got != 15 {
		t.Errorf("Unmet sum = %v", got)
	}
}

func TestProportionalShareNoScalingWhenFits(t *testing.T) {
	capacity := resource.Vector{10}
	reqs := []Request{{Team: "a", Demand: resource.Vector{4}}}
	o, err := (ProportionalShare{}).Allocate(capacity, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if o.Allocations[0][0] != 4 || o.Surplus[0] != 6 {
		t.Errorf("outcome = %+v", o)
	}
}

func TestOutcomeRates(t *testing.T) {
	o := &Outcome{
		Granted: resource.Vector{8, 0},
		Unmet:   resource.Vector{2, 0},
		Surplus: resource.Vector{0, 10},
	}
	if got := o.ShortageRate(); got != 0.2 {
		t.Errorf("ShortageRate = %v", got)
	}
	if got := o.SurplusRate(); math.Abs(got-10.0/18.0) > 1e-12 {
		t.Errorf("SurplusRate = %v", got)
	}
	// Pool 0 fully used, pool 1 idle: spread is the CV of {1, 0} = 1.
	if got := o.UtilizationSpread(); math.Abs(got-1) > 1e-12 {
		t.Errorf("UtilizationSpread = %v", got)
	}
	empty := &Outcome{Granted: resource.Vector{0}, Unmet: resource.Vector{0}, Surplus: resource.Vector{0}}
	if empty.ShortageRate() != 0 || empty.SurplusRate() != 0 {
		t.Error("degenerate rates nonzero")
	}
}

func TestAllocateInputValidation(t *testing.T) {
	for _, a := range Allocators() {
		if _, err := a.Allocate(resource.Vector{1}, nil); err == nil {
			t.Errorf("%s: empty requests accepted", a.Name())
		}
		if _, err := a.Allocate(resource.Vector{-1}, []Request{{Team: "a", Demand: resource.Vector{1}}}); err == nil {
			t.Errorf("%s: negative capacity accepted", a.Name())
		}
		if _, err := a.Allocate(resource.Vector{1}, []Request{{Team: "", Demand: resource.Vector{1}}}); err == nil {
			t.Errorf("%s: invalid request accepted", a.Name())
		}
	}
}

func TestAllocatorNames(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Allocators() {
		if a.Name() == "" {
			t.Error("unnamed allocator")
		}
		seen[a.Name()] = true
	}
	if len(seen) != 3 {
		t.Errorf("names collide: %v", seen)
	}
}

// TestQuickNoOvercommitAndConservation: for every allocator, granted
// quantities never exceed capacity per pool, and granted + unmet equals
// total demand.
func TestQuickNoOvercommitAndConservation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := rng.Intn(5) + 1
		capacity := make(resource.Vector, r)
		for i := range capacity {
			capacity[i] = float64(rng.Intn(50))
		}
		n := rng.Intn(12) + 1
		reqs := make([]Request, n)
		totalDemand := make(resource.Vector, r)
		for i := range reqs {
			d := make(resource.Vector, r)
			for j := range d {
				d[j] = float64(rng.Intn(20))
			}
			reqs[i] = Request{Team: string(rune('a' + i)), Demand: d, Priority: float64(rng.Intn(5))}
			totalDemand.AddInto(d)
		}
		for _, a := range Allocators() {
			o, err := a.Allocate(capacity, reqs)
			if err != nil {
				return false
			}
			for j := range capacity {
				if o.Granted[j] > capacity[j]+1e-9 {
					return false
				}
				if o.Surplus[j] < -1e-9 {
					return false
				}
				if math.Abs(o.Granted[j]+o.Unmet[j]-totalDemand[j]) > 1e-9 {
					return false
				}
				if math.Abs(o.Granted[j]+o.Surplus[j]-capacity[j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
