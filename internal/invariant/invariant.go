// Package invariant is the shared kernel of market correctness
// invariants. Every property the exchange's books must never violate —
// double-entry conservation, non-negative balances, commitment/exposure
// agreement, capacity-bounded settlement, reserve-floored clearing
// prices, at-most-one-leg XOR wins, and dense≡incremental engine
// equivalence — lives here exactly once, as a data-level check returning
// violations, plus convenience wrappers over a live Exchange or
// Federation.
//
// The scenario engine (internal/scenario) runs the kernel after every
// epoch; the conservation and stress tests in internal/market,
// internal/federation, and internal/sim consume the same functions
// instead of carrying their own assertion copies. A new invariant added
// here is immediately enforced by every soak, stress test, and scenario
// in the repository.
//
// All checks assume a quiescent market: no auction mid-settlement, no
// in-flight submissions. Mid-settlement reads can legitimately observe
// one order Won while its batchmate is still Open (see the Exchange doc
// comment); run the kernel between settlement waves, as the stress tests
// do after draining traffic.
package invariant

import (
	"fmt"
	"math"
	"sort"

	"clustermarket/internal/core"
	"clustermarket/internal/federation"
	"clustermarket/internal/market"
	"clustermarket/internal/resource"
)

// Eps is the default numeric tolerance. Settlement arithmetic is float64
// sums over at most a few thousand entries, so anything beyond 1e-6 is a
// real conservation failure, not rounding.
const Eps = 1e-6

// Violation is one broken invariant, identified by a stable kebab-case
// name (for exit-code mapping and log grepping) plus a human detail.
type Violation struct {
	// Invariant names the broken property, e.g. "ledger-balanced".
	Invariant string
	// Detail says where and by how much.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

func violatef(name, format string, args ...any) Violation {
	return Violation{Invariant: name, Detail: fmt.Sprintf(format, args...)}
}

// Reporter is the subset of *testing.T the test helpers need.
type Reporter interface {
	Helper()
	Errorf(format string, args ...any)
}

// Require reports every violation through t, prefixed with label.
func Require(t Reporter, label string, vs []Violation) {
	t.Helper()
	for _, v := range vs {
		t.Errorf("%s: %s", label, v)
	}
}

// ---------------------------------------------------------------------
// Data-level checks. Each takes plain snapshots so tests can exercise
// the checker itself against synthetic books.
// ---------------------------------------------------------------------

// CheckLedgerBalanced verifies double-entry conservation: the whole
// ledger sums to zero, and so does every per-auction batch (a balanced
// total can hide two auctions whose errors cancel).
func CheckLedgerBalanced(entries []market.LedgerEntry, eps float64) []Violation {
	var vs []Violation
	total := 0.0
	perAuction := make(map[int]float64)
	for _, le := range entries {
		total += le.Amount
		perAuction[le.Auction] += le.Amount
	}
	if math.Abs(total) > eps {
		vs = append(vs, violatef("ledger-balanced", "ledger sums to %g, want 0", total))
	}
	auctions := make([]int, 0, len(perAuction))
	for a := range perAuction {
		auctions = append(auctions, a)
	}
	sort.Ints(auctions)
	for _, a := range auctions {
		if s := perAuction[a]; math.Abs(s) > eps {
			vs = append(vs, violatef("ledger-balanced", "auction %d entries sum to %g, want 0", a, s))
		}
	}
	return vs
}

// CheckBalancesNonNegative verifies no account was driven below zero:
// the exchange commits budget at submission exactly so settlement can
// never overdraw.
func CheckBalancesNonNegative(balances map[string]float64, eps float64) []Violation {
	var vs []Violation
	for _, team := range sortedKeys(balances) {
		if bal := balances[team]; bal < -eps {
			vs = append(vs, violatef("non-negative-balance", "account %q balance %g < 0", team, bal))
		}
	}
	return vs
}

// CheckCommitmentsMatchExposure verifies the O(1) incremental budget
// commitments agree with the open book they cache: per team, the
// committed amount equals the summed worst-case exposure (MaxLimit > 0)
// of its Open orders.
func CheckCommitmentsMatchExposure(commitments map[string]float64, orders []*market.Order, eps float64) []Violation {
	exposure := make(map[string]float64)
	for _, o := range orders {
		if o.Status != market.Open {
			continue
		}
		if exp := o.Bid.MaxLimit(); exp > 0 {
			exposure[o.Team] += exp
		}
	}
	var vs []Violation
	teams := sortedKeys(commitments)
	for t := range exposure {
		if _, ok := commitments[t]; !ok {
			teams = append(teams, t)
		}
	}
	sort.Strings(teams)
	for _, team := range teams {
		if got, want := commitments[team], exposure[team]; math.Abs(got-want) > eps {
			vs = append(vs, violatef("commitments-match-exposure",
				"team %q committed %g, open-order exposure %g", team, got, want))
		}
	}
	return vs
}

// CheckWinsWithinCapacity verifies that, for every settled auction, the
// total quantity won per pool stays within capacity: the operator can
// only sell resources the fleet physically has.
func CheckWinsWithinCapacity(reg *resource.Registry, capacity resource.Vector, orders []*market.Order, eps float64) []Violation {
	won := make(map[int]resource.Vector)
	for _, o := range orders {
		if o.Status != market.Won {
			continue
		}
		v, ok := won[o.Auction]
		if !ok {
			v = reg.Zero()
			won[o.Auction] = v
		}
		for i, q := range o.Allocation {
			if q > 0 {
				v[i] += q
			}
		}
	}
	var vs []Violation
	auctions := make([]int, 0, len(won))
	for a := range won {
		auctions = append(auctions, a)
	}
	sort.Ints(auctions)
	for _, a := range auctions {
		for i, q := range won[a] {
			if q > capacity[i]+eps {
				vs = append(vs, violatef("wins-within-capacity",
					"auction %d won %g of %s, capacity %g", a, q, reg.Pool(i), capacity[i]))
			}
		}
	}
	return vs
}

// CheckClearingAboveReserve verifies every converged auction settled at
// prices componentwise at or above its reserve vector: the clock starts
// at the reserve and only ascends, so a clearing price below it means a
// corrupted record or a broken clock.
func CheckClearingAboveReserve(history []*market.AuctionRecord, eps float64) []Violation {
	var vs []Violation
	for _, rec := range history {
		if !rec.Converged {
			continue
		}
		for i := range rec.Prices {
			if rec.Prices[i] < rec.Reserve[i]-eps {
				vs = append(vs, violatef("clearing-above-reserve",
					"auction %d pool %d cleared at %g below reserve %g",
					rec.Number, i, rec.Prices[i], rec.Reserve[i]))
			}
		}
	}
	return vs
}

// CheckOpenCount verifies the per-stripe open counters agree with a
// status scan of the book.
func CheckOpenCount(count int, orders []*market.Order) []Violation {
	scan := 0
	for _, o := range orders {
		if o.Status == market.Open {
			scan++
		}
	}
	if count != scan {
		return []Violation{violatef("open-count", "OpenOrderCount = %d, status scan says %d", count, scan)}
	}
	return nil
}

// CheckLegsAtMostOneWin verifies the federation's XOR coordination
// invariant: no federated order ever wins more than one regional leg,
// a Won order won exactly one, and terminal orders carry no active leg.
func CheckLegsAtMostOneWin(orders []*federation.FedOrder) []Violation {
	var vs []Violation
	for _, fo := range orders {
		won := 0
		for _, l := range fo.Legs {
			if l.Status == market.Won {
				won++
			}
		}
		if won > 1 {
			vs = append(vs, violatef("xor-at-most-one-leg", "order %d won %d legs", fo.ID, won))
		}
		switch fo.Status {
		case market.Won:
			if won != 1 {
				vs = append(vs, violatef("xor-at-most-one-leg",
					"order %d is Won with %d winning legs", fo.ID, won))
			}
		case market.Open:
			// Routing in progress; Active may legitimately point anywhere.
		default:
			if fo.Active != -1 {
				vs = append(vs, violatef("terminal-order-inactive",
					"order %d is %s but still has active leg %d", fo.ID, fo.Status, fo.Active))
			}
		}
	}
	return vs
}

// CheckEngineEquivalence runs the same bid set through the incremental
// and dense clock engines and verifies the results are bit-identical —
// the spot form of the differential property the incremental engine's
// design guarantees. Non-convergence must agree too: both engines must
// stop at the same round with the same partial state.
func CheckEngineEquivalence(reg *resource.Registry, bids []*core.Bid, cfg core.Config) []Violation {
	run := func(engine core.Engine) (*core.Result, error) {
		c := cfg
		c.Engine = engine
		a, err := core.NewAuction(reg, bids, c)
		if err != nil {
			return nil, err
		}
		return a.Run()
	}
	inc, incErr := run(core.EngineIncremental)
	den, denErr := run(core.EngineDense)
	if (incErr == nil) != (denErr == nil) {
		return []Violation{violatef("engine-equivalence",
			"incremental err=%v, dense err=%v", incErr, denErr)}
	}
	if inc == nil || den == nil {
		if inc != den {
			return []Violation{violatef("engine-equivalence",
				"one engine returned a result, the other nil (inc=%v dense=%v)", inc != nil, den != nil)}
		}
		return nil
	}
	var vs []Violation
	fail := func(format string, args ...any) {
		vs = append(vs, violatef("engine-equivalence", format, args...))
	}
	if inc.Converged != den.Converged || inc.Rounds != den.Rounds {
		fail("converged/rounds: incremental (%v, %d) vs dense (%v, %d)",
			inc.Converged, inc.Rounds, den.Converged, den.Rounds)
	}
	if !vectorsEqual(inc.Prices, den.Prices) {
		fail("final prices differ: %v vs %v", inc.Prices, den.Prices)
	}
	for i := range bids {
		if inc.IsWinner(i) != den.IsWinner(i) {
			fail("bid %d: incremental winner=%v, dense winner=%v", i, inc.IsWinner(i), den.IsWinner(i))
			continue
		}
		if inc.Payments[i] != den.Payments[i] {
			fail("bid %d: payments differ: %v vs %v", i, inc.Payments[i], den.Payments[i])
		}
		if inc.ChosenBundle[i] != den.ChosenBundle[i] {
			fail("bid %d: chosen bundle %d vs %d", i, inc.ChosenBundle[i], den.ChosenBundle[i])
		}
		if !vectorsEqual(inc.Allocations[i], den.Allocations[i]) {
			fail("bid %d: allocations differ: %v vs %v", i, inc.Allocations[i], den.Allocations[i])
		}
	}
	return vs
}

func vectorsEqual(a, b resource.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Object-level wrappers.
// ---------------------------------------------------------------------

// CheckExchange runs the full exchange-level kernel over a quiescent
// exchange. The balance scan covers team accounts only: the operator's
// balance is the market's net position and legitimately goes negative
// when budget disbursements (which debit it) outrun settlement revenue.
func CheckExchange(ex *market.Exchange) []Violation {
	var vs []Violation
	orders := ex.Orders()
	vs = append(vs, CheckLedgerBalanced(ex.Ledger(), Eps)...)
	balances := make(map[string]float64, len(ex.Teams()))
	for _, team := range ex.Teams() {
		if bal, err := ex.Balance(team); err == nil {
			balances[team] = bal
		}
	}
	vs = append(vs, CheckBalancesNonNegative(balances, Eps)...)
	vs = append(vs, CheckCommitmentsMatchExposure(ex.BuyCommitments(), orders, Eps)...)
	vs = append(vs, CheckWinsWithinCapacity(ex.Registry(), ex.Fleet().CapacityVector(ex.Registry()), orders, Eps)...)
	vs = append(vs, CheckClearingAboveReserve(ex.History(), Eps)...)
	vs = append(vs, CheckOpenCount(ex.OpenOrderCount(), orders)...)
	return vs
}

// CheckFederation runs the kernel over every member region, then the
// cross-region routing invariants: XOR legs win at most once, and a Won
// order's recorded payment agrees with the winning regional book.
func CheckFederation(f *federation.Federation) []Violation {
	var vs []Violation
	for _, r := range f.Regions() {
		for _, v := range CheckExchange(r.Exchange()) {
			v.Detail = "region " + r.Name() + ": " + v.Detail
			vs = append(vs, v)
		}
	}
	orders := f.Orders()
	vs = append(vs, CheckLegsAtMostOneWin(orders)...)
	for _, fo := range orders {
		if fo.Status != market.Won {
			continue
		}
		for _, l := range fo.Legs {
			if l.Status != market.Won {
				continue
			}
			r := f.Region(l.Region)
			if r == nil {
				vs = append(vs, violatef("winning-leg-consistent",
					"order %d won in unknown region %q", fo.ID, l.Region))
				continue
			}
			o, err := r.Exchange().Order(l.OrderID)
			if err != nil {
				vs = append(vs, violatef("winning-leg-consistent",
					"order %d winning leg %d missing from region %q book: %v", fo.ID, l.OrderID, l.Region, err))
				continue
			}
			if o.Status != market.Won || o.Payment != fo.Payment {
				vs = append(vs, violatef("winning-leg-consistent",
					"order %d: federation says Won/%g, region %q book says %s/%g",
					fo.ID, fo.Payment, l.Region, o.Status, o.Payment))
			}
		}
	}
	return vs
}

// RequireExchange runs CheckExchange and reports violations through t.
func RequireExchange(t Reporter, label string, ex *market.Exchange) {
	t.Helper()
	Require(t, label, CheckExchange(ex))
}

// RequireFederation runs CheckFederation and reports violations through t.
func RequireFederation(t Reporter, label string, f *federation.Federation) {
	t.Helper()
	Require(t, label, CheckFederation(f))
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
