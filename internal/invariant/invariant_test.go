package invariant

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/federation"
	"clustermarket/internal/market"
	"clustermarket/internal/resource"
)

// --- data-level checkers against synthetic books: each must catch the
// violation it exists for, and stay silent on a clean book. ---

func names(vs []Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Invariant
	}
	return out
}

func wantViolation(t *testing.T, vs []Violation, invariant string) {
	t.Helper()
	for _, v := range vs {
		if v.Invariant == invariant {
			return
		}
	}
	t.Errorf("violations %v do not include %q", names(vs), invariant)
}

func TestCheckLedgerBalanced(t *testing.T) {
	clean := []market.LedgerEntry{
		{Auction: 1, Team: "a", Amount: -10},
		{Auction: 1, Team: "operator", Amount: 10},
		{Auction: 2, Team: "b", Amount: -4},
		{Auction: 2, Team: "operator", Amount: 4},
	}
	if vs := CheckLedgerBalanced(clean, Eps); len(vs) != 0 {
		t.Errorf("clean ledger flagged: %v", vs)
	}
	// Total balances but auction 1 is short exactly what auction 2 is
	// over — the per-auction check must catch what the total hides.
	crossCancel := []market.LedgerEntry{
		{Auction: 1, Team: "a", Amount: -10},
		{Auction: 1, Team: "operator", Amount: 7},
		{Auction: 2, Team: "b", Amount: -4},
		{Auction: 2, Team: "operator", Amount: 7},
	}
	vs := CheckLedgerBalanced(crossCancel, Eps)
	if len(vs) != 2 {
		t.Errorf("cross-cancelling imbalance produced %d violations, want 2 per-auction: %v", len(vs), vs)
	}
	wantViolation(t, vs, "ledger-balanced")
}

func TestCheckBalancesNonNegative(t *testing.T) {
	if vs := CheckBalancesNonNegative(map[string]float64{"a": 0, "b": 12.5}, Eps); len(vs) != 0 {
		t.Errorf("clean balances flagged: %v", vs)
	}
	vs := CheckBalancesNonNegative(map[string]float64{"a": -0.5}, Eps)
	wantViolation(t, vs, "non-negative-balance")
}

func TestCheckCommitmentsMatchExposure(t *testing.T) {
	orders := []*market.Order{
		{ID: 0, Team: "a", Status: market.Open, Bid: &core.Bid{Limit: 40}},
		{ID: 1, Team: "a", Status: market.Won, Bid: &core.Bid{Limit: 99}}, // settled: no exposure
		{ID: 2, Team: "b", Status: market.Open, Bid: &core.Bid{Limit: -5}}, // seller: no exposure
	}
	if vs := CheckCommitmentsMatchExposure(map[string]float64{"a": 40}, orders, Eps); len(vs) != 0 {
		t.Errorf("clean commitments flagged: %v", vs)
	}
	// Committed more than the book shows, and a team the counters missed.
	vs := CheckCommitmentsMatchExposure(map[string]float64{"a": 139}, orders, Eps)
	wantViolation(t, vs, "commitments-match-exposure")
	orders = append(orders, &market.Order{ID: 3, Team: "c", Status: market.Open, Bid: &core.Bid{Limit: 7}})
	vs = CheckCommitmentsMatchExposure(map[string]float64{"a": 40}, orders, Eps)
	wantViolation(t, vs, "commitments-match-exposure")
}

func TestCheckWinsWithinCapacity(t *testing.T) {
	reg := resource.NewStandardRegistry("c1")
	capacity := reg.Zero()
	for i := range capacity {
		capacity[i] = 100
	}
	alloc := reg.Zero()
	alloc[0] = 60
	orders := []*market.Order{
		{ID: 0, Team: "a", Status: market.Won, Auction: 1, Allocation: alloc},
		{ID: 1, Team: "b", Status: market.Won, Auction: 2, Allocation: alloc},
	}
	// 60 per auction is fine even though the two auctions sum to 120:
	// capacity bounds each settlement wave, not the market's lifetime.
	if vs := CheckWinsWithinCapacity(reg, capacity, orders, Eps); len(vs) != 0 {
		t.Errorf("clean wins flagged: %v", vs)
	}
	over := reg.Zero()
	over[0] = 50
	orders = append(orders, &market.Order{ID: 2, Team: "c", Status: market.Won, Auction: 2, Allocation: over})
	vs := CheckWinsWithinCapacity(reg, capacity, orders, Eps)
	wantViolation(t, vs, "wins-within-capacity")
}

func TestCheckClearingAboveReserve(t *testing.T) {
	recs := []*market.AuctionRecord{
		{Number: 1, Converged: true, Reserve: resource.Vector{1, 2}, Prices: resource.Vector{1, 3}},
		// Non-converged records are exempt: their final prices are not
		// clearing prices.
		{Number: 2, Converged: false, Reserve: resource.Vector{5, 5}, Prices: resource.Vector{0, 0}},
	}
	if vs := CheckClearingAboveReserve(recs, Eps); len(vs) != 0 {
		t.Errorf("clean history flagged: %v", vs)
	}
	recs = append(recs, &market.AuctionRecord{
		Number: 3, Converged: true, Reserve: resource.Vector{2, 2}, Prices: resource.Vector{2, 1.5},
	})
	vs := CheckClearingAboveReserve(recs, Eps)
	wantViolation(t, vs, "clearing-above-reserve")
}

func TestCheckOpenCount(t *testing.T) {
	orders := []*market.Order{
		{Status: market.Open}, {Status: market.Won}, {Status: market.Open},
	}
	if vs := CheckOpenCount(2, orders); len(vs) != 0 {
		t.Errorf("matching count flagged: %v", vs)
	}
	wantViolation(t, CheckOpenCount(3, orders), "open-count")
}

func TestCheckLegsAtMostOneWin(t *testing.T) {
	clean := []*federation.FedOrder{
		{ID: 0, Status: market.Won, Active: -1, Legs: []*federation.Leg{
			{Region: "a", Status: market.Lost}, {Region: "b", Status: market.Won},
		}},
		{ID: 1, Status: market.Open, Active: 0, Legs: []*federation.Leg{{Region: "a", Status: market.Open}}},
	}
	if vs := CheckLegsAtMostOneWin(clean); len(vs) != 0 {
		t.Errorf("clean orders flagged: %v", vs)
	}
	double := []*federation.FedOrder{
		{ID: 2, Status: market.Won, Active: -1, Legs: []*federation.Leg{
			{Region: "a", Status: market.Won}, {Region: "b", Status: market.Won},
		}},
	}
	wantViolation(t, CheckLegsAtMostOneWin(double), "xor-at-most-one-leg")
	wonNone := []*federation.FedOrder{
		{ID: 3, Status: market.Won, Active: -1, Legs: []*federation.Leg{{Region: "a", Status: market.Lost}}},
	}
	wantViolation(t, CheckLegsAtMostOneWin(wonNone), "xor-at-most-one-leg")
	danglingActive := []*federation.FedOrder{
		{ID: 4, Status: market.Lost, Active: 1, Legs: []*federation.Leg{
			{Region: "a", Status: market.Lost}, {Region: "b", Status: market.Lost},
		}},
	}
	wantViolation(t, CheckLegsAtMostOneWin(danglingActive), "terminal-order-inactive")
}

func TestCheckEngineEquivalence(t *testing.T) {
	reg := resource.NewStandardRegistry("c1", "c2")
	rng := rand.New(rand.NewSource(5))
	var bids []*core.Bid
	for i := 0; i < 12; i++ {
		b := &core.Bid{User: "u", Limit: 5 + rng.Float64()*80}
		v := reg.Zero()
		v[rng.Intn(reg.Len())] = float64(1 + rng.Intn(8))
		b.Bundles = []resource.Vector{v}
		bids = append(bids, b)
	}
	sell := reg.Zero()
	for i := range sell {
		sell[i] = -20
	}
	bids = append(bids, &core.Bid{User: "op", Bundles: []resource.Vector{sell}, Limit: -0.001})
	start := reg.Zero()
	for i := range start {
		start[i] = 1
	}
	if vs := CheckEngineEquivalence(reg, bids, core.Config{Start: start}); len(vs) != 0 {
		t.Errorf("engines disagree on a plain market: %v", vs)
	}
}

// --- object-level wrappers over a real market ---

func testExchange(t *testing.T) *market.Exchange {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	fleet := cluster.NewFleet()
	for i, name := range []string{"c1", "c2"} {
		c := cluster.New(name, nil)
		c.AddMachines(10, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			t.Fatal(err)
		}
		util := 0.2 + 0.4*float64(i)
		if err := fleet.FillToUtilization(rng, name, cluster.Usage{CPU: util, RAM: util, Disk: util}); err != nil {
			t.Fatal(err)
		}
	}
	ex, err := market.NewExchange(fleet, market.Config{InitialBudget: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func TestCheckExchangeCleanMarket(t *testing.T) {
	ex := testExchange(t)
	for _, team := range []string{"alpha", "beta"} {
		if err := ex.OpenAccount(team); err != nil {
			t.Fatal(err)
		}
	}
	for epoch := 0; epoch < 3; epoch++ {
		if _, err := ex.SubmitProduct("alpha", "batch-compute", 2, []string{"c1", "c2"}, 150); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.SubmitProduct("beta", "serving-frontend", 1, []string{"c2"}, 120); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ex.RunAuction(); err != nil && !errors.Is(err, core.ErrNoConvergence) {
			t.Fatal(err)
		}
		RequireExchange(t, "epoch", ex)
	}
	if err := ex.Disburse(market.EqualShares, 500); err != nil {
		t.Fatal(err)
	}
	RequireExchange(t, "after disbursement", ex)
}

func TestCheckFederationCleanMarket(t *testing.T) {
	build := func(name string, util float64) *federation.Region {
		rng := rand.New(rand.NewSource(7))
		fleet := cluster.NewFleet()
		cn := name + "-r1"
		c := cluster.New(cn, nil)
		c.AddMachines(10, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			t.Fatal(err)
		}
		if err := fleet.FillToUtilization(rng, cn, cluster.Usage{CPU: util, RAM: util, Disk: util}); err != nil {
			t.Fatal(err)
		}
		r, err := federation.NewRegion(name, fleet, market.Config{InitialBudget: 1e5})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	f, err := federation.NewFederation(build("hot", 0.8), build("cold", 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.OpenAccount("alpha"); err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 3; epoch++ {
		if _, err := f.SubmitProduct("alpha", "batch-compute", 1, []string{"hot-r1", "cold-r1"}, 200); err != nil {
			t.Fatal(err)
		}
		for _, tk := range f.Tick() {
			if tk.Err != nil && !errors.Is(tk.Err, core.ErrNoConvergence) {
				t.Fatal(tk.Err)
			}
		}
		RequireFederation(t, "epoch", f)
	}
}

// recorder satisfies Reporter and captures the formatted failures, so the
// Require helpers themselves are testable.
type recorder struct{ msgs []string }

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.msgs = append(r.msgs, strings.TrimSpace(format))
}

func TestRequireForwardsViolations(t *testing.T) {
	rec := &recorder{}
	Require(rec, "soak", []Violation{{Invariant: "x", Detail: "d"}, {Invariant: "y", Detail: "e"}})
	if len(rec.msgs) != 2 {
		t.Errorf("Require forwarded %d failures, want 2", len(rec.msgs))
	}
	Require(rec, "soak", nil)
	if len(rec.msgs) != 2 {
		t.Errorf("clean check still reported: %v", rec.msgs)
	}
}
