package telemetry

import (
	"sync"
	"time"
)

// Health is the shared state behind a /healthz probe: when the process
// started, whether a journal holds its lock, and the outcome of the
// most recent invariant check. Writers (the serve loop's OnTick hook,
// recovery code) and readers (the HTTP handler) may race; every method
// is safe for concurrent use. A nil *Health is a valid no-op for
// components that run without a probe attached.
type Health struct {
	mu         sync.Mutex
	start      time.Time
	journalDir string
	journaled  bool
	checks     uint64
	failures   uint64
	lastCheck  time.Time
	lastBad    []string // violations from the most recent check, nil if clean
}

// NewHealth returns a health record anchored at the given start time.
func NewHealth(start time.Time) *Health {
	return &Health{start: start}
}

// SetJournal records whether a journal is attached (holding its
// directory flock) and where.
func (h *Health) SetJournal(dir string, attached bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.journalDir, h.journaled = dir, attached
	h.mu.Unlock()
}

// RecordCheck records one invariant-check outcome: the violation
// strings (empty or nil means the check passed) and when it ran.
func (h *Health) RecordCheck(at time.Time, violations []string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.checks++
	if len(violations) > 0 {
		h.failures++
		h.lastBad = append([]string(nil), violations...)
	} else {
		h.lastBad = nil
	}
	h.lastCheck = at
	h.mu.Unlock()
}

// HealthSnapshot is one consistent read of the probe state, shaped for
// direct JSON encoding by the HTTP layer.
type HealthSnapshot struct {
	Healthy        bool     `json:"healthy"`
	UptimeSeconds  float64  `json:"uptime_seconds"`
	JournalDir     string   `json:"journal_dir,omitempty"`
	JournalLocked  bool     `json:"journal_locked"`
	ChecksTotal    uint64   `json:"invariant_checks_total"`
	CheckFailures  uint64   `json:"invariant_failures_total"`
	LastCheckAgoMS int64    `json:"last_check_age_ms"`
	Violations     []string `json:"violations,omitempty"`
}

// Snapshot reads the probe state at the given time. Healthy means the
// most recent invariant check (if any has run) found no violations; a
// probe that has never been checked reports healthy, so a process is
// ready as soon as it serves. A nil *Health snapshots as healthy with
// zero uptime.
func (h *Health) Snapshot(now time.Time) HealthSnapshot {
	if h == nil {
		return HealthSnapshot{Healthy: true, LastCheckAgoMS: -1}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HealthSnapshot{
		Healthy:       len(h.lastBad) == 0,
		JournalDir:    h.journalDir,
		JournalLocked: h.journaled,
		ChecksTotal:   h.checks,
		CheckFailures: h.failures,
		Violations:    h.lastBad,
	}
	if !h.start.IsZero() {
		s.UptimeSeconds = now.Sub(h.start).Seconds()
	}
	if h.lastCheck.IsZero() {
		s.LastCheckAgoMS = -1
	} else {
		s.LastCheckAgoMS = now.Sub(h.lastCheck).Milliseconds()
	}
	return s
}
