package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFirehoseDeliversInOrder(t *testing.T) {
	f := NewFirehose()
	sub := f.Subscribe(16)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		f.Publish("test", "tick", i)
	}
	for i := 0; i < 10; i++ {
		ev := <-sub.C
		if ev.Payload.(int) != i {
			t.Fatalf("event %d: payload = %v", i, ev.Payload)
		}
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d: seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Source != "test" || ev.Kind != "tick" {
			t.Fatalf("event %d: source/kind = %q/%q", i, ev.Source, ev.Kind)
		}
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("Dropped() = %d, want 0", d)
	}
}

// TestFirehoseDropOldest pins the drop-oldest contract exactly: a
// stalled subscriber with a buffer of N that receives N+K publishes
// drops exactly K events — the K *oldest* — and its buffer holds the
// newest N.
func TestFirehoseDropOldest(t *testing.T) {
	const buf, total = 4, 11
	f := NewFirehose()
	sub := f.Subscribe(buf)
	defer sub.Close()
	for i := 0; i < total; i++ {
		f.Publish("test", "tick", i)
	}
	if d := sub.Dropped(); d != total-buf {
		t.Fatalf("Dropped() = %d, want %d", d, total-buf)
	}
	if d := f.Dropped(); d != total-buf {
		t.Fatalf("firehose Dropped() = %d, want %d", d, total-buf)
	}
	// The survivors are the newest buf events, still in order.
	for i := total - buf; i < total; i++ {
		ev := <-sub.C
		if ev.Payload.(int) != i {
			t.Fatalf("surviving event payload = %v, want %d", ev.Payload, i)
		}
	}
	select {
	case ev := <-sub.C:
		t.Fatalf("unexpected extra event %v", ev)
	default:
	}
}

func TestFirehoseMultipleSubscribersIndependentDrops(t *testing.T) {
	f := NewFirehose()
	wide := f.Subscribe(64)
	narrow := f.Subscribe(2)
	defer wide.Close()
	defer narrow.Close()
	for i := 0; i < 10; i++ {
		f.Publish("test", "tick", i)
	}
	if d := wide.Dropped(); d != 0 {
		t.Fatalf("wide subscriber dropped %d", d)
	}
	if d := narrow.Dropped(); d != 8 {
		t.Fatalf("narrow subscriber dropped %d, want 8", d)
	}
	if n := f.Subscribers(); n != 2 {
		t.Fatalf("Subscribers() = %d, want 2", n)
	}
	if n := f.Published(); n != 10 {
		t.Fatalf("Published() = %d, want 10", n)
	}
}

func TestFirehoseCloseStopsDeliveryAndRange(t *testing.T) {
	f := NewFirehose()
	sub := f.Subscribe(8)
	f.Publish("test", "tick", 1)
	f.Publish("test", "tick", 2)
	sub.Close()
	sub.Close() // idempotent
	f.Publish("test", "tick", 3)
	var got []int
	for ev := range sub.C { // terminates: Close closed the channel
		got = append(got, ev.Payload.(int))
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("drained %v, want [1 2]", got)
	}
	if f.Active() {
		t.Fatal("Active() after last Close")
	}
}

func TestFirehoseNilIsInert(t *testing.T) {
	var f *Firehose
	if f.Active() {
		t.Fatal("nil firehose Active")
	}
	f.Publish("test", "tick", nil) // must not panic
	if f.Published() != 0 || f.Subscribers() != 0 || f.Dropped() != 0 {
		t.Fatal("nil firehose reported non-zero counters")
	}
}

// TestFirehosePublishNoSubscriberAllocFree pins the idle-path
// contract at the package level: with no subscriber, Publish performs
// zero allocations (the market-level guard in the root bench suite
// pins the same property end-to-end through Submit).
func TestFirehosePublishNoSubscriberAllocFree(t *testing.T) {
	f := NewFirehose()
	payload := &Event{} // prebuilt; callers guard payload construction with Active()
	allocs := testing.AllocsPerRun(1000, func() {
		f.Publish("test", "tick", payload)
	})
	if allocs != 0 {
		t.Fatalf("Publish with no subscriber: %v allocs/op, want 0", allocs)
	}
}

// TestFirehoseConcurrentPublishersAndStalls exercises the drop loop
// under contention (meaningful chiefly under -race): many publishers,
// one slow reader, one reader that never drains. Nothing may deadlock,
// delivery to the draining reader plus its drops must account for
// every publish it was subscribed for.
func TestFirehoseConcurrentPublishersAndStalls(t *testing.T) {
	const publishers, perPublisher = 8, 500
	f := NewFirehose()
	stalled := f.Subscribe(4)
	defer stalled.Close()
	draining := f.Subscribe(32)

	var received int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range draining.C {
			received++
			time.Sleep(time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				f.Publish("test", "tick", p)
			}
		}(p)
	}
	wg.Wait()
	draining.Close()
	<-done
	total := publishers * perPublisher
	if got := received + int(draining.Dropped()); got != total {
		t.Fatalf("draining subscriber: received %d + dropped %d = %d, want %d",
			received, draining.Dropped(), got, total)
	}
	// The stalled subscriber still holds its buffer's worth; the rest
	// must be accounted as drops, monotonically.
	if got := int(stalled.Dropped()); got != total-4 {
		t.Fatalf("stalled subscriber dropped %d, want %d", got, total-4)
	}
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(2 * time.Millisecond)   // bucket 1
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(50 * time.Millisecond)  // bucket 2
	h.Observe(2 * time.Second)        // +Inf
	s := h.Snapshot()
	want := []uint64{1, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d count = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Inf != 1 {
		t.Fatalf("Inf = %d, want 1", s.Inf)
	}
	wantSum := (500*time.Microsecond + 7*time.Millisecond + 50*time.Millisecond + 2*time.Second).Seconds()
	if diff := s.Sum - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Sum = %v, want %v", s.Sum, wantSum)
	}
	var nilH *Histogram
	nilH.Observe(time.Second) // no-op, no panic
	if got := nilH.Snapshot(); got.Inf != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
}

func TestExpositionFormat(t *testing.T) {
	var e Exposition
	e.Counter("m_total", "A counter.", 42)
	e.Gauge("m_open", "A gauge.", 3)
	e.LabeledMap("m_by_pool", "gauge", "Per pool.", "pool", map[string]float64{
		"r2/cpu": 2.5, "r1/cpu": 1.5,
	})
	e.Histogram("m_lat_seconds", "Latency.", HistogramSnapshot{
		Bounds: []float64{0.001, 0.01},
		Counts: []uint64{3, 2},
		Inf:    1,
		Sum:    0.25,
	})
	out := e.String()
	for _, want := range []string{
		"# HELP m_total A counter.\n# TYPE m_total counter\nm_total 42\n",
		"# TYPE m_open gauge\nm_open 3\n",
		"m_by_pool{pool=\"r1/cpu\"} 1.5\nm_by_pool{pool=\"r2/cpu\"} 2.5\n",
		"m_lat_seconds_bucket{le=\"0.001\"} 3\n",
		"m_lat_seconds_bucket{le=\"0.01\"} 5\n",
		"m_lat_seconds_bucket{le=\"+Inf\"} 6\n",
		"m_lat_seconds_sum 0.25\nm_lat_seconds_count 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "%!") {
		t.Fatalf("format artifact in exposition:\n%s", out)
	}
}

func TestExpositionLabelEscaping(t *testing.T) {
	var e Exposition
	e.LabeledSeries("m", "gauge", "Escapes.", []LabeledValue{
		{Labels: []string{"k", `a"b\c` + "\nd"}, Value: 1},
	})
	want := `m{k="a\"b\\c\nd"} 1` + "\n"
	if !strings.Contains(e.String(), want) {
		t.Fatalf("escaped sample missing %q in:\n%s", want, e.String())
	}
}

func TestHealthSnapshot(t *testing.T) {
	t0 := time.Unix(1000, 0)
	h := NewHealth(t0)
	h.SetJournal("/tmp/j", true)
	s := h.Snapshot(t0.Add(5 * time.Second))
	if !s.Healthy || !s.JournalLocked || s.JournalDir != "/tmp/j" {
		t.Fatalf("initial snapshot = %+v", s)
	}
	if s.UptimeSeconds != 5 || s.LastCheckAgoMS != -1 {
		t.Fatalf("initial snapshot = %+v", s)
	}

	h.RecordCheck(t0.Add(6*time.Second), []string{"ledger unbalanced"})
	s = h.Snapshot(t0.Add(7 * time.Second))
	if s.Healthy || s.ChecksTotal != 1 || s.CheckFailures != 1 {
		t.Fatalf("after failure: %+v", s)
	}
	if len(s.Violations) != 1 || s.Violations[0] != "ledger unbalanced" {
		t.Fatalf("after failure: violations = %v", s.Violations)
	}
	if s.LastCheckAgoMS != 1000 {
		t.Fatalf("after failure: age = %dms", s.LastCheckAgoMS)
	}

	h.RecordCheck(t0.Add(8*time.Second), nil)
	s = h.Snapshot(t0.Add(8 * time.Second))
	if !s.Healthy || s.ChecksTotal != 2 || s.CheckFailures != 1 || s.Violations != nil {
		t.Fatalf("after recovery: %+v", s)
	}

	var nilH *Health
	nilH.SetJournal("x", true)
	nilH.RecordCheck(t0, nil)
	if got := nilH.Snapshot(t0); !got.Healthy {
		t.Fatal("nil health not healthy")
	}
}

func TestFirehoseSubscribeUnsubscribeChurn(t *testing.T) {
	f := NewFirehose()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			f.Publish("test", "tick", i)
		}
	}()
	for i := 0; i < 50; i++ {
		sub := f.Subscribe(4)
		<-sub.C
		sub.Close()
	}
	close(stop)
	wg.Wait()
	if n := f.Subscribers(); n != 0 {
		t.Fatalf("Subscribers() = %d after churn, want 0", n)
	}
	_ = fmt.Sprintf("%d", f.Published())
}
