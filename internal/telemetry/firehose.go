// Package telemetry is the market's operational nervous system: a
// non-blocking event firehose the exchange, federation router, and
// scenario engine publish typed events into, plus the hand-rolled
// Prometheus text exposition and health probe types the web front end
// and marketd serve from.
//
// The firehose contract is built around one asymmetry: publishers are
// hot paths (order submission, settlement) and must never block or
// allocate for observability; subscribers are ops tooling (an SSE
// stream, a test harness) that may stall arbitrarily. So every
// subscriber owns a bounded buffered channel, and a publisher that
// finds it full drops the *oldest* buffered event — counting the drop
// on the subscriber — and delivers the new one. A live ops view wants
// the freshest state; a consumer that needs a lossless stream sizes
// its buffer for its lag and asserts Dropped() == 0, which is exactly
// what the scenario fingerprint-reconstruction test does.
//
// With no subscriber attached, Publish is one atomic load and a
// branch: no event is materialized at all. Event materialization is
// therefore decoupled from journaling — an exchange publishes the same
// typed events to the firehose whether or not a WAL is attached, and
// replay (which re-applies journaled events) publishes nothing, so a
// recovered process does not re-emit its own history.
package telemetry

import (
	"sync"
	"sync/atomic"
)

// Event is one firehose record. Source identifies the publisher
// ("market", "fed", "scenario"), Kind is the publisher's own event
// kind (e.g. "order-settled"), and Payload is the publisher's typed
// event value — shared, not copied, so subscribers must treat it as
// immutable. Seq is a firehose-global sequence number assigned at
// publish; gaps in a subscriber's observed Seq are not drops (drops
// are counted per subscriber), just events published before it
// subscribed or filtered by source.
type Event struct {
	Seq     uint64
	Source  string
	Kind    string
	Payload any
}

// Firehose is a bounded pub/sub fan-out. The zero value is not usable;
// use NewFirehose. A nil *Firehose is a valid no-op publisher: Active
// reports false and Publish returns immediately, so components hold a
// possibly-nil *Firehose and publish unconditionally guarded by one
// Active() branch.
type Firehose struct {
	seq     atomic.Uint64
	active  atomic.Int64                    // current subscriber count
	dropped atomic.Uint64                   // total drops across all subscribers
	subs    atomic.Pointer[[]*Subscription] // copy-on-write subscriber list
	mu      sync.Mutex                      // serializes Subscribe/Unsubscribe
}

// NewFirehose returns an empty firehose.
func NewFirehose() *Firehose {
	f := &Firehose{}
	subs := make([]*Subscription, 0)
	f.subs.Store(&subs)
	return f
}

// Active reports whether at least one subscriber is attached. It is
// the publisher fast path: one atomic load and one branch, nil-safe,
// so hot paths check it before building an event payload and pay
// nothing for telemetry nobody is watching.
func (f *Firehose) Active() bool {
	return f != nil && f.active.Load() > 0
}

// Publish fans the event out to every subscriber without blocking.
// A subscriber whose buffer is full loses its oldest buffered event
// (counted on that subscriber's Dropped) in favor of this one.
// Publish is safe for concurrent use and nil-safe.
//
//marketlint:allocfree
func (f *Firehose) Publish(source, kind string, payload any) {
	if f == nil || f.active.Load() == 0 {
		return
	}
	ev := Event{Seq: f.seq.Add(1), Source: source, Kind: kind, Payload: payload}
	subs := f.subs.Load()
	if subs == nil {
		return
	}
	for _, s := range *subs {
		s.send(ev)
	}
}

// Published returns the total number of events published (the current
// sequence number).
func (f *Firehose) Published() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// Subscribers returns the current subscriber count.
func (f *Firehose) Subscribers() int {
	if f == nil {
		return 0
	}
	return int(f.active.Load())
}

// Dropped returns the total number of events dropped across all
// subscribers, including subscribers that have since closed.
func (f *Firehose) Dropped() uint64 {
	if f == nil {
		return 0
	}
	return f.dropped.Load()
}

// Subscribe attaches a new subscriber with a buffer of the given size
// (clamped to at least 1). The caller receives events on C and must
// Close the subscription when done; an abandoned open subscription
// degrades into a drop-everything sink but never blocks publishers.
func (f *Firehose) Subscribe(buf int) *Subscription {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Event, buf)
	s := &Subscription{f: f, ch: ch, C: ch}
	f.mu.Lock()
	old := *f.subs.Load()
	next := make([]*Subscription, len(old)+1)
	copy(next, old)
	next[len(old)] = s
	f.subs.Store(&next)
	f.active.Add(1)
	f.mu.Unlock()
	return s
}

// unsubscribe removes s from the copy-on-write list. Idempotent.
func (f *Firehose) unsubscribe(s *Subscription) {
	f.mu.Lock()
	defer f.mu.Unlock()
	old := *f.subs.Load()
	for i, cand := range old {
		if cand == s {
			next := make([]*Subscription, 0, len(old)-1)
			next = append(next, old[:i]...)
			next = append(next, old[i+1:]...)
			f.subs.Store(&next)
			f.active.Add(-1)
			return
		}
	}
}

// Subscription is one attached consumer. Receive events from C; call
// Close when done (C is closed by Close, so ranging over it
// terminates).
type Subscription struct {
	f  *Firehose
	ch chan Event
	// C delivers the subscription's events. It is the same channel
	// send targets; exposed receive-only.
	C       <-chan Event
	dropped atomic.Uint64

	mu     sync.Mutex // serializes send vs. send and send vs. Close
	closed bool
}

// send delivers ev with drop-oldest semantics. The subscription mutex
// makes the close race safe (no send on a closed channel) and
// serializes concurrent publishers' drop loops; every operation under
// it is non-blocking, so publishers contend only with each other for
// nanoseconds, never with the subscriber.
//
//marketlint:allocfree
func (s *Subscription) send(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for {
		select {
		case s.ch <- ev:
			return
		default:
		}
		// Buffer full: evict the oldest buffered event and retry. The
		// receiver may race us to it, in which case the retry succeeds
		// without a drop.
		select {
		case <-s.ch:
			s.dropped.Add(1)
			s.f.dropped.Add(1)
		default:
		}
	}
}

// Dropped returns how many events this subscriber has lost to
// drop-oldest eviction. It is monotonic and safe to read concurrently
// with delivery.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscriber and closes C. Events already buffered
// are still readable (closed channels drain). Idempotent.
func (s *Subscription) Close() {
	s.f.unsubscribe(s)
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
	s.mu.Unlock()
}
