package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Exposition accumulates one Prometheus text-format scrape
// (version 0.0.4: "# HELP"/"# TYPE" headers, then name{labels} value
// samples). It is hand-rolled — the repo takes no external
// dependencies — and covers exactly the subset the market exposes:
// counters, gauges, and fixed-bucket histograms. Not safe for
// concurrent use; build one per scrape.
type Exposition struct {
	b strings.Builder
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatValue renders a sample value. Prometheus accepts Go's
// shortest-representation float encoding.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (e *Exposition) header(name, typ, help string) {
	fmt.Fprintf(&e.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (e *Exposition) sample(name string, labels []string, v float64) {
	e.b.WriteString(name)
	if len(labels) > 0 {
		e.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				e.b.WriteByte(',')
			}
			e.b.WriteString(labels[i])
			e.b.WriteString(`="`)
			e.b.WriteString(escapeLabel(labels[i+1]))
			e.b.WriteByte('"')
		}
		e.b.WriteByte('}')
	}
	e.b.WriteByte(' ')
	e.b.WriteString(formatValue(v))
	e.b.WriteByte('\n')
}

// Counter writes one unlabeled counter with its headers.
func (e *Exposition) Counter(name, help string, v float64) {
	e.header(name, "counter", help)
	e.sample(name, nil, v)
}

// Gauge writes one unlabeled gauge with its headers.
func (e *Exposition) Gauge(name, help string, v float64) {
	e.header(name, "gauge", help)
	e.sample(name, nil, v)
}

// LabeledSeries writes headers for one metric followed by one sample
// per entry. Each entry's labels are alternating key/value pairs.
func (e *Exposition) LabeledSeries(name, typ, help string, entries []LabeledValue) {
	e.header(name, typ, help)
	for _, ent := range entries {
		e.sample(name, ent.Labels, ent.Value)
	}
}

// LabeledValue is one sample of a labeled metric: alternating
// key/value label pairs plus the value.
type LabeledValue struct {
	Labels []string
	Value  float64
}

// LabeledMap is a convenience for a metric with a single label
// dimension: map keys become the label's values, emitted in sorted
// order so scrapes are deterministic.
func (e *Exposition) LabeledMap(name, typ, help, label string, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	entries := make([]LabeledValue, 0, len(keys))
	for _, k := range keys {
		entries = append(entries, LabeledValue{Labels: []string{label, k}, Value: m[k]})
	}
	e.LabeledSeries(name, typ, help, entries)
}

// Histogram writes one histogram family (cumulative _bucket samples,
// then _sum and _count) from a snapshot.
func (e *Exposition) Histogram(name, help string, h HistogramSnapshot) {
	e.HistogramSeries(name, help, []LabeledHistogram{{Snap: h}})
}

// LabeledHistogram is one labeled member of a histogram family.
type LabeledHistogram struct {
	Labels []string
	Snap   HistogramSnapshot
}

// HistogramSeries writes one histogram family with one labeled member
// per entry (e.g. per-region fsync latency): each member's cumulative
// _bucket samples carry the member labels plus le, and its _sum and
// _count carry the member labels alone.
func (e *Exposition) HistogramSeries(name, help string, entries []LabeledHistogram) {
	e.header(name, "histogram", help)
	for _, ent := range entries {
		h := ent.Snap
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			e.sample(name+"_bucket", append(append([]string(nil), ent.Labels...), "le", formatValue(bound)), float64(cum))
		}
		cum += h.Inf
		e.sample(name+"_bucket", append(append([]string(nil), ent.Labels...), "le", "+Inf"), float64(cum))
		e.sample(name+"_sum", ent.Labels, h.Sum)
		e.sample(name+"_count", ent.Labels, float64(cum))
	}
}

// String returns the accumulated exposition text.
func (e *Exposition) String() string { return e.b.String() }

// ContentType is the exposition format's content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Histogram is a fixed-bucket latency histogram safe for concurrent
// Observe. Buckets are cumulative only at snapshot time; Observe
// touches exactly one bucket counter plus the sum and is lock-free.
type Histogram struct {
	bounds []float64 // upper bounds in seconds, ascending
	counts []atomic.Uint64
	inf    atomic.Uint64
	sumNS  atomic.Int64 // sum in nanoseconds; converted at snapshot
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (in seconds).
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// NewFsyncHistogram returns the bucket layout used for journal fsync
// latency: 50µs to ~1s, roughly ×4 per bucket.
func NewFsyncHistogram() *Histogram {
	return NewHistogram(50e-6, 200e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	sec := d.Seconds()
	placed := false
	for i, bound := range h.bounds {
		if sec <= bound {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.sumNS.Add(int64(d))
}

// HistogramSnapshot is a point-in-time copy: per-bucket (non-
// cumulative) counts aligned with Bounds, the overflow count, and the
// sum in seconds.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Inf    uint64
	Sum    float64
}

// Snapshot copies the histogram's current state. Concurrent Observe
// calls may straddle the copy; each sample lands in either this
// snapshot or the next, never half in each bucket.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Bounds: h.bounds, Counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Inf = h.inf.Load()
	s.Sum = time.Duration(h.sumNS.Load()).Seconds()
	return s
}
