// Package stats provides the small statistical toolkit the experiments
// need: quantiles, five-number/boxplot summaries (Figure 7), dispersion
// metrics for the shortage/surplus comparison, histograms, and an ordinary
// least-squares linear fit used to verify the paper's claim that clock
// auction runtime scales linearly in the number of users and resources.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty data.
var ErrEmpty = errors.New("stats: empty data")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, or 0 for empty input.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (the "type 7" estimator used by R
// and NumPy). It returns 0 for empty input and clamps q into [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MinMax returns the smallest and largest values of xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Summary bundles the descriptive statistics printed by the experiment
// harness for each data series.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	lo, hi, _ := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    lo,
		Q1:     Quantile(xs, 0.25),
		Median: Median(xs),
		Q3:     Quantile(xs, 0.75),
		Max:    hi,
	}, nil
}

// Boxplot holds the Tukey boxplot statistics used to render Figure 7:
// quartiles, whiskers at the most extreme data points within 1.5·IQR of
// the box, and the outliers beyond them.
type Boxplot struct {
	Q1, Median, Q3          float64
	LowWhisker, HighWhisker float64
	Outliers                []float64
}

// NewBoxplot computes Tukey boxplot statistics for xs.
func NewBoxplot(xs []float64) (Boxplot, error) {
	if len(xs) == 0 {
		return Boxplot{}, ErrEmpty
	}
	b := Boxplot{
		Q1:     Quantile(xs, 0.25),
		Median: Median(xs),
		Q3:     Quantile(xs, 0.75),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.LowWhisker, b.HighWhisker = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
			continue
		}
		if x < b.LowWhisker {
			b.LowWhisker = x
		}
		if x > b.HighWhisker {
			b.HighWhisker = x
		}
	}
	// All points can be outliers only when IQR is degenerate; fall back to
	// the box itself so the whiskers stay meaningful.
	if math.IsInf(b.LowWhisker, 1) {
		b.LowWhisker, b.HighWhisker = b.Q1, b.Q3
	}
	sort.Float64s(b.Outliers)
	return b, nil
}

// IQR returns the interquartile range of the boxplot.
func (b Boxplot) IQR() float64 { return b.Q3 - b.Q1 }

// LinearFit is an ordinary least-squares fit y ≈ Slope·x + Intercept with
// the coefficient of determination R².
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// FitLinear computes the least-squares line through (xs[i], ys[i]).
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: x/y length mismatch")
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	f := LinearFit{Slope: sxy / sxx}
	f.Intercept = my - f.Slope*mx
	if syy == 0 {
		f.R2 = 1
	} else {
		f.R2 = (sxy * sxy) / (sxx * syy)
	}
	return f, nil
}

// Histogram counts xs into n equal-width bins between lo and hi. Values
// outside [lo, hi] are clamped into the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds an n-bin histogram of xs over [lo, hi].
func NewHistogram(xs []float64, n int, lo, hi float64) (Histogram, error) {
	if n <= 0 {
		return Histogram{}, errors.New("stats: histogram needs n > 0 bins")
	}
	if hi <= lo {
		return Histogram{}, errors.New("stats: histogram needs hi > lo")
	}
	h := Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		h.Counts[i]++
	}
	return h, nil
}

// Total returns the number of observations in the histogram.
func (h Histogram) Total() int {
	var t int
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// CoefficientOfVariation returns StdDev/Mean, the dimensionless dispersion
// measure used to compare utilization imbalance across allocators. It
// returns 0 when the mean is 0.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Gini returns the Gini coefficient of the non-negative values xs, a
// standard inequality measure: 0 is perfectly even, values near 1 are
// maximally concentrated. Negative inputs are clamped to 0.
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	for i, x := range xs {
		if x > 0 {
			s[i] = x
		}
	}
	sort.Float64s(s)
	var cum, total float64
	for i, x := range s {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	n := float64(len(s))
	return (2*cum)/(n*total) - (n+1)/n
}

// PercentileRank returns the fraction (0–100) of values in population that
// are ≤ x. It is the "utilization percentile" transform used by Figure 7.
func PercentileRank(population []float64, x float64) float64 {
	if len(population) == 0 {
		return 0
	}
	var le int
	for _, v := range population {
		if v <= x {
			le++
		}
	}
	return 100 * float64(le) / float64(len(population))
}
