package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1},
		{1, 4},
		{0.5, 2.5},
		{0.25, 1.75},
		{0.75, 3.25},
		{-1, 1}, // clamped
		{2, 4},  // clamped
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) != 0")
	}
	if Quantile([]float64{7}, 0.9) != 7 {
		t.Error("Quantile of singleton")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd Median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -2, 7, 0})
	if err != nil || lo != -2 || hi != 7 {
		t.Errorf("MinMax = %v,%v,%v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("MinMax(nil) err = %v", err)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) err = %v", err)
	}
}

func TestBoxplotBasic(t *testing.T) {
	// 1..9 plus an extreme outlier.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b, err := NewBoxplot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.Median != 5.5 {
		t.Errorf("Median = %v", b.Median)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("Outliers = %v", b.Outliers)
	}
	if b.HighWhisker != 9 || b.LowWhisker != 1 {
		t.Errorf("whiskers = %v..%v", b.LowWhisker, b.HighWhisker)
	}
	if b.IQR() <= 0 {
		t.Errorf("IQR = %v", b.IQR())
	}
}

func TestBoxplotDegenerate(t *testing.T) {
	b, err := NewBoxplot([]float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Q1 != 5 || b.Q3 != 5 || b.Median != 5 {
		t.Errorf("box = %+v", b)
	}
	if len(b.Outliers) != 0 {
		t.Errorf("constant data produced outliers: %v", b.Outliers)
	}
	if _, err := NewBoxplot(nil); err != ErrEmpty {
		t.Errorf("NewBoxplot(nil) err = %v", err)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	f, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(f.Slope, 2, 1e-12) || !almost(f.Intercept, 1, 1e-12) || !almost(f.R2, 1, 1e-12) {
		t.Errorf("fit = %+v", f)
	}
}

func TestFitLinearNoise(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 0.5*x+10+r.NormFloat64())
	}
	f, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(f.Slope, 0.5, 0.02) {
		t.Errorf("Slope = %v", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Errorf("R2 = %v", f.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0.1, 0.2, 0.9, -5, 99}, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Counts[0] != 3 { // 0.1, 0.2, and clamped -5
		t.Errorf("Counts[0] = %d", h.Counts[0])
	}
	if h.Counts[3] != 2 { // 0.9 and clamped 99
		t.Errorf("Counts[3] = %d", h.Counts[3])
	}
	if _, err := NewHistogram(nil, 0, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewHistogram(nil, 3, 1, 1); err == nil {
		t.Error("hi<=lo accepted")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if got := CoefficientOfVariation([]float64{5, 5, 5}); got != 0 {
		t.Errorf("CV(constant) = %v", got)
	}
	if got := CoefficientOfVariation([]float64{0, 0}); got != 0 {
		t.Errorf("CV(zero mean) = %v", got)
	}
	if got := CoefficientOfVariation([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almost(got, 0.4, 1e-12) {
		t.Errorf("CV = %v", got)
	}
}

func TestGini(t *testing.T) {
	if got := Gini([]float64{1, 1, 1, 1}); !almost(got, 0, 1e-12) {
		t.Errorf("Gini(even) = %v", got)
	}
	// One holder has everything among n=4: Gini = (n-1)/n = 0.75.
	if got := Gini([]float64{0, 0, 0, 10}); !almost(got, 0.75, 1e-12) {
		t.Errorf("Gini(concentrated) = %v", got)
	}
	if Gini(nil) != 0 || Gini([]float64{0, 0}) != 0 {
		t.Error("Gini degenerate cases")
	}
}

func TestPercentileRank(t *testing.T) {
	pop := []float64{10, 20, 30, 40}
	if got := PercentileRank(pop, 25); got != 50 {
		t.Errorf("rank(25) = %v", got)
	}
	if got := PercentileRank(pop, 40); got != 100 {
		t.Errorf("rank(40) = %v", got)
	}
	if got := PercentileRank(pop, 5); got != 0 {
		t.Errorf("rank(5) = %v", got)
	}
	if got := PercentileRank(nil, 5); got != 0 {
		t.Errorf("rank over empty = %v", got)
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := int(n%50) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		lo, hi, _ := MinMax(xs)
		return Quantile(xs, 0) == lo && Quantile(xs, 1) == hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickBoxplotOrdering(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := int(n%60) + 2
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		b, err := NewBoxplot(xs)
		if err != nil {
			return false
		}
		if !(b.Q1 <= b.Median && b.Median <= b.Q3) {
			return false
		}
		// With interpolated quartiles the whisker (an actual data point
		// within the fence) can land inside the box, so only the median
		// bounds it.
		if !(b.LowWhisker <= b.Median && b.Median <= b.HighWhisker) {
			return false
		}
		// Outliers must lie strictly outside the whiskers.
		for _, o := range b.Outliers {
			if o >= b.LowWhisker && o <= b.HighWhisker {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickGiniRange(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := int(n%40) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		g := Gini(xs)
		return g >= -1e-9 && g <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickPercentileRankMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pop := make([]float64, 30)
		for i := range pop {
			pop[i] = r.Float64()
		}
		sort.Float64s(pop)
		prev := -1.0
		for x := 0.0; x <= 1.0; x += 0.1 {
			rank := PercentileRank(pop, x)
			if rank < prev {
				return false
			}
			prev = rank
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
