package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"clustermarket/internal/core"
	"clustermarket/internal/fault"
	"clustermarket/internal/invariant"
	"clustermarket/internal/market"
	"clustermarket/internal/resource"
	"clustermarket/internal/stats"
	"clustermarket/internal/telemetry"
)

// The operator's real unit costs — the pre-market fixed prices bidders
// value against (the Figure 6 denominators, same constants as
// internal/sim).
const (
	unitCostCPU  = 1.0
	unitCostRAM  = 0.25
	unitCostDisk = 2.0
)

// Config parameterizes one scenario run. The same Config must be used to
// build the Backend and to Run the scenario: topology (regions,
// clusters) and determinism (seed) both flow from it.
type Config struct {
	Seed int64
	// Epochs overrides the scenario's default epoch count when positive.
	Epochs int
	// Regions is the number of sub-markets (default 3).
	Regions int
	// ClustersPerRegion (default 2) and MachinesPerCluster (default 10)
	// size each region's fleet.
	ClustersPerRegion  int
	MachinesPerCluster int
	// Teams is the bidder population size (default 18).
	Teams int
	// InitialBudget per account (default 2.5e5).
	InitialBudget float64
	// MaxRounds bounds each clock. Scenario worlds keep it low enough
	// (default 1500) that a hostile trader mix hits the cap — a
	// non-convergence storm — instead of grinding 100k rounds.
	MaxRounds int
	// Shards is the exchange book stripe count (0 selects the default).
	Shards int
	// Partition selects each exchange clock's sub-market decomposition;
	// the zero value core.PartitionAuto clears independent bidder–pool
	// components on separate clocks, bit-identical to the merged run —
	// the catalog fingerprint contract holds in either mode.
	// core.PartitionOff pins the merged single-clock path.
	Partition core.PartitionMode
	// SpotEvery runs the dense≡incremental engine-equivalence spot check
	// on one region's fresh bid stream every SpotEvery epochs (default 3;
	// negative disables).
	SpotEvery int
	// JournalDir, when non-empty, makes the backend durable: the exchange
	// backend journals to the directory itself; the federation backend
	// journals each region to JournalDir/<region> and the router to
	// JournalDir/fed. The directory must hold no prior journal — scenarios
	// always build fresh worlds and recover only through CrashRecover.
	JournalDir string
	// FsyncEvery is the journal group-commit window (default 1: fsync
	// every record).
	FsyncEvery int
	// SnapshotEvery bounds recovery replay: each exchange snapshots every
	// SnapshotEvery auctions (0 selects the market default), and the
	// federation router snapshots every SnapshotEvery settlements.
	SnapshotEvery int
	// CrashEpoch, when positive, kills the journaled backend without
	// flushing just before that epoch's settlement wave and resurrects it
	// from disk — the run must continue bit-identically (the crash-recovery
	// scenario's fingerprint check enforces it). Requires JournalDir.
	CrashEpoch int
	// Telemetry, when non-nil, streams the run onto the firehose: the
	// backend's exchanges (and the federation router) publish their event
	// streams, and the engine adds scenario-source epoch markers —
	// epoch-start, submit-rejected, epoch-end — so a subscriber can
	// reconstruct the run's fingerprint from the stream alone (see
	// ReconstructReport). Telemetry is independent of JournalDir: either,
	// both, or neither may be set. Pass the same Config to NewBackend and
	// Run so backend and engine publish to the same firehose.
	Telemetry *telemetry.Firehose
	// Injector, when non-nil, threads the deterministic fault injector
	// through the run: under every journal the backend opens (disk
	// faults), into the federation router's region calls and gossip, and
	// armed each epoch from the scenario's Faults schedule (plus random
	// windows in chaos mode). Scripted schedules keep fault counts within
	// the bounded inline retries, so a run whose faults all heal must
	// fingerprint-match the fault-free run — the disk-fault and
	// partition-storm scenarios enforce exactly that.
	Injector *fault.Injector

	rng *rand.Rand
}

func (c *Config) applyDefaults() {
	if c.Regions <= 0 {
		c.Regions = 3
	}
	if c.ClustersPerRegion <= 0 {
		c.ClustersPerRegion = 2
	}
	if c.MachinesPerCluster <= 0 {
		c.MachinesPerCluster = 10
	}
	if c.Teams <= 0 {
		c.Teams = 18
	}
	if c.InitialBudget == 0 {
		c.InitialBudget = 2.5e5
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 1500
	}
	if c.SpotEvery == 0 {
		c.SpotEvery = 3
	}
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.Seed))
	}
}

// NewBackend builds the named backend kind ("exchange" or "federation")
// for the config.
func NewBackend(kind string, cfg Config) (Backend, error) {
	switch kind {
	case "exchange":
		return NewExchangeBackend(cfg)
	case "federation":
		return NewFederationBackend(cfg)
	default:
		return nil, fmt.Errorf("scenario: unknown backend %q (want exchange or federation)", kind)
	}
}

// Scenario is one scripted event timeline. Every hook is optional; nil
// means "no such events". Hooks must be pure functions of their inputs —
// the engine owns all randomness — so a scenario is replayable from a
// seed.
type Scenario struct {
	Name        string
	Description string
	// Epochs is the default run length.
	Epochs int
	// Adaptive enables premium learning: teams shade their next limit
	// from past results, reproducing the Table I trend.
	Adaptive bool
	// Intensity scales epoch demand (1 = baseline) — diurnal waves.
	Intensity func(epoch int) float64
	// HotFocus is the fraction of demand pinned to the market's hottest
	// cluster (r1-c1) — flash crowds.
	HotFocus func(epoch int) float64
	// Churn is the fraction of teams replaced at the epoch's start.
	Churn func(epoch int) float64
	// BudgetRefresh is the per-account budget credited at the epoch's
	// start, disbursed equal-shares through the billing ledger. Every
	// account ever opened receives it — churned-out teams keep their
	// accounts (and balances), as real quota-period rollovers do — so the
	// engine sizes the disbursed total by the full account population,
	// not just the live bidders.
	BudgetRefresh func(epoch int) float64
	// Down lists the regions dark this epoch: no new demand names their
	// clusters and (on the federation backend) their auctions are skipped.
	Down func(epoch int, regions []string) []string
	// TraderPairs injects that many hostile cycling trader pairs into the
	// first live region — clock non-convergence storms.
	TraderPairs func(epoch int) int
	// Evict removes this fraction of previously placed demand from every
	// live region at the epoch's end — the ebb of a diurnal trough.
	Evict func(epoch int) float64
	// Faults is the epoch's scripted fault schedule, armed into
	// Config.Injector just before demand generation (nil or an empty
	// slice means a clean epoch). Scripted windows must keep their counts
	// within the bounded inline retries (≤3 disk, ≤2 region) so every
	// fault heals invisibly and the run fingerprint-matches its
	// fault-free twin.
	Faults func(epoch int, regions []string) []fault.Window
}

func (sc *Scenario) intensity(e int) float64 {
	if sc.Intensity == nil {
		return 1
	}
	return sc.Intensity(e)
}
func (sc *Scenario) hotFocus(e int) float64 {
	if sc.HotFocus == nil {
		return 0
	}
	return sc.HotFocus(e)
}
func (sc *Scenario) churn(e int) float64 {
	if sc.Churn == nil {
		return 0
	}
	return sc.Churn(e)
}
func (sc *Scenario) budgetRefresh(e int) float64 {
	if sc.BudgetRefresh == nil {
		return 0
	}
	return sc.BudgetRefresh(e)
}
func (sc *Scenario) down(e int, regions []string) []string {
	if sc.Down == nil {
		return nil
	}
	return sc.Down(e, regions)
}
func (sc *Scenario) traderPairs(e int) int {
	if sc.TraderPairs == nil {
		return 0
	}
	return sc.TraderPairs(e)
}
func (sc *Scenario) evict(e int) float64 {
	if sc.Evict == nil {
		return 0
	}
	return sc.Evict(e)
}
func (sc *Scenario) faults(e int, regions []string) []fault.Window {
	if sc.Faults == nil {
		return nil
	}
	return sc.Faults(e, regions)
}

// RegionPrice is one region's mean CPU price at an epoch boundary.
type RegionPrice struct {
	Region  string
	MeanCPU float64
}

// EpochSummary is the deterministic record of one epoch. Two runs from
// the same seed must produce bit-identical summaries — the Fingerprint
// test enforces it.
type EpochSummary struct {
	Epoch int
	// Teams is the live bidder population after churn.
	Teams int
	// Submitted and Rejected count this epoch's product orders;
	// StormBids counts injected hostile trader bids.
	Submitted, Rejected, StormBids int
	// Auctions and Converged count settlement records this epoch.
	Auctions, Converged int
	// Settled sums orders settled as Won across this epoch's records.
	Settled int
	// Won, Lost, Unsettled count terminal outcomes observed among the
	// engine's tracked orders this epoch.
	Won, Lost, Unsettled int
	// MedianPremium is the median γ_u across this epoch's settlements
	// (0 when nothing settled) — the Table I column.
	MedianPremium float64
	// OpenOrders counts orders still awaiting settlement.
	OpenOrders int
	// Prices is each region's mean CPU price, in region order.
	Prices []RegionPrice
	// Dark lists the regions that were down this epoch.
	Dark []string
	// Violations counts invariant violations detected this epoch.
	Violations int
}

// Report is a completed scenario run.
type Report struct {
	Scenario string
	Backend  string
	Seed     int64
	Epochs   []EpochSummary
	// Violations aggregates every invariant violation across epochs; a
	// clean run has none.
	Violations []invariant.Violation
}

// Fingerprint hashes the run's epoch summaries with bit-exact float
// encoding. Two same-seed runs of the same scenario on the same backend
// must return identical fingerprints.
func (r *Report) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%d\n", r.Scenario, r.Backend, r.Seed)
	for _, s := range r.Epochs {
		fmt.Fprintf(&b, "%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%s|%d|%d|",
			s.Epoch, s.Teams, s.Submitted, s.Rejected, s.StormBids,
			s.Auctions, s.Converged, s.Settled, s.Won, s.Lost, s.Unsettled,
			hexFloat(s.MedianPremium), s.OpenOrders, s.Violations)
		for _, p := range s.Prices {
			fmt.Fprintf(&b, "%s=%s;", p.Region, hexFloat(p.MeanCPU))
		}
		fmt.Fprintf(&b, "|%s\n", strings.Join(s.Dark, ","))
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// hexFloat renders a float with every mantissa bit, so fingerprints
// detect even last-ulp divergence.
func hexFloat(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }

// simTeam is one synthetic bidder with persistent state across epochs.
type simTeam struct {
	name string
	home string
	// premium is the team's current shading above fair value; adaptive
	// scenarios move it from past results.
	premium float64
	// mobility is the probability of offering cross-region alternatives.
	mobility float64
}

// tracked is one open order the engine is watching.
type tracked struct {
	id    int
	team  *simTeam
	limit float64
}

// spotBid is one product order replayed through both clock engines for
// the equivalence spot check.
type spotBid struct {
	clusters []string
	product  string
	qty      float64
	limit    float64
}

var products = []string{"batch-compute", "serving-frontend", "bigtable-node", "gfs-storage"}

// Run drives the backend through the scenario and returns the epoch
// report. It returns an error only for engine-breaking failures; broken
// invariants are collected in Report.Violations (and counted per epoch),
// so a soak can report exactly which epoch corrupted which book.
func Run(sc *Scenario, b Backend, cfg Config) (*Report, error) {
	cfg.applyDefaults()
	epochs := sc.Epochs
	if cfg.Epochs > 0 {
		epochs = cfg.Epochs
	}
	if epochs <= 0 {
		epochs = 8
	}
	// The engine's rng is decorrelated from the backend-construction rng
	// (same seed, offset stream), as sim.NewWorld does for trace.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	rep := &Report{Scenario: sc.Name, Backend: b.Kind(), Seed: cfg.Seed}
	allClusters := func() []string {
		var out []string
		for _, rn := range b.Regions() {
			out = append(out, b.ClustersOf(rn)...)
		}
		return out
	}()

	e := &engine{cfg: cfg, rng: rng, b: b, clusters: allClusters}
	if err := e.populate(); err != nil {
		return nil, err
	}

	for epoch := 0; epoch < epochs; epoch++ {
		s, err := e.runEpoch(sc, epoch)
		if err != nil {
			return nil, fmt.Errorf("scenario %s epoch %d: %w", sc.Name, epoch, err)
		}
		rep.Epochs = append(rep.Epochs, *s)
		rep.Violations = append(rep.Violations, e.epochViolations...)
	}
	return rep, nil
}

type engine struct {
	cfg      Config
	rng      *rand.Rand
	b        Backend
	clusters []string

	teams   []*simTeam
	teamSeq int
	open    []tracked

	epochViolations []invariant.Violation
}

// populate opens the initial team population plus the storm accounts.
func (e *engine) populate() error {
	for i := 0; i < e.cfg.Teams; i++ {
		if err := e.addTeam(nil); err != nil {
			return err
		}
	}
	for _, t := range []string{"storm-a", "storm-b"} {
		if err := e.b.OpenAccount(t); err != nil {
			return err
		}
	}
	return nil
}

// addTeam opens one fresh account homed on a random cluster (drawn from
// live when non-nil, anywhere otherwise).
func (e *engine) addTeam(live []string) error {
	pool := e.clusters
	if len(live) > 0 {
		pool = live
	}
	t := &simTeam{
		name:     fmt.Sprintf("team-%03d", e.teamSeq),
		home:     pool[e.rng.Intn(len(pool))],
		premium:  0.4 + e.rng.Float64()*1.4,
		mobility: e.rng.Float64(),
	}
	e.teamSeq++
	if err := e.b.OpenAccount(t.name); err != nil {
		return err
	}
	e.teams = append(e.teams, t)
	return nil
}

// fairCost values a product order at the operator's real unit costs —
// the reference price the team shades its premium over.
func fairCost(product string, qty float64) (float64, error) {
	p, err := market.StandardCatalog().Lookup(product)
	if err != nil {
		return 0, err
	}
	cover := p.Cover(qty)
	return cover.CPU*unitCostCPU + cover.RAM*unitCostRAM + cover.Disk*unitCostDisk, nil
}

func (e *engine) runEpoch(sc *Scenario, epoch int) (*EpochSummary, error) {
	e.epochViolations = nil
	s := &EpochSummary{Epoch: epoch}

	// 1. Outage map for the epoch.
	down := make(map[string]bool)
	for _, rn := range sc.down(epoch, e.b.Regions()) {
		down[rn] = true
		s.Dark = append(s.Dark, rn)
	}
	sort.Strings(s.Dark)
	var live, liveRegions []string
	for _, rn := range e.b.Regions() {
		if down[rn] {
			continue
		}
		liveRegions = append(liveRegions, rn)
		live = append(live, e.b.ClustersOf(rn)...)
	}
	if len(live) == 0 {
		return nil, errors.New("every region is dark")
	}

	// 2. Budget refresh. Equal shares split across every account the
	// backend holds — teamSeq teams ever opened plus the two storm
	// accounts — so each account receives exactly the per-account amount
	// the scenario scripted, regardless of how much churn has grown the
	// account population.
	if per := sc.budgetRefresh(epoch); per > 0 {
		if err := e.b.Disburse(per * float64(e.teamSeq+2)); err != nil {
			return nil, err
		}
	}

	// 3. Bidder churn: the oldest teams leave, fresh ones join homed in
	// live regions.
	if frac := sc.churn(epoch); frac > 0 && len(e.teams) > 1 {
		n := int(frac * float64(len(e.teams)))
		if n >= len(e.teams) {
			n = len(e.teams) - 1
		}
		e.teams = append([]*simTeam(nil), e.teams[n:]...)
		for i := 0; i < n; i++ {
			if err := e.addTeam(live); err != nil {
				return nil, err
			}
		}
	}
	s.Teams = len(e.teams)

	// The epoch-start marker opens the epoch's window on the firehose:
	// every backend event until the matching epoch-end belongs to this
	// epoch. It is published after churn (so Teams is final) and before
	// demand generation (so every submit lands inside the window).
	e.cfg.Telemetry.Publish(EventSource, EvEpochStart, &EpochStartEvent{
		Epoch: epoch,
		Teams: s.Teams,
		Dark:  append([]string(nil), s.Dark...),
	})

	// Arm this epoch's fault schedule just before demand generation, so
	// the first armed disk fault lands on a submit append rather than on
	// the epoch's bookkeeping (budget refresh, churn account opening).
	// Arming replaces last epoch's windows, so a schedule a run never
	// consumed (disk faults on an in-memory backend) cannot accumulate.
	e.cfg.Injector.ArmEpoch(epoch, e.b.Regions(), sc.faults(epoch, e.b.Regions()))

	// 4. Demand generation.
	spotRegion := liveRegions[0]
	var spots []spotBid
	intensity := sc.intensity(epoch)
	hotFocus := sc.hotFocus(epoch)
	hotCluster := e.b.ClustersOf(e.b.Regions()[0])[0]
	hotLive := !down[e.b.Regions()[0]]
	for _, tm := range e.teams {
		if e.rng.Float64() > 0.7*intensity {
			continue
		}
		product := products[e.rng.Intn(len(products))]
		qty := 1 + e.rng.Float64()*2
		fair, err := fairCost(product, qty)
		if err != nil {
			return nil, err
		}
		var clusters []string
		var limit float64
		if hotLive && e.rng.Float64() < hotFocus {
			// Flash-crowd demand: pinned to the hot pool, priced to win.
			clusters = []string{hotCluster}
			limit = fair * (2.5 + tm.premium)
		} else {
			if down[e.regionOfCluster(tm.home)] {
				// Teams homed in a dark region sit the epoch out.
				continue
			}
			clusters = []string{tm.home}
			if e.rng.Float64() < tm.mobility {
				// Up to two substitutable alternatives elsewhere — the
				// cross-region XOR path on the federation backend.
				for _, alt := range e.pickAlternates(tm.home, live, 2) {
					clusters = append(clusters, alt)
				}
			}
			limit = fair * (1 + tm.premium)
		}
		id, err := e.b.SubmitProduct(tm.name, product, qty, clusters, limit)
		if err != nil {
			// Over budget (or a leg rejected everywhere): a normal epoch
			// outcome for a drained account, not an engine failure. Rejected
			// submissions never reach the backend's event stream, so the
			// engine publishes the marker itself.
			s.Rejected++
			e.cfg.Telemetry.Publish(EventSource, EvSubmitRejected, &RejectEvent{Epoch: epoch, Kind: "product"})
			continue
		}
		s.Submitted++
		e.open = append(e.open, tracked{id: id, team: tm, limit: limit})
		if e.regionOfAll(clusters) == spotRegion {
			spots = append(spots, spotBid{clusters: clusters, product: product, qty: qty, limit: limit})
		}
	}

	// 5. Hostile trader injection: cycling pairs whose mutual demand can
	// never clear within MaxRounds — a non-convergence storm.
	for i := 0; i < sc.traderPairs(epoch); i++ {
		injected, err := e.injectTraderPair(spotRegion)
		if err != nil {
			return nil, err
		}
		if injected {
			s.StormBids += 2
		} else {
			s.Rejected++
			e.cfg.Telemetry.Publish(EventSource, EvSubmitRejected, &RejectEvent{Epoch: epoch, Kind: "storm"})
		}
	}

	// 6. Scripted power loss: kill the journaled backend without flushing
	// and resurrect it from its WAL. Mid-epoch is the hostile moment —
	// demand is booked but unsettled — and the rest of the run must
	// proceed as if nothing happened.
	if e.cfg.CrashEpoch > 0 && epoch == e.cfg.CrashEpoch {
		if err := e.b.CrashRecover(); err != nil {
			return nil, fmt.Errorf("crash recovery: %w", err)
		}
	}

	// 7. Settlement wave.
	if err := e.b.Settle(down); err != nil {
		return nil, err
	}

	// 8. Outcome scan: place won demand, adapt premiums, drop terminal
	// orders from tracking.
	kept := e.open[:0]
	for _, tr := range e.open {
		o, err := e.b.Outcome(tr.id)
		if err != nil {
			return nil, err
		}
		switch o.Status {
		case market.Open:
			kept = append(kept, tr)
			continue
		case market.Won:
			s.Won++
			e.b.Place(tr.id)
			if sc.Adaptive {
				tr.team.premium *= 0.55
				if tr.team.premium < 0.02 {
					tr.team.premium = 0.02
				}
			}
		case market.Lost:
			s.Lost++
			if sc.Adaptive {
				tr.team.premium = tr.team.premium*1.25 + 0.08
				if tr.team.premium > 3 {
					tr.team.premium = 3
				}
			}
		case market.Unsettled:
			s.Unsettled++
		}
	}
	e.open = kept

	// 9. Demand ebb.
	if frac := sc.evict(epoch); frac > 0 {
		for _, rn := range liveRegions {
			e.b.EvictFraction(rn, frac)
		}
	}

	// 10. Epoch record digest.
	var premiums []float64
	for _, rec := range e.b.EpochRecords() {
		s.Auctions++
		if rec.Converged {
			s.Converged++
		}
		s.Settled += rec.Settled
		premiums = append(premiums, rec.Premiums...)
	}
	if len(premiums) > 0 {
		s.MedianPremium = stats.Median(premiums)
	}
	s.OpenOrders = e.b.OpenOrderCount()
	for _, rn := range e.b.Regions() {
		s.Prices = append(s.Prices, RegionPrice{Region: rn, MeanCPU: e.b.MeanCPUPrice(rn)})
	}

	// 11. The shared invariant kernel, every epoch — plus the periodic
	// dense≡incremental spot check over this epoch's fresh bid stream.
	vs := e.b.Check()
	if e.cfg.SpotEvery > 0 && epoch%e.cfg.SpotEvery == e.cfg.SpotEvery-1 {
		vs = append(vs, e.spotCheck(spotRegion, spots)...)
	}
	for i, v := range vs {
		vs[i].Detail = fmt.Sprintf("epoch %d: %s", epoch, v.Detail)
	}
	e.epochViolations = vs
	s.Violations = len(vs)

	// The epoch-end marker closes the window and carries the engine-side
	// observations a backend's event stream cannot know: open orders and
	// prices are point-in-time reads, violations come from the invariant
	// kernel the engine itself ran.
	e.cfg.Telemetry.Publish(EventSource, EvEpochEnd, &EpochEndEvent{
		Epoch:      epoch,
		OpenOrders: s.OpenOrders,
		Violations: s.Violations,
		Prices:     append([]RegionPrice(nil), s.Prices...),
	})
	return s, nil
}

// regionOfCluster maps a cluster to its region via the shared naming
// scheme (rK-cJ).
func (e *engine) regionOfCluster(cn string) string {
	if i := strings.IndexByte(cn, '-'); i > 0 {
		return cn[:i]
	}
	return ""
}

// regionOfAll returns the single region owning every cluster, or "".
func (e *engine) regionOfAll(clusters []string) string {
	rn := ""
	for _, cn := range clusters {
		r := e.regionOfCluster(cn)
		if rn == "" {
			rn = r
		} else if r != rn {
			return ""
		}
	}
	return rn
}

// pickAlternates samples up to n live clusters other than home.
func (e *engine) pickAlternates(home string, live []string, n int) []string {
	var cands []string
	for _, cn := range live {
		if cn != home {
			cands = append(cands, cn)
		}
	}
	var out []string
	for len(out) < n && len(cands) > 0 {
		i := e.rng.Intn(len(cands))
		out = append(out, cands[i])
		cands = append(cands[:i], cands[i+1:]...)
	}
	return out
}

// injectTraderPair books the canonical cycling trader mix into the
// region: two traders, each buying CPU in one cluster against a sale in
// the other. Active together they keep both pools in positive excess
// demand, and their limits are deep enough that the clock hits MaxRounds
// before pricing them out — Section III.C.3's divergence hazard, made
// into a scenario event.
//
// The limit is sized to both ends: deep enough to survive the largest
// price climb one clock can produce (the capped policy moves each pool
// at most δ=0.25 per round, and the pair's per-round cost grows ≈150·p),
// yet small enough that three pairs stranded open by consecutive
// non-convergent epochs fit the storm account's budget commitment.
// Injection can still lose that race when earlier pairs linger — on
// either leg, since the two storm accounts' balances diverge once a
// stranded pair settles — so a budget rejection on the second leg rolls
// the first leg back; both cases are a normal storm outcome, reported
// as injected=false, not an error.
func (e *engine) injectTraderPair(region string) (injected bool, err error) {
	clusters := e.b.ClustersOf(region)
	if len(clusters) < 2 {
		return false, fmt.Errorf("region %q needs 2 clusters for a trader pair", region)
	}
	c1, c2 := clusters[0], clusters[1]
	reg := e.b.RegistryFor(c1)
	mk := func(buy, sell string) (*core.Bid, error) {
		v := reg.Zero()
		bi, ok := reg.Index(resource.Pool{Cluster: buy, Dim: resource.CPU})
		if !ok {
			return nil, fmt.Errorf("no CPU pool in %q", buy)
		}
		si, ok := reg.Index(resource.Pool{Cluster: sell, Dim: resource.CPU})
		if !ok {
			return nil, fmt.Errorf("no CPU pool in %q", sell)
		}
		v[bi] = 300
		v[si] = -150
		return &core.Bid{User: "storm/" + buy, Bundles: []resource.Vector{v}, Limit: 0.3 * e.cfg.InitialBudget}, nil
	}
	b1, err := mk(c1, c2)
	if err != nil {
		return false, err
	}
	b2, err := mk(c2, c1)
	if err != nil {
		return false, err
	}
	id1, err := e.b.SubmitBid(c1, "storm-a", b1)
	if err != nil {
		return false, nil
	}
	if _, err := e.b.SubmitBid(c2, "storm-b", b2); err != nil {
		// A lone cycling trader is not the scripted event — withdraw the
		// first leg rather than leave an unmatched one-sided storm bid.
		if cerr := e.b.CancelBid(c1, id1); cerr != nil {
			return false, fmt.Errorf("rolling back trader pair leg %d: %w", id1, cerr)
		}
		return false, nil
	}
	return true, nil
}

// spotCheck replays the epoch's single-region product orders through
// both clock engines from the region's current reserve prices and
// demands bit-identical results — the scenario-level form of the
// incremental engine's differential guarantee.
func (e *engine) spotCheck(region string, spots []spotBid) []invariant.Violation {
	if len(spots) < 2 {
		return nil
	}
	if len(spots) > 40 {
		spots = spots[:40]
	}
	reg := e.b.RegistryFor(e.b.ClustersOf(region)[0])
	start, err := e.b.ReservePrices(region)
	if err != nil {
		return []invariant.Violation{{Invariant: "engine-equivalence", Detail: "reserve prices: " + err.Error()}}
	}
	var bids []*core.Bid
	for _, sp := range spots {
		p, err := market.StandardCatalog().Lookup(sp.product)
		if err != nil {
			continue
		}
		cover := p.Cover(sp.qty)
		var bundles []resource.Vector
		for _, cn := range sp.clusters {
			v := reg.Zero()
			found := false
			for _, d := range resource.StandardDimensions {
				if i, ok := reg.Index(resource.Pool{Cluster: cn, Dim: d}); ok {
					v[i] = cover.Get(d)
					found = true
				}
			}
			if found {
				bundles = append(bundles, v)
			}
		}
		if len(bundles) == 0 {
			continue
		}
		bids = append(bids, &core.Bid{User: "spot", Bundles: bundles, Limit: sp.limit})
	}
	if len(bids) < 2 {
		return nil
	}
	return invariant.CheckEngineEquivalence(reg, bids, core.Config{
		Start:     start,
		MaxRounds: e.cfg.MaxRounds,
	})
}
