package scenario

import (
	"testing"

	"clustermarket/internal/telemetry"
)

// drainRun runs the scenario with a firehose subscriber attached and
// returns the live report plus the full event stream. The subscriber's
// buffer is sized far above any catalog run's event volume, and the
// test fails if even one event was dropped: reconstruction is only
// meaningful over a complete stream.
func drainRun(t *testing.T, kind string, sc *Scenario, cfg Config) (*Report, []telemetry.Event) {
	t.Helper()
	fire := telemetry.NewFirehose()
	sub := fire.Subscribe(1 << 16)
	cfg.Telemetry = fire

	b, err := NewBackend(kind, cfg)
	if err != nil {
		t.Fatalf("NewBackend(%s): %v", kind, err)
	}
	defer b.Close()
	rep, err := Run(sc, b, cfg)
	if err != nil {
		t.Fatalf("Run(%s, %s): %v", sc.Name, kind, err)
	}
	sub.Close()
	var events []telemetry.Event
	for ev := range sub.C {
		events = append(events, ev)
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("subscriber dropped %d events; reconstruction needs the complete stream", d)
	}
	if len(events) == 0 {
		t.Fatal("firehose produced no events")
	}
	return rep, events
}

// TestFingerprintReconstructibleFromFirehose is the telemetry pipeline's
// losslessness proof: for every catalog scenario that exercises a
// distinct event shape — plain settlement, churn, outages, storm
// injection with rollbacks — the report rebuilt from the firehose
// stream alone must fingerprint bit-identically to the live run's, on
// both backends, with no journal attached (telemetry must not depend on
// the WAL).
func TestFingerprintReconstructibleFromFirehose(t *testing.T) {
	for _, name := range []string{"adaptive-learning", "churn", "region-outage", "trader-storm"} {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []string{"exchange", "federation"} {
			t.Run(name+"/"+kind, func(t *testing.T) {
				cfg := Config{Seed: 42, Epochs: 6}
				rep, events := drainRun(t, kind, sc, cfg)
				rec, err := ReconstructReport(sc.Name, kind, cfg.Seed, events)
				if err != nil {
					t.Fatalf("ReconstructReport: %v", err)
				}
				if got, want := rec.Fingerprint(), rep.Fingerprint(); got != want {
					t.Errorf("reconstructed fingerprint diverges\n got %s\nwant %s\nreconstructed: %+v\nlive: %+v",
						got, want, rec.Epochs, rep.Epochs)
				}
			})
		}
	}
}

// TestFirehoseCoexistsWithJournal runs the crash-recovery scenario —
// journaled, with a mid-run kill and WAL resurrection — under a
// firehose subscriber. The stream must still reconstruct the live
// fingerprint: replay publishes nothing, so the resurrected backend's
// stream continues seamlessly from the pre-crash events.
func TestFirehoseCoexistsWithJournal(t *testing.T) {
	sc, err := Lookup("crash-recovery")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"exchange", "federation"} {
		t.Run(kind, func(t *testing.T) {
			cfg := Config{Seed: 7, Epochs: 6, JournalDir: t.TempDir(), CrashEpoch: 3}
			rep, events := drainRun(t, kind, sc, cfg)
			rec, err := ReconstructReport(sc.Name, kind, cfg.Seed, events)
			if err != nil {
				t.Fatalf("ReconstructReport: %v", err)
			}
			if got, want := rec.Fingerprint(), rep.Fingerprint(); got != want {
				t.Errorf("reconstructed fingerprint diverges across a crash\n got %s\nwant %s", got, want)
			}
		})
	}
}
