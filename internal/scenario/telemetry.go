package scenario

import (
	"fmt"

	"clustermarket/internal/federation"
	"clustermarket/internal/market"
	"clustermarket/internal/stats"
	"clustermarket/internal/telemetry"
)

// EventSource is the firehose Source value the scenario engine publishes
// under. Scenario events are thin epoch markers: the heavy lifting — who
// submitted what, how every auction cleared — rides the backend's own
// "market" and "fed" streams, and the markers delimit which epoch each
// backend event belongs to.
const EventSource = "scenario"

// Scenario event kinds.
const (
	// EvEpochStart opens an epoch's window on the stream. Payload:
	// *EpochStartEvent.
	EvEpochStart = "epoch-start"
	// EvSubmitRejected marks one rejected submission — an outcome the
	// backend's event stream cannot carry, because rejected orders are
	// never materialized. Payload: *RejectEvent.
	EvSubmitRejected = "submit-rejected"
	// EvEpochEnd closes the epoch's window with the engine's end-of-epoch
	// observations. Payload: *EpochEndEvent.
	EvEpochEnd = "epoch-end"
)

// EpochStartEvent is the epoch-start payload: the epoch index, the live
// bidder population after churn, and the regions dark this epoch.
type EpochStartEvent struct {
	Epoch int      `json:"epoch"`
	Teams int      `json:"teams"`
	Dark  []string `json:"dark,omitempty"`
}

// RejectEvent is the submit-rejected payload. Kind is "product" for a
// rejected product order, "storm" for a trader-pair injection that lost
// the budget race.
type RejectEvent struct {
	Epoch int    `json:"epoch"`
	Kind  string `json:"kind"`
}

// EpochEndEvent is the epoch-end payload: the point-in-time reads and
// invariant-kernel result only the engine can observe.
type EpochEndEvent struct {
	Epoch      int           `json:"epoch"`
	OpenOrders int           `json:"open_orders"`
	Violations int           `json:"violations"`
	Prices     []RegionPrice `json:"prices,omitempty"`
}

// stormTeam reports whether an account belongs to the engine's hostile
// trader injection (populate opens exactly "storm-a" and "storm-b").
func stormTeam(team string) bool { return team == "storm-a" || team == "storm-b" }

// ReconstructReport rebuilds a run's Report from its firehose stream —
// the proof that the telemetry pipeline is lossless: the reconstructed
// report's Fingerprint must equal the live Run's, bit for bit.
//
// The reconstruction reads three sources. Scenario markers delimit
// epochs and carry the engine-side observations (team population, dark
// regions, rejections, open orders, prices, violations). Market events
// supply order intake, settlement outcomes, and auction records — on
// the exchange backend they are the whole story; on the federation
// backend they additionally carry the injected storm bids, which enter
// through a regional book and never reach the router. Fed events supply
// the federation backend's product-order lifecycle, whose IDs and
// terminal states live at the router, not in any one region.
//
// Events must be in stream order (ascending Seq) and complete: a
// subscriber that dropped events cannot reconstruct the run —
// fingerprint tests size their buffers and assert Dropped()==0.
func ReconstructReport(scenarioName, backendKind string, seed int64, events []telemetry.Event) (*Report, error) {
	rep := &Report{Scenario: scenarioName, Backend: backendKind, Seed: seed}
	federated := backendKind == "federation"

	var cur *EpochSummary
	// tracked holds the product orders still open, by backend order ID
	// (fed IDs on the federation backend), mapped to their latest status
	// — the reconstruction's mirror of the engine's `open` slice.
	tracked := make(map[int]market.OrderStatus)
	// stormIDs holds the regional order IDs of injected storm bids, so a
	// later order-cancelled event (only ever the pair rollback) can be
	// attributed; stormBids counts this epoch's net injections.
	stormIDs := make(map[int]bool)
	stormBids := 0
	var premiums []float64

	for _, ev := range events {
		switch ev.Source {
		case EventSource:
			switch ev.Kind {
			case EvEpochStart:
				p, ok := ev.Payload.(*EpochStartEvent)
				if !ok {
					return nil, fmt.Errorf("scenario: %s event has payload %T", ev.Kind, ev.Payload)
				}
				if cur != nil {
					return nil, fmt.Errorf("scenario: epoch %d started before epoch %d ended", p.Epoch, cur.Epoch)
				}
				cur = &EpochSummary{Epoch: p.Epoch, Teams: p.Teams, Dark: append([]string(nil), p.Dark...)}
				stormBids = 0
				premiums = premiums[:0]
			case EvSubmitRejected:
				if cur == nil {
					return nil, fmt.Errorf("scenario: %s event outside any epoch", ev.Kind)
				}
				cur.Rejected++
			case EvEpochEnd:
				p, ok := ev.Payload.(*EpochEndEvent)
				if !ok {
					return nil, fmt.Errorf("scenario: %s event has payload %T", ev.Kind, ev.Payload)
				}
				if cur == nil || cur.Epoch != p.Epoch {
					return nil, fmt.Errorf("scenario: epoch-end for epoch %d without matching start", p.Epoch)
				}
				// The engine's outcome scan, replayed: every tracked order
				// whose latest status is terminal resolved this epoch.
				for id, st := range tracked {
					switch st {
					case market.Won:
						cur.Won++
					case market.Lost:
						cur.Lost++
					case market.Unsettled:
						cur.Unsettled++
					default:
						continue
					}
					delete(tracked, id)
				}
				cur.StormBids = stormBids
				if len(premiums) > 0 {
					cur.MedianPremium = stats.Median(premiums)
				}
				cur.OpenOrders = p.OpenOrders
				cur.Violations = p.Violations
				cur.Prices = append([]RegionPrice(nil), p.Prices...)
				rep.Epochs = append(rep.Epochs, *cur)
				cur = nil
			}

		case market.EventSource:
			p, ok := ev.Payload.(*market.Event)
			if !ok {
				return nil, fmt.Errorf("scenario: market event has payload %T", ev.Payload)
			}
			switch p.Kind {
			case market.EvOrderSubmitted:
				if cur == nil {
					return nil, fmt.Errorf("scenario: order %d submitted outside any epoch", p.OrderID)
				}
				switch {
				case stormTeam(p.Team):
					stormIDs[p.OrderID] = true
					stormBids++
				case !federated:
					// On the federation backend a non-storm regional submit is
					// a routed leg of a fed order already counted at the
					// router; only the exchange backend counts it here.
					cur.Submitted++
					tracked[p.OrderID] = market.Open
				}
			case market.EvOrderCancelled:
				// The engine cancels exactly one thing: the booked first leg
				// of a trader pair whose second leg lost the budget race.
				if stormIDs[p.OrderID] {
					delete(stormIDs, p.OrderID)
					stormBids--
				}
			case market.EvOrderSettled:
				if _, ok := tracked[p.OrderID]; ok && !federated {
					tracked[p.OrderID] = p.Status
				}
			case market.EvAuctionCleared:
				if cur == nil || p.Record == nil {
					return nil, fmt.Errorf("scenario: malformed auction-cleared event (in epoch: %v)", cur != nil)
				}
				cur.Auctions++
				if p.Record.Converged {
					cur.Converged++
				}
				cur.Settled += p.Record.Settled
				premiums = append(premiums, p.Record.Premiums...)
			}

		case federation.EventSource:
			if !federated {
				return nil, fmt.Errorf("scenario: fed event on %s backend", backendKind)
			}
			p, ok := ev.Payload.(*federation.FedEvent)
			if !ok {
				return nil, fmt.Errorf("scenario: fed event has payload %T", ev.Payload)
			}
			switch p.Kind {
			case federation.EvFedOrderSubmitted:
				if cur == nil || p.Order == nil {
					return nil, fmt.Errorf("scenario: malformed fed-order-submitted event (in epoch: %v)", cur != nil)
				}
				cur.Submitted++
				tracked[p.Order.ID] = p.Order.Status
			case federation.EvFedOrderUpdated:
				if p.Order == nil {
					return nil, fmt.Errorf("scenario: malformed fed-order-updated event")
				}
				if _, ok := tracked[p.Order.ID]; ok {
					tracked[p.Order.ID] = p.Order.Status
				}
			}
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("scenario: stream ends inside epoch %d", cur.Epoch)
	}
	return rep, nil
}
