package scenario

import (
	"testing"

	"clustermarket/internal/fault"
)

// runFaulted drives one scenario on a journaled backend with the given
// injector armed, closing the backend's journals before returning.
func runFaulted(t *testing.T, name, kind string, cfg Config) *Report {
	t.Helper()
	sc, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rep, err := Run(sc, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestFaultScenariosFingerprintMatchFaultFree is the tentpole
// acceptance gate: disk-fault and partition-storm, with their scripted
// fault schedules actually injected under a journaled backend, must
// fingerprint-match the fault-free in-memory run bit for bit — every
// scripted burst stays within the bounded inline retries, so faults
// that heal are invisible to market outcomes — with the invariant
// kernel clean after every epoch.
func TestFaultScenariosFingerprintMatchFaultFree(t *testing.T) {
	cases := []struct {
		scenario string
		kind     string
		// seam reports whether this backend exposes a seam for the
		// scenario's scripted ops: region ops have none on the bare
		// exchange, so partition-storm/exchange must inject nothing.
		seam bool
	}{
		{"disk-fault", "exchange", true},
		{"disk-fault", "federation", true},
		{"partition-storm", "exchange", false},
		{"partition-storm", "federation", true},
	}
	for _, tc := range cases {
		t.Run(tc.scenario+"/"+tc.kind, func(t *testing.T) {
			base := runNamed(t, tc.scenario, tc.kind, Config{Seed: 42})
			inj := fault.New()
			cfg := Config{Seed: 42, JournalDir: t.TempDir(), FsyncEvery: 1, SnapshotEvery: 3, Injector: inj}
			rep := runFaulted(t, tc.scenario, tc.kind, cfg)
			for _, v := range rep.Violations {
				t.Errorf("invariant violated: %s", v)
			}
			if got, want := rep.Fingerprint(), base.Fingerprint(); got != want {
				t.Errorf("faulted run fingerprint %s, fault-free baseline %s", got[:16], want[:16])
			}
			if tc.seam && inj.Injected() == 0 {
				t.Error("scripted fault schedule injected nothing — the seam is not wired")
			}
			if !tc.seam && inj.Injected() != 0 {
				t.Errorf("injected %d faults on a backend with no seam for them", inj.Injected())
			}
		})
	}
}

// TestChaosSameSeedBitIdentical pins the chaos-mode determinism
// contract: two runs under the same seeded-random fault schedule must
// fingerprint-match each other. A chaos schedule may change outcomes
// relative to the fault-free run (lost gossip quotes, opened breakers),
// but it must do so identically on every rerun.
func TestChaosSameSeedBitIdentical(t *testing.T) {
	for _, kind := range backendKinds {
		t.Run(kind, func(t *testing.T) {
			var prints [2]string
			var injected [2]uint64
			for i := 0; i < 2; i++ {
				inj := fault.NewChaos(99)
				cfg := Config{Seed: 42, JournalDir: t.TempDir(), FsyncEvery: 1, SnapshotEvery: 3, Injector: inj}
				rep := runFaulted(t, "churn", kind, cfg)
				for _, v := range rep.Violations {
					t.Errorf("leg %d: invariant violated: %s", i, v)
				}
				prints[i] = rep.Fingerprint()
				injected[i] = inj.Injected()
			}
			if prints[0] != prints[1] {
				t.Errorf("chaos legs diverged: %s vs %s", prints[0][:16], prints[1][:16])
			}
			if injected[0] != injected[1] {
				t.Errorf("chaos legs injected %d vs %d faults", injected[0], injected[1])
			}
			// The federated backend has a seam for every op the chaos
			// schedule can arm, so a whole run without one injection means
			// the schedule is not firing.
			if kind == "federation" && injected[0] == 0 {
				t.Error("chaos schedule injected nothing")
			}
		})
	}
}
