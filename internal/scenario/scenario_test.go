package scenario

import (
	"reflect"
	"strings"
	"testing"

	"clustermarket/internal/core"
	"clustermarket/internal/resource"
)

var backendKinds = []string{"exchange", "federation"}

// runNamed is the test harness: build the backend, run the scenario,
// and fail on any engine error.
func runNamed(t *testing.T, name, kind string, cfg Config) *Report {
	t.Helper()
	sc, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestCatalogCleanOnBothBackends is the acceptance gate: every named
// scenario runs end to end on both the single-exchange and federated
// backends, actually trades, and passes the shared invariant kernel
// after every epoch.
func TestCatalogCleanOnBothBackends(t *testing.T) {
	for _, sc := range Catalog() {
		for _, kind := range backendKinds {
			t.Run(sc.Name+"/"+kind, func(t *testing.T) {
				rep := runNamed(t, sc.Name, kind, Config{Seed: 42})
				for _, v := range rep.Violations {
					t.Errorf("invariant violated: %s", v)
				}
				var submitted, converged, won int
				for _, s := range rep.Epochs {
					submitted += s.Submitted
					converged += s.Converged
					won += s.Won
				}
				if submitted == 0 || converged == 0 || won == 0 {
					t.Errorf("degenerate run: submitted=%d converged=%d won=%d", submitted, converged, won)
				}
			})
		}
	}
}

// TestSameSeedBitIdentical pins the engine's reproducibility contract:
// two runs of the same scenario, backend, and seed produce bit-identical
// epoch summaries (and therefore identical fingerprints). This is the
// satellite test for the RNG/map-iteration nondeterminism audit — any
// unseeded randomness or map-order dependence anywhere under the engine
// (exchange settlement, federation routing, placement) breaks it.
func TestSameSeedBitIdentical(t *testing.T) {
	for _, sc := range Catalog() {
		for _, kind := range backendKinds {
			t.Run(sc.Name+"/"+kind, func(t *testing.T) {
				a := runNamed(t, sc.Name, kind, Config{Seed: 97})
				b := runNamed(t, sc.Name, kind, Config{Seed: 97})
				if a.Fingerprint() != b.Fingerprint() {
					t.Errorf("same-seed fingerprints diverged: %s vs %s", a.Fingerprint(), b.Fingerprint())
				}
				if !reflect.DeepEqual(a.Epochs, b.Epochs) {
					t.Errorf("same-seed epoch summaries diverged:\n%+v\nvs\n%+v", a.Epochs, b.Epochs)
				}
			})
		}
	}
}

// TestPartitionModeFingerprintInvariant pins the sub-market
// decomposition's equivalence contract at the system level: every
// catalog scenario, on both backends, fingerprints bit-identically
// whether the clock runs merged (core.PartitionOff) or decomposed into
// independent bidder–pool components (core.PartitionAuto, the
// default). Prices, premiums, settlement order, and every epoch
// summary field must survive the partitioned path unchanged — any
// map-order or float-accumulation divergence it introduces breaks this
// immediately.
func TestPartitionModeFingerprintInvariant(t *testing.T) {
	for _, sc := range Catalog() {
		for _, kind := range backendKinds {
			t.Run(sc.Name+"/"+kind, func(t *testing.T) {
				off := runNamed(t, sc.Name, kind, Config{Seed: 97, Partition: core.PartitionOff})
				auto := runNamed(t, sc.Name, kind, Config{Seed: 97, Partition: core.PartitionAuto})
				if off.Fingerprint() != auto.Fingerprint() {
					t.Errorf("partition modes diverged: off %s vs auto %s", off.Fingerprint(), auto.Fingerprint())
				}
				if !reflect.DeepEqual(off.Epochs, auto.Epochs) {
					t.Errorf("partition modes diverged in epoch summaries:\n%+v\nvs\n%+v", off.Epochs, auto.Epochs)
				}
			})
		}
	}
}

// TestDifferentSeedsDiverge guards the fingerprint itself: if two runs
// with different seeds hash identically, the fingerprint is not actually
// covering the summaries.
func TestDifferentSeedsDiverge(t *testing.T) {
	a := runNamed(t, "diurnal", "exchange", Config{Seed: 1})
	b := runNamed(t, "diurnal", "exchange", Config{Seed: 2})
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different seeds produced identical fingerprints")
	}
}

// TestAdaptiveLearningReproducesTableI asserts the paper's learning
// curve: with adaptive premium shading, the median settled premium γ_u
// falls substantially across successive auctions (Table I shows the
// median dropping every auction as bidders learn the market).
func TestAdaptiveLearningReproducesTableI(t *testing.T) {
	for _, kind := range backendKinds {
		rep := runNamed(t, "adaptive-learning", kind, Config{Seed: 42})
		n := len(rep.Epochs)
		early := (rep.Epochs[0].MedianPremium + rep.Epochs[1].MedianPremium) / 2
		late := (rep.Epochs[n-1].MedianPremium + rep.Epochs[n-2].MedianPremium) / 2
		if late >= early/2 {
			t.Errorf("%s: premiums did not learn down: early median %.3f, late median %.3f", kind, early, late)
		}
	}
}

// TestFlashCrowdHeatsHotPool asserts prices track congestion: the burst
// of demand pinned to region r1's hot pool must leave r1's CPU price
// above its pre-crowd level.
func TestFlashCrowdHeatsHotPool(t *testing.T) {
	for _, kind := range backendKinds {
		rep := runNamed(t, "flash-crowd", kind, Config{Seed: 42})
		pre := rep.Epochs[2].Prices[0]
		post := rep.Epochs[5].Prices[0]
		if pre.Region != "r1" || post.Region != "r1" {
			t.Fatalf("%s: price rows not in region order: %+v", kind, rep.Epochs[2].Prices)
		}
		if post.MeanCPU <= pre.MeanCPU {
			t.Errorf("%s: flash crowd did not heat r1: %.3f -> %.3f", kind, pre.MeanCPU, post.MeanCPU)
		}
	}
}

// TestDiurnalDemandFollowsWave asserts the wave actually modulates the
// submitted order flow: peak epochs carry more demand than troughs.
func TestDiurnalDemandFollowsWave(t *testing.T) {
	rep := runNamed(t, "diurnal", "exchange", Config{Seed: 42})
	peak := rep.Epochs[1].Submitted + rep.Epochs[2].Submitted
	trough := rep.Epochs[5].Submitted + rep.Epochs[6].Submitted
	if peak <= trough {
		t.Errorf("demand did not follow the wave: peak epochs %d orders, trough epochs %d", peak, trough)
	}
}

// TestRegionOutageSkipsAndRejoins asserts the chaos path on the
// federated backend: while r2 is dark its auctions stop (one fewer
// settlement record per wave), and after the rejoin the full region set
// settles again.
func TestRegionOutageSkipsAndRejoins(t *testing.T) {
	rep := runNamed(t, "region-outage", "federation", Config{Seed: 42})
	for _, s := range rep.Epochs {
		dark := len(s.Dark) > 0
		switch {
		case dark && s.Auctions > 2:
			t.Errorf("epoch %d: %d auctions while %v dark", s.Epoch, s.Auctions, s.Dark)
		case dark && !strings.Contains(strings.Join(s.Dark, ","), "r2"):
			t.Errorf("epoch %d: unexpected dark set %v", s.Epoch, s.Dark)
		}
	}
	last := rep.Epochs[len(rep.Epochs)-1]
	if last.Auctions != 3 {
		t.Errorf("after rejoin, final epoch settled %d regions, want 3", last.Auctions)
	}
	if len(rep.Epochs[3].Dark) == 0 || len(rep.Epochs[6].Dark) != 0 {
		t.Errorf("outage window not where scripted: %+v", rep.Epochs)
	}
}

// TestTraderStormForcesNonConvergenceAndRecovers asserts the hostile
// path end to end: during the storm the poisoned clocks hit MaxRounds
// (non-convergent epochs), the livelock guard retires stranded batches
// as Unsettled, and once the storm passes the market clears again —
// with the invariant kernel green throughout (checked by the catalog
// gate above; re-checked here on this run).
func TestTraderStormForcesNonConvergenceAndRecovers(t *testing.T) {
	for _, kind := range backendKinds {
		rep := runNamed(t, "trader-storm", kind, Config{Seed: 42})
		for _, v := range rep.Violations {
			t.Errorf("%s: invariant violated during storm: %s", kind, v)
		}
		stormEpochs, unsettled := 0, 0
		for _, s := range rep.Epochs {
			if s.Auctions > 0 && s.Converged < s.Auctions {
				stormEpochs++
			}
			unsettled += s.Unsettled
		}
		if stormEpochs < 2 {
			t.Errorf("%s: only %d non-convergent epochs; storm did not bite", kind, stormEpochs)
		}
		if unsettled == 0 {
			t.Errorf("%s: no orders retired Unsettled; livelock guard never fired", kind)
		}
		last := rep.Epochs[len(rep.Epochs)-1]
		if last.Converged == 0 || last.Won == 0 {
			t.Errorf("%s: market did not recover after the storm: %+v", kind, last)
		}
	}
}

// TestChurnKeepsMarketLiquid asserts a quarter of the population being
// new every epoch (with budget refresh cycles) never starves the market:
// every epoch still settles trades.
func TestChurnKeepsMarketLiquid(t *testing.T) {
	rep := runNamed(t, "churn", "federation", Config{Seed: 42})
	for _, s := range rep.Epochs {
		if s.Settled == 0 {
			t.Errorf("epoch %d settled nothing under churn", s.Epoch)
		}
	}
}

func TestLookupAndNames(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("catalog has %d scenarios, want >= 5", len(names))
	}
	for _, want := range []string{"diurnal", "flash-crowd", "churn", "region-outage", "adaptive-learning", "trader-storm"} {
		if _, err := Lookup(want); err != nil {
			t.Errorf("Lookup(%q): %v", want, err)
		}
	}
	if _, err := Lookup("no-such"); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := NewBackend("no-such", Config{}); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestSubmitCancelBidRoundTrip exercises the raw-bid path both backends
// expose for event injection: a booked bid can be withdrawn (the
// rollback injectTraderPair uses when a pair's second leg is rejected),
// and bad clusters are rejected.
func TestSubmitCancelBidRoundTrip(t *testing.T) {
	for _, kind := range backendKinds {
		cfg := Config{Seed: 11}
		b, err := NewBackend(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.OpenAccount("raw"); err != nil {
			t.Fatal(err)
		}
		cn := b.ClustersOf("r1")[0]
		reg := b.RegistryFor(cn)
		v := reg.Zero()
		i, ok := reg.Index(resource.Pool{Cluster: cn, Dim: resource.CPU})
		if !ok {
			t.Fatalf("%s: no CPU pool in %q", kind, cn)
		}
		v[i] = 4
		id, err := b.SubmitBid(cn, "raw", &core.Bid{User: "raw/x", Bundles: []resource.Vector{v}, Limit: 50})
		if err != nil {
			t.Fatalf("%s: SubmitBid: %v", kind, err)
		}
		if err := b.CancelBid(cn, id); err != nil {
			t.Fatalf("%s: CancelBid: %v", kind, err)
		}
		if err := b.CancelBid(cn, id); err == nil {
			t.Errorf("%s: double cancel accepted", kind)
		}
		if kind == "federation" {
			if _, err := b.SubmitBid("mars-c1", "raw", &core.Bid{User: "raw/y", Bundles: []resource.Vector{v}, Limit: 5}); err == nil {
				t.Error("federation: bid for unknown cluster accepted")
			}
			if err := b.CancelBid("mars-c1", 0); err == nil {
				t.Error("federation: cancel for unknown cluster accepted")
			}
		}
	}
}

// TestConfigOverridesEpochs checks cfg.Epochs overrides the scenario
// default — the cmd/marketsim -epochs flag path.
func TestConfigOverridesEpochs(t *testing.T) {
	rep := runNamed(t, "diurnal", "exchange", Config{Seed: 3, Epochs: 4})
	if len(rep.Epochs) != 4 {
		t.Errorf("epochs = %d, want 4", len(rep.Epochs))
	}
}
