// Package scenario is the planet-scale scenario engine: a deterministic,
// seed-reproducible multi-epoch driver that pushes either a single
// market.Exchange or a full federation.Federation through scripted event
// timelines — diurnal demand waves, flash crowds on hot pools, bidder
// churn with budget refresh cycles, regions going dark and rejoining,
// adaptive bidders that shade their premiums from past results
// (reproducing the Table I learning curve), and clock non-convergence
// storms from hostile trader mixes — and runs the shared invariant
// kernel (internal/invariant) after every epoch.
//
// The paper's Section V evidence is longitudinal: premiums fall and
// prices track congestion only across successive auctions with
// persistent accounts (Table I, Figures 6–7). One-shot worlds cannot
// exercise that; the scenario engine makes "as many scenarios as you can
// imagine" a one-line test. See the Catalog for the named scenarios and
// DESIGN.md for how to add one.
package scenario

import (
	"errors"
	"fmt"
	"path/filepath"

	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/fault"
	"clustermarket/internal/federation"
	"clustermarket/internal/invariant"
	"clustermarket/internal/journal"
	"clustermarket/internal/market"
	"clustermarket/internal/resource"
)

// Outcome is the backend-neutral view of one order's fate.
type Outcome struct {
	Status  market.OrderStatus
	Payment float64
	// Region is the sub-market that settled the order ("" while open).
	Region string
}

// Backend abstracts the market under test so every scenario runs
// unchanged against a single exchange and a federation. Both backends
// expose the same topology — Regions() named r1…rN, each owning
// ClustersOf(region) clusters named rK-cJ — so a scenario's event
// timeline (which region is dark, where the flash crowd lands) is
// backend-independent. On the exchange backend the regions are virtual
// groupings over one fleet and one auctioneer; on the federation backend
// they are autonomous regional markets behind the price-board router.
//
// Backends are not safe for concurrent use: the engine is deliberately
// single-threaded so same-seed runs are bit-identical. Concurrency is
// soaked separately by the -race stress tests.
type Backend interface {
	// Kind names the backend ("exchange" or "federation").
	Kind() string
	// Regions lists the sub-market names in fixed order.
	Regions() []string
	// ClustersOf lists a region's cluster names in fixed order.
	ClustersOf(region string) []string
	// RegistryFor returns the pool registry governing the cluster's
	// sub-market (the global registry on the exchange backend).
	RegistryFor(clusterName string) *resource.Registry
	// OpenAccount creates a team account (in every region, on the
	// federation backend).
	OpenAccount(team string) error
	// SubmitProduct routes one product order and returns its reference.
	SubmitProduct(team, product string, qty float64, clusters []string, limit float64) (int, error)
	// SubmitBid books a raw clock bid into the sub-market owning the
	// cluster — the path scenarios use to inject hostile trader mixes the
	// product catalog cannot express. It returns the regional order ID,
	// usable only with CancelBid against the same cluster.
	SubmitBid(clusterName, team string, bid *core.Bid) (int, error)
	// CancelBid withdraws a raw bid booked by SubmitBid, so a partially
	// injected multi-bid event (one leg rejected) can roll back.
	CancelBid(clusterName string, id int) error
	// Outcome reports the order's current status.
	Outcome(id int) (Outcome, error)
	// Settle runs one settlement wave over every region not in down.
	// Non-convergence and empty books are normal epoch outcomes, not
	// errors.
	Settle(down map[string]bool) error
	// EpochRecords returns the auction records appended since the last
	// call, in deterministic region order.
	EpochRecords() []*market.AuctionRecord
	// Place reflects a won order's allocation onto the owning fleet as
	// scheduled tasks, so settled demand congests future reserve prices.
	Place(id int)
	// EvictFraction removes the given fraction of the scenario-placed
	// tasks in the region, oldest first — the demand ebb of a diurnal
	// trough.
	EvictFraction(region string, frac float64)
	// Disburse credits new budget across all team accounts, equal shares
	// (split across regions on the federation backend).
	Disburse(total float64) error
	// ReservePrices returns the region's current reserve price vector.
	ReservePrices(region string) (resource.Vector, error)
	// MeanCPUPrice averages the region's CPU pool prices: clearing prices
	// once an auction has converged, reserve prices before.
	MeanCPUPrice(region string) float64
	// OpenOrderCount counts orders awaiting settlement across regions.
	OpenOrderCount() int
	// Check runs the shared invariant kernel over the whole market.
	Check() []invariant.Violation
	// CrashRecover kills the backend's journals without flushing (the
	// scripted power loss) and rebuilds the whole market from disk:
	// deterministic fleet reconstruction, snapshot load, WAL replay, and
	// the invariant kernel before serving resumes. It errors on an
	// un-journaled backend.
	CrashRecover() error
	// Close releases the backend's journals (and their directory locks).
	Close() error
}

// regionName and clusterName fix the shared topology naming.
func regionName(k int) string                 { return fmt.Sprintf("r%d", k+1) }
func clusterName(region string, j int) string { return fmt.Sprintf("%s-c%d", region, j+1) }

// buildFleet assembles one region's clusters, utilization-skewed by the
// config's seeded rng so every region starts with a distinct hot/cold
// profile.
func buildFleet(cfg Config, region string, util float64) (*cluster.Fleet, error) {
	fleet := cluster.NewFleet()
	for j := 0; j < cfg.ClustersPerRegion; j++ {
		cn := clusterName(region, j)
		c := cluster.New(cn, nil)
		c.UnitCost = cluster.Usage{CPU: unitCostCPU, RAM: unitCostRAM, Disk: unitCostDisk}
		c.AddMachines(cfg.MachinesPerCluster, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			return nil, err
		}
		if err := fleet.FillToUtilization(cfg.rng, cn, cluster.Usage{CPU: util, RAM: util, Disk: util}); err != nil {
			return nil, err
		}
	}
	return fleet, nil
}

// regionUtil picks region k's starting utilization: r1 hot, the rest
// cooling linearly — the skew the paper's Figure 6 worlds start from.
func regionUtil(k, regions int) float64 {
	if regions == 1 {
		return 0.55
	}
	return 0.78 - 0.6*float64(k)/float64(regions-1)
}

func marketConfig(cfg Config) market.Config {
	return market.Config{
		InitialBudget: cfg.InitialBudget,
		MaxRounds:     cfg.MaxRounds,
		Shards:        cfg.Shards,
		Partition:     cfg.Partition,
		SnapshotEvery: cfg.SnapshotEvery,
		Telemetry:     cfg.Telemetry,
	}
}

// faultFS wires the config's injector under a journal's filesystem; a
// nil injector selects the real filesystem.
func faultFS(cfg Config) journal.FS {
	if cfg.Injector == nil {
		return nil
	}
	return fault.NewFS(cfg.Injector, nil)
}

// faultRetries bounds the backend-level force-resume-and-retry loops: a
// fault burst deep enough to outlast the exchanges' bounded inline
// retries (chaos schedules, hostile unit tests) quiesces the exchange;
// the backend forces a resume probe and replays the operation, which the
// entry-point fault seams keep side-effect-free on failure.
const faultRetries = 8

// faultRetryable reports whether the error is the fault machinery
// speaking — an injected fault surfacing at an entry seam, or the
// degraded-quiesce rejection — rather than an organic failure.
func faultRetryable(err error) bool {
	return errors.Is(err, market.ErrDegraded) || errors.Is(err, fault.ErrInjected)
}

// openFreshJournal opens a journal directory that must hold no prior
// state: scenario backends always build fresh worlds, and recovery goes
// through CrashRecover against the same directory.
func openFreshJournal(dir string, cfg Config) (*journal.Journal, error) {
	j, rec, err := journal.Open(dir, journal.Options{FsyncEvery: cfg.FsyncEvery, FS: faultFS(cfg)})
	if err != nil {
		return nil, err
	}
	if !rec.Empty() {
		j.Close()
		return nil, fmt.Errorf("scenario: journal dir %s already holds a journal", dir)
	}
	return j, nil
}

// placedTask remembers one scheduled task for later eviction.
type placedTask struct {
	cluster string
	id      string
}

// ---------------------------------------------------------------------
// Exchange backend: one fleet, one auctioneer, regions as groupings.
// ---------------------------------------------------------------------

type exchangeBackend struct {
	ex       *market.Exchange
	regions  []string
	clusters map[string][]string // region → clusters
	owner    map[string]string   // cluster → region
	seen     int                 // history records already reported
	placed   map[string][]placedTask
	// cfg (with its rng detached) is kept so CrashRecover can rebuild the
	// fleet exactly as the original build did; journal is non-nil on the
	// durable variant.
	cfg     Config
	journal *journal.Journal
}

// NewExchangeBackend builds the single-exchange backend: every region's
// clusters live in one fleet behind one order book and one clock.
func NewExchangeBackend(cfg Config) (Backend, error) {
	cfg.applyDefaults()
	b := &exchangeBackend{
		clusters: make(map[string][]string),
		owner:    make(map[string]string),
		placed:   make(map[string][]placedTask),
	}
	fleet := cluster.NewFleet()
	for k := 0; k < cfg.Regions; k++ {
		rn := regionName(k)
		b.regions = append(b.regions, rn)
		rf, err := buildFleet(cfg, rn, regionUtil(k, cfg.Regions))
		if err != nil {
			return nil, err
		}
		for _, cn := range rf.ClusterNames() {
			if err := fleet.AddCluster(rf.Cluster(cn)); err != nil {
				return nil, err
			}
			b.clusters[rn] = append(b.clusters[rn], cn)
			b.owner[cn] = rn
		}
	}
	mcfg := marketConfig(cfg)
	if cfg.JournalDir != "" {
		j, err := openFreshJournal(cfg.JournalDir, cfg)
		if err != nil {
			return nil, err
		}
		mcfg.Journal = j
		b.journal = j
	}
	ex, err := market.NewExchange(fleet, mcfg)
	if err != nil {
		return nil, err
	}
	b.ex = ex
	cfg.rng = nil
	b.cfg = cfg
	return b, nil
}

func (b *exchangeBackend) CrashRecover() error {
	if b.journal == nil {
		return errors.New("scenario: exchange backend has no journal to recover from")
	}
	b.journal.Crash()
	j, rec, err := journal.Open(b.cfg.JournalDir, journal.Options{FsyncEvery: b.cfg.FsyncEvery, FS: faultFS(b.cfg)})
	if err != nil {
		return err
	}
	// Rebuild the fleet exactly as the crashed build did: same seed, same
	// region order, a fresh rng stream.
	cfg := b.cfg
	cfg.applyDefaults()
	fleet := cluster.NewFleet()
	for k := 0; k < cfg.Regions; k++ {
		rf, err := buildFleet(cfg, regionName(k), regionUtil(k, cfg.Regions))
		if err != nil {
			j.Close()
			return err
		}
		for _, cn := range rf.ClusterNames() {
			if err := fleet.AddCluster(rf.Cluster(cn)); err != nil {
				j.Close()
				return err
			}
		}
	}
	mcfg := marketConfig(cfg)
	mcfg.Journal = j
	ex, err := market.Recover(fleet, mcfg, rec)
	if err != nil {
		j.Close()
		return err
	}
	if vs := invariant.CheckExchange(ex); len(vs) > 0 {
		j.Close()
		return fmt.Errorf("scenario: recovered exchange fails invariants: %s", vs[0])
	}
	b.ex = ex
	b.journal = j
	// The placed lists come back from the recovered exchange's own fleet
	// delta, in original placement order (EvictFraction depends on it).
	b.placed = make(map[string][]placedTask)
	for _, pt := range ex.PlacedTasks() {
		rn := b.owner[pt.Cluster]
		b.placed[rn] = append(b.placed[rn], placedTask{cluster: pt.Cluster, id: pt.TaskID})
	}
	return nil
}

func (b *exchangeBackend) Close() error {
	if b.journal == nil {
		return nil
	}
	return b.journal.Close()
}

func (b *exchangeBackend) Kind() string                          { return "exchange" }
func (b *exchangeBackend) Regions() []string                     { return b.regions }
func (b *exchangeBackend) ClustersOf(region string) []string     { return b.clusters[region] }
func (b *exchangeBackend) RegistryFor(string) *resource.Registry { return b.ex.Registry() }
func (b *exchangeBackend) OpenAccount(team string) error         { return b.ex.OpenAccount(team) }

func (b *exchangeBackend) SubmitProduct(team, product string, qty float64, clusters []string, limit float64) (int, error) {
	o, err := b.ex.SubmitProduct(team, product, qty, clusters, limit)
	for attempt := 0; attempt < faultRetries && err != nil && faultRetryable(err); attempt++ {
		// A rejected-for-degraded submit left no trace (the stripe slot is
		// rolled back), so force a resume probe and replay it verbatim.
		_ = b.ex.TryResume(true)
		o, err = b.ex.SubmitProduct(team, product, qty, clusters, limit)
	}
	if err != nil {
		return 0, err
	}
	return o.ID, nil
}

func (b *exchangeBackend) SubmitBid(_, team string, bid *core.Bid) (int, error) {
	o, err := b.ex.Submit(team, bid)
	if err != nil {
		return 0, err
	}
	return o.ID, nil
}

func (b *exchangeBackend) CancelBid(_ string, id int) error { return b.ex.Cancel(id) }

func (b *exchangeBackend) Outcome(id int) (Outcome, error) {
	o, err := b.ex.Order(id)
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{Status: o.Status, Payment: o.Payment}
	if o.Status == market.Won {
		// Attribute the win to the region owning the settled bundle's
		// first positive pool.
		for i, q := range o.Allocation {
			if q > 0 {
				out.Region = b.owner[b.ex.Registry().Pool(i).Cluster]
				break
			}
		}
	}
	return out, nil
}

func (b *exchangeBackend) Settle(map[string]bool) error {
	// One auctioneer clears the whole book; a virtual region being dark
	// only means no new demand names its clusters. A fault burst deep
	// enough to quiesce the exchange is answered with a forced resume
	// probe and a replay — settlement aborts release the unprocessed
	// batch, so the retried auction claims the identical order set.
	var err error
	for attempt := 0; attempt <= faultRetries; attempt++ {
		if attempt > 0 {
			_ = b.ex.TryResume(true)
		}
		_, _, err = b.ex.RunAuction()
		if err == nil || errors.Is(err, market.ErrNoOpenOrders) || errors.Is(err, core.ErrNoConvergence) {
			return nil
		}
		if !faultRetryable(err) {
			return err
		}
	}
	return err
}

func (b *exchangeBackend) EpochRecords() []*market.AuctionRecord {
	hist := b.ex.History()
	out := hist[b.seen:]
	b.seen = len(hist)
	return out
}

func (b *exchangeBackend) Place(id int) {
	// Placement goes through the exchange's journaled op, so a recovered
	// process re-materializes the same tasks on the same machines.
	tasks, err := b.ex.PlaceOrder(id)
	if err != nil {
		return
	}
	for _, pt := range tasks {
		rn := b.owner[pt.Cluster]
		b.placed[rn] = append(b.placed[rn], placedTask{cluster: pt.Cluster, id: pt.TaskID})
	}
}

func (b *exchangeBackend) EvictFraction(region string, frac float64) {
	b.placed[region] = evictFraction(b.ex.EvictTask, b.placed[region], frac)
}

func (b *exchangeBackend) Disburse(total float64) error {
	// Disburse is one event, so a journal-failure abort leaves nothing to
	// undo and the whole operation retries cleanly.
	err := b.ex.Disburse(market.EqualShares, total)
	for attempt := 0; attempt < faultRetries && err != nil && faultRetryable(err); attempt++ {
		_ = b.ex.TryResume(true)
		err = b.ex.Disburse(market.EqualShares, total)
	}
	return err
}

func (b *exchangeBackend) ReservePrices(string) (resource.Vector, error) {
	return b.ex.ReservePrices()
}

func (b *exchangeBackend) MeanCPUPrice(region string) float64 {
	return meanCPUPrice(b.ex, b.clusters[region])
}

func (b *exchangeBackend) OpenOrderCount() int { return b.ex.OpenOrderCount() }

func (b *exchangeBackend) Check() []invariant.Violation { return invariant.CheckExchange(b.ex) }

// ---------------------------------------------------------------------
// Federation backend: one autonomous regional market per region.
// ---------------------------------------------------------------------

type federationBackend struct {
	fed     *federation.Federation
	regions []string
	seen    map[string]int
	placed  map[string][]placedTask
	// cfg (rng detached) backs CrashRecover's deterministic rebuild;
	// journals maps region name (plus "fed" for the router) to its
	// journal on the durable variant.
	cfg      Config
	journals map[string]*journal.Journal
}

// fedJournalName keys the router's own journal in the journals map and
// names its subdirectory under Config.JournalDir.
const fedJournalName = "fed"

// NewFederationBackend builds the federated backend: one Region per
// scenario region, fronted by the price-board router.
func NewFederationBackend(cfg Config) (Backend, error) {
	cfg.applyDefaults()
	b := &federationBackend{
		seen:   make(map[string]int),
		placed: make(map[string][]placedTask),
	}
	journals := make(map[string]*journal.Journal)
	closeAll := func() {
		//marketlint:orderfree each journal is closed exactly once; close order is immaterial
		for _, j := range journals {
			j.Close()
		}
	}
	var members []*federation.Region
	for k := 0; k < cfg.Regions; k++ {
		rn := regionName(k)
		fleet, err := buildFleet(cfg, rn, regionUtil(k, cfg.Regions))
		if err != nil {
			closeAll()
			return nil, err
		}
		mcfg := marketConfig(cfg)
		if cfg.JournalDir != "" {
			j, err := openFreshJournal(filepath.Join(cfg.JournalDir, rn), cfg)
			if err != nil {
				closeAll()
				return nil, err
			}
			journals[rn] = j
			mcfg.Journal = j
		}
		r, err := federation.NewRegion(rn, fleet, mcfg)
		if err != nil {
			closeAll()
			return nil, err
		}
		members = append(members, r)
		b.regions = append(b.regions, rn)
	}
	fed, err := federation.NewFederation(members...)
	if err != nil {
		closeAll()
		return nil, err
	}
	// The router publishes its routing events to the same firehose the
	// regional exchanges got through marketConfig, so one subscription
	// sees the whole federated stream. The fault injector (possibly nil)
	// interposes on its region calls and gossip.
	fed.AttachTelemetry(cfg.Telemetry)
	fed.AttachFaults(cfg.Injector)
	if cfg.JournalDir != "" {
		fj, err := openFreshJournal(filepath.Join(cfg.JournalDir, fedJournalName), cfg)
		if err != nil {
			closeAll()
			return nil, err
		}
		journals[fedJournalName] = fj
		fed.AttachJournal(fj, cfg.SnapshotEvery)
		b.journals = journals
	}
	b.fed = fed
	cfg.rng = nil
	b.cfg = cfg
	return b, nil
}

func (b *federationBackend) CrashRecover() error {
	if len(b.journals) == 0 {
		return errors.New("scenario: federation backend has no journals to recover from")
	}
	//marketlint:orderfree each journal is crashed exactly once; crash order is immaterial
	for _, j := range b.journals {
		j.Crash()
	}
	cfg := b.cfg
	cfg.applyDefaults()
	journals := make(map[string]*journal.Journal)
	closeAll := func() {
		//marketlint:orderfree each journal is closed exactly once; close order is immaterial
		for _, j := range journals {
			j.Close()
		}
	}
	var members []*federation.Region
	for k := 0; k < cfg.Regions; k++ {
		rn := regionName(k)
		fleet, err := buildFleet(cfg, rn, regionUtil(k, cfg.Regions))
		if err != nil {
			closeAll()
			return err
		}
		j, rec, err := journal.Open(filepath.Join(cfg.JournalDir, rn), journal.Options{FsyncEvery: cfg.FsyncEvery, FS: faultFS(cfg)})
		if err != nil {
			closeAll()
			return err
		}
		journals[rn] = j
		mcfg := marketConfig(cfg)
		mcfg.Journal = j
		r, err := federation.RecoverRegion(rn, fleet, mcfg, rec)
		if err != nil {
			closeAll()
			return err
		}
		members = append(members, r)
	}
	fj, frec, err := journal.Open(filepath.Join(cfg.JournalDir, fedJournalName), journal.Options{FsyncEvery: cfg.FsyncEvery, FS: faultFS(cfg)})
	if err != nil {
		closeAll()
		return err
	}
	journals[fedJournalName] = fj
	fed, err := federation.NewFederation(members...)
	if err != nil {
		closeAll()
		return err
	}
	if err := fed.Restore(frec); err != nil {
		closeAll()
		return err
	}
	fed.AttachJournal(fj, cfg.SnapshotEvery)
	// Replay itself published nothing (recovery dispatches straight to
	// applyEvent); the resurrected router rejoins the live stream here —
	// and the fault seam, which the partition may still be arming.
	fed.AttachTelemetry(cfg.Telemetry)
	fed.AttachFaults(cfg.Injector)
	if vs := invariant.CheckFederation(fed); len(vs) > 0 {
		closeAll()
		return fmt.Errorf("scenario: recovered federation fails invariants: %s", vs[0])
	}
	b.fed = fed
	b.journals = journals
	b.placed = make(map[string][]placedTask)
	for _, rn := range b.regions {
		for _, pt := range fed.Region(rn).Exchange().PlacedTasks() {
			b.placed[rn] = append(b.placed[rn], placedTask{cluster: pt.Cluster, id: pt.TaskID})
		}
	}
	return nil
}

func (b *federationBackend) Close() error {
	var first error
	//marketlint:orderfree map order only picks which close error is surfaced; callers check err != nil
	for _, j := range b.journals {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (b *federationBackend) Kind() string      { return "federation" }
func (b *federationBackend) Regions() []string { return b.regions }

func (b *federationBackend) ClustersOf(region string) []string {
	r := b.fed.Region(region)
	if r == nil {
		return nil
	}
	return r.Clusters()
}

func (b *federationBackend) RegistryFor(clusterName string) *resource.Registry {
	r := b.fed.Region(b.fed.RegionOf(clusterName))
	if r == nil {
		return nil
	}
	return r.Exchange().Registry()
}

func (b *federationBackend) OpenAccount(team string) error { return b.fed.OpenAccount(team) }

func (b *federationBackend) SubmitProduct(team, product string, qty float64, clusters []string, limit float64) (int, error) {
	fo, err := b.fed.SubmitProduct(team, product, qty, clusters, limit)
	for attempt := 0; attempt < faultRetries && err != nil && faultRetryable(err); attempt++ {
		// The router's fault seam fails routing before any state moves, and
		// a degraded regional submit rolls its stripe slot back, so the
		// replayed call is operation-identical — which is what lets a
		// partition that heals leave no fingerprint.
		b.forceResume()
		fo, err = b.fed.SubmitProduct(team, product, qty, clusters, limit)
	}
	if err != nil {
		return 0, err
	}
	return fo.ID, nil
}

// forceResume force-probes every region's exchange out of degraded
// quiesce — the backend-level heal step between fault retries.
func (b *federationBackend) forceResume() {
	for _, rn := range b.regions {
		_ = b.fed.Region(rn).Exchange().TryResume(true)
	}
}

func (b *federationBackend) SubmitBid(clusterName, team string, bid *core.Bid) (int, error) {
	r := b.fed.Region(b.fed.RegionOf(clusterName))
	if r == nil {
		return 0, fmt.Errorf("scenario: no region owns cluster %q", clusterName)
	}
	// Region-local traffic legitimately enters through the regional book;
	// settlement still goes through SettleRegion so the router gossips.
	o, err := r.Exchange().Submit(team, bid)
	if err != nil {
		return 0, err
	}
	return o.ID, nil
}

func (b *federationBackend) CancelBid(clusterName string, id int) error {
	r := b.fed.Region(b.fed.RegionOf(clusterName))
	if r == nil {
		return fmt.Errorf("scenario: no region owns cluster %q", clusterName)
	}
	return r.Exchange().Cancel(id)
}

func (b *federationBackend) Outcome(id int) (Outcome, error) {
	fo, err := b.fed.Order(id)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Status: fo.Status, Payment: fo.Payment, Region: fo.Region}, nil
}

func (b *federationBackend) Settle(down map[string]bool) error {
	// Regions settle sequentially in registration order — the
	// deterministic counterpart of Federation.Tick's concurrent wave —
	// and dark regions are skipped entirely: their books, clocks, and
	// gossip go silent until the region rejoins. An injected settlement
	// fault fails the round before any state moves, so the retry replays
	// the identical round once the partition window is consumed.
	for _, rn := range b.regions {
		if down[rn] {
			continue
		}
		var err error
		for attempt := 0; attempt <= faultRetries; attempt++ {
			if attempt > 0 {
				_ = b.fed.Region(rn).Exchange().TryResume(true)
			}
			_, err = b.fed.SettleRegion(rn)
			if err == nil || errors.Is(err, market.ErrNoOpenOrders) || errors.Is(err, core.ErrNoConvergence) {
				err = nil
				break
			}
			if !faultRetryable(err) {
				return err
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (b *federationBackend) EpochRecords() []*market.AuctionRecord {
	var out []*market.AuctionRecord
	for _, rn := range b.regions {
		hist := b.fed.Region(rn).Exchange().History()
		out = append(out, hist[b.seen[rn]:]...)
		b.seen[rn] = len(hist)
	}
	return out
}

func (b *federationBackend) Place(id int) {
	fo, err := b.fed.Order(id)
	if err != nil || fo.Status != market.Won {
		return
	}
	r := b.fed.Region(fo.Region)
	if r == nil {
		return
	}
	// Placement goes through the winning leg's regional order, so the
	// region's own journal carries the placement event.
	for _, leg := range fo.Legs {
		if leg.Region != fo.Region || leg.Status != market.Won {
			continue
		}
		tasks, err := r.Exchange().PlaceOrder(leg.OrderID)
		if err != nil {
			return
		}
		for _, pt := range tasks {
			b.placed[fo.Region] = append(b.placed[fo.Region], placedTask{cluster: pt.Cluster, id: pt.TaskID})
		}
		return
	}
}

func (b *federationBackend) EvictFraction(region string, frac float64) {
	r := b.fed.Region(region)
	if r == nil {
		return
	}
	b.placed[region] = evictFraction(r.Exchange().EvictTask, b.placed[region], frac)
}

func (b *federationBackend) Disburse(total float64) error {
	share := total / float64(len(b.regions))
	for _, rn := range b.regions {
		ex := b.fed.Region(rn).Exchange()
		err := ex.Disburse(market.EqualShares, share)
		for attempt := 0; attempt < faultRetries && err != nil && faultRetryable(err); attempt++ {
			_ = ex.TryResume(true)
			err = ex.Disburse(market.EqualShares, share)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (b *federationBackend) ReservePrices(region string) (resource.Vector, error) {
	r := b.fed.Region(region)
	if r == nil {
		return nil, fmt.Errorf("scenario: no region %q", region)
	}
	return r.Exchange().ReservePrices()
}

func (b *federationBackend) MeanCPUPrice(region string) float64 {
	r := b.fed.Region(region)
	if r == nil {
		return 0
	}
	return meanCPUPrice(r.Exchange(), r.Clusters())
}

func (b *federationBackend) OpenOrderCount() int {
	n := 0
	for _, rn := range b.regions {
		n += b.fed.Region(rn).Exchange().OpenOrderCount()
	}
	return n
}

func (b *federationBackend) Check() []invariant.Violation { return invariant.CheckFederation(b.fed) }

// ---------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------

// meanCPUPrice averages the CPU pool prices of the named clusters:
// clearing prices once the exchange has a converged auction, reserve
// prices before.
func meanCPUPrice(ex *market.Exchange, clusters []string) float64 {
	reg := ex.Registry()
	prices := ex.LastClearingPrices()
	if prices == nil {
		var err error
		prices, err = ex.ReservePrices()
		if err != nil {
			return 0
		}
	}
	var sum float64
	n := 0
	for _, cn := range clusters {
		if i, ok := reg.Index(resource.Pool{Cluster: cn, Dim: resource.CPU}); ok {
			sum += prices[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// evictFraction evicts the oldest frac of the placed tasks through the
// owning exchange's journaled eviction op and returns the survivors.
func evictFraction(evict func(clusterName, taskID string) error, placed []placedTask, frac float64) []placedTask {
	if frac <= 0 || len(placed) == 0 {
		return placed
	}
	n := int(frac * float64(len(placed)))
	if n <= 0 {
		n = 1
	}
	if n > len(placed) {
		n = len(placed)
	}
	for _, pt := range placed[:n] {
		// The tracked task can only be missing if the scenario itself is
		// inconsistent; the invariant kernel would flag the fallout.
		_ = evict(pt.cluster, pt.id)
	}
	return append([]placedTask(nil), placed[n:]...)
}
