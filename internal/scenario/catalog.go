package scenario

import (
	"fmt"
	"math"
	"sort"

	"clustermarket/internal/fault"
)

// Catalog returns the named scenarios, sorted by name. Each entry is a
// fresh value: scenarios carry no state, but callers are free to tweak
// the returned copies.
//
// The catalog (see DESIGN.md for the how-to-add guide):
//
//	adaptive-learning — static demand, adaptive premium shading; the
//	    Table I learning curve: median premiums fall epoch over epoch.
//	churn             — a quarter of the bidder population is replaced
//	    every epoch, with periodic budget refresh cycles.
//	crash-recovery    — steady demand with budget refreshes and a
//	    mid-run demand ebb; run with Config.CrashEpoch on a journaled
//	    backend, the kill-and-resurrect run must fingerprint-match the
//	    uninterrupted one.
//	disk-fault        — scripted ENOSPC/EIO/short-write/latency bursts
//	    on the journal mid-run; every burst heals within the bounded
//	    inline retries, so a journaled run must fingerprint-match the
//	    fault-free run bit-identically.
//	diurnal           — sinusoidal demand waves with load ebbing in the
//	    troughs; prices must track the congestion cycle.
//	flash-crowd       — a mid-run burst of demand pinned to the hottest
//	    pool, paying heavy premiums, then subsiding.
//	partition-storm   — transient region partitions: routing calls and
//	    settlement rounds fail then heal, gossip stalls; the healed run
//	    must fingerprint-match the fault-free run.
//	region-outage     — region r2 goes dark mid-run and rejoins; orders
//	    waiting on it settle after the rejoin.
//	trader-storm      — hostile cycling trader pairs drive clock
//	    non-convergence storms mid-run; the livelock guard must retire
//	    the poisoned batches and every invariant must hold throughout.
func Catalog() []*Scenario {
	list := []*Scenario{
		{
			Name:        "diurnal",
			Description: "sinusoidal demand waves; load placed at the peaks ebbs in the troughs",
			Epochs:      10,
			Intensity: func(epoch int) float64 {
				// Period-8 wave between 0.3 and 1.5.
				return 0.9 + 0.6*math.Sin(2*math.Pi*float64(epoch)/8)
			},
			Evict: func(epoch int) float64 {
				// The ebb: drop placed demand while the wave is low.
				if math.Sin(2*math.Pi*float64(epoch)/8) < -0.3 {
					return 0.35
				}
				return 0
			},
		},
		{
			Name:        "flash-crowd",
			Description: "a mid-run burst of demand pinned to the hottest pool, then subsiding",
			Epochs:      9,
			HotFocus: func(epoch int) float64 {
				if epoch >= 3 && epoch <= 5 {
					return 0.8
				}
				return 0.05
			},
		},
		{
			Name:        "churn",
			Description: "bidder churn with budget refresh cycles: a quarter of the population is new every epoch",
			Epochs:      10,
			Churn: func(epoch int) float64 {
				if epoch == 0 {
					return 0
				}
				return 0.25
			},
			BudgetRefresh: func(epoch int) float64 {
				// Refresh every third epoch, as a quota period rollover.
				if epoch > 0 && epoch%3 == 0 {
					return 20000
				}
				return 0
			},
		},
		{
			Name:        "region-outage",
			Description: "region r2 goes dark mid-run and rejoins; waiting orders settle after the rejoin",
			Epochs:      9,
			Down: func(epoch int, regions []string) []string {
				if len(regions) < 2 {
					return nil
				}
				if epoch >= 3 && epoch <= 5 {
					return []string{regions[1]}
				}
				return nil
			},
		},
		{
			Name: "crash-recovery",
			Description: "mid-run power loss on a journaled backend: killed before a settlement wave, " +
				"resurrected from the WAL, and required to continue bit-identically",
			Epochs: 8,
			BudgetRefresh: func(epoch int) float64 {
				if epoch > 0 && epoch%3 == 0 {
					return 15000
				}
				return 0
			},
			Evict: func(epoch int) float64 {
				// An ebb right at the canonical crash epoch, so recovery has
				// to reconstruct placed demand before evicting from it.
				if epoch == 4 {
					return 0.3
				}
				return 0
			},
		},
		{
			Name:        "adaptive-learning",
			Description: "adaptive bidders shade premiums from past results — the Table I learning curve",
			Epochs:      10,
			Adaptive:    true,
		},
		{
			Name: "disk-fault",
			Description: "scripted disk-fault bursts (ENOSPC, EIO, short writes, fsync latency) against every " +
				"journal write site; each burst heals within the bounded inline retries, so the run must " +
				"fingerprint-match the fault-free run",
			Epochs: 8,
			BudgetRefresh: func(epoch int) float64 {
				// A refresh cycle keeps disbursement appends in the line of
				// fire alongside submit and settlement appends.
				if epoch > 0 && epoch%3 == 0 {
					return 15000
				}
				return 0
			},
			Evict: func(epoch int) float64 {
				// A mid-run ebb puts eviction appends under fault too.
				if epoch == 5 {
					return 0.25
				}
				return 0
			},
			// Counts stay ≤3 (under the 1+4 bounded inline append attempts)
			// so every burst heals invisibly — the fingerprint-identity
			// contract this scenario exists to enforce.
			Faults: func(epoch int, regions []string) []fault.Window {
				switch epoch {
				case 2:
					return []fault.Window{{Op: fault.OpDiskWrite, Kind: fault.ENOSPC, Count: 3}}
				case 3:
					return []fault.Window{{Op: fault.OpDiskFsync, Kind: fault.EIO, Count: 2}}
				case 4:
					return []fault.Window{
						{Op: fault.OpDiskWrite, Kind: fault.ShortWrite, Count: 2},
						{Op: fault.OpDiskFsync, Kind: fault.Latency, Count: 3},
					}
				case 5:
					return []fault.Window{
						{Op: fault.OpDiskRename, Kind: fault.EIO, Count: 1},
						{Op: fault.OpDiskWrite, Kind: fault.EIO, Count: 2},
					}
				}
				return nil
			},
		},
		{
			Name: "partition-storm",
			Description: "transient region partitions: routing calls and settlement rounds fail then heal, " +
				"gossip stalls; the healed run must fingerprint-match the fault-free run",
			Epochs: 9,
			// Counts stay ≤2 — under both the backend retry budget and the
			// breaker threshold (3), so scripted partitions heal invisibly
			// and the breaker opens only in chaos runs and unit tests.
			Faults: func(epoch int, regions []string) []fault.Window {
				if len(regions) < 2 {
					return nil
				}
				last := regions[len(regions)-1]
				switch epoch {
				case 2:
					return []fault.Window{{Op: fault.OpRegionOrder, Scope: regions[1], Kind: fault.Unreachable, Count: 2}}
				case 4:
					return []fault.Window{
						{Op: fault.OpRegionSettle, Scope: last, Kind: fault.Unreachable, Count: 2},
						{Op: fault.OpRegionOrder, Scope: regions[0], Kind: fault.Latency, Count: 2},
					}
				case 6:
					return []fault.Window{
						{Op: fault.OpRegionGossip, Scope: regions[1], Kind: fault.Latency, Count: 2},
						{Op: fault.OpRegionSettle, Scope: regions[1], Kind: fault.Unreachable, Count: 1},
					}
				}
				return nil
			},
		},
		{
			Name:        "trader-storm",
			Description: "hostile cycling trader pairs force clock non-convergence storms mid-run",
			Epochs:      10,
			TraderPairs: func(epoch int) int {
				if epoch >= 3 && epoch <= 5 {
					return 1
				}
				return 0
			},
		},
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	return list
}

// Lookup returns the named catalog scenario.
func Lookup(name string) (*Scenario, error) {
	for _, sc := range Catalog() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q", name)
}

// Names lists the catalog scenario names in sorted order.
func Names() []string {
	var out []string
	for _, sc := range Catalog() {
		out = append(out, sc.Name)
	}
	return out
}
