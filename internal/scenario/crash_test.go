package scenario

import "testing"

// TestCrashRecoveryFingerprintMatch is the durability acceptance test:
// on both backends, the crash-recovery scenario must produce the same
// bit-exact fingerprint three ways — in-memory, journaled but
// uninterrupted, and journaled with a mid-run kill-and-resurrect — and
// every run must be invariant-clean. A single ulp of drift anywhere in
// the recovered books (prices, premiums, balances) breaks the hash.
func TestCrashRecoveryFingerprintMatch(t *testing.T) {
	sc, err := Lookup("crash-recovery")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range backendKinds {
		t.Run(kind, func(t *testing.T) {
			run := func(label string, cfg Config) string {
				t.Helper()
				b, err := NewBackend(kind, cfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				defer b.Close()
				rep, err := Run(sc, b, cfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if len(rep.Violations) > 0 {
					t.Fatalf("%s: %d invariant violations; first: %s",
						label, len(rep.Violations), rep.Violations[0])
				}
				return rep.Fingerprint()
			}

			base := Config{Seed: 42}
			fpMem := run("in-memory", base)

			durable := base
			durable.JournalDir = t.TempDir()
			durable.SnapshotEvery = 3
			fpDurable := run("journaled", durable)

			crashed := durable
			crashed.JournalDir = t.TempDir()
			crashed.CrashEpoch = 4
			fpCrashed := run("journaled+crashed", crashed)

			if fpDurable != fpMem {
				t.Errorf("journaling alone changed the trajectory:\nin-memory: %s\njournaled: %s", fpMem, fpDurable)
			}
			if fpCrashed != fpMem {
				t.Errorf("kill-and-resurrect diverged from the uninterrupted run:\nuninterrupted: %s\ncrashed:       %s", fpMem, fpCrashed)
			}
		})
	}
}

// TestCrashEpochRequiresJournal pins the failure mode: a scripted crash
// on a backend with nothing on disk must fail the run loudly, not limp
// on with an empty market.
func TestCrashEpochRequiresJournal(t *testing.T) {
	sc, err := Lookup("crash-recovery")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 7, CrashEpoch: 2}
	b, err := NewBackend("exchange", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := Run(sc, b, cfg); err == nil {
		t.Fatal("CrashEpoch without JournalDir did not fail the run")
	}
}
