// Package analysis is a small, dependency-free static-analysis
// framework in the spirit of golang.org/x/tools/go/analysis, sized to
// what marketlint needs. The container this repo builds in has no
// module proxy, so the framework is implemented on the standard
// library alone: go/ast + go/types for the analyses, `go list -export`
// supplied export data for type-checking, and the `go vet -vettool`
// unit protocol for driving (see vettool.go).
//
// An Analyzer inspects one type-checked package at a time and reports
// diagnostics. Cross-package facts are deliberately out of scope: every
// contract marketlint enforces (map-iteration order, replay purity,
// allocation-free hot paths, lock ordering) is phrased so it can be
// checked package-locally, with annotations carrying intent across
// package boundaries.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, e.g. "maporder".
	Name string
	// Doc is a short description shown by `marketlint -help`.
	Doc string
	// Packages, when non-nil, restricts the analyzer to import paths
	// for which it returns true. The drivers honor it; tests running an
	// analyzer directly bypass it.
	Packages func(importPath string) bool
	// Run performs the analysis, reporting findings via pass.Reportf.
	Run func(*Pass) error
}

// A Pass provides one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
	cmaps map[*ast.File]ast.CommentMap
}

// A Diagnostic is one reported finding, with a resolved position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos. Findings suppressed by a
// `//marketlint:allow <analyzer> <reason>` annotation on the enclosing
// statement or declaration are dropped by the driver, not here — the
// analyzer itself stays suppression-oblivious.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// FileFor returns the *ast.File whose extent contains pos, or nil.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// commentMap returns (building lazily) the comment map for file.
func (p *Pass) commentMap(file *ast.File) ast.CommentMap {
	if p.cmaps == nil {
		p.cmaps = make(map[*ast.File]ast.CommentMap)
	}
	cm, ok := p.cmaps[file]
	if !ok {
		cm = ast.NewCommentMap(p.Fset, file, file.Comments)
		p.cmaps[file] = cm
	}
	return cm
}

// RunAnalyzers executes each analyzer over one loaded package and
// returns the combined findings sorted by position. Findings in
// _test.go files are dropped (test code may range maps, allocate, and
// sleep at will), as are findings suppressed by a marketlint:allow
// annotation. Analyzer package filters are applied against importPath.
func RunAnalyzers(importPath string, analyzers []*Analyzer, fset *token.FileSet,
	files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {

	var all []Diagnostic
	for _, a := range analyzers {
		if a.Packages != nil && !a.Packages(importPath) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		for _, d := range pass.diags {
			if strings.HasSuffix(d.Pos.Filename, "_test.go") {
				continue
			}
			if pass.suppressed(d) {
				continue
			}
			all = append(all, d)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		di, dj := all[i], all[j]
		if di.Pos.Filename != dj.Pos.Filename {
			return di.Pos.Filename < dj.Pos.Filename
		}
		if di.Pos.Line != dj.Pos.Line {
			return di.Pos.Line < dj.Pos.Line
		}
		if di.Pos.Column != dj.Pos.Column {
			return di.Pos.Column < dj.Pos.Column
		}
		return di.Message < dj.Message
	})
	return all, nil
}
