package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"
)

// This file implements the tool side of the `go vet -vettool=...` unit
// protocol (the same contract x/tools' unitchecker fulfils):
//
//   - cmd/go writes a JSON config describing one compiled package unit
//     (files, import map, export-data paths) and invokes the tool with
//     the config path as its sole argument;
//   - the tool type-checks the unit, runs its analyzers, prints
//     findings to stderr, and exits 0 (clean) or 2 (findings);
//   - dependency units arrive with VetxOnly=true — cmd/go only wants
//     cross-package facts from those. marketlint's analyzers are
//     package-local by design, so VetxOnly units return immediately,
//     which keeps `go vet -vettool=marketlint ./...` from re-analyzing
//     the standard library.

// VetConfig mirrors cmd/go's internal vetConfig struct (the JSON unit
// description written next to each compiled package).
type VetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string
	NonGoFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// VetUnit analyzes the unit described by cfgFile and returns the
// process exit code: 0 clean, 1 on driver errors, 2 on findings.
func VetUnit(cfgFile string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "marketlint: %v\n", err)
		return 1
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "marketlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// cmd/go caches the vetx output per unit; writing it (even empty —
	// we compute no facts) marks the unit analyzed.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("marketlint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "marketlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Test-augmented units ("pkg [pkg.test]") re-analyze the package's
	// non-test files, which the base unit already covered, and add only
	// _test.go files, whose findings are dropped by policy. Skip them.
	if strings.Contains(cfg.ID, " [") {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "marketlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, info, err := TypecheckFiles(fset, files, cfg.ImportPath, cfg.GoVersion, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "marketlint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := RunAnalyzers(cfg.ImportPath, analyzers, fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "marketlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
