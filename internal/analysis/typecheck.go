package analysis

import (
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"io"
)

// NewTypesInfo returns a types.Info with every map analyzers consult
// populated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// TypecheckFiles type-checks parsed files as package importPath,
// resolving imports through lookup, which must yield gc export data
// (as produced by the toolchain and located via `go list -export` or a
// vet config's PackageFile map).
func TypecheckFiles(fset *token.FileSet, files []*ast.File, importPath, goVersion string,
	lookup func(path string) (io.ReadCloser, error)) (*types.Package, *types.Info, error) {

	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: goVersion,
		// Keep going past the first error so SucceedOnTypecheckFailure
		// callers see as complete a package as possible.
		Error: func(error) {},
	}
	info := NewTypesInfo()
	pkg, err := conf.Check(importPath, fset, files, info)
	return pkg, info, err
}
