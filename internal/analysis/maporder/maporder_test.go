package maporder_test

import (
	"testing"

	"clustermarket/internal/analysis"
	"clustermarket/internal/analysis/analysistest"
	"clustermarket/internal/analysis/maporder"
)

// The fixture is checked under a determinism-critical import path so
// the analyzer's Packages filter engages exactly as it does in CI.
func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.Dir("maporder"), "clustermarket/internal/sim",
		[]*analysis.Analyzer{maporder.Analyzer})
}
