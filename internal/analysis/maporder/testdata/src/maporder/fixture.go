// Package fixture reproduces the map-order bug classes maporder exists
// to catch — including the three PR 5 fixed by hand — alongside the
// order-free idioms the analyzer must keep accepting.
package fixture

import "sort"

// PR 5 bug class 1 (federation advanceRegion): failover orders were
// gathered by ranging the region map and resubmitted unsorted, so the
// backup exchange booked them in a different order each run.
func failoverOrders(regions map[string][]int) []int {
	var resubmit []int
	for _, orders := range regions { // want "not sorted immediately after the loop"
		resubmit = append(resubmit, orders...)
	}
	return resubmit
}

// The fix: sort the gathered slice before anything reads it.
func failoverOrdersSorted(regions map[string][]int) []int {
	var resubmit []int
	for _, orders := range regions {
		resubmit = append(resubmit, orders...)
	}
	sort.Ints(resubmit)
	return resubmit
}

// PR 5 bug class 2 (sim placeFederatedWin): first-fit placement took
// whichever cluster the map handed over first.
func pickCluster(free map[string]int, need int) string {
	for cl, slots := range free {
		if slots >= need {
			return cl // want "early return of iteration-dependent values"
		}
	}
	return ""
}

// The fix: walk the keys in sorted order.
func pickClusterSorted(free map[string]int, need int) string {
	names := make([]string, 0, len(free))
	for name := range free {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if free[name] >= need {
			return name
		}
	}
	return ""
}

// PR 5 bug class 3 (Migration): float addition order changes the bits,
// which changes scenario fingerprints.
func migrationCost(costs map[string]float64) float64 {
	var total float64
	for _, c := range costs {
		total += c // want "a float accumulator"
	}
	return total
}

// The fix: accumulate over sorted keys.
func migrationCostSorted(costs map[string]float64) float64 {
	keys := make([]string, 0, len(costs))
	for k := range costs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += costs[k]
	}
	return total
}

// Integer counting depends only on the element count: order-free.
func countOpen(status map[int]bool) int {
	n := 0
	for _, open := range status {
		if open {
			n++
		}
	}
	return n
}

// Keyed writes land each element in its own slot: order-free.
func clone(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// m[k] = append(m[k], ...) stays within one key's entry: order-free.
func merge(dst, src map[string][]int) {
	for k, vs := range src {
		dst[k] = append(dst[k], vs...)
	}
}

// min/max folds commute: order-free.
func peak(load map[string]float64) float64 {
	var top float64
	for _, v := range load {
		top = max(top, v)
	}
	return top
}

// Deleting under a pure predicate is order-free.
func prune(m map[string]int, cut int) {
	for k, v := range m {
		if v < cut {
			delete(m, k)
		}
	}
}

// Pure switch dispatch over integer tallies is order-free.
func tally(states map[string]int) (active, idle int) {
	for _, s := range states {
		switch s {
		case 0:
			idle++
		default:
			active++
		}
	}
	return
}

// A pure `v, ok := m[k]`-style if initializer is order-free.
func sumKnown(m map[string]int, known map[string]bool) int {
	total := 0
	for k, v := range m {
		if ok := known[k]; ok {
			total += v
		}
	}
	return total
}

// Iteration-local scratch (even appended to) dies with the iteration;
// only the keyed write escapes.
func buckets(m map[string]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, v := range m {
		pair := make([]int, 0, 2)
		pair = append(pair, v)
		out[k] = pair
	}
	return out
}

type counter struct{ n int }

// A write through a loop-local pointer escapes the iteration, so the
// loop needs an annotation — and carries one, with a reason.
func resetAll(counters map[string]*counter) {
	//marketlint:orderfree each counter is reset exactly once; order is immaterial
	for _, c := range counters {
		c.n = 0
	}
}

// An annotation without a reason is itself a finding.
func bareAnnotation(counters map[string]int) {
	//marketlint:orderfree
	for range counters { // want "needs a reason"
	}
}
