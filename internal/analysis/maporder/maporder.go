// Package maporder flags `range` over a map in determinism-critical
// packages. Go randomizes map iteration order per run, so any map
// range on a path feeding scenario fingerprints, journal replay, or
// the dense≡incremental contract is a latent nondeterminism — the
// exact bug class PR 5 fixed three times by hand (federation failover
// submission order, sim bin-packing placement order, float
// accumulation order in Migration).
//
// A map range is accepted when:
//
//   - the loop is annotated `//marketlint:orderfree <reason>` (the
//     author asserts order-insensitivity and says why), or
//   - the loop body is demonstrably order-insensitive: it only
//     collects keys/values into slices that are sorted immediately
//     after the loop, writes m[k]-keyed entries of another map,
//     deletes, counts with integer accumulators, tracks min/max via
//     the builtins, or assigns into iteration-local variables — all
//     under side-effect-free conditions (pure if/switch guards).
//
// Everything else is reported. Float accumulation (`sum += v` on a
// float) is deliberately NOT order-free: addition order changes the
// bits, which changes fingerprints.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"clustermarket/internal/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      "flag nondeterministic map iteration in determinism-critical packages",
	Packages: analysis.DeterminismCritical,
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkStmtList(pass, n.List)
			case *ast.CaseClause:
				checkStmtList(pass, n.Body)
			case *ast.CommClause:
				checkStmtList(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkStmtList examines one statement list; ranges need their trailing
// statements visible for the collect-then-sort idiom.
func checkStmtList(pass *analysis.Pass, stmts []ast.Stmt) {
	for i, s := range stmts {
		rs, ok := s.(*ast.RangeStmt)
		if !ok || !isMapRange(pass, rs) {
			continue
		}
		if ann := pass.NodeAnnotation(rs, "orderfree"); ann != nil {
			if ann.Args == "" {
				pass.Reportf(rs.For, "//marketlint:orderfree needs a reason")
			}
			continue
		}
		checkMapRange(pass, rs, stmts[i+1:])
	}
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := types.Unalias(tv.Type).Underlying().(*types.Map)
	return isMap
}

// checkMapRange reports rs unless its body is order-insensitive. rest
// holds the statements following the loop in its enclosing block, used
// to verify that collected slices are sorted before any other use.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	key := identObj(pass, rs.Key)
	var collected []ast.Expr // append targets that must be sorted after the loop
	if bad, badPos := orderSensitive(pass, rs.Body.List, key, rs, &collected); bad != "" {
		pass.Reportf(badPos, "map iteration order reaches %s; sort the keys first or annotate the loop //marketlint:orderfree <reason>", bad)
		return
	}
	for _, target := range collected {
		if loopLocal(pass, target, rs) {
			continue // dies with the iteration; nothing escapes
		}
		if !sortedAfter(pass, target, rest) {
			pass.Reportf(rs.For, "slice %s collects map elements in nondeterministic order and is not sorted immediately after the loop; sort it or annotate the loop //marketlint:orderfree <reason>", types.ExprString(target))
			return
		}
	}
}

// orderSensitive scans a loop body; it returns a description and
// position of the first order-sensitive construct, or "" when the body
// is order-insensitive under the package's whitelist.
func orderSensitive(pass *analysis.Pass, stmts []ast.Stmt, key types.Object, loop *ast.RangeStmt, collected *[]ast.Expr) (string, token.Pos) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if d, pos := assignSensitive(pass, s, key, loop, collected); d != "" {
				return d, pos
			}
		case *ast.IncDecStmt:
			// x++ / x-- apply an identical delta per element: the final
			// value depends only on the element count.
		case *ast.ExprStmt:
			if !isDelete(pass, s.X) {
				return "a call with effects", s.Pos()
			}
		case *ast.IfStmt:
			if s.Init != nil && !pureDefine(pass, s.Init) {
				return "an if-statement initializer with effects", s.Init.Pos()
			}
			if !pureExpr(pass, s.Cond) {
				return "an impure if condition", s.Cond.Pos()
			}
			if d, pos := orderSensitive(pass, s.Body.List, key, loop, collected); d != "" {
				return d, pos
			}
			if s.Else != nil {
				var elseStmts []ast.Stmt
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					elseStmts = e.List
				default:
					elseStmts = []ast.Stmt{s.Else}
				}
				if d, pos := orderSensitive(pass, elseStmts, key, loop, collected); d != "" {
					return d, pos
				}
			}
		case *ast.SwitchStmt:
			if s.Init != nil && !pureDefine(pass, s.Init) {
				return "a switch initializer with effects", s.Init.Pos()
			}
			if s.Tag != nil && !pureExpr(pass, s.Tag) {
				return "an impure switch tag", s.Tag.Pos()
			}
			for _, c := range s.Body.List {
				cc, ok := c.(*ast.CaseClause)
				if !ok {
					return "a switch body the order-free whitelist cannot prove commutative", c.Pos()
				}
				for _, e := range cc.List {
					if !pureExpr(pass, e) {
						return "an impure case expression", e.Pos()
					}
				}
				if d, pos := orderSensitive(pass, cc.Body, key, loop, collected); d != "" {
					return d, pos
				}
			}
		case *ast.BlockStmt:
			if d, pos := orderSensitive(pass, s.List, key, loop, collected); d != "" {
				return d, pos
			}
		case *ast.DeclStmt:
			// Local declarations with pure initializers are loop-scoped.
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return "a declaration", s.Pos()
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					return "a declaration", spec.Pos()
				}
				for _, v := range vs.Values {
					if !pureExpr(pass, v) {
						return "an impure local initializer", v.Pos()
					}
				}
			}
		case *ast.BranchStmt:
			if s.Tok == token.CONTINUE {
				continue
			}
			// break/goto: which iteration exits depends on visit order.
			return "an order-dependent " + s.Tok.String(), s.Pos()
		case *ast.ReturnStmt:
			// Early return is an existence check iff the returned values
			// are pure and independent of the iteration element.
			for _, r := range s.Results {
				if !pureExpr(pass, r) || usesObj(pass, r, key) {
					return "an early return of iteration-dependent values", s.Pos()
				}
			}
		case *ast.EmptyStmt:
		default:
			return "a statement the order-free whitelist cannot prove commutative", s.Pos()
		}
	}
	return "", token.NoPos
}

// assignSensitive classifies one assignment inside a map-range body.
func assignSensitive(pass *analysis.Pass, s *ast.AssignStmt, key types.Object, loop *ast.RangeStmt, collected *[]ast.Expr) (string, token.Pos) {
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 && (s.Tok == token.ASSIGN || s.Tok == token.DEFINE) {
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		// x = append(x, ...): collection — deferred to the post-loop
		// sort check (matched textually so st.Board-style selector
		// targets count too).
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "append") &&
			len(call.Args) > 0 && pureExpr(pass, lhs) &&
			types.ExprString(call.Args[0]) == types.ExprString(lhs) {
			for _, a := range call.Args[1:] {
				if !pureExpr(pass, a) {
					return "an impure append operand", a.Pos()
				}
			}
			// m[k] = append(m[k], v): each key owns its entry, so
			// cross-key ordering cannot show.
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && keyed(pass, ix.Index, key) {
				return "", token.NoPos
			}
			*collected = append(*collected, lhs)
			return "", token.NoPos
		}
		// x = max(x, e) / x = min(x, e): commutative fold.
		if id, ok := lhs.(*ast.Ident); ok {
			if call, ok := rhs.(*ast.CallExpr); ok &&
				(isBuiltin(pass, call.Fun, "max") || isBuiltin(pass, call.Fun, "min")) {
				selfRef := false
				for _, a := range call.Args {
					if aid, ok := a.(*ast.Ident); ok && aid.Name == id.Name {
						selfRef = true
					} else if !pureExpr(pass, a) {
						return "an impure min/max operand", a.Pos()
					}
				}
				if selfRef {
					return "", token.NoPos
				}
			}
		}
		// m[k] = v keyed by the iteration key: distinct keys, no
		// last-write-wins races on ordering.
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if keyed(pass, ix.Index, key) && pureExpr(pass, rhs) && pureExpr(pass, ix.X) {
				if _, isMap := types.Unalias(pass.TypesInfo.Types[ix.X].Type).Underlying().(*types.Map); isMap {
					return "", token.NoPos
				}
			}
		}
	}
	// Writes confined to iteration-local variables cannot leak
	// ordering: nothing outside the loop observes them.
	if len(s.Lhs) > 0 && allLoopLocal(pass, s.Lhs, loop) {
		for _, r := range s.Rhs {
			if !effectFree(pass, r, loop) {
				return "an impure right-hand side in an iteration-local write", r.Pos()
			}
		}
		return "", token.NoPos
	}
	// Integer accumulation commutes bit-exactly; float accumulation does not.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			t := pass.TypesInfo.Types[s.Lhs[0]].Type
			if t != nil {
				if b, ok := types.Unalias(t).Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					if pureExpr(pass, s.Rhs[0]) {
						return "", token.NoPos
					}
					return "an impure accumulator operand", s.Rhs[0].Pos()
				}
				if b, ok := types.Unalias(t).Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
					return "a float accumulator (addition order changes the bits)", s.Pos()
				}
			}
		}
	}
	return "an assignment the order-free whitelist cannot prove commutative", s.Pos()
}

// allLoopLocal reports whether every assignment target is confined to
// one iteration of loop.
func allLoopLocal(pass *analysis.Pass, lhs []ast.Expr, loop *ast.RangeStmt) bool {
	for _, e := range lhs {
		if !loopLocal(pass, e, loop) {
			return false
		}
	}
	return true
}

// loopLocal reports whether writing e stays inside one iteration: e is
// an identifier declared within the range statement, or a
// selector/index chain rooted at one whose root is a plain value (a
// write through a loop-local pointer, slice, or map still mutates
// whatever it refers to, which outlives the iteration).
func loopLocal(pass *analysis.Pass, e ast.Expr, loop *ast.RangeStmt) bool {
	through := false
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return true
			}
			obj := identObj(pass, x)
			if obj == nil || obj.Pos() < loop.Pos() || obj.Pos() > loop.End() {
				return false
			}
			if through {
				switch types.Unalias(obj.Type()).Underlying().(type) {
				case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
					return false // reference type: the write escapes the local
				}
			}
			return true
		case *ast.SelectorExpr:
			through = true
			e = x.X
		case *ast.IndexExpr:
			through = true
			e = x.X
		default:
			return false
		}
	}
}

// pureDefine accepts `x, y := <pure>` initializers (the `v, ok := m[k]`
// idiom in if/switch headers).
func pureDefine(pass *analysis.Pass, s ast.Stmt) bool {
	as, ok := s.(*ast.AssignStmt)
	if !ok || as.Tok != token.DEFINE {
		return false
	}
	for _, r := range as.Rhs {
		if !pureExpr(pass, r) {
			return false
		}
	}
	return true
}

// effectFree is pureExpr extended with the allocating builtins — make,
// new, and append whose destination cannot alias memory from outside
// the loop (a fresh non-variable value, or a loop-local slice).
func effectFree(pass *analysis.Pass, e ast.Expr, loop *ast.RangeStmt) bool {
	if pureExpr(pass, e) {
		return true
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch {
	case isBuiltin(pass, call.Fun, "make"), isBuiltin(pass, call.Fun, "new"):
	case isBuiltin(pass, call.Fun, "append"):
		if len(call.Args) == 0 {
			return false
		}
		// Appending into a slice rooted outside the loop can write
		// through shared backing memory when capacity is spare.
		if rootedOutside(pass, call.Args[0], loop) {
			return false
		}
	default:
		return false
	}
	for _, a := range call.Args {
		if !effectFree(pass, a, loop) {
			return false
		}
	}
	return true
}

// rootedOutside reports whether e is a variable chain whose root is
// declared outside the loop. Fresh values (literals, conversions, make
// results) report false.
func rootedOutside(pass *analysis.Pass, e ast.Expr, loop *ast.RangeStmt) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := identObj(pass, x)
			if obj == nil {
				return false // builtin (nil) or unresolved: not a variable
			}
			_, isVar := obj.(*types.Var)
			return isVar && (obj.Pos() < loop.Pos() || obj.Pos() > loop.End())
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return false
		}
	}
}

// sortedAfter reports whether target's first use after the loop is a
// recognized sort call. Matching is textual (types.ExprString) so
// selector targets like st.Board participate.
func sortedAfter(pass *analysis.Pass, target ast.Expr, rest []ast.Stmt) bool {
	want := types.ExprString(target)
	for _, s := range rest {
		if !mentionsExpr(s, want) {
			continue
		}
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		return ok && isSortCall(pass, call, want)
	}
	return false
}

// mentionsExpr reports whether any expression under n prints as want.
func mentionsExpr(n ast.Node, want string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if e, ok := m.(ast.Expr); ok && types.ExprString(e) == want {
			found = true
		}
		return !found
	})
	return found
}

// isSortCall recognizes sort.* and slices.Sort* applied to the target
// expression as the first argument.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr, want string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok {
		return false
	}
	switch pn.Imported().Path() {
	case "sort":
		switch sel.Sel.Name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
		default:
			return false
		}
	case "slices":
		if !strings.HasPrefix(sel.Sel.Name, "Sort") {
			return false
		}
	default:
		return false
	}
	return types.ExprString(call.Args[0]) == want
}

// pureExpr reports whether e is side-effect free and call-free (len,
// cap, min, max, and conversions excepted).
func pureExpr(pass *analysis.Pass, e ast.Expr) bool {
	if e == nil {
		return true
	}
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if isBuiltin(pass, n.Fun, "len") || isBuiltin(pass, n.Fun, "cap") ||
				isBuiltin(pass, n.Fun, "min") || isBuiltin(pass, n.Fun, "max") {
				return true
			}
			pure = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pure = false
				return false
			}
		case *ast.FuncLit:
			return false // opaque but inert as a value
		}
		return true
	})
	return pure
}

func isDelete(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	return ok && isBuiltin(pass, call.Fun, "delete")
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// keyed reports whether index is exactly the range key variable.
func keyed(pass *analysis.Pass, index ast.Expr, key types.Object) bool {
	if key == nil {
		return false
	}
	id, ok := index.(*ast.Ident)
	return ok && identObj(pass, id) == key
}

func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Uses[id]
}

// usesObj reports whether any identifier under n resolves to obj.
func usesObj(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && identObj(pass, id) == obj {
			found = true
		}
		return !found
	})
	return found
}
