package allocfree_test

import (
	"testing"

	"clustermarket/internal/analysis"
	"clustermarket/internal/analysis/allocfree"
	"clustermarket/internal/analysis/analysistest"
)

func TestAllocfree(t *testing.T) {
	analysistest.Run(t, analysistest.Dir("allocfree"), "clustermarket/internal/core",
		[]*analysis.Analyzer{allocfree.Analyzer})
}
