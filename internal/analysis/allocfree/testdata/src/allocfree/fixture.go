// Package fixture exercises every allocating construct allocfree
// flags, the amortized-growth idioms it must keep accepting, and
// annotation propagation through interface methods.
package fixture

import (
	"fmt"
	"sync/atomic"
)

type gauge struct {
	n     atomic.Int64
	items []int
}

// Atomics and growth under a len/cap guard are the blessed idioms.
//
//marketlint:allocfree
func (g *gauge) bump(v int) {
	g.n.Add(1)
	if len(g.items) < cap(g.items) {
		g.items = append(g.items, v)
	}
}

// fmt boxes and allocates its argument pack.
//
//marketlint:allocfree
func report(region string) string {
	msg := fmt.Sprintf("region %s", region) // want "calls fmt.Sprintf" "boxes a string"
	msg += region                           // want "concatenates strings"
	return msg
}

// Unguarded growth: both the make and the growing append are findings.
//
//marketlint:allocfree
func gather(n int) []int {
	out := make([]int, 0, n) // want "calls make outside a len/cap growth guard"
	for i := 0; i < n; i++ {
		out = append(out, i) // want "append may grow its backing array"
	}
	return out
}

// Caller-owned scratch growth (the settle idiom): `dst` is rooted in a
// parameter, so growth lands in the caller's amortized buffer.
//
//marketlint:allocfree
func push(dst []int, v int) []int {
	dst = append(dst, v)
	return dst
}

func helper(x int) int { return x * 2 }

// Same-package callees must carry the annotation themselves.
//
//marketlint:allocfree
func fused(x int) int {
	return helper(x) // want "calls helper, which is not"
}

//marketlint:allocfree
func double(x int) int { return x + x }

// Annotated callees chain without findings.
//
//marketlint:allocfree
func quadruple(x int) int {
	return double(double(x))
}

func flush() {}

//marketlint:allocfree
func accumulate(vals []int) int {
	total := 0
	add := func(v int) { total += v } // want "a closure captures total"
	for _, v := range vals {
		add(v) // want "calls through a function value"
	}
	go flush() // want "spawns a goroutine"
	return total
}

//marketlint:allocfree
func stash(id int64) {
	var v any
	v = id // want "boxes a int64 into an interface"
	_ = v
}

//marketlint:allocfree
func raw(s string) []byte {
	return []byte(s) // want "converts between string and byte/rune slice"
}

//marketlint:allocfree
func index(region string, id int) map[string]int {
	return map[string]int{region: id} // want "builds a map literal"
}

// A deliberate one-time allocation rides on an allow annotation.
//
//marketlint:allocfree
func grow(n int) []int {
	//marketlint:allow allocfree one-time scratch build, amortized across calls
	buf := make([]int, n)
	return buf
}

// stepPolicy mirrors the core IncrementPolicy contract: annotating the
// interface method binds every same-package implementation.
type stepPolicy interface {
	// StepInto advances the bid one round.
	//
	//marketlint:allocfree
	StepInto(x int) int
}

type additive struct{ delta int }

func (a additive) StepInto(x int) int { return x + a.delta }

type logging struct{ last string }

func (l *logging) StepInto(x int) int {
	l.last = fmt.Sprint(x) // want "calls fmt.Sprint" "boxes a int"
	return x
}

// Unannotated functions may allocate freely.
func coldPath(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("item %d", i))
	}
	return out
}

var _ = []any{gauge{}, stepPolicy(nil), additive{}, (*logging)(nil),
	report, gather, push, fused, quadruple, accumulate, stash, raw, index, grow, coldPath}
