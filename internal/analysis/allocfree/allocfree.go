// Package allocfree turns the repo's benchmark-pinned zero-allocation
// claims (TestSteadyStateRoundsAllocationFree, the firehose
// no-subscriber fast path, the O(1) budget check+commit) into a
// compile-time gate. A function annotated `//marketlint:allocfree` in
// its doc comment — or an interface method so annotated, which binds
// every implementation — must not contain:
//
//   - fmt.* calls (the argument pack boxes and escapes);
//   - append that may grow, or make/new/map/slice literals, outside an
//     amortized-growth guard (an if whose condition consults len/cap);
//   - interface boxing of non-pointer values (conversions, arguments
//     to interface parameters, interface assignments and returns);
//   - closures that capture variables, and go statements;
//   - string concatenation or string<->[]byte/[]rune conversions;
//   - calls to functions the analyzer cannot vouch for: same-package
//     callees must themselves be annotated allocfree; cross-package
//     calls are restricted to an allowlist (math, sync/atomic, the
//     resource vector kernel, ...).
//
// Escape analysis is out of scope: stack-allocatable constructs
// (struct literals, &T{} that does not escape) are deliberately not
// flagged — the runtime allocation tests remain the ground truth for
// escapes, while this analyzer pins the constructs that always (or
// almost always) hit the heap. Deliberate exceptions carry
// `//marketlint:allow allocfree <reason>`.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"clustermarket/internal/analysis"
)

// Analyzer is the allocfree check.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "functions annotated //marketlint:allocfree must contain no allocating constructs",
	Run:  run,
}

// allowedPackages are cross-package callees vouched alloc-free in
// their entirety (value-kernel math, lock/atomic primitives).
var allowedPackages = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync":        true,
	"sync/atomic": true,
}

// deniedInAllowed lists per-package exceptions to allowedPackages and
// to the resource vector kernel: methods that allocate by contract.
var deniedMethods = map[string]bool{
	"Clone": true,
}

// resourcePkg is the repo's vector kernel: every method mutates in
// place or reduces to a scalar, except the explicit Clone constructor.
const resourcePkg = "clustermarket/internal/resource"

// vouchedFuncs lists individual cross-package callees vouched
// alloc-free where a package-wide allowlist would be far too broad.
// Annotations don't travel through export data, so hot paths calling
// across package lines register their callees here.
var vouchedFuncs = map[string]bool{
	"clustermarket/internal/core.MaxLimit": true, // pure fold over BundleLimits
	"clustermarket/internal/core.LimitFor": true, // slice index or scalar field read
}

func run(pass *analysis.Pass) error {
	annotated := annotatedFuncs(pass)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.FuncAnnotation(fd, "allocfree") == nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); !ok || !annotated[obj] {
					continue
				}
			}
			c := &checker{pass: pass, annotated: annotated, fn: fd.Name.Name, decl: fd,
				vouched: map[*ast.CallExpr]bool{}}
			c.stmts(fd.Body.List, false)
		}
	}
	return nil
}

// annotatedFuncs collects the *types.Func objects carrying an
// allocfree annotation: package-level functions and methods (via their
// doc comments) and interface methods (via the method field's doc —
// annotating an interface method binds every same-package
// implementation and blesses calls through the interface).
func annotatedFuncs(pass *analysis.Pass) map[*types.Func]bool {
	ann := map[*types.Func]bool{}
	var ifaceMethods []*types.Func
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if pass.FuncAnnotation(n, "allocfree") != nil {
					if obj, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
						ann[obj] = true
					}
				}
				return false
			case *ast.InterfaceType:
				for _, f := range n.Methods.List {
					if len(f.Names) == 0 {
						continue
					}
					for _, a := range parseFieldAnnotations(f) {
						if a != "allocfree" {
							continue
						}
						for _, name := range f.Names {
							if obj, ok := pass.TypesInfo.Defs[name].(*types.Func); ok {
								ann[obj] = true
								ifaceMethods = append(ifaceMethods, obj)
							}
						}
					}
				}
			}
			return true
		})
	}
	// An annotated interface method obligates every same-package
	// implementation: mark each concrete method with a matching name
	// whose receiver type implements the interface.
	for _, im := range ifaceMethods {
		sig, ok := im.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		scope := pass.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			for _, typ := range []types.Type{t, types.NewPointer(t)} {
				if !types.Implements(typ, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(typ, true, pass.Pkg, im.Name())
				if m, ok := obj.(*types.Func); ok {
					ann[m] = true
				}
			}
		}
	}
	return ann
}

// parseFieldAnnotations extracts marketlint annotation names from an
// interface method field's doc or line comment.
func parseFieldAnnotations(f *ast.Field) []string {
	var names []string
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, analysis.AnnotationPrefix); ok {
				name, _, _ := strings.Cut(rest, " ")
				names = append(names, name)
			}
		}
	}
	return names
}

type checker struct {
	pass      *analysis.Pass
	annotated map[*types.Func]bool
	fn        string
	decl      *ast.FuncDecl
	// vouched marks append calls recognized as caller-owned scratch
	// growth (see scratchAppend).
	vouched map[*ast.CallExpr]bool
}

// stmts walks a statement list; guarded tracks whether execution is
// inside an amortized-growth guard (an if conditioned on len/cap).
func (c *checker) stmts(list []ast.Stmt, guarded bool) {
	for _, s := range list {
		c.stmt(s, guarded)
	}
}

func (c *checker) stmt(s ast.Stmt, guarded bool) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, guarded)
		}
		c.expr(s.Cond, guarded)
		g := guarded || mentionsLenCap(c.pass, s.Cond)
		c.stmts(s.Body.List, g)
		if s.Else != nil {
			c.stmt(s.Else, g)
		}
	case *ast.BlockStmt:
		c.stmts(s.List, guarded)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, guarded)
		}
		c.expr(s.Cond, guarded)
		if s.Post != nil {
			c.stmt(s.Post, guarded)
		}
		c.stmts(s.Body.List, guarded)
	case *ast.RangeStmt:
		c.expr(s.X, guarded)
		c.stmts(s.Body.List, guarded)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, guarded)
		}
		c.expr(s.Tag, guarded)
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					c.expr(e, guarded)
				}
				c.stmts(cc.Body, guarded)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, guarded)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cc.Body, guarded)
			}
		}
	case *ast.GoStmt:
		c.pass.Reportf(s.Pos(), "%s is annotated allocfree but spawns a goroutine", c.fn)
	case *ast.DeferStmt:
		// Open-coded defers are allocation-free since Go 1.14; check
		// the deferred call's own constructs only.
		c.expr(s.Call, guarded)
	case *ast.AssignStmt:
		c.assign(s, guarded)
	case *ast.ReturnStmt:
		c.returns(s, guarded)
	case *ast.ExprStmt:
		c.expr(s.X, guarded)
	case *ast.SendStmt:
		c.expr(s.Chan, guarded)
		c.expr(s.Value, guarded)
		c.boxing(s.Value, chanElem(c.pass, s.Chan), guarded)
	case *ast.IncDecStmt:
		c.expr(s.X, guarded)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, guarded)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, guarded)
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				if cc.Comm != nil {
					c.stmt(cc.Comm, guarded)
				}
				c.stmts(cc.Body, guarded)
			}
		}
	}
}

func (c *checker) assign(s *ast.AssignStmt, guarded bool) {
	c.markScratchAppend(s)
	for _, rhs := range s.Rhs {
		c.expr(rhs, guarded)
	}
	for _, lhs := range s.Lhs {
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			c.expr(ix, guarded)
		}
	}
	if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 && isString(c.pass, s.Lhs[0]) {
		c.pass.Reportf(s.Pos(), "%s is annotated allocfree but concatenates strings", c.fn)
	}
	// Interface assignment boxing: x (interface) = y (concrete non-pointer).
	if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
		for i, lhs := range s.Lhs {
			if i >= len(s.Rhs) {
				break
			}
			if t := c.pass.TypesInfo.Types[lhs].Type; t != nil {
				c.boxing(s.Rhs[i], t, guarded)
			}
		}
	}
}

func (c *checker) returns(s *ast.ReturnStmt, guarded bool) {
	for _, r := range s.Results {
		c.expr(r, guarded)
	}
	// Boxing into interface-typed results is caught via the expression
	// type recorded for the return operand (types.Info records the
	// value's own type, so compare against the enclosing signature).
	// The signature is not tracked here; conversions and call-site
	// boxing cover the common cases.
}

// expr walks one expression tree.
func (c *checker) expr(e ast.Expr, guarded bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.call(n, guarded)
		case *ast.FuncLit:
			c.funcLit(n)
			return false
		case *ast.CompositeLit:
			c.composite(n, guarded)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(c.pass, n) {
				c.pass.Reportf(n.Pos(), "%s is annotated allocfree but concatenates strings", c.fn)
			}
		}
		return true
	})
}

func (c *checker) call(call *ast.CallExpr, guarded bool) {
	// Type conversions.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := c.pass.TypesInfo.Types[call.Args[0]].Type
			if stringBytesConversion(from, to) {
				c.pass.Reportf(call.Pos(), "%s is annotated allocfree but converts between string and byte/rune slice", c.fn)
			}
			c.boxing(call.Args[0], to, guarded)
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				if !guarded && !c.vouched[call] {
					c.pass.Reportf(call.Pos(), "%s is annotated allocfree but this append may grow its backing array; grow scratch under a len/cap guard instead", c.fn)
				}
			case "make", "new":
				if !guarded {
					c.pass.Reportf(call.Pos(), "%s is annotated allocfree but calls %s outside a len/cap growth guard", c.fn, id.Name)
				}
			}
			return
		}
	}

	c.callee(call)
	c.callBoxing(call, guarded)
}

// markScratchAppend recognizes `s = append(s, ...)` where s is rooted
// in a parameter or the receiver: growth then lands in the caller's
// amortized scratch (reset-and-reuse across runs), not a fresh
// allocation per call — the settle/markStalePool idiom. The matched
// call is vouched; its operand expressions are still checked.
func (c *checker) markScratchAppend(s *ast.AssignStmt) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 || (s.Tok != token.ASSIGN && s.Tok != token.DEFINE) {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	if types.ExprString(call.Args[0]) != types.ExprString(s.Lhs[0]) {
		return
	}
	if c.paramRooted(s.Lhs[0]) {
		c.vouched[call] = true
	}
}

// paramRooted reports whether e is a selector/index chain rooted at one
// of the enclosing function's parameters or its receiver.
func (c *checker) paramRooted(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj, ok := c.pass.TypesInfo.Uses[x].(*types.Var)
			if !ok {
				return false
			}
			return c.decl != nil && obj.Pos() >= c.decl.Pos() && obj.Pos() < c.decl.Body.Pos()
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return false
		}
	}
}

// callee vets who is being called.
func (c *checker) callee(call *ast.CallExpr) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[fun.Sel]
	default:
		c.pass.Reportf(call.Pos(), "%s is annotated allocfree but calls through a function value the analyzer cannot vouch for", c.fn)
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		// Calling a function-typed variable or field.
		c.pass.Reportf(call.Pos(), "%s is annotated allocfree but calls through a function value the analyzer cannot vouch for", c.fn)
		return
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return // builtin-ish (error.Error, unsafe)
	}
	switch {
	case pkg.Path() == "fmt":
		c.pass.Reportf(call.Pos(), "%s is annotated allocfree but calls fmt.%s, which allocates its argument pack", c.fn, fn.Name())
	case pkg == c.pass.Pkg:
		if !c.annotated[fn] {
			c.pass.Reportf(call.Pos(), "%s is annotated allocfree but calls %s, which is not; annotate %s //marketlint:allocfree or restructure", c.fn, fn.Name(), fn.Name())
		}
	case pkg.Path() == resourcePkg:
		if deniedMethods[fn.Name()] {
			c.pass.Reportf(call.Pos(), "%s is annotated allocfree but calls %s.%s, which allocates by contract", c.fn, pkg.Name(), fn.Name())
		}
	case allowedPackages[pkg.Path()]:
		// vouched
	case vouchedFuncs[pkg.Path()+"."+fn.Name()]:
		// individually vouched
	default:
		c.pass.Reportf(call.Pos(), "%s is annotated allocfree but calls %s.%s, which the analyzer cannot vouch for", c.fn, pkg.Name(), fn.Name())
	}
}

// callBoxing flags concrete non-pointer arguments passed to interface
// parameters (the convT family allocates).
func (c *checker) callBoxing(call *ast.CallExpr, guarded bool) {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := types.Unalias(tv.Type).Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			c.boxing(arg, pt, guarded)
		}
	}
}

// boxing reports when expr, of concrete non-pointer-shaped type, is
// converted to an interface target type.
func (c *checker) boxing(expr ast.Expr, target types.Type, guarded bool) {
	if target == nil || !types.IsInterface(types.Unalias(target).Underlying()) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() {
		return
	}
	from := types.Unalias(tv.Type)
	if types.IsInterface(from.Underlying()) {
		return
	}
	if pointerShaped(from) {
		return
	}
	c.pass.Reportf(expr.Pos(), "%s is annotated allocfree but boxes a %s into an interface", c.fn, from)
}

// pointerShaped reports whether values of t fit an interface word
// without allocating.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

// funcLit flags closures that capture variables.
func (c *checker) funcLit(fl *ast.FuncLit) {
	captured := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || captured[v] {
			return true
		}
		// Captured: a variable declared outside the literal but not at
		// package level (globals are addressed directly, not captured).
		if v.Parent() == c.pass.Pkg.Scope() {
			return true
		}
		if v.Pos() < fl.Pos() || v.Pos() > fl.End() {
			captured[v] = true
			c.pass.Reportf(id.Pos(), "%s is annotated allocfree but a closure captures %s (the capture escapes to the heap)", c.fn, v.Name())
		}
		return true
	})
}

// composite flags map and slice literals (always heap-backed when they
// escape the frame — and the gate errs toward the explicit classes).
func (c *checker) composite(cl *ast.CompositeLit, guarded bool) {
	tv, ok := c.pass.TypesInfo.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	switch types.Unalias(tv.Type).Underlying().(type) {
	case *types.Map:
		c.pass.Reportf(cl.Pos(), "%s is annotated allocfree but builds a map literal", c.fn)
	case *types.Slice:
		if !guarded {
			c.pass.Reportf(cl.Pos(), "%s is annotated allocfree but builds a slice literal outside a growth guard", c.fn)
		}
	}
}

// mentionsLenCap reports whether cond consults len or cap — the shape
// of an amortized-growth guard.
func mentionsLenCap(pass *analysis.Pass, cond ast.Expr) bool {
	if cond == nil {
		return false
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func stringBytesConversion(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	return (isStringType(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isStringType(to))
}

func isStringType(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func chanElem(pass *analysis.Pass, ch ast.Expr) types.Type {
	t := pass.TypesInfo.Types[ch].Type
	if t == nil {
		return nil
	}
	if c, ok := types.Unalias(t).Underlying().(*types.Chan); ok {
		return c.Elem()
	}
	return nil
}
