// Package analysistest is the golden-test driver for marketlint
// analyzers: it parses and type-checks a fixture package under
// testdata/src, runs the analyzers over it, and compares every
// diagnostic against the fixture's `// want "regexp"` comments.
//
// Expectation grammar: a line comment anywhere on the offending line
// of the form
//
//	// want "first regexp" "second regexp"
//
// declares that the analyzers must report at least one diagnostic on
// that line matching each regexp. Diagnostics on lines with no want
// comment — and want regexps matched by no diagnostic — fail the test.
//
// Fixtures import only the standard library, so type-checking uses the
// source importer and needs no export data or network.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"clustermarket/internal/analysis"
)

// wantRE extracts the quoted regexps of a want comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one want regexp anchored to a fixture line.
type expectation struct {
	file    string // base name
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run analyzes the fixture package in dir as importPath and enforces
// its want comments. importPath matters: analyzers with a Packages
// filter (maporder, replaypure) only fire when it matches a
// determinism-critical path, so fixtures pass a real repo path.
func Run(t *testing.T, dir, importPath string, analyzers []*analysis.Analyzer) {
	t.Helper()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	var tcErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { tcErrs = append(tcErrs, err) },
	}
	info := analysis.NewTypesInfo()
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("fixture does not type-check: %v (all: %v)", err, tcErrs)
	}

	diags, err := analysis.RunAnalyzers(importPath, analyzers, fset, files, pkg, info)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	wants := collectWants(t, fset, files)

	// Set-match per line: every diagnostic needs a matching want on its
	// line; every want needs a matching diagnostic.
	for _, d := range diags {
		file, line := filepath.Base(d.Pos.Filename), d.Pos.Line
		hit := false
		for i := range wants {
			w := &wants[i]
			if w.file == file && w.line == line && w.re.MatchString(d.Message) {
				w.matched = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s", file, line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// collectWants parses the want comments of every fixture file.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []expectation {
	t.Helper()
	var wants []expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					// Unquote first so fixtures write Go-escaped regexps
					// ("\\(" means a literal paren).
					pat, err := strconv.Unquote(m[0])
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, m[0], err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
					})
				}
			}
		}
	}
	return wants
}

// Dir returns the conventional fixture directory testdata/src/<name>.
func Dir(name string) string {
	return filepath.Join("testdata", "src", name)
}
