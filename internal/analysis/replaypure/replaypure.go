// Package replaypure enforces PR 6's replay ≡ live contract on the
// event-apply layer. Recovery replays the journal through applyEvent;
// any wall-clock read, randomness, channel receive, goroutine spawn,
// or write to package-level state inside the apply layer would make a
// replayed exchange diverge from the live one that wrote the journal.
//
// The analyzer roots at every function named "applyEvent" in the
// package, walks the intra-package static call graph (direct calls to
// package-level functions and methods), and checks each reachable
// function for:
//
//   - calls into nondeterministic stdlib: time.Now/Since/Until/After/
//     Tick/NewTimer/NewTicker/Sleep, anything in math/rand or
//     math/rand/v2, anything in os or crypto/rand;
//   - channel receives (<-ch, range over a channel, select);
//   - go statements (scheduling nondeterminism);
//   - assignments through package-level variables (state outside the
//     exchange/region receiver).
//
// Cross-package calls into other clustermarket packages are outside
// this net by design; the contracts those must uphold (deterministic
// placement, pure vector math) are enforced by their own tests and by
// maporder/allocfree where annotated.
package replaypure

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"clustermarket/internal/analysis"
)

// Analyzer is the replaypure check.
var Analyzer = &analysis.Analyzer{
	Name:     "replaypure",
	Doc:      "the event-apply layer must stay deterministic: no clocks, randomness, channel receives, or global writes",
	Packages: analysis.DeterminismCritical,
	Run:      run,
}

// deniedTimeFuncs are the wall-clock and timer entry points of package
// time; pure constructors/formatters (time.Duration math, Unix, Date)
// stay legal.
var deniedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true, "Sleep": true,
}

func run(pass *analysis.Pass) error {
	decls := map[types.Object]*ast.FuncDecl{}
	var roots []types.Object
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			decls[obj] = fd
			if fd.Name.Name == "applyEvent" {
				roots = append(roots, obj)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Breadth-first reachability over direct intra-package calls.
	reachable := map[types.Object]bool{}
	queue := append([]types.Object(nil), roots...)
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		if reachable[obj] {
			continue
		}
		reachable[obj] = true
		fd := decls[obj]
		if fd == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeObj(pass, call); callee != nil {
				if _, local := decls[callee]; local && !reachable[callee] {
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	for obj, fd := range decls {
		if reachable[obj] {
			checkFunc(pass, fd)
		}
	}
	return nil
}

// calleeObj resolves a call expression to the called function object,
// for direct calls and method calls.
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	where := func() string {
		return fmt.Sprintf("%s, reachable from applyEvent,", fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pkg, name := calleePackage(pass, n); pkg != "" {
				switch {
				case pkg == "time" && deniedTimeFuncs[name]:
					pass.Reportf(n.Pos(), "%s reads the wall clock (time.%s); replay would diverge from the live run", where(), name)
				case pkg == "math/rand" || pkg == "math/rand/v2" || pkg == "crypto/rand":
					pass.Reportf(n.Pos(), "%s draws randomness (%s.%s); replay would diverge from the live run", where(), pkg, name)
				case pkg == "os":
					pass.Reportf(n.Pos(), "%s touches the environment (os.%s); replay would diverge from the live run", where(), name)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "%s receives from a channel; replay timing would diverge from the live run", where())
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "%s selects over channels; replay timing would diverge from the live run", where())
			return false
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := types.Unalias(tv.Type).Underlying().(*types.Chan); isChan {
					pass.Reportf(n.Pos(), "%s ranges over a channel; replay timing would diverge from the live run", where())
				}
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s spawns a goroutine; replay scheduling would diverge from the live run", where())
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj := rootObj(pass, lhs); obj != nil && isPackageLevelVar(pass, obj) {
					pass.Reportf(lhs.Pos(), "%s writes package-level state (%s); apply-layer mutations must stay inside the receiver", where(), obj.Name())
				}
			}
		case *ast.IncDecStmt:
			if obj := rootObj(pass, n.X); obj != nil && isPackageLevelVar(pass, obj) {
				pass.Reportf(n.Pos(), "%s writes package-level state (%s); apply-layer mutations must stay inside the receiver", where(), obj.Name())
			}
		}
		return true
	})
}

// calleePackage returns the defining package path and name of a called
// package-level function, or "" for local/builtin/method calls.
func calleePackage(pass *analysis.Pass, call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", ""
	}
	if _, ok := obj.(*types.Func); !ok {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

// rootObj returns the object at the base of a selector/index chain:
// for a.b.c[i].d it resolves a.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			if o := pass.TypesInfo.Uses[x]; o != nil {
				return o
			}
			return pass.TypesInfo.Defs[x]
		default:
			return nil
		}
	}
}

// isPackageLevelVar reports whether obj is a variable declared at
// package scope in the package under analysis.
func isPackageLevelVar(pass *analysis.Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pkg() == pass.Pkg && v.Parent() == pass.Pkg.Scope()
}
