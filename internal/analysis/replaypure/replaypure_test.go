package replaypure_test

import (
	"testing"

	"clustermarket/internal/analysis"
	"clustermarket/internal/analysis/analysistest"
	"clustermarket/internal/analysis/replaypure"
)

// The fixture is checked under a determinism-critical import path so
// the analyzer's Packages filter engages exactly as it does in CI.
func TestReplaypure(t *testing.T) {
	analysistest.Run(t, analysistest.Dir("replaypure"), "clustermarket/internal/market",
		[]*analysis.Analyzer{replaypure.Analyzer})
}
