// Package fixture models an event-apply layer with every impurity
// replaypure polices, plus an unreachable helper the analyzer must
// leave alone.
package fixture

import (
	"math/rand"
	"os"
	"time"
)

type event struct {
	kind string
	team string
}

type exchange struct {
	balances map[string]float64
	clock    chan time.Time
}

var applied int // package-level state the apply layer must not touch

func (e *exchange) applyEvent(ev *event) error {
	switch ev.kind {
	case "credit":
		e.applyCredit(ev)
	case "stamp":
		e.stampNow(ev)
	case "jitter":
		e.jitter(ev)
	case "wait":
		e.waitForTick()
	}
	return nil
}

func (e *exchange) applyCredit(ev *event) {
	e.balances[ev.team] += 1
	applied++ // want "writes package-level state \\(applied\\)"
}

func (e *exchange) stampNow(ev *event) {
	_ = time.Now()  // want "reads the wall clock \\(time.Now\\)"
	_ = os.Getpid() // want "touches the environment \\(os.Getpid\\)"
}

func (e *exchange) jitter(ev *event) {
	_ = rand.Float64() // want "draws randomness \\(math/rand.Float64\\)"
	go func() {}()     // want "spawns a goroutine"
}

func (e *exchange) waitForTick() {
	<-e.clock // want "receives from a channel"
	select {  // want "selects over channels"
	case <-e.clock:
	default:
	}
}

// liveRefresh is NOT reachable from applyEvent: the live path may read
// the clock freely.
func (e *exchange) liveRefresh() time.Time {
	return time.Now()
}
