package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The annotation grammar (documented in DESIGN.md, "Static analysis &
// contracts"):
//
//	//marketlint:orderfree <reason>   — this map-range loop is
//	    order-insensitive; maporder trusts the author's reason.
//	//marketlint:allocfree            — this function is a pinned
//	    zero-allocation hot path; allocfree checks its body.
//	//marketlint:allow <analyzer> <reason> — suppress one analyzer's
//	    findings within the annotated statement or declaration.
//
// Annotations are ordinary line comments beginning exactly with
// "//marketlint:" (no space, mirroring //go:build), placed in a
// function's doc comment or on/above the statement they govern.

// AnnotationPrefix is the comment prefix all marketlint annotations share.
const AnnotationPrefix = "//marketlint:"

// An Annotation is one parsed //marketlint: directive.
type Annotation struct {
	Name string // e.g. "orderfree", "allocfree", "allow"
	Args string // remainder of the line, trimmed; the reason text
	Pos  token.Pos
}

// parseAnnotations extracts marketlint directives from a comment group.
func parseAnnotations(cg *ast.CommentGroup) []Annotation {
	if cg == nil {
		return nil
	}
	var anns []Annotation
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, AnnotationPrefix)
		if !ok {
			continue
		}
		name, args, _ := strings.Cut(rest, " ")
		anns = append(anns, Annotation{
			Name: strings.TrimSpace(name),
			Args: strings.TrimSpace(args),
			Pos:  c.Pos(),
		})
	}
	return anns
}

// FuncAnnotation returns the named annotation from fn's doc comment.
func (p *Pass) FuncAnnotation(fn *ast.FuncDecl, name string) *Annotation {
	for _, a := range parseAnnotations(fn.Doc) {
		if a.Name == name {
			return &a
		}
	}
	return nil
}

// NodeAnnotation returns the named annotation attached to node: a
// marketlint comment on its own line directly above the node or
// trailing on the node's final line (the ast.CommentMap association
// rules), or in the doc comment when node is a declaration.
func (p *Pass) NodeAnnotation(node ast.Node, name string) *Annotation {
	if fd, ok := node.(*ast.FuncDecl); ok {
		if a := p.FuncAnnotation(fd, name); a != nil {
			return a
		}
	}
	file := p.FileFor(node.Pos())
	if file == nil {
		return nil
	}
	for _, cg := range p.commentMap(file)[node] {
		for _, a := range parseAnnotations(cg) {
			if a.Name == name {
				return &a
			}
		}
	}
	return nil
}

// suppressed reports whether d falls inside a node annotated
// `//marketlint:allow <analyzer> <reason>` naming d's analyzer. The
// annotation must carry a reason; a reasonless allow suppresses
// nothing (and maporder/allocfree report reasonless annotations of
// their own kinds as findings).
func (p *Pass) suppressed(d Diagnostic) bool {
	var pos token.Pos
	for _, f := range p.Files {
		tf := p.Fset.File(f.FileStart)
		if tf != nil && tf.Name() == d.Pos.Filename {
			pos = tf.Pos(d.Pos.Offset)
			break
		}
	}
	if !pos.IsValid() {
		return false
	}
	file := p.FileFor(pos)
	if file == nil {
		return false
	}
	suppressed := false
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || suppressed {
			return false
		}
		if n.Pos() > pos || n.End() <= pos {
			// Not an ancestor of the diagnostic site. (File nodes keep
			// descending: doc comments sit outside Decls' extents.)
			_, isFile := n.(*ast.File)
			return isFile
		}
		if a := p.NodeAnnotation(n.(ast.Node), "allow"); a != nil {
			analyzer, reason, _ := strings.Cut(a.Args, " ")
			if analyzer == d.Analyzer && strings.TrimSpace(reason) != "" {
				suppressed = true
				return false
			}
		}
		return true
	})
	return suppressed
}
