package lockdiscipline_test

import (
	"testing"

	"clustermarket/internal/analysis"
	"clustermarket/internal/analysis/analysistest"
	"clustermarket/internal/analysis/lockdiscipline"
)

// The fixture declares types whose names match the market package's
// lock fields and is checked under that import path, so the real
// documented hierarchy is what the test exercises.
func TestLockdiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.Dir("lockdiscipline"), "clustermarket/internal/market",
		[]*analysis.Analyzer{lockdiscipline.Analyzer})
}
