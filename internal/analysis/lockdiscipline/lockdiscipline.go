// Package lockdiscipline enforces the exchange's documented mutex
// hierarchy and the pairing rule that every Lock has a same-function
// Unlock.
//
// Two checks:
//
//  1. Pairing: a function that calls x.Lock() (or RLock) must also
//     contain x.Unlock() (or RUnlock) — inline or deferred — for the
//     same lock expression. Handing a held lock to a callee or caller
//     is how the PR 4 settlement deadlocks were born; the rare
//     intentional handoff carries //marketlint:allow lockdiscipline.
//
//  2. Ordering: within a function, locks must be acquired in
//     nondecreasing rank order per the documented hierarchy
//     (exchange.go): auctionMu → settleMu → order stripes → account
//     stripes → ledgerMu → histMu. Acquiring a lower-ranked lock
//     while holding a higher-ranked one inverts the hierarchy and can
//     deadlock against a thread locking in the documented order.
//
// The check is intraprocedural and syntactic (statements in source
// order); locks not named in the hierarchy table only get the pairing
// check.
package lockdiscipline

import (
	"go/ast"
	"go/types"

	"clustermarket/internal/analysis"
)

// Analyzer is the lockdiscipline check.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "mutex acquisition must follow the documented hierarchy, and every Lock needs a same-function Unlock",
	Run:  run,
}

// Hierarchy maps package path → "Type.field" lock token → rank.
// Lower ranks are outer locks. Exported so golden tests can register
// fixture hierarchies.
var Hierarchy = map[string]map[string]int{
	"clustermarket/internal/market": {
		// Documented in exchange.go ("Lock order: auctionMu before
		// settleMu; shard locks are leaves") and apply.go ("account
		// stripes are always the inner lock"). ledgerMu and histMu sit
		// below the stripes: settlement batches ledger appends after
		// releasing its stripe, and nothing may grab a stripe while
		// appending.
		"Exchange.auctionMu": 10,
		"Exchange.settleMu":  20,
		"orderShard.mu":      30,
		"accountShard.mu":    40,
		"Exchange.ledgerMu":  50,
		"Exchange.histMu":    60,
	},
}

// lockOp is one Lock/Unlock call site.
type lockOp struct {
	node     *ast.CallExpr
	expr     string // normalized lock expression, e.g. "as.mu"
	token    string // "Type.field" hierarchy token, "" when unresolvable
	read     bool   // RLock/RUnlock
	lock     bool   // true = acquire, false = release
	deferred bool
}

func run(pass *analysis.Pass) error {
	ranks := Hierarchy[pass.Pkg.Path()]
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, ranks)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, ranks map[string]int) {
	var ops []lockOp
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure is its own extent (often a goroutine body); its
			// pairing is checked against its own ops by a nested pass.
			checkFuncLit(pass, n, ranks)
			return false
		case *ast.DeferStmt:
			if op, ok := classify(pass, n.Call); ok {
				op.deferred = true
				ops = append(ops, op)
			}
			return false
		case *ast.CallExpr:
			if op, ok := classify(pass, n); ok {
				ops = append(ops, op)
			}
		}
		return true
	})
	report(pass, ops, ranks)
}

func checkFuncLit(pass *analysis.Pass, fl *ast.FuncLit, ranks map[string]int) {
	var ops []lockOp
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFuncLit(pass, n, ranks)
			return false
		case *ast.DeferStmt:
			if op, ok := classify(pass, n.Call); ok {
				op.deferred = true
				ops = append(ops, op)
			}
			return false
		case *ast.CallExpr:
			if op, ok := classify(pass, n); ok {
				ops = append(ops, op)
			}
		}
		return true
	})
	report(pass, ops, ranks)
}

// classify recognizes sync.Mutex / sync.RWMutex Lock-family calls.
func classify(pass *analysis.Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	recv := receiverTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return lockOp{}, false
	}
	op := lockOp{node: call, expr: types.ExprString(sel.X), token: lockToken(pass, sel.X)}
	switch fn.Name() {
	case "Lock":
		op.lock = true
	case "RLock":
		op.lock, op.read = true, true
	case "Unlock":
	case "RUnlock":
		op.read = true
	default:
		return lockOp{}, false // TryLock etc.: not a discipline event
	}
	return op, true
}

func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// lockToken derives the "OwnerType.field" hierarchy token for a lock
// expression like e.settleMu or as.mu.
func lockToken(pass *analysis.Pass, x ast.Expr) string {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	field, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !field.IsField() {
		return ""
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return ""
	}
	t := s.Recv()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	return n.Obj().Name() + "." + field.Name()
}

// report runs the pairing and ordering checks over one extent's ops,
// which arrive in source order.
func report(pass *analysis.Pass, ops []lockOp, ranks map[string]int) {
	// Pairing: every acquire needs a release of the same expression
	// (and read-ness) somewhere in the same extent.
	type key struct {
		expr string
		read bool
	}
	released := map[key]bool{}
	for _, op := range ops {
		if !op.lock {
			released[key{op.expr, op.read}] = true
		}
	}
	for _, op := range ops {
		if op.lock && !released[key{op.expr, op.read}] {
			verb, unlock := "Lock", "Unlock"
			if op.read {
				verb, unlock = "RLock", "RUnlock"
			}
			pass.Reportf(op.node.Pos(), "%s.%s() has no matching %s in this function; unlock here (defer works) or annotate the handoff //marketlint:allow lockdiscipline <reason>", op.expr, verb, unlock)
		}
	}

	// Ordering against the documented hierarchy.
	if len(ranks) == 0 {
		return
	}
	type held struct {
		op   lockOp
		rank int
	}
	var stack []held
	for _, op := range ops {
		rank, ranked := ranks[op.token]
		if !op.lock {
			if op.deferred {
				continue // releases at return; the lock stays held below
			}
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].op.expr == op.expr && stack[i].op.read == op.read {
					stack = append(stack[:i], stack[i+1:]...)
					break
				}
			}
			continue
		}
		if ranked {
			for _, h := range stack {
				if hr, ok := ranks[h.op.token]; ok && hr > rank {
					pass.Reportf(op.node.Pos(), "acquires %s (rank %d) while holding %s (rank %d): violates the documented lock hierarchy %s", op.token, rank, h.op.token, hr, hierarchyDoc(ranks))
				}
			}
		}
		stack = append(stack, held{op, rank})
	}
}

// hierarchyDoc renders the package's hierarchy in rank order for the
// diagnostic message.
func hierarchyDoc(ranks map[string]int) string {
	type ent struct {
		tok  string
		rank int
	}
	ents := make([]ent, 0, len(ranks))
	for t, r := range ranks {
		ents = append(ents, ent{t, r})
	}
	for i := 1; i < len(ents); i++ {
		for j := i; j > 0 && (ents[j-1].rank > ents[j].rank || (ents[j-1].rank == ents[j].rank && ents[j-1].tok > ents[j].tok)); j-- {
			ents[j-1], ents[j] = ents[j], ents[j-1]
		}
	}
	out := ""
	for i, e := range ents {
		if i > 0 {
			out += " → "
		}
		out += e.tok
	}
	return out
}
