// Package fixture mirrors the market package's lock topology (the
// type and field names are what bind it to the documented hierarchy)
// and exercises the ordering and pairing checks.
package fixture

import "sync"

type Exchange struct {
	auctionMu sync.Mutex
	settleMu  sync.Mutex
	ledgerMu  sync.Mutex
	histMu    sync.RWMutex
	orders    orderShard
	accounts  accountShard
}

type orderShard struct{ mu sync.RWMutex }

type accountShard struct{ mu sync.RWMutex }

// The documented order, outer to inner, everything paired: clean.
func (e *Exchange) settle() {
	e.auctionMu.Lock()
	defer e.auctionMu.Unlock()
	e.settleMu.Lock()
	defer e.settleMu.Unlock()
	e.orders.mu.Lock()
	e.accounts.mu.Lock()
	e.accounts.mu.Unlock()
	e.orders.mu.Unlock()
	e.ledgerMu.Lock()
	e.ledgerMu.Unlock()
}

// Acquiring the settle lock while holding an order stripe inverts the
// hierarchy (the PR 4 settlement-deadlock shape).
func (e *Exchange) inverted() {
	e.orders.mu.Lock()
	defer e.orders.mu.Unlock()
	e.settleMu.Lock() // want "acquires Exchange.settleMu \\(rank 20\\) while holding orderShard.mu \\(rank 30\\)"
	e.settleMu.Unlock()
}

// An acquire with no release in the same function.
func (e *Exchange) leak() {
	e.histMu.Lock() // want "e.histMu.Lock\\(\\) has no matching Unlock"
}

// Unlock does not discharge an RLock: the flavors must match.
func (e *Exchange) mismatched() {
	e.histMu.RLock() // want "e.histMu.RLock\\(\\) has no matching RUnlock"
	e.histMu.Unlock()
}

// A deliberate lock handoff rides on an allow annotation; the matching
// release lives in finishAudit.
func (e *Exchange) beginAudit() {
	//marketlint:allow lockdiscipline the audit walker releases in finishAudit
	e.ledgerMu.Lock()
}

func (e *Exchange) finishAudit() {
	e.ledgerMu.Unlock()
}

type watcher struct{ mu sync.Mutex }

// Locks outside the hierarchy table get the pairing check only; holding
// one does not constrain ranked acquisitions.
func (w *watcher) poke(e *Exchange) {
	w.mu.Lock()
	defer w.mu.Unlock()
	e.histMu.Lock()
	e.histMu.Unlock()
}

// A closure is its own pairing extent.
func (e *Exchange) async() {
	go func() {
		e.histMu.RLock()
		defer e.histMu.RUnlock()
	}()
}
