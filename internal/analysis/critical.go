package analysis

import "strings"

// determinismCritical lists the packages whose behavior must be
// bit-reproducible: they sit on the scenario-fingerprint or
// journal-replay paths, where map-iteration order, wall-clock reads,
// or scheduling nondeterminism become divergent fingerprints. PR 5's
// three map-order bugs all lived in these packages.
var determinismCritical = []string{
	"clustermarket/internal/core",
	"clustermarket/internal/market",
	"clustermarket/internal/federation",
	"clustermarket/internal/scenario",
	"clustermarket/internal/sim",
	"clustermarket/internal/invariant",
	"clustermarket/internal/journal",
}

// DeterminismCritical reports whether importPath is one of the
// packages held to the bit-reproducibility contract. Used as the
// Packages filter of order- and purity-sensitive analyzers.
func DeterminismCritical(importPath string) bool {
	for _, p := range determinismCritical {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}
