// Package chart renders the experiment figures as plain-text charts so the
// benchmark harness can regenerate every figure from the paper on a
// terminal: multi-series line plots (Figure 2), labelled horizontal bar
// charts (Figure 6), Tukey boxplot panels (Figure 7), and aligned tables
// (Table I).
package chart

import (
	"fmt"
	"math"
	"strings"

	"clustermarket/internal/stats"
)

// Series is one named line on a line plot.
type Series struct {
	Name string
	X, Y []float64
}

// LinePlot renders the series on a width×height character grid with axis
// labels. Series are distinguished by marker characters in legend order.
func LinePlot(title string, width, height int, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	markers := []byte{'*', '+', 'o', 'x', '#', '@'}

	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			xlo, xhi = math.Min(xlo, s.X[i]), math.Max(xhi, s.X[i])
			ylo, yhi = math.Min(ylo, s.Y[i]), math.Max(yhi, s.Y[i])
		}
	}
	if math.IsInf(xlo, 1) || xhi == xlo {
		xlo, xhi = 0, 1
	}
	if math.IsInf(ylo, 1) || yhi == ylo {
		ylo, yhi = 0, 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			c := int(float64(width-1) * (s.X[i] - xlo) / (xhi - xlo))
			r := int(float64(height-1) * (s.Y[i] - ylo) / (yhi - ylo))
			row := height - 1 - r
			if row >= 0 && row < height && c >= 0 && c < width {
				grid[row][c] = m
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.2f ", yhi)
		case height - 1:
			label = fmt.Sprintf("%7.2f ", ylo)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        %-10.2f%*.2f\n", xlo, width-10, xhi)
	for si, s := range series {
		fmt.Fprintf(&b, "        %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// Bar is one labelled value on a horizontal bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to maxWidth characters. A
// reference line can be drawn at ref (for Figure 6 the former fixed-price
// ratio 1.0); pass NaN to omit it.
func BarChart(title string, maxWidth int, ref float64, bars []Bar) string {
	if maxWidth < 10 {
		maxWidth = 10
	}
	hi := 0.0
	for _, b := range bars {
		if b.Value > hi {
			hi = b.Value
		}
	}
	if !math.IsNaN(ref) && ref > hi {
		hi = ref
	}
	if hi == 0 {
		hi = 1
	}

	labelW := 0
	for _, b := range bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	refCol := -1
	if !math.IsNaN(ref) {
		refCol = int(float64(maxWidth) * ref / hi)
	}
	for _, b := range bars {
		n := int(float64(maxWidth) * b.Value / hi)
		if n < 0 {
			n = 0
		}
		row := []byte(strings.Repeat("=", n) + strings.Repeat(" ", maxWidth-n+1))
		if refCol >= 0 && refCol < len(row) {
			if row[refCol] == ' ' {
				row[refCol] = '|'
			} else {
				row[refCol] = '+'
			}
		}
		fmt.Fprintf(&sb, "%-*s %s %7.3f\n", labelW, b.Label, strings.TrimRight(string(row), " "), b.Value)
	}
	return sb.String()
}

// BoxGroup is one labelled boxplot column.
type BoxGroup struct {
	Label string
	Box   stats.Boxplot
}

// BoxplotChart renders the groups side by side on a vertical axis spanning
// [lo, hi], mirroring the layout of Figure 7 (one column per
// dimension × side combination).
func BoxplotChart(title string, height int, lo, hi float64, groups []BoxGroup) string {
	if height < 8 {
		height = 8
	}
	colW := 12
	for _, g := range groups {
		if len(g.Label)+2 > colW {
			colW = len(g.Label) + 2
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	rowOf := func(v float64) int {
		r := int(math.Round(float64(height-1) * (v - lo) / span))
		if r < 0 {
			r = 0
		}
		if r > height-1 {
			r = height - 1
		}
		return height - 1 - r
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", colW*len(groups)))
	}
	for gi, g := range groups {
		center := gi*colW + colW/2
		put := func(row int, s string) {
			start := center - len(s)/2
			for i := 0; i < len(s); i++ {
				c := start + i
				if row >= 0 && row < height && c >= 0 && c < len(grid[row]) {
					grid[row][c] = s[i]
				}
			}
		}
		b := g.Box
		for r := rowOf(b.HighWhisker); r < rowOf(b.Q3); r++ {
			put(r, "|")
		}
		for r := rowOf(b.Q1) + 1; r <= rowOf(b.LowWhisker); r++ {
			put(r, "|")
		}
		put(rowOf(b.HighWhisker), "---")
		put(rowOf(b.LowWhisker), "---")
		put(rowOf(b.Q3), "+---+")
		put(rowOf(b.Q1), "+---+")
		put(rowOf(b.Median), "|===|")
		for _, o := range b.Outliers {
			put(rowOf(o), "o")
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.1f ", hi)
		case height - 1:
			label = fmt.Sprintf("%7.1f ", lo)
		}
		fmt.Fprintf(&sb, "%s|%s\n", label, strings.TrimRight(string(row), " "))
	}
	fmt.Fprintf(&sb, "        +%s\n", strings.Repeat("-", colW*len(groups)))
	fmt.Fprintf(&sb, "         ")
	for _, g := range groups {
		fmt.Fprintf(&sb, "%-*s", colW, centerText(g.Label, colW))
	}
	sb.WriteByte('\n')
	return sb.String()
}

func centerText(s string, w int) string {
	if len(s) >= w {
		return s[:w]
	}
	left := (w - len(s)) / 2
	return strings.Repeat(" ", left) + s
}

// Table renders rows as an aligned text table with a header row and a
// separator, in the style of the paper's Table I.
func Table(title string, header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}
