package chart

import (
	"math"
	"strings"
	"testing"

	"clustermarket/internal/stats"
)

func TestLinePlotBasics(t *testing.T) {
	s := Series{Name: "linear", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}}
	out := LinePlot("test plot", 40, 10, s)
	if !strings.Contains(out, "test plot") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "linear") {
		t.Error("missing legend entry")
	}
	if !strings.Contains(out, "*") {
		t.Error("missing data markers")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 12 {
		t.Errorf("too few lines: %d", len(lines))
	}
}

func TestLinePlotMultipleSeriesMarkers(t *testing.T) {
	a := Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}}
	b := Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}}
	out := LinePlot("two", 30, 8, a, b)
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("expected distinct markers:\n%s", out)
	}
}

func TestLinePlotDegenerateInput(t *testing.T) {
	// No series, and a constant series: both must render without panics.
	if out := LinePlot("empty", 5, 2); out == "" {
		t.Error("empty plot rendered nothing")
	}
	c := Series{Name: "flat", X: []float64{1, 1}, Y: []float64{5, 5}}
	if out := LinePlot("flat", 20, 6, c); !strings.Contains(out, "flat") {
		t.Error("flat plot missing legend")
	}
}

func TestBarChart(t *testing.T) {
	bars := []Bar{{"r1/CPU", 2.0}, {"r2/CPU", 0.5}, {"r3/CPU", 1.0}}
	out := BarChart("ratios", 40, 1.0, bars)
	if !strings.Contains(out, "ratios") || !strings.Contains(out, "r1/CPU") {
		t.Error("missing title or labels")
	}
	// The largest bar must be longer than the smallest.
	var longest, shortest int
	for _, line := range strings.Split(out, "\n") {
		n := strings.Count(line, "=")
		if strings.Contains(line, "r1/CPU") {
			longest = n
		}
		if strings.Contains(line, "r2/CPU") {
			shortest = n
		}
	}
	if longest <= shortest {
		t.Errorf("bar lengths wrong: longest=%d shortest=%d\n%s", longest, shortest, out)
	}
	// Reference line must appear.
	if !strings.ContainsAny(out, "|+") {
		t.Error("missing reference line")
	}
}

func TestBarChartNoRef(t *testing.T) {
	out := BarChart("n", 20, math.NaN(), []Bar{{"x", 1}})
	if strings.Contains(out, "|") {
		t.Errorf("unexpected reference line:\n%s", out)
	}
}

func TestBarChartAllZero(t *testing.T) {
	out := BarChart("z", 20, math.NaN(), []Bar{{"x", 0}, {"y", 0}})
	if !strings.Contains(out, "x") || !strings.Contains(out, "y") {
		t.Error("labels missing for zero-valued bars")
	}
}

func TestBoxplotChart(t *testing.T) {
	box1, err := stats.NewBoxplot([]float64{10, 20, 30, 40, 50})
	if err != nil {
		t.Fatal(err)
	}
	box2, err := stats.NewBoxplot([]float64{60, 70, 80, 90, 95, 5})
	if err != nil {
		t.Fatal(err)
	}
	out := BoxplotChart("fig7", 16, 0, 100, []BoxGroup{
		{Label: "CPU Bids", Box: box1},
		{Label: "CPU Offers", Box: box2},
	})
	for _, want := range []string{"fig7", "CPU Bids", "CPU Offers", "|===|", "+---+"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The outlier 5 in box2 should be drawn as 'o'.
	if !strings.Contains(out, "o") {
		t.Errorf("missing outlier marker:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	out := Table("Table I", []string{"Auction", "Median", "Mean"}, [][]string{
		{"1", "0.0092", "0.0614"},
		{"2", "0.0025", "0.2078"},
	})
	if !strings.Contains(out, "Table I") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "Auction") || !strings.Contains(out, "0.0025") {
		t.Error("missing header or cell")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	// Separator row of dashes.
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("missing separator: %q", lines[2])
	}
}

func TestTableEmptyTitleAndRows(t *testing.T) {
	out := Table("", []string{"A"}, nil)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Errorf("want header+separator, got %d lines", len(lines))
	}
}

func TestCenterText(t *testing.T) {
	if got := centerText("ab", 6); got != "  ab" {
		t.Errorf("centerText = %q", got)
	}
	if got := centerText("abcdef", 3); got != "abc" {
		t.Errorf("centerText truncation = %q", got)
	}
}
