// Package bidlang implements a tree-based bidding language in the spirit
// of TBBL (Parkes et al., "ICE: an iterative combinatorial exchange"),
// which the paper cites as the model for its bid entry format (Section
// II). A bid names a user, a scalar limit π (maximum payment if positive,
// minimum receipt if negative), and a tree of nodes:
//
//	leaf      one (pool, quantity) pair; negative quantities are offers
//	all       every child must be taken together (AND)
//	oneof     exactly one child is taken (XOR)
//
// Flattening a tree produces the paper's indifference set Q_u: the XOR
// list of R-component bundle vectors submitted to the clock auction.
package bidlang

import (
	"fmt"
	"sort"
	"strings"

	"clustermarket/internal/resource"
)

// Node is one node of a bid tree.
type Node interface {
	// appendTo renders the node in the canonical text syntax.
	appendTo(b *strings.Builder, indent int)
	// bundles expands the node into its alternative quantity maps.
	bundles(limit int) ([]bundleMap, error)
}

// bundleMap accumulates quantities per pool while flattening.
type bundleMap map[resource.Pool]float64

func (m bundleMap) clone() bundleMap {
	out := make(bundleMap, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (m bundleMap) merge(o bundleMap) {
	for k, v := range o {
		m[k] += v
	}
}

// Leaf is a quantity of a single resource pool.
type Leaf struct {
	Pool resource.Pool
	Qty  float64
}

func (l Leaf) appendTo(b *strings.Builder, indent int) {
	pad(b, indent)
	fmt.Fprintf(b, "%s/%s:%g\n", l.Pool.Cluster, strings.ToLower(l.Pool.Dim.String()), l.Qty)
}

func (l Leaf) bundles(limit int) ([]bundleMap, error) {
	return []bundleMap{{l.Pool: l.Qty}}, nil
}

// All is the AND combinator: all children are acquired together. XOR
// children multiply combinatorially.
type All struct {
	Children []Node
}

func (a All) appendTo(b *strings.Builder, indent int) {
	pad(b, indent)
	b.WriteString("all {\n")
	for _, c := range a.Children {
		c.appendTo(b, indent+1)
	}
	pad(b, indent)
	b.WriteString("}\n")
}

func (a All) bundles(limit int) ([]bundleMap, error) {
	acc := []bundleMap{{}}
	for _, c := range a.Children {
		alts, err := c.bundles(limit)
		if err != nil {
			return nil, err
		}
		next := make([]bundleMap, 0, len(acc)*len(alts))
		for _, base := range acc {
			for _, alt := range alts {
				m := base.clone()
				m.merge(alt)
				next = append(next, m)
			}
		}
		if len(next) > limit {
			return nil, fmt.Errorf("bidlang: bundle expansion exceeds limit of %d alternatives", limit)
		}
		acc = next
	}
	return acc, nil
}

// OneOf is the XOR combinator: exactly one child is acquired, matching the
// paper's "q¹ XOR q² XOR q³ ..." indifference sets.
type OneOf struct {
	Children []Node
}

func (o OneOf) appendTo(b *strings.Builder, indent int) {
	pad(b, indent)
	b.WriteString("oneof {\n")
	for _, c := range o.Children {
		c.appendTo(b, indent+1)
	}
	pad(b, indent)
	b.WriteString("}\n")
}

func (o OneOf) bundles(limit int) ([]bundleMap, error) {
	var acc []bundleMap
	for _, c := range o.Children {
		alts, err := c.bundles(limit)
		if err != nil {
			return nil, err
		}
		acc = append(acc, alts...)
		if len(acc) > limit {
			return nil, fmt.Errorf("bidlang: bundle expansion exceeds limit of %d alternatives", limit)
		}
	}
	return acc, nil
}

// Bid is a complete bid: a user, a limit price π, and the requirement tree.
type Bid struct {
	User  string
	Limit float64
	Root  Node
}

// MaxBundles bounds flattening so a hostile or mistaken bid tree cannot
// explode combinatorially (an All over k OneOf nodes multiplies
// alternatives).
const MaxBundles = 4096

// Flatten expands the bid tree into the XOR set of bundle vectors over the
// registry's pools. Every pool mentioned in the tree must be registered.
// Bundles that collapse to the zero vector are dropped; duplicate bundles
// are merged.
func (b *Bid) Flatten(reg *resource.Registry) ([]resource.Vector, error) {
	if b.Root == nil {
		return nil, fmt.Errorf("bidlang: bid %q has no requirement tree", b.User)
	}
	maps, err := b.Root.bundles(MaxBundles)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []resource.Vector
	for _, m := range maps {
		v := reg.Zero()
		for pool, qty := range m {
			i, ok := reg.Index(pool)
			if !ok {
				return nil, fmt.Errorf("bidlang: bid %q references unregistered pool %v", b.User, pool)
			}
			v[i] += qty
		}
		if v.IsZero() {
			continue
		}
		key := reg.Format(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bidlang: bid %q flattens to no non-empty bundles", b.User)
	}
	return out, nil
}

// Pools returns the sorted distinct pools mentioned anywhere in the tree.
func (b *Bid) Pools() []resource.Pool {
	set := make(map[resource.Pool]bool)
	collectPools(b.Root, set)
	out := make([]resource.Pool, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cluster != out[j].Cluster {
			return out[i].Cluster < out[j].Cluster
		}
		return out[i].Dim < out[j].Dim
	})
	return out
}

func collectPools(n Node, set map[resource.Pool]bool) {
	switch v := n.(type) {
	case Leaf:
		set[v.Pool] = true
	case All:
		for _, c := range v.Children {
			collectPools(c, set)
		}
	case OneOf:
		for _, c := range v.Children {
			collectPools(c, set)
		}
	}
}

// String renders the bid in the canonical text syntax accepted by Parse.
func (b *Bid) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "bid %q limit %g {\n", b.User, b.Limit)
	if b.Root != nil {
		b.Root.appendTo(&sb, 1)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func pad(b *strings.Builder, indent int) {
	for i := 0; i < indent; i++ {
		b.WriteString("  ")
	}
}
