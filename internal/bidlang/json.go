package bidlang

import (
	"encoding/json"
	"fmt"
	"strings"

	"clustermarket/internal/resource"
)

// jsonNode is the wire representation of a bid tree node. Exactly one of
// the three shapes must be populated: a leaf (Pool+Qty), an All list, or a
// OneOf list.
type jsonNode struct {
	Pool  string     `json:"pool,omitempty"`
	Qty   float64    `json:"qty,omitempty"`
	All   []jsonNode `json:"all,omitempty"`
	OneOf []jsonNode `json:"oneof,omitempty"`
}

type jsonBid struct {
	User  string   `json:"user"`
	Limit float64  `json:"limit"`
	Node  jsonNode `json:"node"`
}

// MarshalJSON renders the bid in the documented wire format.
func (b *Bid) MarshalJSON() ([]byte, error) {
	n, err := toJSONNode(b.Root)
	if err != nil {
		return nil, err
	}
	return json.Marshal(jsonBid{User: b.User, Limit: b.Limit, Node: n})
}

// UnmarshalJSON parses the documented wire format.
func (b *Bid) UnmarshalJSON(data []byte) error {
	var jb jsonBid
	if err := json.Unmarshal(data, &jb); err != nil {
		return err
	}
	root, err := fromJSONNode(jb.Node)
	if err != nil {
		return err
	}
	b.User = jb.User
	b.Limit = jb.Limit
	b.Root = root
	return nil
}

func toJSONNode(n Node) (jsonNode, error) {
	switch v := n.(type) {
	case Leaf:
		return jsonNode{
			Pool: v.Pool.Cluster + "/" + strings.ToLower(v.Pool.Dim.String()),
			Qty:  v.Qty,
		}, nil
	case All:
		out := jsonNode{}
		for _, c := range v.Children {
			jc, err := toJSONNode(c)
			if err != nil {
				return jsonNode{}, err
			}
			out.All = append(out.All, jc)
		}
		return out, nil
	case OneOf:
		out := jsonNode{}
		for _, c := range v.Children {
			jc, err := toJSONNode(c)
			if err != nil {
				return jsonNode{}, err
			}
			out.OneOf = append(out.OneOf, jc)
		}
		return out, nil
	case nil:
		return jsonNode{}, fmt.Errorf("bidlang: nil node")
	default:
		return jsonNode{}, fmt.Errorf("bidlang: unknown node type %T", n)
	}
}

func fromJSONNode(j jsonNode) (Node, error) {
	populated := 0
	if j.Pool != "" {
		populated++
	}
	if len(j.All) > 0 {
		populated++
	}
	if len(j.OneOf) > 0 {
		populated++
	}
	if populated != 1 {
		return nil, fmt.Errorf("bidlang: JSON node must have exactly one of pool, all, oneof")
	}
	switch {
	case j.Pool != "":
		slash := strings.IndexByte(j.Pool, '/')
		if slash < 0 {
			return nil, fmt.Errorf("bidlang: bad pool %q, want cluster/dim", j.Pool)
		}
		dim, err := resource.ParseDimension(j.Pool[slash+1:])
		if err != nil {
			return nil, err
		}
		if j.Qty == 0 {
			return nil, fmt.Errorf("bidlang: leaf %q has zero quantity", j.Pool)
		}
		return Leaf{Pool: resource.Pool{Cluster: j.Pool[:slash], Dim: dim}, Qty: j.Qty}, nil
	case len(j.All) > 0:
		var children []Node
		for _, c := range j.All {
			n, err := fromJSONNode(c)
			if err != nil {
				return nil, err
			}
			children = append(children, n)
		}
		return All{Children: children}, nil
	default:
		var children []Node
		for _, c := range j.OneOf {
			n, err := fromJSONNode(c)
			if err != nil {
				return nil, err
			}
			children = append(children, n)
		}
		return OneOf{Children: children}, nil
	}
}
