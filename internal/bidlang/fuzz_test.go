package bidlang

import (
	"strconv"
	"testing"

	"clustermarket/internal/resource"
)

// FuzzParse throws arbitrary source at the bid parser and checks three
// properties on every input:
//
//  1. the parser never panics (the harness enforces this for free);
//  2. an accepted bid flattens over its own pools without panicking and
//     within the MaxBundles combinatorial bound;
//  3. the canonical rendering (Bid.String) of an accepted bid re-parses
//     to the same canonical form — Parse ∘ String is a fixed point —
//     whenever the user name survives %q quoting verbatim (names with
//     escapes render as Go escape sequences the deliberately tiny lexer
//     does not interpret).
//
// Property 3 found a real bug during development: leaf quantities large
// enough to render in scientific notation ("r1/cpu:1e+20") did not lex
// back, because '+' only continued number tokens, not word tokens. See
// TestLexerAcceptsExponentQuantities for the pinned regression.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`bid "team-storage" limit 120.5 {
  oneof {
    all { r1/cpu:40 r1/ram:96 r1/disk:10 }
    all { r2/cpu:40 r2/ram:96 r2/disk:10 }
  }
}`,
		`bid "seller" limit -50 { r1/cpu:-100 }`,
		`bid "trader" limit 0.5 { all { r1/cpu:-10 r2/cpu:10 } }`,
		`bid "a" limit 1 { r1/cpu:1 } bid "b" limit 2 { r2/ram:3 }`,
		`# comment
bid "c" limit 3e2 { oneof { r1/cpu:2 r1/cpu:4 } }`,
		`bid "deep" limit 9 { oneof { all { oneof { r1/cpu:1 r2/cpu:1 } r1/ram:4 } r3/disk:2 } }`,
		`bid "big" limit 5 { r1/cpu:100000000000000000000 }`,
		`bid "tiny" limit 5 { r1/cpu:0.00000000000000001 }`,
		`bid "" limit 1 { r1/cpu:1 }`,
		`bid "x" limit { }`,
		`bid "x" limit 1 { unknown/pool:1 }`,
		"bid \"y\" limit 1 {\r\n r1/cpu:1 }",
		`{}}}{{ bid bid limit`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		bids, err := ParseAll(src)
		if err != nil {
			return
		}
		for _, b := range bids {
			// Property 2: flattening is total and bounded.
			pools := b.Pools()
			if n := len(pools); n > 0 && n <= 64 {
				reg := resource.NewRegistry(pools...)
				if vecs, err := b.Flatten(reg); err == nil && len(vecs) > MaxBundles {
					t.Fatalf("flatten produced %d bundles, bound is %d", len(vecs), MaxBundles)
				}
			}
			// Property 3: canonical rendering is a parse fixed point.
			if strconv.Quote(b.User) != `"`+b.User+`"` {
				continue
			}
			canon := b.String()
			again, err := Parse(canon)
			if err != nil {
				t.Fatalf("canonical rendering failed to re-parse: %v\n%s", err, canon)
			}
			if got := again.String(); got != canon {
				t.Fatalf("canonical rendering is not a fixed point:\nfirst:\n%s\nsecond:\n%s", canon, got)
			}
		}
	})
}

// TestLexerAcceptsExponentQuantities pins the FuzzParse discovery: a
// quantity that renders in scientific notation must survive the
// String → Parse round trip.
func TestLexerAcceptsExponentQuantities(t *testing.T) {
	for _, qty := range []string{"100000000000000000000", "1e+20", "2.5e-17"} {
		src := `bid "big" limit 5 { r1/cpu:` + qty + ` }`
		b, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		canon := b.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q failed to re-parse: %v", canon, err)
		}
		if again.String() != canon {
			t.Fatalf("round trip diverged: %q vs %q", again.String(), canon)
		}
	}
}
