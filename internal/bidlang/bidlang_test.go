package bidlang

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"clustermarket/internal/resource"
)

const sampleBid = `
# A storage team indifferent between two clusters.
bid "team-storage" limit 120.5 {
  oneof {
    all { r1/cpu:40 r1/ram:96 r1/disk:10 }
    all { r2/cpu:40 r2/ram:96 r2/disk:10 }
  }
}
`

func TestParseSample(t *testing.T) {
	b, err := Parse(sampleBid)
	if err != nil {
		t.Fatal(err)
	}
	if b.User != "team-storage" || b.Limit != 120.5 {
		t.Fatalf("header = %q %v", b.User, b.Limit)
	}
	oneof, ok := b.Root.(OneOf)
	if !ok {
		t.Fatalf("root is %T", b.Root)
	}
	if len(oneof.Children) != 2 {
		t.Fatalf("children = %d", len(oneof.Children))
	}
	all, ok := oneof.Children[0].(All)
	if !ok || len(all.Children) != 3 {
		t.Fatalf("first alternative = %#v", oneof.Children[0])
	}
	leaf := all.Children[0].(Leaf)
	if leaf.Pool != (resource.Pool{Cluster: "r1", Dim: resource.CPU}) || leaf.Qty != 40 {
		t.Fatalf("leaf = %+v", leaf)
	}
}

func TestFlattenSample(t *testing.T) {
	reg := resource.NewStandardRegistry("r1", "r2")
	b, err := Parse(sampleBid)
	if err != nil {
		t.Fatal(err)
	}
	bundles, err := b.Flatten(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 2 {
		t.Fatalf("bundles = %d", len(bundles))
	}
	i1 := reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.RAM})
	if bundles[0][i1] != 96 {
		t.Errorf("bundle 0 r1/RAM = %v", bundles[0][i1])
	}
	i2 := reg.MustIndex(resource.Pool{Cluster: "r2", Dim: resource.RAM})
	if bundles[1][i2] != 96 {
		t.Errorf("bundle 1 r2/RAM = %v", bundles[1][i2])
	}
}

func TestFlattenCrossProduct(t *testing.T) {
	// all{ oneof{a b} oneof{c d} } must expand to 4 bundles.
	src := `bid "x" limit 10 {
	  all {
	    oneof { r1/cpu:1 r2/cpu:1 }
	    oneof { r1/ram:2 r2/ram:2 }
	  }
	}`
	reg := resource.NewStandardRegistry("r1", "r2")
	b, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	bundles, err := b.Flatten(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 4 {
		t.Fatalf("bundles = %d, want 4", len(bundles))
	}
}

func TestFlattenMergesDuplicateLeaves(t *testing.T) {
	src := `bid "x" limit 10 { all { r1/cpu:1 r1/cpu:2 } }`
	reg := resource.NewStandardRegistry("r1")
	b, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	bundles, err := b.Flatten(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 {
		t.Fatalf("bundles = %d", len(bundles))
	}
	if got := bundles[0][reg.MustIndex(resource.Pool{Cluster: "r1", Dim: resource.CPU})]; got != 3 {
		t.Errorf("merged qty = %v", got)
	}
}

func TestFlattenDropsCancellingBundleAndDuplicates(t *testing.T) {
	src := `bid "x" limit 10 {
	  oneof {
	    all { r1/cpu:1 r1/cpu:-1 }
	    r1/ram:5
	    r1/ram:5
	  }
	}`
	reg := resource.NewStandardRegistry("r1")
	b, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	bundles, err := b.Flatten(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 {
		t.Fatalf("bundles = %d, want 1 (zero bundle dropped, dup merged)", len(bundles))
	}
}

func TestOfferAndTraderBids(t *testing.T) {
	reg := resource.NewStandardRegistry("r1", "r2")
	// Pure offer: negative quantities, negative limit (min receipt).
	offer, err := Parse(`bid "seller" limit -50 { all { r1/cpu:-20 r1/ram:-48 } }`)
	if err != nil {
		t.Fatal(err)
	}
	bundles, err := offer.Flatten(reg)
	if err != nil {
		t.Fatal(err)
	}
	if bundles[0].PureDirection() != -1 {
		t.Errorf("offer direction = %d", bundles[0].PureDirection())
	}
	// Trader: sells in r1, buys in r2.
	trader, err := Parse(`bid "trader" limit 5 { all { r1/cpu:-10 r2/cpu:10 } }`)
	if err != nil {
		t.Fatal(err)
	}
	bundles, err = trader.Flatten(reg)
	if err != nil {
		t.Fatal(err)
	}
	if bundles[0].PureDirection() != 0 {
		t.Errorf("trader direction = %d", bundles[0].PureDirection())
	}
}

func TestParseAllMultipleBids(t *testing.T) {
	src := `bid "a" limit 1 { r1/cpu:1 }
	bid "b" limit 2 { r1/ram:2 }`
	bids, err := ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(bids) != 2 || bids[0].User != "a" || bids[1].User != "b" {
		t.Fatalf("bids = %+v", bids)
	}
	if _, err := Parse(src); err == nil {
		t.Error("Parse accepted two bids")
	}
}

func TestImplicitAllAtTopLevel(t *testing.T) {
	b, err := Parse(`bid "x" limit 3 { r1/cpu:1 r1/ram:2 }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Root.(All); !ok {
		t.Fatalf("root = %T, want All", b.Root)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no bid keyword", `offer "x" limit 1 { r1/cpu:1 }`},
		{"unquoted name", `bid x limit 1 { r1/cpu:1 }`},
		{"missing limit", `bid "x" { r1/cpu:1 }`},
		{"bad limit", `bid "x" limit abc { r1/cpu:1 }`},
		{"empty body", `bid "x" limit 1 { }`},
		{"empty all", `bid "x" limit 1 { all { } }`},
		{"empty oneof", `bid "x" limit 1 { oneof { } }`},
		{"bad leaf", `bid "x" limit 1 { r1cpu1 }`},
		{"bad dimension", `bid "x" limit 1 { r1/gpu:1 }`},
		{"zero qty", `bid "x" limit 1 { r1/cpu:0 }`},
		{"unterminated string", `bid "x`},
		{"unterminated brace", `bid "x" limit 1 { r1/cpu:1`},
		{"stray char", `bid "x" limit 1 { r1/cpu:1 } !`},
	}
	for _, c := range cases {
		if _, err := ParseAll(c.src); err == nil {
			t.Errorf("%s: no error for %q", c.name, c.src)
		}
	}
}

func TestFlattenErrors(t *testing.T) {
	reg := resource.NewStandardRegistry("r1")
	// Unregistered pool.
	b, err := Parse(`bid "x" limit 1 { zz/cpu:1 }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Flatten(reg); err == nil {
		t.Error("unregistered pool accepted")
	}
	// Nil root.
	nb := &Bid{User: "x", Limit: 1}
	if _, err := nb.Flatten(reg); err == nil {
		t.Error("nil root accepted")
	}
}

func TestFlattenExplosionGuard(t *testing.T) {
	// 13 oneof nodes of 2 alternatives each = 8192 > MaxBundles.
	var sb strings.Builder
	sb.WriteString(`bid "boom" limit 1 { all {`)
	for i := 0; i < 13; i++ {
		sb.WriteString(` oneof { r1/cpu:1 r1/ram:1 }`)
	}
	sb.WriteString(` } }`)
	b, err := Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	reg := resource.NewStandardRegistry("r1")
	if _, err := b.Flatten(reg); err == nil {
		t.Error("combinatorial explosion not guarded")
	}
}

func TestPools(t *testing.T) {
	b, err := Parse(sampleBid)
	if err != nil {
		t.Fatal(err)
	}
	pools := b.Pools()
	if len(pools) != 6 {
		t.Fatalf("pools = %v", pools)
	}
	// Sorted: r1 before r2, CPU < RAM < Disk within each cluster.
	if pools[0] != (resource.Pool{Cluster: "r1", Dim: resource.CPU}) {
		t.Errorf("pools[0] = %v", pools[0])
	}
	if pools[5] != (resource.Pool{Cluster: "r2", Dim: resource.Disk}) {
		t.Errorf("pools[5] = %v", pools[5])
	}
}

func TestStringRoundTrip(t *testing.T) {
	orig, err := Parse(sampleBid)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := Parse(orig.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\ntext:\n%s", err, orig.String())
	}
	reg := resource.NewStandardRegistry("r1", "r2")
	b1, err := orig.Flatten(reg)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := reparsed.Flatten(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) != len(b2) {
		t.Fatalf("bundle counts differ: %d vs %d", len(b1), len(b2))
	}
	for i := range b1 {
		if !b1[i].Equal(b2[i], 0) {
			t.Errorf("bundle %d differs", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig, err := Parse(sampleBid)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Bid
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.User != orig.User || back.Limit != orig.Limit {
		t.Fatalf("header lost: %+v", back)
	}
	reg := resource.NewStandardRegistry("r1", "r2")
	b1, _ := orig.Flatten(reg)
	b2, err := back.Flatten(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) != len(b2) {
		t.Fatalf("bundles differ: %d vs %d", len(b1), len(b2))
	}
}

func TestJSONErrors(t *testing.T) {
	cases := []string{
		`{"user":"x","limit":1,"node":{}}`,                                                        // nothing populated
		`{"user":"x","limit":1,"node":{"pool":"r1/cpu"}}`,                                         // zero qty
		`{"user":"x","limit":1,"node":{"pool":"r1cpu","qty":1}}`,                                  // no slash
		`{"user":"x","limit":1,"node":{"pool":"r1/gpu","qty":1}}`,                                 // bad dim
		`{"user":"x","limit":1,"node":{"all":[{}]}}`,                                              // bad child
		`{"user":"x","limit":1,"node":{"pool":"a/cpu","qty":1,"all":[{"pool":"a/ram","qty":1}]}}`, // two shapes
		`not json`,
	}
	for _, c := range cases {
		var b Bid
		if err := json.Unmarshal([]byte(c), &b); err == nil {
			t.Errorf("accepted %s", c)
		}
	}
}

// TestQuickGeneratedBidRoundTrip builds random bid trees, prints them, and
// verifies text round-trip preserves the flattened bundle set.
func TestQuickGeneratedBidRoundTrip(t *testing.T) {
	reg := resource.NewStandardRegistry("r1", "r2", "r3")
	gen := func(r *rand.Rand) Node {
		return genNode(r, 2)
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bid := &Bid{User: "gen", Limit: float64(r.Intn(100) + 1), Root: gen(r)}
		b1, err := bid.Flatten(reg)
		if err != nil {
			// Random trees can legitimately cancel to zero; skip those.
			return strings.Contains(err.Error(), "no non-empty bundles")
		}
		back, err := Parse(bid.String())
		if err != nil {
			return false
		}
		b2, err := back.Flatten(reg)
		if err != nil {
			return false
		}
		if len(b1) != len(b2) {
			return false
		}
		for i := range b1 {
			if !b1[i].Equal(b2[i], 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func genNode(r *rand.Rand, depth int) Node {
	clusters := []string{"r1", "r2", "r3"}
	dims := []resource.Dimension{resource.CPU, resource.RAM, resource.Disk}
	leaf := func() Node {
		qty := float64(r.Intn(20) + 1)
		if r.Intn(4) == 0 {
			qty = -qty
		}
		return Leaf{
			Pool: resource.Pool{Cluster: clusters[r.Intn(len(clusters))], Dim: dims[r.Intn(len(dims))]},
			Qty:  qty,
		}
	}
	if depth == 0 || r.Intn(3) == 0 {
		return leaf()
	}
	n := r.Intn(3) + 1
	children := make([]Node, n)
	for i := range children {
		children[i] = genNode(r, depth-1)
	}
	if r.Intn(2) == 0 {
		return All{Children: children}
	}
	return OneOf{Children: children}
}
