package bidlang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"clustermarket/internal/resource"
)

// Parse reads one bid in the canonical text syntax:
//
//	bid "team-storage" limit 120.5 {
//	  oneof {
//	    all { r1/cpu:40 r1/ram:96 r1/disk:10 }
//	    all { r2/cpu:40 r2/ram:96 r2/disk:10 }
//	  }
//	}
//
// Quantities may be negative (offers). Comments run from '#' to end of
// line. ParseAll reads a sequence of such bids.
func Parse(src string) (*Bid, error) {
	bids, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(bids) != 1 {
		return nil, fmt.Errorf("bidlang: expected exactly 1 bid, found %d", len(bids))
	}
	return bids[0], nil
}

// ParseAll reads every bid in src.
func ParseAll(src string) ([]*Bid, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var bids []*Bid
	for !p.atEOF() {
		b, err := p.parseBid()
		if err != nil {
			return nil, err
		}
		bids = append(bids, b)
	}
	if len(bids) == 0 {
		return nil, fmt.Errorf("bidlang: no bids found")
	}
	return bids, nil
}

type tokKind int

const (
	tokWord tokKind = iota // identifiers, keywords, pool refs
	tokString
	tokNumber
	tokLBrace
	tokRBrace
)

type token struct {
	kind tokKind
	text string
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", line})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", line})
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\n' {
					return nil, fmt.Errorf("bidlang:%d: unterminated string", line)
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("bidlang:%d: unterminated string", line)
			}
			toks = append(toks, token{tokString, src[i+1 : j], line})
			i = j + 1
		case c == '-' || c == '+' || c == '.' || unicode.IsDigit(rune(c)):
			j := i + 1
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '-' || src[j] == '+') && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], line})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i + 1
			// '+' continues the word only as an exponent sign (e+/E+), the
			// same rule the number lexer uses: leaf quantities rendered in
			// scientific notation ("r1/cpu:1e+20") must lex back as one
			// token, or Bid.String output would not round-trip through
			// Parse.
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) ||
				src[j] == '_' || src[j] == '-' || src[j] == '/' || src[j] == ':' || src[j] == '.' ||
				(src[j] == '+' && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tokWord, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("bidlang:%d: unexpected character %q", line, c)
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() (token, error) {
	if p.atEOF() {
		return token{}, fmt.Errorf("bidlang: unexpected end of input")
	}
	return p.toks[p.pos], nil
}

func (p *parser) next() (token, error) {
	t, err := p.peek()
	if err == nil {
		p.pos++
	}
	return t, err
}

func (p *parser) expectWord(word string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != tokWord || t.text != word {
		return fmt.Errorf("bidlang:%d: expected %q, found %q", t.line, word, t.text)
	}
	return nil
}

func (p *parser) expectKind(k tokKind, what string) (token, error) {
	t, err := p.next()
	if err != nil {
		return token{}, err
	}
	if t.kind != k {
		return token{}, fmt.Errorf("bidlang:%d: expected %s, found %q", t.line, what, t.text)
	}
	return t, nil
}

func (p *parser) parseBid() (*Bid, error) {
	if err := p.expectWord("bid"); err != nil {
		return nil, err
	}
	name, err := p.expectKind(tokString, "quoted user name")
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("limit"); err != nil {
		return nil, err
	}
	lim, err := p.expectKind(tokNumber, "limit value")
	if err != nil {
		return nil, err
	}
	limit, err := strconv.ParseFloat(lim.text, 64)
	if err != nil {
		return nil, fmt.Errorf("bidlang:%d: bad limit %q: %v", lim.line, lim.text, err)
	}
	if _, err := p.expectKind(tokLBrace, "{"); err != nil {
		return nil, err
	}
	nodes, err := p.parseNodesUntilRBrace()
	if err != nil {
		return nil, err
	}
	var root Node
	switch len(nodes) {
	case 0:
		return nil, fmt.Errorf("bidlang: bid %q is empty", name.text)
	case 1:
		root = nodes[0]
	default:
		// Multiple top-level nodes are an implicit All.
		root = All{Children: nodes}
	}
	return &Bid{User: name.text, Limit: limit, Root: root}, nil
}

func (p *parser) parseNodesUntilRBrace() ([]Node, error) {
	var nodes []Node
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == tokRBrace {
			p.pos++
			return nodes, nil
		}
		n, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
}

func (p *parser) parseNode() (Node, error) {
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	if t.kind != tokWord {
		return nil, fmt.Errorf("bidlang:%d: expected node, found %q", t.line, t.text)
	}
	switch t.text {
	case "all", "oneof":
		if _, err := p.expectKind(tokLBrace, "{"); err != nil {
			return nil, err
		}
		children, err := p.parseNodesUntilRBrace()
		if err != nil {
			return nil, err
		}
		if len(children) == 0 {
			return nil, fmt.Errorf("bidlang:%d: %s node is empty", t.line, t.text)
		}
		if t.text == "all" {
			return All{Children: children}, nil
		}
		return OneOf{Children: children}, nil
	default:
		return parseLeaf(t)
	}
}

// parseLeaf interprets a word token of the form "cluster/dim:qty".
func parseLeaf(t token) (Node, error) {
	slash := strings.IndexByte(t.text, '/')
	colon := strings.LastIndexByte(t.text, ':')
	if slash < 0 || colon < 0 || colon < slash {
		return nil, fmt.Errorf("bidlang:%d: expected cluster/dim:qty leaf, found %q", t.line, t.text)
	}
	cluster := t.text[:slash]
	dimName := t.text[slash+1 : colon]
	qtyText := t.text[colon+1:]
	if cluster == "" {
		return nil, fmt.Errorf("bidlang:%d: empty cluster in %q", t.line, t.text)
	}
	dim, err := resource.ParseDimension(dimName)
	if err != nil {
		return nil, fmt.Errorf("bidlang:%d: %v", t.line, err)
	}
	qty, err := strconv.ParseFloat(qtyText, 64)
	if err != nil {
		return nil, fmt.Errorf("bidlang:%d: bad quantity %q: %v", t.line, qtyText, err)
	}
	if qty == 0 {
		return nil, fmt.Errorf("bidlang:%d: zero quantity in %q", t.line, t.text)
	}
	return Leaf{Pool: resource.Pool{Cluster: cluster, Dim: dim}, Qty: qty}, nil
}
