package optimize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clustermarket/internal/core"
	"clustermarket/internal/resource"
	"clustermarket/internal/sim"
)

func twoPool() *resource.Registry {
	return resource.NewRegistry(
		resource.Pool{Cluster: "a", Dim: resource.CPU},
		resource.Pool{Cluster: "b", Dim: resource.CPU},
	)
}

func TestObjectiveString(t *testing.T) {
	if TotalSurplus.String() != "total-surplus" || TotalTradeValue.String() != "total-trade-value" {
		t.Error("objective names wrong")
	}
	if Objective(9).String() == "" {
		t.Error("unknown objective empty")
	}
}

func TestGreedyPicksHighSurplus(t *testing.T) {
	reg := twoPool()
	reserve := resource.Vector{1, 1}
	bids := []*core.Bid{
		{User: "supply", Limit: -0.01, Bundles: []resource.Vector{{-10, 0}}},
		{User: "low", Limit: 12, Bundles: []resource.Vector{{10, 0}}},  // surplus 2
		{User: "high", Limit: 30, Bundles: []resource.Vector{{10, 0}}}, // surplus 20
	}
	res, err := Greedy(reg, bids, reserve, TotalSurplus)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocations[2] == nil {
		t.Fatal("high-surplus buyer rejected")
	}
	if res.Allocations[1] != nil {
		t.Fatal("low-surplus buyer accepted without supply")
	}
	if res.Allocations[0] == nil {
		t.Fatal("seller rejected")
	}
	// Welfare = seller surplus (−0.01 − (−10)) + buyer surplus 20.
	wantWelfare := (-0.01 + 10.0) + 20.0
	if diff := res.Welfare - wantWelfare; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("welfare = %v, want %v", res.Welfare, wantWelfare)
	}
}

func TestGreedyFeasibility(t *testing.T) {
	reg := twoPool()
	reserve := resource.Vector{1, 1}
	bids := []*core.Bid{
		{User: "s", Limit: -1, Bundles: []resource.Vector{{-5, -5}}},
		{User: "b1", Limit: 100, Bundles: []resource.Vector{{5, 0}}},
		{User: "b2", Limit: 100, Bundles: []resource.Vector{{5, 5}}},
	}
	res, err := Greedy(reg, bids, reserve, TotalSurplus)
	if err != nil {
		t.Fatal(err)
	}
	total := reg.Zero()
	for _, x := range res.Allocations {
		if x != nil {
			total.AddInto(x)
		}
	}
	if !total.AllNonPositive(1e-9) {
		t.Fatalf("infeasible allocation: total = %v", total)
	}
}

func TestGreedyTradeValueObjective(t *testing.T) {
	reg := twoPool()
	reserve := resource.Vector{10, 1}
	bids := []*core.Bid{
		{User: "s", Limit: -0.01, Bundles: []resource.Vector{{-10, -10}}},
		// Low surplus but big trade value (pool a is precious).
		{User: "bigtrade", Limit: 101, Bundles: []resource.Vector{{10, 0}}},
		// Big surplus, small trade value.
		{User: "bigsurplus", Limit: 100, Bundles: []resource.Vector{{0, 10}}},
	}
	res, err := Greedy(reg, bids, reserve, TotalTradeValue)
	if err != nil {
		t.Fatal(err)
	}
	// Both fit; check the welfare counts gross trade value: 10·10 + 10·1
	// bought plus nothing for the seller.
	if res.Allocations[1] == nil || res.Allocations[2] == nil {
		t.Fatal("buyers rejected")
	}
	if res.Welfare < 110-1e-9 {
		t.Errorf("welfare = %v", res.Welfare)
	}
}

func TestExactBeatsOrMatchesGreedy(t *testing.T) {
	// Greedy's density ordering is famously suboptimal for knapsack-like
	// instances: one big bundle worth slightly less than two small ones.
	reg := twoPool()
	reserve := resource.Vector{1, 1}
	bids := []*core.Bid{
		{User: "s", Limit: -0.01, Bundles: []resource.Vector{{-10, 0}}},
		// Density 1.9, takes everything.
		{User: "big", Limit: 29, Bundles: []resource.Vector{{10, 0}}},
		// Density 1.8 each, but together worth more than big.
		{User: "sm1", Limit: 14, Bundles: []resource.Vector{{5, 0}}},
		{User: "sm2", Limit: 14, Bundles: []resource.Vector{{5, 0}}},
	}
	g, err := Greedy(reg, bids, reserve, TotalSurplus)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Exact(reg, bids, reserve, TotalSurplus)
	if err != nil {
		t.Fatal(err)
	}
	if e.Welfare < g.Welfare-1e-9 {
		t.Fatalf("exact (%v) below greedy (%v)", e.Welfare, g.Welfare)
	}
	// In this instance greedy takes "big" (surplus 19); exact should find
	// sm1+sm2 (surplus 9+9 = 18)... which is lower. Construct properly:
	// big surplus 19 vs two smalls 9+9=18: big wins, greedy correct. Flip
	// the numbers so smalls win: see TestExactFindsBetterSplit.
	if len(e.Accepted) == 0 {
		t.Fatal("exact accepted nothing")
	}
}

func TestExactFindsBetterSplit(t *testing.T) {
	reg := twoPool()
	reserve := resource.Vector{1, 1}
	bids := []*core.Bid{
		{User: "s", Limit: -0.01, Bundles: []resource.Vector{{-10, 0}}},
		// Density 2.0 but hogs the whole supply for surplus 10.
		{User: "big", Limit: 20, Bundles: []resource.Vector{{10, 0}}},
		// Density 1.8 each; together surplus 2·8 = 16 > 10.
		{User: "sm1", Limit: 13, Bundles: []resource.Vector{{5, 0}}},
		{User: "sm2", Limit: 13, Bundles: []resource.Vector{{5, 0}}},
	}
	g, err := Greedy(reg, bids, reserve, TotalSurplus)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Exact(reg, bids, reserve, TotalSurplus)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy is fooled by the hog's higher... density (20/10=2 vs 13/5=2.6
	// — actually smalls have higher density here, so greedy gets it
	// right; the point is exact must too).
	if e.Welfare < g.Welfare-1e-9 {
		t.Fatalf("exact (%v) below greedy (%v)", e.Welfare, g.Welfare)
	}
	if e.Allocations[2] == nil || e.Allocations[3] == nil {
		t.Errorf("exact did not take the better split: %v", e.Accepted)
	}
}

func TestExactRespectsXOR(t *testing.T) {
	reg := twoPool()
	reserve := resource.Vector{1, 1}
	bids := []*core.Bid{
		{User: "s", Limit: -0.01, Bundles: []resource.Vector{{-10, -10}}},
		// Two bundles; only one may be granted.
		{User: "x", Limit: 50, Bundles: []resource.Vector{{5, 0}, {0, 5}}},
	}
	e, err := Exact(reg, bids, reserve, TotalSurplus)
	if err != nil {
		t.Fatal(err)
	}
	if e.Allocations[1] == nil {
		t.Fatal("XOR bid rejected")
	}
	// The granted allocation must equal exactly one bundle.
	matches := 0
	for _, q := range bids[1].Bundles {
		if q.Equal(e.Allocations[1], 0) {
			matches++
		}
	}
	if matches != 1 {
		t.Fatalf("allocation matches %d bundles", matches)
	}
}

func TestExactSizeLimit(t *testing.T) {
	reg := twoPool()
	reserve := resource.Vector{1, 1}
	var bids []*core.Bid
	for i := 0; i < MaxExactBids+1; i++ {
		bids = append(bids, &core.Bid{User: "u", Limit: 5, Bundles: []resource.Vector{{1, 0}}})
	}
	if _, err := Exact(reg, bids, reserve, TotalSurplus); err == nil {
		t.Error("oversized instance accepted")
	}
}

func TestValidation(t *testing.T) {
	reg := twoPool()
	ok := []*core.Bid{{User: "u", Limit: 5, Bundles: []resource.Vector{{1, 0}}}}
	if _, err := Greedy(nil, ok, resource.Vector{1, 1}, TotalSurplus); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := Greedy(reg, nil, resource.Vector{1, 1}, TotalSurplus); err == nil {
		t.Error("no bids accepted")
	}
	if _, err := Greedy(reg, ok, resource.Vector{1}, TotalSurplus); err == nil {
		t.Error("short reserve accepted")
	}
	bad := []*core.Bid{{User: "", Limit: 5, Bundles: []resource.Vector{{1, 0}}}}
	if _, err := Greedy(reg, bad, resource.Vector{1, 1}, TotalSurplus); err == nil {
		t.Error("invalid bid accepted")
	}
}

func TestEvaluateWelfareMatchesResults(t *testing.T) {
	reg := twoPool()
	reserve := resource.Vector{1, 1}
	bids := []*core.Bid{
		{User: "s", Limit: -0.01, Bundles: []resource.Vector{{-10, 0}}},
		{User: "b", Limit: 30, Bundles: []resource.Vector{{10, 0}}},
	}
	g, err := Greedy(reg, bids, reserve, TotalSurplus)
	if err != nil {
		t.Fatal(err)
	}
	w, err := EvaluateWelfare(bids, g.Allocations, reserve, TotalSurplus)
	if err != nil {
		t.Fatal(err)
	}
	if diff := w - g.Welfare; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("EvaluateWelfare = %v, Result.Welfare = %v", w, g.Welfare)
	}
	// Mismatched lengths and foreign allocations error.
	if _, err := EvaluateWelfare(bids, nil, reserve, TotalSurplus); err == nil {
		t.Error("length mismatch accepted")
	}
	alien := []resource.Vector{{1, 1}, nil}
	if _, err := EvaluateWelfare(bids, alien, reserve, TotalSurplus); err == nil {
		t.Error("foreign allocation accepted")
	}
}

// TestOptimizerBeatsClockOnWelfareButNotFairness is the quantitative form
// of the paper's Section III.C.4 trade-off: the welfare-optimal allocator
// achieves at least the clock's welfare (the clock "completely ignores
// the objective function"), but its outcome violates the price-fairness
// constraints the clock satisfies by construction.
func TestOptimizerBeatsClockOnWelfareButNotFairness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	reg, bids := sim.SyntheticMarket(rng, 14, 6) // small enough for Exact
	reserve := reg.Zero()
	for i := range reserve {
		reserve[i] = 0.5
	}

	a, err := core.NewAuction(reg, bids, core.Config{
		Start:  reserve,
		Policy: core.Capped{Alpha: 0.05, Delta: 0.5, MinStep: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	clockWelfare, err := EvaluateWelfare(bids, clock.Allocations, reserve, TotalSurplus)
	if err != nil {
		t.Fatal(err)
	}
	// The true optimum dominates the clock: the clock's allocation is one
	// feasible point of the same program.
	exact, err := Exact(reg, bids, reserve, TotalSurplus)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Welfare < clockWelfare-1e-9 {
		t.Errorf("exact welfare %v below clock %v", exact.Welfare, clockWelfare)
	}
	// Greedy should land in the same neighborhood (not guaranteed to beat
	// the clock, but never pathologically worse on this fixed instance).
	greedy, err := Greedy(reg, bids, reserve, TotalSurplus)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Welfare < 0.8*clockWelfare {
		t.Errorf("greedy welfare %v far below clock %v", greedy.Welfare, clockWelfare)
	}
	// The clock outcome is fair at its own prices.
	if n := UnfairnessReport(bids, &Result{Allocations: clock.Allocations, Payments: clock.Payments}, clock.Prices); n != 0 {
		t.Errorf("clock outcome unfair: %d violations", n)
	}
	// The optimizer's outcome, settled at reserve prices, is not.
	if n := UnfairnessReport(bids, exact, reserve); n == 0 {
		t.Log("note: exact outcome happened to be fair on this instance")
	}
}

// TestQuickGreedyAlwaysFeasibleAndExactAtLeastGreedy is the core
// optimizer property pair over random small markets.
func TestQuickGreedyAlwaysFeasibleAndExactAtLeastGreedy(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reg, bids := sim.SyntheticMarket(rng, rng.Intn(10)+3, rng.Intn(4)+2)
		reserve := reg.Zero()
		for i := range reserve {
			reserve[i] = 0.25 + rng.Float64()
		}
		g, err := Greedy(reg, bids, reserve, TotalSurplus)
		if err != nil {
			return false
		}
		total := reg.Zero()
		for _, x := range g.Allocations {
			if x != nil {
				total.AddInto(x)
			}
		}
		if !total.AllNonPositive(1e-9) {
			return false
		}
		e, err := Exact(reg, bids, reserve, TotalSurplus)
		if err != nil {
			return false
		}
		return e.Welfare >= g.Welfare-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
