// Package optimize implements the road not taken in the paper: winner
// determination that explicitly maximizes an operator-chosen objective,
// the "alternative algorithms, based explicitly on optimization" of
// Sections III.C.4 and VI. The paper's clock auction deliberately trades
// optimality for uniform prices, fairness, and tractability; this package
// provides the comparison point.
//
// Two objectives from Section III.B are supported:
//
//   - TotalSurplus: Σ_u (π_u − p̃ᵀx_u), the reported willingness to pay
//     minus the reserve-price value of what each user receives. The
//     formula covers sellers too: with q and π negative it reduces to
//     revenue-above-ask.
//   - TotalTradeValue: Σ_u p̃ᵀx_u⁺, the gross reserve-price value of all
//     resources that change hands.
//
// Greedy accepts sellers with nonnegative surplus (they only add supply)
// and then buyers in descending objective density. Exact solves the same
// problem by branch and bound for small instances, giving tests a true
// optimum to measure the greedy gap against.
//
// Outcomes are settled at the reserve prices p̃, which is precisely why
// the paper rejects this family: the result is feasible and
// high-welfare, but the prices no longer separate winners from losers —
// UnfairnessReport quantifies how many SYSTEM fairness constraints the
// optimized allocation violates.
package optimize

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"clustermarket/internal/core"
	"clustermarket/internal/resource"
)

// Objective selects what the allocator maximizes.
type Objective int

const (
	// TotalSurplus maximizes Σ (π_u − p̃ᵀx_u).
	TotalSurplus Objective = iota
	// TotalTradeValue maximizes Σ p̃ᵀx_u⁺.
	TotalTradeValue
)

func (o Objective) String() string {
	switch o {
	case TotalSurplus:
		return "total-surplus"
	case TotalTradeValue:
		return "total-trade-value"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Result is an optimized allocation settled at reserve prices.
type Result struct {
	// Allocations[i] is the bundle granted to bids[i], nil if rejected.
	Allocations []resource.Vector
	// Payments[i] is p̃ᵀx_i (reserve-price settlement).
	Payments []float64
	// Welfare is the achieved objective value.
	Welfare float64
	// Accepted lists winning bid indices in input order.
	Accepted []int
}

// candidate is one (bid, bundle) pair under consideration.
type candidate struct {
	bid     int
	bundle  int
	surplus float64 // π − p̃ᵀq
	value   float64 // objective contribution
	density float64 // value per unit of demanded quantity
}

// bundleValue computes a candidate's objective contribution.
func bundleValue(obj Objective, surplus float64, q, reserve resource.Vector) float64 {
	switch obj {
	case TotalTradeValue:
		return q.PositivePart().Dot(reserve)
	default:
		return surplus
	}
}

// buildCandidates expands every bid × bundle pair, keeping the best
// bundle per bid per the objective (XOR semantics are enforced during
// search as well, but pre-picking reduces the greedy's choice set for
// buyers; for Exact all bundles are kept).
func buildCandidates(bids []*core.Bid, reserve resource.Vector, obj Objective, keepAll bool) []candidate {
	var out []candidate
	for i, b := range bids {
		bestPer := candidate{bid: -1}
		for j, q := range b.Bundles {
			lim := b.Limit
			if len(b.BundleLimits) > 0 {
				lim = b.BundleLimits[j]
			}
			surplus := lim - q.Dot(reserve)
			c := candidate{
				bid:     i,
				bundle:  j,
				surplus: surplus,
				value:   bundleValue(obj, surplus, q, reserve),
			}
			size := q.PositivePart().Sum()
			if size > 0 {
				c.density = c.value / size
			} else {
				c.density = c.value
			}
			if keepAll {
				out = append(out, c)
				continue
			}
			if bestPer.bid < 0 || c.value > bestPer.value {
				bestPer = c
			}
		}
		if !keepAll && bestPer.bid >= 0 {
			out = append(out, bestPer)
		}
	}
	return out
}

// Greedy computes a welfare-oriented allocation: sellers with nonnegative
// surplus are accepted first (adding supply), then buyers in descending
// density while supply lasts. The allocation always satisfies Σx ≤ 0.
func Greedy(reg *resource.Registry, bids []*core.Bid, reserve resource.Vector, obj Objective) (*Result, error) {
	if err := validate(reg, bids, reserve); err != nil {
		return nil, err
	}
	// Keep every bundle as a candidate: if a bid's best bundle does not
	// fit the remaining supply, a substitute bundle still can — the same
	// substitution flexibility the clock auction exploits.
	cands := buildCandidates(bids, reserve, obj, true)

	// Headroom h = −Σx: available supply per pool.
	h := reg.Zero()
	res := &Result{
		Allocations: make([]resource.Vector, len(bids)),
		Payments:    make([]float64, len(bids)),
	}
	accept := func(c candidate) {
		q := bids[c.bid].Bundles[c.bundle]
		for k, v := range q {
			h[k] -= v
		}
		res.Allocations[c.bid] = q.Clone()
		res.Payments[c.bid] = q.Dot(reserve)
		res.Welfare += c.value
		res.Accepted = append(res.Accepted, c.bid)
	}

	// Phase 1: sellers (pure offers only) with nonnegative surplus, one
	// bundle per bid (XOR).
	for _, c := range sortedBy(cands, func(a, b candidate) bool { return a.surplus > b.surplus }) {
		if res.Allocations[c.bid] != nil {
			continue
		}
		q := bids[c.bid].Bundles[c.bundle]
		if q.PureDirection() == -1 && c.surplus >= 0 {
			accept(c)
		}
	}
	// Phase 2: buyers and traders by density.
	for _, c := range sortedBy(cands, func(a, b candidate) bool { return a.density > b.density }) {
		if res.Allocations[c.bid] != nil {
			continue
		}
		q := bids[c.bid].Bundles[c.bundle]
		if q.PureDirection() == -1 {
			continue
		}
		if c.value <= 0 {
			continue
		}
		fits := true
		for k, v := range q {
			if v > h[k]+1e-12 {
				fits = false
				break
			}
		}
		if fits {
			accept(c)
		}
	}
	sort.Ints(res.Accepted)
	return res, nil
}

// MaxExactBids bounds the branch-and-bound search.
const MaxExactBids = 22

// Exact finds the welfare-optimal allocation by branch and bound over the
// XOR choice per bid. It is exponential and refuses instances above
// MaxExactBids; it exists to measure the greedy gap and as the reference
// implementation for tests.
func Exact(reg *resource.Registry, bids []*core.Bid, reserve resource.Vector, obj Objective) (*Result, error) {
	if err := validate(reg, bids, reserve); err != nil {
		return nil, err
	}
	if len(bids) > MaxExactBids {
		return nil, fmt.Errorf("optimize: Exact limited to %d bids, got %d", MaxExactBids, len(bids))
	}
	// Per-bid options: every bundle plus "reject" (index −1).
	type option struct {
		bundle int
		value  float64
	}
	options := make([][]option, len(bids))
	optimistic := make([]float64, len(bids)+1) // suffix sums of best value
	for i, b := range bids {
		opts := []option{{bundle: -1}}
		best := 0.0
		for j, q := range b.Bundles {
			lim := b.Limit
			if len(b.BundleLimits) > 0 {
				lim = b.BundleLimits[j]
			}
			surplus := lim - q.Dot(reserve)
			v := bundleValue(obj, surplus, q, reserve)
			opts = append(opts, option{bundle: j, value: v})
			if v > best {
				best = v
			}
		}
		options[i] = opts
		optimistic[i] = best
	}
	for i := len(bids) - 1; i >= 0; i-- {
		optimistic[i] += optimistic[i+1]
	}

	bestWelfare := math.Inf(-1)
	bestChoice := make([]int, len(bids))
	choice := make([]int, len(bids))
	total := reg.Zero()

	var dfs func(i int, welfare float64)
	dfs = func(i int, welfare float64) {
		if welfare+optimisticAt(optimistic, i) <= bestWelfare {
			return // bound: even taking every remaining best option loses
		}
		if i == len(bids) {
			if total.AllNonPositive(1e-9) && welfare > bestWelfare {
				bestWelfare = welfare
				copy(bestChoice, choice)
			}
			return
		}
		for _, opt := range options[i] {
			choice[i] = opt.bundle
			if opt.bundle >= 0 {
				q := bids[i].Bundles[opt.bundle]
				total.AddInto(q)
				// Prune infeasible prefixes only when no future seller
				// could repair them; conservatively always recurse —
				// sellers later in the order can add supply. Feasibility
				// is enforced at the leaves.
				dfs(i+1, welfare+opt.value)
				total.AddInto(q.Neg())
			} else {
				dfs(i+1, welfare)
			}
		}
	}
	dfs(0, 0)

	if math.IsInf(bestWelfare, -1) {
		return nil, errors.New("optimize: no feasible allocation (not even the empty one?)")
	}
	res := &Result{
		Allocations: make([]resource.Vector, len(bids)),
		Payments:    make([]float64, len(bids)),
		Welfare:     bestWelfare,
	}
	for i, j := range bestChoice {
		if j < 0 {
			continue
		}
		q := bids[i].Bundles[j]
		res.Allocations[i] = q.Clone()
		res.Payments[i] = q.Dot(reserve)
		res.Accepted = append(res.Accepted, i)
	}
	return res, nil
}

func optimisticAt(suffix []float64, i int) float64 { return suffix[i] }

// EvaluateWelfare scores an arbitrary allocation (for instance the clock
// auction's) under the objective, making clock-vs-optimizer comparisons
// possible.
func EvaluateWelfare(bids []*core.Bid, allocations []resource.Vector, reserve resource.Vector, obj Objective) (float64, error) {
	if len(bids) != len(allocations) {
		return 0, fmt.Errorf("optimize: %d bids but %d allocations", len(bids), len(allocations))
	}
	var welfare float64
	for i, x := range allocations {
		if x == nil {
			continue
		}
		// Identify the bundle to find its governing limit.
		matched := false
		for j, q := range bids[i].Bundles {
			if q.Equal(x, 1e-9) {
				lim := bids[i].Limit
				if len(bids[i].BundleLimits) > 0 {
					lim = bids[i].BundleLimits[j]
				}
				surplus := lim - q.Dot(reserve)
				welfare += bundleValue(obj, surplus, q, reserve)
				matched = true
				break
			}
		}
		if !matched {
			return 0, fmt.Errorf("optimize: allocation %d is not one of the bid's bundles", i)
		}
	}
	return welfare, nil
}

// UnfairnessReport counts how many of the price-based SYSTEM fairness
// constraints (3)–(5) the allocation violates when settled at the given
// uniform prices. The clock auction produces zero by construction;
// optimized allocations generally do not — the quantitative form of the
// paper's fairness argument.
func UnfairnessReport(bids []*core.Bid, res *Result, prices resource.Vector) int {
	cr := &core.Result{
		Converged:   true,
		Prices:      prices,
		Allocations: res.Allocations,
		Payments:    res.Payments,
	}
	count := 0
	for _, v := range core.CheckSystem(bids, cr, 1e-9) {
		if v.Constraint >= 3 && v.Constraint <= 5 {
			count++
		}
	}
	return count
}

func validate(reg *resource.Registry, bids []*core.Bid, reserve resource.Vector) error {
	if reg == nil || reg.Len() == 0 {
		return errors.New("optimize: empty registry")
	}
	if len(bids) == 0 {
		return errors.New("optimize: no bids")
	}
	if len(reserve) != reg.Len() {
		return fmt.Errorf("optimize: reserve has %d components, registry %d", len(reserve), reg.Len())
	}
	for _, b := range bids {
		if err := b.Validate(reg.Len()); err != nil {
			return err
		}
	}
	return nil
}

// sortedBy returns a sorted copy (stable) of the candidates.
func sortedBy(cands []candidate, less func(a, b candidate) bool) []candidate {
	out := append([]candidate(nil), cands...)
	sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}
