package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clustermarket/internal/resource"
)

func TestSparseBundlePacking(t *testing.T) {
	q := resource.Vector{0, 3, 0, -2, 0}
	s := newSparseBundle(q)
	if len(s.idx) != 2 || s.idx[0] != 1 || s.idx[1] != 3 {
		t.Fatalf("idx = %v", s.idx)
	}
	if s.val[0] != 3 || s.val[1] != -2 {
		t.Fatalf("val = %v", s.val)
	}
	p := resource.Vector{10, 20, 30, 40, 50}
	if got, want := s.dot(p), q.Dot(p); got != want {
		t.Errorf("dot = %v, want %v", got, want)
	}
	z := make(resource.Vector, 5)
	s.addInto(z)
	if !z.Equal(q, 0) {
		t.Errorf("addInto = %v", z)
	}
}

func TestSparseEmptyBundle(t *testing.T) {
	s := newSparseBundle(resource.Vector{0, 0})
	if len(s.idx) != 0 {
		t.Fatalf("idx = %v", s.idx)
	}
	if got := s.dot(resource.Vector{5, 5}); got != 0 {
		t.Errorf("dot = %v", got)
	}
}

// TestQuickSparseMatchesDense: the sparse fast path must agree exactly
// with the dense implementation for dot products, accumulation, and the
// proxy's bundle choice.
func TestQuickSparseMatchesDense(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := rng.Intn(12) + 1
		q := make(resource.Vector, r)
		p := make(resource.Vector, r)
		for i := range q {
			if rng.Intn(2) == 0 {
				q[i] = float64(rng.Intn(21) - 10)
			}
			p[i] = rng.Float64() * 5
		}
		s := newSparseBundle(q)
		if d1, d2 := s.dot(p), q.Dot(p); d1 != d2 {
			return false
		}
		z1 := make(resource.Vector, r)
		s.addInto(z1)
		if !z1.Equal(q, 0) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickProxyChooseMatchesBestAffordable: the sparse proxy choice must
// agree with the public dense Bid.BestAffordable on random bids.
func TestQuickProxyChooseMatchesBestAffordable(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := rng.Intn(6) + 2
		nb := rng.Intn(4) + 1
		b := &Bid{User: "q", Limit: float64(rng.Intn(100) + 1)}
		for j := 0; j < nb; j++ {
			q := make(resource.Vector, r)
			q[rng.Intn(r)] = float64(rng.Intn(10) + 1)
			b.Bundles = append(b.Bundles, q)
		}
		if rng.Intn(2) == 0 {
			for range b.Bundles {
				b.BundleLimits = append(b.BundleLimits, float64(rng.Intn(100)+1))
			}
		}
		p := make(resource.Vector, r)
		for i := range p {
			p[i] = rng.Float64() * 20
		}
		px := NewProxy(b)
		got := px.choose(p)
		want, ok := b.BestAffordable(p)
		if !ok {
			want = -1
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
