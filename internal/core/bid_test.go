package core

import (
	"math"
	"testing"

	"clustermarket/internal/resource"
)

func TestBidClass(t *testing.T) {
	cases := []struct {
		name string
		bid  Bid
		want Class
	}{
		{"buyer", Bid{Bundles: []resource.Vector{{1, 0}, {0, 2}}}, PureBuyer},
		{"seller", Bid{Bundles: []resource.Vector{{-1, 0}}}, PureSeller},
		{"mixed bundle", Bid{Bundles: []resource.Vector{{1, -1}}}, Trader},
		{"mixed across bundles", Bid{Bundles: []resource.Vector{{1, 0}, {-1, 0}}}, Trader},
		{"zero bundle counts as buy side", Bid{Bundles: []resource.Vector{{0, 0}}}, PureBuyer},
	}
	for _, c := range cases {
		if got := c.bid.Class(); got != c.want {
			t.Errorf("%s: Class = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	if PureBuyer.String() != "buyer" || PureSeller.String() != "seller" || Trader.String() != "trader" {
		t.Error("Class.String values wrong")
	}
}

func TestBidValidate(t *testing.T) {
	good := Bid{User: "u", Bundles: []resource.Vector{{1, 0}}, Limit: 5}
	if err := good.Validate(2); err != nil {
		t.Errorf("valid bid rejected: %v", err)
	}
	cases := []struct {
		name string
		bid  Bid
	}{
		{"empty user", Bid{Bundles: []resource.Vector{{1}}, Limit: 1}},
		{"no bundles", Bid{User: "u", Limit: 1}},
		{"nan limit", Bid{User: "u", Bundles: []resource.Vector{{1}}, Limit: math.NaN()}},
		{"inf limit", Bid{User: "u", Bundles: []resource.Vector{{1}}, Limit: math.Inf(1)}},
		{"wrong length", Bid{User: "u", Bundles: []resource.Vector{{1, 2}}, Limit: 1}},
		{"nan component", Bid{User: "u", Bundles: []resource.Vector{{math.NaN()}}, Limit: 1}},
		{"zero bundle", Bid{User: "u", Bundles: []resource.Vector{{0}}, Limit: 1}},
		{"seller with positive limit", Bid{User: "u", Bundles: []resource.Vector{{-1}}, Limit: 5}},
	}
	for _, c := range cases {
		if err := c.bid.Validate(1); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestProxyDemandBuyer(t *testing.T) {
	// Buyer indifferent between pools 0 and 1, limit 10.
	b := &Bid{User: "u", Limit: 10, Bundles: []resource.Vector{{5, 0}, {0, 5}}}
	px := NewProxy(b)

	// Pool 1 cheaper: chooses bundle 1.
	d := px.Demand(resource.Vector{2, 1})
	if d == nil || d[1] != 5 {
		t.Fatalf("demand = %v", d)
	}
	if px.ChosenBundle() != 1 {
		t.Errorf("ChosenBundle = %d", px.ChosenBundle())
	}

	// Equal prices: ties break to the lowest index.
	d = px.Demand(resource.Vector{1, 1})
	if px.ChosenBundle() != 0 {
		t.Errorf("tie ChosenBundle = %d", px.ChosenBundle())
	}
	if d == nil || d[0] != 5 {
		t.Fatalf("tie demand = %v", d)
	}

	// Priced out: cheapest bundle costs 5·3 = 15 > 10.
	d = px.Demand(resource.Vector{3, 3})
	if d != nil {
		t.Fatalf("priced-out demand = %v", d)
	}
	if px.ChosenBundle() != -1 {
		t.Errorf("priced-out ChosenBundle = %d", px.ChosenBundle())
	}
}

func TestProxyDemandSeller(t *testing.T) {
	// Seller offers 10 units, requires at least 5 in revenue
	// (Limit = −5). Revenue = −(qᵀp) = 10·p.
	b := &Bid{User: "s", Limit: -5, Bundles: []resource.Vector{{-10}}}
	px := NewProxy(b)

	// p = 1: revenue 10 ≥ 5, so the seller is in.
	if d := px.Demand(resource.Vector{1}); d == nil {
		t.Fatal("seller dropped despite sufficient revenue")
	}
	// p = 0.4: revenue 4 < 5, seller stays out.
	if d := px.Demand(resource.Vector{0.4}); d != nil {
		t.Fatalf("seller active below reserve revenue: %v", d)
	}
}

func TestProxySellerPicksHighestRevenue(t *testing.T) {
	// Seller indifferent between offering in pool 0 or pool 1; argmin of
	// qᵀp maximizes revenue.
	b := &Bid{User: "s", Limit: -1, Bundles: []resource.Vector{{-10, 0}, {0, -10}}}
	px := NewProxy(b)
	d := px.Demand(resource.Vector{2, 3})
	if d == nil || d[1] != -10 {
		t.Fatalf("seller chose %v, want offer in the pricier pool 1", d)
	}
}

func TestCheapestCost(t *testing.T) {
	b := &Bid{User: "u", Limit: 100, Bundles: []resource.Vector{{5, 0}, {0, 4}}}
	if got := b.CheapestCost(resource.Vector{2, 3}); got != 10 {
		t.Errorf("CheapestCost = %v", got)
	}
	if got := b.CheapestCost(resource.Vector{3, 2}); got != 8 {
		t.Errorf("CheapestCost = %v", got)
	}
}

func TestPremium(t *testing.T) {
	if got := Premium(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Premium = %v", got)
	}
	// Sellers: limit −50, received 60 (payment −60): |−50+60|/60 = 1/6.
	if got := Premium(-50, -60); math.Abs(got-1.0/6) > 1e-12 {
		t.Errorf("seller Premium = %v", got)
	}
	if got := Premium(5, 0); got != 0 {
		t.Errorf("zero payment Premium = %v", got)
	}
}
