package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"clustermarket/internal/resource"
)

// ErrNoConvergence is returned when the clock exceeds Config.MaxRounds.
// Section III.C.3 shows markets with traders can cycle forever; the guard
// converts that theoretical hazard into a reportable error.
var ErrNoConvergence = errors.New("core: clock auction did not converge")

// Engine selects the demand-revelation strategy Run uses to drive the
// clock. Both engines produce bit-identical results (prices, allocations,
// payments, drop rounds, history) because the incremental engine
// recomputes stale excess-demand components in the same fixed reduction
// order the dense engine uses; the differential property test enforces
// this.
type Engine int

const (
	// EngineIncremental, the default, re-evaluates only the proxies whose
	// bundles touch a pool whose price moved last round, updating the
	// excess-demand vector by recomputing just the affected components.
	// Each round costs O(affected bidders) instead of O(all bidders) —
	// the planet-scale fast path.
	EngineIncremental Engine = iota
	// EngineDense re-scores every proxy against every bundle and rebuilds
	// the excess-demand vector from scratch each round — the literal
	// Algorithm 1 transcription, kept as the reference implementation.
	EngineDense
)

func (e Engine) String() string {
	switch e {
	case EngineIncremental:
		return "incremental"
	case EngineDense:
		return "dense"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Config parameterizes one clock auction run.
type Config struct {
	// Start is p̃, the starting/reserve price vector. Section IV derives
	// it from utilization; it must be componentwise ≥ 0.
	Start resource.Vector
	// Policy is the price update function g(x, p). Nil selects
	// DefaultPolicy.
	Policy IncrementPolicy
	// Epsilon is the tolerance for the stopping test z(t) ≤ ε. Markets
	// with divisible supply rarely clear exactly; a small positive ε
	// mirrors the paper's observation that supplies and demands rarely
	// "align" perfectly.
	Epsilon float64
	// MaxRounds bounds the clock. Zero selects a generous default.
	MaxRounds int
	// Parallel evaluates bidder proxies on all CPUs each round. The
	// reduction order is fixed, so results are identical to serial runs.
	Parallel bool
	// RecordHistory retains per-round snapshots in Result.History.
	RecordHistory bool
	// Engine selects the demand-revelation strategy; the zero value is
	// EngineIncremental.
	Engine Engine
	// Partition controls the sub-market decomposition (see partition.go):
	// when the bidder–pool graph splits into independent connected
	// components, each component's clock runs on its own scratch —
	// concurrently under Parallel — and the per-component outcomes are
	// merged back in global order, bit-identical to the merged
	// single-clock run. The zero value PartitionAuto enables it;
	// PartitionOff forces the merged loop.
	Partition PartitionMode
}

// DefaultMaxRounds bounds auctions that were not given an explicit limit.
const DefaultMaxRounds = 100000

// Round is one snapshot of the price clock.
type Round struct {
	T             int
	Prices        resource.Vector
	ExcessDemand  resource.Vector
	ActiveBidders int
}

// Result is the auction outcome: final uniform prices, per-bid
// allocations x_u, and payments x_uᵀp.
type Result struct {
	// Converged is false only when MaxRounds was hit; in that case the
	// remaining fields describe the state at the final round.
	Converged bool
	Rounds    int
	// Prices is the final price vector p.
	Prices resource.Vector
	// Allocations[i] is x_u for bids[i]; nil when the bid lost.
	Allocations []resource.Vector
	// Payments[i] is x_uᵀp; negative values are amounts received by
	// sellers. Zero for losers.
	Payments []float64
	// Winners and Losers are bid indices, in input order.
	Winners []int
	Losers  []int
	// ChosenBundle[i] is the index into bids[i].Bundles of the settled
	// bundle, or −1 when the bid lost. Premium statistics for vector-limit
	// bids must be computed against this bundle's limit (Bid.LimitFor),
	// not the scalar Limit, which is ignored when BundleLimits is set.
	ChosenBundle []int
	// DropRound[i] is the round at which bid i last left the auction, or
	// −1 if it was active at the end. A bidder that is priced out and
	// later re-enters (sellers and traders can: rising prices improve
	// their receipts) has its drop round cleared on re-entry, so the
	// diagnostic always agrees with History.ActiveBidders.
	DropRound []int
	// History holds per-round snapshots when Config.RecordHistory is set.
	History []Round
}

// IsWinner reports whether bid i won.
func (r *Result) IsWinner(i int) bool { return r.Allocations[i] != nil }

// TotalTraded returns the sum over winners of the positive parts of their
// allocations: the gross quantity of resources that changed hands (the
// "total value of trade" numerator in Section III.B, in units).
func (r *Result) TotalTraded() resource.Vector {
	if len(r.Allocations) == 0 {
		return nil
	}
	var out resource.Vector
	for _, x := range r.Allocations {
		if x == nil {
			continue
		}
		if out == nil {
			out = make(resource.Vector, len(x))
		}
		out.AddInto(x.PositivePart())
	}
	return out
}

// Auction couples a registry, the sealed bids, and a configuration.
//
// An Auction may be run repeatedly, but its runs must not overlap: the
// clock's working vectors live in per-auction scratch buffers (allocated
// on first use, reused afterwards) so a steady-state round performs zero
// heap allocations. Concurrent auctions each need their own Auction.
type Auction struct {
	reg     *resource.Registry
	bids    []*Bid
	proxies []*Proxy
	cfg     Config
	// incIndex caches the incremental engine's inverted pool→proxies
	// index; bids are frozen after NewAuction, so it is built once and
	// shared across Run calls.
	incIndex *incrementalIndex
	// incState is the incremental engine's reusable working set (dirty
	// sets, epoch marks); reset at the top of each run.
	incState *incrementalState
	// part caches the sub-market decomposition (nil when partitioning is
	// off, unsupported, or the market is one connected component); like
	// incIndex it is derived from the frozen bid set, built once on first
	// use, and shared across Run calls. partBuilt distinguishes "not yet
	// decided" from a cached nil decision.
	part      *partitionState
	partBuilt bool
	// sc holds the round loop's scratch vectors, shared by both engines.
	sc runScratch
}

// runScratch is the per-auction working set of one clock run: the price
// vector, the excess-demand accumulator, the policy step, and the
// per-proxy bundle choices. All four are sized on first use and reused
// across runs so the round loop never allocates.
type runScratch struct {
	p, z, step resource.Vector
	choices    []int
}

// prepare sizes the scratch for a run: p starts at the reserve prices, z
// zeroed, step left for StepInto's full overwrite, choices ready for the
// round-0 full evaluation.
//
//marketlint:allocfree
func (a *Auction) prepare() (p, z resource.Vector, choices []int) {
	r := len(a.cfg.Start)
	a.sc.p = a.sc.p.CopyFrom(a.cfg.Start)
	a.sc.z = a.sc.z.Resize(r)
	a.sc.z.SetZero()
	a.sc.step = a.sc.step.Resize(r)
	if cap(a.sc.choices) < len(a.proxies) {
		a.sc.choices = make([]int, len(a.proxies))
	}
	a.sc.choices = a.sc.choices[:len(a.proxies)]
	return a.sc.p, a.sc.z, a.sc.choices
}

// NewAuction validates the inputs and prepares proxies. Bids are held by
// reference; they must not be mutated during Run.
func NewAuction(reg *resource.Registry, bids []*Bid, cfg Config) (*Auction, error) {
	if reg == nil || reg.Len() == 0 {
		return nil, errors.New("core: auction needs a non-empty registry")
	}
	if len(bids) == 0 {
		return nil, errors.New("core: auction needs at least one bid")
	}
	if cfg.Policy == nil {
		cfg.Policy = DefaultPolicy()
	}
	if err := validatePolicy(cfg.Policy); err != nil {
		return nil, err
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	if cfg.Epsilon < 0 {
		return nil, errors.New("core: negative epsilon")
	}
	if cfg.Partition != PartitionAuto && cfg.Partition != PartitionOff {
		return nil, fmt.Errorf("core: unknown partition mode %d", int(cfg.Partition))
	}
	if len(cfg.Start) != reg.Len() {
		return nil, fmt.Errorf("core: start prices have %d components, registry has %d pools", len(cfg.Start), reg.Len())
	}
	if err := cfg.Start.Validate(); err != nil {
		return nil, fmt.Errorf("core: start prices: %v", err)
	}
	if !cfg.Start.AllNonNegative(0) {
		return nil, errors.New("core: start prices must be nonnegative")
	}
	proxies := make([]*Proxy, len(bids))
	for i, b := range bids {
		if err := b.Validate(reg.Len()); err != nil {
			return nil, err
		}
		proxies[i] = NewProxy(b)
	}
	return &Auction{reg: reg, bids: bids, proxies: proxies, cfg: cfg}, nil
}

// Bids returns the auction's bids in input order.
func (a *Auction) Bids() []*Bid { return a.bids }

// Classes tallies the bidder classes, used to predict convergence per
// Section III.C.3.
func (a *Auction) Classes() (buyers, sellers, traders int) {
	for _, b := range a.bids {
		switch b.Class() {
		case PureBuyer:
			buyers++
		case PureSeller:
			sellers++
		default:
			traders++
		}
	}
	return
}

// ConvergenceGuaranteed reports whether the Section III.C.3 sufficient
// condition holds: every participant is a pure buyer or a pure seller.
func (a *Auction) ConvergenceGuaranteed() bool {
	_, _, traders := a.Classes()
	return traders == 0
}

// Run executes Algorithm 1: collect proxy demands, stop when excess
// demand is nonpositive, otherwise raise prices and repeat. On
// non-convergence it returns ErrNoConvergence together with the partial
// Result for diagnosis. Config.Engine selects between the incremental
// engine (the default; see incremental.go) and the dense reference
// implementation; their results are bit-identical.
func (a *Auction) Run() (*Result, error) { return a.RunReusing(nil) }

// RunReusing is Run with Result recycling: when res is non-nil (typically
// the outcome of an earlier run of this auction), its slices — including
// per-winner allocation vectors and recorded history rounds — are
// overwritten in place instead of reallocated, so a steady-state re-run
// performs zero heap allocations. The returned Result is res itself; the
// previous outcome it carried is destroyed. Pass nil for a fresh Result.
//
//marketlint:allocfree
func (a *Auction) RunReusing(res *Result) (*Result, error) {
	res = a.resetResult(res)
	if ps := a.partition(); ps != nil {
		return a.runPartitioned(ps, res)
	}
	return a.runMerged(res)
}

// runMerged dispatches the classic single-clock engines. It is both the
// non-partitioned path and the fallback the partitioned driver uses to
// reproduce globally-coupled error semantics exactly.
//
//marketlint:allocfree
func (a *Auction) runMerged(res *Result) (*Result, error) {
	res = a.resetResult(res)
	if a.cfg.Engine == EngineDense {
		return a.runDense(res)
	}
	return a.runIncremental(res)
}

// resetResult prepares res for (re)use: slices are truncated in place
// with capacity kept, and the drop-round diagnostics reset.
//
//marketlint:allocfree
func (a *Auction) resetResult(res *Result) *Result {
	if res == nil {
		res = &Result{}
	}
	n := len(a.bids)
	if cap(res.DropRound) < n {
		res.DropRound = make([]int, n)
	}
	res.DropRound = res.DropRound[:n]
	for i := range res.DropRound {
		res.DropRound[i] = -1
	}
	res.Converged = false
	res.Rounds = 0
	res.Winners = res.Winners[:0]
	res.Losers = res.Losers[:0]
	res.History = res.History[:0]
	return res
}

// appendRound records one history snapshot, reusing the vectors of a
// recycled Round beyond len(h) when RunReusing supplied one.
//
//marketlint:allocfree
func appendRound(h []Round, t int, p, z resource.Vector, active int) []Round {
	if len(h) < cap(h) {
		h = h[:len(h)+1]
		r := &h[len(h)-1]
		r.T, r.ActiveBidders = t, active
		r.Prices = r.Prices.CopyFrom(p)
		r.ExcessDemand = r.ExcessDemand.CopyFrom(z)
		return h
	}
	//marketlint:allow allocfree history growth: runs once per new history depth, then the rounds above are recycled
	return append(h, Round{T: t, Prices: p.Clone(), ExcessDemand: z.Clone(), ActiveBidders: active})
}

// runDense is the literal Algorithm 1 loop: every proxy is re-scored at
// the new prices each round and the excess-demand vector is rebuilt from
// scratch. It is quadratic in practice and kept as the reference the
// incremental engine is differentially tested against.
//
//marketlint:allocfree
func (a *Auction) runDense(res *Result) (*Result, error) {
	// choices[i] is the bundle index demanded by proxy i this round, or
	// −1 when priced out. Working with indices keeps the round loop on
	// the sparse fast path; all four working buffers are per-auction
	// scratch, so a steady-state round allocates nothing.
	p, z, choices := a.prepare()
	step := a.sc.step

	for t := 0; t < a.cfg.MaxRounds; t++ {
		active := a.collect(p, choices)
		z.SetZero()
		for i, c := range choices {
			if c >= 0 {
				a.proxies[i].sparse[c].addInto(z)
				// An active bidder is not dropped — clear any stale drop
				// round from an earlier priced-out stretch (sellers and
				// traders re-enter as prices rise).
				res.DropRound[i] = -1
			} else if res.DropRound[i] < 0 {
				res.DropRound[i] = t
			}
		}
		if a.cfg.RecordHistory {
			res.History = appendRound(res.History, t, p, z, active)
		}
		if z.AllNonPositive(a.cfg.Epsilon) {
			res.Converged = true
			res.Rounds = t + 1
			a.settle(res, p, choices)
			return res, nil
		}
		a.cfg.Policy.StepInto(step, z, p)
		if !step.AllNonNegative(0) {
			//marketlint:allow allocfree error path; the run is abandoned
			return nil, fmt.Errorf("core: policy %s produced a negative step", a.cfg.Policy.Name())
		}
		if step.MaxAbs() == 0 {
			// The policy refused to move despite excess demand; without
			// progress the loop would spin forever.
			//marketlint:allow allocfree error path; the run is abandoned
			return nil, fmt.Errorf("core: policy %s stalled with positive excess demand at round %d", a.cfg.Policy.Name(), t)
		}
		p.AddInto(step)
	}

	res.Converged = false
	res.Rounds = a.cfg.MaxRounds
	a.settle(res, p, choices)
	return res, ErrNoConvergence
}

// parallelThreshold is the smallest evaluation batch worth fanning out
// over worker goroutines; below it, spawn overhead dominates.
const parallelThreshold = 64

// collect evaluates every proxy at prices p into choices, returning the
// number of active bidders. With cfg.Parallel it fans the loop out over
// GOMAXPROCS workers; the choices slice is indexed by bidder so the
// result is deterministic either way.
//
//marketlint:allocfree
func (a *Auction) collect(p resource.Vector, choices []int) int {
	if !a.cfg.Parallel || len(a.proxies) < parallelThreshold {
		active := 0
		for i, px := range a.proxies {
			choices[i] = px.choose(p)
			if choices[i] >= 0 {
				active++
			}
		}
		return active
	}
	//marketlint:allow allocfree opt-in parallel fan-out; spawn cost is amortized over ≥64 evaluations
	return a.collectParallel(p, choices)
}

// collectParallel is collect's goroutine fan-out over GOMAXPROCS
// workers; choices slots are disjoint per worker, so the result matches
// the serial loop.
func (a *Auction) collectParallel(p resource.Vector, choices []int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(a.proxies) {
		workers = len(a.proxies)
	}
	var wg sync.WaitGroup
	chunk := (len(a.proxies) + workers - 1) / workers
	counts := make([]int, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(a.proxies) {
			hi = len(a.proxies)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			n := 0
			for i := lo; i < hi; i++ {
				choices[i] = a.proxies[i].choose(p)
				if choices[i] >= 0 {
					n++
				}
			}
			counts[w] = n
		}(w, lo, hi)
	}
	wg.Wait()
	active := 0
	for _, n := range counts {
		active += n
	}
	return active
}

// settle freezes the outcome at final prices: winners receive their
// demanded bundle and pay its cost; everyone else loses. The Result's
// slices (and per-winner allocation vectors) are reused in place when
// RunReusing recycled them, so the settled outcome never aliases the
// auction's scratch buffers.
//
//marketlint:allocfree
func (a *Auction) settle(res *Result, p resource.Vector, choices []int) {
	n := len(a.bids)
	res.Prices = res.Prices.CopyFrom(p)
	if cap(res.Allocations) < n {
		res.Allocations = make([]resource.Vector, n)
	}
	res.Allocations = res.Allocations[:n]
	if cap(res.Payments) < n {
		res.Payments = make([]float64, n)
	}
	res.Payments = res.Payments[:n]
	if cap(res.ChosenBundle) < n {
		res.ChosenBundle = make([]int, n)
	}
	res.ChosenBundle = res.ChosenBundle[:n]
	res.Winners, res.Losers = res.Winners[:0], res.Losers[:0]
	for i, c := range choices {
		res.ChosenBundle[i] = c
		if c < 0 {
			res.Allocations[i] = nil
			res.Payments[i] = 0
			res.Losers = append(res.Losers, i)
			continue
		}
		q := a.bids[i].Bundles[c]
		res.Allocations[i] = res.Allocations[i].CopyFrom(q)
		res.Payments[i] = a.proxies[i].sparse[c].dot(p)
		res.Winners = append(res.Winners, i)
	}
}

// PriceCeiling returns, for a market of pure buyers and sellers, an upper
// bound on any pool's final price: the largest per-unit price any buyer
// can afford at its smallest bundle, plus the starting price. It is the
// constructive form of the Section III.C.3 convergence argument and is
// used by the property tests to bound round counts.
func PriceCeiling(bids []*Bid, start resource.Vector) float64 {
	ceiling := 0.0
	for _, b := range bids {
		if b.Class() != PureBuyer {
			continue
		}
		for _, q := range b.Bundles {
			minQty := 0.0
			for _, x := range q {
				if x > 0 && (minQty == 0 || x < minQty) {
					minQty = x
				}
			}
			if minQty > 0 {
				if c := b.Limit / minQty; c > ceiling {
					ceiling = c
				}
			}
		}
	}
	return ceiling + start.MaxAbs()
}
