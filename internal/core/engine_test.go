package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"clustermarket/internal/resource"
)

// randomMixedMarket builds a random market over reg mixing pure buyers,
// pure sellers, and traders, with both scalar and vector (per-bundle)
// limits — the full input space the incremental engine must match the
// dense engine over.
func randomMixedMarket(rng *rand.Rand, reg *resource.Registry) []*Bid {
	n := rng.Intn(40) + 4
	bids := make([]*Bid, 0, n)
	for u := 0; u < n; u++ {
		nAlt := rng.Intn(3) + 1
		bundles := make([]resource.Vector, 0, nAlt)
		kind := rng.Intn(4) // 0,1: buyer  2: seller  3: trader
		for a := 0; a < nAlt; a++ {
			v := make(resource.Vector, reg.Len())
			for k := 0; k < rng.Intn(3)+1; k++ {
				q := float64(rng.Intn(20) + 1)
				switch {
				case kind == 2:
					q = -q
				case kind == 3 && rng.Intn(2) == 0:
					q = -q
				}
				v[rng.Intn(reg.Len())] = q
			}
			if v.IsZero() {
				v[rng.Intn(reg.Len())] = 1
			}
			bundles = append(bundles, v)
		}
		b := &Bid{User: fmt.Sprintf("u%d", u), Bundles: bundles}
		// Limit signs must respect Validate: a bid that came out a pure
		// seller (all offers) needs nonpositive limits.
		limit := func() float64 {
			if b.Class() == PureSeller {
				return -float64(rng.Intn(100) + 1)
			}
			return float64(rng.Intn(250) + 10)
		}
		if rng.Intn(2) == 0 {
			b.BundleLimits = make([]float64, len(bundles))
			for i := range b.BundleLimits {
				b.BundleLimits[i] = limit()
			}
		} else {
			b.Limit = limit()
		}
		bids = append(bids, b)
	}
	return bids
}

// mustEqualResults requires the two engines' outcomes to be bit-identical
// across every Result field, including per-round history.
func mustEqualResults(t *testing.T, tag string, dense, inc *Result) {
	t.Helper()
	if dense.Converged != inc.Converged || dense.Rounds != inc.Rounds {
		t.Fatalf("%s: converged/rounds = %v/%d vs %v/%d",
			tag, dense.Converged, dense.Rounds, inc.Converged, inc.Rounds)
	}
	exact := func(name string, a, b resource.Vector) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %s length %d vs %d", tag, name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: %s[%d] = %v vs %v", tag, name, i, a[i], b[i])
			}
		}
	}
	exact("prices", dense.Prices, inc.Prices)
	exactInts := func(name string, a, b []int) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %s length %d vs %d", tag, name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: %s[%d] = %d vs %d", tag, name, i, a[i], b[i])
			}
		}
	}
	exactInts("winners", dense.Winners, inc.Winners)
	exactInts("losers", dense.Losers, inc.Losers)
	exactInts("chosenBundle", dense.ChosenBundle, inc.ChosenBundle)
	exactInts("dropRound", dense.DropRound, inc.DropRound)
	for i := range dense.Payments {
		if dense.Payments[i] != inc.Payments[i] {
			t.Fatalf("%s: payment[%d] = %v vs %v", tag, i, dense.Payments[i], inc.Payments[i])
		}
		dx, ix := dense.Allocations[i], inc.Allocations[i]
		if (dx == nil) != (ix == nil) {
			t.Fatalf("%s: allocation[%d] nil mismatch", tag, i)
		}
		if dx != nil {
			exact(fmt.Sprintf("allocation[%d]", i), dx, ix)
		}
	}
	if len(dense.History) != len(inc.History) {
		t.Fatalf("%s: history length %d vs %d", tag, len(dense.History), len(inc.History))
	}
	for r := range dense.History {
		dh, ih := dense.History[r], inc.History[r]
		if dh.T != ih.T || dh.ActiveBidders != ih.ActiveBidders {
			t.Fatalf("%s: round %d T/active = %d/%d vs %d/%d",
				tag, r, dh.T, dh.ActiveBidders, ih.T, ih.ActiveBidders)
		}
		exact(fmt.Sprintf("history[%d].prices", r), dh.Prices, ih.Prices)
		exact(fmt.Sprintf("history[%d].z", r), dh.ExcessDemand, ih.ExcessDemand)
	}
}

// TestIncrementalMatchesDenseDifferential is the determinism contract of
// the incremental engine: over randomized registries and markets of
// buyers, sellers, and traders (scalar and vector limits, converging and
// non-converging clocks, serial and parallel evaluation), its results
// are bit-identical to the dense reference engine — same prices, same
// allocations and payments, same winners and drop rounds, same per-round
// history. The reduction order is fixed, so exact float equality is the
// assertion, not a tolerance.
func TestIncrementalMatchesDenseDifferential(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pools := make([]resource.Pool, rng.Intn(7)+2)
		for i := range pools {
			pools[i] = resource.Pool{Cluster: fmt.Sprintf("c%d", i), Dim: resource.CPU}
		}
		reg := resource.NewRegistry(pools...)
		bids := randomMixedMarket(rng, reg)
		start := make(resource.Vector, reg.Len())
		for i := range start {
			start[i] = rng.Float64() * 2
		}
		cfg := Config{
			Start: start,
			Policy: Capped{
				Alpha:   0.01 + rng.Float64()*0.1,
				Delta:   0.2 + rng.Float64(),
				MinStep: 0.005,
			},
			Epsilon:       float64(rng.Intn(2)) * 0.01,
			MaxRounds:     300,
			Parallel:      seed%3 == 0,
			RecordHistory: true,
		}

		run := func(engine Engine) (*Result, error) {
			c := cfg
			c.Engine = engine
			a, err := NewAuction(reg, bids, c)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return a.Run()
		}
		dense, denseErr := run(EngineDense)
		inc, incErr := run(EngineIncremental)
		if (denseErr == nil) != (incErr == nil) || !errors.Is(incErr, denseErr) && incErr != nil && denseErr != nil {
			t.Fatalf("seed %d: errors differ: dense=%v incremental=%v", seed, denseErr, incErr)
		}
		if dense == nil || inc == nil {
			t.Fatalf("seed %d: nil result: dense=%v incremental=%v", seed, denseErr, incErr)
		}
		mustEqualResults(t, fmt.Sprintf("seed %d", seed), dense, inc)
	}
}

// TestDropRoundClearedOnReEntry pins the re-entry fix: a seller priced
// out at the reserve prices (its receipts are below its limit) re-enters
// once the clock lifts its pool high enough, so its drop round must be
// cleared — the old behavior froze the first drop round forever and
// contradicted History.ActiveBidders.
func TestDropRoundClearedOnReEntry(t *testing.T) {
	reg := resource.NewRegistry(resource.Pool{Cluster: "r1", Dim: resource.CPU})
	bids := []*Bid{
		// Wants at least 50 for 10 units: priced out below 5/unit.
		{User: "seller", Limit: -50, Bundles: []resource.Vector{{-10}}},
		{User: "buyer", Limit: 1000, Bundles: []resource.Vector{{10}}},
	}
	for _, engine := range []Engine{EngineDense, EngineIncremental} {
		a, err := NewAuction(reg, bids, Config{
			Start:         resource.Vector{1},
			Policy:        Capped{Alpha: 0.5, Delta: 1, MinStep: 0.1},
			RecordHistory: true,
			Engine:        engine,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run()
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if !res.Converged {
			t.Fatalf("%v: did not converge", engine)
		}
		if !res.IsWinner(0) || !res.IsWinner(1) {
			t.Fatalf("%v: winners = %v", engine, res.Winners)
		}
		// The seller was inactive in round 0 (one active bidder) and
		// active at the end — DropRound must agree with the history.
		if res.History[0].ActiveBidders != 1 {
			t.Fatalf("%v: round 0 active = %d, want 1", engine, res.History[0].ActiveBidders)
		}
		if last := res.History[len(res.History)-1].ActiveBidders; last != 2 {
			t.Fatalf("%v: final active = %d, want 2", engine, last)
		}
		if res.DropRound[0] != -1 {
			t.Errorf("%v: re-entered seller DropRound = %d, want -1", engine, res.DropRound[0])
		}
		if res.DropRound[1] != -1 {
			t.Errorf("%v: always-active buyer DropRound = %d, want -1", engine, res.DropRound[1])
		}
	}
}

// TestPureBuyerRetirementIsFinal checks the incremental engine's
// retirement rule at the Result level: a priced-out pure buyer never
// reappears (its drop round sticks), while the engine still settles the
// rest of the market identically to the dense path.
func TestPureBuyerRetirementIsFinal(t *testing.T) {
	reg := resource.NewRegistry(resource.Pool{Cluster: "r1", Dim: resource.CPU})
	bids := []*Bid{
		{User: "op", Limit: -0.01, Bundles: []resource.Vector{{-10}}},
		{User: "poor", Limit: 25, Bundles: []resource.Vector{{10}}},
		{User: "rich", Limit: 400, Bundles: []resource.Vector{{10}}},
	}
	a, err := NewAuction(reg, bids, Config{
		Start:         resource.Vector{1},
		Policy:        Capped{Alpha: 0.05, Delta: 0.2, MinStep: 0.05},
		RecordHistory: true,
		Engine:        EngineIncremental,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.IsWinner(1) {
		t.Error("poor buyer won")
	}
	drop := res.DropRound[1]
	if drop < 0 {
		t.Fatal("poor buyer has no drop round")
	}
	// After its drop round, the active-bidder counts never include it
	// again: retirement is permanent.
	for _, h := range res.History[drop:] {
		if h.ActiveBidders > 2 {
			t.Fatalf("round %d active = %d after buyer dropped", h.T, h.ActiveBidders)
		}
	}
}

// TestRunReusingMatchesFreshRun pins RunReusing's recycling contract:
// re-running an auction into a recycled Result — including one recycled
// across engines and history modes — yields outcomes bit-identical to a
// fresh Run.
func TestRunReusingMatchesFreshRun(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		pools := make([]resource.Pool, rng.Intn(5)+2)
		for i := range pools {
			pools[i] = resource.Pool{Cluster: fmt.Sprintf("c%d", i), Dim: resource.CPU}
		}
		reg := resource.NewRegistry(pools...)
		bids := randomMixedMarket(rng, reg)
		start := make(resource.Vector, reg.Len())
		for i := range start {
			start[i] = rng.Float64() * 2
		}
		for _, engine := range []Engine{EngineDense, EngineIncremental} {
			a, err := NewAuction(reg, bids, Config{
				Start:         start,
				Policy:        Capped{Alpha: 0.05, Delta: 0.5, MinStep: 0.01},
				MaxRounds:     300,
				RecordHistory: seed%2 == 0,
				Engine:        engine,
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			fresh, freshErr := a.Run()
			if fresh == nil {
				t.Fatalf("seed %d: nil result (%v)", seed, freshErr)
			}
			// Recycle twice: the second pass exercises fully warmed scratch.
			reused, reusedErr := a.RunReusing(&Result{})
			for pass := 0; pass < 2; pass++ {
				if (freshErr == nil) != (reusedErr == nil) {
					t.Fatalf("seed %d %v: errors differ: %v vs %v", seed, engine, freshErr, reusedErr)
				}
				mustEqualResults(t, fmt.Sprintf("seed %d %v pass %d", seed, engine, pass), fresh, reused)
				reused, reusedErr = a.RunReusing(reused)
			}
		}
	}
}

// TestSteadyStateRoundsAllocationFree pins the zero-allocation contract
// of the refactored round loop: once an auction's scratch buffers are
// warm, re-running it through RunReusing performs no heap allocations at
// all — with and without history recording, on both engines.
func TestSteadyStateRoundsAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	reg := resource.NewRegistry(
		resource.Pool{Cluster: "c0", Dim: resource.CPU},
		resource.Pool{Cluster: "c1", Dim: resource.CPU},
		resource.Pool{Cluster: "c2", Dim: resource.CPU},
	)
	bids := randomMixedMarket(rng, reg)
	start := resource.Vector{0.5, 0.5, 0.5}
	for _, history := range []bool{false, true} {
		for _, engine := range []Engine{EngineDense, EngineIncremental} {
			a, err := NewAuction(reg, bids, Config{
				Start:         start,
				Policy:        Capped{Alpha: 0.05, Delta: 0.5, MinStep: 0.01},
				MaxRounds:     300,
				RecordHistory: history,
				Engine:        engine,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := a.Run() // warm the scratch and the Result
			if res == nil {
				t.Fatalf("%v: nil result (%v)", engine, err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				res, _ = a.RunReusing(res)
			})
			if allocs != 0 {
				t.Errorf("%v (history=%v): %.1f allocs per steady-state run, want 0", engine, history, allocs)
			}
		}
	}
}
