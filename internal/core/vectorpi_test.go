package core

import (
	"testing"

	"clustermarket/internal/resource"
)

// Tests for the vector-π extension mentioned in Section II: distinct
// valuations per bundle.

func TestVectorPiValidation(t *testing.T) {
	good := Bid{
		User:         "v",
		Bundles:      []resource.Vector{{5, 0}, {0, 5}},
		BundleLimits: []float64{10, 8},
	}
	if err := good.Validate(2); err != nil {
		t.Errorf("valid vector-pi bid rejected: %v", err)
	}
	bad := Bid{
		User:         "v",
		Bundles:      []resource.Vector{{5, 0}, {0, 5}},
		BundleLimits: []float64{10},
	}
	if err := bad.Validate(2); err == nil {
		t.Error("mismatched bundle limits accepted")
	}
	// Pure seller with one positive per-bundle limit.
	seller := Bid{
		User:         "s",
		Bundles:      []resource.Vector{{-5, 0}, {0, -5}},
		BundleLimits: []float64{-1, 2},
	}
	if err := seller.Validate(2); err == nil {
		t.Error("seller with positive bundle limit accepted")
	}
}

func TestVectorPiMaxLimit(t *testing.T) {
	b := Bid{Limit: 7, Bundles: []resource.Vector{{1}}}
	if b.MaxLimit() != 7 {
		t.Errorf("scalar MaxLimit = %v", b.MaxLimit())
	}
	b.BundleLimits = []float64{3, 9, 5}
	if b.MaxLimit() != 9 {
		t.Errorf("vector MaxLimit = %v", b.MaxLimit())
	}
}

func TestVectorPiProxyPicksMaxSurplus(t *testing.T) {
	// Bundle 0 is cheaper but the user values bundle 1 far more: with
	// vector limits the proxy must pick the larger-surplus bundle 1, not
	// the cheaper bundle 0.
	b := &Bid{
		User:         "v",
		Bundles:      []resource.Vector{{5, 0}, {0, 5}},
		BundleLimits: []float64{6, 20},
	}
	px := NewProxy(b)
	d := px.Demand(resource.Vector{1, 2}) // costs: 5 and 10; surpluses: 1 and 10
	if d == nil || d[1] != 5 {
		t.Fatalf("demand = %v, want bundle 1", d)
	}
	if px.ChosenBundle() != 1 {
		t.Errorf("ChosenBundle = %d", px.ChosenBundle())
	}
	// Raise prices so only bundle 0 stays affordable.
	d = px.Demand(resource.Vector{1, 5}) // costs: 5 and 25; bundle 1 over its 20 limit
	if d == nil || d[0] != 5 {
		t.Fatalf("demand = %v, want bundle 0", d)
	}
	// Price both out.
	if d := px.Demand(resource.Vector{2, 10}); d != nil {
		t.Fatalf("demand = %v, want nil", d)
	}
}

func TestVectorPiAuctionSatisfiesSystem(t *testing.T) {
	reg := resource.NewRegistry(
		resource.Pool{Cluster: "a", Dim: resource.CPU},
		resource.Pool{Cluster: "b", Dim: resource.CPU},
	)
	bids := []*Bid{
		{User: "op", Limit: -0.01, Bundles: []resource.Vector{{-20, -20}}},
		// Values cluster a at 100 and cluster b at only 30 for the same
		// quantity (e.g. data locality).
		{
			User:         "locality",
			Bundles:      []resource.Vector{{10, 0}, {0, 10}},
			BundleLimits: []float64{100, 30},
		},
		// A competitor pushes cluster a's price up.
		{User: "rival", Limit: 200, Bundles: []resource.Vector{{15, 0}}},
	}
	a, err := NewAuction(reg, bids, Config{
		Start:  resource.Vector{1, 1},
		Policy: Capped{Alpha: 0.05, Delta: 0.2, MinStep: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckSystem(bids, res, 1e-9); len(v) != 0 {
		t.Fatalf("SYSTEM violations: %v", v)
	}
	// The locality bidder must have gotten one of its bundles or been
	// priced out of both — and if it won bundle b, its payment respects
	// the lower 30 limit.
	if res.IsWinner(1) {
		x := res.Allocations[1]
		if x[1] == 10 && res.Payments[1] > 30 {
			t.Errorf("paid %v for the low-value bundle", res.Payments[1])
		}
	}
}

func TestVectorPiCheckSystemCatchesWrongChoice(t *testing.T) {
	bids := []*Bid{{
		User:         "v",
		Bundles:      []resource.Vector{{5, 0}, {0, 5}},
		BundleLimits: []float64{6, 20},
	}}
	// At p = (1,1) both bundles cost 5; surpluses 1 and 15. Allocating
	// bundle 0 violates optimality (4).
	res := &Result{
		Converged:   true,
		Prices:      resource.Vector{1, 1},
		Allocations: []resource.Vector{{5, 0}},
		Payments:    []float64{5},
		Winners:     []int{0},
	}
	var found bool
	for _, v := range CheckSystem(bids, res, 1e-9) {
		if v.Constraint == 4 {
			found = true
		}
	}
	if !found {
		t.Error("suboptimal bundle choice not flagged")
	}
}

func TestVectorPiCheckSystemLoserPerBundleLimits(t *testing.T) {
	bids := []*Bid{{
		User:         "v",
		Bundles:      []resource.Vector{{5, 0}, {0, 5}},
		BundleLimits: []float64{4, 100},
	}}
	// Bundle 1 is easily affordable at p=(1,1): a "loser" here is wrong.
	res := &Result{
		Converged:   true,
		Prices:      resource.Vector{1, 1},
		Allocations: []resource.Vector{nil},
		Payments:    []float64{0},
		Losers:      []int{0},
	}
	var found bool
	for _, v := range CheckSystem(bids, res, 1e-9) {
		if v.Constraint == 5 {
			found = true
		}
	}
	if !found {
		t.Error("affordable loser not flagged under vector limits")
	}
}
