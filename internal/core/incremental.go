package core

import (
	"fmt"
	"runtime"
	"sync"

	"clustermarket/internal/resource"
)

// This file implements EngineIncremental, the planet-scale fast path of
// Algorithm 1. The dense engine re-scores every proxy every round, but a
// round's price step only raises the over-demanded pools: a proxy none of
// whose bundles touches a raised pool sees identical bundle costs and
// provably repeats its previous choice. The incremental engine therefore
// maintains an inverted index from pool to the proxies touching it,
// derives the dirty-pool set from the step's positive components,
// re-evaluates only the affected proxies, and refreshes only the
// excess-demand components those proxies' old and new bundles touch.
//
// Determinism contract: results are bit-identical to the dense engine.
// Excess demand is never updated by adding/subtracting deltas — floating
// point addition is not associative, so delta updates would drift in the
// low bits and the two engines' clocks would diverge. Instead each stale
// pool's component is re-summed from zero over the pool's proxy list in
// ascending proxy order, which replays the exact addition sequence the
// dense rebuild performs for that pool (the dense loop visits proxies in
// input order and sparse addInto touches only non-zero components).
// Components of untouched pools are carried over unchanged, which is
// likewise exactly what the dense re-sum would reproduce for them.

// incrementalIndex is the immutable, bids-derived half of the engine:
// the inverted pool→proxies index and the bidder classes. It is built
// once per Auction (bids are frozen after NewAuction) and shared across
// Run calls.
type incrementalIndex struct {
	// poolProxies[r] lists, in ascending order, the proxies any of whose
	// bundles has a non-zero component in pool r.
	poolProxies [][]int32
	pureBuyer   []bool
}

// buildIncrementalIndex makes one pass over the sparse bundles; seen
// dedups pools within a proxy so each proxy appears at most once per
// pool list, and iterating proxies in input order keeps every list
// ascending — the order the determinism contract depends on.
func (a *Auction) buildIncrementalIndex() *incrementalIndex {
	ix := &incrementalIndex{
		poolProxies: make([][]int32, a.reg.Len()),
		pureBuyer:   make([]bool, len(a.proxies)),
	}
	seen := make([]int, a.reg.Len())
	for i, px := range a.proxies {
		stamp := i + 1
		for _, sb := range px.sparse {
			for _, r := range sb.idx {
				if seen[r] != stamp {
					seen[r] = stamp
					ix.poolProxies[r] = append(ix.poolProxies[r], int32(i))
				}
			}
		}
		ix.pureBuyer[i] = a.bids[i].Class() == PureBuyer
	}
	return ix
}

// incrementalState carries the per-run working set of the incremental
// engine: the shared index plus epoch-stamped scratch buffers, so the
// round loop allocates nothing.
type incrementalState struct {
	*incrementalIndex
	// retired marks pure buyers that have been priced out of every
	// bundle. Price steps are nonnegative and a pure buyer's bundle costs
	// are nondecreasing in prices, so its surplus can only shrink: once
	// priced out it can never re-enter and is dropped from the index
	// walk permanently. Sellers and traders carry negative components —
	// rising prices improve their receipts — so they stay evaluated.
	retired []bool

	// Epoch-stamped dedup marks: a mark equal to the current epoch means
	// "already gathered this round", so clearing between rounds is O(1).
	epoch     int32
	proxyMark []int32
	poolMark  []int32

	// Reused gather buffers.
	affected   []int32
	stale      []int32
	dirty      []int32
	newChoices []int
}

// newIncrementalState returns the auction's cached working set, reset
// for a fresh run. The epoch-stamped marks survive across runs (a mark
// below the current epoch already reads as "unseen"), so a reset only
// clears the retirement flags and truncates the gather buffers — no
// allocation in the steady state.
//
//marketlint:allocfree
func (a *Auction) newIncrementalState() *incrementalState {
	if a.incIndex == nil {
		//marketlint:allow allocfree one-time index build, cached on the Auction across runs
		a.incIndex = a.buildIncrementalIndex()
	}
	st := a.incState
	if st == nil {
		//marketlint:allow allocfree one-time state construction, cached on the Auction across runs
		st = &incrementalState{
			incrementalIndex: a.incIndex,
			retired:          make([]bool, len(a.proxies)),
			proxyMark:        make([]int32, len(a.proxies)),
			poolMark:         make([]int32, a.reg.Len()),
		}
		a.incState = st
		return st
	}
	for i := range st.retired {
		st.retired[i] = false
	}
	st.affected = st.affected[:0]
	st.stale = st.stale[:0]
	st.dirty = st.dirty[:0]
	// Guard the epoch stamps against int32 wraparound across very many
	// reuses: restart the epoch clock with cleared marks.
	if st.epoch > 1<<30 {
		st.epoch = 0
		for i := range st.proxyMark {
			st.proxyMark[i] = 0
		}
		for i := range st.poolMark {
			st.poolMark[i] = 0
		}
	}
	return st
}

// markStalePool records pool r for excess-demand recomputation, at most
// once per round.
//
//marketlint:allocfree
func (st *incrementalState) markStalePool(r int32) {
	if st.poolMark[r] != st.epoch {
		st.poolMark[r] = st.epoch
		st.stale = append(st.stale, r)
	}
}

// runIncremental executes Algorithm 1 with incremental demand revelation.
// The control flow mirrors runDense exactly — same round structure, same
// stopping test, same error paths — so the two engines settle the same
// choices at the same prices, bit for bit.
//
//marketlint:allocfree
func (a *Auction) runIncremental(res *Result) (*Result, error) {
	p, z, choices := a.prepare()
	step := a.sc.step
	st := a.newIncrementalState()

	// Round 0 is a full evaluation: every proxy is affected by the jump
	// from "no prices" to the reserve prices, and z is built from scratch
	// in the dense engine's proxy order.
	active := a.collect(p, choices)
	for i, c := range choices {
		if c >= 0 {
			a.proxies[i].sparse[c].addInto(z)
		} else {
			res.DropRound[i] = 0
			if st.pureBuyer[i] {
				st.retired[i] = true
			}
		}
	}

	for t := 0; t < a.cfg.MaxRounds; t++ {
		if t > 0 {
			active = a.advance(st, p, choices, res, z, t, active)
		}
		if a.cfg.RecordHistory {
			res.History = appendRound(res.History, t, p, z, active)
		}
		if z.AllNonPositive(a.cfg.Epsilon) {
			res.Converged = true
			res.Rounds = t + 1
			a.settle(res, p, choices)
			return res, nil
		}
		a.cfg.Policy.StepInto(step, z, p)
		if !step.AllNonNegative(0) {
			//marketlint:allow allocfree error path; the run is abandoned
			return nil, fmt.Errorf("core: policy %s produced a negative step", a.cfg.Policy.Name())
		}
		if step.MaxAbs() == 0 {
			// The policy refused to move despite excess demand; without
			// progress the loop would spin forever.
			//marketlint:allow allocfree error path; the run is abandoned
			return nil, fmt.Errorf("core: policy %s stalled with positive excess demand at round %d", a.cfg.Policy.Name(), t)
		}
		p.AddInto(step)
		// The dirty pools for next round's re-evaluation are exactly the
		// components the step moved.
		st.dirty = st.dirty[:0]
		for r, s := range step {
			if s > 0 {
				//marketlint:allow allocfree dirty-pool scratch is cached on the Auction; growth is amortized across runs
				st.dirty = append(st.dirty, int32(r))
			}
		}
	}

	res.Converged = false
	res.Rounds = a.cfg.MaxRounds
	a.settle(res, p, choices)
	return res, ErrNoConvergence
}

// advance applies one round of incremental demand revelation at round t:
// gather the proxies touching a dirty pool, re-evaluate them, and
// recompute the excess-demand components their changed choices touch. It
// returns the updated active-bidder count.
//
//marketlint:allocfree
func (a *Auction) advance(st *incrementalState, p resource.Vector, choices []int, res *Result, z resource.Vector, t, active int) int {
	st.epoch++
	st.affected = st.affected[:0]
	for _, r := range st.dirty {
		for _, i := range st.poolProxies[r] {
			if st.retired[i] || st.proxyMark[i] == st.epoch {
				continue
			}
			st.proxyMark[i] = st.epoch
			st.affected = append(st.affected, i)
		}
	}

	st.newChoices = a.collectSubset(p, st.affected, st.newChoices)

	st.stale = st.stale[:0]
	for k, i := range st.affected {
		old, c := choices[i], st.newChoices[k]
		if c == old {
			continue
		}
		choices[i] = c
		if old >= 0 {
			for _, r := range a.proxies[i].sparse[old].idx {
				st.markStalePool(r)
			}
		}
		if c >= 0 {
			for _, r := range a.proxies[i].sparse[c].idx {
				st.markStalePool(r)
			}
		}
		switch {
		case c < 0:
			// Dropped out this round.
			active--
			res.DropRound[i] = t
			if st.pureBuyer[i] {
				st.retired[i] = true
			}
		case old < 0:
			// Re-entered: rising prices lifted a seller/trader bundle
			// back over its limit. Clear the stale drop round so the
			// diagnostic matches History.ActiveBidders.
			active++
			res.DropRound[i] = -1
		}
	}

	// When a large share of the pools went stale (the clock's opening
	// rounds, before demand localizes), a full rebuild in input order is
	// cheaper than per-pool re-summation — and is trivially bit-identical,
	// being the reference order itself.
	if len(st.stale)*8 > len(st.poolProxies) {
		for r := range z {
			z[r] = 0
		}
		for i, c := range choices {
			if c >= 0 {
				a.proxies[i].sparse[c].addInto(z)
			}
		}
		return active
	}
	// Re-sum each stale component from zero over the pool's proxy list in
	// ascending order — the dense rebuild's exact addition sequence for
	// that pool (see the determinism contract above).
	for _, r := range st.stale {
		var sum float64
		for _, i := range st.poolProxies[r] {
			if c := choices[i]; c >= 0 {
				if v, ok := a.proxies[i].sparse[c].valueAt(r); ok {
					sum += v
				}
			}
		}
		z[r] = sum
	}
	return active
}

// collectSubset evaluates the affected proxies at prices p, writing each
// result to out aligned with affected (out is grown as needed and
// returned). It is the affected-subset form of collect: the same
// parallel fan-out applies when the subset is large enough, and results
// are written to disjoint slots, so serial and parallel runs are
// identical.
//
//marketlint:allocfree
func (a *Auction) collectSubset(p resource.Vector, affected []int32, out []int) []int {
	if cap(out) < len(affected) {
		out = make([]int, len(affected))
	}
	out = out[:len(affected)]
	if !a.cfg.Parallel || len(affected) < parallelThreshold {
		for k, i := range affected {
			out[k] = a.proxies[i].choose(p)
		}
		return out
	}
	// The goroutine fan-out lives in its own function so its closure
	// cannot capture this function's reassigned `out` variable — that
	// capture would heap-box the slice header on every call, putting an
	// allocation on the serial path's steady-state rounds too.
	//marketlint:allow allocfree opt-in parallel fan-out; spawn cost is amortized over ≥64 evaluations
	a.collectSubsetParallel(p, affected, out)
	return out
}

// collectSubsetParallel evaluates the affected proxies over all CPUs,
// writing to disjoint slots of out.
func (a *Auction) collectSubsetParallel(p resource.Vector, affected []int32, out []int) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(affected) {
		workers = len(affected)
	}
	var wg sync.WaitGroup
	chunk := (len(affected) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(affected) {
			hi = len(affected)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for k := lo; k < hi; k++ {
				out[k] = a.proxies[affected[k]].choose(p)
			}
		}(lo, hi)
	}
	wg.Wait()
}
