// Package core implements the paper's primary contribution: the simulated
// ascending clock auction of Section III that maps sealed bids into
// uniform, linear resource prices and fair allocations.
//
// A bid B_u = {Q_u, π_u} carries an XOR set of bundle vectors and a scalar
// limit. Bidder proxies G_u(p) (Equations 1–2) reveal each user's demand
// at the current price clock; the auctioneer raises prices on pools with
// positive excess demand (Algorithm 1) until excess demand is gone. The
// resulting (x, p) pair is a feasible point of the SYSTEM program in
// Section III.B, which CheckSystem verifies directly.
package core

import (
	"errors"
	"fmt"
	"math"

	"clustermarket/internal/resource"
)

// Bid is one user's sealed bid B_u = {Q_u, π_u} (Section II).
type Bid struct {
	// User identifies the bidding user (an engineering team in the
	// paper's experiments).
	User string
	// Bundles is the indifference set Q_u: the user wants exactly one of
	// these R-component vectors. Positive components are quantities
	// demanded, negative components quantities offered.
	Bundles []resource.Vector
	// Limit is π_u: the maximum total payment the user will make (if
	// positive) or the minimum total amount it must receive, negated (if
	// negative). A seller willing to accept no less than 50 sets
	// Limit = −50.
	Limit float64
	// BundleLimits optionally assigns a distinct limit to each bundle —
	// the "vector π" extension Section II mentions ("does not
	// significantly change our results"). When set it must have one entry
	// per bundle; the proxy then demands the affordable bundle with the
	// largest surplus π_i − q_iᵀp instead of the globally cheapest one.
	// Limit is ignored in that case.
	BundleLimits []float64
}

// LimitFor returns the limit governing bundle i: BundleLimits[i] when
// the vector-π extension is in use, the scalar Limit otherwise. Premium
// statistics (Equation 5) must be computed against the winning bundle's
// limit via this method — using the scalar Limit for a vector-limit bid
// measures γ_u against a number the proxy never consulted.
//
//marketlint:allocfree
func (b *Bid) LimitFor(i int) float64 {
	if len(b.BundleLimits) > 0 {
		return b.BundleLimits[i]
	}
	return b.Limit
}

// MaxLimit returns the largest limit across bundles (the scalar Limit
// when no vector is set). It is the budget-relevant exposure of the bid.
func (b *Bid) MaxLimit() float64 {
	if len(b.BundleLimits) == 0 {
		return b.Limit
	}
	m := b.BundleLimits[0]
	for _, l := range b.BundleLimits[1:] {
		if l > m {
			m = l
		}
	}
	return m
}

// Class partitions bidders per Section III.C.3, which proves convergence
// when every participant is a pure buyer or pure seller and warns that
// traders can break it.
type Class int

const (
	// PureBuyer bids have only nonnegative bundle components.
	PureBuyer Class = iota
	// PureSeller bids have only nonpositive bundle components.
	PureSeller
	// Trader bids mix demanded and offered quantities, either within one
	// bundle or across bundles.
	Trader
)

func (c Class) String() string {
	switch c {
	case PureBuyer:
		return "buyer"
	case PureSeller:
		return "seller"
	default:
		return "trader"
	}
}

// Class classifies the bid. A bid whose bundles disagree in direction is a
// Trader even if each individual bundle is pure.
func (b *Bid) Class() Class {
	dir := 0
	for _, q := range b.Bundles {
		d := q.PureDirection()
		switch {
		case d == 0:
			return Trader
		case dir == 0:
			dir = d
		case d != dir:
			return Trader
		}
	}
	if dir < 0 {
		return PureSeller
	}
	return PureBuyer
}

// Validate checks the bid against registry size r.
func (b *Bid) Validate(r int) error {
	if b.User == "" {
		return errors.New("core: bid has empty user")
	}
	if len(b.Bundles) == 0 {
		return fmt.Errorf("core: bid %q has no bundles", b.User)
	}
	if math.IsNaN(b.Limit) || math.IsInf(b.Limit, 0) {
		return fmt.Errorf("core: bid %q has non-finite limit", b.User)
	}
	if len(b.BundleLimits) > 0 {
		if len(b.BundleLimits) != len(b.Bundles) {
			return fmt.Errorf("core: bid %q has %d bundle limits for %d bundles",
				b.User, len(b.BundleLimits), len(b.Bundles))
		}
		for i, l := range b.BundleLimits {
			if math.IsNaN(l) || math.IsInf(l, 0) {
				return fmt.Errorf("core: bid %q bundle limit %d is non-finite", b.User, i)
			}
		}
	}
	for i, q := range b.Bundles {
		if len(q) != r {
			return fmt.Errorf("core: bid %q bundle %d has %d components, want %d", b.User, i, len(q), r)
		}
		if err := q.Validate(); err != nil {
			return fmt.Errorf("core: bid %q bundle %d: %v", b.User, i, err)
		}
		if q.IsZero() {
			return fmt.Errorf("core: bid %q bundle %d is empty", b.User, i)
		}
	}
	// Sanity-check limit direction: a pure seller asking to be *paid* a
	// positive amount must use a negative limit.
	if b.Class() == PureSeller {
		for i := range b.Bundles {
			if b.LimitFor(i) > 0 {
				return fmt.Errorf("core: pure seller %q has positive limit %g (minimum receipt is encoded as a negative limit)", b.User, b.LimitFor(i))
			}
		}
	}
	return nil
}

// BestAffordable returns the bundle the proxy demands at prices p: the
// affordable bundle (cost ≤ its limit) with the largest surplus
// limit − cost, ties breaking toward the lowest index. With a scalar
// limit this is exactly the paper's Equations (1)–(2): the cheapest
// bundle, if affordable. ok is false when every bundle is priced out.
func (b *Bid) BestAffordable(p resource.Vector) (idx int, ok bool) {
	best := -1
	bestSurplus := math.Inf(-1)
	for i, q := range b.Bundles {
		cost := q.Dot(p)
		lim := b.LimitFor(i)
		if cost > lim {
			continue
		}
		if s := lim - cost; s > bestSurplus {
			best, bestSurplus = i, s
		}
	}
	return best, best >= 0
}

// Proxy is the automated bidder proxy of Section III.C: it maps the
// current clock prices to the user's revealed demand via Equations (1)
// and (2). Bundles are pre-packed into sparse form so each round costs
// O(non-zero components) instead of O(R) per bundle.
type Proxy struct {
	bid    *Bid
	sparse []sparseBundle
	// lastChoice caches the chosen bundle index for diagnostics; −1 when
	// the proxy has dropped out.
	lastChoice int
}

// NewProxy wraps a bid.
func NewProxy(b *Bid) *Proxy {
	px := &Proxy{bid: b, lastChoice: -1, sparse: make([]sparseBundle, len(b.Bundles))}
	for i, q := range b.Bundles {
		px.sparse[i] = newSparseBundle(q)
	}
	return px
}

// choose returns the index of the bundle the proxy demands at prices p,
// or −1 when priced out — the sparse fast path of Bid.BestAffordable.
//
//marketlint:allocfree
func (px *Proxy) choose(p resource.Vector) int {
	best := -1
	bestSurplus := math.Inf(-1)
	for i, sb := range px.sparse {
		cost := sb.dot(p)
		lim := px.bid.LimitFor(i)
		if cost > lim {
			continue
		}
		if s := lim - cost; s > bestSurplus {
			best, bestSurplus = i, s
		}
	}
	px.lastChoice = best
	return best
}

// Bid returns the wrapped bid.
func (px *Proxy) Bid() *Bid { return px.bid }

// Demand evaluates G_u(p): the cheapest bundle q̂ ∈ Q_u at prices p if its
// cost q̂ᵀp is within the limit π_u, otherwise nil (the user demands
// nothing). Ties break toward the lowest bundle index so the auction is
// deterministic. With vector limits (BundleLimits) the proxy demands the
// affordable bundle with the largest surplus instead.
func (px *Proxy) Demand(p resource.Vector) resource.Vector {
	if best := px.choose(p); best >= 0 {
		return px.bid.Bundles[best]
	}
	return nil
}

// ChosenBundle returns the index into Bundles selected by the last Demand
// call, or −1 when the proxy demanded nothing.
func (px *Proxy) ChosenBundle() int { return px.lastChoice }

// CheapestCost returns min_{q∈Q_u} qᵀp, the left side of the winner/loser
// conditions (4) and (5) in SYSTEM.
func (b *Bid) CheapestCost(p resource.Vector) float64 {
	cost := math.Inf(1)
	for _, q := range b.Bundles {
		if c := q.Dot(p); c < cost {
			cost = c
		}
	}
	return cost
}

// Premium returns γ_u from Equation (5) of Section V.C: the relative gap
// between the bid limit and the settled payment, |π_u − x_uᵀp| / |x_uᵀp|.
// It returns 0 when the payment is (numerically) zero.
func Premium(limit, payment float64) float64 {
	if math.Abs(payment) < 1e-12 {
		return 0
	}
	return math.Abs(limit-payment) / math.Abs(payment)
}
