package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"clustermarket/internal/resource"
)

// onePool builds a single-pool registry.
func onePool() *resource.Registry {
	return resource.NewRegistry(resource.Pool{Cluster: "r1", Dim: resource.CPU})
}

func TestAuctionSinglePoolCompetition(t *testing.T) {
	reg := onePool()
	bids := []*Bid{
		{User: "seller", Limit: -5, Bundles: []resource.Vector{{-10}}},
		{User: "cheap-buyer", Limit: 20, Bundles: []resource.Vector{{10}}},
		{User: "rich-buyer", Limit: 30, Bundles: []resource.Vector{{10}}},
	}
	a, err := NewAuction(reg, bids, Config{
		Start:         resource.Vector{1},
		Policy:        Capped{Alpha: 0.05, Delta: 0.1, MinStep: 0.01},
		RecordHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	// The cheap buyer must be priced out just above 2.0 (limit 20 for 10
	// units); the rich buyer wins.
	if res.IsWinner(1) {
		t.Error("cheap buyer won")
	}
	if !res.IsWinner(2) {
		t.Error("rich buyer lost")
	}
	if !res.IsWinner(0) {
		t.Error("seller lost")
	}
	if p := res.Prices[0]; p < 2.0 || p > 3.0 {
		t.Errorf("final price = %v, want within (2.0, 3.0]", p)
	}
	// Winner pays, seller receives the same per-unit price (uniform
	// linear pricing).
	if res.Payments[2] <= 0 || res.Payments[0] >= 0 {
		t.Errorf("payments = %v", res.Payments)
	}
	if diff := res.Payments[2] + res.Payments[0]; diff != 0 {
		t.Errorf("buyer and seller payments unbalanced by %v", diff)
	}
	if v := CheckSystem(bids, res, 1e-9); len(v) != 0 {
		t.Errorf("SYSTEM violations: %v", v)
	}
	// The cheap buyer's drop round must be recorded.
	if res.DropRound[1] <= 0 {
		t.Errorf("DropRound = %v", res.DropRound)
	}
}

func TestAuctionImmediateClear(t *testing.T) {
	// Supply covers demand at reserve prices: ends in one round at p̃.
	reg := onePool()
	bids := []*Bid{
		{User: "seller", Limit: -1, Bundles: []resource.Vector{{-20}}},
		{User: "buyer", Limit: 100, Bundles: []resource.Vector{{10}}},
	}
	a, err := NewAuction(reg, bids, Config{Start: resource.Vector{2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", res.Rounds)
	}
	if res.Prices[0] != 2 {
		t.Errorf("price moved to %v", res.Prices[0])
	}
	if len(res.Winners) != 2 {
		t.Errorf("winners = %v", res.Winners)
	}
}

func TestAuctionPricesMonotone(t *testing.T) {
	reg := resource.NewStandardRegistry("r1", "r2")
	bids := []*Bid{
		{User: "op", Limit: -0.01, Bundles: []resource.Vector{{-50, -50, -50, -50, -50, -50}}},
		{User: "a", Limit: 400, Bundles: []resource.Vector{{60, 10, 5, 0, 0, 0}}},
		{User: "b", Limit: 300, Bundles: []resource.Vector{{40, 30, 5, 0, 0, 0}, {0, 0, 0, 40, 30, 5}}},
		{User: "c", Limit: 200, Bundles: []resource.Vector{{0, 0, 0, 30, 30, 30}}},
	}
	start := make(resource.Vector, reg.Len())
	for i := range start {
		start[i] = 1
	}
	a, err := NewAuction(reg, bids, Config{Start: start, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		prev, cur := res.History[i-1].Prices, res.History[i].Prices
		for j := range cur {
			if cur[j] < prev[j] {
				t.Fatalf("price %d decreased at round %d: %v -> %v", j, i, prev[j], cur[j])
			}
		}
	}
	// Only pools with positive excess demand may move.
	for i := 1; i < len(res.History); i++ {
		prevZ := res.History[i-1].ExcessDemand
		for j := range res.History[i].Prices {
			moved := res.History[i].Prices[j] > res.History[i-1].Prices[j]
			if moved && prevZ[j] <= 0 {
				t.Fatalf("pool %d moved without excess demand at round %d", j, i)
			}
		}
	}
}

func TestAuctionSubstitutionMigration(t *testing.T) {
	// A buyer indifferent between congested r1 (high reserve) and idle r2
	// (low reserve) must end up in r2 — the migration behavior at the
	// heart of the paper's Section V.B findings.
	reg := resource.NewRegistry(
		resource.Pool{Cluster: "r1", Dim: resource.CPU},
		resource.Pool{Cluster: "r2", Dim: resource.CPU},
	)
	bids := []*Bid{
		{User: "op", Limit: -0.01, Bundles: []resource.Vector{{-100, -100}}},
		{User: "mobile", Limit: 500, Bundles: []resource.Vector{{50, 0}, {0, 50}}},
	}
	a, err := NewAuction(reg, bids, Config{Start: resource.Vector{3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	x := res.Allocations[1]
	if x == nil || x[1] != 50 || x[0] != 0 {
		t.Fatalf("mobile buyer allocated %v, want the idle cluster", x)
	}
}

func TestAuctionMidClockSwitch(t *testing.T) {
	// Two buyers compete in r1 while r2 is free; the poorer buyer should
	// switch to r2 once r1's clock passes it.
	reg := resource.NewRegistry(
		resource.Pool{Cluster: "r1", Dim: resource.CPU},
		resource.Pool{Cluster: "r2", Dim: resource.CPU},
	)
	bids := []*Bid{
		{User: "op", Limit: -0.01, Bundles: []resource.Vector{{-10, -10}}},
		// Insists on r1, deep pockets.
		{User: "anchored", Limit: 1000, Bundles: []resource.Vector{{10, 0}}},
		// Prefers r1 (cheaper start) but accepts r2.
		{User: "flexible", Limit: 1000, Bundles: []resource.Vector{{10, 0}, {0, 10}}},
	}
	a, err := NewAuction(reg, bids, Config{
		Start:  resource.Vector{1, 2},
		Policy: Capped{Alpha: 0.02, Delta: 0.2, MinStep: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if x := res.Allocations[2]; x == nil || x[1] != 10 {
		t.Fatalf("flexible buyer allocated %v, want r2", x)
	}
	if x := res.Allocations[1]; x == nil || x[0] != 10 {
		t.Fatalf("anchored buyer allocated %v, want r1", x)
	}
	if v := CheckSystem(bids, res, 1e-9); len(v) != 0 {
		t.Errorf("SYSTEM violations: %v", v)
	}
}

func TestAuctionNonConvergenceGuard(t *testing.T) {
	// Two traders whose joint demand never clears: both buy more than
	// they sell with enormous limits, so excess demand persists.
	reg := resource.NewRegistry(
		resource.Pool{Cluster: "x", Dim: resource.CPU},
		resource.Pool{Cluster: "y", Dim: resource.CPU},
	)
	bids := []*Bid{
		{User: "t1", Limit: 1e12, Bundles: []resource.Vector{{2, -1}}},
		{User: "t2", Limit: 1e12, Bundles: []resource.Vector{{-1, 2}}},
	}
	a, err := NewAuction(reg, bids, Config{
		Start:     resource.Vector{1, 1},
		MaxRounds: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.ConvergenceGuaranteed() {
		t.Error("trader market reported guaranteed convergence")
	}
	res, err := a.Run()
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	if res == nil || res.Converged {
		t.Fatal("expected partial, non-converged result")
	}
	if res.Rounds != 200 {
		t.Errorf("Rounds = %d", res.Rounds)
	}
}

func TestAuctionClasses(t *testing.T) {
	reg := onePool()
	bids := []*Bid{
		{User: "b", Limit: 5, Bundles: []resource.Vector{{1}}},
		{User: "s", Limit: -1, Bundles: []resource.Vector{{-1}}},
	}
	a, err := NewAuction(reg, bids, Config{Start: resource.Vector{1}})
	if err != nil {
		t.Fatal(err)
	}
	buyers, sellers, traders := a.Classes()
	if buyers != 1 || sellers != 1 || traders != 0 {
		t.Errorf("Classes = %d/%d/%d", buyers, sellers, traders)
	}
	if !a.ConvergenceGuaranteed() {
		t.Error("pure market not guaranteed")
	}
	if len(a.Bids()) != 2 {
		t.Error("Bids() wrong")
	}
}

func TestNewAuctionValidation(t *testing.T) {
	reg := onePool()
	okBid := []*Bid{{User: "b", Limit: 5, Bundles: []resource.Vector{{1}}}}
	cases := []struct {
		name string
		reg  *resource.Registry
		bids []*Bid
		cfg  Config
	}{
		{"nil registry", nil, okBid, Config{Start: resource.Vector{1}}},
		{"empty registry", resource.NewRegistry(), okBid, Config{Start: resource.Vector{1}}},
		{"no bids", reg, nil, Config{Start: resource.Vector{1}}},
		{"bad start length", reg, okBid, Config{Start: resource.Vector{1, 2}}},
		{"negative start", reg, okBid, Config{Start: resource.Vector{-1}}},
		{"negative epsilon", reg, okBid, Config{Start: resource.Vector{1}, Epsilon: -1}},
		{"invalid bid", reg, []*Bid{{User: "", Limit: 1, Bundles: []resource.Vector{{1}}}}, Config{Start: resource.Vector{1}}},
		{"bad policy", reg, okBid, Config{Start: resource.Vector{1}, Policy: Additive{Alpha: -1}}},
	}
	for _, c := range cases {
		if _, err := NewAuction(c.reg, c.bids, c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// stallPolicy returns a zero step, which must be detected as a stall.
type stallPolicy struct{}

func (stallPolicy) Name() string { return "stall" }
func (stallPolicy) StepInto(dst, z, p resource.Vector) {
	for i := range dst {
		dst[i] = 0
	}
}

func TestAuctionDetectsStalledPolicy(t *testing.T) {
	reg := onePool()
	bids := []*Bid{{User: "b", Limit: 100, Bundles: []resource.Vector{{10}}}}
	a, err := NewAuction(reg, bids, Config{Start: resource.Vector{1}, Policy: stallPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(); err == nil {
		t.Fatal("stalled policy not detected")
	}
}

func TestAuctionParallelMatchesSerial(t *testing.T) {
	reg := resource.NewStandardRegistry("r1", "r2", "r3", "r4")
	rng := rand.New(rand.NewSource(7))
	bids := randomPureMarket(rng, reg, 300)

	run := func(parallel bool) *Result {
		start := make(resource.Vector, reg.Len())
		for i := range start {
			start[i] = 0.5
		}
		a, err := NewAuction(reg, bids, Config{Start: start, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(false)
	parallel := run(true)
	if serial.Rounds != parallel.Rounds {
		t.Fatalf("rounds differ: %d vs %d", serial.Rounds, parallel.Rounds)
	}
	if !serial.Prices.Equal(parallel.Prices, 0) {
		t.Fatalf("prices differ:\n%v\n%v", serial.Prices, parallel.Prices)
	}
	if len(serial.Winners) != len(parallel.Winners) {
		t.Fatalf("winners differ: %d vs %d", len(serial.Winners), len(parallel.Winners))
	}
}

func TestTotalTraded(t *testing.T) {
	reg := onePool()
	bids := []*Bid{
		{User: "s", Limit: -1, Bundles: []resource.Vector{{-20}}},
		{User: "b", Limit: 100, Bundles: []resource.Vector{{10}}},
	}
	a, err := NewAuction(reg, bids, Config{Start: resource.Vector{1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TotalTraded(); got[0] != 10 {
		t.Errorf("TotalTraded = %v", got)
	}
}

// randomPureMarket builds a random market of pure buyers plus one operator
// seller with ample supply, guaranteeing convergence per Section III.C.3.
func randomPureMarket(rng *rand.Rand, reg *resource.Registry, buyers int) []*Bid {
	supply := make(resource.Vector, reg.Len())
	bids := make([]*Bid, 0, buyers+1)
	clusters := reg.Clusters()
	for i := 0; i < buyers; i++ {
		nAlt := rng.Intn(3) + 1
		bundles := make([]resource.Vector, 0, nAlt)
		for a := 0; a < nAlt; a++ {
			v := make(resource.Vector, reg.Len())
			c := clusters[rng.Intn(len(clusters))]
			for _, pi := range reg.ClusterPools(c) {
				v[pi] = float64(rng.Intn(20) + 1)
			}
			bundles = append(bundles, v)
		}
		bids = append(bids, &Bid{
			User:    "buyer" + string(rune('A'+i%26)),
			Limit:   float64(rng.Intn(200) + 10),
			Bundles: bundles,
		})
	}
	// Operator supply: half of the aggregate first-choice demand, so the
	// clock genuinely has to ration.
	for _, b := range bids {
		supply.AddInto(b.Bundles[0])
	}
	for i := range supply {
		supply[i] = -supply[i] / 2
	}
	bids = append(bids, &Bid{User: "operator", Limit: -0.001, Bundles: []resource.Vector{supply}})
	return bids
}

func TestQuickPureMarketsConvergeAndSatisfySystem(t *testing.T) {
	reg := resource.NewStandardRegistry("r1", "r2", "r3")
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bids := randomPureMarket(rng, reg, rng.Intn(40)+2)
		start := make(resource.Vector, reg.Len())
		for i := range start {
			start[i] = 0.25 + rng.Float64()
		}
		a, err := NewAuction(reg, bids, Config{
			Start:  start,
			Policy: Capped{Alpha: 0.05, Delta: 0.5, MinStep: 0.01},
		})
		if err != nil {
			return false
		}
		if !a.ConvergenceGuaranteed() {
			return false
		}
		res, err := a.Run()
		if err != nil {
			return false
		}
		if !res.Converged {
			return false
		}
		// Final prices must respect the pure-buyer price ceiling.
		if res.Prices.MaxAbs() > PriceCeiling(bids, start)+1 {
			return false
		}
		return len(CheckSystem(bids, res, 1e-6)) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPriceCeiling(t *testing.T) {
	bids := []*Bid{
		{User: "b", Limit: 100, Bundles: []resource.Vector{{10, 0}}},
		{User: "s", Limit: -1, Bundles: []resource.Vector{{-5, 0}}},
	}
	start := resource.Vector{1, 1}
	// Buyer pays at most 100 for 10 units → 10/unit, plus start 1.
	if got := PriceCeiling(bids, start); got != 11 {
		t.Errorf("PriceCeiling = %v", got)
	}
}
