package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"clustermarket/internal/resource"
)

// This file implements the parallel sub-market decomposition of the
// clock auction (ROADMAP item 3). The paper's planet of 100+ clusters
// with mostly-regional bidding means the bidder–pool graph — bids on one
// side, resource pools on the other, an edge where a bundle has a
// non-zero component — usually splits into many small connected
// components. Pools in different components never share a bidder, and a
// bid's proxy only ever reads the prices of the pools its bundles touch,
// so the merged clock's dynamics factor exactly across components:
//
//   - Every IncrementPolicy is per-pool-local (StepInto writes dst[i]
//     from z[i], p[i] and per-pool parameters only), so the price path of
//     a component's pools depends only on that component's excess demand.
//   - Excess demand on a component's pools is summed from that
//     component's proxies alone, and the sub-market keeps them in the
//     same ascending order, so each pool sees the identical float
//     addition sequence the merged rebuild performs (addition is not
//     associative; order is the contract).
//   - The pool remap is order-preserving (ascending global index →
//     ascending local index), so within-bundle sparse iteration order is
//     unchanged too.
//
// The only cross-component coupling is control flow:
//
//   - The stopping test z(t) ≤ ε is a global conjunction. With ε > 0 a
//     component can be cleared (z ≤ ε) yet unfrozen (z ∈ (0, ε] still
//     steps while some other component keeps the merged clock running),
//     so each component clock runs until its step vector is zero
//     ("frozen", after which its state is constant) while recording a
//     per-round cleared bit; the global stop round T is the first round
//     at which every component was cleared, and any component that froze
//     after T is deterministically re-run capped at exactly T — the same
//     arithmetic replayed, stopping pre-step as the merged loop does.
//   - The negative-step and stall errors are global vector tests. A
//     component clock that errors, or a market whose components all
//     freeze without a common cleared round (the merged clock's stall),
//     falls back to the merged single-clock run, which reproduces the
//     exact merged behavior — error or not — by construction.
//
// Settlement reuses the original auction's settle() against the scattered
// global price vector and choices, so payments are the same sparse dot
// products over the same global prices, bit for bit. The differential
// tests enforce dense ≡ incremental ≡ partitioned equality on every
// Result field.

// PartitionMode selects whether Run decomposes the market into
// independent sub-markets.
type PartitionMode int

const (
	// PartitionAuto, the zero value and the default, decomposes the
	// market when the bidder–pool graph has two or more connected
	// components and the increment policy is one of the four built-ins
	// (whose per-pool parameters can be remapped onto a component's
	// pools). Single-component markets, unknown policies, and component
	// errors all retain the merged single-clock run.
	PartitionAuto PartitionMode = iota
	// PartitionOff forces the merged single-clock run.
	PartitionOff
)

func (m PartitionMode) String() string {
	switch m {
	case PartitionAuto:
		return "auto"
	case PartitionOff:
		return "off"
	default:
		return fmt.Sprintf("PartitionMode(%d)", int(m))
	}
}

// subMarket is one connected component of the bidder–pool graph: an
// ascending slice of global pool ids, the ascending global indices of
// the bids touching them, and a private Auction over the compacted
// vectors whose scratch, incremental state, and Result are recycled
// across runs exactly like the parent's.
type subMarket struct {
	// pools holds the component's global pool ids in ascending order;
	// local pool j is global pool pools[j].
	pools []int32
	// bids holds the component's global bid indices in ascending order;
	// local bid k is global bid bids[k].
	bids []int32
	// auc runs the component's clock. Its bids are the original *Bid
	// pointers (limits and classes are remap-invariant); its proxies
	// carry index-remapped sparse bundles sharing the original value
	// slices.
	auc *Auction
	// res receives the component clock's DropRound bookkeeping and
	// per-round history snapshots; recycled across runs.
	res *Result
	// cleared[t] records whether the component's excess demand passed
	// z ≤ ε at round t of the autonomous run; recycled across runs.
	cleared []bool
	// end is the last round whose state the autonomous run reached:
	// the freeze round, or MaxRounds when the clock ran out.
	end int
	// frozen reports that the autonomous run ended with a zero step, so
	// the component's state is constant from round end onward.
	frozen bool
	// err is the component clock's negative-step or stall error; any
	// non-nil err sends the whole run down the merged fallback.
	err error
}

// partitionState is the cached decomposition of one Auction.
type partitionState struct {
	comps []*subMarket
}

// unionFind is a union-find forest over global pool ids with path
// halving; union keeps the smaller root so a component's representative
// is its smallest pool id.
type unionFind []int32

func (uf unionFind) find(x int32) int32 {
	for uf[x] != x {
		uf[x] = uf[uf[x]]
		x = uf[x]
	}
	return x
}

func (uf unionFind) union(a, b int32) {
	ra, rb := uf.find(a), uf.find(b)
	switch {
	case ra < rb:
		uf[rb] = ra
	case rb < ra:
		uf[ra] = rb
	}
}

// partition returns the auction's cached sub-market decomposition, or
// nil when the merged single-clock path must run. The decision and the
// sub-markets are built once per Auction — bids are frozen after
// NewAuction — and reused across runs.
//
//marketlint:allocfree
func (a *Auction) partition() *partitionState {
	if !a.partBuilt {
		a.partBuilt = true
		if a.cfg.Partition != PartitionOff {
			//marketlint:allow allocfree one-time decomposition build, cached on the Auction across runs
			a.part = a.buildPartition()
		}
	}
	return a.part
}

// Components returns the number of independent sub-markets the
// partitioned path clears concurrently, or 1 when the merged
// single-clock run is in effect (partitioning off, a single connected
// component, or an increment policy the decomposition cannot remap).
func (a *Auction) Components() int {
	if ps := a.partition(); ps != nil {
		return len(ps.comps)
	}
	return 1
}

// remapPolicy compacts a built-in increment policy's per-pool parameters
// onto a component's pools (ascending global ids). Policies carrying no
// per-pool state pass through unchanged; CostNormalized gets its Cost
// vector gathered so that local pool j reads exactly what global pool
// pools[j] read (missing entries stay zero, which falls back to the same
// unit cost the original would use). Unknown policy implementations
// return false and keep the merged path: the analyzer cannot prove a
// foreign policy is per-pool-local.
func remapPolicy(pol IncrementPolicy, pools []int32) (IncrementPolicy, bool) {
	switch v := pol.(type) {
	case Additive:
		return v, true
	case Capped:
		return v, true
	case Proportional:
		return v, true
	case CostNormalized:
		sub := make(resource.Vector, len(pools))
		for j, g := range pools {
			if int(g) < len(v.Cost) {
				sub[j] = v.Cost[g]
			}
		}
		v.Cost = sub
		return v, true
	}
	return nil, false
}

// buildPartition computes the connected components of the bidder–pool
// graph and assembles one subMarket per component. It returns nil when
// the merged path must run: fewer than two components, a policy that
// cannot be remapped, or a −0 reserve price (the merged clock normalizes
// −0 to +0 the first time it adds a zero step; a scattered
// reconstruction would preserve the sign bit and break bit-identity of
// the formatted fingerprints).
func (a *Auction) buildPartition() *partitionState {
	r := a.reg.Len()
	for _, v := range a.cfg.Start {
		if v == 0 && math.Signbit(v) {
			return nil
		}
	}
	if _, ok := remapPolicy(a.cfg.Policy, nil); !ok {
		return nil
	}

	// Union the pools of each bid across all its bundles: an XOR set
	// bridges every pool set it mentions, whichever bundle wins.
	uf := make(unionFind, r)
	for g := range uf {
		uf[g] = int32(g)
	}
	touched := make([]bool, r)
	for _, px := range a.proxies {
		first := int32(-1)
		for _, sb := range px.sparse {
			for _, g := range sb.idx {
				touched[g] = true
				if first < 0 {
					first = g
				} else {
					uf.union(first, g)
				}
			}
		}
	}

	// Assign component ids in ascending smallest-pool order — the
	// deterministic component order every later merge loop follows —
	// and gather each component's pools ascending. Pools no bid touches
	// stay out of every component: their excess demand is identically
	// zero, so the merged clock never moves them off the reserve price.
	compOf := make([]int32, r)
	for g := range compOf {
		compOf[g] = -1
	}
	var comps []*subMarket
	for g := 0; g < r; g++ {
		if !touched[g] {
			continue
		}
		root := uf.find(int32(g))
		if compOf[root] < 0 {
			compOf[root] = int32(len(comps))
			comps = append(comps, &subMarket{res: &Result{}})
		}
		c := comps[compOf[root]]
		c.pools = append(c.pools, int32(g))
	}
	if len(comps) < 2 {
		return nil
	}

	// Global pool id → local index within its component.
	localPool := make([]int32, r)
	for _, c := range comps {
		for j, g := range c.pools {
			localPool[g] = int32(j)
		}
	}

	// Every validated bid has a non-empty first bundle, so its component
	// is the one owning that bundle's first pool. Visiting bids in input
	// order keeps each component's bid list ascending — the order that
	// preserves the merged run's per-pool float addition sequence.
	for i, px := range a.proxies {
		c := comps[compOf[uf.find(px.sparse[0].idx[0])]]
		c.bids = append(c.bids, int32(i))
	}

	for _, c := range comps {
		subReg := resource.NewRegistry()
		subStart := make(resource.Vector, len(c.pools))
		for j, g := range c.pools {
			subReg.Add(a.reg.Pool(int(g)))
			subStart[j] = a.cfg.Start[g]
		}
		pol, _ := remapPolicy(a.cfg.Policy, c.pools)
		bids := make([]*Bid, len(c.bids))
		proxies := make([]*Proxy, len(c.bids))
		for k, bi := range c.bids {
			b := a.bids[bi]
			bids[k] = b
			src := a.proxies[bi]
			px := &Proxy{bid: b, lastChoice: -1, sparse: make([]sparseBundle, len(src.sparse))}
			for si, sb := range src.sparse {
				idx := make([]int32, len(sb.idx))
				for n, g := range sb.idx {
					idx[n] = localPool[g]
				}
				// The value slice is shared: bundle values are frozen
				// after NewAuction, and sharing keeps the remap O(nnz)
				// in fresh memory.
				px.sparse[si] = sparseBundle{idx: idx, val: sb.val}
			}
			proxies[k] = px
		}
		c.auc = &Auction{
			reg:     subReg,
			bids:    bids,
			proxies: proxies,
			cfg: Config{
				Start:         subStart,
				Policy:        pol,
				Epsilon:       a.cfg.Epsilon,
				MaxRounds:     a.cfg.MaxRounds,
				Parallel:      a.cfg.Parallel,
				RecordHistory: a.cfg.RecordHistory,
				Engine:        a.cfg.Engine,
				Partition:     PartitionOff,
			},
		}
	}
	return &partitionState{comps: comps}
}

// runClock drives one component's clock with the merged loop's exact
// round structure on the compacted vectors, on either engine. It differs
// from the merged loop only in control flow, never in arithmetic:
//
//   - it does not stop on the local z ≤ ε test (a cleared component can
//     keep stepping while the merged clock runs for others); instead it
//     stops when the step vector is zero — frozen, state constant from
//     round t onward — returning (t, true, nil);
//   - a local zero step is not an error: whether the merged clock stalls
//     is a global question the driver answers;
//   - with capT ≥ 0 it stops at exactly round capT right after the
//     round's demand revelation, pre-step — mirroring where the merged
//     loop stands when the global stopping test passes at capT;
//   - when the rounds run out it returns (MaxRounds, false, nil) with the
//     scratch holding the post-step prices and the final round's choices,
//     mirroring the merged loop's non-convergent settle state.
//
// Per-round cleared bits are appended to *clearedOut when non-nil, and
// history is recorded only on uncapped runs (a capped re-run replays a
// prefix already recorded).
//
//marketlint:allocfree
func (a *Auction) runClock(res *Result, capT int, clearedOut *[]bool) (int, bool, error) {
	p, z, choices := a.prepare()
	step := a.sc.step
	dense := a.cfg.Engine == EngineDense
	var st *incrementalState
	if !dense {
		st = a.newIncrementalState()
	}

	// Round 0 is a full evaluation on both engines: z is built from
	// scratch in proxy order, exactly as the merged round 0 does.
	active := a.collect(p, choices)
	for i, c := range choices {
		if c >= 0 {
			a.proxies[i].sparse[c].addInto(z)
		} else {
			res.DropRound[i] = 0
			if st != nil && st.pureBuyer[i] {
				st.retired[i] = true
			}
		}
	}

	for t := 0; t < a.cfg.MaxRounds; t++ {
		if t > 0 {
			if dense {
				active = a.collect(p, choices)
				z.SetZero()
				for i, c := range choices {
					if c >= 0 {
						a.proxies[i].sparse[c].addInto(z)
						res.DropRound[i] = -1
					} else if res.DropRound[i] < 0 {
						res.DropRound[i] = t
					}
				}
			} else {
				active = a.advance(st, p, choices, res, z, t, active)
			}
		}
		if a.cfg.RecordHistory && capT < 0 {
			res.History = appendRound(res.History, t, p, z, active)
		}
		if clearedOut != nil {
			//marketlint:allow allocfree cleared-bit scratch is cached on the subMarket; growth is amortized across runs
			*clearedOut = append(*clearedOut, z.AllNonPositive(a.cfg.Epsilon))
		}
		if t == capT {
			return t, false, nil
		}
		a.cfg.Policy.StepInto(step, z, p)
		if !step.AllNonNegative(0) {
			//marketlint:allow allocfree error path; the run falls back to the merged clock
			return t, false, fmt.Errorf("core: policy %s produced a negative step", a.cfg.Policy.Name())
		}
		if step.MaxAbs() == 0 {
			return t, true, nil
		}
		p.AddInto(step)
		if !dense {
			st.dirty = st.dirty[:0]
			for r, s := range step {
				if s > 0 {
					//marketlint:allow allocfree dirty-pool scratch is cached on the Auction; growth is amortized across runs
					st.dirty = append(st.dirty, int32(r))
				}
			}
		}
	}
	return a.cfg.MaxRounds, false, nil
}

// runAutonomous runs the component clock to its natural end — frozen or
// out of rounds — recording cleared bits for the driver's global
// stop-round scan.
//
//marketlint:allocfree
func (c *subMarket) runAutonomous() {
	c.res = c.auc.resetResult(c.res)
	c.cleared = c.cleared[:0]
	c.end, c.frozen, c.err = c.auc.runClock(c.res, -1, &c.cleared)
}

// rerunCapped deterministically replays the component clock to exactly
// round capT: identical arithmetic, so identical states, with the scratch
// left holding round capT's prices and choices pre-step.
//
//marketlint:allocfree
func (c *subMarket) rerunCapped(capT int) {
	c.res = c.auc.resetResult(c.res)
	c.end, c.frozen, c.err = c.auc.runClock(c.res, capT, nil)
}

// runAll drives every component clock; under parallel it fans the
// components out over GOMAXPROCS workers — results are bit-identical to
// the serial sweep because the components share no state at all.
//
//marketlint:allocfree
func (ps *partitionState) runAll(parallel bool) {
	if !parallel {
		for _, c := range ps.comps {
			c.runAutonomous()
		}
		return
	}
	//marketlint:allow allocfree opt-in parallel fan-out; spawn cost is amortized over whole component clocks
	ps.runAllParallel()
}

// runAllParallel is runAll's goroutine fan-out: GOMAXPROCS workers pull
// components off a shared atomic cursor.
func (ps *partitionState) runAllParallel() {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ps.comps) {
		workers = len(ps.comps)
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(ps.comps) {
					return
				}
				ps.comps[i].runAutonomous()
			}
		}()
	}
	wg.Wait()
}

// findStopRound computes T, the merged clock's stop round: the first
// round at which every component's excess demand passed z ≤ ε. A frozen
// component's state — and so its cleared bit — is constant beyond its
// freeze round, which the min-index clamp encodes. The scan is bounded
// by the longest component run, past which no state changes; ok is
// false when no common cleared round exists (the merged clock stalls or
// runs out of rounds).
//
//marketlint:allocfree
func (ps *partitionState) findStopRound() (int, bool) {
	limit := 0
	for _, c := range ps.comps {
		if len(c.cleared) > limit {
			limit = len(c.cleared)
		}
	}
	for t := 0; t < limit; t++ {
		all := true
		for _, c := range ps.comps {
			i := t
			if i >= len(c.cleared) {
				i = len(c.cleared) - 1
			}
			if !c.cleared[i] {
				all = false
				break
			}
		}
		if all {
			return t, true
		}
	}
	return 0, false
}

// scatterState assembles the global settle state from the component
// scratches: prices scattered over the reserve vector (pools outside
// every component never move off it), choices and drop rounds scattered
// by global bid index. The parent's own scratch is the destination, so
// the subsequent settle call reads exactly what a merged run would have
// left there.
//
//marketlint:allocfree
func (a *Auction) scatterState(ps *partitionState, res *Result) (resource.Vector, []int) {
	p, _, choices := a.prepare()
	for _, c := range ps.comps {
		sp := c.auc.sc.p
		sch := c.auc.sc.choices
		for j, g := range c.pools {
			p[g] = sp[j]
		}
		for k, bi := range c.bids {
			choices[bi] = sch[k]
			res.DropRound[bi] = c.res.DropRound[k]
		}
	}
	return p, choices
}

// mergeHistory reconstructs the merged run's per-round history from the
// component histories, in global pool order: round t scatters each
// component's round min(t, end) snapshot — frozen components repeat
// their final state — over the reserve prices and a zero excess-demand
// vector, summing active-bidder counts.
//
//marketlint:allocfree
func (a *Auction) mergeHistory(ps *partitionState, res *Result, rounds int) {
	for t := 0; t < rounds; t++ {
		res.History = ps.appendMergedRound(res.History, t, a.cfg.Start)
	}
}

// appendMergedRound records one merged history snapshot, recycling the
// vectors of a Round beyond len(h) when RunReusing supplied one — the
// scatter form of appendRound.
//
//marketlint:allocfree
func (ps *partitionState) appendMergedRound(h []Round, t int, start resource.Vector) []Round {
	if len(h) < cap(h) {
		h = h[:len(h)+1]
	} else {
		//marketlint:allow allocfree history growth: runs once per new history depth, then the rounds above are recycled
		h = append(h, Round{})
	}
	r := &h[len(h)-1]
	r.T = t
	r.Prices = r.Prices.CopyFrom(start)
	r.ExcessDemand = r.ExcessDemand.Resize(len(start))
	r.ExcessDemand.SetZero()
	active := 0
	for _, c := range ps.comps {
		i := t
		if i >= len(c.res.History) {
			i = len(c.res.History) - 1
		}
		src := &c.res.History[i]
		for j, g := range c.pools {
			r.Prices[g] = src.Prices[j]
			r.ExcessDemand[g] = src.ExcessDemand[j]
		}
		active += src.ActiveBidders
	}
	r.ActiveBidders = active
	return h
}

// runPartitioned is the decomposition driver: autonomous component
// clocks, the global stop-round scan, capped re-runs for components that
// froze late, and the in-order merge. Every path either reproduces the
// merged run's outcome bit for bit or hands the run to the merged clock
// itself.
//
//marketlint:allocfree
func (a *Auction) runPartitioned(ps *partitionState, res *Result) (*Result, error) {
	ps.runAll(a.cfg.Parallel)
	for _, c := range ps.comps {
		if c.err != nil {
			// A component clock hit a negative step or a local stall.
			// The merged loop's error tests are global-vector checks —
			// it may error at a different round, or converge first and
			// not error at all — so reproduce its exact behavior by
			// running it.
			return a.runMerged(res)
		}
	}
	T, ok := ps.findStopRound()
	if !ok {
		allFrozen := true
		for _, c := range ps.comps {
			if !c.frozen {
				allFrozen = false
				break
			}
		}
		if allFrozen {
			// Every component froze but no round has them all cleared:
			// the merged clock stalls with positive excess demand. Let
			// it produce that exact error.
			return a.runMerged(res)
		}
		// At least one component stepped through every round and the
		// global stopping test never passed: the merged clock runs out
		// of rounds and settles its post-step state.
		if a.cfg.RecordHistory {
			a.mergeHistory(ps, res, a.cfg.MaxRounds)
		}
		p, choices := a.scatterState(ps, res)
		res.Converged = false
		res.Rounds = a.cfg.MaxRounds
		a.settle(res, p, choices)
		return res, ErrNoConvergence
	}
	if a.cfg.RecordHistory {
		a.mergeHistory(ps, res, T+1)
	}
	for _, c := range ps.comps {
		if c.frozen && c.end <= T {
			continue
		}
		// The component froze after T (or never froze): its scratch
		// holds a later state than the merged clock ever reached.
		// Replay it to exactly round T.
		c.rerunCapped(T)
		if c.err != nil {
			// Unreachable — the autonomous run already passed these
			// rounds error-free — but the fallback is always correct.
			return a.runMerged(res)
		}
	}
	p, choices := a.scatterState(ps, res)
	res.Converged = true
	res.Rounds = T + 1
	a.settle(res, p, choices)
	return res, nil
}
