package core

import (
	"fmt"
	"math"

	"clustermarket/internal/resource"
)

// SystemViolation describes one violated SYSTEM constraint, identified by
// the constraint number used in Section III.B.
type SystemViolation struct {
	Constraint int
	BidIndex   int // −1 for market-wide constraints
	Detail     string
}

func (v SystemViolation) Error() string {
	who := "market"
	if v.BidIndex >= 0 {
		who = fmt.Sprintf("bid %d", v.BidIndex)
	}
	return fmt.Sprintf("core: SYSTEM constraint (%d) violated by %s: %s", v.Constraint, who, v.Detail)
}

// CheckSystem verifies that a converged auction outcome is a feasible
// point of the SYSTEM optimization from Section III.B:
//
//	(1) x_u ∈ {0 ∪ Q_u}           allocations are whole bundles or nothing
//	(2) Σ_u x_u ≤ 0               no shortage is created
//	(3) π_u ≥ x_uᵀp   ∀u ∈ W      winners bid enough
//	(4) x_uᵀp = min_q qᵀp ∀u ∈ W  winners get their cheapest bundle
//	(5) π_u < min_q qᵀp  ∀u ∈ L   losers bid too little
//	(6) p ≥ 0                     prices are nonnegative
//
// eps is the numeric tolerance. All violations are returned, not just the
// first.
func CheckSystem(bids []*Bid, res *Result, eps float64) []SystemViolation {
	var out []SystemViolation

	// (6) prices nonnegative.
	if !res.Prices.AllNonNegative(eps) {
		out = append(out, SystemViolation{6, -1, fmt.Sprintf("prices %v", res.Prices)})
	}

	// (2) total excess nonpositive.
	total := make(resource.Vector, len(res.Prices))
	for _, x := range res.Allocations {
		if x != nil {
			total.AddInto(x)
		}
	}
	if !total.AllNonPositive(eps) {
		out = append(out, SystemViolation{2, -1, fmt.Sprintf("aggregate allocation %v has positive components", total)})
	}

	for i, b := range bids {
		x := res.Allocations[i]
		if x == nil {
			// (5) losers must be priced out of every bundle. For scalar
			// limits this is the paper's π_u < min_q qᵀp; for vector
			// limits each bundle is tested against its own limit.
			if j, ok := b.BestAffordable(res.Prices); ok {
				out = append(out, SystemViolation{5, i,
					fmt.Sprintf("bundle %d (cost %g) is affordable within limit %g",
						j, b.Bundles[j].Dot(res.Prices), b.LimitFor(j))})
			}
			continue
		}
		// (1) allocation is one of the bid's bundles; remember which.
		chosen := -1
		for j, q := range b.Bundles {
			if q.Equal(x, eps) {
				chosen = j
				break
			}
		}
		if chosen < 0 {
			out = append(out, SystemViolation{1, i, "allocation is not one of the bid bundles"})
			continue
		}
		pay := res.Payments[i]
		// (3) winners afford their payment under the governing limit.
		if pay > b.LimitFor(chosen)+eps {
			out = append(out, SystemViolation{3, i,
				fmt.Sprintf("payment %g exceeds limit %g", pay, b.LimitFor(chosen))})
		}
		// Payment must equal the chosen bundle's cost at final prices.
		cost := b.Bundles[chosen].Dot(res.Prices)
		if math.Abs(pay-cost) > eps {
			out = append(out, SystemViolation{4, i,
				fmt.Sprintf("payment %g differs from chosen bundle cost %g", pay, cost)})
		}
		// (4) winners attain their optimal bundle: no alternative
		// affordable bundle offers strictly more surplus (for scalar
		// limits this is exactly "the cheapest bundle").
		surplus := b.LimitFor(chosen) - cost
		for j, q := range b.Bundles {
			c := q.Dot(res.Prices)
			if c > b.LimitFor(j) {
				continue
			}
			if b.LimitFor(j)-c > surplus+eps {
				out = append(out, SystemViolation{4, i,
					fmt.Sprintf("bundle %d (surplus %g) beats chosen bundle %d (surplus %g)",
						j, b.LimitFor(j)-c, chosen, surplus)})
				break
			}
		}
	}
	return out
}
