package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clustermarket/internal/resource"
)

func TestAdditiveStep(t *testing.T) {
	p := Additive{Alpha: 0.1}
	z := resource.Vector{10, -5, 0}
	got := PolicyStep(p, z, resource.Vector{1, 1, 1})
	want := resource.Vector{1, 0, 0}
	if !got.Equal(want, 1e-12) {
		t.Errorf("Step = %v, want %v", got, want)
	}
}

func TestCappedStep(t *testing.T) {
	p := Capped{Alpha: 0.1, Delta: 0.5, MinStep: 0.05}
	z := resource.Vector{100, 1, 0.1, -3}
	got := PolicyStep(p, z, resource.Vector{1, 1, 1, 1})
	// 100·0.1=10 capped at 0.5; 1·0.1=0.1; 0.1·0.1=0.01 floored to 0.05;
	// negative excess leaves the price alone.
	want := resource.Vector{0.5, 0.1, 0.05, 0}
	if !got.Equal(want, 1e-12) {
		t.Errorf("Step = %v, want %v", got, want)
	}
}

func TestProportionalStep(t *testing.T) {
	p := Proportional{Alpha: 1, Frac: 0.1, Base: 1}
	z := resource.Vector{100, 100}
	got := PolicyStep(p, z, resource.Vector{50, 0})
	// Pool 0: cap 0.1·50 = 5. Pool 1: price 0 falls back to base cap 0.1.
	want := resource.Vector{5, 0.1}
	if !got.Equal(want, 1e-12) {
		t.Errorf("Step = %v, want %v", got, want)
	}
}

func TestCostNormalizedStep(t *testing.T) {
	p := CostNormalized{Alpha: 0.01, Cost: resource.Vector{100, 1, 0}, DeltaFrac: 0.05}
	z := resource.Vector{1, 1, 1}
	got := PolicyStep(p, z, resource.Vector{0, 0, 0})
	// Pool 0: 0.01·1·100 = 1 capped at 0.05·100 = 5 → 1.
	// Pool 1: 0.01·1·1 = 0.01.
	// Pool 2: zero cost falls back to 1 → 0.01.
	want := resource.Vector{1, 0.01, 0.01}
	if !got.Equal(want, 1e-12) {
		t.Errorf("Step = %v, want %v", got, want)
	}
}

func TestPolicyNames(t *testing.T) {
	policies := []IncrementPolicy{
		Additive{Alpha: 1},
		Capped{Alpha: 1, Delta: 1},
		Proportional{Alpha: 1, Frac: 1, Base: 1},
		CostNormalized{Alpha: 1, DeltaFrac: 1},
		DefaultPolicy(),
	}
	seen := map[string]bool{}
	for _, p := range policies {
		n := p.Name()
		if n == "" {
			t.Errorf("%T has empty name", p)
		}
		seen[n] = true
	}
	if len(seen) < 4 {
		t.Error("policy names collide")
	}
}

func TestValidatePolicy(t *testing.T) {
	bad := []IncrementPolicy{
		nil,
		Additive{Alpha: 0},
		Capped{Alpha: 0, Delta: 1},
		Capped{Alpha: 1, Delta: 0},
		Capped{Alpha: 1, Delta: 1, MinStep: 2},
		Capped{Alpha: 1, Delta: 1, MinStep: -1},
		Proportional{Alpha: 0, Frac: 1, Base: 1},
		Proportional{Alpha: 1, Frac: 0, Base: 1},
		Proportional{Alpha: 1, Frac: 1, Base: 0},
		CostNormalized{Alpha: 0, DeltaFrac: 1},
		CostNormalized{Alpha: 1, DeltaFrac: 0},
	}
	for i, p := range bad {
		if err := validatePolicy(p); err == nil {
			t.Errorf("case %d (%v): accepted", i, p)
		}
	}
	good := []IncrementPolicy{
		Additive{Alpha: 0.1},
		Capped{Alpha: 0.1, Delta: 1, MinStep: 0.5},
		Proportional{Alpha: 1, Frac: 0.1, Base: 1},
		CostNormalized{Alpha: 1, DeltaFrac: 0.1},
		stallPolicy{}, // unknown types pass validation; Run detects stalls
	}
	for i, p := range good {
		if err := validatePolicy(p); err != nil {
			t.Errorf("case %d: rejected: %v", i, err)
		}
	}
}

// TestQuickPolicyStepsNonNegativeAndTargeted: every policy must return a
// nonnegative step that only moves pools with positive excess demand.
func TestQuickPolicyStepsNonNegativeAndTargeted(t *testing.T) {
	policies := []IncrementPolicy{
		Additive{Alpha: 0.3},
		Capped{Alpha: 0.3, Delta: 0.7, MinStep: 0.01},
		Proportional{Alpha: 0.3, Frac: 0.2, Base: 1},
		CostNormalized{Alpha: 0.3, Cost: resource.Vector{1, 10, 100, 5}, DeltaFrac: 0.2},
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		z := make(resource.Vector, 4)
		p := make(resource.Vector, 4)
		for i := range z {
			z[i] = rng.Float64()*40 - 20
			p[i] = rng.Float64() * 10
		}
		for _, pol := range policies {
			step := PolicyStep(pol, z, p)
			if !step.AllNonNegative(0) {
				return false
			}
			for i := range step {
				if step[i] > 0 && z[i] <= 0 {
					return false
				}
				if z[i] > 0 && step[i] == 0 {
					return false // positive excess demand must move
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestStepIntoOverwritesScratch pins the StepInto contract: dst is
// scratch that may carry a previous round's step, and the policy must
// overwrite every component — a stale positive entry left behind for a
// pool with nonpositive excess demand would move a price that must not
// move.
func TestStepIntoOverwritesScratch(t *testing.T) {
	policies := []IncrementPolicy{
		Additive{Alpha: 0.3},
		Capped{Alpha: 0.3, Delta: 0.7, MinStep: 0.01},
		Proportional{Alpha: 0.3, Frac: 0.2, Base: 1},
		CostNormalized{Alpha: 0.3, Cost: resource.Vector{1, 10, 100}, DeltaFrac: 0.2},
	}
	z := resource.Vector{5, -5, 0}
	p := resource.Vector{1, 2, 3}
	for _, pol := range policies {
		dst := resource.Vector{99, 99, 99} // poisoned scratch
		pol.StepInto(dst, z, p)
		want := PolicyStep(pol, z, p)
		if !dst.Equal(want, 0) {
			t.Errorf("%s: StepInto over poisoned scratch = %v, want %v", pol.Name(), dst, want)
		}
		if dst[1] != 0 || dst[2] != 0 {
			t.Errorf("%s: stale scratch survived for nonpositive z: %v", pol.Name(), dst)
		}
	}
}
