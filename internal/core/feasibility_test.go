package core

import (
	"strings"
	"testing"

	"clustermarket/internal/resource"
)

func feasibleFixture() ([]*Bid, *Result) {
	bids := []*Bid{
		{User: "w", Limit: 30, Bundles: []resource.Vector{{10}}},
		{User: "l", Limit: 5, Bundles: []resource.Vector{{10}}},
		{User: "s", Limit: -1, Bundles: []resource.Vector{{-10}}},
	}
	res := &Result{
		Converged:   true,
		Prices:      resource.Vector{2},
		Allocations: []resource.Vector{{10}, nil, {-10}},
		Payments:    []float64{20, 0, -20},
		Winners:     []int{0, 2},
		Losers:      []int{1},
	}
	return bids, res
}

func TestCheckSystemAccepts(t *testing.T) {
	bids, res := feasibleFixture()
	if v := CheckSystem(bids, res, 1e-9); len(v) != 0 {
		t.Fatalf("violations on feasible point: %v", v)
	}
}

func TestCheckSystemConstraint1(t *testing.T) {
	bids, res := feasibleFixture()
	res.Allocations[0] = resource.Vector{7} // not one of the bundles
	res.Payments[0] = 14
	found := false
	for _, v := range CheckSystem(bids, res, 1e-9) {
		if v.Constraint == 1 && v.BidIndex == 0 {
			found = true
		}
	}
	if !found {
		t.Error("constraint (1) violation missed")
	}
}

func TestCheckSystemConstraint2(t *testing.T) {
	bids, res := feasibleFixture()
	res.Allocations[2] = nil // drop the seller: aggregate becomes +10
	res.Payments[2] = 0
	found := false
	for _, v := range CheckSystem(bids, res, 1e-9) {
		if v.Constraint == 2 {
			found = true
		}
	}
	if !found {
		t.Error("constraint (2) violation missed")
	}
}

func TestCheckSystemConstraint3(t *testing.T) {
	bids, res := feasibleFixture()
	bids[0].Limit = 15 // winner now pays 20 > 15
	violations := CheckSystem(bids, res, 1e-9)
	found := false
	for _, v := range violations {
		if v.Constraint == 3 && v.BidIndex == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("constraint (3) violation missed: %v", violations)
	}
}

func TestCheckSystemConstraint4(t *testing.T) {
	bids, res := feasibleFixture()
	res.Payments[0] = 25 // overcharged relative to cheapest bundle cost 20
	found := false
	for _, v := range CheckSystem(bids, res, 1e-9) {
		if v.Constraint == 4 && v.BidIndex == 0 {
			found = true
		}
	}
	if !found {
		t.Error("constraint (4) violation missed")
	}
}

func TestCheckSystemConstraint5(t *testing.T) {
	bids, res := feasibleFixture()
	bids[1].Limit = 50 // loser could afford cost 20
	found := false
	for _, v := range CheckSystem(bids, res, 1e-9) {
		if v.Constraint == 5 && v.BidIndex == 1 {
			found = true
		}
	}
	if !found {
		t.Error("constraint (5) violation missed")
	}
}

func TestCheckSystemConstraint6(t *testing.T) {
	bids, res := feasibleFixture()
	res.Prices = resource.Vector{-2}
	found := false
	for _, v := range CheckSystem(bids, res, 1e-9) {
		if v.Constraint == 6 {
			found = true
		}
	}
	if !found {
		t.Error("constraint (6) violation missed")
	}
}

func TestSystemViolationError(t *testing.T) {
	v := SystemViolation{Constraint: 3, BidIndex: 2, Detail: "boom"}
	if !strings.Contains(v.Error(), "constraint (3)") || !strings.Contains(v.Error(), "bid 2") {
		t.Errorf("Error = %q", v.Error())
	}
	m := SystemViolation{Constraint: 2, BidIndex: -1, Detail: "agg"}
	if !strings.Contains(m.Error(), "market") {
		t.Errorf("Error = %q", m.Error())
	}
}
