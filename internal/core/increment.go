package core

import (
	"errors"
	"fmt"

	"clustermarket/internal/resource"
)

// IncrementPolicy is the price update function g(x, p) of Algorithm 1: it
// maps the excess demand vector z and current prices p into a nonnegative
// additive price step. Section III.C.2 discusses the design space; each
// implementation below is one of the paper's suggestions and is exercised
// by the ablation benchmarks.
//
// The contract is allocation-free: StepInto writes the step into a
// caller-provided vector, so the clock's round loop can evaluate the
// policy thousands of times without touching the heap. One-shot callers
// can use the PolicyStep helper instead.
type IncrementPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// StepInto writes g(x, p) ≥ 0 into dst, which has len(z). Every
	// component must be written (zero where z ≤ 0): dst is scratch and may
	// hold a previous round's step on entry. Only pools with z > 0 may
	// move.
	//marketlint:allocfree
	StepInto(dst, z, p resource.Vector)
}

// PolicyStep allocates a fresh vector and applies p.StepInto — the
// convenience form of the policy contract for tests and one-shot callers
// off the clock's hot path.
func PolicyStep(pol IncrementPolicy, z, p resource.Vector) resource.Vector {
	dst := make(resource.Vector, len(z))
	pol.StepInto(dst, z, p)
	return dst
}

// Additive is the simplest choice g(x, p) = α·z⁺. The paper notes it moves
// too fast early and too slow late.
type Additive struct {
	// Alpha is the small positive scalar α.
	Alpha float64
}

// Name implements IncrementPolicy.
func (a Additive) Name() string { return fmt.Sprintf("additive(α=%g)", a.Alpha) }

// StepInto implements IncrementPolicy.
func (a Additive) StepInto(dst, z, p resource.Vector) {
	for i, zi := range z {
		if zi > 0 {
			dst[i] = a.Alpha * zi
		} else {
			dst[i] = 0
		}
	}
}

// Capped is the paper's preferred Equation (3): g = min(α·z⁺, δ·e), where
// e is the all-ones vector, so no price moves by more than δ per round. A
// MinStep floor guarantees progress when excess demand is tiny.
type Capped struct {
	Alpha, Delta float64
	// MinStep, when positive, is the smallest increment applied to a pool
	// with positive excess demand. It bounds the number of rounds.
	MinStep float64
}

// Name implements IncrementPolicy.
func (c Capped) Name() string {
	return fmt.Sprintf("capped(α=%g, δ=%g, min=%g)", c.Alpha, c.Delta, c.MinStep)
}

// StepInto implements IncrementPolicy.
func (c Capped) StepInto(dst, z, p resource.Vector) {
	for i, zi := range z {
		if zi <= 0 {
			dst[i] = 0
			continue
		}
		s := c.Alpha * zi
		if s > c.Delta {
			s = c.Delta
		}
		if s < c.MinStep {
			s = c.MinStep
		}
		dst[i] = s
	}
}

// Proportional caps each step at a fraction of the pool's current price,
// the "no price changes by more than some fixed fraction" reading of
// Section III.C.2. Base avoids stalling at p = 0.
type Proportional struct {
	Alpha, Frac, Base float64
}

// Name implements IncrementPolicy.
func (pr Proportional) Name() string {
	return fmt.Sprintf("proportional(α=%g, frac=%g)", pr.Alpha, pr.Frac)
}

// StepInto implements IncrementPolicy.
func (pr Proportional) StepInto(dst, z, p resource.Vector) {
	for i, zi := range z {
		if zi <= 0 {
			dst[i] = 0
			continue
		}
		lim := pr.Frac * p[i]
		if base := pr.Frac * pr.Base; lim < base {
			lim = base
		}
		s := pr.Alpha * zi
		if s > lim {
			s = lim
		}
		dst[i] = s
	}
}

// CostNormalized scales increments by each pool's base cost, the paper's
// "normalization for differences in the base resource prices": a pool
// whose unit cost is 100× smaller moves 100× more slowly, keeping final
// prices in proportion.
type CostNormalized struct {
	Alpha float64
	// Cost holds the per-pool base costs c(r); pools with nonpositive
	// cost fall back to 1.
	Cost resource.Vector
	// DeltaFrac caps each step at DeltaFrac·Cost[i].
	DeltaFrac float64
}

// Name implements IncrementPolicy.
func (cn CostNormalized) Name() string {
	return fmt.Sprintf("cost-normalized(α=%g, δ=%g)", cn.Alpha, cn.DeltaFrac)
}

// StepInto implements IncrementPolicy.
func (cn CostNormalized) StepInto(dst, z, p resource.Vector) {
	for i, zi := range z {
		if zi <= 0 {
			dst[i] = 0
			continue
		}
		c := 1.0
		if i < len(cn.Cost) && cn.Cost[i] > 0 {
			c = cn.Cost[i]
		}
		s := cn.Alpha * zi * c
		if cap := cn.DeltaFrac * c; s > cap {
			s = cap
		}
		dst[i] = s
	}
}

// DefaultPolicy returns the increment policy used across the experiments:
// the paper's capped rule with a small floor for guaranteed progress.
func DefaultPolicy() IncrementPolicy {
	return Capped{Alpha: 0.02, Delta: 0.25, MinStep: 0.001}
}

// validatePolicy rejects obviously broken parameterizations early.
func validatePolicy(p IncrementPolicy) error {
	switch v := p.(type) {
	case Additive:
		if v.Alpha <= 0 {
			return errors.New("core: Additive.Alpha must be positive")
		}
	case Capped:
		if v.Alpha <= 0 || v.Delta <= 0 {
			return errors.New("core: Capped.Alpha and Delta must be positive")
		}
		if v.MinStep < 0 || v.MinStep > v.Delta {
			return errors.New("core: Capped.MinStep must be in [0, Delta]")
		}
	case Proportional:
		if v.Alpha <= 0 || v.Frac <= 0 || v.Base <= 0 {
			return errors.New("core: Proportional parameters must be positive")
		}
	case CostNormalized:
		if v.Alpha <= 0 || v.DeltaFrac <= 0 {
			return errors.New("core: CostNormalized parameters must be positive")
		}
	case nil:
		return errors.New("core: nil increment policy")
	}
	return nil
}
