package core

import (
	"errors"
	"math/rand"
	"testing"

	"clustermarket/internal/resource"
)

// Metamorphic properties of the clock auction: known input
// transformations with exactly predictable output transformations. They
// catch whole classes of bugs (unit mix-ups, order dependence, phantom
// demand) without any oracle beyond the auction itself.

// randomIntegerMarket builds a market whose bundle quantities are small
// integers. Integer quantities make every excess-demand component an
// exact float64 sum regardless of accumulation order, which is what lets
// the permutation and zero-demand properties demand bit-identical — not
// merely approximately equal — results.
func randomIntegerMarket(rng *rand.Rand, pools, bidders int) (*resource.Registry, []*Bid, resource.Vector) {
	regPools := make([]resource.Pool, pools)
	for i := range regPools {
		regPools[i] = resource.Pool{Cluster: string(rune('a' + i/4)), Dim: resource.Dimension(i % 4)}
	}
	reg := resource.NewRegistry(regPools...)
	var bids []*Bid
	for u := 0; u < bidders; u++ {
		nb := 1 + rng.Intn(3)
		b := &Bid{User: "u"}
		for k := 0; k < nb; k++ {
			v := reg.Zero()
			for c := 0; c < 1+rng.Intn(3); c++ {
				v[rng.Intn(pools)] = float64(1 + rng.Intn(9))
			}
			b.Bundles = append(b.Bundles, v)
		}
		switch rng.Intn(5) {
		case 0: // seller: negate every bundle, ask to be paid
			for _, v := range b.Bundles {
				for i := range v {
					v[i] = -v[i]
				}
			}
			b.Limit = -(1 + rng.Float64()*20)
		case 1: // trader: one demanded and one offered component per bundle
			for _, v := range b.Bundles {
				v.SetZero()
				i := rng.Intn(pools)
				j := (i + 1 + rng.Intn(pools-1)) % pools
				v[i] = float64(1 + rng.Intn(9))
				v[j] = -float64(1 + rng.Intn(9))
			}
			b.Limit = 5 + rng.Float64()*60
		default: // buyer
			b.Limit = 5 + rng.Float64()*120
		}
		bids = append(bids, b)
	}
	start := reg.Zero()
	for i := range start {
		start[i] = 0.5 + rng.Float64()*2
	}
	return reg, bids, start
}

func mustRun(t *testing.T, reg *resource.Registry, bids []*Bid, cfg Config) *Result {
	t.Helper()
	a, err := NewAuction(reg, bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil && !errors.Is(err, ErrNoConvergence) {
		t.Fatal(err)
	}
	return res
}

// TestScalingCovariance: scaling every price-dimensioned input by k —
// bid limits, reserve/start prices, and the increment policy's
// price-dimensioned parameters (α maps demand to price; δ and the floor
// are absolute price steps) — scales every clearing price and payment by
// exactly k, and changes nothing else: same winners, same allocations,
// same rounds, same chosen bundles. With k a power of two the float64
// scaling is exact at every operation (every comparison and update is
// homogeneous of degree one in the scaled quantities), so the test
// demands bit equality, not tolerance.
func TestScalingCovariance(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		reg, bids, start := randomIntegerMarket(rng, 12, 24)
		for _, k := range []float64{0.25, 0.5, 2, 8} {
			for _, engine := range []Engine{EngineIncremental, EngineDense} {
				base := Config{
					Start:  start,
					Policy: Capped{Alpha: 0.02, Delta: 0.25, MinStep: 0.001},
					Engine: engine,
				}
				res := mustRun(t, reg, bids, base)

				scaledBids := make([]*Bid, len(bids))
				for i, b := range bids {
					sb := *b
					sb.Limit = b.Limit * k
					sb.BundleLimits = nil
					scaledBids[i] = &sb
				}
				scaledStart := start.Clone()
				for i := range scaledStart {
					scaledStart[i] *= k
				}
				scaled := Config{
					Start:  scaledStart,
					Policy: Capped{Alpha: 0.02 * k, Delta: 0.25 * k, MinStep: 0.001 * k},
					Engine: engine,
				}
				sres := mustRun(t, reg, scaledBids, scaled)

				if sres.Converged != res.Converged || sres.Rounds != res.Rounds {
					t.Fatalf("seed %d k=%g %v: converged/rounds (%v,%d) vs (%v,%d)",
						seed, k, engine, sres.Converged, sres.Rounds, res.Converged, res.Rounds)
				}
				for i := range start {
					if sres.Prices[i] != res.Prices[i]*k {
						t.Fatalf("seed %d k=%g %v: pool %d price %g, want %g·%g",
							seed, k, engine, i, sres.Prices[i], res.Prices[i], k)
					}
				}
				for i := range bids {
					if sres.IsWinner(i) != res.IsWinner(i) || sres.ChosenBundle[i] != res.ChosenBundle[i] {
						t.Fatalf("seed %d k=%g %v: bid %d outcome changed under scaling", seed, k, engine, i)
					}
					if sres.Payments[i] != res.Payments[i]*k {
						t.Fatalf("seed %d k=%g %v: bid %d payment %g, want %g·%g",
							seed, k, engine, i, sres.Payments[i], res.Payments[i], k)
					}
					if res.IsWinner(i) && !vectorsExactlyEqual(sres.Allocations[i], res.Allocations[i]) {
						t.Fatalf("seed %d k=%g %v: bid %d allocation changed under scaling", seed, k, engine, i)
					}
				}
			}
		}
	}
}

// TestPermutationInvariance: permuting order-submission arrival within
// one batch leaves the auction results bit-identical (modulo the same
// permutation of per-bid outcomes). The clock must treat the batch as a
// set: prices depend on aggregate demand, and with integer quantities the
// aggregates are exact sums, so even float accumulation order may not
// leak through.
func TestPermutationInvariance(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		reg, bids, start := randomIntegerMarket(rng, 10, 20)
		perm := rng.Perm(len(bids))
		permBids := make([]*Bid, len(bids))
		for i, p := range perm {
			// permBids[i] is original bid perm[i]; clone so the two runs
			// share no mutable state.
			b := *bids[p]
			permBids[i] = &b
		}
		for _, engine := range []Engine{EngineIncremental, EngineDense} {
			cfg := Config{Start: start, Engine: engine}
			res := mustRun(t, reg, bids, cfg)
			pres := mustRun(t, reg, permBids, cfg)

			if pres.Converged != res.Converged || pres.Rounds != res.Rounds {
				t.Fatalf("seed %d %v: converged/rounds changed under permutation", seed, engine)
			}
			if !vectorsExactlyEqual(pres.Prices, res.Prices) {
				t.Fatalf("seed %d %v: prices changed under permutation:\n%v\nvs\n%v",
					seed, engine, pres.Prices, res.Prices)
			}
			for i, p := range perm {
				if pres.IsWinner(i) != res.IsWinner(p) ||
					pres.Payments[i] != res.Payments[p] ||
					pres.ChosenBundle[i] != res.ChosenBundle[p] {
					t.Fatalf("seed %d %v: bid %d(→%d) outcome changed under permutation", seed, engine, p, i)
				}
				if res.IsWinner(p) && !vectorsExactlyEqual(pres.Allocations[i], res.Allocations[p]) {
					t.Fatalf("seed %d %v: bid %d(→%d) allocation changed under permutation", seed, engine, p, i)
				}
			}
		}
	}
}

// TestZeroDemandBidderNeutral: adding a bidder that can never afford any
// bundle (its limit is below any bundle's cost at the starting prices,
// and clock prices only rise) changes nothing for anyone else,
// bit-for-bit — no phantom demand, no index bookkeeping leaks. The
// inert bidder itself must lose with a round-0 drop.
func TestZeroDemandBidderNeutral(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		reg, bids, start := randomIntegerMarket(rng, 10, 20)
		// Every start price is ≥ 0.5, every bundle component ≥ 1, so a
		// buyer with limit 0 is priced out at round 0 and forever.
		inert := &Bid{User: "inert", Limit: 0}
		v := reg.Zero()
		v[rng.Intn(reg.Len())] = float64(1 + rng.Intn(5))
		inert.Bundles = []resource.Vector{v}
		insertAt := rng.Intn(len(bids) + 1)
		augmented := make([]*Bid, 0, len(bids)+1)
		augmented = append(augmented, bids[:insertAt]...)
		augmented = append(augmented, inert)
		augmented = append(augmented, bids[insertAt:]...)

		for _, engine := range []Engine{EngineIncremental, EngineDense} {
			cfg := Config{Start: start, Engine: engine}
			res := mustRun(t, reg, bids, cfg)
			ares := mustRun(t, reg, augmented, cfg)

			if ares.Converged != res.Converged || ares.Rounds != res.Rounds {
				t.Fatalf("seed %d %v: converged/rounds changed by inert bidder", seed, engine)
			}
			if !vectorsExactlyEqual(ares.Prices, res.Prices) {
				t.Fatalf("seed %d %v: prices changed by inert bidder", seed, engine)
			}
			for i := range bids {
				j := i
				if i >= insertAt {
					j = i + 1
				}
				if ares.IsWinner(j) != res.IsWinner(i) ||
					ares.Payments[j] != res.Payments[i] ||
					ares.ChosenBundle[j] != res.ChosenBundle[i] {
					t.Fatalf("seed %d %v: bid %d outcome changed by inert bidder", seed, engine, i)
				}
				if res.IsWinner(i) && !vectorsExactlyEqual(ares.Allocations[j], res.Allocations[i]) {
					t.Fatalf("seed %d %v: bid %d allocation changed by inert bidder", seed, engine, i)
				}
			}
			if ares.IsWinner(insertAt) {
				t.Fatalf("seed %d %v: inert bidder won", seed, engine)
			}
			if ares.DropRound[insertAt] != 0 {
				t.Fatalf("seed %d %v: inert bidder drop round = %d, want 0", seed, engine, ares.DropRound[insertAt])
			}
		}
	}
}

func vectorsExactlyEqual(a, b resource.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
