package core

import "clustermarket/internal/resource"

// sparseBundle is the packed form of a bundle vector used on the clock's
// hot path. Real bids touch a handful of pools (one cluster × three
// dimensions) out of hundreds, so evaluating qᵀp over only the non-zero
// components turns each auction round from O(U·R) into O(Σ nnz).
type sparseBundle struct {
	idx []int32
	val []float64
}

// newSparseBundle packs the non-zero components of q.
func newSparseBundle(q resource.Vector) sparseBundle {
	var s sparseBundle
	for i, v := range q {
		if v != 0 {
			s.idx = append(s.idx, int32(i))
			s.val = append(s.val, v)
		}
	}
	return s
}

// dot computes qᵀp touching only non-zero components.
//
//marketlint:allocfree
func (s sparseBundle) dot(p resource.Vector) float64 {
	var sum float64
	for k, i := range s.idx {
		sum += s.val[k] * p[i]
	}
	return sum
}

// addInto accumulates the bundle into dense vector z.
//
//marketlint:allocfree
func (s sparseBundle) addInto(z resource.Vector) {
	for k, i := range s.idx {
		z[i] += s.val[k]
	}
}

// valueAt returns the bundle's component in pool r and whether the bundle
// touches it at all. The miss/hit distinction matters to the incremental
// engine's determinism contract: a stale-pool re-sum must skip untouched
// bundles entirely, exactly as addInto never visits them, rather than
// add a 0.0 (which is not always a bit-level no-op in IEEE arithmetic).
// Bundles hold a handful of non-zero components, so the linear scan is
// cheaper than any index structure.
//
//marketlint:allocfree
func (s sparseBundle) valueAt(r int32) (float64, bool) {
	for k, i := range s.idx {
		if i == r {
			return s.val[k], true
		}
	}
	return 0, false
}
