package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"clustermarket/internal/resource"
)

// randomRegionalMarket builds a market with mostly-regional bidding —
// the paper's planet-wide topology: pools grouped into regions, each bid
// confined to one region's pools, with an occasional two-region bridge
// bid so the component structure varies across seeds. It returns the
// bids alongside the registry.
func randomRegionalMarket(rng *rand.Rand, nRegions int) (*resource.Registry, []*Bid) {
	regionPools := make([][]int, nRegions)
	var pools []resource.Pool
	for reg := 0; reg < nRegions; reg++ {
		n := rng.Intn(3) + 1
		for k := 0; k < n; k++ {
			regionPools[reg] = append(regionPools[reg], len(pools))
			pools = append(pools, resource.Pool{
				Cluster: fmt.Sprintf("r%d-c%d", reg, k), Dim: resource.CPU,
			})
		}
	}
	registry := resource.NewRegistry(pools...)

	n := rng.Intn(40) + nRegions
	bids := make([]*Bid, 0, n)
	for u := 0; u < n; u++ {
		// Pick the bid's pool universe: one region, or (1 in 8) a bridge
		// across two regions.
		universe := regionPools[rng.Intn(nRegions)]
		if nRegions > 1 && rng.Intn(8) == 0 {
			universe = append(append([]int{}, universe...), regionPools[rng.Intn(nRegions)]...)
		}
		nAlt := rng.Intn(3) + 1
		bundles := make([]resource.Vector, 0, nAlt)
		kind := rng.Intn(4) // 0,1: buyer  2: seller  3: trader
		for a := 0; a < nAlt; a++ {
			v := make(resource.Vector, registry.Len())
			for k := 0; k < rng.Intn(3)+1; k++ {
				q := float64(rng.Intn(20) + 1)
				switch {
				case kind == 2:
					q = -q
				case kind == 3 && rng.Intn(2) == 0:
					q = -q
				}
				v[universe[rng.Intn(len(universe))]] = q
			}
			if v.IsZero() {
				v[universe[rng.Intn(len(universe))]] = 1
			}
			bundles = append(bundles, v)
		}
		b := &Bid{User: fmt.Sprintf("u%d", u), Bundles: bundles}
		limit := func() float64 {
			if b.Class() == PureSeller {
				return -float64(rng.Intn(100) + 1)
			}
			return float64(rng.Intn(250) + 10)
		}
		if rng.Intn(2) == 0 {
			b.BundleLimits = make([]float64, len(bundles))
			for i := range b.BundleLimits {
				b.BundleLimits[i] = limit()
			}
		} else {
			b.Limit = limit()
		}
		bids = append(bids, b)
	}
	return registry, bids
}

// randomPartitionPolicy draws one of the four built-in policies so the
// differential exercises every remapPolicy arm, including the per-pool
// Cost vector gather.
func randomPartitionPolicy(rng *rand.Rand, r int) IncrementPolicy {
	switch rng.Intn(4) {
	case 0:
		return Additive{Alpha: 0.01 + rng.Float64()*0.05}
	case 1:
		return Proportional{Alpha: 0.02 + rng.Float64()*0.05, Frac: 0.5, Base: 0.5}
	case 2:
		cost := make(resource.Vector, r)
		for i := range cost {
			cost[i] = 0.5 + rng.Float64()*4
		}
		return CostNormalized{Alpha: 0.05, Cost: cost, DeltaFrac: 0.5}
	default:
		return Capped{Alpha: 0.01 + rng.Float64()*0.1, Delta: 0.2 + rng.Float64(), MinStep: 0.005}
	}
}

// TestPartitionedMatchesMergedDifferential is the decomposition's
// determinism contract, the three-way extension of the dense/incremental
// differential: over randomized regional markets — multiple connected
// components, all four built-in policies, scalar and vector limits,
// ε = 0 and ε > 0, converging and non-converging clocks, serial and
// parallel — the partitioned path's results are bit-identical to the
// merged single-clock run on both engines. Exact float equality on every
// Result field, including per-round history, is the assertion.
func TestPartitionedMatchesMergedDifferential(t *testing.T) {
	decomposed := 0
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(9000 + seed))
		registry, bids := randomRegionalMarket(rng, rng.Intn(5)+2)
		start := make(resource.Vector, registry.Len())
		for i := range start {
			start[i] = rng.Float64() * 2
		}
		cfg := Config{
			Start:         start,
			Policy:        randomPartitionPolicy(rng, registry.Len()),
			Epsilon:       float64(rng.Intn(2)) * 0.01,
			MaxRounds:     300,
			Parallel:      seed%3 == 0,
			RecordHistory: true,
		}

		run := func(engine Engine, mode PartitionMode) (*Result, error, int) {
			c := cfg
			c.Engine = engine
			c.Partition = mode
			a, err := NewAuction(registry, bids, c)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			res, runErr := a.Run()
			return res, runErr, a.Components()
		}

		ref, refErr, _ := run(EngineDense, PartitionOff)
		for _, engine := range []Engine{EngineDense, EngineIncremental} {
			for _, mode := range []PartitionMode{PartitionOff, PartitionAuto} {
				if engine == EngineDense && mode == PartitionOff {
					continue
				}
				got, gotErr, comps := run(engine, mode)
				if mode == PartitionAuto && engine == EngineDense && comps > 1 {
					decomposed++
				}
				tag := fmt.Sprintf("seed %d %v/partition=%v (%d components)", seed, engine, mode, comps)
				if (refErr == nil) != (gotErr == nil) || gotErr != nil && !errors.Is(gotErr, refErr) {
					t.Fatalf("%s: errors differ: ref=%v got=%v", tag, refErr, gotErr)
				}
				if (ref == nil) != (got == nil) {
					t.Fatalf("%s: nil result mismatch: ref=%v got=%v", tag, refErr, gotErr)
				}
				if ref == nil {
					continue
				}
				mustEqualResults(t, tag, ref, got)
			}
		}
	}
	// The generator must actually exercise the decomposition, not just
	// single-component fallbacks.
	if decomposed < 60 {
		t.Fatalf("only %d/120 seeds decomposed into multiple components", decomposed)
	}
}

// TestPartitionComponents pins the union-find construction itself.
func TestPartitionComponents(t *testing.T) {
	pool := func(i int) resource.Pool {
		return resource.Pool{Cluster: fmt.Sprintf("c%d", i), Dim: resource.CPU}
	}
	registry := resource.NewRegistry(pool(0), pool(1), pool(2), pool(3))
	bundle := func(idx int, q float64) resource.Vector {
		v := make(resource.Vector, registry.Len())
		v[idx] = q
		return v
	}
	newAuction := func(t *testing.T, bids []*Bid, mode PartitionMode) *Auction {
		t.Helper()
		a, err := NewAuction(registry, bids, Config{
			Start:     resource.Vector{1, 1, 1, 1},
			Policy:    Capped{Alpha: 0.1, Delta: 0.5, MinStep: 0.01},
			MaxRounds: 5000,
			Partition: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	t.Run("DisjointRegions", func(t *testing.T) {
		bids := []*Bid{
			{User: "b0", Limit: 50, Bundles: []resource.Vector{bundle(0, 5)}},
			{User: "b1", Limit: 50, Bundles: []resource.Vector{bundle(1, 5)}},
			{User: "b2", Limit: 50, Bundles: []resource.Vector{bundle(2, 5)}},
		}
		if got := newAuction(t, bids, PartitionAuto).Components(); got != 3 {
			t.Fatalf("Components = %d, want 3", got)
		}
	})

	t.Run("PartitionOffForcesOne", func(t *testing.T) {
		bids := []*Bid{
			{User: "b0", Limit: 50, Bundles: []resource.Vector{bundle(0, 5)}},
			{User: "b1", Limit: 50, Bundles: []resource.Vector{bundle(1, 5)}},
		}
		if got := newAuction(t, bids, PartitionOff).Components(); got != 1 {
			t.Fatalf("Components = %d, want 1", got)
		}
	})

	t.Run("SingleGiantComponent", func(t *testing.T) {
		// Every bid shares pool 0, so the graph is one component and the
		// merged path runs: the partitioned and non-partitioned runs are
		// the same code path, byte for byte.
		var bids []*Bid
		for i := 0; i < 4; i++ {
			v := make(resource.Vector, registry.Len())
			v[0] = 1
			v[i] = 2
			bids = append(bids, &Bid{User: fmt.Sprintf("b%d", i), Limit: 80, Bundles: []resource.Vector{v}})
		}
		a := newAuction(t, bids, PartitionAuto)
		if got := a.Components(); got != 1 {
			t.Fatalf("Components = %d, want 1", got)
		}
		on, errOn := a.Run()
		off, errOff := newAuction(t, bids, PartitionOff).Run()
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("errors differ: %v vs %v", errOn, errOff)
		}
		mustEqualResults(t, "giant", off, on)
	})

	t.Run("XORBundleBridges", func(t *testing.T) {
		// The bridge bid demands pool 1 XOR pool 2: whichever bundle
		// wins, its proxy reads both prices, so the two otherwise
		// disjoint regions must merge into one component — leaving pools
		// {0} and {1,2,3} as the two components.
		bids := []*Bid{
			{User: "solo", Limit: 50, Bundles: []resource.Vector{bundle(0, 5)}},
			{User: "bridge", Limit: 50, Bundles: []resource.Vector{bundle(1, 5), bundle(2, 5)}},
			{User: "b2", Limit: 50, Bundles: []resource.Vector{bundle(2, 5)}},
			{User: "b3", Limit: 50, Bundles: []resource.Vector{bundle(3, 5)}},
			{User: "bridge23", Limit: 50, Bundles: []resource.Vector{bundle(2, 1), bundle(3, 1)}},
		}
		a := newAuction(t, bids, PartitionAuto)
		if got := a.Components(); got != 2 {
			t.Fatalf("Components = %d, want 2", got)
		}
		on, errOn := a.Run()
		off, errOff := newAuction(t, bids, PartitionOff).Run()
		if errOn != nil || errOff != nil {
			t.Fatalf("errors: %v vs %v", errOn, errOff)
		}
		mustEqualResults(t, "bridge", off, on)
	})

	t.Run("EmptyBookRejected", func(t *testing.T) {
		// An empty book never reaches the partitioner: NewAuction
		// rejects it identically in both modes, so there is no
		// zero-component state to diverge on.
		for _, mode := range []PartitionMode{PartitionOff, PartitionAuto} {
			if _, err := NewAuction(registry, nil, Config{Partition: mode}); err == nil {
				t.Errorf("mode %v: empty book accepted", mode)
			}
		}
	})

	t.Run("UnknownPolicyFallsBack", func(t *testing.T) {
		bids := []*Bid{
			{User: "b0", Limit: 50, Bundles: []resource.Vector{bundle(0, 5)}},
			{User: "b1", Limit: 50, Bundles: []resource.Vector{bundle(1, 5)}},
		}
		a, err := NewAuction(registry, bids, Config{
			Start:     resource.Vector{1, 1, 1, 1},
			Policy:    opaquePolicy{},
			MaxRounds: 500,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := a.Components(); got != 1 {
			t.Fatalf("Components = %d with a foreign policy, want 1 (merged fallback)", got)
		}
	})
}

// opaquePolicy is a syntactically valid foreign IncrementPolicy the
// decomposition cannot prove per-pool-local, so it must keep the merged
// path.
type opaquePolicy struct{}

func (opaquePolicy) Name() string { return "opaque" }
func (opaquePolicy) StepInto(dst, z, p resource.Vector) {
	for i, zi := range z {
		if zi > 0 {
			dst[i] = 0.1
		} else {
			dst[i] = 0
		}
	}
}

// TestPartitionedReEntryMidClock pins the re-entry path inside a
// component: a priced-out seller re-enters and re-dirties its component
// mid-clock while an unrelated component clears instantly, and the
// partitioned outcome — drop rounds included — matches the merged run.
func TestPartitionedReEntryMidClock(t *testing.T) {
	registry := resource.NewRegistry(
		resource.Pool{Cluster: "hot", Dim: resource.CPU},
		resource.Pool{Cluster: "idle", Dim: resource.CPU},
	)
	bids := []*Bid{
		// Wants at least 50 for 10 units: priced out below 5/unit,
		// re-enters once the clock lifts the pool.
		{User: "seller", Limit: -50, Bundles: []resource.Vector{{-10, 0}}},
		{User: "buyer", Limit: 1000, Bundles: []resource.Vector{{10, 0}}},
		// The second component clears in round 0.
		{User: "idle-op", Limit: -0.000001, Bundles: []resource.Vector{{0, -5}}},
	}
	for _, engine := range []Engine{EngineDense, EngineIncremental} {
		run := func(mode PartitionMode) *Result {
			a, err := NewAuction(registry, bids, Config{
				Start:         resource.Vector{1, 1},
				Policy:        Capped{Alpha: 0.5, Delta: 1, MinStep: 0.1},
				RecordHistory: true,
				Engine:        engine,
				Partition:     mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			if mode == PartitionAuto {
				if got := a.Components(); got != 2 {
					t.Fatalf("Components = %d, want 2", got)
				}
			}
			res, err := a.Run()
			if err != nil {
				t.Fatalf("%v/%v: %v", engine, mode, err)
			}
			return res
		}
		off, on := run(PartitionOff), run(PartitionAuto)
		mustEqualResults(t, fmt.Sprintf("%v re-entry", engine), off, on)
		if on.DropRound[0] != -1 {
			t.Errorf("%v: re-entered seller DropRound = %d, want -1", engine, on.DropRound[0])
		}
		if !on.IsWinner(0) {
			t.Errorf("%v: re-entered seller lost", engine)
		}
	}
}

// TestPartitionModeValidation rejects out-of-range modes up front.
func TestPartitionModeValidation(t *testing.T) {
	registry := resource.NewRegistry(resource.Pool{Cluster: "c", Dim: resource.CPU})
	bids := []*Bid{{User: "b", Limit: 10, Bundles: []resource.Vector{{1}}}}
	_, err := NewAuction(registry, bids, Config{Start: resource.Vector{0}, Partition: PartitionMode(7)})
	if err == nil {
		t.Fatal("PartitionMode(7) accepted")
	}
}

// TestPartitionedSteadyStateAllocationFree extends the zero-allocation
// contract to the decomposed serial path: once a multi-component
// auction's scratch — per-component sub-auctions included — is warm,
// RunReusing performs no heap allocations on either engine, with and
// without history.
func TestPartitionedSteadyStateAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	registry, bids := randomRegionalMarket(rng, 4)
	start := make(resource.Vector, registry.Len())
	for i := range start {
		start[i] = 0.5
	}
	for _, history := range []bool{false, true} {
		for _, engine := range []Engine{EngineDense, EngineIncremental} {
			a, err := NewAuction(registry, bids, Config{
				Start:         start,
				Policy:        Capped{Alpha: 0.05, Delta: 0.5, MinStep: 0.01},
				MaxRounds:     300,
				RecordHistory: history,
				Engine:        engine,
			})
			if err != nil {
				t.Fatal(err)
			}
			if a.Components() < 2 {
				t.Fatalf("market did not decompose: %d components", a.Components())
			}
			res, err := a.Run() // warm the scratch and the Result
			if res == nil {
				t.Fatalf("%v: nil result (%v)", engine, err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				res, _ = a.RunReusing(res)
			})
			if allocs != 0 {
				t.Errorf("%v (history=%v): %.1f allocs per steady-state partitioned run, want 0", engine, history, allocs)
			}
		}
	}
}
