// Package sim wires the full stack together — synthetic clusters
// (internal/cluster), bidder population (internal/trace), exchange
// (internal/market), and clock auction (internal/core) — into repeatable
// end-to-end scenarios, and derives from them every figure and table in
// the paper's evaluation (Section V). See DESIGN.md for the experiment
// index.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"clustermarket/internal/cluster"
	"clustermarket/internal/core"
	"clustermarket/internal/market"
	"clustermarket/internal/reserve"
	"clustermarket/internal/resource"
	"clustermarket/internal/trace"
)

// Config parameterizes a scenario world. Zero values select defaults
// matching the paper's experimental scale ("around 100 bidders and 100
// system-level resources", Section III.C.4; 34 clusters in Figure 6).
type Config struct {
	Seed               int64
	Clusters           int
	MachinesPerCluster int
	Teams              int
	// HotFraction of clusters start congested; WarmFraction moderately
	// loaded; the rest idle.
	HotFraction, WarmFraction float64
	// Weight is the reserve curve (default reserve.ExpSteep, φ₁).
	Weight reserve.WeightFn
	// Policy is the clock increment rule (default core.DefaultPolicy).
	Policy core.IncrementPolicy
	// Scheduler packs tasks onto machines (default first-fit).
	Scheduler cluster.Scheduler
	// Parallel enables parallel proxy evaluation in the auctions.
	Parallel bool
}

func (c *Config) applyDefaults() {
	if c.Clusters == 0 {
		c.Clusters = 34
	}
	if c.MachinesPerCluster == 0 {
		c.MachinesPerCluster = 40
	}
	if c.Teams == 0 {
		c.Teams = 100
	}
	if c.HotFraction == 0 {
		c.HotFraction = 0.35
	}
	if c.WarmFraction == 0 {
		c.WarmFraction = 0.3
	}
	if c.Weight == nil {
		c.Weight = reserve.ExpSteep
	}
}

// FixedPriceCPU etc. are the "former fixed prices" per unit that predate
// the market (the denominators of Figure 6). They equal the operator's
// real unit costs c(r).
const (
	FixedPriceCPU  = 1.0
	FixedPriceRAM  = 0.25
	FixedPriceDisk = 2.0
)

// World is one fully assembled scenario.
type World struct {
	Cfg      Config
	Rng      *rand.Rand
	Fleet    *cluster.Fleet
	Reg      *resource.Registry
	Exchange *market.Exchange
	Gen      *trace.Generator
	// FixedPrices is the pre-market fixed price vector (= costs).
	FixedPrices resource.Vector
	// LastPrices is the most recent settlement price vector (nil before
	// the first auction).
	LastPrices resource.Vector
	// PreUtilization snapshots ψ(r) as of the start of the latest
	// auction (the basis of the Figure 7 percentiles).
	PreUtilization resource.Vector
}

// NewWorld builds the scenario: clusters with skewed initial load, the
// exchange, and the team population.
func NewWorld(cfg Config) (*World, error) {
	cfg.applyDefaults()
	if cfg.Clusters < 2 {
		return nil, errors.New("sim: need at least 2 clusters")
	}
	if cfg.Teams < 1 {
		return nil, errors.New("sim: need at least 1 team")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	fleet := cluster.NewFleet()
	names := make([]string, 0, cfg.Clusters)
	for i := 1; i <= cfg.Clusters; i++ {
		name := fmt.Sprintf("r%d", i)
		names = append(names, name)
		c := cluster.New(name, cfg.Scheduler)
		c.UnitCost = cluster.Usage{CPU: FixedPriceCPU, RAM: FixedPriceRAM, Disk: FixedPriceDisk}
		c.AddMachines(cfg.MachinesPerCluster, cluster.Usage{CPU: 32, RAM: 128, Disk: 20})
		if err := fleet.AddCluster(c); err != nil {
			return nil, err
		}
	}
	// Skewed initial utilization: hot, warm, and cold clusters.
	for _, name := range names {
		var target cluster.Usage
		x := rng.Float64()
		switch {
		case x < cfg.HotFraction:
			target = cluster.Usage{
				CPU:  0.75 + rng.Float64()*0.2,
				RAM:  0.75 + rng.Float64()*0.2,
				Disk: 0.7 + rng.Float64()*0.25,
			}
		case x < cfg.HotFraction+cfg.WarmFraction:
			target = cluster.Usage{
				CPU:  0.45 + rng.Float64()*0.2,
				RAM:  0.45 + rng.Float64()*0.2,
				Disk: 0.4 + rng.Float64()*0.2,
			}
		default:
			target = cluster.Usage{
				CPU:  0.1 + rng.Float64()*0.25,
				RAM:  0.1 + rng.Float64()*0.25,
				Disk: 0.1 + rng.Float64()*0.2,
			}
		}
		if err := fleet.FillToUtilization(rng, name, target); err != nil {
			return nil, err
		}
	}

	ex, err := market.NewExchange(fleet, market.Config{
		InitialBudget: 50000,
		Weight:        cfg.Weight,
		Policy:        cfg.Policy,
		Parallel:      cfg.Parallel,
	})
	if err != nil {
		return nil, err
	}
	reg := ex.Registry()

	gen, err := trace.New(trace.Config{
		Seed:     cfg.Seed + 1,
		Clusters: names,
		Teams:    cfg.Teams,
	}, reg)
	if err != nil {
		return nil, err
	}
	for _, tm := range gen.Teams() {
		if err := ex.OpenAccount(tm.Name); err != nil {
			return nil, err
		}
	}

	fixed := reg.Zero()
	for i := 0; i < reg.Len(); i++ {
		switch reg.Pool(i).Dim {
		case resource.CPU:
			fixed[i] = FixedPriceCPU
		case resource.RAM:
			fixed[i] = FixedPriceRAM
		case resource.Disk:
			fixed[i] = FixedPriceDisk
		}
	}
	return &World{
		Cfg:         cfg,
		Rng:         rng,
		Fleet:       fleet,
		Reg:         reg,
		Exchange:    ex,
		Gen:         gen,
		FixedPrices: fixed,
	}, nil
}

// SettledTrade records where one settled order's resources landed, for
// the Figure 7 analysis.
type SettledTrade struct {
	Team string
	Side trace.Side
	// PoolQty maps pool index → settled quantity (positive bought,
	// negative sold).
	PoolQty map[int]float64
}

// AuctionOutcome bundles everything one auction produced.
type AuctionOutcome struct {
	Record *market.AuctionRecord
	Result *core.Result
	// PreUtilization is ψ(r) right before the auction.
	PreUtilization resource.Vector
	// Trades lists the settled orders.
	Trades []SettledTrade
	// SkippedBids counts generated bids rejected at submission (over
	// budget etc.).
	SkippedBids int
}

// RunAuction executes one full market cycle: generate bids from the
// current market state, submit them, run the binding auction, settle
// teams, and reflect trades onto the physical clusters.
func (w *World) RunAuction() (*AuctionOutcome, error) {
	ref := w.FixedPrices
	if w.LastPrices != nil {
		ref = w.LastPrices
	}
	util := w.Fleet.UtilizationVector(w.Reg)
	w.PreUtilization = util

	gbs, err := w.Gen.Generate(trace.RoundInput{
		Utilization:     util,
		ReferencePrices: ref,
	})
	if err != nil {
		return nil, err
	}

	var submitted []*trace.GeneratedBid
	skipped := 0
	for _, gb := range gbs {
		if _, err := w.Exchange.Submit(gb.Team.Name, gb.Bid); err != nil {
			skipped++
			continue
		}
		submitted = append(submitted, gb)
	}
	if len(submitted) == 0 {
		return nil, errors.New("sim: every generated bid was rejected")
	}

	rec, res, err := w.Exchange.RunAuction()
	if err != nil && res == nil {
		return nil, err
	}
	if err != nil {
		// Non-convergent round: the exchange settled nothing and left
		// the round's orders open, so nothing may be applied to the
		// bidder population or the physical clusters, and the failed
		// clock's non-clearing prices must not become the next round's
		// reference prices (LastPrices keeps its last converged value).
		// Withdraw the leftovers so the next round's auction result
		// indices align with its own submissions.
		for _, o := range w.Exchange.OpenOrders() {
			_ = w.Exchange.Cancel(o.ID)
		}
		return &AuctionOutcome{
			Record:         rec,
			Result:         res,
			PreUtilization: util,
			SkippedBids:    skipped,
		}, nil
	}
	w.LastPrices = rec.Prices

	// Update the bidder population (migration, sold holdings,
	// sophistication) and the physical clusters.
	bidIndex := make(map[*core.Bid]int, len(submitted))
	for i, gb := range submitted {
		bidIndex[gb.Bid] = i
	}
	w.Gen.ApplySettlement(submitted, res, bidIndex)

	out := &AuctionOutcome{
		Record:         rec,
		Result:         res,
		PreUtilization: util,
		SkippedBids:    skipped,
	}
	for i, gb := range submitted {
		if !res.IsWinner(i) {
			continue
		}
		tradeQty := make(map[int]float64)
		for pi, q := range res.Allocations[i] {
			if q != 0 {
				tradeQty[pi] = q
			}
		}
		out.Trades = append(out.Trades, SettledTrade{
			Team:    gb.Team.Name,
			Side:    gb.Side,
			PoolQty: tradeQty,
		})
		w.applyToFleet(gb.Team.Name, res.Allocations[i])
	}
	return out, nil
}

// applyToFleet reflects a settled allocation onto the physical clusters:
// purchases are placed as (chunked) tasks, sales evict load.
func (w *World) applyToFleet(team string, alloc resource.Vector) {
	type delta struct {
		buy  cluster.Usage
		sell cluster.Usage
	}
	perCluster := make(map[string]*delta)
	for pi, q := range alloc {
		if q == 0 {
			continue
		}
		p := w.Reg.Pool(pi)
		d, ok := perCluster[p.Cluster]
		if !ok {
			d = &delta{}
			perCluster[p.Cluster] = d
		}
		if q > 0 {
			d.buy = d.buy.Set(p.Dim, q)
		} else {
			d.sell = d.sell.Set(p.Dim, -q)
		}
	}
	for _, name := range w.Fleet.ClusterNames() {
		d, ok := perCluster[name]
		if !ok {
			continue
		}
		if !d.sell.IsZero() {
			w.evictLoad(name, d.sell)
		}
		if !d.buy.IsZero() {
			w.placeLoad(team, name, d.buy)
		}
	}
}

// placeLoad schedules the bought usage as machine-sized chunks, dropping
// the remainder when the cluster genuinely cannot host it.
func (w *World) placeLoad(team, clusterName string, total cluster.Usage) {
	chunk := cluster.Usage{CPU: 8, RAM: 32, Disk: 5}
	for i := 0; i < 10000; i++ {
		if total.IsZero() {
			return
		}
		req := total
		if req.CPU > chunk.CPU {
			req.CPU = chunk.CPU
		}
		if req.RAM > chunk.RAM {
			req.RAM = chunk.RAM
		}
		if req.Disk > chunk.Disk {
			req.Disk = chunk.Disk
		}
		if _, err := w.Fleet.ScheduleTask(team, clusterName, req); err != nil {
			return
		}
		total = total.Sub(req)
		if total.CPU < 0 {
			total.CPU = 0
		}
		if total.RAM < 0 {
			total.RAM = 0
		}
		if total.Disk < 0 {
			total.Disk = 0
		}
	}
}

// evictLoad removes background/team tasks until roughly the sold usage is
// freed.
func (w *World) evictLoad(clusterName string, sold cluster.Usage) {
	c := w.Fleet.Cluster(clusterName)
	if c == nil {
		return
	}
	var freed cluster.Usage
	for _, m := range c.Machines() {
		if freed.CPU >= sold.CPU && freed.RAM >= sold.RAM && freed.Disk >= sold.Disk {
			return
		}
		var ids []string
		var reqs []cluster.Usage
		for _, t := range tasksOf(m) {
			ids = append(ids, t.ID)
			reqs = append(reqs, t.Req)
		}
		for i, id := range ids {
			if freed.CPU >= sold.CPU && freed.RAM >= sold.RAM && freed.Disk >= sold.Disk {
				return
			}
			if c.Evict(id) {
				freed = freed.Add(reqs[i])
			}
		}
	}
}

// tasksOf returns a machine's tasks in deterministic (ID-sorted) order.
func tasksOf(m *cluster.Machine) []cluster.Task {
	// Machines do not expose their task map directly; reconstruct from
	// the public API via TeamUsage would lose IDs, so we walk the
	// exported accessor.
	return m.Tasks()
}
